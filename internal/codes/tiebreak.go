package codes

import (
	"slices"

	"hssort/internal/par"
)

// The tie-break kernels: the prefix plane's repair pass. A prefix
// extractor (keycoder.Prefix) is order-preserving but not injective, so
// after the tandem radix sort a code-sorted element array is only
// sorted up to equal-code spans. TieBreak comparator-sorts every such
// span in place, restoring the full comparator order, and reports the
// number of keys involved in collisions — the engine's
// prefix-collision counter.
//
// Determinism: a span is comparator-sorted with slices.SortFunc, which
// is not stable — but keys that still compare equal after the code tied
// are equal for every downstream decision (bucket cuts cut between
// codes, merges resolve code ties with the same comparator), so the
// emitted value sequence is identical regardless of permutation within
// cmp-equal groups. For the byte-key plane specifically, cmp-equal
// means content-identical, making the output byte-identical for every
// Workers value — the PR 6 invariant.

// TieBreak comparator-sorts every maximal equal-code span of the
// code-sorted (cs, elems) pair and returns the number of elements in
// spans of length >= 2 (the collision count). cs itself is untouched —
// within a span all codes are already equal.
func TieBreak[E any](cs []Code, elems []E, cmp func(E, E) int) int64 {
	var collisions int64
	for i := 0; i < len(cs); {
		j := i + 1
		for j < len(cs) && cs[j] == cs[i] {
			j++
		}
		if j-i > 1 {
			collisions += int64(j - i)
			slices.SortFunc(elems[i:j], cmp)
		}
		i = j
	}
	return collisions
}

// tieBreakCutoff is the input size below which TieBreakPar runs serial
// — matching the other parallel kernels' cutoff.
const tieBreakCutoff = 1 << 14

// TieBreakPar is TieBreak fanned over the pool. The array is split into
// near-equal blocks; each block skips spans that started in an earlier
// block (their owner sorts them whole, possibly past its block end), so
// every span is sorted exactly once and the summed collision count is
// identical to the serial kernel's.
func TieBreakPar[E any](cs []Code, elems []E, cmp func(E, E) int, p *par.Pool) int64 {
	w := p.Workers()
	if w <= 1 || len(cs) < tieBreakCutoff {
		return TieBreak(cs, elems, cmp)
	}
	blocks := par.Blocks(len(cs), w)
	counts := make([]int64, len(blocks))
	p.Do(len(blocks), func(b int) {
		lo, hi := blocks[b].Lo, blocks[b].Hi
		// Skip the span straddling in from the left: its owning block
		// sorts it to its true end.
		for lo < hi && lo > 0 && cs[lo-1] == cs[lo] {
			lo++
		}
		var collisions int64
		for i := lo; i < hi; {
			j := i + 1
			for j < len(cs) && cs[j] == cs[i] {
				j++
			}
			if j-i > 1 {
				collisions += int64(j - i)
				slices.SortFunc(elems[i:j], cmp)
			}
			i = j
		}
		counts[b] = collisions
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}
