// Package exchange implements the data-movement phase shared by every
// splitter-based sort in this repository (§2.2 step 3): partitioning the
// local sorted input by the final splitters, the personalized all-to-all
// that sends each bucket to its owner, and the post-exchange imbalance
// measurement.
//
// Buckets are decoupled from ranks: the paper's flat sort uses one bucket
// per processor, the two-level node optimization (§6.1) uses one bucket
// per node, and ChaNGa (§6.3) uses many virtual-processor buckets per
// core, possibly placed non-contiguously. An Owner function maps buckets
// to ranks; all runs destined to the same rank travel in one combined
// message (the §6.1 message-combining optimization falls out for free).
//
// Exchange is the bandwidth-dominant phase of the sort (the 2N/p BSP
// term of §5.1). It is built purely on comm.Endpoint Send/Recv, so it
// runs unchanged over the byte-accounted simulated transport or the
// in-process fast path — see internal/comm.Transport.
package exchange
