// Package tablefmt renders the aligned text tables the experiment
// binaries print (Table 5.1, Table 6.1, and the figure data series).
package tablefmt
