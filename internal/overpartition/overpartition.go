package overpartition

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"time"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/histogram"
	"hssort/internal/merge"
	"hssort/internal/sampling"
)

// Options configures an over-partitioning sort. Cmp is required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// OverRatio is k: buckets = k·p. Li & Sevcik recommend k = log p;
	// that is the default.
	OverRatio int
	// Oversample is the per-processor splitter-sample size; default
	// k·OverRatio·4 evenly spaced keys (enough for k·p−1 splitters with
	// 4× oversampling).
	Oversample int
	// Seed drives block sampling. Default 1.
	Seed uint64
	// BaseTag is the tag range start (8 tags). Default 8000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults(p int) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("overpartition: Options.Cmp is required")
	}
	if o.OverRatio == 0 {
		o.OverRatio = int(math.Ceil(math.Log2(float64(max(p, 2)))))
	}
	if o.OverRatio < 1 {
		return o, fmt.Errorf("overpartition: OverRatio %d < 1", o.OverRatio)
	}
	if o.Oversample == 0 {
		o.Oversample = 4 * o.OverRatio
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaseTag == 0 {
		o.BaseTag = 8000
	}
	return o, nil
}

// Tag offsets within BaseTag.
const (
	tagCount    = 0 // N all-reduce (+1)
	tagGather   = 2 // sample gather
	tagSplit    = 3 // splitter broadcast
	tagRanks    = 4 // bucket-size histogram reduction
	tagOwners   = 5 // owner-map broadcast
	tagExchange = 6 // bucket exchange
	tagStats    = 7 // stats all-reduce (+1... shares +8)
)

// Sort runs the over-partitioning sort. Each rank's output is sorted;
// outputs across ranks are disjoint key ranges but in LPT (not key)
// order. The input is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, core.Stats{}, err
	}
	p := c.Size()
	base := opt.BaseTag
	buckets := opt.OverRatio * p
	var stats core.Stats
	stats.Buckets = buckets

	t0 := time.Now()
	slices.SortFunc(local, opt.Cmp)
	localSort := time.Since(t0)

	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]

	// Splitter sampling: random-block samples per rank, merged at root;
	// buckets-1 evenly spaced splitters.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	rng := rand.New(rand.NewPCG(opt.Seed, 0xabcdef^uint64(c.Rank())))
	mine := sampling.RandomBlock(local, opt.Oversample, rng)
	parts, err := collective.Gatherv(c, 0, base+tagGather, mine)
	if err != nil {
		return nil, stats, err
	}
	var splitters []K
	if c.Rank() == 0 {
		lambda := mergeParts(parts, opt.Cmp)
		splitters = make([]K, 0, buckets-1)
		if len(lambda) > 0 {
			for i := 1; i < buckets; i++ {
				idx := i * len(lambda) / buckets
				if idx >= len(lambda) {
					idx = len(lambda) - 1
				}
				splitters = append(splitters, lambda[idx])
			}
		}
		stats.TotalSample = int64(len(lambda))
		stats.Rounds = 1
	}
	splitters, err = collective.Bcast(c, 0, base+tagSplit, splitters)
	if err != nil {
		return nil, stats, err
	}

	// One histogram round tells the root every bucket's size, which is
	// what the LPT assignment needs (the distributed stand-in for the
	// task queue's size ordering).
	localRanks := histogram.LocalRanks(local, splitters, opt.Cmp)
	globalRanks, err := collective.Reduce(c, 0, base+tagRanks, localRanks, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	var owners []int64
	if c.Rank() == 0 {
		sizes := bucketSizes(globalRanks, stats.N)
		owners = lptAssign(sizes, p)
	}
	owners, err = collective.Bcast(c, 0, base+tagOwners, owners)
	if err != nil {
		return nil, stats, err
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	// Exchange + merge with the LPT owner map.
	bytes1 := c.Counters().BytesSent
	t2 := time.Now()
	runs := exchange.Partition(local, splitters, opt.Cmp)
	recv, err := exchange.Exchange(c, base+tagExchange, runs, func(b int) int { return int(owners[b]) })
	if err != nil {
		return nil, stats, err
	}
	exchangeTime := time.Since(t2)
	exchangeBytes := c.Counters().BytesSent - bytes1

	t3 := time.Now()
	out := merge.KWay(recv, opt.Cmp)
	mergeTime := time.Since(t3)
	stats.LocalCount = len(out)

	agg, err := collective.AllReduce(c, base+tagStats, []int64{
		splitterBytes, exchangeBytes,
		int64(localSort), int64(splitterTime), int64(exchangeTime), int64(mergeTime),
		int64(len(out)), int64(len(out)),
	}, func(dst, src []int64) {
		dst[0] += src[0]
		dst[1] += src[1]
		for i := 2; i <= 5; i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
		dst[6] += src[6]
		if src[7] > dst[7] {
			dst[7] = src[7]
		}
	})
	if err != nil {
		return nil, stats, err
	}
	stats.SplitterBytes = agg[0]
	stats.ExchangeBytes = agg[1]
	stats.LocalSort = time.Duration(agg[2])
	stats.Splitter = time.Duration(agg[3])
	stats.Exchange = time.Duration(agg[4])
	stats.Merge = time.Duration(agg[5])
	if agg[6] > 0 {
		stats.Imbalance = float64(agg[7]) * float64(p) / float64(agg[6])
	} else {
		stats.Imbalance = 1
	}
	return out, stats, nil
}

// bucketSizes converts splitter ranks into per-bucket key counts.
func bucketSizes(ranks []int64, n int64) []int64 {
	sizes := make([]int64, len(ranks)+1)
	prev := int64(0)
	for i, r := range ranks {
		sizes[i] = r - prev
		prev = r
	}
	sizes[len(ranks)] = n - prev
	return sizes
}

// lptAssign distributes buckets to p processors largest-first, each to
// the currently least-loaded processor — the greedy longest-processing-
// time rule whose makespan is within 4/3 of optimal.
func lptAssign(sizes []int64, p int) []int64 {
	type bucket struct {
		idx  int
		size int64
	}
	order := make([]bucket, len(sizes))
	for i, s := range sizes {
		order[i] = bucket{idx: i, size: s}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].size > order[b].size })
	loads := make([]int64, p)
	owners := make([]int64, len(sizes))
	for _, b := range order {
		best := 0
		for r := 1; r < p; r++ {
			if loads[r] < loads[best] {
				best = r
			}
		}
		owners[b.idx] = int64(best)
		loads[best] += b.size
	}
	return owners
}

// mergeParts pairwise-merges sorted per-rank samples.
func mergeParts[K any](parts [][]K, cmp func(K, K) int) []K {
	for len(parts) > 1 {
		var next [][]K
		for i := 0; i+1 < len(parts); i += 2 {
			next = append(next, merge.Two(parts[i], parts[i+1], cmp))
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	if len(parts) == 0 {
		return nil
	}
	return parts[0]
}
