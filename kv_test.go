package hssort

import (
	"math/rand/v2"
	"slices"
	"testing"
)

func TestSortKVCarriesPayloads(t *testing.T) {
	const p, perRank = 4, 2000
	// Payload = the key's original (rank, index) so we can verify every
	// record arrived intact.
	type origin struct{ rank, idx int32 }
	shards := make([][]KV[int64, origin], p)
	seen := map[origin]int64{}
	for r := range shards {
		rng := rand.New(rand.NewPCG(uint64(r), 5))
		shards[r] = make([]KV[int64, origin], perRank)
		for i := range shards[r] {
			o := origin{int32(r), int32(i)}
			k := rng.Int64N(1 << 40)
			shards[r][i] = KV[int64, origin]{Key: k, Val: o}
			seen[o] = k
		}
	}
	outs, stats, err := SortKV(Config{Procs: p, Epsilon: 0.1, Seed: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", stats.Imbalance)
	}
	count := 0
	var prev int64 = -1 << 62
	for _, o := range outs {
		for _, rec := range o {
			if rec.Key < prev {
				t.Fatal("records out of order")
			}
			prev = rec.Key
			want, ok := seen[rec.Val]
			if !ok || want != rec.Key {
				t.Fatalf("payload %v detached from its key (%d vs %d)", rec.Val, rec.Key, want)
			}
			delete(seen, rec.Val)
			count++
		}
	}
	if count != p*perRank || len(seen) != 0 {
		t.Fatalf("records lost: %d arrived, %d unaccounted", count, len(seen))
	}
}

func TestSortKVWithTagging(t *testing.T) {
	const p, perRank = 4, 1000
	shards := make([][]KV[int64, int32], p)
	for r := range shards {
		shards[r] = make([]KV[int64, int32], perRank)
		for i := range shards[r] {
			shards[r][i] = KV[int64, int32]{Key: int64(i % 3), Val: int32(i)}
		}
	}
	outs, stats, err := SortKV(Config{Procs: p, Epsilon: 0.1, TagDuplicates: true, Seed: 7}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("tagged KV imbalance %.4f", stats.Imbalance)
	}
	total := 0
	for _, o := range outs {
		if !slices.IsSortedFunc(o, CompareKV[int64, int32]) {
			t.Fatal("output not sorted")
		}
		total += len(o)
	}
	if total != p*perRank {
		t.Fatalf("record count %d", total)
	}
}

func TestSortKVAllHSSAlgorithms(t *testing.T) {
	const p = 4
	shards := make([][]KV[int64, uint32], p)
	for r := range shards {
		rng := rand.New(rand.NewPCG(uint64(r), 9))
		for i := 0; i < 800; i++ {
			shards[r] = append(shards[r], KV[int64, uint32]{Key: rng.Int64(), Val: uint32(i)})
		}
	}
	for _, alg := range []Algorithm{HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom} {
		in := make([][]KV[int64, uint32], p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, _, err := SortKV(Config{Procs: p, Algorithm: alg, Epsilon: 0.2}, in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		var prev int64 = -1 << 62
		n := 0
		for _, o := range outs {
			for _, rec := range o {
				if rec.Key < prev {
					t.Fatalf("%v: out of order", alg)
				}
				prev = rec.Key
				n++
			}
		}
		if n != p*800 {
			t.Fatalf("%v: %d records", alg, n)
		}
	}
}
