// Package changa synthesizes the ChaNGa sorting workload of §6.3.
//
// ChaNGa (an N-body cosmology code) sorts particle keys — positions
// mapped onto a space-filling curve — at the start of every simulation
// step, with the output buckets being *virtual processors* (TreePieces)
// that outnumber physical cores and may be placed non-contiguously. The
// paper evaluates on two proprietary datasets:
//
//   - Dwarf: a dwarf-galaxy zoom-in — one dense Plummer-profile cluster,
//     extreme central concentration.
//   - Lambb: a cosmological volume — many halos of varying mass over a
//     near-uniform background.
//
// We cannot redistribute those datasets, so this package generates
// synthetic analogues with the same key-distribution shape (heavily
// clustered space-filling-curve keys): Dwarf as a single Plummer sphere,
// Lambb as a halo mass-function-ish Gaussian-mixture plus background.
// The sorter sees only the key distribution, so the substitution
// preserves the behaviour Fig 6.2 measures (documented in DESIGN.md).
package changa
