package main

import "testing"

// TestExperimentsRunAtTinyScale smoke-tests every experiment at a scale
// small enough for CI; the full-scale outputs are recorded in
// EXPERIMENTS.md.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests")
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			if err := e.run(0.05); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
		})
	}
}

// TestExperimentNamesUnique guards the -exp dispatch table.
func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
}
