package server

import (
	"sync"
)

// engineKey identifies one engine shape: the key type plus whether the
// engine sorts keyed records. Every other shape dimension (shard count,
// epsilon, transport, workers, staleness bound) is fixed by the daemon
// Config, so engines of one key are interchangeable.
type engineKey struct {
	keyType string
	kv      bool
}

// pooledEngine wraps one warm Sorter behind the pool: impl is the typed
// engine (*hssort.Sorter[K], *hssort.KVSorter[K,string] or
// *hssort.Sorter[[]byte]), close tears it down.
type pooledEngine struct {
	impl  any
	close func()
}

// enginePool is the warm-engine registry: engines are built lazily on
// first demand for a shape and parked on a per-shape free list between
// jobs, so a recurring shape reuses the engine's transport, parked rank
// goroutines and scratch (hssort.Sorter reuse — comm.Pool plus
// Transport.Reset) instead of rebuilding the machine per job. Because a
// Sorter serializes its calls, concurrent jobs of one shape check out
// distinct engines; the population is bounded by the scheduler's
// concurrency, not by job volume.
type enginePool struct {
	mu    sync.Mutex
	free  map[engineKey][]*pooledEngine
	built int
	done  bool
}

func newEnginePool() *enginePool {
	return &enginePool{free: make(map[engineKey][]*pooledEngine)}
}

// acquire returns a warm engine for the shape, building one with build
// when the free list is empty. The caller must release or discard it.
func (p *enginePool) acquire(key engineKey, build func() (*pooledEngine, error)) (*pooledEngine, error) {
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		e := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	// Built outside the lock: engine construction spawns the transport
	// and the rank world, too slow to serialize the whole pool on.
	e, err := build()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.built++
	if p.done {
		// The pool was closed while we were building; don't leak the engine.
		p.built--
		p.mu.Unlock()
		e.close()
		return nil, errDraining
	}
	p.mu.Unlock()
	return e, nil
}

// release parks the engine back on its shape's free list. Engines stay
// usable after failed or canceled sorts (the hssort engine contract),
// so every checkout is released.
func (p *enginePool) release(key engineKey, e *pooledEngine) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		e.close()
		return
	}
	p.free[key] = append(p.free[key], e)
	p.mu.Unlock()
}

// count reports the engines built so far (the /metrics gauge).
func (p *enginePool) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built
}

// closeAll tears down every parked engine and marks the pool closed;
// engines still checked out are closed at release. Call after the
// scheduler has drained.
func (p *enginePool) closeAll() {
	p.mu.Lock()
	p.done = true
	free := p.free
	p.free = make(map[engineKey][]*pooledEngine)
	p.mu.Unlock()
	for _, list := range free {
		for _, e := range list {
			e.close()
		}
	}
}
