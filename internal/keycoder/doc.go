// Package keycoder provides order-preserving encodings between key
// types and uint64 code points. It carries two distinct contracts:
//
// The bijective Coder contract. Classic histogram sort
// (internal/histsort) refines candidate splitters by bisecting the key
// space numerically, and radix partitioning (internal/radix) buckets
// keys by their most significant bits. Both need a total order on a
// fixed-width integer image of the key type. A Coder maps keys to
// uint64 codes such that
//
//	cmp(a, b) < 0  ⇔  Encode(a) < Encode(b)
//
// and Decode(Encode(k)) == k for every representable key (for Float64,
// NaN is excluded; see its documentation). Equal codes imply equal
// keys, so a pipeline on the bijective plane never needs the
// comparator again.
//
// The prefix-extractor contract. Variable-length byte-string keys
// admit no uint64 bijection, but they do admit an order-preserving
// projection: Prefix extracts the first eight bytes big-endian, giving
// the weaker guarantee
//
//	cmp(a, b) < 0  ⟹  Code(a) <= Code(b)
//
// — order is preserved but not reflected, and equal codes do NOT imply
// equal keys. A prefix code is a sorting accelerator, not an identity:
// every consumer must re-resolve equal-code runs with the comparator
// (codes.TieBreak after the radix sort, the tie-aware merge trees, and
// splitter saturation in histogramming). There is no Decode;
// PrefixBytes produces the canonical 8-byte representative of a code
// when a concrete key is needed.
package keycoder
