// Package samplesort implements the paper's primary baseline: parallel
// sample sort (§2.2) with the two sampling methods of §4.1 —
//
//   - Regular sampling (Shi & Schaeffer, §4.1.2): s evenly spaced keys
//     per processor; with s = B/ε the splitters provably achieve (1+ε)
//     balance (Lemma 4.1.1) at the cost of a Θ(B²/ε) sample.
//   - Random sampling (Blelloch et al., §4.1.1): one random key per block,
//     s = Θ(log N/ε²) per processor for the same guarantee w.h.p.
//
// The data-movement phase is identical to HSS (the paper's point of
// comparison is purely the splitter-determination cost), so both reuse
// internal/exchange and report core.Stats.
package samplesort
