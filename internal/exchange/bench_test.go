package exchange

import (
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
)

// BenchmarkPartition measures cutting a sorted shard into B runs.
func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	sorted := make([]int64, 1<<20)
	for i := range sorted {
		sorted[i] = rng.Int64()
	}
	slices.Sort(sorted)
	splitters := make([]int64, 1023)
	for i := range splitters {
		splitters[i] = rng.Int64()
	}
	slices.Sort(splitters)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(sorted, splitters, icmp)
	}
}

// BenchmarkExchange measures the full personalized all-to-all over a
// 16-rank world (the §2.2 data-movement step).
func BenchmarkExchange(b *testing.B) {
	const p = 16
	const perRank = 1 << 16
	splitters := make([]int64, p-1)
	for i := range splitters {
		splitters[i] = int64(i+1) << 58
	}
	shards := make([][]int64, p)
	rng := rand.New(rand.NewPCG(3, 4))
	for r := range shards {
		shards[r] = make([]int64, perRank)
		for i := range shards[r] {
			shards[r][i] = rng.Int64()
		}
		slices.Sort(shards[r])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(p, comm.WithTimeout(time.Minute))
		err := w.Run(func(c *comm.Comm) error {
			runs := Partition(shards[c.Rank()], splitters, icmp)
			_, err := Exchange(c, 1, runs, ContiguousOwner(p, p))
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(p * perRank * 8))
}
