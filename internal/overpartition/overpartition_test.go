package overpartition

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func trySort(shards [][]int64, opt Options[int64]) ([][]int64, core.Stats, error) {
	p := len(shards)
	outs := make([][]int64, p)
	var stats core.Stats
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	return outs, stats, err
}

func clone(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

// checkPermutation: each rank's output sorted, union equals input.
func checkPermutation(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	for r, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, o...)
	}
	slices.Sort(want)
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatal("output not a permutation of input")
	}
}

func TestOverPartitionUniform(t *testing.T) {
	const p, perRank = 8, 2000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 3)
	outs, stats, err := trySort(clone(shards), Options[int64]{Cmp: icmp})
	if err != nil {
		t.Fatal(err)
	}
	checkPermutation(t, shards, outs)
	// log2(8) = 3× over-partitioning with LPT: balance well under 2.
	if stats.Imbalance > 1.5 {
		t.Errorf("imbalance %.3f", stats.Imbalance)
	}
	if stats.Buckets != 3*p {
		t.Errorf("buckets %d, want %d", stats.Buckets, 3*p)
	}
}

func TestOverPartitionSkew(t *testing.T) {
	const p, perRank = 6, 2000
	for _, kind := range []dist.Kind{dist.Exponential, dist.PowerSkew, dist.Staircase} {
		spec := dist.Spec{Kind: kind}
		shards := spec.Shards(perRank, p, 7)
		outs, stats, err := trySort(clone(shards), Options[int64]{Cmp: icmp, OverRatio: 4})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		checkPermutation(t, shards, outs)
		if stats.Imbalance > 1.6 {
			t.Errorf("%v: imbalance %.3f", kind, stats.Imbalance)
		}
	}
}

func TestHigherOverRatioImprovesBalance(t *testing.T) {
	// Li & Sevcik's core claim: more over-partitioning → better balance.
	const p, perRank = 8, 3000
	spec := dist.Spec{Kind: dist.Gaussian}
	coarse, fine := 0.0, 0.0
	// Average over seeds to avoid a lucky draw inverting the trend.
	for seed := uint64(1); seed <= 3; seed++ {
		shards := spec.Shards(perRank, p, seed)
		_, s1, err := trySort(clone(shards), Options[int64]{Cmp: icmp, OverRatio: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_, s8, err := trySort(clone(shards), Options[int64]{Cmp: icmp, OverRatio: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		coarse += s1.Imbalance
		fine += s8.Imbalance
	}
	if fine >= coarse {
		t.Errorf("8x over-partitioning imbalance %.3f not below 1x %.3f", fine/3, coarse/3)
	}
}

func TestOverPartitionEdgeCases(t *testing.T) {
	// Single rank.
	outs, _, err := trySort([][]int64{{3, 1, 2}}, Options[int64]{Cmp: icmp})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(outs[0], []int64{1, 2, 3}) {
		t.Errorf("single rank: %v", outs[0])
	}
	// Empty input.
	outs, _, err = trySort([][]int64{{}, {}}, Options[int64]{Cmp: icmp})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if len(o) != 0 {
			t.Errorf("empty input: %v", o)
		}
	}
	// Missing comparator.
	if _, _, err := trySort([][]int64{{1}}, Options[int64]{}); err == nil {
		t.Error("missing Cmp accepted")
	}
}

func TestLPTAssign(t *testing.T) {
	sizes := []int64{10, 1, 1, 1, 9, 8}
	owners := lptAssign(sizes, 3)
	loads := make([]int64, 3)
	for b, o := range owners {
		loads[o] += sizes[b]
	}
	// Optimal makespan is 10; LPT guarantees <= 4/3·OPT + 1.
	var maxLoad int64
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	if maxLoad > 14 {
		t.Errorf("LPT makespan %d, loads %v", maxLoad, loads)
	}
}

func TestBucketSizes(t *testing.T) {
	sizes := bucketSizes([]int64{3, 3, 7}, 10)
	if !slices.Equal(sizes, []int64{3, 0, 4, 3}) {
		t.Errorf("sizes %v", sizes)
	}
}

func TestOverPartitionProperty(t *testing.T) {
	f := func(seed uint32, pRaw, kRaw uint8) bool {
		p := int(pRaw%5) + 1
		k := int(kRaw%6) + 1
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 22}
		shards := make([][]int64, p)
		for r := range shards {
			shards[r] = spec.Shard(int(seed%400)+20, r, p, uint64(seed))
		}
		outs, _, err := trySort(clone(shards), Options[int64]{
			Cmp: icmp, OverRatio: k, Seed: uint64(seed) + 1,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		slices.Sort(want)
		slices.Sort(got)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
