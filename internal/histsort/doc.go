// Package histsort implements classic Histogram Sort (Kale & Krishnan
// 1993; Solomonik & Kale 2010) — the "Old" baseline of Fig 6.2.
//
// Unlike HSS, classic histogram sort never samples: the central processor
// refines candidate splitter keys by bisecting the *key space* (§2.3).
// Each round it broadcasts synthesized probe keys (interval midpoints in
// an order-preserving uint64 code space), ranks them with a global
// histogram reduction, and narrows each splitter's code interval until
// the probe's rank lands in the target window. The number of rounds is
// bounded by log of the key range — the weakness on skewed or clustered
// key distributions that HSS removes (§2.3, §6.3).
//
// Key-space bisection needs arithmetic on keys, so this algorithm is only
// available for key types with an order-preserving integer code
// (internal/keycoder); hssort.Sort rejects it for SortFunc-style opaque
// comparators.
package histsort
