package samplesort

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

// Stats aliases core.Stats for test brevity.
type Stats = core.Stats

func runSort(t *testing.T, shards [][]int64, opt Options[int64]) ([][]int64, Stats) {
	t.Helper()
	outs, stats, err := trySort(shards, opt)
	if err != nil {
		t.Fatal(err)
	}
	return outs, stats
}

func trySort(shards [][]int64, opt Options[int64]) ([][]int64, Stats, error) {
	p := len(shards)
	outs := make([][]int64, p)
	var stats Stats
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	return outs, stats, err
}

func checkGloballySorted(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, out := range outs {
		if !slices.IsSorted(out) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, out...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("output not the sorted permutation of input")
	}
}

func TestRegularSamplingBalanceGuarantee(t *testing.T) {
	// Lemma 4.1.1: s = B/ε gives (1+ε) balance deterministically.
	const p, perRank = 8, 2000
	spec := dist.Spec{Kind: dist.PowerSkew}
	shards := spec.Shards(perRank, p, 3)
	in := clone(shards)
	outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Method: Regular})
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("regular sampling imbalance %.4f exceeds guarantee", stats.Imbalance)
	}
	// Sample must be ~p·B/ε = p·80 keys.
	if stats.TotalSample < int64(p*(p-1))/1 {
		t.Errorf("sample %d suspiciously small", stats.TotalSample)
	}
}

func TestRandomSamplingBalance(t *testing.T) {
	const p, perRank = 8, 4000
	spec := dist.Spec{Kind: dist.Gaussian}
	shards := spec.Shards(perRank, p, 5)
	in := clone(shards)
	outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Method: Random, Seed: 2})
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("random sampling imbalance %.4f", stats.Imbalance)
	}
}

func TestOversampleCapTradesBalance(t *testing.T) {
	// Capping the sample keeps the sort correct; balance may loosen.
	const p, perRank = 6, 2000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 7)
	in := clone(shards)
	outs, stats := runSort(t, in, Options[int64]{
		Cmp: icmp, Epsilon: 0.05, Method: Regular, MaxOversample: 8,
	})
	checkGloballySorted(t, shards, outs)
	if stats.TotalSample > int64(p*8) {
		t.Errorf("cap ignored: sample %d", stats.TotalSample)
	}
}

func TestSampleSizeScalesWithMethod(t *testing.T) {
	// §4.1/Fig 4.1: regular sampling needs a far larger sample than
	// random sampling at the same ε for moderate N.
	const p, perRank = 8, 1000
	spec := dist.Spec{Kind: dist.Uniform}
	_, regStats := runSort(t, spec.Shards(perRank, p, 9), Options[int64]{Cmp: icmp, Epsilon: 0.02, Method: Regular})
	_, rndStats := runSort(t, spec.Shards(perRank, p, 9), Options[int64]{Cmp: icmp, Epsilon: 0.02, Method: Random})
	if regStats.TotalSample <= rndStats.TotalSample {
		t.Skipf("regular %d vs random %d: N too small for the asymptotic gap", regStats.TotalSample, rndStats.TotalSample)
	}
}

func TestSingleRankAndEmpty(t *testing.T) {
	shards := [][]int64{{3, 1, 2}}
	outs, _ := runSort(t, clone(shards), Options[int64]{Cmp: icmp})
	checkGloballySorted(t, shards, outs)

	empty := [][]int64{{}, {}}
	outs, _ = runSort(t, empty, Options[int64]{Cmp: icmp})
	for _, o := range outs {
		if len(o) != 0 {
			t.Errorf("empty input gave %v", o)
		}
	}
}

func TestMissingCmpRejected(t *testing.T) {
	_, _, err := trySort([][]int64{{1}, {2}}, Options[int64]{})
	if err == nil {
		t.Fatal("missing Cmp accepted")
	}
}

func TestMethodString(t *testing.T) {
	if Regular.String() != "regular" || Random.String() != "random" {
		t.Error("method names wrong")
	}
	if Method(9).String() != "Method(9)" {
		t.Error("unknown method name wrong")
	}
}

func TestSampleSortProperty(t *testing.T) {
	f := func(seed uint32, pRaw, mRaw uint8) bool {
		p := int(pRaw%5) + 1
		method := Method(mRaw % 2)
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 16}
		shards := make([][]int64, p)
		for r := range shards {
			shards[r] = spec.Shard(int(seed%500)+20, r, p, uint64(seed))
		}
		outs, _, err := trySort(clone(shards), Options[int64]{
			Cmp: icmp, Epsilon: 0.2, Method: method, Seed: uint64(seed) + 1, MaxOversample: 200,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func clone(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}
