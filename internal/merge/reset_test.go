package merge

import (
	"cmp"
	"slices"
	"testing"

	"hssort/internal/codes"
)

// drainStreamer closes every open run and pulls the full merged order.
func drainStreamer(s Streamer[int64], open []int) []int64 {
	for _, i := range open {
		s.CloseRun(i)
	}
	var out []int64
	for {
		k, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, k)
	}
	return out
}

// TestStreamerReset: a Reset streamer behaves exactly like a fresh one,
// across several reuse cycles with varying run counts, on both the
// comparator tree and the code-keyed tree (the engine-reuse contract).
func TestStreamerReset(t *testing.T) {
	icmp := cmp.Compare[int64]
	variants := []struct {
		name string
		mk   func() Streamer[int64]
	}{
		{"loser-tree", func() Streamer[int64] { return NewStreaming(icmp) }},
		{"code-tree", func() Streamer[int64] {
			return NewStreamer(icmp, func(k int64) uint64 { return uint64(k) ^ 1<<63 })
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			s := v.mk()
			for cycle := 0; cycle < 4; cycle++ {
				s.Reset()
				k := 2 + (cycle*3)%5 // vary run counts across cycles
				var want []int64
				var open []int
				for r := 0; r < k; r++ {
					run := make([]int64, 0, 10)
					for i := 0; i < 10; i++ {
						run = append(run, int64(cycle*1000+i*k+r-5000))
					}
					want = append(want, run...)
					idx := s.AddRun(run[:4])
					s.Append(idx, run[4:])
					open = append(open, idx)
				}
				slices.Sort(want)
				got := drainStreamer(s, open)
				if !slices.Equal(got, want) {
					t.Fatalf("cycle %d: reset streamer mis-merged (%d vs %d keys)", cycle, len(got), len(want))
				}
				if !s.Exhausted() {
					t.Fatalf("cycle %d: drained streamer not exhausted", cycle)
				}
			}
		})
	}
}

// TestCodeTreeResetDropsReferences: Reset empties the tree's run tables
// (length zero) so no chunk references survive into the next sort.
func TestCodeTreeResetDropsReferences(t *testing.T) {
	ct := NewCodeTree[int64]()
	cs := []codes.Code{1, 2, 3}
	ct.AddRun(cs, []int64{1, 2, 3})
	ct.CloseRun(0)
	for {
		if _, ok := ct.Next(); !ok {
			break
		}
	}
	ct.Reset()
	if len(ct.codes) != 0 || len(ct.elems) != 0 || ct.n != 0 {
		t.Fatalf("Reset left run state behind: %d codes, %d elems, n=%d", len(ct.codes), len(ct.elems), ct.n)
	}
	if !ct.Exhausted() {
		t.Fatal("empty tree not exhausted")
	}
}
