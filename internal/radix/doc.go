// Package radix implements a parallel most-significant-digit radix
// partition sort — the bit-bucketing baseline of §4.2. One pass over the
// top Bits bits of the order-preserving key codes builds a global digit
// histogram; digit buckets are then assigned to ranks in contiguous,
// load-balanced blocks and exchanged. Because a digit bucket cannot be
// split, a single hot digit (heavy skew or duplicates) breaks the load
// balance — the §4.2 weakness the benchmarks surface. Non-integer keys
// work through the keycoder bijections, but the partition quality depends
// on the code distribution, not the comparator, unlike HSS.
package radix
