package main

import (
	"fmt"
	"slices"
	"sort"

	"hssort"
	"hssort/internal/dist"
	"hssort/internal/tablefmt"
)

// runApprox validates Theorem 3.4.1: the approximate rank oracle with a
// √(2p ln p)/ε-key representative sample per processor answers every
// rank query within N·ε/p of truth w.h.p.
func runApprox(scale float64) error {
	perRank := int(50000 * scale)
	if perRank < 5000 {
		perRank = 5000
	}
	const eps = 0.05
	t := tablefmt.New("p", "N", "queries", "error bound Nε/p", "max error", "mean error", "within bound")
	for _, p := range []int{4, 16, 64} {
		spec := dist.Spec{Kind: dist.Gaussian}
		shards := spec.Shards(perRank, p, 13)
		var global []int64
		for _, s := range shards {
			global = append(global, s...)
		}
		slices.Sort(global)
		n := len(global)
		probes := make([]int64, 64)
		for i := range probes {
			probes[i] = global[i*n/len(probes)]
		}
		est, err := hssort.ApproxRanks(shards, probes, eps, 3)
		if err != nil {
			return err
		}
		bound := int64(eps * float64(n) / float64(p))
		var worst, sum int64
		within := 0
		for i, q := range probes {
			truth := int64(sort.Search(n, func(j int) bool { return global[j] >= q }))
			diff := est[i] - truth
			if diff < 0 {
				diff = -diff
			}
			if diff > worst {
				worst = diff
			}
			sum += diff
			if diff <= bound {
				within++
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", p),
			tablefmt.Count(float64(n)),
			fmt.Sprintf("%d", len(probes)),
			fmt.Sprintf("%d", bound),
			fmt.Sprintf("%d", worst),
			fmt.Sprintf("%.1f", float64(sum)/float64(len(probes))),
			fmt.Sprintf("%d/%d", within, len(probes)),
		)
	}
	fmt.Printf("Approximate rank oracle (§3.4), eps = %.2f:\n\n", eps)
	fmt.Print(t.String())
	fmt.Println("\nPaper (Theorem 3.4.1): every answer within Nε/p of the true rank w.h.p.")
	return nil
}
