package server

import (
	"container/list"
	"hash/fnv"
	"math/bits"
	"slices"
	"sync"
)

// planOutcome is a run's plan-cache verdict.
type planOutcome int

const (
	planNone      planOutcome = iota // the job never reached a sort (canceled while queued, decode-time failure)
	planHit                          // a cached plan was applied: zero histogramming rounds
	planMiss                         // fresh splitters were determined (and cached for next time)
	planReplanned                    // a cached plan was applied but the staleness guard re-histogrammed
)

func (o planOutcome) String() string {
	switch o {
	case planHit:
		return "hit"
	case planMiss:
		return "miss"
	case planReplanned:
		return "replanned"
	default:
		return ""
	}
}

// planKey addresses one cached splitter plan: the tenant plus the
// submitted dataset's distribution fingerprint. Keying by fingerprint
// rather than dataset name means a tenant's recurring distribution hits
// the cache whatever the job is called, and a renamed-but-drifted
// dataset cannot silently reuse stale splitters.
type planKey struct {
	tenant string
	fp     uint64
}

// planCache is a bounded LRU of finalized splitter plans, keyed by
// (tenant, fingerprint). Values are *hssort.Plan[E] for the element
// type the owning engine sorts; they are stored untyped and asserted
// back at the point of use. Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *planEntry
	entries map[planKey]*list.Element
}

type planEntry struct {
	key  planKey
	plan any
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[planKey]*list.Element),
	}
}

func (c *planCache) get(key planKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

func (c *planCache) put(key planKey, plan any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planEntry).plan = plan
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, plan: plan})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
}

func (c *planCache) remove(key planKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// fingerprintSampleMax bounds the per-job fingerprint sample: enough
// quantile resolution to distinguish distributions, cheap enough to run
// on every submission.
const fingerprintSampleMax = 128

// fingerprintQuantiles is the number of sample quantiles folded into
// the fingerprint.
const fingerprintQuantiles = 16

// fingerprint sketches a dataset's distribution as a 64-bit hash — the
// plan cache's notion of "the same recurring workload". The sketch
// hashes the key type, the shard count, the order of magnitude of n,
// and 16 coarsely quantized quantiles of a sorted key-code sample
// (sample is the caller's strided sample of up to fingerprintSampleMax
// order-preserving codes; it is sorted in place here). Quantizing each
// quantile to its top 16 bits makes the sketch insensitive to
// per-submission noise — two draws from one distribution usually agree
// — while a drifted distribution moves a quantile bucket and misses the
// cache. A colliding fingerprint over genuinely drifted data is safe:
// cached plans run under the engine's staleness guard, which
// re-histograms when the stored splitters skew bucket loads.
func fingerprint(keyType string, shards, n int, sample []uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(keyType))
	var b [8]byte
	put := func(v uint64) {
		b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
		b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		h.Write(b[:])
	}
	put(uint64(shards))
	put(uint64(bits.Len(uint(n)))) // magnitude bucket, not the exact count
	slices.Sort(sample)
	for q := 0; q < fingerprintQuantiles; q++ {
		if len(sample) == 0 {
			break
		}
		i := q * (len(sample) - 1) / (fingerprintQuantiles - 1)
		put(sample[i] >> 48) // top 16 bits of the quantile's code
	}
	return h.Sum64()
}

// sampleCodes collects the fingerprint's strided key-code sample: up to
// fingerprintSampleMax codes drawn evenly across the concatenated
// shards, in submission order (fingerprint sorts them).
func sampleCodes[K any](shards [][]K, code func(K) uint64) []uint64 {
	var n int
	for _, sh := range shards {
		n += len(sh)
	}
	if n == 0 {
		return nil
	}
	stride := max(1, n/fingerprintSampleMax)
	sample := make([]uint64, 0, fingerprintSampleMax)
	i := 0
	for _, sh := range shards {
		for _, k := range sh {
			if i%stride == 0 && len(sample) < fingerprintSampleMax {
				sample = append(sample, code(k))
			}
			i++
		}
	}
	return sample
}
