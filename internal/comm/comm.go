package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Tag distinguishes message streams between the same pair of ranks.
// Packages building on comm reserve disjoint tag ranges (see the Tag*
// constants in internal/collective).
type Tag uint32

// AnySource may be passed to Recv as src to match a message from any rank.
const AnySource = -1

// ErrAborted is returned from Send/Recv after the World aborts (rank
// panic, explicit Abort, or timeout).
var ErrAborted = errors.New("comm: world aborted")

// Message is one delivered unit: payload plus envelope.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the stream tag the message was sent with.
	Tag Tag
	// Payload is the transferred value, shared by reference.
	Payload any
	// Bytes is the accounted wire size of Payload (zero under
	// non-accounting transports).
	Bytes int64
}

// Counters accumulates per-rank traffic statistics. Each rank mutates only
// its own Counters from its own goroutine; read them after Run returns or
// from the owning rank.
type Counters struct {
	// MsgsSent and BytesSent count outgoing traffic.
	MsgsSent, BytesSent int64
	// MsgsRecv and BytesRecv count delivered (received) traffic.
	MsgsRecv, BytesRecv int64
	// Reconnects counts dial retries beyond each first attempt, across
	// the bootstrap rendezvous and the rejoin redials. Respawns counts
	// rejoin handshakes: 1 on an endpoint that rejoined an existing
	// world, plus 1 on each survivor per peer it re-adopted. Both are
	// lifecycle counters — they describe the mesh, not one run — so
	// unlike the traffic counters they survive Reset/ResetCounters.
	// Always zero on the in-memory transports.
	Reconnects, Respawns int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.MsgsSent += other.MsgsSent
	c.BytesSent += other.BytesSent
	c.MsgsRecv += other.MsgsRecv
	c.BytesRecv += other.BytesRecv
	c.Reconnects += other.Reconnects
	c.Respawns += other.Respawns
}

// Interceptor observes (and may veto) every message at send time. Used by
// tests for fault injection: returning a non-nil error makes the Send fail
// with that error. Interception is a SimTransport feature.
type Interceptor func(src, dst int, m *Message) error

// panicSize reports an invalid world size.
func panicSize(p int) {
	panic(fmt.Sprintf("comm: world size %d < 1", p))
}

// World hosts p ranks over a Transport and orchestrates their lifecycle:
// SPMD launch, panic containment, and the watchdog timeout.
type World struct {
	t           Transport
	timeout     time.Duration
	interceptor Interceptor
}

// Option configures a World.
type Option func(*World)

// WithTimeout aborts the World if Run has not completed within d. A zero d
// disables the watchdog (the default).
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// WithInterceptor installs a message interceptor for fault injection.
// Interception requires the (default) SimTransport backend; NewWorld
// panics if it is combined with a transport that cannot intercept.
func WithInterceptor(ic Interceptor) Option {
	return func(w *World) { w.interceptor = ic }
}

// WithTransport runs the World over t instead of the default simulated
// backend. The transport's size must match the world size.
func WithTransport(t Transport) Option {
	return func(w *World) { w.t = t }
}

// NewWorld creates a World with p ranks. Without WithTransport it runs
// over a fresh SimTransport. It panics if p < 1 or if a supplied
// transport connects a different number of ranks.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panicSize(p)
	}
	w := &World{}
	for _, o := range opts {
		o(w)
	}
	if w.t == nil {
		w.t = NewSimTransport(p)
	}
	if w.t.Size() != p {
		panic(fmt.Sprintf("comm: transport size %d != world size %d", w.t.Size(), p))
	}
	if w.interceptor != nil {
		st, ok := w.t.(*SimTransport)
		if !ok {
			panic(fmt.Sprintf("comm: WithInterceptor requires SimTransport, not %T", w.t))
		}
		st.SetInterceptor(w.interceptor)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.t.Size() }

// Transport returns the backend the World runs over.
func (w *World) Transport() Transport { return w.t }

// Abort unblocks all pending and future Send/Recv calls with err (wrapped
// in ErrAborted if err is nil). The first abort wins.
func (w *World) Abort(err error) { w.t.Abort(err) }

// HostedRanks returns how many of this World's ranks live in this
// process: Size() for in-memory transports, the local subset for a
// multi-process transport. Callers use it to divide the machine's cores
// among co-hosted ranks (see hssort.Config.Workers).
func (w *World) HostedRanks() int { return len(hostedRanks(w.t)) }

// Run executes fn concurrently on every rank hosted in this process and
// waits for all to finish. In-memory transports host all ranks, so fn
// runs Size() times; a multi-process transport (comm.RankHoster, e.g.
// TCPTransport) hosts a subset and the peer processes run the rest of
// the same SPMD program. Run returns the joined errors of the hosted
// ranks. A panic in any rank aborts the World — across processes, for a
// wire transport — and is reported as that rank's error; other ranks
// then fail with ErrAborted instead of hanging.
func (w *World) Run(fn func(c *Comm) error) error {
	var timer *time.Timer
	if w.timeout > 0 {
		timer = time.AfterFunc(w.timeout, func() {
			w.Abort(fmt.Errorf("%w: timeout after %v", ErrAborted, w.timeout))
		})
		defer timer.Stop()
	}
	ranks := hostedRanks(w.t)
	var wg sync.WaitGroup
	errs := make([]error, len(ranks))
	for i, r := range ranks {
		wg.Add(1)
		go func(i, rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					err := fmt.Errorf("comm: rank %d panicked: %v", rank, rec)
					errs[i] = err
					w.Abort(err)
				}
			}()
			errs[i] = fn(&Comm{w: w, rank: rank})
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Counters returns a copy of rank r's traffic counters. Call after Run
// returns (or from rank r itself) to avoid racing the owning goroutine.
func (w *World) Counters(r int) Counters { return w.t.Counters(r) }

// TotalCounters sums counters across all ranks.
func (w *World) TotalCounters() Counters { return w.t.TotalCounters() }

// ResetCounters zeroes all counters. Only call while no ranks are running.
func (w *World) ResetCounters() { w.t.ResetCounters() }

// Comm is one rank's handle to the World. Endpoint abstracts it so
// sub-groups (internal/collective.Group) can reuse the collectives.
type Comm struct {
	w    *World
	rank int
}

// Endpoint is the rank-addressed messaging surface collectives are built
// on: a Comm, or a Group view of a Comm subset.
type Endpoint interface {
	// Rank returns the caller's rank within the endpoint.
	Rank() int
	// Size returns the number of ranks in the endpoint.
	Size() int
	// Send delivers payload to dst asynchronously; bytes is the
	// accounted wire size.
	Send(dst int, tag Tag, payload any, bytes int64) error
	// Recv blocks for the next message matching (src, tag); src may be
	// AnySource.
	Recv(src int, tag Tag) (Message, error)
}

// StreamEndpoint is the endpoint surface streaming protocols need beyond
// Endpoint: a posted-receive probe (TryRecv) so a rank can overlap local
// work with the exchange, and a blocking any-source wait (RecvAny) so a
// rank out of local work parks until the next protocol event — whatever
// peer it comes from — instead of committing to one sender and
// deadlocking on another. Comm implements it natively;
// collective.Group implements it over a StreamEndpoint parent.
type StreamEndpoint interface {
	Endpoint
	// TryRecv returns the next message matching (src, tag) if one is
	// already buffered, without blocking. src may be AnySource.
	TryRecv(src int, tag Tag) (Message, bool, error)
	// RecvAny blocks for the next message with the given tag from any
	// rank of the endpoint.
	RecvAny(tag Tag) (Message, error)
}

var _ Endpoint = (*Comm)(nil)
var _ StreamEndpoint = (*Comm)(nil)

// Rank returns this handle's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the World size.
func (c *Comm) Size() int { return c.w.Size() }

// World returns the hosting World (for counters and abort).
func (c *Comm) World() *World { return c.w }

// Counters returns this rank's own traffic counters.
func (c *Comm) Counters() Counters { return c.w.t.Counters(c.rank) }

// Send delivers payload to rank dst on stream tag. bytes is the accounted
// wire size of the payload (use the Slice/Value helpers to compute it).
// Send never blocks; it fails only if dst is invalid or the World aborted.
func (c *Comm) Send(dst int, tag Tag, payload any, bytes int64) error {
	if dst < 0 || dst >= c.w.Size() {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d (world size %d)", c.rank, dst, c.w.Size())
	}
	return c.w.t.Send(c.rank, dst, tag, payload, bytes)
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource. Messages from one sender on one tag arrive in send
// order; messages that do not match are left queued for other Recv calls.
func (c *Comm) Recv(src int, tag Tag) (Message, error) {
	if src != AnySource && (src < 0 || src >= c.w.Size()) {
		return Message{}, fmt.Errorf("comm: rank %d receiving from invalid rank %d", c.rank, src)
	}
	return c.w.t.Recv(c.rank, src, tag)
}

// TryRecv returns the next message matching (src, tag) if one is already
// buffered, without blocking; ok reports whether a message was delivered.
// src may be AnySource.
func (c *Comm) TryRecv(src int, tag Tag) (Message, bool, error) {
	if src != AnySource && (src < 0 || src >= c.w.Size()) {
		return Message{}, false, fmt.Errorf("comm: rank %d probing invalid rank %d", c.rank, src)
	}
	return c.w.t.TryRecv(c.rank, src, tag)
}

// RecvAny blocks for the next message with the given tag from any rank.
func (c *Comm) RecvAny(tag Tag) (Message, error) { return c.Recv(AnySource, tag) }

// Barrier blocks until every rank of the World has entered it. Unlike
// collective.Barrier (which is built from Send/Recv and also works over
// sub-groups), this is the transport's native whole-world barrier.
func (c *Comm) Barrier() error { return c.w.t.Barrier(c.rank) }
