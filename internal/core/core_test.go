package core

import (
	"cmp"
	"fmt"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
	"hssort/internal/exchange"
	"hssort/internal/keycoder"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

// runSort sorts the given shards with opt and returns per-rank outputs
// and the stats observed on rank 0.
func runSort(t *testing.T, shards [][]int64, opt Options[int64]) ([][]int64, Stats) {
	t.Helper()
	p := len(shards)
	outs := make([][]int64, p)
	var stats Stats
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs, stats
}

// checkGloballySorted verifies the outputs form the sorted permutation of
// the inputs in rank order.
func checkGloballySorted(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	var got []int64
	for r, out := range outs {
		if !slices.IsSorted(out) {
			t.Fatalf("rank %d output not locally sorted", r)
		}
		got = append(got, out...)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("output is not the sorted permutation of the input (got %d keys, want %d)", len(got), len(want))
	}
}

func TestSortUniformAllSchedules(t *testing.T) {
	const p, perRank = 8, 2000
	for _, sched := range []Schedule{FixedOversampling, Theoretical, OneRoundScanning} {
		spec := dist.Spec{Kind: dist.Uniform}
		shards := spec.Shards(perRank, p, 42)
		// Clone: runSort consumes the shards.
		in := make([][]int64, p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Schedule: sched, Seed: 7})
		checkGloballySorted(t, shards, outs)
		if stats.Imbalance > 1.1+1e-9 {
			t.Errorf("%v: imbalance %.4f exceeds 1+eps", sched, stats.Imbalance)
		}
		if stats.N != p*perRank {
			t.Errorf("%v: N = %d", sched, stats.N)
		}
		if sched == OneRoundScanning && stats.Rounds != 1 {
			t.Errorf("scanning took %d rounds, want 1", stats.Rounds)
		}
	}
}

func TestSortSkewedDistributions(t *testing.T) {
	const p, perRank = 6, 1500
	for _, kind := range []dist.Kind{dist.Gaussian, dist.Exponential, dist.PowerSkew, dist.Staircase, dist.AlmostSorted} {
		spec := dist.Spec{Kind: kind}
		shards := spec.Shards(perRank, p, 11)
		in := make([][]int64, p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Seed: 3})
		checkGloballySorted(t, shards, outs)
		if stats.Imbalance > 1.1+1e-9 {
			t.Errorf("%v: imbalance %.4f exceeds 1+eps", kind, stats.Imbalance)
		}
	}
}

func TestSortSingleRank(t *testing.T) {
	shards := [][]int64{{5, 3, 1, 4, 2}}
	outs, stats := runSort(t, [][]int64{slices.Clone(shards[0])}, Options[int64]{Cmp: icmp})
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance != 1 {
		t.Errorf("single-rank imbalance %f", stats.Imbalance)
	}
}

func TestSortEmptyInput(t *testing.T) {
	shards := [][]int64{{}, {}, {}}
	outs, _ := runSort(t, shards, Options[int64]{Cmp: icmp})
	for r, out := range outs {
		if len(out) != 0 {
			t.Errorf("rank %d got %v from empty input", r, out)
		}
	}
}

func TestSortUnevenShards(t *testing.T) {
	// §2.1: uneven input divisions are supported.
	shards := [][]int64{
		dist.Spec{Kind: dist.Uniform}.Shard(3000, 0, 4, 5),
		{},
		dist.Spec{Kind: dist.Uniform}.Shard(10, 2, 4, 5),
		dist.Spec{Kind: dist.Uniform}.Shard(1500, 3, 4, 5),
	}
	in := make([][]int64, len(shards))
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1})
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", stats.Imbalance)
	}
}

func TestSortManyBucketsPerRank(t *testing.T) {
	// B = 4p buckets with contiguous ownership: still a global sort,
	// with finer splitters (the ChaNGa virtual-processor regime).
	const p, perRank = 4, 2000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 9)
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Buckets: 4 * p})
	checkGloballySorted(t, shards, outs)
	if stats.Buckets != 4*p {
		t.Errorf("stats.Buckets = %d", stats.Buckets)
	}
}

func TestSortRoundRobinOwner(t *testing.T) {
	// Non-contiguous placement (§6.3): output is not globally sorted in
	// rank order, but each rank's data is sorted and the union matches.
	const p, perRank = 4, 1000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 13)
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	buckets := 2 * p
	outs, _ := runSort(t, in, Options[int64]{
		Cmp: icmp, Epsilon: 0.1, Buckets: buckets,
		Owner: exchange.RoundRobinOwner(p),
	})
	var got []int64
	for r, out := range outs {
		if !slices.IsSorted(out) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, out...)
	}
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatal("round-robin outputs are not a permutation of the input")
	}
}

func TestSortApproxHistogramming(t *testing.T) {
	// §3.4: approximate local ranks still give a correct sort; load
	// balance loosens to ~2ε.
	const p, perRank = 6, 4000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 17)
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs, stats := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.1, Approx: true, Seed: 5})
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.25 {
		t.Errorf("approx imbalance %.4f exceeds 1+2.5ε", stats.Imbalance)
	}
}

func TestSortMassDuplicatesTerminates(t *testing.T) {
	// All keys equal: splitters cannot meet their windows, so the
	// fallback must fire — the sort still returns sorted output instead
	// of hanging (§4.3 motivates tagging for good balance here).
	const p = 4
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, 500)
		for i := range shards[r] {
			shards[r][i] = 7
		}
	}
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs, _ := runSort(t, in, Options[int64]{Cmp: icmp, Epsilon: 0.05, MaxRounds: 6})
	checkGloballySorted(t, shards, outs)
}

func TestSortRejectsMissingCmp(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(5*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		_, _, err := Sort(c, []int64{1}, Options[int64]{})
		if err == nil {
			return fmt.Errorf("missing Cmp accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDetermineSplittersAgreeAcrossRanks(t *testing.T) {
	const p, perRank = 5, 2000
	spec := dist.Spec{Kind: dist.Gaussian}
	shards := spec.Shards(perRank, p, 23)
	all := make([][]int64, p)
	w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		sp, info, err := DetermineSplitters(c, local, int64(p*perRank), Options[int64]{Cmp: icmp, Epsilon: 0.05})
		if err != nil {
			return err
		}
		if !info.Finalized {
			return fmt.Errorf("rank %d: not finalized", c.Rank())
		}
		if info.Rounds < 1 || info.TotalSample <= 0 {
			return fmt.Errorf("rank %d: bogus info %+v", c.Rank(), info)
		}
		all[c.Rank()] = sp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if !slices.Equal(all[r], all[0]) {
			t.Fatalf("rank %d splitters differ from rank 0", r)
		}
	}
	if len(all[0]) != p-1 {
		t.Fatalf("got %d splitters, want %d", len(all[0]), p-1)
	}
	if !slices.IsSorted(all[0]) {
		t.Fatal("splitters not sorted")
	}
}

func TestSortStatsShape(t *testing.T) {
	const p, perRank = 4, 3000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 31)
	_, stats := runSort(t, shards, Options[int64]{Cmp: icmp, Epsilon: 0.05})
	if stats.Rounds < 1 || stats.Rounds > 20 {
		t.Errorf("rounds = %d", stats.Rounds)
	}
	if len(stats.SamplePerRound) != stats.Rounds {
		t.Errorf("SamplePerRound len %d vs rounds %d", len(stats.SamplePerRound), stats.Rounds)
	}
	if stats.TotalSample <= 0 {
		t.Error("no samples counted")
	}
	if stats.SplitterBytes <= 0 || stats.ExchangeBytes <= 0 {
		t.Errorf("byte counters: splitter %d exchange %d", stats.SplitterBytes, stats.ExchangeBytes)
	}
	// Data exchange moves ~N keys; splitter traffic should be far less
	// (the whole point of the paper).
	if stats.SplitterBytes > stats.ExchangeBytes {
		t.Errorf("splitter bytes %d exceed exchange bytes %d", stats.SplitterBytes, stats.ExchangeBytes)
	}
	if stats.Total() <= 0 {
		t.Error("zero total time")
	}
}

// TestSortProperty: random shard sizes, range, p, and schedule — output is
// always the sorted permutation.
func TestSortProperty(t *testing.T) {
	f := func(seed uint32, pRaw, schedRaw uint8) bool {
		p := int(pRaw%6) + 1
		sched := Schedule(schedRaw % 3)
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 20}
		shards := make([][]int64, p)
		for r := range shards {
			n := int(seed%997) + 50
			shards[r] = spec.Shard(n, r, p, uint64(seed))
		}
		in := make([][]int64, p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs := make([][]int64, p)
		w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			out, _, err := Sort(c, in[c.Rank()], Options[int64]{
				Cmp: icmp, Epsilon: 0.2, Schedule: sched, Seed: uint64(seed) + 1,
			})
			outs[c.Rank()] = out
			return err
		})
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSortViaCoder: Options.Coder runs the entire pipeline in code
// space (encode once, sort codes, decode once) and must be
// rank-identical to the comparator plane — with both the materializing
// and the streaming exchange, and composable with the decorated
// Options.Code extractor plane as a third oracle.
func TestSortViaCoder(t *testing.T) {
	const p, perRank = 6, 3000
	for _, chunkKeys := range []int{0, 256} {
		shards := dist.Spec{Kind: dist.PowerSkew}.Shards(perRank, p, 77)
		clone := func() [][]int64 {
			in := make([][]int64, p)
			for r := range shards {
				in[r] = slices.Clone(shards[r])
			}
			return in
		}
		base := Options[int64]{Cmp: icmp, Epsilon: 0.1, Seed: 5, ChunkKeys: chunkKeys}

		wantOuts, wantStats := runSort(t, clone(), base)

		coded := base
		coded.Coder = keycoder.Int64{}
		gotOuts, gotStats := runSort(t, clone(), coded)

		decorated := base
		decorated.Code = func(k int64) uint64 { return keycoder.Int64{}.Encode(k) }
		decOuts, _ := runSort(t, clone(), decorated)

		for r := range wantOuts {
			if !slices.Equal(gotOuts[r], wantOuts[r]) {
				t.Fatalf("chunk=%d rank %d: Coder plane diverged from comparator plane", chunkKeys, r)
			}
			if !slices.Equal(decOuts[r], wantOuts[r]) {
				t.Fatalf("chunk=%d rank %d: Code extractor plane diverged from comparator plane", chunkKeys, r)
			}
		}
		if gotStats.Rounds != wantStats.Rounds || gotStats.TotalSample != wantStats.TotalSample {
			t.Errorf("chunk=%d: protocol diverged: %d rounds/%d sample vs %d/%d",
				chunkKeys, gotStats.Rounds, gotStats.TotalSample, wantStats.Rounds, wantStats.TotalSample)
		}
		checkGloballySorted(t, shards, gotOuts)
	}
}
