package keycoder

import (
	"math"
	"testing"
)

// The tentpole code plane makes every sort depend on these bijections:
// a single order inversion or lossy round trip would silently misplace
// keys across bucket boundaries. The fuzz targets below drive the
// properties with coverage-guided inputs seeded at the known-treacherous
// corners — IEEE-754 negatives, both zeros, subnormals, infinities, and
// the widening paths.

// float64Specials are the corner values every float fuzz run starts
// from, pairwise.
var float64Specials = []float64{
	math.Inf(-1), -math.MaxFloat64, -1.5, -1, -math.SmallestNonzeroFloat64 * 3,
	-math.SmallestNonzeroFloat64, math.Copysign(0, -1), 0,
	math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64 * 3, 1, 1.5,
	math.MaxFloat64, math.Inf(1),
}

// FuzzFloat64Coder: bit-exact round trip (both zeros and subnormals
// keep their payloads) and strict order preservation. The code order
// refines the comparator order at -0/+0: the comparator ties them, the
// encoding orders -0 < +0, and nothing may ever invert.
func FuzzFloat64Coder(f *testing.F) {
	for _, a := range float64Specials {
		for _, b := range float64Specials {
			f.Add(a, b)
		}
	}
	var c Float64
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsNaN(b) {
			return // NaN order is documented as unspecified
		}
		ra := c.Decode(c.Encode(a))
		if math.Float64bits(ra) != math.Float64bits(a) {
			t.Fatalf("round trip not bit-exact: %g (%#x) -> %g (%#x)",
				a, math.Float64bits(a), ra, math.Float64bits(ra))
		}
		ea, eb := c.Encode(a), c.Encode(b)
		switch {
		case a < b:
			if ea >= eb {
				t.Fatalf("order inverted: %g < %g but %#x >= %#x", a, b, ea, eb)
			}
		case a > b:
			if ea <= eb {
				t.Fatalf("order inverted: %g > %g but %#x <= %#x", a, b, ea, eb)
			}
		default:
			// a == b numerically. Identical bits must agree exactly; the
			// ±0 pair is ordered -0 < +0 (the documented refinement of
			// the comparator's tie).
			abits, bbits := math.Float64bits(a), math.Float64bits(b)
			switch {
			case abits == bbits:
				if ea != eb {
					t.Fatalf("identical values, different codes: %g -> %#x vs %#x", a, ea, eb)
				}
			case math.Signbit(a) && !math.Signbit(b):
				if ea >= eb {
					t.Fatalf("-0 must encode below +0: %#x >= %#x", ea, eb)
				}
			case !math.Signbit(a) && math.Signbit(b):
				if ea <= eb {
					t.Fatalf("+0 must encode above -0: %#x <= %#x", ea, eb)
				}
			}
		}
	})
}

// FuzzInt64Coder: round trip and strict order across the full signed
// range.
func FuzzInt64Coder(f *testing.F) {
	specials := []int64{math.MinInt64, math.MinInt64 + 1, -2, -1, 0, 1, 2, math.MaxInt64 - 1, math.MaxInt64}
	for _, a := range specials {
		for _, b := range specials {
			f.Add(a, b)
		}
	}
	var c Int64
	f.Fuzz(func(t *testing.T, a, b int64) {
		if c.Decode(c.Encode(a)) != a {
			t.Fatalf("round trip lost %d", a)
		}
		if (a < b) != (c.Encode(a) < c.Encode(b)) || (a == b) != (c.Encode(a) == c.Encode(b)) {
			t.Fatalf("order not preserved for (%d, %d)", a, b)
		}
	})
}

// FuzzInt32Coder: the widening path must round-trip through the Int64
// encoding without truncation and preserve order and equality.
func FuzzInt32Coder(f *testing.F) {
	specials := []int32{math.MinInt32, math.MinInt32 + 1, -1, 0, 1, math.MaxInt32 - 1, math.MaxInt32}
	for _, a := range specials {
		for _, b := range specials {
			f.Add(a, b)
		}
	}
	var c Int32
	f.Fuzz(func(t *testing.T, a, b int32) {
		if c.Decode(c.Encode(a)) != a {
			t.Fatalf("round trip lost %d", a)
		}
		// Widening consistency: the Int32 code is the Int64 code of the
		// widened value, so cross-width comparisons stay coherent.
		if c.Encode(a) != (Int64{}).Encode(int64(a)) {
			t.Fatalf("widening diverged for %d", a)
		}
		if (a < b) != (c.Encode(a) < c.Encode(b)) || (a == b) != (c.Encode(a) == c.Encode(b)) {
			t.Fatalf("order not preserved for (%d, %d)", a, b)
		}
	})
}

// FuzzUint32Coder: widening from the unsigned side.
func FuzzUint32Coder(f *testing.F) {
	for _, a := range []uint32{0, 1, math.MaxUint32 - 1, math.MaxUint32} {
		f.Add(a, a/2)
	}
	var c Uint32
	f.Fuzz(func(t *testing.T, a, b uint32) {
		if c.Decode(c.Encode(a)) != a {
			t.Fatalf("round trip lost %d", a)
		}
		if (a < b) != (c.Encode(a) < c.Encode(b)) {
			t.Fatalf("order not preserved for (%d, %d)", a, b)
		}
	})
}

// FuzzFloat32Coder: bit-exact round trips and order preservation on the
// widened single-precision plane.
func FuzzFloat32Coder(f *testing.F) {
	specials := []float32{float32(math.Inf(-1)), -math.MaxFloat32, -1,
		-math.SmallestNonzeroFloat32, float32(math.Copysign(0, -1)), 0,
		math.SmallestNonzeroFloat32, 1, math.MaxFloat32, float32(math.Inf(1))}
	for _, a := range specials {
		for _, b := range specials {
			f.Add(math.Float32bits(a), math.Float32bits(b))
		}
	}
	var c Float32
	f.Fuzz(func(t *testing.T, abits, bbits uint32) {
		a, b := math.Float32frombits(abits), math.Float32frombits(bbits)
		if a != a || b != b {
			return // NaN order unspecified
		}
		if got := c.Decode(c.Encode(a)); math.Float32bits(got) != abits {
			t.Fatalf("round trip lost %g (bits %#x -> %#x)", a, abits, math.Float32bits(got))
		}
		ea, eb := c.Encode(a), c.Encode(b)
		switch {
		case a < b:
			if ea >= eb {
				t.Fatalf("order inverted: %g < %g but %#x >= %#x", a, b, ea, eb)
			}
		case a > b:
			if ea <= eb {
				t.Fatalf("order inverted: %g > %g but %#x <= %#x", a, b, ea, eb)
			}
		case abits == bbits:
			if ea != eb {
				t.Fatalf("identical values, different codes: %g -> %#x vs %#x", a, ea, eb)
			}
		default:
			// The ±0 pair: ordered -0 < +0 like Float64.
			if math.Signbit(float64(a)) && ea >= eb {
				t.Fatalf("-0 must encode below +0: %#x >= %#x", ea, eb)
			}
			if !math.Signbit(float64(a)) && ea <= eb {
				t.Fatalf("+0 must encode above -0: %#x <= %#x", ea, eb)
			}
		}
	})
}

// TestFloat64SpecialsTotalOrder pins the exact documented order of the
// special values — including the -0 < +0 refinement — as a table test
// that runs without the fuzz engine.
func TestFloat64SpecialsTotalOrder(t *testing.T) {
	var c Float64
	for i := 1; i < len(float64Specials); i++ {
		lo, hi := float64Specials[i-1], float64Specials[i]
		if c.Encode(lo) >= c.Encode(hi) {
			t.Errorf("Encode(%g) = %#x not < Encode(%g) = %#x", lo, c.Encode(lo), hi, c.Encode(hi))
		}
	}
}
