package hssort

import (
	"cmp"
	"fmt"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
	"hssort/internal/exactsplit"
)

// BenchmarkAblationEpsilonLadder walks the load-balance dial from loose
// HSS thresholds down to exact (ε = 0) splitting via distributed
// multi-select — quantifying the §2.1 observation that exactness costs
// O(log N) rounds while HSS pays O(log log p/ε).
func BenchmarkAblationEpsilonLadder(b *testing.B) {
	const p, perRank = 16, 20000
	for _, eps := range []float64{0.2, 0.05, 0.01} {
		b.Run(fmt.Sprintf("hss-eps=%g", eps), func(b *testing.B) {
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(Config{Procs: p, Epsilon: eps, Seed: 3}, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Rounds), "rounds")
			b.ReportMetric(stats.Imbalance, "imbalance")
		})
	}
	b.Run("exact-eps=0", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
			b.StartTimer()
			w := comm.NewWorld(p, comm.WithTimeout(2*time.Minute))
			err := w.Run(func(c *comm.Comm) error {
				local := shards[c.Rank()]
				slices.Sort(local)
				_, _, err := exactsplit.PerfectSplitters(c, local, p,
					exactsplit.Options[int64]{Cmp: cmp.Compare[int64]})
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds++ // exact rounds are internal; wall time is the metric
		}
		b.ReportMetric(1.0, "imbalance")
	})
}
