package bitonic

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func trySort(shards [][]int64) ([][]int64, error) {
	p := len(shards)
	outs := make([][]int64, p)
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, _, err := Sort(c, shards[c.Rank()], Options[int64]{Cmp: icmp})
		outs[c.Rank()] = out
		return err
	})
	return outs, err
}

func TestBitonicPowersOfTwo(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		const perRank = 256
		spec := dist.Spec{Kind: dist.Uniform}
		shards := spec.Shards(perRank, p, 3)
		in := make([][]int64, p)
		var want []int64
		for i := range shards {
			in[i] = slices.Clone(shards[i])
			want = append(want, shards[i]...)
		}
		slices.Sort(want)
		outs, err := trySort(in)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		var got []int64
		for r, o := range outs {
			if len(o) != perRank {
				t.Fatalf("p=%d rank %d: %d keys, want %d (bitonic preserves counts)", p, r, len(o), perRank)
			}
			if !slices.IsSorted(o) {
				t.Fatalf("p=%d rank %d not sorted", p, r)
			}
			got = append(got, o...)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("p=%d: not the sorted permutation", p)
		}
	}
}

func TestBitonicRejectsNonPowerOfTwo(t *testing.T) {
	_, err := trySort([][]int64{{1}, {2}, {3}})
	if err == nil {
		t.Fatal("p=3 accepted")
	}
}

func TestBitonicRejectsUnequalSizes(t *testing.T) {
	_, err := trySort([][]int64{{1, 2}, {3}})
	if err == nil {
		t.Fatal("unequal local sizes accepted")
	}
}

func TestBitonicRejectsMissingCmp(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(5*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		_, _, err := Sort(c, []int64{1}, Options[int64]{})
		if err == nil {
			t.Error("missing Cmp accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareSplitHalves(t *testing.T) {
	mine := []int64{1, 4, 7}
	theirs := []int64{2, 3, 9}
	low := compareSplit(mine, theirs, true, icmp)
	if !slices.Equal(low, []int64{1, 2, 3}) {
		t.Errorf("low half %v", low)
	}
	high := compareSplit([]int64{1, 4, 7}, theirs, false, icmp)
	if !slices.Equal(high, []int64{4, 7, 9}) {
		t.Errorf("high half %v", high)
	}
}

func TestBitonicProperty(t *testing.T) {
	f := func(seed uint32, pExp uint8) bool {
		p := 1 << (pExp % 4) // 1..8
		perRank := int(seed%100) + 4
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 20}
		shards := make([][]int64, p)
		var want []int64
		for r := range shards {
			shards[r] = spec.Shard(perRank, r, p, uint64(seed))
			want = append(want, shards[r]...)
		}
		slices.Sort(want)
		in := make([][]int64, p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, err := trySort(in)
		if err != nil {
			t.Log(err)
			return false
		}
		var got []int64
		for _, o := range outs {
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
