package hssort

import (
	"cmp"
	"context"
)

// KV pairs a sortable key with an opaque payload that travels with it
// through the exchange — the paper's experimental records are 8-byte
// integer keys with a 4-byte payload (Fig 6.1). Payloads are never
// inspected: all splitter decisions use only keys.
type KV[K cmp.Ordered, V any] struct {
	// Key orders the record.
	Key K
	// Val rides along.
	Val V
}

// CompareKV orders KV records by key. Records with equal keys compare
// equal; combine with Config.TagDuplicates for a strict total order on
// duplicate-heavy data.
func CompareKV[K cmp.Ordered, V any](a, b KV[K, V]) int {
	return cmp.Compare(a.Key, b.Key)
}

// KVSorter is the record-sorting engine: NewKV's counterpart of Sorter
// for keyed payloads. It exposes the same lifecycle — SortKV
// repeatedly over one long-lived machine, Plan/SortWithPlan for
// prepare-once/sort-many, Close to release the workers.
type KVSorter[K cmp.Ordered, V any] struct {
	s *Sorter[KV[K, V]]
}

// NewKV creates a KVSorter. The HistogramSort and Radix algorithms are
// unavailable for records (they need key-space arithmetic); use the
// HSS variants or the sample sorts.
//
// When the key type admits an order-preserving code (built-in for the
// integer and float key types, or a key Coder supplied via
// Config.Coder) and Config.CodePath allows it, records ride the
// decorated code plane: the local sort radix-sorts a uint64 code
// decoration with the payloads in tow, and partition cuts and merges
// compare codes instead of calling the comparator.
func NewKV[K cmp.Ordered, V any](cfg Config) (*KVSorter[K, V], error) {
	keyCoder, err := resolveCoder(cfg, coderFor[K]())
	if err != nil {
		return nil, err
	}
	var code func(KV[K, V]) uint64
	var isNaN func(KV[K, V]) bool
	if keyCoder != nil {
		code = func(kv KV[K, V]) uint64 { return keyCoder.Encode(kv.Key) }
		var zero K
		switch any(zero).(type) {
		case float64, float32:
			isNaN = func(kv KV[K, V]) bool { return kv.Key != kv.Key }
		}
	}
	// The record engine resolves Config.Coder against the key type
	// above; clear it so the inner constructor does not retry the
	// resolution against the record type.
	cfg.Coder = nil
	s, err := newSorter(cfg, CompareKV[K, V], nil, code, isNaN, false)
	if err != nil {
		return nil, err
	}
	return &KVSorter[K, V]{s: s}, nil
}

// SortKV sorts keyed records across the engine's simulated processors;
// see Sorter.Sort for semantics. Records with equal keys keep their
// per-bucket multiset but — as with any unstable sort — not a
// particular relative order.
func (s *KVSorter[K, V]) SortKV(ctx context.Context, shards [][]KV[K, V]) ([][]KV[K, V], Stats, error) {
	return s.s.Sort(ctx, shards)
}

// Plan runs splitter determination only and returns the reusable plan;
// see Sorter.Plan. The plan's splitters are records whose payloads are
// incidental — only keys partition.
func (s *KVSorter[K, V]) Plan(ctx context.Context, shards [][]KV[K, V]) (*Plan[KV[K, V]], error) {
	return s.s.Plan(ctx, shards)
}

// SortWithPlan sorts records with a previously prepared plan, skipping
// splitter determination; see Sorter.SortWithPlan.
func (s *KVSorter[K, V]) SortWithPlan(ctx context.Context, plan *Plan[KV[K, V]], shards [][]KV[K, V]) ([][]KV[K, V], Stats, error) {
	return s.s.SortWithPlan(ctx, plan, shards)
}

// Close stops the engine's worker goroutines. Idempotent.
func (s *KVSorter[K, V]) Close() { s.s.Close() }

// SortKV sorts keyed records across simulated processors; see Sort for
// semantics and NewKV for the record plane details. It is a one-shot
// wrapper over a throwaway KVSorter.
func SortKV[K cmp.Ordered, V any](cfg Config, shards [][]KV[K, V]) ([][]KV[K, V], Stats, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(shards)
	}
	s, err := NewKV[K, V](cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.SortKV(context.Background(), shards)
}
