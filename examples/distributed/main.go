// Example distributed runs a real multi-process sort on localhost: the
// program re-executes itself as four worker processes (one rank each),
// the workers bootstrap a TCP mesh through rank 0's rendezvous
// listener, sort a deterministic workload twice through one engine
// (showing cross-process engine reuse), and the parent verifies the
// assembled result — partitions ordered across rank boundaries, global
// key count conserved — exiting non-zero on any violation.
//
//	go run ./examples/distributed
//
// See the README's "Distributed deployment" section and docs/WIRE.md
// for the protocol underneath.
package main

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"

	"hssort"
	"hssort/internal/dist"
)

const (
	procs   = 4
	perRank = 50_000
	runs    = 2
	rankEnv = "HSSORT_DIST_RANK"
	addrEnv = "HSSORT_DIST_COORDINATOR"
)

func main() {
	if r := os.Getenv(rankEnv); r != "" {
		rank, err := strconv.Atoi(r)
		if err != nil {
			fatal(err)
		}
		if err := worker(rank, os.Getenv(addrEnv)); err != nil {
			fatal(fmt.Errorf("rank %d: %w", rank, err))
		}
		return
	}
	if err := launch(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distributed:", err)
	os.Exit(1)
}

// worker is one rank's process: build a worker-mode engine (blocks in
// rendezvous until all four processes are up), sort twice through it,
// and report each run's partition shape on stdout.
func worker(rank int, coordinator string) error {
	cfg := hssort.Config{
		Procs:          procs,
		Epsilon:        0.05,
		Seed:           42,
		Transport:      hssort.TransportTCP,
		StreamExchange: true,
		TCP:            hssort.TCPConfig{Coordinator: coordinator, Rank: rank},
	}
	engine, err := hssort.New[int64](cfg)
	if err != nil {
		return err
	}
	defer engine.Close()

	for run := 0; run < runs; run++ {
		// Every process derives the same deterministic global input and
		// contributes its own rank's shard.
		shards := make([][]int64, procs)
		shards[rank] = dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.
			Shards(perRank, procs, 42+uint64(run))[rank]
		outs, stats, err := engine.Sort(context.Background(), shards)
		if err != nil {
			return err
		}
		part := outs[rank]
		lo, hi := int64(0), int64(0)
		if len(part) > 0 {
			lo, hi = part[0], part[len(part)-1]
		}
		if !sort.SliceIsSorted(part, func(i, j int) bool { return part[i] < part[j] }) {
			return fmt.Errorf("run %d: partition not sorted", run)
		}
		fmt.Printf("PART run=%d rank=%d n=%d lo=%d hi=%d\n", run, rank, len(part), lo, hi)
		if rank == 0 {
			fmt.Printf("STATS run=%d rounds=%d imbalance=%.4f\n", run, stats.Rounds, stats.Imbalance)
		}
	}
	return nil
}

// launch forks the worker fleet and verifies the assembled output.
func launch() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	// Reserve a coordinator port; rank 0 rebinds it. The tiny release
	// race is why bootstrap failures retry below.
	for attempt := 1; ; attempt++ {
		lines, err := runFleet(exe)
		if err == nil {
			return verify(lines)
		}
		if attempt >= 3 {
			return err
		}
		fmt.Fprintf(os.Stderr, "retrying after bootstrap race: %v\n", err)
	}
}

func runFleet(exe string) ([]string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	coordinator := ln.Addr().String()
	ln.Close()

	fmt.Printf("launching %d worker processes (coordinator %s)\n", procs, coordinator)
	var mu sync.Mutex
	var lines []string
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("%s=%d", rankEnv, r),
				fmt.Sprintf("%s=%s", addrEnv, coordinator))
			out, err := cmd.StdoutPipe()
			if err != nil {
				errs[r] = err
				return
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				errs[r] = err
				return
			}
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				mu.Lock()
				lines = append(lines, sc.Text())
				fmt.Printf("[rank %d] %s\n", r, sc.Text())
				mu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				errs[r] = fmt.Errorf("worker %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lines, nil
}

// verify checks the fleet's reports: every run accounts for all keys
// and partitions are ordered across rank boundaries.
func verify(lines []string) error {
	type part struct {
		n      int
		lo, hi int64
		seen   bool
	}
	parts := make([][]part, runs)
	for i := range parts {
		parts[i] = make([]part, procs)
	}
	for _, line := range lines {
		var run, rank, n int
		var lo, hi int64
		if _, err := fmt.Sscanf(line, "PART run=%d rank=%d n=%d lo=%d hi=%d", &run, &rank, &n, &lo, &hi); err != nil {
			continue
		}
		parts[run][rank] = part{n: n, lo: lo, hi: hi, seen: true}
	}
	for run := 0; run < runs; run++ {
		total := 0
		for r, p := range parts[run] {
			if !p.seen {
				return fmt.Errorf("run %d: no report from rank %d", run, r)
			}
			total += p.n
			if r > 0 && parts[run][r-1].n > 0 && p.n > 0 && parts[run][r-1].hi > p.lo {
				return fmt.Errorf("run %d: rank %d..%d boundary out of order (%d > %d)",
					run, r-1, r, parts[run][r-1].hi, p.lo)
			}
		}
		if total != procs*perRank {
			return fmt.Errorf("run %d: %d keys accounted, want %d", run, total, procs*perRank)
		}
	}
	fmt.Printf("verified: %d runs × %d keys sorted across %d processes, partitions ordered rank to rank\n",
		runs, procs*perRank, procs)
	return nil
}
