package hssort

import (
	"slices"
	"testing"
	"testing/quick"

	"hssort/internal/dist"
)

// sortableAlgorithms lists every algorithm with its constraints satisfied
// by (p=4 or 8, equal shards).
var sortableAlgorithms = []Algorithm{
	HSS, HSSOneRound, HSSTheoretical,
	SampleSortRegular, SampleSortRandom,
	HistogramSort, Bitonic, Radix, NodeHSS,
}

func shardsFor(t *testing.T, kind dist.Kind, p, perRank int, seed uint64) [][]int64 {
	t.Helper()
	return dist.Spec{Kind: kind}.Shards(perRank, p, seed)
}

func checkSorted(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("output not the sorted permutation of the input")
	}
}

func TestSortAllAlgorithms(t *testing.T) {
	const p, perRank = 4, 1000
	for _, alg := range sortableAlgorithms {
		shards := shardsFor(t, dist.Uniform, p, perRank, 3)
		in := cloneShards(shards)
		cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 5}
		if alg == NodeHSS {
			cfg.CoresPerNode = 2
		}
		outs, stats, err := Sort(cfg, in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkSorted(t, shards, outs)
		if stats.N != p*perRank {
			t.Errorf("%v: N = %d", alg, stats.N)
		}
		if stats.TotalMsgs <= 0 || stats.TotalBytes <= 0 {
			t.Errorf("%v: no traffic counted", alg)
		}
		if stats.Total() <= 0 {
			t.Errorf("%v: no time recorded", alg)
		}
	}
}

func TestSortFloatKeys(t *testing.T) {
	const p = 4
	shards := make([][]float64, p)
	for r := range shards {
		for i := 0; i < 500; i++ {
			shards[r] = append(shards[r], float64((r*7919+i*104729)%100000)/3.0-1e4)
		}
	}
	for _, alg := range []Algorithm{HSS, HistogramSort, Radix} {
		in := make([][]float64, p)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, _, err := Sort(Config{Procs: p, Algorithm: alg, Epsilon: 0.1}, in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		var want, got []float64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			got = append(got, o...)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("%v: float keys mis-sorted", alg)
		}
	}
}

func TestSortFuncCustomKeyType(t *testing.T) {
	type pair struct{ a, b int32 }
	const p = 3
	shards := make([][]pair, p)
	for r := range shards {
		for i := 0; i < 300; i++ {
			shards[r] = append(shards[r], pair{a: int32((i * 31) % 97), b: int32(r)})
		}
	}
	cmpPair := func(x, y pair) int {
		if x.a != y.a {
			return int(x.a - y.a)
		}
		return int(x.b - y.b)
	}
	outs, _, err := SortFunc(Config{Procs: p, Epsilon: 0.2}, shards, cmpPair)
	if err != nil {
		t.Fatal(err)
	}
	var prev *pair
	for _, o := range outs {
		for i := range o {
			if prev != nil && cmpPair(*prev, o[i]) > 0 {
				t.Fatal("custom key type mis-sorted")
			}
			prev = &o[i]
		}
	}
}

func TestSortFuncRejectsCoderAlgorithms(t *testing.T) {
	type opaque struct{ v int }
	shards := [][]opaque{{{1}}, {{2}}}
	cmpO := func(a, b opaque) int { return a.v - b.v }
	for _, alg := range []Algorithm{HistogramSort, Radix} {
		if _, _, err := SortFunc(Config{Procs: 2, Algorithm: alg}, shards, cmpO); err == nil {
			t.Errorf("%v accepted a coder-less key type", alg)
		}
	}
}

func TestTagDuplicatesRestoresBalance(t *testing.T) {
	const p, perRank = 4, 800
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, perRank)
		// Two distinct values: untagged HSS cannot balance this.
		for i := range shards[r] {
			shards[r][i] = int64(i % 2)
		}
	}
	outs, stats, err := Sort(Config{Procs: p, Epsilon: 0.1, TagDuplicates: true, Seed: 7}, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("tagged imbalance %.4f", stats.Imbalance)
	}
}

func TestTagDuplicatesUnsupportedAlgorithms(t *testing.T) {
	shards := [][]int64{{1}, {2}}
	for _, alg := range []Algorithm{Bitonic, Radix, HistogramSort} {
		cfg := Config{Procs: 2, Algorithm: alg, TagDuplicates: true}
		if _, _, err := Sort(cfg, cloneShards(shards)); err == nil {
			t.Errorf("%v accepted TagDuplicates", alg)
		}
	}
}

func TestVirtualProcessorBuckets(t *testing.T) {
	const p, perRank = 4, 1000
	shards := shardsFor(t, dist.Gaussian, p, perRank, 9)
	outs, stats, err := Sort(Config{Procs: p, Buckets: 16, Epsilon: 0.1}, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, shards, outs)
	if stats.Buckets != 16 {
		t.Errorf("Buckets = %d", stats.Buckets)
	}
}

func TestRoundRobinBucketsPermutation(t *testing.T) {
	const p, perRank = 4, 600
	shards := shardsFor(t, dist.Uniform, p, perRank, 11)
	outs, _, err := Sort(Config{Procs: p, Buckets: 8, RoundRobinBuckets: true, Epsilon: 0.1}, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	for _, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatal("per-rank output not sorted")
		}
		got = append(got, o...)
	}
	slices.Sort(want)
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatal("round-robin output not a permutation")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Sort(Config{Procs: 3}, [][]int64{{1}}); err == nil {
		t.Error("Procs/shards mismatch accepted")
	}
	if _, _, err := Sort(Config{}, [][]int64{}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, _, err := Sort(Config{Algorithm: Algorithm(99)}, [][]int64{{1}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, _, err := SortFunc[int64](Config{}, [][]int64{{1}}, nil); err == nil {
		t.Error("nil comparator accepted")
	}
	if _, _, err := Sort(Config{Algorithm: NodeHSS}, [][]int64{{1}, {2}}); err == nil {
		t.Error("NodeHSS without CoresPerNode accepted")
	}
}

func TestSimulateSplittersFacade(t *testing.T) {
	res, err := SimulateSplitters(1<<20, 256, 0.05, HSS, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finalized || res.Imbalance > 1.05+1e-9 {
		t.Errorf("sim result %+v", res)
	}
	if _, err := SimulateSplitters(100, 4, 0.05, Bitonic, 0, 1); err == nil {
		t.Error("sim accepted a non-HSS algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, alg := range sortableAlgorithms {
		if alg.String() == "" {
			t.Errorf("empty name for %d", int(alg))
		}
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Error("unknown algorithm name")
	}
}

// TestFacadeProperty drives the facade across random configurations.
func TestFacadeProperty(t *testing.T) {
	algs := []Algorithm{HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom}
	f := func(seed uint32, aRaw, pRaw uint8) bool {
		alg := algs[int(aRaw)%len(algs)]
		p := int(pRaw%4) + 1
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 20}
		shards := make([][]int64, p)
		for r := range shards {
			shards[r] = spec.Shard(int(seed%400)+20, r, p, uint64(seed))
		}
		outs, _, err := Sort(Config{
			Procs: p, Algorithm: alg, Epsilon: 0.2, Seed: uint64(seed) + 1, MaxOversample: 300,
		}, cloneShards(shards))
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func cloneShards(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}
