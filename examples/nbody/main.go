// N-body domain decomposition, the paper's motivating application (§6.3):
// every step of an N-body simulation sorts particles by space-filling-
// curve key so each processor owns a compact spatial region. Particle
// positions cluster heavily (galaxies!), so the key distribution is
// exactly the skewed case where Histogram Sort with Sampling shines over
// classic histogram sort's key-space bisection.
//
// This example builds a Plummer-sphere "galaxy", computes Morton keys,
// sorts them with both algorithms across 16 simulated processors with 64
// virtual-processor buckets, and compares the splitter-determination
// work. It then simulates the per-timestep loop the way a production
// code would run it: one long-lived Sorter engine, one splitter Plan,
// and a plan-reuse sort per step — particles move only slightly between
// steps, so the same splitters keep the decomposition balanced with
// zero histogramming rounds.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"slices"

	"hssort"
)

// mortonKey interleaves the top 21 bits of each quantized coordinate.
func mortonKey(x, y, z float64) uint64 {
	return spread(quantize(x)) | spread(quantize(y))<<1 | spread(quantize(z))<<2
}

func quantize(v float64) uint64 {
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		v = math.Nextafter(1, 0)
	}
	return uint64(v * (1 << 21))
}

func spread(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// plummerKeys draws n particles from a Plummer profile centred in the
// unit box and returns their Morton keys.
func plummerKeys(n int, seed uint64) []uint64 {
	rng := rand.New(rand.NewPCG(seed, 99))
	keys := make([]uint64, n)
	const a = 0.02
	for i := range keys {
		u := rng.Float64()
		for u == 0 || u > 0.999 {
			u = rng.Float64()
		}
		u23 := math.Pow(u, 2.0/3.0)
		r := a * math.Sqrt(u23/(1-u23))
		zc := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		s := math.Sqrt(1 - zc*zc)
		keys[i] = mortonKey(0.5+r*s*math.Cos(phi), 0.5+r*s*math.Sin(phi), 0.5+r*zc)
	}
	return keys
}

func main() {
	const procs = 16
	const particles = 400_000
	const buckets = 4 * procs // virtual processors (TreePieces) per core

	all := plummerKeys(particles, 7)
	// Particles arrive unsorted, dealt round-robin to processors.
	shards := make([][]uint64, procs)
	for i, k := range all {
		shards[i%procs] = append(shards[i%procs], k)
	}

	run := func(alg hssort.Algorithm) hssort.Stats {
		in := make([][]uint64, procs)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		_, stats, err := hssort.Sort(hssort.Config{
			Procs:     procs,
			Algorithm: alg,
			Buckets:   buckets,
			Epsilon:   0.05,
			Seed:      3,
		}, in)
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		return stats
	}

	hss := run(hssort.HSS)
	old := run(hssort.HistogramSort)

	fmt.Printf("domain decomposition of %d clustered particles, %d processors, %d buckets\n\n",
		particles, procs, buckets)
	fmt.Printf("%-28s %14s %14s\n", "", "HSS", "histogram sort")
	fmt.Printf("%-28s %14d %14d\n", "probe rounds", hss.Rounds, old.Rounds)
	fmt.Printf("%-28s %14d %14d\n", "probe keys total", hss.TotalSample, old.TotalSample)
	fmt.Printf("%-28s %14v %14v\n", "splitter determination", hss.Splitter, old.Splitter)
	fmt.Printf("%-28s %14.4f %14.4f\n", "load imbalance", hss.Imbalance, old.Imbalance)
	fmt.Println("\nClassic histogram sort bisects the 63-bit Morton key space, paying a")
	fmt.Println("round per bit of skew; HSS samples the data instead and converges in a")
	fmt.Println("handful of rounds regardless of how clustered the galaxy is.")

	// Timestep loop: between steps the galaxy barely moves, so the
	// decomposition learned once keeps paying off (Stats.Rounds == 0),
	// guarded against the day the cluster drifts too far.
	ctx := context.Background()
	engine, err := hssort.New[uint64](hssort.Config{
		Procs:         procs,
		Buckets:       buckets,
		Epsilon:       0.05,
		Seed:          3,
		PlanStaleness: 1.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	plan, err := engine.Plan(ctx, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntimestep loop with one reusable plan (%d rounds to prepare):\n", plan.Rounds)
	for step := 1; step <= 3; step++ {
		in := plummerKeys(particles, 7+uint64(step)) // jittered galaxy
		stepShards := make([][]uint64, procs)
		for i, k := range in {
			stepShards[i%procs] = append(stepShards[i%procs], k)
		}
		_, stats, err := engine.SortWithPlan(ctx, plan, stepShards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: %d histogram rounds, imbalance %.4f (replanned: %v)\n",
			step, stats.Rounds, stats.Imbalance, stats.Replanned)
	}
}
