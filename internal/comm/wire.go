package comm

// wire.go implements the serialization layer behind TCPTransport: a
// self-describing binary payload codec plus the frame header both ends
// of a connection agree on. The format is specified in docs/WIRE.md;
// keep the two in sync (and bump wireProtoVersion on any change).
//
// Design constraints, in order:
//
//  1. Every payload the repository's protocols actually send must round
//     trip: key slices of all supported types, code slices, KV record
//     slices, and the small generic protocol structs (stream chunks,
//     gather parts, round plans) — including their unexported fields.
//  2. The data plane must not pay per-element reflection. Slices and
//     structs whose memory holds no pointers are moved as a single bulk
//     copy of their in-memory representation; explicit type switches
//     cover the hottest slice types with no reflection at all.
//  3. Both endpoints run the same binary (enforced by the handshake's
//     protocol version and documented in docs/WIRE.md), so in-memory
//     layout — field order, padding, the 8-byte int — is shared and
//     type names are stable identifiers.
//
// Payloads are framed as
//
//	uvarint(len(typeName)) typeName encodedValue
//
// where typeName is the stable registered name of the payload's concrete
// Go type and a zero-length name denotes a nil payload. The receiver
// resolves the name through the wire registry, so every concrete type
// that crosses a process boundary must be registered on the receiving
// side before it arrives — RegisterWire is idempotent and cheap, and the
// SPMD protocols register at function entry, which is symmetric on both
// ends (see typed.go, internal/exchange, internal/collective).

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// wireProtoVersion is the wire-protocol generation carried in every
// bootstrap handshake. Bump it whenever the frame header, the payload
// encoding, or the bootstrap messages change shape; peers with different
// versions refuse to connect instead of corrupting each other.
//
// Version 2 added the variable-length byte-key payload plane: [][]byte
// moves through a dedicated arena codec (docs/WIRE.md, "Variable-length
// records"). The byte layout of previously existing payloads is
// unchanged, but hsswire/1 peers never registered the byte-key types,
// so the versions must not mix.
//
// Version 3 added liveness and recovery: the heartbeat frame kind, the
// crash fields of the abort payload, the rejoin bootstrap messages and
// the generation field of the table reply. An hsswire/2 peer would
// treat a heartbeat as a protocol error, so the versions must not mix.
const wireProtoVersion = 3

// Frame kinds. A frame is the unit of the TCP transport's framing layer:
// a fixed 25-byte header followed by length payload bytes (see
// docs/WIRE.md for the byte-exact layout).
const (
	// frameData carries one Message: the payload bytes are a
	// self-describing codec value delivered to the destination rank's
	// mailbox.
	frameData = 1 + iota
	// frameAbort propagates an abort latch: payload is a JSON
	// wireAbort. Fenced by generation like data.
	frameAbort
	// frameBarrierEnter and frameBarrierRelease implement the
	// transport's native barrier, centralized at rank 0. The barrier
	// sequence number travels in the tag field; payload is empty.
	frameBarrierEnter
	frameBarrierRelease
	// frameShutdown announces a graceful close of the sending side;
	// a subsequent EOF from that peer is teardown, not failure.
	frameShutdown
	// frameHeartbeat is a liveness probe: empty payload, consumed by the
	// receiving pump without entering the mailbox, and exempt from
	// generation fencing (liveness is a property of the process, not of
	// any one run). Sent periodically when TCPOptions.PeerTimeout is set.
	frameHeartbeat
)

// frameHeaderLen is the fixed size of the frame header on the wire:
// kind(1) src(4) dst(4) tag(4) gen(4) length(8), little-endian.
const frameHeaderLen = 1 + 4 + 4 + 4 + 4 + 8

// frameHeader is the decoded header of one wire frame.
type frameHeader struct {
	kind byte
	src  uint32
	dst  uint32
	tag  uint32
	gen  uint32
	len  uint64
}

// putFrameHeader encodes h into buf[:frameHeaderLen].
func putFrameHeader(buf []byte, h frameHeader) {
	buf[0] = h.kind
	binary.LittleEndian.PutUint32(buf[1:], h.src)
	binary.LittleEndian.PutUint32(buf[5:], h.dst)
	binary.LittleEndian.PutUint32(buf[9:], h.tag)
	binary.LittleEndian.PutUint32(buf[13:], h.gen)
	binary.LittleEndian.PutUint64(buf[17:], h.len)
}

// parseFrameHeader decodes buf[:frameHeaderLen].
func parseFrameHeader(buf []byte) frameHeader {
	return frameHeader{
		kind: buf[0],
		src:  binary.LittleEndian.Uint32(buf[1:]),
		dst:  binary.LittleEndian.Uint32(buf[5:]),
		tag:  binary.LittleEndian.Uint32(buf[9:]),
		gen:  binary.LittleEndian.Uint32(buf[13:]),
		len:  binary.LittleEndian.Uint64(buf[17:]),
	}
}

// wireAbort is the JSON control payload of a frameAbort: enough to
// reconstruct an error on the receiving process that satisfies the same
// errors.Is identities as the original — in particular cooperative
// cancellation, where every worker process must observe ctx.Err().
type wireAbort struct {
	// Msg is the abort error's text.
	Msg string `json:"msg"`
	// Canceled and Deadline report errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) on the originating side.
	Canceled bool `json:"canceled,omitempty"`
	Deadline bool `json:"deadline,omitempty"`
	// Crash and CrashRank report that the abort was a *PeerCrashError
	// for CrashRank, so every survivor reconstructs the same typed error
	// (same crashed rank) regardless of which rank detected the death.
	Crash     bool `json:"crash,omitempty"`
	CrashRank int  `json:"crashRank,omitempty"`
}

// ---------------------------------------------------------------------
// Type registry
// ---------------------------------------------------------------------

// wireRegistry maps stable type names to concrete Go types and back. It
// is process-global: registration anywhere makes the type decodable on
// every transport in the process.
var wireRegistry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// RegisterWire makes T decodable when it arrives over a wire transport
// (TCPTransport). Registration is idempotent and cheap, so protocols
// register at function entry; because the protocols are SPMD, the
// receiving process always executes the same registration before its
// matching Recv. Senders register automatically at encode time — only
// the decode side strictly needs this call. The typed helpers
// (SendValue, RecvSlice, …) register their payload types themselves;
// code that sends a custom type through Endpoint.Send and asserts it
// out of Message.Payload must register it on both ends.
//
// The in-memory transports pass payloads by reference and never consult
// the registry.
func RegisterWire[T any]() {
	registerWireType(reflect.TypeFor[T]())
}

// registerWireType registers t (and returns its stable name), panicking
// on a name collision — two distinct types mapping to one name would
// make decoding ambiguous.
func registerWireType(t reflect.Type) string {
	wireRegistry.RLock()
	name, ok := wireRegistry.byType[t]
	wireRegistry.RUnlock()
	if ok {
		return name
	}
	name = wireTypeName(t)
	wireRegistry.Lock()
	defer wireRegistry.Unlock()
	if prev, ok := wireRegistry.byName[name]; ok && prev != t {
		panic(fmt.Sprintf("comm: wire type name %q is ambiguous: %v and %v", name, prev, t))
	}
	wireRegistry.byName[name] = t
	wireRegistry.byType[t] = name
	return name
}

// lookupWireType resolves a wire name back to the registered type.
func lookupWireType(name string) (reflect.Type, bool) {
	wireRegistry.RLock()
	t, ok := wireRegistry.byName[name]
	wireRegistry.RUnlock()
	return t, ok
}

// wireTypeName builds the stable name a type is registered under: the
// full import path plus type name for named types (generic
// instantiations include their type arguments), structural spelling for
// unnamed composites. Both ends run the same binary, so these names
// identify identical layouts.
func wireTypeName(t reflect.Type) string {
	if n := t.Name(); n != "" {
		if pp := t.PkgPath(); pp != "" {
			return pp + "." + n
		}
		return n // predeclared: int64, string, ...
	}
	switch t.Kind() {
	case reflect.Slice:
		return "[]" + wireTypeName(t.Elem())
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), wireTypeName(t.Elem()))
	case reflect.Pointer:
		return "*" + wireTypeName(t.Elem())
	default:
		// Anonymous structs and the rest: reflect's spelling is
		// deterministic within one binary.
		return t.String()
	}
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

// appendWirePayload appends the self-describing encoding of payload:
// name header plus value bytes. nil payloads encode as an empty name.
func appendWirePayload(buf []byte, payload any) ([]byte, error) {
	if payload == nil {
		return binary.AppendUvarint(buf, 0), nil
	}
	// Hot-path type switch: the bulk data types cross with zero
	// reflection. The byte layout is identical to the reflect path.
	switch s := payload.(type) {
	case []int64:
		return appendRawSlice(buf, "[]int64", sliceToBytes(s), len(s)), nil
	case []uint64:
		return appendRawSlice(buf, "[]uint64", sliceToBytes(s), len(s)), nil
	case []float64:
		return appendRawSlice(buf, "[]float64", sliceToBytes(s), len(s)), nil
	case []int32:
		return appendRawSlice(buf, "[]int32", sliceToBytes(s), len(s)), nil
	case []uint32:
		return appendRawSlice(buf, "[]uint32", sliceToBytes(s), len(s)), nil
	case []float32:
		return appendRawSlice(buf, "[]float32", sliceToBytes(s), len(s)), nil
	case [][]byte:
		buf = appendWireString(buf, "[][]uint8")
		return appendByteSlices(buf, s), nil
	}
	v := reflect.ValueOf(payload)
	name := registerWireType(v.Type())
	buf = appendWireString(buf, name)
	// Work on an addressable copy so unexported struct fields can be
	// reached through their address (reflect.NewAt) instead of being
	// blocked by reflect's read-only flag.
	if !v.CanAddr() {
		pv := reflect.New(v.Type())
		pv.Elem().Set(v)
		v = pv.Elem()
	}
	return appendWireValue(buf, v)
}

// appendRawSlice is the shared fast-path tail: name, length, bulk bytes.
func appendRawSlice(buf []byte, name string, raw []byte, n int) []byte {
	buf = appendWireString(buf, name)
	if raw == nil && n == 0 {
		return binary.AppendUvarint(buf, 0) // nil slice
	}
	buf = binary.AppendUvarint(buf, uint64(n)+1)
	return append(buf, raw...)
}

// sliceToBytes views a fixed-width slice as raw bytes without copying
// (the append above copies once, into the frame buffer). nil-ness is
// preserved so appendRawSlice can encode the nil marker.
func sliceToBytes[T any](s []T) []byte {
	if len(s) == 0 {
		if s == nil {
			return nil
		}
		return []byte{}
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// appendWireString appends a uvarint-length-prefixed string.
func appendWireString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// byteSlicesType is the reflect image of [][]byte, the variable-length
// record plane's payload shape (wire name "[][]uint8"). Both codec
// walks special-case it — standalone payloads and fields nested inside
// protocol structs (stream chunks, gather parts) alike — so byte keys
// never pay per-element reflection.
var byteSlicesType = reflect.TypeOf([][]byte(nil))

// appendByteSlices appends the varlen-record encoding of s: the
// standard slice framing (uvarint(0) nil / uvarint(n+1)) at both
// levels, element bytes raw. The layout is exactly what the generic
// reflect walk would produce; this path exists to skip reflection and
// to pair with readByteSlices' arena decode.
func appendByteSlices(buf []byte, s [][]byte) []byte {
	if s == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(s))+1)
	for _, e := range s {
		if e == nil {
			buf = binary.AppendUvarint(buf, 0)
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(len(e))+1)
		buf = append(buf, e...)
	}
	return buf
}

// readByteSlices decodes a varlen-record payload with one arena
// allocation: a first walk validates every length against the remaining
// bytes and sums them, then all element bytes are copied into a single
// backing array and returned as full-capacity-capped views — n keys
// cost two allocations, not n.
func readByteSlices(data []byte) ([][]byte, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("comm: truncated byte-slice count")
	}
	data = data[k:]
	if n == 0 {
		return nil, data, nil
	}
	if n-1 > uint64(len(data)) {
		return nil, nil, fmt.Errorf("comm: byte-slice count %d exceeds remaining %d bytes", n-1, len(data))
	}
	count := int(n - 1)
	lens := make([]int, count)
	total := 0
	p := data
	for i := 0; i < count; i++ {
		m, k := binary.Uvarint(p)
		if k <= 0 {
			return nil, nil, fmt.Errorf("comm: truncated byte-slice length at element %d", i)
		}
		p = p[k:]
		if m == 0 {
			lens[i] = -1 // nil element
			continue
		}
		if m-1 > uint64(len(p)) {
			return nil, nil, fmt.Errorf("comm: byte-slice length %d exceeds remaining %d bytes", m-1, len(p))
		}
		l := int(m - 1)
		lens[i] = l
		total += l
		p = p[l:]
	}
	arena := make([]byte, total)
	out := make([][]byte, count)
	pos := 0
	q := data
	for i := 0; i < count; i++ {
		m, k := binary.Uvarint(q)
		q = q[k:]
		if m == 0 {
			continue // nil element stays nil
		}
		l := lens[i]
		copy(arena[pos:pos+l], q[:l])
		out[i] = arena[pos : pos+l : pos+l]
		pos += l
		q = q[l:]
	}
	return out, p, nil
}

// noPointersCache memoizes whether a type's memory representation is
// pointer-free — the precondition for moving values as one bulk copy.
var noPointersCache sync.Map // reflect.Type -> bool

// typeNoPointers reports whether values of t contain no Go pointers
// anywhere in their direct memory (slices, strings, maps and pointers
// disqualify; padding is fine).
func typeNoPointers(t reflect.Type) bool {
	if v, ok := noPointersCache.Load(t); ok {
		return v.(bool)
	}
	var ok bool
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		ok = true
	case reflect.Array:
		ok = typeNoPointers(t.Elem())
	case reflect.Struct:
		ok = true
		for i := 0; i < t.NumField(); i++ {
			if !typeNoPointers(t.Field(i).Type) {
				ok = false
				break
			}
		}
	default:
		ok = false
	}
	noPointersCache.Store(t, ok)
	return ok
}

// writableField returns struct field i of v with the read-only flag
// cleared, so unexported protocol fields encode and decode like exported
// ones. v must be addressable (the codec keeps every value it walks
// addressable).
func writableField(v reflect.Value, i int) reflect.Value {
	f := v.Field(i)
	if f.CanSet() {
		return f
	}
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
}

// valueBytes views an addressable pointer-free value as its raw memory.
func valueBytes(v reflect.Value) []byte {
	return unsafe.Slice((*byte)(v.Addr().UnsafePointer()), int(v.Type().Size()))
}

// appendWireValue appends the encoding of one addressable value.
//
//   - pointer-free values (primitives, flat structs, arrays): one bulk
//     copy of their in-memory bytes
//   - strings: uvarint length + bytes
//   - slices: uvarint(0) for nil, uvarint(len+1) then elements (bulk
//     copied when the element type is pointer-free)
//   - structs with pointer-bearing fields: fields in order, recursively
func appendWireValue(buf []byte, v reflect.Value) ([]byte, error) {
	t := v.Type()
	if typeNoPointers(t) {
		return append(buf, valueBytes(v)...), nil
	}
	if t == byteSlicesType {
		// Varlen-record fast path, hit by [][]byte fields of protocol
		// structs and by the elements of [][][]byte run lists.
		return appendByteSlices(buf, *(*[][]byte)(v.Addr().UnsafePointer())), nil
	}
	switch v.Kind() {
	case reflect.String:
		return appendWireString(buf, v.String()), nil
	case reflect.Slice:
		if v.IsNil() {
			return binary.AppendUvarint(buf, 0), nil
		}
		n := v.Len()
		buf = binary.AppendUvarint(buf, uint64(n)+1)
		et := t.Elem()
		if typeNoPointers(et) {
			if n == 0 {
				return buf, nil
			}
			raw := unsafe.Slice((*byte)(v.UnsafePointer()), n*int(et.Size()))
			return append(buf, raw...), nil
		}
		var err error
		for i := 0; i < n; i++ {
			if buf, err = appendWireValue(buf, v.Index(i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case reflect.Struct:
		var err error
		for i := 0; i < t.NumField(); i++ {
			if buf, err = appendWireValue(buf, writableField(v, i)); err != nil {
				return nil, err
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("comm: wire codec cannot encode %v (kind %v)", t, v.Kind())
	}
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

// decodeWirePayload decodes one self-describing payload. It returns the
// reconstructed value (nil for a nil payload) and fails on unknown type
// names or truncated data.
func decodeWirePayload(data []byte) (any, error) {
	name, rest, err := readWireString(data)
	if err != nil {
		return nil, err
	}
	if name == "" {
		if len(rest) != 0 {
			return nil, fmt.Errorf("comm: nil wire payload carries %d trailing bytes", len(rest))
		}
		return nil, nil
	}
	t, ok := lookupWireType(name)
	if !ok {
		return nil, fmt.Errorf("comm: unknown wire type %q (the receiving process must register it with comm.RegisterWire before it arrives)", name)
	}
	v := reflect.New(t).Elem()
	rest, err = readWireValue(rest, v)
	if err != nil {
		return nil, fmt.Errorf("comm: decoding wire payload %q: %w", name, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("comm: wire payload %q carries %d trailing bytes", name, len(rest))
	}
	return v.Interface(), nil
}

// readWireString consumes a uvarint-length-prefixed string.
func readWireString(data []byte) (string, []byte, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return "", nil, fmt.Errorf("comm: truncated wire string length")
	}
	data = data[k:]
	if n > uint64(len(data)) {
		return "", nil, fmt.Errorf("comm: wire string length %d exceeds remaining %d bytes", n, len(data))
	}
	return string(data[:n]), data[n:], nil
}

// readWireValue decodes one value into v (freshly allocated by the
// caller, hence addressable), returning the remaining bytes.
func readWireValue(data []byte, v reflect.Value) ([]byte, error) {
	t := v.Type()
	if typeNoPointers(t) {
		sz := int(t.Size())
		if len(data) < sz {
			return nil, fmt.Errorf("comm: need %d bytes for %v, have %d", sz, t, len(data))
		}
		copy(valueBytes(v), data[:sz])
		return data[sz:], nil
	}
	if t == byteSlicesType {
		s, rest, err := readByteSlices(data)
		if err != nil {
			return nil, err
		}
		*(*[][]byte)(v.Addr().UnsafePointer()) = s
		return rest, nil
	}
	switch v.Kind() {
	case reflect.String:
		s, rest, err := readWireString(data)
		if err != nil {
			return nil, err
		}
		v.SetString(s)
		return rest, nil
	case reflect.Slice:
		n, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, fmt.Errorf("comm: truncated slice length for %v", t)
		}
		data = data[k:]
		if n == 0 {
			return data, nil // nil slice: leave zero value
		}
		// Every element consumes at least one byte on the wire, so a
		// length beyond the remaining bytes is corruption — reject it
		// before sizing an allocation from it.
		if n-1 > uint64(len(data)) {
			return nil, fmt.Errorf("comm: slice length %d exceeds remaining %d bytes", n-1, len(data))
		}
		length := int(n - 1)
		et := t.Elem()
		if typeNoPointers(et) {
			sz := length * int(et.Size())
			if len(data) < sz {
				return nil, fmt.Errorf("comm: need %d bytes for %v, have %d", sz, t, len(data))
			}
			s := reflect.MakeSlice(t, length, length)
			if length > 0 {
				copy(unsafe.Slice((*byte)(s.UnsafePointer()), sz), data[:sz])
			}
			v.Set(s)
			return data[sz:], nil
		}
		s := reflect.MakeSlice(t, length, length)
		var err error
		for i := 0; i < length; i++ {
			if data, err = readWireValue(data, s.Index(i)); err != nil {
				return nil, err
			}
		}
		v.Set(s)
		return data, nil
	case reflect.Struct:
		var err error
		for i := 0; i < t.NumField(); i++ {
			if data, err = readWireValue(data, writableField(v, i)); err != nil {
				return nil, err
			}
		}
		return data, nil
	default:
		return nil, fmt.Errorf("comm: wire codec cannot decode %v (kind %v)", t, v.Kind())
	}
}

// init pre-registers the predeclared payload types every protocol layer
// uses, so raw Endpoint.Send call sites that move these shapes need no
// registration of their own.
func init() {
	RegisterWire[int]()
	RegisterWire[int32]()
	RegisterWire[int64]()
	RegisterWire[uint32]()
	RegisterWire[uint64]()
	RegisterWire[float32]()
	RegisterWire[float64]()
	RegisterWire[bool]()
	RegisterWire[string]()
	RegisterWire[struct{}]()
	RegisterWire[[]byte]()
	RegisterWire[[][]byte]()
	RegisterWire[[]int]()
	RegisterWire[[]int32]()
	RegisterWire[[]int64]()
	RegisterWire[[]uint32]()
	RegisterWire[[]uint64]()
	RegisterWire[[]float32]()
	RegisterWire[[]float64]()
	RegisterWire[[]string]()
}

// wirePayloadSize returns the encoded size of a payload without
// materializing it twice: used for capacity pre-sizing of frame buffers.
// A precise reservation matters only for the bulk fast paths; the
// reflect path just lets append grow the buffer.
func wirePayloadSize(payload any) int {
	switch s := payload.(type) {
	case nil:
		return 1
	case []int64:
		return 16 + len(s)*8
	case []uint64:
		return 16 + len(s)*8
	case []float64:
		return 16 + len(s)*8
	case []int32:
		return 16 + len(s)*4
	case []uint32:
		return 16 + len(s)*4
	case []float32:
		return 16 + len(s)*4
	case [][]byte:
		n := 16
		for _, e := range s {
			n += 10 + len(e) // uvarint(len+1) worst case + bytes
		}
		return n
	default:
		return 64
	}
}
