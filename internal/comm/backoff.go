package comm

// backoff.go holds the dial-retry schedule shared by the bootstrap
// rendezvous and the rejoin path, plus the tiny deterministic PRNG
// (splitmix64) that seeds its jitter and the fault injector's fates.
// The schedule is capped exponential backoff with jitter: without the
// cap a late-starting coordinator would push waiters into minutes-long
// sleeps; without jitter, p-1 workers started by the same supervisor
// retry in lockstep and hammer the coordinator in synchronized bursts.

import (
	"net"
	"time"
)

const (
	dialBackoffFloor = 10 * time.Millisecond
	dialBackoffCap   = time.Second
)

// splitmix64 advances *x and returns the next value of the splitmix64
// sequence. It is the jitter/fate source everywhere in this package
// because it is seedable (deterministic tests), allocation-free, and
// needs no locking when each user owns its state word.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// splitmix64Float returns the next value in [0, 1).
func splitmix64Float(x *uint64) float64 {
	return float64(splitmix64(x)>>11) / (1 << 53)
}

// dialRetry dials addr until it succeeds or the deadline expires,
// sleeping between attempts on a capped exponential schedule with
// deterministic jitter (seeded by the local rank, so co-started workers
// desynchronize). It returns the connection and the number of retries
// performed beyond the first attempt — the transport surfaces that
// count as Counters.Reconnects.
func dialRetry(addr string, rank int, deadline time.Time) (net.Conn, int64, error) {
	d := net.Dialer{Deadline: deadline}
	rng := uint64(rank)*0x9e3779b97f4a7c15 + 0x1234567
	backoff := dialBackoffFloor
	var retries int64
	for {
		c, err := d.Dial("tcp", addr)
		if err == nil {
			return c, retries, nil
		}
		// Sleep in [backoff/2, backoff): full value minus up to half
		// jitter keeps the expected schedule exponential while spreading
		// synchronized starters apart.
		sleep := backoff/2 + time.Duration(splitmix64(&rng)%uint64(backoff/2))
		if !time.Now().Add(sleep).Before(deadline) {
			return nil, retries, err
		}
		time.Sleep(sleep)
		retries++
		backoff = min(2*backoff, dialBackoffCap)
	}
}
