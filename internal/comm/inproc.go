package comm

import (
	"sync"
	"sync/atomic"
)

// inprocWaiter is one parked receiver: the stream it is waiting for and
// the channel a matching send signals. Boxes usually hold zero or one
// waiter (one goroutine per rank), so a linear scan beats any map.
type inprocWaiter struct {
	src int // AnySource for wildcard waiters
	tag Tag
	ch  chan struct{}
}

// inprocBox is one rank's inbox: one FIFO per sending rank, indexed by
// array — no maps anywhere on the send/receive path.
type inprocBox struct {
	mu      sync.Mutex
	bySrc   [][]Message     // [src] pending messages from that rank, all tags
	waiters []inprocWaiter  // parked receivers, usually 0 or 1
	free    []chan struct{} // recycled park channels (accessed under mu)
}

// InprocTransport is the zero-copy shared-memory fast path: the backend
// for production-style throughput runs where wall-clock speed matters
// and the paper's byte accounting does not.
//
// Payloads move by reference between sender and receiver goroutines with
// no serialization, no byte accounting, and no per-message envelope
// bookkeeping: Counters always read zero and there is no Interceptor
// hook. Three structural differences from SimTransport make it fast:
//
//   - Pair queues: each (sender, receiver) pair has its own
//     array-indexed FIFO. SimTransport funnels a rank's entire inbound
//     traffic through one arrival queue, so receiving from a specific
//     rank scans (and, on removal, shifts) messages from every other
//     rank — O(p) per receive during an all-to-all. Here a receive
//     touches only the queue it names.
//   - Targeted wakeups: a blocked Recv parks on its own recycled
//     channel and the send that can satisfy it signals exactly that
//     one receiver. SimTransport broadcasts its inbox condition
//     variable on every send, waking (and re-scanning) waiting
//     receivers up to p-1 times per delivered message.
//   - Lock-free abort probes: the hot paths check the abort latch with
//     an atomic load instead of taking a mutex.
//
// Semantics are otherwise identical — the conformance suite in
// transport_test.go runs unchanged against both backends — except that
// AnySource scans senders in rank order rather than arrival order,
// which MPI wildcard semantics leave unspecified anyway (AnySource is
// also O(p) here and O(queue) in SimTransport; no algorithm in this
// repository uses it on a hot path).
//
// Memory: the pair queues cost O(p²) slice headers per transport
// (~25 MB at p = 1024), which is the usual space/time trade of
// pairwise channels and irrelevant at the rank counts a single process
// can host.
type InprocTransport struct {
	p        int
	boxes    []inprocBox
	abortErr atomic.Pointer[error]
	bar      *cyclicBarrier
}

var _ Transport = (*InprocTransport)(nil)

// NewInprocTransport creates an in-process transport connecting p ranks.
// It panics if p < 1.
func NewInprocTransport(p int) *InprocTransport {
	if p < 1 {
		panicSize(p)
	}
	t := &InprocTransport{p: p, boxes: make([]inprocBox, p)}
	for i := range t.boxes {
		t.boxes[i].bySrc = make([][]Message, p)
	}
	t.bar = newCyclicBarrier(p, t.Err)
	return t
}

// Size returns the number of ranks.
func (t *InprocTransport) Size() int { return t.p }

// Send appends the payload reference to dst's queue for src and wakes
// the one parked receiver that can consume it, if any.
func (t *InprocTransport) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	if err := t.Err(); err != nil {
		return err
	}
	b := &t.boxes[dst]
	b.mu.Lock()
	b.bySrc[src] = append(b.bySrc[src], Message{Src: src, Tag: tag, Payload: payload, Bytes: bytes})
	var wake chan struct{}
	for i, w := range b.waiters {
		if (w.src == src || w.src == AnySource) && w.tag == tag {
			// Swap-remove: waiter order carries no semantics.
			last := len(b.waiters) - 1
			b.waiters[i] = b.waiters[last]
			b.waiters = b.waiters[:last]
			wake = w.ch
			break
		}
	}
	b.mu.Unlock()
	if wake != nil {
		// Signal outside the lock so the woken receiver never blocks
		// right back on b.mu. Cap 1, one token per registration: never
		// blocks the sender.
		wake <- struct{}{}
	}
	return nil
}

// popTag removes and returns the first message with the given tag from
// q, preserving the order of the rest (pairwise FIFO per tag).
func popTag(q *[]Message, tag Tag) (Message, bool) {
	s := *q
	for i := range s {
		if s[i].Tag == tag {
			m := s[i]
			copy(s[i:], s[i+1:])
			*q = s[:len(s)-1]
			return m, true
		}
	}
	return Message{}, false
}

// Recv pops the next message matching (src, tag) from dst's pair
// queues, blocking until one exists. src may be AnySource, which scans
// senders in rank order.
func (t *InprocTransport) Recv(dst, src int, tag Tag) (Message, error) {
	b := &t.boxes[dst]
	b.mu.Lock()
	for {
		if src != AnySource {
			if m, ok := popTag(&b.bySrc[src], tag); ok {
				b.mu.Unlock()
				return m, nil
			}
		} else {
			for s := range b.bySrc {
				if m, ok := popTag(&b.bySrc[s], tag); ok {
					b.mu.Unlock()
					return m, nil
				}
			}
		}
		if err := t.Err(); err != nil {
			b.mu.Unlock()
			return Message{}, err
		}
		// Park on a recycled channel; the next matching send (or an
		// abort) delivers one token. Registering under the lock closes
		// the lost-wakeup window.
		var ch chan struct{}
		if n := len(b.free); n > 0 {
			ch = b.free[n-1]
			b.free = b.free[:n-1]
		} else {
			ch = make(chan struct{}, 1)
		}
		b.waiters = append(b.waiters, inprocWaiter{src: src, tag: tag, ch: ch})
		b.mu.Unlock()
		<-ch
		b.mu.Lock()
		b.free = append(b.free, ch)
	}
}

// TryRecv pops the next message matching (src, tag) from dst's pair
// queues if one is buffered, without blocking. src may be AnySource,
// which scans senders in rank order.
func (t *InprocTransport) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	if err := t.Err(); err != nil {
		return Message{}, false, err
	}
	b := &t.boxes[dst]
	b.mu.Lock()
	defer b.mu.Unlock()
	if src != AnySource {
		if m, ok := popTag(&b.bySrc[src], tag); ok {
			return m, true, nil
		}
	} else {
		for s := range b.bySrc {
			if m, ok := popTag(&b.bySrc[s], tag); ok {
				return m, true, nil
			}
		}
	}
	return Message{}, false, nil
}

// Barrier blocks until all p ranks have entered.
func (t *InprocTransport) Barrier(int) error { return t.bar.await() }

// Abort latches err and unblocks all pending and future operations.
func (t *InprocTransport) Abort(err error) {
	if err == nil {
		err = ErrAborted
	}
	t.abortErr.CompareAndSwap(nil, &err) // first abort wins
	for i := range t.boxes {
		b := &t.boxes[i]
		b.mu.Lock()
		for _, w := range b.waiters {
			w.ch <- struct{}{}
		}
		b.waiters = b.waiters[:0]
		b.mu.Unlock()
	}
	t.bar.wake()
}

// Err returns the abort error, or nil while the transport is live.
func (t *InprocTransport) Err() error {
	if p := t.abortErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Reset returns the transport to its freshly constructed state: queued
// messages are discarded, the abort latch clears and the barrier rearms.
// Only call while no ranks are running.
func (t *InprocTransport) Reset() {
	for i := range t.boxes {
		b := &t.boxes[i]
		b.mu.Lock()
		for s := range b.bySrc {
			b.bySrc[s] = nil
		}
		b.waiters = b.waiters[:0]
		b.mu.Unlock()
	}
	t.abortErr.Store(nil)
	t.bar.reset()
}

// Counters returns the zero Counters: this backend does no accounting.
func (t *InprocTransport) Counters(int) Counters { return Counters{} }

// TotalCounters returns the zero Counters.
func (t *InprocTransport) TotalCounters() Counters { return Counters{} }

// ResetCounters is a no-op.
func (t *InprocTransport) ResetCounters() {}
