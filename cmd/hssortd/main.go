// Command hssortd serves hssort over HTTP: a long-lived daemon that
// accepts named sort jobs from multiple tenants, runs them on a pool of
// warm sort engines, and answers rank/percentile queries against the
// sorted outputs. See docs/API.md for the HTTP surface.
//
// Usage:
//
//	hssortd -listen :8080 -transport inproc -shards 4
//
// The daemon drains on SIGINT/SIGTERM: admission stops (healthz flips
// to 503), admitted jobs finish, engines tear down, then it exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"hssort"
	"hssort/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hssortd: ")

	var (
		listen        = flag.String("listen", ":8080", "HTTP listen address (host:port; :0 picks a free port)")
		transportName = flag.String("transport", "inproc", "engine communication backend: sim, inproc or tcp")
		shards        = flag.Int("shards", 4, "engine shard (simulated processor) count per job")
		workers       = flag.Int("workers", 1, "per-rank compute workers per engine (1 = serial)")
		eps           = flag.Float64("eps", 0.05, "load-imbalance threshold epsilon")
		queue         = flag.Int("queue", 64, "admission queue depth (full queue refuses with 429)")
		tenantJobs    = flag.Int("tenant-jobs", 2, "max simultaneously running jobs per tenant")
		concurrency   = flag.Int("concurrency", 4, "max simultaneously running jobs daemon-wide")
		planCache     = flag.Int("plan-cache", 128, "splitter-plan cache capacity (entries)")
		staleness     = flag.Float64("staleness", 1.5, "plan staleness guard threshold (imbalance ratio that forces a replan)")
		maxKeys       = flag.Int("max-keys", 0, "per-job key limit (0 = unlimited; above it refuses with 413)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected argument %q (hssortd takes flags only)", flag.Arg(0))
	}

	transport, err := hssort.ParseTransport(*transportName)
	if err != nil {
		log.Fatal(err)
	}
	if *shards < 2 {
		log.Fatalf("-shards %d out of range (valid values: 2 or more)", *shards)
	}
	if *eps <= 0 || *eps >= 1 {
		log.Fatalf("-eps %g out of range (valid values: above 0 and below 1)", *eps)
	}
	if *staleness <= 1 {
		log.Fatalf("-staleness %g out of range (valid values: above 1)", *staleness)
	}

	srv := server.New(server.Config{
		Shards:            *shards,
		Transport:         transport,
		Workers:           *workers,
		Epsilon:           *eps,
		QueueDepth:        *queue,
		TenantConcurrency: *tenantJobs,
		Concurrency:       *concurrency,
		PlanCacheSize:     *planCache,
		PlanStaleness:     *staleness,
		MaxKeys:           *maxKeys,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}

	// Printed to stdout (not the log) so scripts can scrape the bound
	// address when -listen :0 picked a free port.
	fmt.Printf("listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		log.Printf("%s: draining", sig)
	case err := <-errc:
		log.Fatal(err)
	}

	// Drain sequence: stop admission first so in-flight requests see
	// 503s, finish admitted jobs, then stop the HTTP listener and tear
	// down the engines.
	srv.Drain(context.Background())
	httpSrv.Shutdown(context.Background())
	log.Printf("drained, exiting")
}
