package dist

import (
	"slices"
	"testing"
)

// TestDeterministic: Shard depends only on its arguments, and Shards is
// the per-rank composition of Shard.
func TestDeterministic(t *testing.T) {
	for kind := Uniform; kind <= Staircase; kind++ {
		spec := Spec{Kind: kind}
		a := spec.Shards(500, 4, 7)
		b := spec.Shards(500, 4, 7)
		for r := range a {
			if !slices.Equal(a[r], b[r]) {
				t.Errorf("%v: rank %d differs between identical calls", kind, r)
			}
			if !slices.Equal(a[r], spec.Shard(500, r, 4, 7)) {
				t.Errorf("%v: Shards[%d] != Shard(%d)", kind, r, r)
			}
		}
		c := spec.Shards(500, 4, 8)
		same := true
		for r := range a {
			if !slices.Equal(a[r], c[r]) {
				same = false
			}
		}
		if same {
			t.Errorf("%v: seed change did not change the data", kind)
		}
	}
}

// TestBoundsRespected: every kind keeps keys inside [Min, Max).
func TestBoundsRespected(t *testing.T) {
	for kind := Uniform; kind <= Staircase; kind++ {
		for _, bounds := range [][2]int64{{0, 1 << 20}, {-1 << 30, 1 << 30}, {100, 1000}} {
			spec := Spec{Kind: kind, Min: bounds[0], Max: bounds[1]}
			for r, shard := range spec.Shards(2000, 3, 5) {
				if len(shard) != 2000 {
					t.Fatalf("%v: rank %d got %d keys", kind, r, len(shard))
				}
				for _, k := range shard {
					if k < bounds[0] || k >= bounds[1] {
						t.Fatalf("%v: key %d outside [%d, %d)", kind, k, bounds[0], bounds[1])
					}
				}
			}
		}
	}
}

// TestDuplicateHeavyDistinct: DuplicateHeavy draws from at most Distinct
// values.
func TestDuplicateHeavyDistinct(t *testing.T) {
	spec := Spec{Kind: DuplicateHeavy, Distinct: 8}
	seen := map[int64]bool{}
	for _, shard := range spec.Shards(5000, 4, 3) {
		for _, k := range shard {
			seen[k] = true
		}
	}
	if len(seen) > 8 {
		t.Errorf("DuplicateHeavy{Distinct: 8} produced %d distinct values", len(seen))
	}
}

// TestStaircasePartitioned: rank slices of the key range are disjoint and
// ascending with rank.
func TestStaircasePartitioned(t *testing.T) {
	const p = 4
	shards := Spec{Kind: Staircase, Min: 0, Max: 1 << 20}.Shards(1000, p, 9)
	for r := 0; r < p-1; r++ {
		if slices.Max(shards[r]) >= slices.Min(shards[r+1]) {
			t.Errorf("rank %d range overlaps rank %d", r, r+1)
		}
	}
}

// TestAlmostSortedIsNearlySorted: the concatenated input needs few
// out-of-order adjacent pairs.
func TestAlmostSortedIsNearlySorted(t *testing.T) {
	var flat []int64
	for _, s := range (Spec{Kind: AlmostSorted}).Shards(2000, 4, 11) {
		flat = append(flat, s...)
	}
	inversions := 0
	for i := 1; i < len(flat); i++ {
		if flat[i] < flat[i-1] {
			inversions++
		}
	}
	if frac := float64(inversions) / float64(len(flat)); frac > 0.5 {
		t.Errorf("almost-sorted input has %.0f%% adjacent inversions", frac*100)
	}
}
