package changa

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestDwarfDeterministicAndInBox(t *testing.T) {
	a := Dwarf(1000, 42)
	b := Dwarf(1000, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Dwarf not deterministic")
		}
		if a[i].X < 0 || a[i].X >= 1 || a[i].Y < 0 || a[i].Y >= 1 || a[i].Z < 0 || a[i].Z >= 1 {
			t.Fatalf("particle %d outside unit box: %+v", i, a[i])
		}
	}
}

func TestDwarfCentrallyConcentrated(t *testing.T) {
	ps := Dwarf(20000, 7)
	within := 0
	for _, p := range ps {
		dx, dy, dz := p.X-0.5, p.Y-0.5, p.Z-0.5
		if math.Sqrt(dx*dx+dy*dy+dz*dz) < 0.1 {
			within++
		}
	}
	// Plummer with a = 0.02: the vast majority of mass within 5a.
	if frac := float64(within) / float64(len(ps)); frac < 0.8 {
		t.Errorf("only %.2f of Dwarf mass within r=0.1 of centre", frac)
	}
}

func TestLambbClusteredButSpread(t *testing.T) {
	ps := Lambb(20000, 9)
	// Clustering diagnostic: count occupied cells of a 16³ grid. A
	// uniform distribution fills nearly all 4096; a clustered one far
	// fewer — but more than the ~1 of a single cluster.
	occupied := map[int]bool{}
	for _, p := range ps {
		cx, cy, cz := int(p.X*16), int(p.Y*16), int(p.Z*16)
		occupied[cx<<8|cy<<4|cz] = true
	}
	if len(occupied) > 3600 {
		t.Errorf("Lambb occupies %d/4096 cells: not clustered", len(occupied))
	}
	if len(occupied) < 64 {
		t.Errorf("Lambb occupies only %d cells: degenerate", len(occupied))
	}
}

func TestMortonKeyLocality(t *testing.T) {
	// Nearby particles share high Morton bits; particles in opposite
	// corners differ in the top bits.
	a := MortonKey(Particle{0.1, 0.1, 0.1}, UnitBox)
	b := MortonKey(Particle{0.1 + 1e-7, 0.1, 0.1}, UnitBox)
	far := MortonKey(Particle{0.9, 0.9, 0.9}, UnitBox)
	if a^b > 1<<12 {
		t.Errorf("nearby keys differ high: %x vs %x", a, b)
	}
	if (a^far)>>60 == 0 {
		t.Errorf("far keys agree high: %x vs %x", a, far)
	}
}

func TestMortonKeyOctantOrder(t *testing.T) {
	// The first Morton split is by the top bit of each dimension: all
	// keys of the low octant sort before all keys of the high octant.
	lo := MortonKey(Particle{0.49, 0.49, 0.49}, UnitBox)
	hi := MortonKey(Particle{0.51, 0.51, 0.51}, UnitBox)
	if lo >= hi {
		t.Errorf("octant order violated: %x >= %x", lo, hi)
	}
}

func TestSpreadProperty(t *testing.T) {
	// spread must be injective on 21-bit inputs and leave two zero bits
	// between input bits.
	f := func(vRaw uint32) bool {
		v := uint64(vRaw) & 0x1fffff
		s := spread(v)
		// Un-spread by collecting every third bit.
		var back uint64
		for i := 0; i < 21; i++ {
			back |= ((s >> (3 * i)) & 1) << i
		}
		return back == v && s&^0x1249249249249249 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeEdges(t *testing.T) {
	if quantize(0, 0, 1) != 0 {
		t.Error("quantize(0) != 0")
	}
	if q := quantize(1, 0, 1); q != 1<<21-1 {
		t.Errorf("quantize(1) = %d, want max 21-bit value", q)
	}
	if quantize(-5, 0, 1) != 0 || quantize(9, 0, 1) != 1<<21-1 {
		t.Error("out-of-range values not clamped")
	}
	if quantize(0.5, 1, 1) != 0 {
		t.Error("degenerate box not handled")
	}
}

func TestBoundsCoverAllParticles(t *testing.T) {
	ps := Lambb(5000, 3)
	box := Bounds(ps)
	for _, p := range ps {
		if p.X < box.Min[0] || p.X >= box.Max[0] ||
			p.Y < box.Min[1] || p.Y >= box.Max[1] ||
			p.Z < box.Min[2] || p.Z >= box.Max[2] {
			t.Fatalf("particle %+v outside bounds %+v", p, box)
		}
	}
}

func TestBoundsEmpty(t *testing.T) {
	if Bounds(nil) != UnitBox {
		t.Error("empty bounds != unit box")
	}
}

func TestShardKeysPartitionTheDataset(t *testing.T) {
	const n, p = 999, 4
	var all []uint64
	for r := 0; r < p; r++ {
		all = append(all, ShardKeys(Datasets[0], n, r, p, 5)...)
	}
	if len(all) != n {
		t.Fatalf("shards cover %d keys, want %d", len(all), n)
	}
	// Must equal the keys of the full dataset (as multisets).
	ps := Dwarf(n, 5)
	want := Keys(ps, Bounds(ps))
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range all {
		if all[i] != want[i] {
			t.Fatal("shard keys are not a partition of the dataset keys")
		}
	}
}

func TestMortonKeysHeavilySkewed(t *testing.T) {
	// The whole point of the workload: Dwarf keys concentrate in a tiny
	// fraction of the key space, the adversarial case for classic
	// histogram sort's key-space bisection. A cluster at the box centre
	// straddles all eight octants, so key *span* is wide — the right
	// diagnostic is occupancy: how many of the 4096 top-12-bit key
	// cells hold any key. Uniform particles fill nearly all of them.
	ps := Dwarf(20000, 11)
	skewed := topCellOccupancy(Keys(ps, UnitBox))
	rng := rand.New(rand.NewPCG(1, 2))
	uniform := make([]Particle, 20000)
	for i := range uniform {
		uniform[i] = Particle{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	base := topCellOccupancy(Keys(uniform, UnitBox))
	if skewed*4 > base {
		t.Errorf("Dwarf occupies %d top cells vs %d uniform: not skewed", skewed, base)
	}
}

// topCellOccupancy counts distinct top-12-bit key cells.
func topCellOccupancy(keys []uint64) int {
	cells := map[uint64]bool{}
	for _, k := range keys {
		cells[k>>51] = true
	}
	return len(cells)
}
