package server

import (
	"errors"
	"sync"

	"hssort"
)

// errDraining refuses work arriving after drain began; the HTTP layer
// maps it to 503.
var errDraining = errors.New("hssortd: draining, not accepting jobs")

// scheduler is the multi-tenant job scheduler between the HTTP layer
// and the engine pool:
//
//   - Admission control: a bounded FIFO queue. Submissions past the
//     bound are refused with a typed *hssort.QuotaExceededError (429) —
//     load sheds at the front door instead of piling onto the engines.
//   - Fair dequeue: jobs queue per tenant and workers pick round-robin
//     across tenants, so one tenant's burst cannot starve another's
//     single job behind it.
//   - Per-tenant quotas: at most quota jobs of one tenant run at once;
//     a tenant at quota keeps its place in the ring while others run.
//   - Drain: beginDrain stops admission, wait returns once every
//     admitted job has finished — the SIGTERM path.
//
// Job deadlines and cancellation are not the scheduler's concern: each
// job carries its own context, and the worker hands it to the engine,
// which aborts mid-phase wherever the sort is.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	capQueue int
	quota    int

	queues  map[string][]*job // per-tenant FIFO
	ring    []string          // tenants with queued jobs, round-robin order
	rr      int               // next ring slot to inspect
	queued  int
	running map[string]int
	active  int // total running

	draining bool

	run func(*job) // executes one job (set by the server)
	wg  sync.WaitGroup

	// testGate, when non-nil, is called with each job after dequeue and
	// before run — the test suite's hook for holding jobs mid-flight to
	// pin quota and fairness behavior deterministically.
	testGate func(*job)
}

func newScheduler(queueDepth, quota, workers int, run func(*job)) *scheduler {
	s := &scheduler{
		capQueue: queueDepth,
		quota:    quota,
		queues:   make(map[string][]*job),
		running:  make(map[string]int),
		run:      run,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit enqueues a job, refusing when draining or when the admission
// queue is full.
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if s.queued >= s.capQueue {
		return &hssort.QuotaExceededError{Tenant: j.tenant, Queued: s.queued, Capacity: s.capQueue}
	}
	if len(s.queues[j.tenant]) == 0 {
		s.ring = append(s.ring, j.tenant)
	}
	s.queues[j.tenant] = append(s.queues[j.tenant], j)
	s.queued++
	s.cond.Broadcast()
	return nil
}

// pickLocked dequeues the next runnable job: round-robin over the
// tenant ring, skipping tenants at their running quota. Returns nil
// when nothing is runnable. Caller holds s.mu.
func (s *scheduler) pickLocked() *job {
	for i := 0; i < len(s.ring); i++ {
		slot := (s.rr + i) % len(s.ring)
		tenant := s.ring[slot]
		if s.running[tenant] >= s.quota {
			continue
		}
		q := s.queues[tenant]
		j := q[0]
		if len(q) == 1 {
			delete(s.queues, tenant)
			s.ring = append(s.ring[:slot], s.ring[slot+1:]...)
			s.rr = slot // the tenant after the removed one now sits here
		} else {
			s.queues[tenant] = q[1:]
			s.rr = slot + 1
		}
		if len(s.ring) > 0 {
			s.rr %= len(s.ring)
		} else {
			s.rr = 0
		}
		s.queued--
		return j
	}
	return nil
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if j = s.pickLocked(); j != nil {
				break
			}
			if s.draining && s.queued == 0 {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		s.running[j.tenant]++
		s.active++
		s.mu.Unlock()

		if s.testGate != nil {
			s.testGate(j)
		}
		s.run(j)

		s.mu.Lock()
		s.running[j.tenant]--
		if s.running[j.tenant] == 0 {
			delete(s.running, j.tenant)
		}
		s.active--
		// A finished job frees a quota slot and, during drain, may be
		// the event that lets the workers observe an empty queue.
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// depth reports (queued, running) for the metrics gauges.
func (s *scheduler) depth() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.active
}

// isDraining reports whether drain has begun (healthz flips to 503).
func (s *scheduler) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginDrain stops admission. Queued and running jobs keep going.
func (s *scheduler) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wait blocks until every admitted job has finished and the workers
// have exited. Call after beginDrain.
func (s *scheduler) wait() {
	s.wg.Wait()
}
