package merge

// Two merges two sorted runs into a new slice using the three-way
// comparator cmp. The merge is stable: on ties, elements of a precede
// elements of b.
func Two[K any](a, b []K, cmp func(K, K) int) []K {
	out := make([]K, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// KWay merges k sorted runs into a single sorted slice. Empty runs are
// permitted. The merge is stable across runs: ties resolve in favor of the
// lower run index. For k <= 2 it degrades to the trivial cases; otherwise
// it uses a loser tree (tournament tree), performing ceil(log2 k)
// comparisons per emitted key.
func KWay[K any](runs [][]K, cmp func(K, K) int) []K {
	nonEmpty := 0
	total := 0
	last := -1
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
			last = i
		}
	}
	switch nonEmpty {
	case 0:
		return []K{}
	case 1:
		out := make([]K, total)
		copy(out, runs[last])
		return out
	}
	lt := NewLoserTree(runs, cmp)
	out := make([]K, 0, total)
	for {
		k, ok := lt.Next()
		if !ok {
			break
		}
		out = append(out, k)
	}
	return out
}

// LoserTree is a tournament tree over k sorted runs that yields their
// merged order one key at a time. It is the streaming core of KWay,
// exported so the final assembly phase can merge incrementally without
// materializing inputs twice.
type LoserTree[K any] struct {
	runs [][]K
	pos  []int // next unread index per run
	// tree[1:] holds internal nodes: tree[i] is the run index that LOST
	// the match at node i. tree[0] holds the overall winner.
	tree []int
	k    int // number of leaves (power-of-two padded)
	n    int // real number of runs
	cmp  func(K, K) int
	done bool
}

// NewLoserTree builds a loser tree over the given sorted runs.
func NewLoserTree[K any](runs [][]K, cmp func(K, K) int) *LoserTree[K] {
	n := len(runs)
	k := 1
	for k < n {
		k *= 2
	}
	if k < 2 {
		k = 2
	}
	lt := &LoserTree[K]{
		runs: runs,
		pos:  make([]int, n),
		tree: make([]int, k),
		k:    k,
		n:    n,
		cmp:  cmp,
	}
	lt.build()
	return lt
}

// exhausted reports whether run i has no keys left (virtual runs beyond n
// are always exhausted).
func (lt *LoserTree[K]) exhausted(i int) bool {
	return i >= lt.n || lt.pos[i] >= len(lt.runs[i])
}

// less reports whether run a's head should be emitted before run b's head.
// Exhausted runs compare greater than everything; ties resolve by run
// index for stability.
func (lt *LoserTree[K]) less(a, b int) bool {
	ea, eb := lt.exhausted(a), lt.exhausted(b)
	switch {
	case ea && eb:
		return a < b
	case ea:
		return false
	case eb:
		return true
	}
	c := lt.cmp(lt.runs[a][lt.pos[a]], lt.runs[b][lt.pos[b]])
	if c != 0 {
		return c < 0
	}
	return a < b
}

// build plays the initial tournament bottom-up.
func (lt *LoserTree[K]) build() {
	// winners[i] is the winner of the subtree rooted at node i.
	winners := make([]int, 2*lt.k)
	for i := 0; i < lt.k; i++ {
		winners[lt.k+i] = i
	}
	for i := lt.k - 1; i >= 1; i-- {
		a, b := winners[2*i], winners[2*i+1]
		if lt.less(a, b) {
			winners[i] = a
			lt.tree[i] = b
		} else {
			winners[i] = b
			lt.tree[i] = a
		}
	}
	lt.tree[0] = winners[1]
}

// Next returns the smallest remaining key across all runs, or ok=false
// when every run is exhausted.
func (lt *LoserTree[K]) Next() (key K, ok bool) {
	if lt.done {
		var zero K
		return zero, false
	}
	w := lt.tree[0]
	if lt.exhausted(w) {
		lt.done = true
		var zero K
		return zero, false
	}
	key = lt.runs[w][lt.pos[w]]
	lt.pos[w]++
	// Replay matches from leaf w up to the root.
	node := (lt.k + w) / 2
	winner := w
	for node >= 1 {
		if lt.less(lt.tree[node], winner) {
			lt.tree[node], winner = winner, lt.tree[node]
		}
		node /= 2
	}
	lt.tree[0] = winner
	return key, true
}
