package merge

import (
	"encoding/binary"
	"slices"
	"testing"

	"hssort/internal/codes"
	"hssort/internal/par"
)

// FuzzSplitRuns feeds arbitrary byte strings to the sub-splitter picker
// as (parts, run count, code data) and asserts its contract: per run the
// cuts are monotone, in range, and covering, and no code value is split
// across two parts — then cross-checks that the induced parallel merge
// equals the serial one. Byte values map to a narrow code span, so the
// fuzzed inputs are duplicate-heavy by construction (the hard case);
// all-equal and skewed seeds are planted explicitly.
func FuzzSplitRuns(f *testing.F) {
	f.Add(uint8(4), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(8), uint8(2), []byte{5, 5, 5, 5, 5, 5, 5, 5}) // all-equal
	f.Add(uint8(3), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 255})
	f.Add(uint8(2), uint8(5), []byte{})
	skew := make([]byte, 200)
	for i := range skew {
		if i%10 == 0 {
			skew[i] = byte(i)
		} // 90% zeros
	}
	f.Add(uint8(6), uint8(4), skew)
	wide := make([]byte, 64)
	binary.LittleEndian.PutUint64(wide, ^uint64(0))
	f.Add(uint8(5), uint8(3), wide)
	f.Fuzz(func(t *testing.T, partsB, kB uint8, data []byte) {
		parts := int(partsB)%16 + 1
		k := int(kB)%8 + 1
		runs := make([][]codes.Code, k)
		for r := range runs {
			lo, hi := r*len(data)/k, (r+1)*len(data)/k
			run := make([]codes.Code, hi-lo)
			for i, b := range data[lo:hi] {
				run[i] = codes.Code(b)
			}
			slices.Sort(run)
			runs[r] = run
		}
		cuts := SplitRuns(runs, parts)
		checkCuts(t, runs, cuts, parts)
		want := KWay(runs, codes.Compare)
		got := ParMerge(nil, runs, codes.Compare, par.New(parts))
		if !slices.Equal(got, want) {
			t.Fatalf("parts=%d k=%d: ParMerge diverged from KWay", parts, k)
		}
	})
}
