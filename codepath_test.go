package hssort

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"slices"
	"strings"
	"testing"

	"hssort/internal/dist"
	"hssort/internal/exchange"
)

// cloneAny is cloneShards for arbitrary element types.
func cloneAny[K any](shards [][]K) [][]K {
	out := make([][]K, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

func TestMain(m *testing.M) {
	// Re-exec hook: the multi-process transport test launches this test
	// binary as TCP worker processes (see tcp_test.go).
	if spec := os.Getenv(tcpWorkerEnv); spec != "" {
		os.Exit(runTCPWorker(spec))
	}
	// Every sort in this package's tests re-validates partition inputs:
	// the hot path dropped the per-call O(B) splitter check, so the
	// tests keep the debug assertion armed to catch any pipeline that
	// broadcasts unsorted splitters. Benchmark runs leave it off — the
	// checked-in BENCH_PR3 numbers must measure the shipped hot path.
	flag.Parse()
	if f := flag.Lookup("test.bench"); f == nil || f.Value.String() == "" {
		exchange.Debug = true
	}
	os.Exit(m.Run())
}

// TestCodePathEquivalence is the code plane's acceptance gate: for every
// algorithm with code-plane support, on both transports, with both the
// materializing and the streaming exchange, a sort on the code plane
// (CodePathOn) must produce rank-identical output to the comparator
// oracle (CodePathOff). One matrix cell = one (algorithm, transport,
// exchange plane) triple.
func TestCodePathEquivalence(t *testing.T) {
	const p, perRank = 6, 3000
	algs := []struct {
		name string
		cfg  Config
		kind dist.Kind
	}{
		{"hss", Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}, dist.PowerSkew},
		{"hss-1round", Config{Procs: p, Algorithm: HSSOneRound, Epsilon: 0.1, Seed: 5}, dist.Uniform},
		{"hss-theory", Config{Procs: p, Algorithm: HSSTheoretical, Epsilon: 0.1, Seed: 7}, dist.Gaussian},
		{"hss-approx", Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, Approx: true, Seed: 7}, dist.Uniform},
		{"hss-overpartition", Config{Procs: p, Algorithm: HSS, Buckets: 4 * p, Epsilon: 0.1, Seed: 9}, dist.Uniform},
		{"hss-roundrobin", Config{Procs: p, Algorithm: HSS, Buckets: 2 * p, RoundRobinBuckets: true, Epsilon: 0.1, Seed: 9}, dist.Exponential},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 11}, dist.Exponential},
		{"samplesort-regular", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 13}, dist.Uniform},
		{"samplesort-random", Config{Procs: p, Algorithm: SampleSortRandom, Epsilon: 0.1, Seed: 15}, dist.DuplicateHeavy},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 17}, dist.Uniform},
		{"radix", Config{Procs: p, Algorithm: Radix, Epsilon: 0.1, Seed: 19}, dist.Gaussian},
	}
	for _, tc := range algs {
		for _, tr := range []Transport{TransportSim, TransportInproc} {
			for _, streaming := range []bool{false, true} {
				plane := "materializing"
				if streaming {
					plane = "streaming"
				}
				if streaming {
					switch tc.cfg.Algorithm {
					case Radix:
						continue // no streaming data plane
					}
				}
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, tr, plane), func(t *testing.T) {
					shards := dist.Spec{Kind: tc.kind, Min: 0, Max: 1 << 40, Distinct: 64}.Shards(perRank, p, 41)

					oracle := tc.cfg
					oracle.Transport = tr
					oracle.CodePath = CodePathOff
					if streaming {
						oracle.StreamExchange = true
						oracle.ChunkKeys = 512
					}
					wantOuts, wantStats, err := Sort(oracle, cloneShards(shards))
					if err != nil {
						t.Fatalf("comparator oracle: %v", err)
					}

					coded := oracle
					coded.CodePath = CodePathOn
					gotOuts, gotStats, err := Sort(coded, cloneShards(shards))
					if err != nil {
						t.Fatalf("code plane: %v", err)
					}

					for r := range wantOuts {
						if !slices.Equal(gotOuts[r], wantOuts[r]) {
							t.Fatalf("rank %d: code-plane output differs from the comparator oracle (%d vs %d keys)",
								r, len(gotOuts[r]), len(wantOuts[r]))
						}
					}
					// The protocol is a function of key order and seeds
					// only; the planes must have executed the same one.
					if gotStats.Rounds != wantStats.Rounds || gotStats.TotalSample != wantStats.TotalSample {
						t.Errorf("protocol diverged: code plane %d rounds/%d sample, oracle %d rounds/%d sample",
							gotStats.Rounds, gotStats.TotalSample, wantStats.Rounds, wantStats.TotalSample)
					}
					if gotStats.Imbalance != wantStats.Imbalance {
						t.Errorf("imbalance diverged: %v vs %v", gotStats.Imbalance, wantStats.Imbalance)
					}
				})
			}
		}
	}
}

// TestCodePathEquivalenceKeyTypes sweeps the built-in coders: uint64
// keys with the sign bit exercised, float64 keys including negatives and
// subnormals (but not -0/NaN, whose handling the comparator and the IEEE
// total order define differently — see the keycoder docs), and int32
// keys through the widening coder.
func TestCodePathEquivalenceKeyTypes(t *testing.T) {
	const p, perRank = 5, 2000
	t.Run("uint64", func(t *testing.T) {
		shards := make([][]uint64, p)
		rng := rand.New(rand.NewPCG(1, 23))
		for r := range shards {
			shards[r] = make([]uint64, perRank)
			for i := range shards[r] {
				shards[r][i] = rng.Uint64() // full range, sign bit set half the time
			}
		}
		checkTypeEquivalence(t, shards)
	})
	t.Run("float64", func(t *testing.T) {
		shards := make([][]float64, p)
		rng := rand.New(rand.NewPCG(2, 29))
		for r := range shards {
			shards[r] = make([]float64, perRank)
			for i := range shards[r] {
				switch rng.IntN(16) {
				case 0:
					shards[r][i] = math.SmallestNonzeroFloat64 * float64(1+rng.IntN(100))
				case 1:
					shards[r][i] = -math.SmallestNonzeroFloat64 * float64(1+rng.IntN(100))
				case 2:
					shards[r][i] = 0
				default:
					shards[r][i] = rng.NormFloat64() * 1e6
				}
			}
		}
		checkTypeEquivalence(t, shards)
	})
	t.Run("int32", func(t *testing.T) {
		shards := make([][]int32, p)
		rng := rand.New(rand.NewPCG(3, 31))
		for r := range shards {
			shards[r] = make([]int32, perRank)
			for i := range shards[r] {
				shards[r][i] = int32(rng.Uint32())
			}
		}
		// HistogramSort is excluded here: it synthesizes probe keys from
		// bisection midpoints via Decode, and the widening Int32 coder is
		// not surjective — Decode truncates codes outside the image, so
		// the planes legitimately explore different probes (each output
		// is a correct sort, but bucket boundaries may differ). The
		// sampling algorithms only ever probe existing keys, where any
		// injective order-preserving coder gives exact equivalence.
		checkTypeEquivalence(t, shards, HSS, SampleSortRegular)
	})
	t.Run("int64-streaming", func(t *testing.T) {
		shards := make([][]int64, p)
		rng := rand.New(rand.NewPCG(4, 37))
		for r := range shards {
			shards[r] = make([]int64, perRank)
			for i := range shards[r] {
				shards[r][i] = rng.Int64() - (1 << 62)
			}
		}
		cfg := Config{Procs: p, Epsilon: 0.1, Seed: 3, StreamExchange: true, ChunkKeys: 256}
		want, _, err := Sort(withCodePath(cfg, CodePathOff), cloneAny(shards))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Sort(withCodePath(cfg, CodePathOn), cloneAny(shards))
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if !slices.Equal(got[r], want[r]) {
				t.Fatalf("rank %d diverged", r)
			}
		}
	})
}

func withCodePath(cfg Config, cp CodePath) Config {
	cfg.CodePath = cp
	return cfg
}

// checkTypeEquivalence sorts the shards with the given algorithms
// (default: HSS, histogram sort, sample sort) on both planes and demands
// rank-identical output.
func checkTypeEquivalence[K interface {
	~int32 | ~int64 | ~uint64 | ~float64
}](t *testing.T, shards [][]K, algs ...Algorithm) {
	t.Helper()
	p := len(shards)
	if len(algs) == 0 {
		algs = []Algorithm{HSS, HistogramSort, SampleSortRegular}
	}
	for _, alg := range algs {
		cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 7}
		want, _, err := Sort(withCodePath(cfg, CodePathOff), cloneAny(shards))
		if err != nil {
			t.Fatalf("%v oracle: %v", alg, err)
		}
		got, _, err := Sort(withCodePath(cfg, CodePathOn), cloneAny(shards))
		if err != nil {
			t.Fatalf("%v code plane: %v", alg, err)
		}
		for r := range want {
			if !slices.Equal(got[r], want[r]) {
				t.Fatalf("%v: rank %d diverged (%d vs %d keys)", alg, r, len(got[r]), len(want[r]))
			}
		}
	}
}

// TestCodePathKVEquivalence: the decorated record plane must deliver the
// same records to the same ranks as the comparator plane — exactly equal
// keys rank by rank, and for each key the same multiset of payloads
// (both planes sort unstably, so the relative order of equal-key records
// is the only permitted difference).
func TestCodePathKVEquivalence(t *testing.T) {
	const p, perRank = 5, 2000
	for _, alg := range []Algorithm{HSS, SampleSortRegular, NodeHSS} {
		for _, streaming := range []bool{false, true} {
			plane := "materializing"
			if streaming {
				plane = "streaming"
			}
			t.Run(fmt.Sprintf("%v/%s", alg, plane), func(t *testing.T) {
				shards := make([][]KV[int64, int32], p)
				rng := rand.New(rand.NewPCG(5, 43))
				id := int32(0)
				for r := range shards {
					shards[r] = make([]KV[int64, int32], perRank)
					for i := range shards[r] {
						shards[r][i] = KV[int64, int32]{Key: rng.Int64N(512), Val: id} // heavy duplicates
						id++
					}
				}
				cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 11}
				if alg == NodeHSS {
					cfg.CoresPerNode = 1
				}
				if streaming {
					cfg.StreamExchange = true
					cfg.ChunkKeys = 256
				}
				want, _, err := SortKV(withCodePath(cfg, CodePathOff), cloneAny(shards))
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				got, _, err := SortKV(withCodePath(cfg, CodePathOn), cloneAny(shards))
				if err != nil {
					t.Fatalf("record plane: %v", err)
				}
				for r := range want {
					if len(got[r]) != len(want[r]) {
						t.Fatalf("rank %d: %d vs %d records", r, len(got[r]), len(want[r]))
					}
					wantVals := map[int64][]int32{}
					for i := range want[r] {
						if got[r][i].Key != want[r][i].Key {
							t.Fatalf("rank %d: key sequence diverged at %d", r, i)
						}
						wantVals[want[r][i].Key] = append(wantVals[want[r][i].Key], want[r][i].Val)
					}
					gotVals := map[int64][]int32{}
					for _, rec := range got[r] {
						gotVals[rec.Key] = append(gotVals[rec.Key], rec.Val)
					}
					for k, wv := range wantVals {
						gv := gotVals[k]
						slices.Sort(wv)
						slices.Sort(gv)
						if !slices.Equal(gv, wv) {
							t.Fatalf("rank %d: payload multiset for key %d diverged", r, k)
						}
					}
				}
			})
		}
	}
}

// TestCodePathNaNGuard: NaN is the one float64 value whose comparator
// order (below everything, per cmp.Compare) no order-preserving code
// realizes. With NaNs present, the default CodePathAuto must fall back
// to the comparator plane — bit-identical output to CodePathOff, NaNs
// first — and CodePathOn must fail loudly instead of silently
// reordering.
func TestCodePathNaNGuard(t *testing.T) {
	nan := math.NaN()
	shards := [][]float64{{5, nan, 1}, {3, nan, 2}}
	clone := func() [][]float64 { return cloneAny(shards) }

	want, _, err := Sort(Config{Procs: 2, CodePath: CodePathOff, Epsilon: 0.5}, clone())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Sort(Config{Procs: 2, Epsilon: 0.5}, clone()) // default: auto
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d: %d vs %d keys", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if math.Float64bits(got[r][i]) != math.Float64bits(want[r][i]) {
				t.Fatalf("rank %d: auto diverged from comparator oracle at %d: %v vs %v",
					r, i, got[r][i], want[r][i])
			}
		}
	}
	if !math.IsNaN(want[0][0]) {
		t.Fatal("comparator plane no longer sorts NaN first — update the guard's rationale")
	}

	if _, _, err := Sort(Config{Procs: 2, CodePath: CodePathOn, Epsilon: 0.5}, clone()); err == nil {
		t.Error("CodePathOn accepted NaN keys")
	}

	// Records with NaN keys take the same guard.
	kvShards := [][]KV[float64, int32]{{{Key: nan, Val: 1}, {Key: 1, Val: 2}}, {{Key: 2, Val: 3}}}
	if _, _, err := SortKV(Config{Procs: 2, CodePath: CodePathOn, Epsilon: 0.5}, cloneAny(kvShards)); err == nil {
		t.Error("SortKV CodePathOn accepted NaN keys")
	}
	outs, _, err := SortKV(Config{Procs: 2, Epsilon: 0.5}, cloneAny(kvShards))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, o := range outs {
		n += len(o)
	}
	if n != 3 {
		t.Fatalf("SortKV auto with NaN keys lost records: %d", n)
	}
}

// TestCodePathConfigErrors: misconfigurations fail loudly, not silently.
func TestCodePathConfigErrors(t *testing.T) {
	shards := dist.Spec{Kind: dist.Uniform}.Shards(100, 2, 1)

	// CodePathOn without any coder (opaque key type via SortFunc).
	type opaque struct{ v int64 }
	oShards := [][]opaque{{{1}, {2}}, {{3}, {4}}}
	if _, _, err := SortFunc(Config{Procs: 2, CodePath: CodePathOn}, oShards,
		func(a, b opaque) int { return int(a.v - b.v) }); err == nil {
		t.Error("CodePathOn without a coder did not fail")
	}

	// CodePathOn with an algorithm outside the code plane.
	if _, _, err := Sort(Config{Procs: 2, Algorithm: Bitonic, CodePath: CodePathOn}, cloneShards(shards)); err == nil {
		t.Error("CodePathOn with bitonic did not fail")
	}

	// CodePathOn with TagDuplicates.
	if _, _, err := Sort(Config{Procs: 2, TagDuplicates: true, CodePath: CodePathOn}, cloneShards(shards)); err == nil {
		t.Error("CodePathOn with TagDuplicates did not fail")
	}

	// A Config.Coder of the wrong type.
	if _, _, err := Sort(Config{Procs: 2, Coder: 42}, cloneShards(shards)); err == nil {
		t.Error("bogus Config.Coder did not fail")
	}

	// A custom coder through Config.Coder unlocks the plane for SortFunc.
	ordered := [][]int64{{5, 1}, {3, 2}}
	outs, _, err := SortFunc(Config{Procs: 2, CodePath: CodePathOn, Coder: Coder[int64](int64Coder{})}, ordered,
		func(a, b int64) int { return int(a - b) })
	if err != nil {
		t.Fatalf("custom coder rejected: %v", err)
	}
	var flat []int64
	for _, o := range outs {
		flat = append(flat, o...)
	}
	if !slices.Equal(flat, []int64{1, 2, 3, 5}) {
		t.Fatalf("custom-coder sort produced %v", flat)
	}
}

// int64Coder is a user-style coder supplied through Config.Coder.
type int64Coder struct{}

func (int64Coder) Encode(k int64) uint64 { return uint64(k) ^ (1 << 63) }
func (int64Coder) Decode(c uint64) int64 { return int64(c ^ (1 << 63)) }

// TestCodePathNamesRoundTrip: String and ParseCodePath agree, the
// parser is case-insensitive, and its error names the valid values.
func TestCodePathNamesRoundTrip(t *testing.T) {
	for _, cp := range []CodePath{CodePathAuto, CodePathOff, CodePathOn} {
		got, err := ParseCodePath(cp.String())
		if err != nil || got != cp {
			t.Errorf("ParseCodePath(%q) = %v, %v", cp.String(), got, err)
		}
		name := cp.String()
		for _, variant := range []string{strings.ToUpper(name), strings.ToUpper(name[:1]) + name[1:]} {
			got, err := ParseCodePath(variant)
			if err != nil || got != cp {
				t.Errorf("ParseCodePath(%q) = %v, %v (want case-insensitive match)", variant, got, err)
			}
		}
	}
	_, err := ParseCodePath("abacus")
	if err == nil {
		t.Fatal("unknown code path parsed")
	}
	for _, want := range []string{"auto", "off", "on"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("parse error %q does not list valid value %q", err, want)
		}
	}
	if CodePath(42).String() != "CodePath(42)" {
		t.Error("unknown code path name")
	}
}
