package codes

import (
	"encoding/binary"
	"fmt"
)

// Delta-varint codec for sorted (or arbitrary) code arrays — the
// compression front end of the spill-run format (internal/spill,
// docs/SPILL.md). The first code is stored as a plain uvarint; every
// subsequent code is stored as the uvarint of its wraparound difference
// from the predecessor (uint64 subtraction, so the encoding is total:
// any code sequence round-trips exactly, mod nothing). On the sorted
// runs the spill plane writes, consecutive differences are small, so
// most codes shrink to one or two bytes before the block compressor
// even runs.

// DeltaAppend appends the delta-varint encoding of cs to dst and
// returns the extended buffer. Encoding an empty slice appends nothing.
func DeltaAppend(dst []byte, cs []Code) []byte {
	prev := Code(0)
	for _, c := range cs {
		dst = binary.AppendUvarint(dst, uint64(c-prev))
		prev = c
	}
	return dst
}

// DeltaDecode decodes exactly n codes from buf into dst (reusing its
// storage when the capacity suffices) and fails on truncated input,
// overlong varints, or trailing garbage — a corrupt frame must never
// decode to plausible-looking keys.
func DeltaDecode(dst []Code, buf []byte, n int) ([]Code, error) {
	if cap(dst) < n {
		dst = make([]Code, n)
	}
	dst = dst[:n]
	prev := Code(0)
	for i := 0; i < n; i++ {
		d, w := binary.Uvarint(buf)
		if w <= 0 {
			return nil, fmt.Errorf("codes: delta stream truncated at code %d of %d", i, n)
		}
		prev += Code(d)
		dst[i] = prev
		buf = buf[w:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("codes: %d trailing bytes after %d delta codes", len(buf), n)
	}
	return dst, nil
}
