package hssort

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestStatsSnapshotRoundTrip checks the Snapshot/MarshalJSON view: the
// JSON of a Stats carries every populated field under its documented
// name, durations as integer nanoseconds, and the derived total
// precomputed.
func TestStatsSnapshotRoundTrip(t *testing.T) {
	s := Stats{
		N:              1000,
		Buckets:        8,
		Rounds:         3,
		SamplePerRound: []int64{40, 20, 10},
		TotalSample:    70,
		LocalSort:      2 * time.Millisecond,
		Splitter:       time.Millisecond,
		Exchange:       3 * time.Millisecond,
		Merge:          time.Millisecond,
		SplitterBytes:  512,
		ExchangeBytes:  8192,
		TotalMsgs:      64,
		TotalBytes:     8704,
		Replanned:      true,
		Workers:        2,
		Imbalance:      1.03,
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"n":             1000,
		"buckets":       8,
		"rounds":        3,
		"totalSample":   70,
		"localSortNs":   2e6,
		"splitterNs":    1e6,
		"exchangeNs":    3e6,
		"mergeNs":       1e6,
		"totalNs":       float64(s.Total().Nanoseconds()),
		"splitterBytes": 512,
		"exchangeBytes": 8192,
		"totalMsgs":     64,
		"totalBytes":    8704,
		"workers":       2,
		"imbalance":     1.03,
	}
	for k, v := range want {
		got, ok := m[k].(float64)
		if !ok || got != v {
			t.Errorf("field %q = %v, want %v", k, m[k], v)
		}
	}
	if m["replanned"] != true {
		t.Errorf("replanned = %v, want true", m["replanned"])
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, s.Snapshot()) {
		t.Errorf("snapshot did not survive the round trip:\n got %+v\nwant %+v", snap, s.Snapshot())
	}
}

// TestStatsSnapshotOmitsEmpty checks that the optional fields drop out
// of the JSON of a minimal run instead of reading as misleading zeros.
func TestStatsSnapshotOmitsEmpty(t *testing.T) {
	b, err := json.Marshal(Stats{N: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"samplePerRound", "exchangeOverlapNs", "replanned", "parSpawned", "prefixCollisions", "reconnects", "respawns"} {
		if _, ok := m[k]; ok {
			t.Errorf("optional field %q serialized for a zero value", k)
		}
	}
}

// TestStatsSnapshotOfRealSort sanity-checks the snapshot of an actual
// run: the totals line up with the phase fields it was built from.
func TestStatsSnapshotOfRealSort(t *testing.T) {
	s, err := New[int64](Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	shards := make([][]int64, 4)
	for r := range shards {
		for i := 0; i < 500; i++ {
			shards[r] = append(shards[r], int64((i*2654435761+r*97)%100000))
		}
	}
	_, stats, err := s.Sort(context.Background(), shards)
	if err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.N != 2000 {
		t.Errorf("snapshot N = %d, want 2000", snap.N)
	}
	if snap.TotalNs != stats.Total().Nanoseconds() {
		t.Errorf("snapshot TotalNs = %d, want %d", snap.TotalNs, stats.Total().Nanoseconds())
	}
	if snap.Rounds != stats.Rounds || snap.Imbalance != stats.Imbalance {
		t.Errorf("snapshot fields diverge from stats: %+v vs %+v", snap, stats)
	}
}
