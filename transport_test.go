package hssort

import (
	"slices"
	"strings"
	"testing"

	"hssort/internal/dist"
)

// TestTransportNamesRoundTrip: String and ParseTransport agree, the
// parser is case-insensitive, and its error names the valid values.
func TestTransportNamesRoundTrip(t *testing.T) {
	for _, tr := range []Transport{TransportSim, TransportInproc, TransportTCP} {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Errorf("ParseTransport(%q) = %v, %v", tr.String(), got, err)
		}
		name := tr.String()
		for _, variant := range []string{strings.ToUpper(name), strings.ToUpper(name[:1]) + name[1:]} {
			got, err := ParseTransport(variant)
			if err != nil || got != tr {
				t.Errorf("ParseTransport(%q) = %v, %v (want case-insensitive match)", variant, got, err)
			}
		}
	}
	_, err := ParseTransport("carrier-pigeon")
	if err == nil {
		t.Fatal("unknown transport name parsed")
	}
	for _, want := range TransportNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("parse error %q does not list valid value %q", err, want)
		}
	}
	if Transport(42).String() != "Transport(42)" {
		t.Error("unknown transport name")
	}
}

// TestTransportRegistryComplete: the registry — the single source of
// the valid-values lists in errors and flag help — covers every backend
// and stays self-consistent.
func TestTransportRegistryComplete(t *testing.T) {
	names := TransportNames()
	if want := []string{"sim", "inproc", "tcp"}; !slices.Equal(names, want) {
		t.Fatalf("TransportNames() = %v, want %v", names, want)
	}
	summaries := TransportSummaries()
	if len(summaries) != len(names) {
		t.Fatalf("%d summaries for %d names", len(summaries), len(names))
	}
	for i, s := range summaries {
		if !strings.HasPrefix(s, names[i]+": ") {
			t.Errorf("summary %q does not lead with its name %q", s, names[i])
		}
	}
	for _, name := range names {
		tr, err := ParseTransport(name)
		if err != nil || tr.String() != name {
			t.Errorf("registry round trip broken for %q: %v, %v", name, tr, err)
		}
	}
}

// TestUnknownTransportRejected: Sort fails cleanly on an invalid
// Config.Transport instead of panicking mid-run.
func TestUnknownTransportRejected(t *testing.T) {
	shards := dist.Spec{Kind: dist.Uniform}.Shards(100, 2, 1)
	if _, _, err := Sort(Config{Procs: 2, Transport: Transport(42)}, shards); err == nil {
		t.Fatal("Sort accepted an unknown transport")
	}
}

// TestSortEquivalentAcrossTransports: the sorted output is identical —
// rank by rank — whether a sort runs over the byte-accounted simulated
// backend or the in-process fast path. This is the guarantee that lets
// the accounting numbers and the throughput numbers describe the same
// algorithm execution.
func TestSortEquivalentAcrossTransports(t *testing.T) {
	const p, perRank = 8, 5000
	cases := []struct {
		name string
		cfg  Config
		kind dist.Kind
	}{
		{"hss-uniform", Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}, dist.Uniform},
		{"hss-skewed", Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}, dist.PowerSkew},
		{"hss-theory", Config{Procs: p, Algorithm: HSSTheoretical, Epsilon: 0.1, Seed: 5}, dist.Gaussian},
		{"samplesort", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 7}, dist.Uniform},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 9}, dist.Exponential},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 11}, dist.Uniform},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			shards := dist.Spec{Kind: tc.kind, Min: 0, Max: 1 << 40}.Shards(perRank, p, 21)

			simCfg := tc.cfg
			simCfg.Transport = TransportSim
			simOuts, simStats, err := Sort(simCfg, cloneShards(shards))
			if err != nil {
				t.Fatalf("sim: %v", err)
			}

			inCfg := tc.cfg
			inCfg.Transport = TransportInproc
			inOuts, inStats, err := Sort(inCfg, cloneShards(shards))
			if err != nil {
				t.Fatalf("inproc: %v", err)
			}

			if len(simOuts) != len(inOuts) {
				t.Fatalf("rank counts differ: %d vs %d", len(simOuts), len(inOuts))
			}
			for r := range simOuts {
				if !slices.Equal(simOuts[r], inOuts[r]) {
					t.Fatalf("rank %d output differs between transports (%d vs %d keys)",
						r, len(simOuts[r]), len(inOuts[r]))
				}
			}
			// Protocol-level stats describe the algorithm, not the
			// backend: they must agree too.
			if simStats.Rounds != inStats.Rounds || simStats.TotalSample != inStats.TotalSample {
				t.Errorf("protocol stats differ: sim %d rounds/%d sample, inproc %d rounds/%d sample",
					simStats.Rounds, simStats.TotalSample, inStats.Rounds, inStats.TotalSample)
			}
			// Accounting is a sim-only feature.
			if simStats.TotalBytes == 0 {
				t.Error("sim transport reported zero bytes")
			}
			if inStats.TotalBytes != 0 || inStats.TotalMsgs != 0 {
				t.Errorf("inproc transport reported accounting: %d msgs / %d bytes",
					inStats.TotalMsgs, inStats.TotalBytes)
			}
		})
	}
}
