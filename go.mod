module hssort

go 1.24
