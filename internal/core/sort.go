package core

import (
	"slices"
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/exchange"
)

// Sort runs the full HSS pipeline on this rank's local keys and returns
// the rank's globally sorted partition: local sort → splitter
// determination → all-to-all exchange → k-way merge (§6.1.2). Every rank
// of the world must call Sort with the same Options. The input slice is
// sorted in place and its storage re-used (the Coder plane instead
// leaves the input untouched); callers must not reuse it.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, Stats{}, err
	}
	if opt.Coder != nil {
		return sortViaCodes(c, local, opt)
	}
	base := opt.BaseTag
	var stats Stats
	stats.Buckets = opt.Buckets

	// Phase 1: local sort (embarrassingly parallel, §6.1.2) — the
	// comparator-free radix plane when a code extractor is available.
	t0 := time.Now()
	var localCodes []codes.Code
	if opt.Code != nil {
		localCodes = codes.SortByCode(local, opt.Code)
	} else {
		slices.SortFunc(local, opt.Cmp)
	}
	localSort := time.Since(t0)

	// Global key count.
	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]

	// Phase 2: splitter determination.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters, info, err := DetermineSplitters(c, local, stats.N, opt)
	if err != nil {
		return nil, stats, err
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0
	stats.Rounds = info.Rounds
	stats.SamplePerRound = info.SamplePerRound
	stats.TotalSample = info.TotalSample

	// Phase 3+4: partition, data exchange, k-way merge — fused by
	// ExchangeMerge, which runs either the materializing path or (with
	// Options.ChunkKeys > 0) the streaming pipeline that overlaps the
	// merge with the exchange tail.
	bytes1 := c.Counters().BytesSent
	t2 := time.Now()
	var runs [][]K
	if localCodes != nil {
		runs = exchange.PartitionByCode(local, localCodes, codes.Extract(splitters, opt.Code))
	} else {
		runs = exchange.Partition(local, splitters, opt.Cmp)
	}
	partitionTime := time.Since(t2)
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys})
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	if err := FinishStats(c, base+tagStats, &stats, PhaseTimes{
		SplitterBytes: splitterBytes,
		ExchangeBytes: exchangeBytes,
		LocalSort:     localSort,
		Splitter:      splitterTime,
		Exchange:      partitionTime + exchangeTime,
		Merge:         mergeTime,
		Overlap:       sst.Overlap,
		PeakInFlight:  sst.PeakInFlight,
		OutCount:      len(out),
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// sortViaCodes is the Coder plane: encode this rank's keys once, run the
// identical pipeline on raw code points (where the compute phases
// specialize to radix sort, branch-free searches and code-keyed merges,
// and the exchange moves codes, not keys), and decode the merged
// partition once at the end. The protocol — sampling draws, histogram
// updates, splitter choices, bucket cuts, merge tie-breaks — is a
// function of key order only, and the coder preserves it exactly, so the
// decoded output is rank-identical to the comparator plane's.
func sortViaCodes[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	enc := codes.EncodeSlice(opt.Coder, local)
	out, stats, err := Sort(c, enc, Options[codes.Code]{
		Cmp:               codes.Compare,
		Code:              codes.ExtractCode,
		Epsilon:           opt.Epsilon,
		Buckets:           opt.Buckets,
		Owner:             opt.Owner,
		Schedule:          opt.Schedule,
		Rounds:            opt.Rounds,
		MaxRounds:         opt.MaxRounds,
		OversampleFactor:  opt.OversampleFactor,
		Seed:              opt.Seed,
		Approx:            opt.Approx,
		ApproxSize:        opt.ApproxSize,
		ChunkKeys:         opt.ChunkKeys,
		BaseTag:           opt.BaseTag,
		PipelineChunk:     opt.PipelineChunk,
		PipelineThreshold: opt.PipelineThreshold,
		OnRound:           opt.OnRound,
	})
	if err != nil {
		return nil, stats, err
	}
	return codes.DecodeSlice(opt.Coder, out), stats, nil
}
