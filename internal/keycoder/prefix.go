package keycoder

// Prefix is the byte-string key's entry to the code plane: an
// order-preserving but non-bijective extractor that packs the first
// eight bytes of a key big-endian into a uint64, padding short keys
// with zero bytes. It satisfies the prefix-extractor half of the coder
// contract (see the package comment):
//
//	bytes.Compare(a, b) < 0  ⟹  Code(a) <= Code(b)
//
// with equality of codes exactly when the keys agree on their first
// eight bytes (short keys padded). Code equality therefore does NOT
// imply key equality — every consumer of a Prefix code must resolve
// equal-code runs with the comparator (codes.TieBreak, the tie-aware
// merge trees). There is no Decode: distinct keys share codes, so the
// extraction is not invertible.
type Prefix struct{}

// Code returns the big-endian uint64 of k's first eight bytes, short
// keys zero-padded. The zero-padding is order-correct: a key that is a
// strict prefix of another compares below it, and its padded code is
// <= the longer key's code.
func (Prefix) Code(k []byte) uint64 {
	var c uint64
	n := len(k)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		c |= uint64(k[i]) << (56 - 8*i)
	}
	return c
}

// PrefixBytes returns the canonical 8-byte key whose Prefix code is c —
// the representative a code-space splitter decodes to when a byte-key
// Plan needs concrete splitter keys. Re-extracting (Prefix{}.Code on
// the result) recovers c exactly.
func PrefixBytes(c uint64) []byte {
	k := make([]byte, 8)
	for i := 0; i < 8; i++ {
		k[i] = byte(c >> (56 - 8*i))
	}
	return k
}
