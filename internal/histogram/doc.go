// Package histogram implements the splitter-determination machinery shared
// by HSS and the baseline sorts:
//
//   - LocalRanks: the per-processor histogram step — the global histogram
//     is the sum-reduction of local ranks over all processors (§2.3 step 3).
//   - Tracker: the central processor's bookkeeping of splitter bounds
//     L_j(i), U_j(i), splitter intervals, and finalization against the
//     target windows T_i (§3.3 step 3).
//   - Scan: the Axtmann et al. scanning algorithm that picks splitters
//     from one histogrammed sample (§3.2).
//
// In the layer diagram (see the repository README) this package is pure
// computation: it owns no communication. internal/core drives a
// histogramming round by sampling probes (internal/sampling), reducing
// LocalRanks over the world with internal/collective, and feeding the
// global histogram to the Tracker until every splitter interval meets its
// (1+ε) target window.
package histogram
