package keycoder

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInt64RoundTrip(t *testing.T) {
	f := func(k int64) bool {
		return Int64{}.Decode(Int64{}.Encode(k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Monotonic(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Int64{}.Encode(a), Int64{}.Encode(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default:
			return ea == eb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Extremes(t *testing.T) {
	cases := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	for i := 1; i < len(cases); i++ {
		lo := Int64{}.Encode(cases[i-1])
		hi := Int64{}.Encode(cases[i])
		if lo >= hi {
			t.Errorf("Encode(%d)=%d not < Encode(%d)=%d", cases[i-1], lo, cases[i], hi)
		}
	}
}

func TestUint64Identity(t *testing.T) {
	f := func(k uint64) bool {
		return Uint64{}.Encode(k) == k && Uint64{}.Decode(k) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTripAndOrder(t *testing.T) {
	var c Int32
	f := func(a, b int32) bool {
		if c.Decode(c.Encode(a)) != a {
			return false
		}
		return (a < b) == (c.Encode(a) < c.Encode(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32RoundTripAndOrder(t *testing.T) {
	var c Uint32
	f := func(a, b uint32) bool {
		if c.Decode(c.Encode(a)) != a {
			return false
		}
		return (a < b) == (c.Encode(a) < c.Encode(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(k float64) bool {
		if math.IsNaN(k) {
			return true // NaN order unspecified; round-trip checked separately
		}
		return Float64{}.Decode(Float64{}.Encode(k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Monotonic(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := Float64{}.Encode(a), Float64{}.Encode(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default: // covers -0 == +0: codes may differ but must stay adjacent in order
			return true
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Extremes(t *testing.T) {
	cases := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(cases); i++ {
		lo := Float64{}.Encode(cases[i-1])
		hi := Float64{}.Encode(cases[i])
		if lo >= hi {
			t.Errorf("Encode(%g) !< Encode(%g)", cases[i-1], cases[i])
		}
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	f := func(k float32) bool {
		if k != k {
			return true // NaN order unspecified; like Float64
		}
		return Float32{}.Decode(Float32{}.Encode(k)) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Monotonic(t *testing.T) {
	f := func(a, b float32) bool {
		if a != a || b != b {
			return true
		}
		ea, eb := Float32{}.Encode(a), Float32{}.Encode(b)
		switch {
		case a < b:
			return ea < eb
		case a > b:
			return ea > eb
		default: // -0 == +0: codes may differ but must stay adjacent in order
			return true
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32Extremes(t *testing.T) {
	cases := []float32{float32(math.Inf(-1)), -math.MaxFloat32, -1, -math.SmallestNonzeroFloat32,
		math.SmallestNonzeroFloat32, 1, math.MaxFloat32, float32(math.Inf(1))}
	for i := 1; i < len(cases); i++ {
		lo := Float32{}.Encode(cases[i-1])
		hi := Float32{}.Encode(cases[i])
		if lo >= hi {
			t.Errorf("Encode(%g) !< Encode(%g)", cases[i-1], cases[i])
		}
	}
}

func TestMid(t *testing.T) {
	tests := []struct{ lo, hi, want uint64 }{
		{0, 0, 0},
		{0, 1, 0},
		{0, 2, 1},
		{5, 5, 5},
		{7, 3, 7}, // inverted interval degrades to lo
		{0, math.MaxUint64, math.MaxUint64 / 2},
		{math.MaxUint64 - 2, math.MaxUint64, math.MaxUint64 - 1},
	}
	for _, tc := range tests {
		if got := Mid(tc.lo, tc.hi); got != tc.want {
			t.Errorf("Mid(%d,%d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestMidAlwaysInRange(t *testing.T) {
	f := func(lo, hi uint64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		m := Mid(lo, hi)
		return lo <= m && m <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMidBisectionTerminates(t *testing.T) {
	// Repeated bisection of any interval must converge: Mid(lo,hi) < hi
	// whenever hi > lo, so the interval strictly shrinks.
	f := func(lo, hi uint64) bool {
		if lo >= hi {
			return true
		}
		m := Mid(lo, hi)
		return m < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
