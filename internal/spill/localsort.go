package spill

import (
	"slices"
	"unsafe"

	"hssort/internal/codes"
	"hssort/internal/merge"
	"hssort/internal/par"
)

// LocalSort is the spill-aware local-sort kernel shared by the sort
// pipelines. When m is nil or the shard fits in half the budget it is
// exactly the in-memory kernel the pipelines used before — parallel
// radix sort on the code plane (returning the sorted codes), or
// slices.SortFunc on the comparator plane (returning nil codes). Over
// budget it sorts budget/2-sized segments with that same kernel, spills
// each segment as a compressed run, and streams the runs back through
// the loser tree into local's own storage, so the peak spill-managed
// working set is one frame per run instead of the shard. The sorted
// result is identical either way; on the code plane the codes are
// re-extracted after the merge (zero-copy when K is codes.Code).
func LocalSort[K any](m *Manager, local []K, code func(K) uint64, cmp func(K, K) int, pool *par.Pool) ([]codes.Code, error) {
	sortSeg := func(seg []K) []codes.Code {
		if code != nil {
			return codes.SortByCodePar(seg, code, pool)
		}
		slices.SortFunc(seg, cmp)
		return nil
	}
	var zero K
	keySize := int64(unsafe.Sizeof(zero))
	shardBytes := int64(len(local)) * keySize
	if m == nil || shardBytes <= m.Budget()/2 {
		return sortSeg(local), nil
	}

	segKeys := int(max(1, m.Budget()/(2*keySize)))
	nseg := (len(local) + segKeys - 1) / segKeys
	frameKeys := m.FrameKeys(keySize, nseg)
	srcs := make([]merge.Source[K], 0, nseg)
	defer func() {
		// No-op after a clean merge (readers close and remove their files
		// at the final marker); on error paths this releases and deletes
		// whatever is still open. Close is idempotent.
		for _, s := range srcs {
			s.(*RunReader[K]).Close()
		}
	}()
	for off := 0; off < len(local); off += segKeys {
		seg := local[off:min(off+segKeys, len(local))]
		sortSeg(seg)
		w, err := NewWriter[K](m, frameKeys)
		if err != nil {
			return nil, err
		}
		if err := w.WriteKeys(seg); err != nil {
			w.Abort()
			return nil, err
		}
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		rd, err := run.Reader(true)
		if err != nil {
			run.Remove()
			return nil, err
		}
		srcs = append(srcs, rd)
	}
	// Every key is on disk now, so the merge can overwrite local's
	// storage in place.
	st := merge.NewStreamer(cmp, code)
	out, err := merge.FromSources(st, srcs, m, local[:0], keySize)
	if err != nil {
		return nil, err
	}
	_ = out // out aliases local's storage: len(out) == len(local)
	if code != nil {
		return codes.ExtractPar(local, code, pool), nil
	}
	return nil, nil
}
