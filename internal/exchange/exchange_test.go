package exchange

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/codes"
	"hssort/internal/comm"
	"hssort/internal/keycoder"
	"hssort/internal/merge"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func TestPartitionKnown(t *testing.T) {
	sorted := []int64{1, 3, 5, 5, 7, 9}
	runs := Partition(sorted, []int64{5, 8}, icmp)
	if len(runs) != 3 {
		t.Fatalf("got %d runs", len(runs))
	}
	if !slices.Equal(runs[0], []int64{1, 3}) {
		t.Errorf("run 0 = %v", runs[0])
	}
	// Keys equal to a splitter belong to the bucket the splitter opens.
	if !slices.Equal(runs[1], []int64{5, 5, 7}) {
		t.Errorf("run 1 = %v", runs[1])
	}
	if !slices.Equal(runs[2], []int64{9}) {
		t.Errorf("run 2 = %v", runs[2])
	}
}

func TestPartitionEdges(t *testing.T) {
	if runs := Partition([]int64{}, []int64{5}, icmp); len(runs) != 2 || len(runs[0]) != 0 || len(runs[1]) != 0 {
		t.Errorf("empty input: %v", runs)
	}
	if runs := Partition([]int64{1, 2}, nil, icmp); len(runs) != 1 || !slices.Equal(runs[0], []int64{1, 2}) {
		t.Errorf("no splitters: %v", runs)
	}
	// All keys below every splitter.
	runs := Partition([]int64{1, 2}, []int64{10, 20}, icmp)
	if !slices.Equal(runs[0], []int64{1, 2}) || len(runs[1]) != 0 || len(runs[2]) != 0 {
		t.Errorf("below-all: %v", runs)
	}
	// Duplicate splitters produce an empty middle bucket.
	runs = Partition([]int64{1, 5, 9}, []int64{5, 5}, icmp)
	if !slices.Equal(runs[0], []int64{1}) || len(runs[1]) != 0 || !slices.Equal(runs[2], []int64{5, 9}) {
		t.Errorf("dup splitters: %v", runs)
	}
}

// TestPartitionDebugValidation: the O(B) splitter re-check left the hot
// path (splitters are validated once at determination time) but survives
// as a Debug assertion.
func TestPartitionDebugValidation(t *testing.T) {
	Debug = true
	defer func() { Debug = false }()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Partition([]int64{1}, []int64{5, 3}, icmp)
}

func TestValidateSplittersPanics(t *testing.T) {
	ValidateSplitters([]int64{1, 2, 2, 5}, icmp) // sorted: fine
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	ValidateSplitters([]int64{5, 3}, icmp)
}

// TestPartitionForwardScanMode: in the over-partitioned regime (B large
// relative to n) Partition switches to one forward scan; the cuts must
// be identical to the binary-search regime's.
func TestPartitionForwardScanMode(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 1))
	sorted := make([]int64, 40)
	for i := range sorted {
		sorted[i] = rng.Int64N(100)
	}
	slices.Sort(sorted)
	sp := make([]int64, 600) // forces the forward-scan heuristic
	for i := range sp {
		sp[i] = rng.Int64N(110)
	}
	slices.Sort(sp)
	runs := Partition(sorted, sp, icmp)
	// Reference cuts via per-splitter searches.
	var cat []int64
	for i, run := range runs {
		for _, k := range run {
			if i > 0 && k < sp[i-1] {
				t.Fatalf("run %d holds %d below splitter %d", i, k, sp[i-1])
			}
			if i < len(sp) && k >= sp[i] {
				t.Fatalf("run %d holds %d at/above splitter %d", i, k, sp[i])
			}
		}
		cat = append(cat, run...)
	}
	if !slices.Equal(cat, sorted) {
		t.Fatal("forward-scan runs do not concatenate to the input")
	}
}

// TestPartitionByCodeMatchesPartition: the code-plane cuts equal the
// comparator cuts run for run, in both cut regimes.
func TestPartitionByCodeMatchesPartition(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 2))
	for _, shape := range []struct{ n, b int }{{5000, 7}, {50, 800}, {0, 3}, {100, 0}} {
		sorted := make([]int64, shape.n)
		for i := range sorted {
			sorted[i] = rng.Int64N(1 << 20)
		}
		slices.Sort(sorted)
		sp := make([]int64, shape.b)
		for i := range sp {
			sp[i] = rng.Int64N(1 << 20)
		}
		slices.Sort(sp)
		want := Partition(sorted, sp, icmp)

		enc := func(k int64) uint64 { return keycoder.Int64{}.Encode(k) }
		cs := codes.Extract(sorted, enc)
		got := PartitionByCode(sorted, cs, codes.Extract(sp, enc))
		if len(got) != len(want) {
			t.Fatalf("n=%d b=%d: %d runs vs %d", shape.n, shape.b, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("n=%d b=%d: run %d differs", shape.n, shape.b, i)
			}
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(data []int16, cuts []int16) bool {
		sorted := make([]int64, len(data))
		for i, v := range data {
			sorted[i] = int64(v)
		}
		slices.Sort(sorted)
		sp := make([]int64, len(cuts))
		for i, v := range cuts {
			sp[i] = int64(v)
		}
		slices.Sort(sp)
		runs := Partition(sorted, sp, icmp)
		// Concatenation must reproduce the input; each run must respect
		// its half-open range.
		var cat []int64
		for i, run := range runs {
			for _, k := range run {
				if i > 0 && k < sp[i-1] {
					return false
				}
				if i < len(sp) && k >= sp[i] {
					return false
				}
			}
			cat = append(cat, run...)
		}
		return slices.Equal(cat, sorted)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContiguousOwner(t *testing.T) {
	// 8 buckets over 4 ranks: two each.
	own := ContiguousOwner(8, 4)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for b, w := range want {
		if got := own(b); got != w {
			t.Errorf("own(%d) = %d, want %d", b, got, w)
		}
	}
	// Identity case.
	own = ContiguousOwner(5, 5)
	for b := 0; b < 5; b++ {
		if own(b) != b {
			t.Errorf("identity own(%d) = %d", b, own(b))
		}
	}
	// Uneven: 7 buckets over 3 ranks — owners non-decreasing, all ranks used.
	own = ContiguousOwner(7, 3)
	prev := 0
	used := map[int]bool{}
	for b := 0; b < 7; b++ {
		o := own(b)
		if o < prev || o > 2 {
			t.Fatalf("owner sequence broken at %d: %d", b, o)
		}
		prev = o
		used[o] = true
	}
	if len(used) != 3 {
		t.Errorf("only %d ranks used", len(used))
	}
	// Fewer buckets than ranks: buckets spread over distinct ranks
	// starting at 0 (a single bucket lands on rank 0, not rank p-1).
	own = ContiguousOwner(1, 4)
	if own(0) != 0 {
		t.Errorf("single bucket owned by rank %d, want 0", own(0))
	}
	own = ContiguousOwner(2, 4)
	if own(0) != 0 || own(1) != 2 {
		t.Errorf("2 buckets over 4 ranks owned by %d,%d", own(0), own(1))
	}
}

func TestRoundRobinOwner(t *testing.T) {
	own := RoundRobinOwner(3)
	for b := 0; b < 9; b++ {
		if own(b) != b%3 {
			t.Errorf("own(%d) = %d", b, own(b))
		}
	}
}

func runWorld(t *testing.T, p int, fn func(c *comm.Comm) error) {
	t.Helper()
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	if err := w.Run(fn); err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
}

func TestExchangeIdentityOwner(t *testing.T) {
	// p ranks, p buckets, splitters at multiples of 100: classic flat sort.
	const p = 4
	runWorld(t, p, func(c *comm.Comm) error {
		// Rank r holds keys r, r+100, r+200, r+300 — one per bucket.
		local := []int64{int64(c.Rank()), int64(c.Rank() + 100), int64(c.Rank() + 200), int64(c.Rank() + 300)}
		runs := Partition(local, []int64{100, 200, 300}, icmp)
		got, err := Exchange(c, 1, runs, ContiguousOwner(p, p))
		if err != nil {
			return err
		}
		merged := merge.KWay(got, icmp)
		want := []int64{int64(c.Rank() * 100), int64(c.Rank()*100 + 1), int64(c.Rank()*100 + 2), int64(c.Rank()*100 + 3)}
		if !slices.Equal(merged, want) {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), merged, want)
		}
		return nil
	})
}

func TestExchangeManyBucketsPerRank(t *testing.T) {
	// 8 buckets over 2 ranks with contiguous ownership: global sort order.
	const p = 2
	runWorld(t, p, func(c *comm.Comm) error {
		var local []int64
		for i := 0; i < 16; i++ {
			local = append(local, int64(i*2+c.Rank()))
		}
		splitters := []int64{4, 8, 12, 16, 20, 24, 28}
		runs := Partition(local, splitters, icmp)
		got, err := Exchange(c, 1, runs, ContiguousOwner(8, p))
		if err != nil {
			return err
		}
		merged := merge.KWay(got, icmp)
		var want []int64
		for i := c.Rank() * 16; i < (c.Rank()+1)*16; i++ {
			want = append(want, int64(i))
		}
		if !slices.Equal(merged, want) {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), merged, want)
		}
		return nil
	})
}

func TestExchangeRoundRobinOwner(t *testing.T) {
	// Buckets 0..5 round-robin over 3 ranks: rank r receives buckets
	// r, r+3; its merged data is every key from those buckets.
	const p = 3
	runWorld(t, p, func(c *comm.Comm) error {
		// Global keys 0..59; bucket b owns [b*10, b*10+10). Rank r holds
		// the keys congruent to r mod 3.
		var local []int64
		for k := int64(c.Rank()); k < 60; k += 3 {
			local = append(local, k)
		}
		splitters := []int64{10, 20, 30, 40, 50}
		runs := Partition(local, splitters, icmp)
		got, err := Exchange(c, 1, runs, RoundRobinOwner(p))
		if err != nil {
			return err
		}
		merged := merge.KWay(got, icmp)
		var want []int64
		for _, b := range []int{c.Rank(), c.Rank() + 3} {
			for k := int64(b * 10); k < int64(b*10+10); k++ {
				want = append(want, k)
			}
		}
		slices.Sort(want)
		if !slices.Equal(merged, want) {
			return fmt.Errorf("rank %d got %v, want %v", c.Rank(), merged, want)
		}
		return nil
	})
}

func TestExchangeBadOwner(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(time.Second))
	err := w.Run(func(c *comm.Comm) error {
		runs := [][]int64{{1}, {2}}
		_, err := Exchange(c, 1, runs, func(int) int { return 7 })
		if err == nil {
			return fmt.Errorf("bad owner accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeSingleRank(t *testing.T) {
	runWorld(t, 1, func(c *comm.Comm) error {
		runs := Partition([]int64{1, 2, 3}, nil, icmp)
		got, err := Exchange(c, 1, runs, ContiguousOwner(1, 1))
		if err != nil {
			return err
		}
		if merged := merge.KWay(got, icmp); !slices.Equal(merged, []int64{1, 2, 3}) {
			return fmt.Errorf("got %v", merged)
		}
		return nil
	})
}

func TestImbalance(t *testing.T) {
	const p = 4
	runWorld(t, p, func(c *comm.Comm) error {
		// Counts 10, 10, 10, 30 → avg 15, max 30, imbalance 2.
		count := int64(10)
		if c.Rank() == p-1 {
			count = 30
		}
		imb, total, err := Imbalance(c, 1, count)
		if err != nil {
			return err
		}
		if total != 60 {
			return fmt.Errorf("total %d", total)
		}
		if imb != 2 {
			return fmt.Errorf("imbalance %f, want 2", imb)
		}
		return nil
	})
}

func TestImbalanceEmpty(t *testing.T) {
	runWorld(t, 3, func(c *comm.Comm) error {
		imb, total, err := Imbalance(c, 1, 0)
		if err != nil {
			return err
		}
		if total != 0 || imb != 1 {
			return fmt.Errorf("imb %f total %d", imb, total)
		}
		return nil
	})
}

// TestExchangeEndToEndProperty: random shards, random splitters — the
// union of merged outputs across ranks equals the sorted input union, and
// every rank's data respects its bucket ranges.
func TestExchangeEndToEndProperty(t *testing.T) {
	f := func(seed uint32, pRaw uint8) bool {
		p := int(pRaw%5) + 1
		rng := rand.New(rand.NewPCG(uint64(seed), 11))
		shards := make([][]int64, p)
		var all []int64
		for r := range shards {
			n := rng.IntN(200)
			shards[r] = make([]int64, n)
			for i := range shards[r] {
				shards[r][i] = rng.Int64N(1000)
			}
			slices.Sort(shards[r])
			all = append(all, shards[r]...)
		}
		slices.Sort(all)
		splitters := make([]int64, p-1)
		for i := range splitters {
			splitters[i] = rng.Int64N(1000)
		}
		slices.Sort(splitters)
		outs := make([][]int64, p)
		w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			runs := Partition(shards[c.Rank()], splitters, icmp)
			got, err := Exchange(c, 1, runs, ContiguousOwner(p, p))
			if err != nil {
				return err
			}
			outs[c.Rank()] = merge.KWay(got, icmp)
			return nil
		})
		if err != nil {
			return false
		}
		var cat []int64
		for r, out := range outs {
			if !slices.IsSorted(out) {
				return false
			}
			for _, k := range out {
				if r > 0 && k < splitters[r-1] {
					return false
				}
				if r < p-1 && k >= splitters[r] {
					return false
				}
			}
			cat = append(cat, out...)
		}
		return slices.Equal(cat, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
