package core

import (
	"math/rand/v2"

	"hssort/internal/histogram"
	"hssort/internal/sampling"
)

// SimResult reports one run of the protocol simulator: the round and
// sample-size behaviour of splitter determination at arbitrary scale.
type SimResult struct {
	// Rounds is the number of histogramming rounds executed.
	Rounds int
	// SamplePerRound is the overall (deduplicated) probe count per
	// round; TotalSample is the sum.
	SamplePerRound []int64
	TotalSample    int64
	// CoveragePerRound is G_j — the keys remaining inside active
	// splitter intervals — after each round (Theorem 3.3.2's quantity).
	CoveragePerRound []int64
	// Imbalance is the bucket-level load imbalance max·B/N achieved by
	// the final splitters.
	Imbalance float64
	// Finalized reports whether every splitter met its target window.
	Finalized bool
}

// SimulateSplitters runs the exact HSS splitter-determination protocol —
// Bernoulli sampling restricted to active splitter intervals, followed by
// histogramming — against an idealized input of n distinct keys, centrally.
//
// For distinct keys the protocol is distribution-free: it observes keys
// only through comparisons and ranks, so the key space can be taken to be
// 0..n-1 with rank(k) = k. This is what lets the simulator execute the
// paper's true processor counts (Table 6.1 runs p up to 32768, Fig 4.1 up
// to 256K) on one machine: no key array is materialized at all. The
// distributed implementation and the simulator share the Tracker, the
// sampling ratios, and the scanning algorithm, so round counts and sample
// sizes transfer.
func SimulateSplitters(n int64, opt Options[int64]) (SimResult, error) {
	if opt.Cmp == nil {
		opt.Cmp = func(a, b int64) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
	}
	// Defaults are computed as if the world had one rank per bucket.
	opt, err := opt.withDefaults(max(opt.Buckets, 1))
	if err != nil {
		return SimResult{}, err
	}
	res := SimResult{}
	if opt.Buckets == 1 || n == 0 {
		res.Finalized = true
		res.Imbalance = 1
		return res, nil
	}
	rng := rand.New(rand.NewPCG(opt.Seed, 0x6a09e667f3bcc909))
	rc := newRootController(n, opt)

	for round := 1; ; round++ {
		plan := rc.plan(round)
		if plan.Done {
			res.Finalized = plan.Finalized
			res.Imbalance = simImbalance(plan.Splitters, n, opt.Buckets)
			return res, nil
		}
		// Sampling phase: Bernoulli(prob) over the index ranges the
		// active intervals cover. Interval bounds are exclusive keys
		// whose rank equals their value in the identity key space.
		var probes []int64
		for _, iv := range plan.Intervals {
			lo := int64(0)
			if iv.HasLo {
				lo = iv.Lo + 1
			}
			hi := n
			if iv.HasHi {
				hi = iv.Hi
			}
			if hi <= lo {
				continue
			}
			sampling.BernoulliIndices(int(hi-lo), plan.Prob, rng, func(i int) {
				probes = append(probes, lo+int64(i))
			})
		}
		res.Rounds = round
		res.SamplePerRound = append(res.SamplePerRound, int64(len(probes)))
		res.TotalSample += int64(len(probes))

		// Histogramming phase: exact ranks are the probe values
		// themselves.
		rc.absorb(probes, probes)
		res.CoveragePerRound = append(res.CoveragePerRound, rc.tracker.Coverage())
	}
}

// simImbalance computes the bucket-level imbalance max·B/n induced by
// splitter keys in the identity key space.
func simImbalance(splitters []int64, n int64, buckets int) float64 {
	if n == 0 {
		return 1
	}
	prev := int64(0)
	maxLoad := int64(0)
	for _, s := range splitters {
		if s-prev > maxLoad {
			maxLoad = s - prev
		}
		prev = s
	}
	if n-prev > maxLoad {
		maxLoad = n - prev
	}
	return float64(maxLoad) * float64(buckets) / float64(n)
}

// SimTracker exposes the tracker of a fresh controller for tests that
// need to inspect interval evolution (Fig 3.1).
func SimTracker(n int64, opt Options[int64]) (*histogram.Tracker[int64], error) {
	opt, err := opt.withDefaults(max(opt.Buckets, 1))
	if err != nil {
		return nil, err
	}
	return histogram.NewTracker[int64](n, opt.Buckets, opt.Epsilon, opt.Cmp), nil
}
