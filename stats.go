package hssort

import "encoding/json"

// StatsSnapshot is the serialization-ready view of Stats: every field
// of one sort run flattened into JSON-tagged scalars, with durations in
// integer nanoseconds (lossless, language-neutral) and the derived
// end-to-end total precomputed. It is what travels over the wire —
// hssortd's job status responses and /metrics aggregation are built on
// it, and cmd/hssort -digest prints one as a machine-readable stats
// line — so callers never reach into Stats fields to serialize a run.
type StatsSnapshot struct {
	N                 int64   `json:"n"`
	Buckets           int     `json:"buckets"`
	Rounds            int     `json:"rounds"`
	SamplePerRound    []int64 `json:"samplePerRound,omitempty"`
	TotalSample       int64   `json:"totalSample"`
	LocalSortNs       int64   `json:"localSortNs"`
	SplitterNs        int64   `json:"splitterNs"`
	ExchangeNs        int64   `json:"exchangeNs"`
	MergeNs           int64   `json:"mergeNs"`
	TotalNs           int64   `json:"totalNs"`
	ExchangeOverlapNs int64   `json:"exchangeOverlapNs,omitempty"`
	PeakInFlightBytes int64   `json:"peakInFlightBytes,omitempty"`
	SplitterBytes     int64   `json:"splitterBytes"`
	ExchangeBytes     int64   `json:"exchangeBytes"`
	TotalMsgs         int64   `json:"totalMsgs"`
	TotalBytes        int64   `json:"totalBytes"`
	Replanned         bool    `json:"replanned,omitempty"`
	Workers           int     `json:"workers"`
	ParSpawned        int64   `json:"parSpawned,omitempty"`
	ParTasks          int64   `json:"parTasks,omitempty"`
	Imbalance         float64 `json:"imbalance"`
	PrefixCollisions  int64   `json:"prefixCollisions,omitempty"`
	Reconnects        int64   `json:"reconnects,omitempty"`
	Respawns          int64   `json:"respawns,omitempty"`
	SpilledBytes      int64   `json:"spilledBytes,omitempty"`
	SpillFileBytes    int64   `json:"spillFileBytes,omitempty"`
	SpillReads        int64   `json:"spillReads,omitempty"`
	PeakResidentBytes int64   `json:"peakResidentBytes,omitempty"`
}

// Snapshot flattens the Stats into their serialization-ready view.
func (s Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		N:                 s.N,
		Buckets:           s.Buckets,
		Rounds:            s.Rounds,
		SamplePerRound:    s.SamplePerRound,
		TotalSample:       s.TotalSample,
		LocalSortNs:       s.LocalSort.Nanoseconds(),
		SplitterNs:        s.Splitter.Nanoseconds(),
		ExchangeNs:        s.Exchange.Nanoseconds(),
		MergeNs:           s.Merge.Nanoseconds(),
		TotalNs:           s.Total().Nanoseconds(),
		ExchangeOverlapNs: s.ExchangeOverlap.Nanoseconds(),
		PeakInFlightBytes: s.PeakInFlightBytes,
		SplitterBytes:     s.SplitterBytes,
		ExchangeBytes:     s.ExchangeBytes,
		TotalMsgs:         s.TotalMsgs,
		TotalBytes:        s.TotalBytes,
		Replanned:         s.Replanned,
		Workers:           s.Workers,
		ParSpawned:        s.ParSpawned,
		ParTasks:          s.ParTasks,
		Imbalance:         s.Imbalance,
		PrefixCollisions:  s.PrefixCollisions,
		Reconnects:        s.Reconnects,
		Respawns:          s.Respawns,
		SpilledBytes:      s.SpilledBytes,
		SpillFileBytes:    s.SpillFileBytes,
		SpillReads:        s.SpillReads,
		PeakResidentBytes: s.PeakResidentBytes,
	}
}

// MarshalJSON serializes the Stats as their Snapshot.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Snapshot())
}
