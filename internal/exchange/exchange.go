package exchange

import (
	"fmt"
	"sort"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
)

// Debug enables O(B) invariant re-validation on the partition hot paths.
// Splitter sortedness is guaranteed once at splitter-determination time
// (the pipelines sort before broadcasting), so the per-call check is a
// debug assertion only; tests flip this on.
var Debug = false

// ValidateSplitters panics if splitters are not non-decreasing under
// cmp. The sort pipelines call it (or sort outright) once when splitters
// are determined, which is what lets Partition skip the O(B) re-check on
// every invocation.
func ValidateSplitters[K any](splitters []K, cmp func(K, K) int) {
	for i := 1; i < len(splitters); i++ {
		if cmp(splitters[i-1], splitters[i]) > 0 {
			panic("exchange: splitters not sorted")
		}
	}
}

// Partition cuts a locally sorted slice into len(splitters)+1 consecutive
// runs: run i holds keys in [S_{i-1}, S_i) with S_{-1} = -inf and
// S_{B-1} = +inf, matching the paper's bucket definition (processor i owns
// [S_i, S_{i+1})). The returned runs alias the input. splitters must be
// sorted (non-decreasing) — guaranteed by the splitter-determination
// phases and re-checked only under Debug.
//
// Two cut strategies cover the two shapes: B independent binary searches
// when buckets are few relative to the data, and a single merge-style
// forward scan — O(n+B) comparator calls instead of O(B log n) — in the
// over-partitioned regime where B rivals or exceeds n.
func Partition[K any](sorted []K, splitters []K, cmp func(K, K) int) [][]K {
	if Debug {
		ValidateSplitters(splitters, cmp)
	}
	runs := make([][]K, len(splitters)+1)
	prev := 0
	if codes.ForwardScanBetter(len(sorted), len(splitters)) {
		for i, s := range splitters {
			cut := prev
			for cut < len(sorted) && cmp(sorted[cut], s) < 0 {
				cut++
			}
			runs[i] = sorted[prev:cut]
			prev = cut
		}
	} else {
		for i, s := range splitters {
			// First index whose key is >= s starts bucket i+1.
			cut := prev + sort.Search(len(sorted)-prev, func(j int) bool {
				return cmp(sorted[prev+j], s) >= 0
			})
			runs[i] = sorted[prev:cut]
			prev = cut
		}
	}
	runs[len(splitters)] = sorted[prev:]
	return runs
}

// PartitionByCode is Partition on the code plane: the cut positions are
// computed on the parallel sorted code array cs (raw uint64 searches or
// one forward scan — codes.Cuts picks, with the same shape heuristic)
// and the element slice is cut at those positions. splitterCodes must be
// the non-decreasing codes of the splitter keys under the same
// order-preserving extractor that produced cs.
func PartitionByCode[K any](sorted []K, cs []codes.Code, splitterCodes []codes.Code) [][]K {
	if len(sorted) != len(cs) {
		panic("exchange: code array length mismatch")
	}
	if Debug {
		ValidateSplitters(splitterCodes, codes.Compare)
	}
	cuts := codes.Cuts(cs, splitterCodes)
	runs := make([][]K, len(splitterCodes)+1)
	prev := 0
	for i, cut := range cuts {
		runs[i] = sorted[prev:cut]
		prev = cut
	}
	runs[len(splitterCodes)] = sorted[prev:]
	return runs
}

// ContiguousOwner maps buckets to ranks in contiguous blocks: bucket b
// goes to rank floor(b·p/B). For B >= p every rank owns a block of
// [B/p, B/p+1] buckets; for B < p the buckets spread over distinct ranks
// starting at rank 0. Either way the global sort order follows rank
// order.
func ContiguousOwner(buckets, ranks int) func(int) int {
	return func(b int) int {
		return b * ranks / buckets
	}
}

// RoundRobinOwner maps bucket b to rank b mod p: the non-contiguous
// virtual-processor placement of §6.3, where consecutive buckets land on
// arbitrary (here: cyclic) ranks.
func RoundRobinOwner(ranks int) func(int) int {
	return func(b int) int { return b % ranks }
}

// Wire-accounting constants shared by both exchange paths. The §5.1 BSP
// model charges every message a latency term independent of its size, so
// even an empty message must carry accounted overhead — otherwise
// SimTransport stats under-count the α·(p-1) term of the all-to-all.
const (
	// MsgHeaderBytes is the accounted envelope of every exchange
	// message, including empty ones.
	MsgHeaderBytes = 8
	// RunHeaderBytes is the accounted per-run (bucket, sender) framing
	// inside a materialized exchange message.
	RunHeaderBytes = 8
)

// bucketRun is the wire unit of the exchange: one bucket's keys from one
// sender.
type bucketRun[K any] struct {
	bucket int32
	sender int32
	keys   []K
}

// Exchange routes runs[b] (this rank's keys for bucket b) to owner(b) for
// every bucket, combining all runs for one destination rank into a single
// message. It returns the sorted runs this rank received — one per
// (bucket, sender) pair with data, ordered by bucket then sender — ready
// for a k-way merge. Every rank must pass the same number of buckets and
// the same owner mapping.
func Exchange[K any](e comm.Endpoint, tag comm.Tag, runs [][]K, owner func(int) int) ([][]K, error) {
	comm.RegisterWire[[]bucketRun[K]]() // wire transports decode by registered type
	p := e.Size()
	me := e.Rank()
	byDst := make([][]bucketRun[K], p)
	for b, run := range runs {
		dst := owner(b)
		if dst < 0 || dst >= p {
			return nil, fmt.Errorf("exchange: owner(%d) = %d outside world size %d", b, dst, p)
		}
		if len(run) == 0 {
			continue
		}
		byDst[dst] = append(byDst[dst], bucketRun[K]{bucket: int32(b), sender: int32(me), keys: run})
	}
	// Staggered sends, as in collective.AllToAllv. Every rank sends to
	// every other rank even when it has nothing for it, so receivers
	// need no separate count protocol.
	for i := 1; i < p; i++ {
		dst := (me + i) % p
		bytes := int64(MsgHeaderBytes)
		for _, br := range byDst[dst] {
			bytes += RunHeaderBytes + comm.SliceBytes(br.keys)
		}
		if err := e.Send(dst, tag, byDst[dst], bytes); err != nil {
			return nil, fmt.Errorf("exchange: send: %w", err)
		}
	}
	received := append([]bucketRun[K]{}, byDst[me]...)
	for i := 1; i < p; i++ {
		src := (me - i + p) % p
		m, err := e.Recv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("exchange: recv: %w", err)
		}
		part, ok := m.Payload.([]bucketRun[K])
		if !ok {
			return nil, fmt.Errorf("exchange: payload type %T", m.Payload)
		}
		received = append(received, part...)
	}
	// Deterministic run order: bucket-major, sender-minor, so duplicate
	// keys keep a stable cross-rank order after the k-way merge.
	sort.Slice(received, func(a, b int) bool {
		if received[a].bucket != received[b].bucket {
			return received[a].bucket < received[b].bucket
		}
		return received[a].sender < received[b].sender
	})
	out := make([][]K, len(received))
	for i, br := range received {
		out[i] = br.keys
	}
	return out, nil
}

// RunsImbalance measures the load balance a partition would achieve
// before any data moves: it all-reduces the global per-bucket loads of
// runs (every rank's slice lengths, bucket by bucket) and returns the
// observed bucket-level imbalance max·B/N — directly comparable to the
// paper's (1+ε) target — along with the global key count. Every rank
// receives the same answer; empty input reports 1. It is the staleness
// probe behind plan-reuse sorts (hssort.Sorter.SortWithPlan): one
// B-length reduction decides whether a stored splitter plan still fits
// the data.
func RunsImbalance[K any](e comm.Endpoint, tag comm.Tag, runs [][]K) (imb float64, total int64, err error) {
	loads := make([]int64, len(runs))
	for b, run := range runs {
		loads[b] = int64(len(run))
	}
	global, err := collective.AllReduce(e, tag, loads, collective.SumInt64)
	if err != nil {
		return 0, 0, err
	}
	var maxLoad int64
	for _, l := range global {
		total += l
		maxLoad = max(maxLoad, l)
	}
	if total == 0 {
		return 1, 0, nil
	}
	return float64(maxLoad) * float64(len(runs)) / float64(total), total, nil
}

// Imbalance measures the achieved load balance after the exchange: it
// all-reduces (sum, max) of the per-rank output counts and returns
// max·p/avg — the paper's load-imbalance ratio (§1 footnote) — along with
// the global key count. Every rank receives the same answer.
func Imbalance(e comm.Endpoint, tag comm.Tag, localCount int64) (imb float64, total int64, err error) {
	out, err := collective.AllReduce(e, tag, []int64{localCount, localCount}, func(dst, src []int64) {
		dst[0] += src[0]
		if src[1] > dst[1] {
			dst[1] = src[1]
		}
	})
	if err != nil {
		return 0, 0, err
	}
	total = out[0]
	if total == 0 {
		return 1, 0, nil
	}
	avg := float64(total) / float64(e.Size())
	return float64(out[1]) / avg, total, nil
}
