package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded fork-join worker budget for one rank's compute
// phases. The zero value and nil are both valid serial pools (one
// worker); New clamps its argument to at least one worker. A Pool is
// safe for use by one rank at a time — the sort pipelines run their
// phases sequentially, so one Pool per rank never sees concurrent Do
// calls, but Do itself is reentrant and data-race-free regardless.
type Pool struct {
	workers int
	spawned atomic.Int64
	tasks   atomic.Int64
}

// New returns a Pool budgeted at the given number of workers (clamped
// to >= 1).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Default is the per-rank worker budget when Config.Workers is 0:
// GOMAXPROCS divided by the number of ranks this process hosts, so
// concurrently running ranks own disjoint core budgets. Always >= 1.
func Default(hostedRanks int) int {
	if hostedRanks < 1 {
		hostedRanks = 1
	}
	w := runtime.GOMAXPROCS(0) / hostedRanks
	if w < 1 {
		w = 1
	}
	return w
}

// Workers returns the pool's worker budget; nil and zero pools report 1.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Counters reports the pool's cumulative effective-parallelism
// counters.
type Counters struct {
	// Spawned counts worker goroutines forked across all Do regions
	// (the caller's goroutine, which always participates, is not
	// counted).
	Spawned int64
	// Tasks counts task executions across all Do regions, serial ones
	// included.
	Tasks int64
}

// Counters returns the pool's cumulative counters; nil pools report
// zero.
func (p *Pool) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return Counters{Spawned: p.spawned.Load(), Tasks: p.tasks.Load()}
}

// Do runs fn(i) for every task index i in [0, n), fanning the tasks
// over up to Workers goroutines, and returns only when every task has
// finished — the fork-join region every parallel kernel is built from.
// Task indices are claimed dynamically (skew-tolerant), so fn must
// depend only on its index and the input, not on execution order; fn
// calls for different indices may run concurrently and must touch
// disjoint state. With one worker (or n <= 1) the tasks run inline, in
// index order, on the caller's goroutine.
func (p *Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		if p != nil {
			p.tasks.Add(int64(n))
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.tasks.Add(int64(n))
	p.spawned.Add(int64(w - 1))
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 1; g < w; g++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}

// Range is one contiguous index block [Lo, Hi).
type Range struct{ Lo, Hi int }

// Blocks splits [0, n) into parts near-equal contiguous Ranges (fewer
// when n < parts; none when n == 0). The split depends only on n and
// parts — the determinism anchor for every chunked kernel.
func Blocks(n, parts int) []Range {
	if n <= 0 || parts < 1 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, parts)
	for i := 0; i < parts; i++ {
		out[i] = Range{Lo: i * n / parts, Hi: (i + 1) * n / parts}
	}
	return out
}
