package hssort_test

import (
	"fmt"

	"hssort"
)

// ExampleSort sorts a tiny deterministic workload across four simulated
// processors and shows the per-processor partitions of the global order.
func ExampleSort() {
	shards := [][]int64{
		{40, 1, 33, 21},
		{7, 39, 2, 18},
		{27, 5, 14, 36},
		{11, 30, 9, 24},
	}
	out, stats, err := hssort.Sort(hssort.Config{Procs: 4, Epsilon: 0.25, Seed: 1}, shards)
	if err != nil {
		panic(err)
	}
	total := 0
	for _, o := range out {
		total += len(o)
	}
	fmt.Println("keys sorted:", total)
	fmt.Println("rank 0 starts with:", out[0][0])
	fmt.Println("imbalance within target:", stats.Imbalance <= 1.25)
	// Output:
	// keys sorted: 16
	// rank 0 starts with: 1
	// imbalance within target: true
}

// ExampleSortFunc sorts records of a custom type with an explicit
// comparator.
func ExampleSortFunc() {
	type event struct {
		At   int64
		Name string
	}
	shards := [][]event{
		{{At: 9, Name: "c"}, {At: 1, Name: "a"}},
		{{At: 5, Name: "b"}, {At: 12, Name: "d"}},
	}
	out, _, err := hssort.SortFunc(hssort.Config{Procs: 2, Epsilon: 0.5, Seed: 1}, shards,
		func(a, b event) int {
			switch {
			case a.At < b.At:
				return -1
			case a.At > b.At:
				return 1
			default:
				return 0
			}
		})
	if err != nil {
		panic(err)
	}
	for _, o := range out {
		for _, e := range o {
			fmt.Printf("%d:%s ", e.At, e.Name)
		}
	}
	fmt.Println()
	// Output:
	// 1:a 5:b 9:c 12:d
}

// ExampleSimulateSplitters runs the splitter-determination protocol at a
// scale no laptop could host as real ranks — the paper's Table 6.1 tool.
func ExampleSimulateSplitters() {
	res, err := hssort.SimulateSplitters(1<<22, 4096, 0.02, hssort.HSS, 0, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("finalized:", res.Finalized)
	fmt.Println("rounds within the paper's bound of 8:", res.Rounds <= 8)
	fmt.Println("imbalance within 1.02:", res.Imbalance <= 1.02)
	// Output:
	// finalized: true
	// rounds within the paper's bound of 8: true
	// imbalance within 1.02: true
}
