package comm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcp_test.go: behaviors specific to the wire backend, beyond the
// shared conformance suite — teardown hygiene, measured accounting,
// cross-process cancellation identity, worker-mode (one Pool per
// endpoint) lockstep, and bootstrap failure modes.

// waitGoroutines polls until the goroutine count settles at or below
// base (teardown is asynchronous: readers observe EOFs on their own
// schedule).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d, want <= %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPGoroutineLeakAfterClose: a full construct → traffic → Close
// cycle leaves no reader, writer or bootstrap goroutines behind.
func TestTCPGoroutineLeakAfterClose(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		tr, err := NewTCPLoopback(4)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorld(4, WithTransport(tr), WithTimeout(10*time.Second))
		err = w.Run(func(c *Comm) error {
			if err := SendSlice(c, (c.Rank()+1)%4, 1, []int64{1, 2, 3}); err != nil {
				return err
			}
			if _, err := RecvSlice[int64](c, (c.Rank()+3)%4, 1); err != nil {
				return err
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.Close()
	}
	waitGoroutines(t, base)
}

// TestTCPGoroutineLeakAfterAbortedRun: Close after an abort (the messy
// path: latched errors, pending queues, parked waiters) is just as
// clean.
func TestTCPGoroutineLeakAfterAbortedRun(t *testing.T) {
	base := runtime.NumGoroutine()
	tr, err := NewTCPLoopback(3)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(3, WithTransport(tr), WithTimeout(10*time.Second))
	w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("boom")
		}
		_, err := c.Recv(0, 7) // unblocked by the abort
		return err
	})
	tr.Close()
	waitGoroutines(t, base)
}

// TestTCPCountersMeasureWireTraffic: unlike SimTransport's modeled
// bytes, tcp counters report measured frames — headers included — and
// received bytes match sent bytes across a settled world.
func TestTCPCountersMeasureWireTraffic(t *testing.T) {
	tr, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	w := NewWorld(2, WithTransport(tr), WithTimeout(10*time.Second))
	payload := []int64{1, 2, 3, 4}
	if err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, 1, 1, payload)
		}
		got, err := RecvSlice[int64](c, 0, 1)
		if err != nil {
			return err
		}
		if len(got) != 4 {
			return fmt.Errorf("got %d keys", len(got))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sent := w.Counters(0)
	recv := w.Counters(1)
	// 32 payload bytes + frame header + codec type header: the exact
	// size is an implementation detail, but it must exceed the raw
	// payload (headers are real now) and match end to end.
	if sent.MsgsSent != 1 || sent.BytesSent <= 32 {
		t.Errorf("sender counters = %+v, want 1 msg, > 32 measured bytes", sent)
	}
	if recv.MsgsRecv != 1 || recv.BytesRecv != sent.BytesSent {
		t.Errorf("receiver counters = %+v, want bytes recv == bytes sent (%d)", recv, sent.BytesSent)
	}
}

// TestTCPRemoteCancellationIdentity: an abort caused by context
// cancellation on one process must surface on every other process as an
// error still satisfying errors.Is(err, context.Canceled) — the
// property that lets each worker of a cancelled sort return its own
// ctx.Err().
func TestTCPRemoteCancellationIdentity(t *testing.T) {
	nodes := dialWorkerNodes(t, 2)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := nodes[1].Recv(1, 0, 9) // parked until the abort frame arrives
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	nodes[0].Abort(fmt.Errorf("%w: %w", ErrAborted, context.Canceled))
	wg.Wait()
	err := <-errCh
	if !errors.Is(err, ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("remote abort error %v does not preserve ErrAborted + context.Canceled", err)
	}
}

// dialWorkerNodes bootstraps p single-rank endpoints the way p worker
// processes would (independent DialTCP calls against one coordinator),
// inside this test process, and closes them at test end.
func dialWorkerNodes(t *testing.T, p int) []*TCPTransport {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*TCPTransport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := TCPOptions{Coordinator: ln.Addr().String(), Rank: r, Procs: p, BootstrapTimeout: 10 * time.Second}
			if r == 0 {
				opts.CoordinatorListener = ln
			}
			nodes[r], errs[r] = DialTCP(opts)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		var cwg sync.WaitGroup
		for _, n := range nodes {
			cwg.Add(1)
			go func(n *TCPTransport) { defer cwg.Done(); n.Close() }(n)
		}
		cwg.Wait()
	})
	return nodes
}

// TestTCPWorkerModePools is the multi-process drive model in
// miniature: each endpoint gets its own Pool (as each worker process
// would), pools Reset their own endpoints independently, and the
// generation fence keeps repeated runs in lockstep even though no
// process coordinates the resets. Also pins RankHoster wiring: each
// pool runs exactly its hosted rank.
func TestTCPWorkerModePools(t *testing.T) {
	const p, runs = 3, 5
	nodes := dialWorkerNodes(t, p)
	pools := make([]*Pool, p)
	for r := range nodes {
		pools[r] = NewPool(p, WithTransport(nodes[r]), WithTimeout(10*time.Second))
		defer pools[r].Close()
		if got := len(hostedRanks(nodes[r])); got != 1 {
			t.Fatalf("node %d hosts %d ranks, want 1", r, got)
		}
	}
	for run := 0; run < runs; run++ {
		var wg sync.WaitGroup
		errs := make([]error, p)
		for r := range pools {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = pools[r].Run(context.Background(), func(c *Comm) error {
					if c.Rank() != r {
						return fmt.Errorf("pool %d ran rank %d", r, c.Rank())
					}
					// Ring exchange with run-stamped payloads: a stale
					// frame from a previous generation would corrupt it.
					want := int64(run*100 + (c.Rank()+p-1)%p)
					if err := SendValue(c, (c.Rank()+1)%p, 3, int64(run*100+c.Rank())); err != nil {
						return err
					}
					got, err := RecvValue[int64](c, (c.Rank()+p-1)%p, 3)
					if err != nil {
						return err
					}
					if got != want {
						return fmt.Errorf("run %d rank %d: got %d, want %d (generation fence broken)", run, c.Rank(), got, want)
					}
					return c.Barrier()
				})
			}(r)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

// TestTCPWorkerModeCancellation: cancelling one worker's context aborts
// the whole multi-pool world, and every pool's Run reports the
// cancellation identity.
func TestTCPWorkerModeCancellation(t *testing.T) {
	const p = 3
	nodes := dialWorkerNodes(t, p)
	pools := make([]*Pool, p)
	for r := range nodes {
		pools[r] = NewPool(p, WithTransport(nodes[r]), WithTimeout(10*time.Second))
		defer pools[r].Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := range pools {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Every rank parks in a Recv nobody satisfies; rank 0's
			// process cancels its context.
			errs[r] = pools[r].Run(ctx, func(c *Comm) error {
				if c.Rank() == 0 {
					time.AfterFunc(20*time.Millisecond, cancel)
				}
				_, err := c.Recv((c.Rank()+1)%p, 11)
				return err
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("pool %d error %v does not satisfy context.Canceled", r, err)
		}
	}
}

// TestTCPPeerCrashAborts: a peer vanishing without the shutdown
// handshake (process crash) aborts the world instead of hanging it.
func TestTCPPeerCrashAborts(t *testing.T) {
	nodes := dialWorkerNodes(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := nodes[1].Recv(1, 0, 5)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	nodes[0].forceClose() // simulated crash: sockets die, no shutdown frame
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned a message from a crashed peer")
		}
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("peer crash surfaced as %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv hung after peer crash")
	}
}

// TestTCPBootstrapRejectsMismatchedWorld: a worker whose -nprocs
// disagrees with the coordinator is turned away with a clear error, and
// the coordinator fails rather than building a partial mesh.
func TestTCPBootstrapRejectsMismatchedWorld(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var coordErr, workerErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr, err := DialTCP(TCPOptions{Coordinator: ln.Addr().String(), Rank: 0, Procs: 2, CoordinatorListener: ln, BootstrapTimeout: 5 * time.Second})
		if tr != nil {
			tr.Close()
		}
		coordErr = err
	}()
	go func() {
		defer wg.Done()
		tr, err := DialTCP(TCPOptions{Coordinator: ln.Addr().String(), Rank: 1, Procs: 3, BootstrapTimeout: 5 * time.Second})
		if tr != nil {
			tr.Close()
		}
		workerErr = err
	}()
	wg.Wait()
	if coordErr == nil || workerErr == nil {
		t.Fatalf("mismatched world sizes bootstrapped: coord=%v worker=%v", coordErr, workerErr)
	}
	if !strings.Contains(workerErr.Error(), "mismatch") {
		t.Errorf("worker error %q does not explain the size mismatch", workerErr)
	}
}

// TestTCPBootstrapRejectsBadRank: ranks outside [0, Procs) fail fast.
func TestTCPBootstrapRejectsBadRank(t *testing.T) {
	if _, err := DialTCP(TCPOptions{Coordinator: "127.0.0.1:1", Rank: 5, Procs: 2}); err == nil {
		t.Fatal("out-of-range rank bootstrapped")
	}
	if _, err := DialTCP(TCPOptions{Rank: 0, Procs: 2}); err == nil {
		t.Fatal("missing coordinator address bootstrapped")
	}
}

// TestTCPSendValidatesLocalRank: a single-rank endpoint refuses to
// impersonate ranks it does not host.
func TestTCPSendValidatesLocalRank(t *testing.T) {
	nodes := dialWorkerNodes(t, 2)
	if err := nodes[0].Send(1, 0, 1, nil, 0); err == nil {
		t.Error("endpoint accepted a send as a non-hosted rank")
	}
	if _, err := nodes[0].Recv(1, 0, 1); err == nil {
		t.Error("endpoint accepted a receive as a non-hosted rank")
	}
}

// TestTCPFutureGenerationAbortKeepsIdentity: an abort frame from a peer
// that already Reset into the next run is buffered until this endpoint
// catches up — and must still carry the cancellation identity and
// message when it finally applies (regression: the buffered frame used
// to drop its JSON payload).
func TestTCPFutureGenerationAbortKeepsIdentity(t *testing.T) {
	nodes := dialWorkerNodes(t, 2)
	// Peer 0 races ahead into the next generation and cancels there.
	nodes[0].Reset()
	nodes[0].Abort(fmt.Errorf("%w: %w: user hit ctrl-c", ErrAborted, context.Canceled))
	// Whether the frame lands before or after our Reset, once we reach
	// the peer's generation the latch must carry the identity.
	nodes[1].Reset()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := nodes[1].Err(); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("future-generation abort lost its cancellation identity: %v", err)
			}
			if !strings.Contains(err.Error(), "ctrl-c") {
				t.Fatalf("future-generation abort lost its message: %v", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("abort never propagated across the generation fence")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPResetKeepsLostPeerPoison: Reset clears cancellation aborts (the
// engine-reuse path) but must NOT clear a permanent connection loss —
// a dead peer cannot come back, and an unlatched transport would wedge
// the next run until the watchdog.
func TestTCPResetKeepsLostPeerPoison(t *testing.T) {
	nodes := dialWorkerNodes(t, 2)
	nodes[0].forceClose() // simulated crash
	deadline := time.Now().Add(5 * time.Second)
	for nodes[1].Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("peer crash never latched")
		}
		time.Sleep(5 * time.Millisecond)
	}
	nodes[1].Reset()
	err := nodes[1].Err()
	if err == nil {
		t.Fatal("Reset cleared the lost-peer poison; the next run would hang")
	}
	var crash *PeerCrashError
	if !errors.As(err, &crash) || crash.Rank != 0 {
		t.Fatalf("poison error %v is not a PeerCrashError naming rank 0", err)
	}
	// A cancellation abort, by contrast, must still clear.
	fresh := dialWorkerNodes(t, 2)
	fresh[0].Abort(context.Canceled)
	fresh[0].Reset()
	if err := fresh[0].Err(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected latch after reset: %v", err)
	}
	if err := fresh[0].Err(); err != nil && errors.As(err, &crash) {
		t.Fatalf("cancellation mislabeled as a peer crash: %v", err)
	}
}
