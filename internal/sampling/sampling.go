package sampling

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Bernoulli samples each element independently with probability prob,
// preserving input order. It runs in O(expected sample size) time via
// geometric gap skipping. prob >= 1 returns a copy of keys; prob <= 0
// returns an empty sample.
func Bernoulli[K any](keys []K, prob float64, rng *rand.Rand) []K {
	out := []K{}
	BernoulliIndices(len(keys), prob, rng, func(i int) {
		out = append(out, keys[i])
	})
	return out
}

// BernoulliIndices visits each index in [0, n) independently with
// probability prob, in increasing order, via geometric skips.
func BernoulliIndices(n int, prob float64, rng *rand.Rand, emit func(i int)) {
	if n <= 0 || prob <= 0 {
		return
	}
	if prob >= 1 {
		for i := 0; i < n; i++ {
			emit(i)
		}
		return
	}
	logq := math.Log1p(-prob) // ln(1-prob) < 0
	i := -1
	for {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		skip := math.Log(u) / logq // geometric number of failures
		// Compare in float64 before converting: for tiny prob the skip
		// can exceed MaxInt, where int conversion is platform-defined
		// and i += 1 + skip can wrap negative, sending emit a bogus
		// index. Capping at the keys that remain keeps every value below
		// the conversion and addition overflow thresholds.
		if skip >= float64(n-i-1) {
			return
		}
		i += 1 + int(skip)
		if i >= n { // float rounding safety net
			return
		}
		emit(i)
	}
}

// Regular returns s evenly spaced keys from the local sorted input
// (§4.1.2): the largest key of each of s equal blocks. If s >= len(sorted)
// it returns a copy of the whole input.
func Regular[K any](sorted []K, s int) []K {
	n := len(sorted)
	if s <= 0 || n == 0 {
		return []K{}
	}
	if s >= n {
		out := make([]K, n)
		copy(out, sorted)
		return out
	}
	out := make([]K, s)
	for i := 0; i < s; i++ {
		// Block i is sorted[i*n/s : (i+1)*n/s); its largest element
		// is the sample.
		out[i] = sorted[(i+1)*n/s-1]
	}
	return out
}

// RandomBlock divides the local sorted input into s equal blocks and picks
// one uniformly random key from each (§4.1.1). The result is sorted
// because blocks are consecutive.
func RandomBlock[K any](sorted []K, s int, rng *rand.Rand) []K {
	n := len(sorted)
	if s <= 0 || n == 0 {
		return []K{}
	}
	if s > n {
		s = n
	}
	out := make([]K, s)
	for i := 0; i < s; i++ {
		lo, hi := i*n/s, (i+1)*n/s
		out[i] = sorted[lo+rng.IntN(hi-lo)]
	}
	return out
}

// Representative is the §3.4 per-processor sample: one random key per
// block of the local sorted input, kept across rounds to answer rank
// queries without touching the full input.
type Representative[K any] struct {
	// Keys is the sorted sample (one key per block).
	Keys []K
	// PerKey is the number of input keys each sample key stands for
	// (the block length N/(p·s) of §3.4, computed locally as n/s).
	PerKey float64
	// N is the local input size the sample summarizes.
	N int
}

// NewRepresentative builds a representative sample of ~s keys over the
// local sorted input.
func NewRepresentative[K any](sorted []K, s int, rng *rand.Rand) Representative[K] {
	keys := RandomBlock(sorted, s, rng)
	per := 0.0
	if len(keys) > 0 {
		per = float64(len(sorted)) / float64(len(keys))
	}
	return Representative[K]{Keys: keys, PerKey: per, N: len(sorted)}
}

// LocalRank estimates the number of local input keys that compare less
// than probe: (count of sample keys < probe) × PerKey, the §3.4 estimator.
func (r Representative[K]) LocalRank(probe K, cmp func(K, K) int) int64 {
	lo, hi := 0, len(r.Keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmp(r.Keys[mid], probe) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(float64(lo) * r.PerKey)
}

// RepresentativeSize returns the §3.4 per-processor sample size
// s = sqrt(2 p ln p)/ε that makes rank answers accurate to Nε/p w.h.p.
// (Theorem 3.4.1).
func RepresentativeSize(p int, eps float64) int {
	if p < 2 {
		p = 2
	}
	s := math.Sqrt(2*float64(p)*math.Log(float64(p))) / eps
	return int(math.Ceil(s))
}

// OneRoundRatio returns the sampling ratio s = 2 ln p / ε of Theorem
// 3.2.2: with per-key probability p·s/N, every splitter is finalized after
// one histogramming round w.h.p.
func OneRoundRatio(p int, eps float64) float64 {
	if p < 2 {
		p = 2
	}
	return 2 * math.Log(float64(p)) / eps
}

// ScanningRatio returns the sampling ratio s = 2/ε of Theorem 3.2.1, the
// smaller sample that suffices when splitters are chosen by the scanning
// algorithm rather than interval tracking.
func ScanningRatio(eps float64) float64 { return 2 / eps }

// RatioSchedule returns the per-round sampling ratios s_j = (2 ln p/ε)^(j/k)
// for j = 1..k (§3.3): a geometric ladder ending at the one-round ratio,
// so each round multiplies sampling density by the same factor.
func RatioSchedule(p int, eps float64, k int) []float64 {
	if k < 1 {
		k = 1
	}
	top := OneRoundRatio(p, eps)
	out := make([]float64, k)
	for j := 1; j <= k; j++ {
		out[j-1] = math.Pow(top, float64(j)/float64(k))
	}
	return out
}

// AutoRounds returns the round count k* = ln(ln p / ε) (rounded up, at
// least 1) that minimizes the total sample size k·p·(ln p/ε)^(1/k)
// (Lemma 3.3.2).
func AutoRounds(p int, eps float64) int {
	if p < 2 {
		p = 2
	}
	k := math.Log(math.Log(float64(p)) / eps)
	if k < 1 {
		return 1
	}
	return int(math.Ceil(k))
}

// ExpectedRoundsFixed returns the paper's §6.2 bound on the number of
// rounds needed when every round gathers an (f·p)-key sample:
// ceil( ln(2 ln p / ε) / ln(f/2) ).
func ExpectedRoundsFixed(p int, eps, f float64) (int, error) {
	if f <= 2 {
		return 0, fmt.Errorf("sampling: per-round factor f=%v must exceed 2", f)
	}
	if p < 2 {
		p = 2
	}
	r := math.Log(2*math.Log(float64(p))/eps) / math.Log(f/2)
	if r < 1 {
		return 1, nil
	}
	return int(math.Ceil(r)), nil
}
