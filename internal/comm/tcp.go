package comm

// tcp.go implements TCPTransport: the multi-process backend in which
// each rank is its own OS process and all communication crosses real
// sockets through the length-prefixed binary protocol of wire.go (spec:
// docs/WIRE.md).
//
// Topology. Ranks form a full mesh: one TCP connection per unordered
// rank pair, established during a coordinator-based bootstrap (rank 0
// listens at a well-known address, everyone registers, rank 0 broadcasts
// the address table, higher ranks dial lower ranks). Each connection has
// one writer goroutine draining an unbounded outbound queue — so Send
// never blocks, preserving the buffered-send model the algorithms assume
// — and one reader goroutine that decodes frames and feeds the local
// rank's tag-matched mailbox, so Recv/TryRecv/RecvAny semantics are
// identical to the in-memory backends and the streaming exchange's
// credit window works unchanged.
//
// Generations. Transport.Reset — the hook the engine (comm.Pool) uses
// between sorts — is a wire-level epoch bump: every frame carries the
// sender's generation, receivers drop frames from past generations
// (stale traffic of an aborted run) and buffer frames from future
// generations until their own Reset catches up (SPMD peers may race one
// run ahead). Abort latches propagate as generation-fenced control
// frames carrying enough structure to reconstruct context cancellation
// errors on every process.
//
// Teardown. Close sends a shutdown frame and half-closes each
// connection; an EOF after a shutdown frame is graceful, an EOF without
// one aborts the transport (peer crash). Close waits for the peer's own
// shutdown up to ShutdownTimeout, then force-closes, and is the hook
// behind the goroutine-leak guarantees the tests pin.

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTransportClosed is returned by operations on a TCPTransport after
// Close.
var ErrTransportClosed = errors.New("comm: transport closed")

// TCPOptions configures one process's endpoint of a TCP world. The zero
// value is not usable: Coordinator, Rank and Procs are required (the
// NewTCPLoopback helper fills them for in-process meshes).
type TCPOptions struct {
	// Coordinator is the host:port of the rank-0 rendezvous listener.
	// Rank 0 binds it; every other rank dials it to register and learn
	// the peer address table.
	Coordinator string
	// Rank is this process's rank in [0, Procs).
	Rank int
	// Procs is the total number of ranks in the world.
	Procs int
	// ListenAddr is the bind address for this process's data listener
	// (ranks > 0; rank 0's data listener is the coordinator listener).
	// Default "127.0.0.1:0". Use a routable interface for multi-machine
	// worlds.
	ListenAddr string
	// CoordinatorListener optionally supplies a pre-bound listener for
	// the coordinator address (rank 0 only): the caller can bind
	// host:0, read the ephemeral port off Addr, hand it to workers and
	// pass the listener here, eliminating the bind race of launchers.
	CoordinatorListener net.Listener
	// BootstrapTimeout bounds the whole rendezvous + mesh setup.
	// Default 30s.
	BootstrapTimeout time.Duration
	// ShutdownTimeout bounds how long Close waits for peers to finish
	// their own teardown before force-closing sockets. Default 5s.
	ShutdownTimeout time.Duration
}

// withDefaults fills unset option fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.ListenAddr == "" {
		o.ListenAddr = "127.0.0.1:0"
	}
	if o.BootstrapTimeout == 0 {
		o.BootstrapTimeout = 30 * time.Second
	}
	if o.ShutdownTimeout == 0 {
		o.ShutdownTimeout = 5 * time.Second
	}
	return o
}

// tcpConn is one established rank-pair connection.
type tcpConn struct {
	peer int
	c    net.Conn
	bw   *bufio.Writer

	mu       sync.Mutex
	cond     *sync.Cond
	outq     [][]byte // encoded frames awaiting the writer
	closing  bool     // local Close started: writer drains, then half-closes
	peerDone bool     // peer's shutdown frame arrived

	// pending buffers whole frames from future generations (peer raced
	// ahead to its next run); the owning transport re-delivers them
	// when Reset advances the local generation. Guarded by the
	// transport's genMu, not conn.mu.
	pending []pendingFrame
}

// pendingFrame is a future-generation frame awaiting Reset.
type pendingFrame struct {
	h    frameHeader
	msg  Message // valid for frameData
	ctrl []byte  // control payload (abort frames) for non-data kinds
}

// enqueue appends an encoded frame for the writer goroutine.
func (pc *tcpConn) enqueue(frame []byte) {
	pc.mu.Lock()
	pc.outq = append(pc.outq, frame)
	pc.cond.Signal()
	pc.mu.Unlock()
}

// TCPTransport is one process's endpoint of a multi-process world: the
// third Transport backend, in which every rank runs in its own OS
// process and messages cross real TCP sockets (docs/WIRE.md).
//
// A TCPTransport hosts exactly one local rank. Send accepts only the
// local rank as src and Recv/TryRecv/Barrier only the local rank as
// dst/rank — World and Pool detect this through the RankHoster
// interface and drive just the hosted rank, so the same SPMD code runs
// unchanged with p processes instead of p goroutines. For an in-process
// world over real sockets (tests, single-machine benchmarks), see
// NewTCPLoopback.
//
// Unlike SimTransport's modeled byte accounting, Counters here report
// measured wire traffic: every frame charges its actual encoded size,
// header included.
type TCPTransport struct {
	p    int
	me   int
	opts TCPOptions

	conns []*tcpConn // by peer rank; nil at me
	box   mailbox    // the local rank's tag-matched inbox

	counters struct {
		mu sync.Mutex
		c  Counters
	}

	gen    atomic.Uint32 // current generation (epoch)
	genMu  sync.Mutex    // serializes Reset vs reader delivery decisions
	abort  abortState
	bar    tcpBarrier
	closed atomic.Bool
	// lost latches the first permanent connection failure. Unlike the
	// abort latch — which Reset clears so an engine can reuse the mesh
	// after a cancellation — a lost peer cannot come back: Reset
	// re-latches this error so the next run fails fast instead of
	// wedging against a dead socket until the watchdog.
	lost atomic.Pointer[error]

	wg sync.WaitGroup // reader + writer goroutines
}

var (
	_ Transport  = (*TCPTransport)(nil)
	_ RankHoster = (*TCPTransport)(nil)
	_ io.Closer  = (*TCPTransport)(nil)
)

// tcpBarrier is the transport's native barrier, centralized at rank 0:
// each rank sends a barrier-enter control frame to rank 0, which counts
// p arrivals per sequence number and broadcasts a release frame. The
// sequence number travels in the frame's tag field.
type tcpBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	seq      uint32         // barriers this rank has entered (this generation)
	released uint32         // highest released sequence number
	enters   map[uint32]int // rank 0 only: arrivals per sequence
}

// DialTCP bootstraps this process's endpoint of a TCP world and blocks
// until the full connection mesh is up: the coordinator has seen all
// Procs registrations, this rank has dialed every lower rank and been
// dialed by every higher rank. The listener used during bootstrap is
// closed before DialTCP returns; the mesh is the only remaining wiring.
func DialTCP(opts TCPOptions) (*TCPTransport, error) {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		panicSize(opts.Procs)
	}
	if opts.Rank < 0 || opts.Rank >= opts.Procs {
		return nil, fmt.Errorf("comm: tcp rank %d outside [0, %d)", opts.Rank, opts.Procs)
	}
	if opts.Coordinator == "" && opts.CoordinatorListener == nil {
		return nil, fmt.Errorf("comm: tcp bootstrap needs a coordinator address")
	}
	t := &TCPTransport{p: opts.Procs, me: opts.Rank, opts: opts}
	t.box.cond = sync.NewCond(&t.box.mu)
	t.bar.cond = sync.NewCond(&t.bar.mu)
	t.bar.enters = make(map[uint32]int)
	t.conns = make([]*tcpConn, opts.Procs)
	t.gen.Store(1) // generation 0 is never used: frames always carry ≥ 1
	if err := t.bootstrap(); err != nil {
		t.forceClose()
		return nil, err
	}
	// Start the per-peer pumps only once the whole mesh exists.
	for _, pc := range t.conns {
		if pc == nil {
			continue
		}
		t.wg.Add(2)
		go t.readLoop(pc)
		go t.writeLoop(pc)
	}
	return t, nil
}

// LocalRanks reports the single rank this process hosts (RankHoster).
func (t *TCPTransport) LocalRanks() []int { return []int{t.me} }

// Size returns the total number of ranks in the world.
func (t *TCPTransport) Size() int { return t.p }

// Rank returns the local rank this endpoint hosts.
func (t *TCPTransport) Rank() int { return t.me }

// ---------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------

// bootMsg is the JSON control message of the bootstrap phase (wire
// protocol spec: docs/WIRE.md §Bootstrap). Every message is prefixed
// with a uint32 length.
type bootMsg struct {
	// Proto pins the wire-protocol version: "hsswire/<N>".
	Proto string `json:"proto"`
	// Type is "register", "table", "data", "ok" or "error".
	Type string `json:"type"`
	// Rank, Procs, Addr describe the registering worker.
	Rank  int    `json:"rank,omitempty"`
	Procs int    `json:"procs,omitempty"`
	Addr  string `json:"addr,omitempty"`
	// Src and Dst identify a data connection's rank pair.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Addrs is the full rank → address table ("table" messages).
	Addrs []string `json:"addrs,omitempty"`
	// Err carries a bootstrap failure ("error" messages).
	Err string `json:"err,omitempty"`
}

// protoID is the version string every bootstrap message must carry.
var protoID = fmt.Sprintf("hsswire/%d", wireProtoVersion)

// writeBootMsg sends one length-prefixed JSON bootstrap message.
func writeBootMsg(c net.Conn, m bootMsg) error {
	m.Proto = protoID
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(b)))
	if _, err := c.Write(lenb[:]); err != nil {
		return err
	}
	_, err = c.Write(b)
	return err
}

// readBootMsg reads one length-prefixed JSON bootstrap message and
// validates its protocol version.
func readBootMsg(c net.Conn) (bootMsg, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(c, lenb[:]); err != nil {
		return bootMsg{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > 1<<20 {
		return bootMsg{}, fmt.Errorf("comm: bootstrap message of %d bytes (corrupt or wrong peer)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c, b); err != nil {
		return bootMsg{}, err
	}
	var m bootMsg
	if err := json.Unmarshal(b, &m); err != nil {
		return bootMsg{}, fmt.Errorf("comm: bootstrap message: %w", err)
	}
	if m.Proto != protoID {
		return bootMsg{}, fmt.Errorf("comm: wire protocol mismatch: peer speaks %q, this binary %q", m.Proto, protoID)
	}
	if m.Type == "error" {
		return bootMsg{}, fmt.Errorf("comm: bootstrap rejected: %s", m.Err)
	}
	return m, nil
}

// bootstrap performs rendezvous and mesh construction for this rank.
func (t *TCPTransport) bootstrap() error {
	deadline := time.Now().Add(t.opts.BootstrapTimeout)

	// Bind the listener: the coordinator address for rank 0 (unless a
	// pre-bound listener was supplied), an ephemeral data port for the
	// rest.
	var ln net.Listener
	var err error
	if t.me == 0 {
		ln = t.opts.CoordinatorListener
		if ln == nil {
			ln, err = net.Listen("tcp", t.opts.Coordinator)
			if err != nil {
				return fmt.Errorf("comm: tcp coordinator listen %s: %w", t.opts.Coordinator, err)
			}
		}
	} else {
		ln, err = net.Listen("tcp", t.opts.ListenAddr)
		if err != nil {
			return fmt.Errorf("comm: tcp listen %s: %w", t.opts.ListenAddr, err)
		}
	}
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	table, pre, err := t.rendezvous(ln, deadline)
	if err != nil {
		return err
	}
	return t.buildMesh(ln, table, pre, deadline)
}

// rendezvous learns the full rank → address table. Rank 0 serves
// registrations on ln and broadcasts the table; other ranks register at
// the coordinator and receive it. Data connections that arrive at the
// listener while rendezvous is still in progress (fast peers) are
// returned in pre for buildMesh to adopt.
func (t *TCPTransport) rendezvous(ln net.Listener, deadline time.Time) (table []string, pre []*tcpConn, err error) {
	if t.me == 0 {
		table = make([]string, t.p)
		table[0] = ln.Addr().String()
		regConns := make([]net.Conn, t.p) // open registration conns by rank
		registered := 1                   // rank 0 is implicitly present
		defer func() {
			for _, c := range regConns {
				if c != nil {
					c.Close()
				}
			}
		}()
		for registered < t.p {
			c, aerr := ln.Accept()
			if aerr != nil {
				return nil, nil, fmt.Errorf("comm: tcp rendezvous accept (have %d/%d ranks): %w", registered, t.p, aerr)
			}
			c.SetDeadline(deadline)
			m, merr := readBootMsg(c)
			if merr != nil {
				c.Close()
				return nil, nil, merr
			}
			switch m.Type {
			case "register":
				if m.Procs != t.p {
					writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("world size mismatch: coordinator has %d ranks, worker expects %d", t.p, m.Procs)})
					c.Close()
					return nil, nil, fmt.Errorf("comm: tcp rendezvous: rank %d expects %d procs, world has %d", m.Rank, m.Procs, t.p)
				}
				if m.Rank < 1 || m.Rank >= t.p || regConns[m.Rank] != nil {
					writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("invalid or duplicate rank %d", m.Rank)})
					c.Close()
					return nil, nil, fmt.Errorf("comm: tcp rendezvous: invalid or duplicate rank %d", m.Rank)
				}
				regConns[m.Rank] = c
				table[m.Rank] = m.Addr
				registered++
			case "data":
				// A peer that already finished rendezvous is dialing our
				// data port; adopt the connection for buildMesh.
				pc, derr := t.acceptData(c, m)
				if derr != nil {
					return nil, nil, derr
				}
				pre = append(pre, pc)
			default:
				c.Close()
				return nil, nil, fmt.Errorf("comm: tcp rendezvous: unexpected %q message", m.Type)
			}
		}
		for r := 1; r < t.p; r++ {
			if err := writeBootMsg(regConns[r], bootMsg{Type: "table", Procs: t.p, Addrs: table}); err != nil {
				return nil, nil, fmt.Errorf("comm: tcp rendezvous: sending table to rank %d: %w", r, err)
			}
			regConns[r].Close()
			regConns[r] = nil
		}
		return table, pre, nil
	}

	// Ranks > 0: register, then wait for the table. The coordinator may
	// not be up yet (workers often launch before or alongside rank 0),
	// so failed dials retry with backoff until the bootstrap deadline.
	d := net.Dialer{Deadline: deadline}
	var c net.Conn
	for backoff := 10 * time.Millisecond; ; backoff = min(2*backoff, time.Second) {
		c, err = d.Dial("tcp", t.opts.Coordinator)
		if err == nil {
			break
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, nil, fmt.Errorf("comm: tcp rank %d dialing coordinator %s: %w", t.me, t.opts.Coordinator, err)
		}
		time.Sleep(backoff)
	}
	defer c.Close()
	c.SetDeadline(deadline)
	if err := writeBootMsg(c, bootMsg{Type: "register", Rank: t.me, Procs: t.p, Addr: ln.Addr().String()}); err != nil {
		return nil, nil, fmt.Errorf("comm: tcp rank %d registering: %w", t.me, err)
	}
	m, err := readBootMsg(c)
	if err != nil {
		return nil, nil, fmt.Errorf("comm: tcp rank %d awaiting address table: %w", t.me, err)
	}
	if m.Type != "table" || len(m.Addrs) != t.p {
		return nil, nil, fmt.Errorf("comm: tcp rank %d: malformed address table (%q, %d addrs)", t.me, m.Type, len(m.Addrs))
	}
	return m.Addrs, nil, nil
}

// acceptData validates an inbound data handshake and wires the conn.
func (t *TCPTransport) acceptData(c net.Conn, m bootMsg) (*tcpConn, error) {
	if m.Dst != t.me || m.Src <= t.me || m.Src >= t.p {
		writeBootMsg(c, bootMsg{Type: "error", Err: fmt.Sprintf("bad data pair (%d,%d) at rank %d", m.Src, m.Dst, t.me)})
		c.Close()
		return nil, fmt.Errorf("comm: tcp rank %d: bad data handshake pair (%d,%d)", t.me, m.Src, m.Dst)
	}
	if err := writeBootMsg(c, bootMsg{Type: "ok"}); err != nil {
		c.Close()
		return nil, fmt.Errorf("comm: tcp rank %d: acking data conn from %d: %w", t.me, m.Src, err)
	}
	return newTCPConn(m.Src, c), nil
}

// newTCPConn wraps an established socket.
func newTCPConn(peer int, c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &tcpConn{peer: peer, c: c, bw: bufio.NewWriterSize(c, 1<<16)}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// buildMesh completes the full mesh: dial every lower rank, accept every
// higher rank (pre holds early arrivals already accepted during
// rendezvous).
func (t *TCPTransport) buildMesh(ln net.Listener, table []string, pre []*tcpConn, deadline time.Time) error {
	for _, pc := range pre {
		t.conns[pc.peer] = pc
	}

	// Dial lower ranks concurrently.
	var wg sync.WaitGroup
	dialErr := make([]error, t.me)
	for j := 0; j < t.me; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			d := net.Dialer{Deadline: deadline}
			c, err := d.Dial("tcp", table[j])
			if err != nil {
				dialErr[j] = fmt.Errorf("comm: tcp rank %d dialing rank %d at %s: %w", t.me, j, table[j], err)
				return
			}
			c.SetDeadline(deadline)
			if err := writeBootMsg(c, bootMsg{Type: "data", Src: t.me, Dst: j}); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d data handshake to rank %d: %w", t.me, j, err)
				return
			}
			if _, err := readBootMsg(c); err != nil {
				c.Close()
				dialErr[j] = fmt.Errorf("comm: tcp rank %d data ack from rank %d: %w", t.me, j, err)
				return
			}
			c.SetDeadline(time.Time{}) // the mesh conn lives unbounded
			t.conns[j] = newTCPConn(j, c)
		}(j)
	}

	// Accept the remaining higher ranks.
	var acceptErr error
	for {
		missing := 0
		for r := t.me + 1; r < t.p; r++ {
			if t.conns[r] == nil {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		c, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("comm: tcp rank %d accepting mesh conns (%d missing): %w", t.me, missing, err)
			break
		}
		c.SetDeadline(deadline)
		m, err := readBootMsg(c)
		if err != nil {
			acceptErr = err
			c.Close()
			break
		}
		if m.Type != "data" {
			writeBootMsg(c, bootMsg{Type: "error", Err: "mesh is being built; rendezvous is over"})
			c.Close()
			acceptErr = fmt.Errorf("comm: tcp rank %d: unexpected %q during mesh build", t.me, m.Type)
			break
		}
		pc, err := t.acceptData(c, m)
		if err != nil {
			acceptErr = err
			break
		}
		if t.conns[pc.peer] != nil {
			pc.c.Close()
			acceptErr = fmt.Errorf("comm: tcp rank %d: duplicate mesh conn from rank %d", t.me, pc.peer)
			break
		}
		t.conns[pc.peer] = pc
	}
	wg.Wait()
	for _, err := range dialErr {
		if err != nil {
			return err
		}
	}
	if acceptErr != nil {
		return acceptErr
	}
	for r := t.me + 1; r < t.p; r++ {
		t.conns[r].c.SetDeadline(time.Time{})
	}
	return nil
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

// Send encodes the payload into a data frame and hands it to the
// destination's connection writer (or loops it back through the codec
// for a self-send). It never blocks on the network. src must be the
// locally hosted rank.
func (t *TCPTransport) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	if err := t.abort.get(); err != nil {
		return err
	}
	if t.closed.Load() {
		return ErrTransportClosed
	}
	if src != t.me {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot send as rank %d", t.me, src)
	}
	gen := t.gen.Load()
	frame := make([]byte, frameHeaderLen, frameHeaderLen+wirePayloadSize(payload))
	frame, err := appendWirePayload(frame, payload)
	if err != nil {
		return fmt.Errorf("comm: tcp send to rank %d tag %d: %w", dst, tag, err)
	}
	putFrameHeader(frame, frameHeader{
		kind: frameData,
		src:  uint32(src),
		dst:  uint32(dst),
		tag:  uint32(tag),
		gen:  gen,
		len:  uint64(len(frame) - frameHeaderLen),
	})
	t.counters.mu.Lock()
	t.counters.c.MsgsSent++
	t.counters.c.BytesSent += int64(len(frame))
	t.counters.mu.Unlock()
	if dst == t.me {
		// Self-send: park the encoded bytes like remote traffic —
		// uniform copy semantics and one decode path at consumption.
		raw := make(rawWire, len(frame)-frameHeaderLen)
		copy(raw, frame[frameHeaderLen:])
		t.deliver(Message{Src: src, Tag: tag, Payload: raw, Bytes: int64(len(frame))})
		return nil
	}
	t.conns[dst].enqueue(frame)
	return nil
}

// rawWire is an undecoded data payload parked in the mailbox. Frames
// decode at consumption time, not on the reader goroutine: a frame can
// arrive before the receiving rank reaches the protocol step that
// registers its payload type (readers run arbitrarily far ahead of the
// rank), whereas by the time a Recv matches the frame, the matching
// protocol function has executed its RegisterWire.
type rawWire []byte

// decodeParked decodes a parked payload in place; in-memory transports
// never produce rawWire, so this is tcp-only.
func decodeParked(m *Message) error {
	raw, ok := m.Payload.(rawWire)
	if !ok {
		return nil
	}
	p, err := decodeWirePayload(raw)
	if err != nil {
		return err
	}
	m.Payload = p
	return nil
}

// deliver appends a message to the local mailbox and wakes receivers.
func (t *TCPTransport) deliver(m Message) {
	t.box.mu.Lock()
	t.box.queue = append(t.box.queue, m)
	t.box.cond.Broadcast()
	t.box.mu.Unlock()
}

// Recv blocks until a message matching (src, tag) is in the local
// mailbox. dst must be the locally hosted rank.
func (t *TCPTransport) Recv(dst, src int, tag Tag) (Message, error) {
	if dst != t.me {
		return Message{}, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot receive as rank %d", t.me, dst)
	}
	b := &t.box
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				if err := decodeParked(&m); err != nil {
					return Message{}, fmt.Errorf("comm: tcp recv from rank %d tag %d: %w", m.Src, tag, err)
				}
				t.chargeRecv(m)
				return m, nil
			}
		}
		if err := t.abort.get(); err != nil {
			return Message{}, err
		}
		if t.closed.Load() {
			return Message{}, ErrTransportClosed
		}
		b.cond.Wait()
	}
}

// TryRecv returns a matching buffered message without blocking.
func (t *TCPTransport) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	if dst != t.me {
		return Message{}, false, fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot receive as rank %d", t.me, dst)
	}
	b := &t.box
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := t.abort.get(); err != nil {
		return Message{}, false, err
	}
	for i, m := range b.queue {
		if (src == AnySource || m.Src == src) && m.Tag == tag {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			if err := decodeParked(&m); err != nil {
				return Message{}, false, fmt.Errorf("comm: tcp recv from rank %d tag %d: %w", m.Src, tag, err)
			}
			t.chargeRecv(m)
			return m, true, nil
		}
	}
	return Message{}, false, nil
}

// chargeRecv accounts one consumed message. Callers hold box.mu.
func (t *TCPTransport) chargeRecv(m Message) {
	t.counters.mu.Lock()
	t.counters.c.MsgsRecv++
	t.counters.c.BytesRecv += m.Bytes
	t.counters.mu.Unlock()
}

// writeLoop drains one connection's outbound queue, flushing whenever
// the queue runs dry. On Close it writes the remaining frames and
// half-closes the socket so the peer sees a clean EOF after the
// shutdown frame.
func (t *TCPTransport) writeLoop(pc *tcpConn) {
	defer t.wg.Done()
	for {
		pc.mu.Lock()
		for len(pc.outq) == 0 && !pc.closing {
			pc.cond.Wait()
		}
		batch := pc.outq
		pc.outq = nil
		closing := pc.closing
		pc.mu.Unlock()
		for _, frame := range batch {
			if _, err := pc.bw.Write(frame); err != nil {
				t.writeFailed(pc, err)
				return
			}
		}
		if err := pc.bw.Flush(); err != nil {
			t.writeFailed(pc, err)
			return
		}
		if closing {
			pc.mu.Lock()
			done := len(pc.outq) == 0
			pc.mu.Unlock()
			if done {
				if tc, ok := pc.c.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
		}
	}
}

// writeFailed handles a broken outbound socket: during teardown it is
// expected; otherwise the peer is gone and the world must not hang.
func (t *TCPTransport) writeFailed(pc *tcpConn, err error) {
	if t.closed.Load() {
		return
	}
	t.peerLost(pc, err)
}

// peerLost records a permanent connection failure and aborts the world.
func (t *TCPTransport) peerLost(pc *tcpConn, err error) {
	lerr := fmt.Errorf("%w: rank %d lost connection to rank %d: %v", ErrAborted, t.me, pc.peer, err)
	t.lost.CompareAndSwap(nil, &lerr)
	t.Abort(lerr)
}

// readLoop decodes frames from one peer and dispatches them under the
// generation fence.
func (t *TCPTransport) readLoop(pc *tcpConn) {
	defer t.wg.Done()
	br := bufio.NewReaderSize(pc.c, 1<<16)
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.readEnded(pc, err)
			return
		}
		h := parseFrameHeader(hdr[:])
		if h.len > 1<<40 {
			t.readEnded(pc, fmt.Errorf("frame of %d bytes (corrupt stream)", h.len))
			return
		}
		payload := make([]byte, h.len)
		if _, err := io.ReadFull(br, payload); err != nil {
			t.readEnded(pc, err)
			return
		}
		if h.kind == frameShutdown {
			pc.mu.Lock()
			pc.peerDone = true
			pc.mu.Unlock()
			continue
		}
		if err := t.dispatchFrame(pc, h, payload); err != nil {
			t.readEnded(pc, err)
			return
		}
	}
}

// readEnded classifies the end of an inbound stream: EOF after the
// peer's shutdown frame (or during our own Close) is graceful teardown,
// anything else aborts the world.
func (t *TCPTransport) readEnded(pc *tcpConn, err error) {
	pc.mu.Lock()
	peerDone := pc.peerDone
	pc.mu.Unlock()
	if peerDone || t.closed.Load() {
		return
	}
	t.peerLost(pc, err)
}

// dispatchFrame routes one inbound frame under the generation fence:
// current-generation frames are delivered, past generations dropped
// (stale traffic of a finished or aborted run), future generations
// buffered until the local Reset catches up.
func (t *TCPTransport) dispatchFrame(pc *tcpConn, h frameHeader, payload []byte) error {
	if int(h.src) != pc.peer || int(h.dst) != t.me {
		return fmt.Errorf("frame claims pair (%d,%d) on the (%d,%d) connection", h.src, h.dst, pc.peer, t.me)
	}
	var m Message
	if h.kind == frameData {
		m = Message{Src: int(h.src), Tag: Tag(h.tag), Payload: rawWire(payload), Bytes: int64(frameHeaderLen) + int64(h.len)}
	}
	// The fence decision and the frame's effect happen under one lock:
	// otherwise a Reset could slip between them and a stale frame would
	// land in the new generation's clean mailbox.
	t.genMu.Lock()
	defer t.genMu.Unlock()
	cur := t.gen.Load()
	switch {
	case h.gen == cur:
		t.applyFrame(h, m, payload)
	case h.gen > cur:
		pf := pendingFrame{h: h, msg: m}
		if h.kind != frameData {
			pf.ctrl = payload // an abort's JSON body must survive the wait
		}
		pc.pending = append(pc.pending, pf)
	default:
		// Stale generation: traffic of a finished or aborted run; drop.
	}
	return nil
}

// applyFrame performs a current-generation frame's effect.
func (t *TCPTransport) applyFrame(h frameHeader, m Message, payload []byte) {
	switch h.kind {
	case frameData:
		t.deliver(m)
	case frameAbort:
		var wa wireAbort
		if err := json.Unmarshal(payload, &wa); err != nil {
			wa.Msg = fmt.Sprintf("undecodable abort frame: %v", err)
		}
		t.abort.set(remoteAbortError(int(h.src), wa))
		t.wakeAll()
	case frameBarrierEnter:
		t.barrierEnter(h.tag)
	case frameBarrierRelease:
		t.barrierRelease(h.tag)
	}
}

// remoteAbortError reconstructs an abort error received off the wire,
// preserving the errors.Is identities that matter to callers: ErrAborted
// always, and the context sentinels when the originating process aborted
// for cancellation — that is what lets every worker process of a
// cancelled sort return its own ctx.Err().
func remoteAbortError(src int, wa wireAbort) error {
	switch {
	case wa.Canceled:
		return fmt.Errorf("%w: %w: remote abort from rank %d: %s", ErrAborted, context.Canceled, src, wa.Msg)
	case wa.Deadline:
		return fmt.Errorf("%w: %w: remote abort from rank %d: %s", ErrAborted, context.DeadlineExceeded, src, wa.Msg)
	default:
		return fmt.Errorf("%w: remote abort from rank %d: %s", ErrAborted, src, wa.Msg)
	}
}

// ---------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------

// Barrier blocks the local rank until every rank of the world has
// entered the same barrier episode.
func (t *TCPTransport) Barrier(rank int) error {
	if rank != t.me {
		return fmt.Errorf("comm: tcp endpoint hosts rank %d, cannot barrier as rank %d", t.me, rank)
	}
	t.bar.mu.Lock()
	t.bar.seq++
	seq := t.bar.seq
	t.bar.mu.Unlock()

	if err := t.sendCtrl(0, frameBarrierEnter, seq); err != nil {
		return err
	}

	t.bar.mu.Lock()
	defer t.bar.mu.Unlock()
	for t.bar.released < seq {
		if err := t.abort.get(); err != nil {
			return err
		}
		if t.closed.Load() {
			return ErrTransportClosed
		}
		t.bar.cond.Wait()
	}
	return nil
}

// sendCtrl emits a control frame (barrier, abort uses its own path) to
// dst, looping back locally when dst is the hosted rank. The barrier
// sequence number travels in the tag field.
func (t *TCPTransport) sendCtrl(dst int, kind byte, seq uint32) error {
	if dst == t.me {
		switch kind {
		case frameBarrierEnter:
			t.barrierEnter(seq)
		case frameBarrierRelease:
			t.barrierRelease(seq)
		}
		return nil
	}
	if err := t.abort.get(); err != nil {
		return err
	}
	frame := make([]byte, frameHeaderLen)
	putFrameHeader(frame, frameHeader{
		kind: kind,
		src:  uint32(t.me),
		dst:  uint32(dst),
		tag:  seq,
		gen:  t.gen.Load(),
	})
	t.conns[dst].enqueue(frame)
	return nil
}

// barrierEnter records one rank's arrival at barrier seq (rank 0 only)
// and releases the episode when all p ranks have arrived.
func (t *TCPTransport) barrierEnter(seq uint32) {
	if t.me != 0 {
		return // protocol error; harmless to ignore
	}
	t.bar.mu.Lock()
	t.bar.enters[seq]++
	complete := t.bar.enters[seq] == t.p
	if complete {
		delete(t.bar.enters, seq)
	}
	t.bar.mu.Unlock()
	if !complete {
		return
	}
	for r := 1; r < t.p; r++ {
		t.sendCtrl(r, frameBarrierRelease, seq)
	}
	t.barrierRelease(seq)
}

// barrierRelease unblocks local waiters of barrier episodes ≤ seq.
func (t *TCPTransport) barrierRelease(seq uint32) {
	t.bar.mu.Lock()
	if seq > t.bar.released {
		t.bar.released = seq
	}
	t.bar.cond.Broadcast()
	t.bar.mu.Unlock()
}

// ---------------------------------------------------------------------
// Abort / Reset / lifecycle
// ---------------------------------------------------------------------

// Abort latches err locally, unblocks every local waiter and broadcasts
// a generation-fenced abort frame to every peer, so all processes of
// the world observe the failure instead of hanging. Cancellation
// structure (context.Canceled / DeadlineExceeded) survives the wire.
func (t *TCPTransport) Abort(err error) {
	t.abort.set(err)
	latched := t.abort.get()
	wa := wireAbort{
		Msg:      latched.Error(),
		Canceled: errors.Is(latched, context.Canceled),
		Deadline: errors.Is(latched, context.DeadlineExceeded),
	}
	payload, jerr := json.Marshal(wa)
	if jerr != nil {
		payload = []byte("{}")
	}
	gen := t.gen.Load()
	for _, pc := range t.conns {
		if pc == nil {
			continue
		}
		frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
		frame = append(frame, payload...)
		putFrameHeader(frame, frameHeader{
			kind: frameAbort,
			src:  uint32(t.me),
			dst:  uint32(pc.peer),
			gen:  gen,
			len:  uint64(len(payload)),
		})
		pc.enqueue(frame)
	}
	t.wakeAll()
}

// wakeAll unblocks local waiters so they observe the abort latch.
func (t *TCPTransport) wakeAll() {
	t.box.mu.Lock()
	t.box.cond.Broadcast()
	t.box.mu.Unlock()
	t.bar.mu.Lock()
	t.bar.cond.Broadcast()
	t.bar.mu.Unlock()
}

// Err returns the abort error, or nil while the transport is live.
func (t *TCPTransport) Err() error { return t.abort.get() }

// Reset advances the transport to the next generation: the epoch bump
// that lets a long-lived engine reuse one mesh across sorts. Queued
// messages of the old generation are discarded, the abort latch clears
// (unless a peer connection was permanently lost — that poison stays),
// the barrier rearms, counters zero — and frames a faster peer already
// sent for the new generation are delivered out of the pending buffers.
// Only call while the hosted rank is not running (Pool.Run does this
// between runs); peers Reset their own endpoints in the same lockstep.
func (t *TCPTransport) Reset() {
	t.genMu.Lock()
	next := t.gen.Load() + 1
	t.box.mu.Lock()
	t.box.queue = nil
	t.box.mu.Unlock()
	t.bar.mu.Lock()
	t.bar.seq = 0
	t.bar.released = 0
	t.bar.enters = make(map[uint32]int)
	t.bar.mu.Unlock()
	t.abort.reset()
	if p := t.lost.Load(); p != nil {
		// A dead peer never comes back; keep the transport poisoned so
		// the next run fails immediately instead of hanging on sends to
		// a gone socket until the watchdog fires.
		t.abort.set(*p)
	}
	t.counters.mu.Lock()
	t.counters.c = Counters{}
	t.counters.mu.Unlock()
	t.gen.Store(next)
	// Deliver frames peers raced ahead with; drop ones that somehow
	// still precede the new generation.
	for _, pc := range t.conns {
		if pc == nil {
			continue
		}
		var keep []pendingFrame
		for _, pf := range pc.pending {
			switch {
			case pf.h.gen == next:
				t.applyFrame(pf.h, pf.msg, pf.ctrl)
			case pf.h.gen > next:
				keep = append(keep, pf)
			}
		}
		pc.pending = keep
	}
	t.genMu.Unlock()
}

// Counters returns the hosted rank's measured wire traffic; r must be
// the local rank (remote ranks' counters live in their processes and
// read zero here).
func (t *TCPTransport) Counters(r int) Counters {
	if r != t.me {
		return Counters{}
	}
	t.counters.mu.Lock()
	defer t.counters.mu.Unlock()
	return t.counters.c
}

// TotalCounters returns the local rank's counters: a single process
// cannot see its peers' counters without communication. Whole-world
// totals over TCP are the sum of each process's TotalCounters (the
// loopback mesh does this summation for in-process worlds).
func (t *TCPTransport) TotalCounters() Counters { return t.Counters(t.me) }

// ResetCounters zeroes the local rank's counters.
func (t *TCPTransport) ResetCounters() {
	t.counters.mu.Lock()
	t.counters.c = Counters{}
	t.counters.mu.Unlock()
}

// Close tears the endpoint down gracefully: a shutdown frame and a
// half-close on every connection, then waiting (up to ShutdownTimeout)
// for peers to finish their own teardown before force-closing sockets.
// After Close every operation fails with ErrTransportClosed. Close is
// idempotent and leaves no goroutines behind.
func (t *TCPTransport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	gen := t.gen.Load()
	for _, pc := range t.conns {
		if pc == nil {
			continue
		}
		frame := make([]byte, frameHeaderLen)
		putFrameHeader(frame, frameHeader{kind: frameShutdown, src: uint32(t.me), dst: uint32(pc.peer), gen: gen})
		pc.mu.Lock()
		pc.outq = append(pc.outq, frame)
		pc.closing = true
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
	t.wakeAll()

	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(t.opts.ShutdownTimeout):
		t.forceClose()
		<-done
	}
	t.forceClose()
	return nil
}

// forceClose closes every socket outright (bootstrap failure and
// shutdown-timeout path).
func (t *TCPTransport) forceClose() {
	for _, pc := range t.conns {
		if pc == nil {
			continue
		}
		pc.c.Close()
		pc.mu.Lock()
		pc.closing = true
		pc.cond.Broadcast()
		pc.mu.Unlock()
	}
}

// ---------------------------------------------------------------------
// Loopback mesh
// ---------------------------------------------------------------------

// tcpMesh is an in-process world over real sockets: p single-rank
// TCPTransport endpoints on loopback, fronted as one Transport so the
// standard World/Pool drive and the conformance suite run every byte
// through the full wire path (codec, framing, generation fence) without
// multiple processes.
type tcpMesh struct {
	nodes []*TCPTransport
}

var (
	_ Transport = (*tcpMesh)(nil)
	_ io.Closer = (*tcpMesh)(nil)
)

// NewTCPLoopback builds a p-rank world of real localhost TCP
// connections inside one process — the `tcp` backend's convenience form
// for tests and single-machine runs (Config.Transport: tcp without a
// coordinator). Every message is encoded, framed, sent through the
// kernel and decoded exactly as in the multi-process deployment. The
// returned transport must be Closed to release its sockets and
// goroutines.
func NewTCPLoopback(p int) (Transport, error) {
	if p < 1 {
		panicSize(p)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp loopback listen: %w", err)
	}
	coord := ln.Addr().String()
	nodes := make([]*TCPTransport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := TCPOptions{Coordinator: coord, Rank: r, Procs: p}
			if r == 0 {
				opts.CoordinatorListener = ln
			}
			nodes[r], errs[r] = DialTCP(opts)
		}(r)
	}
	wg.Wait()
	m := &tcpMesh{nodes: nodes}
	if err := errors.Join(errs...); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// Size returns the number of ranks.
func (m *tcpMesh) Size() int { return len(m.nodes) }

// Send routes through the sending rank's endpoint.
func (m *tcpMesh) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	return m.nodes[src].Send(src, dst, tag, payload, bytes)
}

// Recv routes through the receiving rank's endpoint.
func (m *tcpMesh) Recv(dst, src int, tag Tag) (Message, error) {
	return m.nodes[dst].Recv(dst, src, tag)
}

// TryRecv routes through the receiving rank's endpoint.
func (m *tcpMesh) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	return m.nodes[dst].TryRecv(dst, src, tag)
}

// Barrier routes through the entering rank's endpoint.
func (m *tcpMesh) Barrier(rank int) error { return m.nodes[rank].Barrier(rank) }

// Abort latches every endpoint immediately (the wire broadcast alone
// would leave a window in which a not-yet-poisoned endpoint accepts
// operations).
func (m *tcpMesh) Abort(err error) {
	for _, n := range m.nodes {
		n.Abort(err)
	}
}

// Err returns the first endpoint's latched abort error, if any.
func (m *tcpMesh) Err() error {
	for _, n := range m.nodes {
		if err := n.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Reset advances every endpoint to the next generation. The mesh is
// driven by one Pool/World, so no rank is running during Reset and the
// per-endpoint epochs stay in lockstep.
func (m *tcpMesh) Reset() {
	for _, n := range m.nodes {
		n.Reset()
	}
}

// Counters returns rank r's measured wire traffic.
func (m *tcpMesh) Counters(r int) Counters { return m.nodes[r].Counters(r) }

// TotalCounters sums measured traffic across all ranks.
func (m *tcpMesh) TotalCounters() Counters {
	var total Counters
	for r, n := range m.nodes {
		total.Add(n.Counters(r))
	}
	return total
}

// ResetCounters zeroes all ranks' counters.
func (m *tcpMesh) ResetCounters() {
	for _, n := range m.nodes {
		n.ResetCounters()
	}
}

// Close tears down every endpoint concurrently.
func (m *tcpMesh) Close() error {
	var wg sync.WaitGroup
	for _, n := range m.nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(n *TCPTransport) {
			defer wg.Done()
			n.Close()
		}(n)
	}
	wg.Wait()
	return nil
}
