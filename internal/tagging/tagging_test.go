package tagging

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func TestCmpTotalOrder(t *testing.T) {
	c := Cmp(icmp)
	a := Tagged[int64]{Key: 5, PE: 0, Idx: 0}
	b := Tagged[int64]{Key: 5, PE: 0, Idx: 1}
	d := Tagged[int64]{Key: 5, PE: 1, Idx: 0}
	e := Tagged[int64]{Key: 6, PE: 0, Idx: 0}
	if c(a, b) >= 0 || c(b, d) >= 0 || c(d, e) >= 0 {
		t.Error("order (key, PE, Idx) violated")
	}
	if c(a, a) != 0 {
		t.Error("reflexivity violated")
	}
	if c(e, a) <= 0 {
		t.Error("antisymmetry violated")
	}
}

func TestCmpProperty(t *testing.T) {
	c := Cmp(icmp)
	f := func(k1, k2 int64, pe1, pe2 int16, i1, i2 int16) bool {
		a := Tagged[int64]{Key: k1, PE: int32(pe1), Idx: int32(i1)}
		b := Tagged[int64]{Key: k2, PE: int32(pe2), Idx: int32(i2)}
		// Antisymmetry and distinctness: equal only when identical.
		if c(a, b) == 0 {
			return a == b
		}
		return c(a, b) == -c(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapUnwrapRoundTrip(t *testing.T) {
	keys := []int64{5, 5, 3, 5}
	tagged := Wrap(keys, 7)
	for i, tg := range tagged {
		if tg.Key != keys[i] || tg.PE != 7 || tg.Idx != int32(i) {
			t.Fatalf("tag %d = %+v", i, tg)
		}
	}
	if !slices.Equal(Unwrap(tagged), keys) {
		t.Error("unwrap mismatch")
	}
}

// TestDuplicatesWithTaggingBalances is the §4.3 payoff: an all-duplicates
// input that defeats plain HSS load balance sorts with (1+ε) balance once
// tagged.
func TestDuplicatesWithTaggingBalances(t *testing.T) {
	const p, perRank = 4, 1000
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, perRank)
		for i := range shards[r] {
			shards[r][i] = int64(i % 2) // two distinct values, massive duplication
		}
	}
	outs := make([][]int64, p)
	var imb float64
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		tagged := Wrap(shards[c.Rank()], c.Rank())
		out, st, err := core.Sort(c, tagged, core.Options[Tagged[int64]]{
			Cmp: Cmp(icmp), Epsilon: 0.1, Seed: 3,
		})
		if err != nil {
			return err
		}
		outs[c.Rank()] = Unwrap(out)
		if c.Rank() == 0 {
			imb = st.Imbalance
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got, want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("not the sorted permutation")
	}
	if imb > 1.1+1e-9 {
		t.Errorf("tagged duplicate sort imbalance %.4f, want <= 1+ε", imb)
	}
}

func TestTaggedSortPreservesPerKeyCounts(t *testing.T) {
	f := func(seed uint32) bool {
		const p = 3
		shards := make([][]int64, p)
		counts := map[int64]int{}
		for r := range shards {
			n := int(seed%200) + 10
			shards[r] = make([]int64, n)
			for i := range shards[r] {
				v := int64((int(seed) + i*r) % 5)
				shards[r][i] = v
				counts[v]++
			}
		}
		got := map[int64]int{}
		w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
		var outs [p][]int64
		err := w.Run(func(c *comm.Comm) error {
			out, _, err := core.Sort(c, Wrap(shards[c.Rank()], c.Rank()), core.Options[Tagged[int64]]{
				Cmp: Cmp(icmp), Epsilon: 0.2, Seed: uint64(seed) + 1,
			})
			outs[c.Rank()] = Unwrap(out)
			return err
		})
		if err != nil {
			return false
		}
		for _, o := range outs {
			for _, k := range o {
				got[k]++
			}
		}
		if len(got) != len(counts) {
			return false
		}
		for k, n := range counts {
			if got[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
