// Package keycoder provides order-preserving encodings between primitive
// key types and uint64 code points.
//
// Classic histogram sort (internal/histsort) refines candidate splitters by
// bisecting the key space numerically, and radix partitioning
// (internal/radix) buckets keys by their most significant bits. Both need a
// total order on a fixed-width integer image of the key type. A Coder maps
// keys to uint64 codes such that
//
//	cmp(a, b) < 0  ⇔  Encode(a) < Encode(b)
//
// and Decode(Encode(k)) == k for every representable key (for Float64, NaN
// is excluded; see its documentation).
package keycoder
