// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Shapes — who wins, by what factor, how quantities scale with p — are
// the comparable output; absolute times are host-dependent.
//
// Run: go test -bench=. -benchmem
package hssort

import (
	"cmp"
	"context"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"

	"hssort/internal/bspmodel"
	"hssort/internal/changa"
	"hssort/internal/codes"
	"hssort/internal/dist"
	"hssort/internal/exchange"
	"hssort/internal/keycoder"
	"hssort/internal/merge"
	"hssort/internal/par"
	"hssort/internal/sampling"
)

// BenchmarkTable51Formulas evaluates the Table 5.1 analytic model. The
// custom metrics are the paper's concrete sample sizes in MB at p = 1e5,
// eps = 5%.
func BenchmarkTable51Formulas(b *testing.B) {
	b.ReportAllocs()
	var rows []bspmodel.Row
	for i := 0; i < b.N; i++ {
		rows = bspmodel.Table51(100000, 1e6, 0.05, 8)
	}
	b.ReportMetric(rows[0].SampleBytes/1e9, "regular_GB")
	b.ReportMetric(rows[1].SampleBytes/1e9, "random_GB")
	b.ReportMetric(rows[2].SampleBytes/1e6, "hss1_MB")
	b.ReportMetric(rows[3].SampleBytes/1e6, "hss2_MB")
	b.ReportMetric(rows[len(rows)-1].SampleBytes/1e6, "hssloglog_MB")
}

// BenchmarkFig41SampleSize runs the splitter-determination protocol at
// increasing bucket counts and reports the measured total sample — the
// Fig 4.1 curves (one sub-benchmark per curve and scale).
func BenchmarkFig41SampleSize(b *testing.B) {
	b.ReportAllocs()
	variants := []struct {
		name   string
		alg    Algorithm
		rounds int
	}{
		{"hss-1round", HSSTheoretical, 1},
		{"hss-2rounds", HSSTheoretical, 2},
		{"hss-constant", HSS, 0},
	}
	for _, v := range variants {
		for _, p := range []int{1024, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/p=%d", v.name, p), func(b *testing.B) {
				b.ReportAllocs()
				n := int64(p) * 512
				var res SimResult
				var err error
				for i := 0; i < b.N; i++ {
					res, err = SimulateSplitters(n, p, 0.05, v.alg, v.rounds, uint64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.TotalSample), "sample_keys")
				b.ReportMetric(float64(res.Rounds), "rounds")
				b.ReportMetric(res.Imbalance, "imbalance")
			})
		}
	}
}

// BenchmarkFig61WeakScaling runs the full distributed sort with a fixed
// per-rank load and reports the Fig 6.1 phase breakdown (fractions of
// total critical-path time).
func BenchmarkFig61WeakScaling(b *testing.B) {
	b.ReportAllocs()
	const perRank = 50000
	for _, p := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(Config{Procs: p, Epsilon: 0.02, Seed: 7}, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			total := float64(stats.Total())
			b.ReportMetric(100*float64(stats.LocalSort)/total, "localsort_%")
			b.ReportMetric(100*float64(stats.Splitter)/total, "histogram_%")
			b.ReportMetric(100*float64(stats.Exchange+stats.Merge)/total, "exchange_%")
			b.ReportMetric(stats.Imbalance, "imbalance")
		})
	}
}

// BenchmarkTable61Rounds executes the splitter protocol at the paper's
// true processor counts (4K-32K) with 5p-key oversampling at eps = 0.02
// and reports the observed rounds against the paper's (4 observed,
// bound 8).
func BenchmarkTable61Rounds(b *testing.B) {
	b.ReportAllocs()
	const eps = 0.02
	for _, p := range []int{4096, 8192, 16384, 32768} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			var res SimResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = SimulateSplitters(int64(p)*1000, p, eps, HSS, 0, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
			}
			bound, _ := sampling.ExpectedRoundsFixed(p, eps, 5)
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(bound), "bound")
			b.ReportMetric(res.Imbalance, "imbalance")
		})
	}
}

// BenchmarkFig62ChaNGa sorts the Dwarf/Lambb Morton-key workloads with
// HSS and classic histogram sort over virtual-processor buckets; the
// reported rounds and splitter-phase share reproduce Fig 6.2's HSS-vs-Old
// comparison.
func BenchmarkFig62ChaNGa(b *testing.B) {
	b.ReportAllocs()
	const procs = 8
	const particles = 100000
	for _, ds := range changa.Datasets {
		base := make([][]uint64, procs)
		for r := 0; r < procs; r++ {
			base[r] = changa.ShardKeys(ds, particles, r, procs, 77)
		}
		for _, alg := range []Algorithm{HSS, HistogramSort} {
			b.Run(fmt.Sprintf("%s/%s", ds.Name, alg), func(b *testing.B) {
				b.ReportAllocs()
				var stats Stats
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					in := make([][]uint64, procs)
					for r := range base {
						in[r] = slices.Clone(base[r])
					}
					b.StartTimer()
					var err error
					_, stats, err = Sort(Config{
						Procs: procs, Algorithm: alg, Buckets: 4 * procs,
						RoundRobinBuckets: true, Epsilon: 0.05, Seed: 5,
					}, in)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(stats.Rounds), "rounds")
				b.ReportMetric(float64(stats.TotalSample), "probe_keys")
				b.ReportMetric(stats.Imbalance, "imbalance")
			})
		}
	}
}

// BenchmarkApproxOracle measures §3.4 rank queries: build cost is
// excluded; each iteration answers a 64-probe batch.
func BenchmarkApproxOracle(b *testing.B) {
	b.ReportAllocs()
	const procs = 16
	const perRank = 50000
	shards := dist.Spec{Kind: dist.Gaussian}.Shards(perRank, procs, 3)
	probes := make([]int64, 64)
	for i := range probes {
		probes[i] = int64(i) << 54
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApproxRanks(shards, probes, 0.05, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSampling compares the fixed-oversampling production
// schedule (§6.1.2) against the theoretical ratio schedule (§3.3) at the
// same ε: rounds vs sample-size trade-off.
func BenchmarkAblationSampling(b *testing.B) {
	b.ReportAllocs()
	const p = 4096
	n := int64(p) * 1000
	for _, v := range []struct {
		name   string
		alg    Algorithm
		rounds int
	}{
		{"fixed-f5", HSS, 0},
		{"theoretical-k2", HSSTheoretical, 2},
		{"theoretical-k5", HSSTheoretical, 5},
		{"scanning-1round", HSSOneRound, 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var res SimResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = SimulateSplitters(n, p, 0.05, v.alg, v.rounds, uint64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Rounds), "rounds")
			b.ReportMetric(float64(res.TotalSample), "sample_keys")
		})
	}
}

// BenchmarkAblationApproxHistogram compares exact local histogramming
// against the §3.4 representative-sample shortcut inside the full sort.
func BenchmarkAblationApproxHistogram(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 16, 50000
	for _, approx := range []bool{false, true} {
		name := "exact"
		if approx {
			name = "approx"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(Config{Procs: p, Epsilon: 0.05, Approx: approx, Seed: 3}, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Imbalance, "imbalance")
			b.ReportMetric(float64(stats.Splitter.Microseconds()), "splitter_us")
		})
	}
}

// BenchmarkAblationNodeLevel compares the flat sort against the §6.1
// two-level node sort: total message count is the §6.1 claim.
func BenchmarkAblationNodeLevel(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 32, 20000
	for _, v := range []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{Procs: p, Epsilon: 0.05, Seed: 3}},
		{"node-c4", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 4, Epsilon: 0.05, Seed: 3}},
		{"node-c8", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 8, Epsilon: 0.05, Seed: 3}},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(v.cfg, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.TotalMsgs), "messages")
			b.ReportMetric(stats.Imbalance, "imbalance")
		})
	}
}

// BenchmarkAblationDuplicates measures the §4.3 tagging cost and payoff
// on a duplicate-heavy workload.
func BenchmarkAblationDuplicates(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 16, 20000
	for _, tagged := range []bool{false, true} {
		name := "untagged"
		if tagged {
			name = "tagged"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.DuplicateHeavy, Distinct: 8}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(Config{Procs: p, Epsilon: 0.05, TagDuplicates: tagged, Seed: 3}, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Imbalance, "imbalance")
		})
	}
}

// BenchmarkBaselinesEndToEnd races every algorithm on the same uniform
// workload — the headline comparison at equal ε.
func BenchmarkBaselinesEndToEnd(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 16, 30000
	for _, alg := range []Algorithm{HSS, HSSOneRound, SampleSortRegular, SampleSortRandom, HistogramSort, Radix, Bitonic} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, uint64(i)+1)
				b.StartTimer()
				var err error
				_, stats, err = Sort(Config{Procs: p, Algorithm: alg, Epsilon: 0.05, Seed: 3}, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(stats.Imbalance, "imbalance")
			b.ReportMetric(float64(stats.TotalSample), "probe_keys")
		})
	}
}

// BenchmarkStreamExchange races the materializing data plane against the
// streaming chunked exchange inside the full HSS sort, on a data-bound
// shape (parity expected: merge work dominates either way) and the
// over-partitioned communication-bound shape where streaming merges p
// per-sender streams instead of sorting and merging B·p bucket runs.
// The reported overlap_us and inflight_KiB come from the new Stats
// fields; in-flight stays bounded by the flow-control window regardless
// of shape.
func BenchmarkStreamExchange(b *testing.B) {
	b.ReportAllocs()
	shapes := []struct {
		name string
		cfg  Config
		p, n int
	}{
		{"data-bound/p=8/n=100000", Config{Procs: 8, Epsilon: 0.1, Seed: 3}, 8, 100000},
		{"comm-bound/p=64/B=256/n=2000", Config{Procs: 64, Buckets: 256, Epsilon: 0.1, Seed: 3}, 64, 2000},
	}
	for _, shape := range shapes {
		for _, streaming := range []bool{false, true} {
			name := shape.name + "/materializing"
			if streaming {
				name = shape.name + "/streaming"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var stats Stats
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					shards := dist.Spec{Kind: dist.Uniform}.Shards(shape.n, shape.p, uint64(i)+1)
					b.StartTimer()
					cfg := shape.cfg
					cfg.StreamExchange = streaming
					if streaming {
						// A few chunks per pair, so chunk interleaving
						// (and with it exchange/merge overlap) happens.
						cfg.ChunkKeys = 4096
					}
					var err error
					_, stats, err = Sort(cfg, shards)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(shape.p) * int64(shape.n) * 8)
				if streaming {
					b.ReportMetric(float64(stats.ExchangeOverlap.Microseconds()), "overlap_us")
					b.ReportMetric(float64(stats.PeakInFlightBytes)/1024, "inflight_KiB")
				}
			})
		}
	}
}

// BenchmarkCodePath is the compute-plane headline: the full sort on the
// comparator oracle (CodePathOff) versus the code-space fast path
// (CodePathOn), on local-sort-dominated shapes (big shards, few ranks)
// for each key type with a built-in coder, plus the payload-carrying KV
// record plane. Throughput (SetBytes) counts key payload only.
func BenchmarkCodePath(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 8, 200000
	paths := []struct {
		name string
		cp   CodePath
	}{
		{"comparator", CodePathOff},
		{"code", CodePathOn},
	}

	shardsU := make([][]uint64, p)
	shardsI := make([][]int64, p)
	shardsF := make([][]float64, p)
	shardsKV := make([][]KV[int64, int32], p)
	for r := 0; r < p; r++ {
		rng := rand.New(rand.NewPCG(uint64(r)+1, 99))
		shardsU[r] = make([]uint64, perRank)
		shardsI[r] = make([]int64, perRank)
		shardsF[r] = make([]float64, perRank)
		shardsKV[r] = make([]KV[int64, int32], perRank/2)
		for i := 0; i < perRank; i++ {
			shardsU[r][i] = rng.Uint64()
			shardsI[r][i] = rng.Int64() - (1 << 62)
			shardsF[r][i] = rng.NormFloat64() * 1e9
		}
		for i := range shardsKV[r] {
			shardsKV[r][i] = KV[int64, int32]{Key: rng.Int64(), Val: int32(i)}
		}
	}

	// The per-iteration shard clone runs with the timer stopped, so the
	// published numbers measure only the sort.
	runCase := func(b *testing.B, name string, keyBytes int64, n int, sort func(b *testing.B, cp CodePath) error) {
		for _, path := range paths {
			b.Run(name+"/"+path.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sort(b, path.cp); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(p) * int64(n) * keyBytes)
			})
		}
	}

	cfg := Config{Procs: p, Epsilon: 0.1, Seed: 3}
	runCase(b, "uint64", 8, perRank, func(b *testing.B, cp CodePath) error {
		b.StopTimer()
		in := cloneAny(shardsU)
		b.StartTimer()
		_, _, err := Sort(withCodePath(cfg, cp), in)
		return err
	})
	runCase(b, "int64", 8, perRank, func(b *testing.B, cp CodePath) error {
		b.StopTimer()
		in := cloneAny(shardsI)
		b.StartTimer()
		_, _, err := Sort(withCodePath(cfg, cp), in)
		return err
	})
	runCase(b, "float64", 8, perRank, func(b *testing.B, cp CodePath) error {
		b.StopTimer()
		in := cloneAny(shardsF)
		b.StartTimer()
		_, _, err := Sort(withCodePath(cfg, cp), in)
		return err
	})
	runCase(b, "kv-int64-int32", 8, perRank/2, func(b *testing.B, cp CodePath) error {
		b.StopTimer()
		in := cloneAny(shardsKV)
		b.StartTimer()
		_, _, err := SortKV(withCodePath(cfg, cp), in)
		return err
	})
	// The streaming exchange on the code plane: codes travel in the
	// chunks and the incremental merge compares raw uint64s.
	streamCfg := Config{Procs: p, Epsilon: 0.1, Seed: 3, StreamExchange: true}
	runCase(b, "uint64-streaming", 8, perRank, func(b *testing.B, cp CodePath) error {
		b.StopTimer()
		in := cloneAny(shardsU)
		b.StartTimer()
		_, _, err := Sort(withCodePath(streamCfg, cp), in)
		return err
	})
}

// BenchmarkByteKeys measures the prefix-code plane against the pure
// comparator plane on variable-length byte-string keys. hashlike keys
// (32-char hex digests) have effectively distinct 8-byte prefixes —
// the regime where the radix local sort, code-keyed partition, and
// code-tree merges run comparator-free and the prefix plane should win.
// urllike keys all share the exactly-8-byte "https://" scheme, so every
// prefix code collides: the plane degrades to comparator tie-breaks and
// single-bucket saturation — the honest worst case, reported alongside.
func BenchmarkByteKeys(b *testing.B) {
	b.ReportAllocs()
	const p, perRank = 8, 100000
	inputs := []struct {
		name     string
		kind     dist.ByteKind
		keyBytes int64 // mean key length, for the throughput metric
	}{
		{"hashlike", dist.HashLike, 32},
		{"urllike-shared-prefix", dist.URLLike, 30},
	}
	paths := []struct {
		name string
		cp   CodePath
	}{
		{"comparator", CodePathOff},
		{"prefix", CodePathOn},
	}
	for _, in := range inputs {
		shards := dist.ByteSpec{Kind: in.kind}.Shards(perRank, p, 41)
		for _, path := range paths {
			b.Run(in.name+"/"+path.name, func(b *testing.B) {
				b.ReportAllocs()
				cfg := Config{Procs: p, Epsilon: 0.1, Seed: 3, CodePath: path.cp}
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					work := cloneAny(shards)
					b.StartTimer()
					if _, _, err := SortBytes(cfg, work); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(p) * int64(perRank) * in.keyBytes)
			})
		}
	}
}

// BenchmarkTransportBackends compares the simulated byte-accounted
// backend (TransportSim) against the zero-copy in-process fast path
// (TransportInproc) on the three main algorithm families. The comm-bound
// shapes (many ranks, microshards — the splitter protocol dominates, as
// at the paper's real processor counts) isolate per-message transport
// overhead: pair queues and targeted wakeups buy inproc a consistent
// win there. The data-bound shape shows the ceiling once local sort and
// merge dominate the critical path and the backends converge.
func BenchmarkTransportBackends(b *testing.B) {
	b.ReportAllocs()
	shapes := []struct {
		name       string
		p, perRank int
		algs       []Algorithm
	}{
		{"comm-bound/p=192/n=16", 192, 16, []Algorithm{HSS, SampleSortRegular, HistogramSort}},
		{"comm-bound/p=256/n=8", 256, 8, []Algorithm{HSS}},
		{"data-bound/p=8/n=100000", 8, 100000, []Algorithm{HSS}},
	}
	for _, shape := range shapes {
		for _, alg := range shape.algs {
			for _, tr := range []Transport{TransportSim, TransportInproc} {
				b.Run(fmt.Sprintf("%s/%s/%s", shape.name, alg, tr), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						shards := dist.Spec{Kind: dist.Uniform}.Shards(shape.perRank, shape.p, uint64(i)+1)
						b.StartTimer()
						_, _, err := Sort(Config{
							Procs: shape.p, Algorithm: alg, Epsilon: 0.1, Seed: 3, Transport: tr,
						}, shards)
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkSorterReuse measures the engine-reuse amortization the
// service API exists for: repeated small sorts through (a) the one-shot
// Sort wrapper that builds and tears down the whole simulated machine
// per call, (b) a long-lived Sorter reusing the transport, worker pool
// and scratch, and (c) the same Sorter with a prepared Plan so each
// sort also skips splitter determination (0 histogram rounds —
// asserted). The comparable output is (a) vs (b) vs (c) per shape.
func BenchmarkSorterReuse(b *testing.B) {
	ctx := context.Background()
	shapes := []struct {
		name    string
		p       int
		perRank int
		stream  bool
	}{
		{"p=32/n=2k", 32, 2000, false},
		{"p=64/n=1k", 64, 1000, false},
		{"p=32/n=2k/stream", 32, 2000, true},
	}
	for _, sh := range shapes {
		cfg := Config{Procs: sh.p, Epsilon: 0.1, Seed: 7, Transport: TransportInproc}
		if sh.stream {
			cfg.StreamExchange = true
			cfg.ChunkKeys = 512
		}
		shards := dist.Spec{Kind: dist.Gaussian}.Shards(sh.perRank, sh.p, 11)

		b.Run(sh.name+"/one-shot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Sort(cfg, cloneShards(shards)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sh.name+"/engine-reuse", func(b *testing.B) {
			b.ReportAllocs()
			s, err := New[int64](cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Sort(ctx, cloneShards(shards)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(sh.name+"/plan-reuse", func(b *testing.B) {
			b.ReportAllocs()
			s, err := New[int64](cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			plan, err := s.Plan(ctx, shards)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rounds int
			for i := 0; i < b.N; i++ {
				_, stats, err := s.SortWithPlan(ctx, plan, cloneShards(shards))
				if err != nil {
					b.Fatal(err)
				}
				rounds = stats.Rounds
			}
			if rounds != 0 {
				b.Fatalf("plan-reuse sort histogrammed: %d rounds", rounds)
			}
			b.ReportMetric(float64(rounds), "hist_rounds")
		})
	}
}

// BenchmarkTCPTransport places the wire backend on the transport
// comparison: the same sorts as BenchmarkTransportBackends' data-bound
// shape, over a loopback mesh of real sockets (serialization, framing,
// kernel round trips) versus the in-memory backends. The mesh is built
// once per sub-benchmark (engine reuse), matching how a deployment
// amortizes bootstrap; rank counts stay modest because a full mesh is
// p·(p-1)/2 socket pairs. The gap to inproc is the measured price of
// crossing a socket — the baseline any multi-machine run starts from.
func BenchmarkTCPTransport(b *testing.B) {
	ctx := context.Background()
	shapes := []struct {
		name       string
		p, perRank int
		stream     bool
	}{
		{"data-bound/p=4/n=100000", 4, 100000, false},
		{"data-bound/p=4/n=100000/stream", 4, 100000, true},
		{"comm-bound/p=16/n=1000", 16, 1000, false},
	}
	for _, sh := range shapes {
		for _, tr := range []Transport{TransportSim, TransportInproc, TransportTCP} {
			b.Run(sh.name+"/"+tr.String(), func(b *testing.B) {
				b.ReportAllocs()
				cfg := Config{Procs: sh.p, Epsilon: 0.1, Seed: 3, Transport: tr, StreamExchange: sh.stream}
				engine, err := New[int64](cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer engine.Close()
				shards := dist.Spec{Kind: dist.Uniform}.Shards(sh.perRank, sh.p, 11)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					work := cloneShards(shards)
					b.StartTimer()
					if _, _, err := engine.Sort(ctx, work); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWorkers measures the intra-rank multicore compute plane: the
// four parallel kernels in isolation (radix local sort, partition cuts,
// codec passes, k-way merge) and the end-to-end sort, each swept over
// worker-pool sizes. On a multicore host the kernel rows scale with w
// until memory bandwidth saturates; Workers=1 rows are the serial
// regression guard (the pool's w=1 path must cost what the plain serial
// kernels cost). Run on a single-core host, all rows coincide — the
// checked-in artifact records which regime measured it.
func BenchmarkWorkers(b *testing.B) {
	b.ReportAllocs()
	const n = 400000
	workersSweep := []int{1, 2, 4, 8}

	rng := rand.New(rand.NewPCG(8, 73))
	baseCodes := make([]codes.Code, n)
	baseKeys := make([]int64, n)
	for i := 0; i < n; i++ {
		baseCodes[i] = codes.Code(rng.Uint64())
		baseKeys[i] = rng.Int64() - (1 << 62)
	}
	sortedKeys := slices.Clone(baseKeys)
	slices.Sort(sortedKeys)
	splitters := make([]int64, 255)
	for i := range splitters {
		splitters[i] = sortedKeys[(i+1)*n/256]
	}
	coder := keycoder.Int64{}
	sortedCodes := codes.EncodeSlice(coder, sortedKeys)
	splitterCodes := codes.EncodeSlice(coder, splitters)
	mergeRuns := make([][]codes.Code, 8)
	for r := range mergeRuns {
		run := make([]codes.Code, n/8)
		for i := range run {
			run[i] = codes.Code(rng.Uint64())
		}
		slices.Sort(run)
		mergeRuns[r] = run
	}

	for _, w := range workersSweep {
		pool := par.New(w)
		name := fmt.Sprintf("w=%d", w)

		b.Run("localsort/"+name, func(b *testing.B) {
			b.ReportAllocs()
			scratch := make([]codes.Code, n)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(scratch, baseCodes)
				b.StartTimer()
				codes.SortPar(scratch, pool)
			}
			b.SetBytes(8 * n)
		})
		b.Run("partition/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exchange.PartitionPar(sortedKeys, splitters, cmp.Compare[int64], pool)
			}
			b.SetBytes(8 * n)
		})
		b.Run("partition-bycode/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exchange.PartitionByCodePar(sortedKeys, sortedCodes, splitterCodes, pool)
			}
			b.SetBytes(8 * n)
		})
		b.Run("codec/"+name, func(b *testing.B) {
			b.ReportAllocs()
			var enc []codes.Code
			for i := 0; i < b.N; i++ {
				enc = codes.EncodeIntoPar(coder, baseKeys, enc, pool)
				codes.DecodeSlicePar(coder, enc, pool)
			}
			b.SetBytes(2 * 8 * n)
		})
		b.Run("merge/"+name, func(b *testing.B) {
			b.ReportAllocs()
			dst := make([]codes.Code, 0, n)
			for i := 0; i < b.N; i++ {
				dst = merge.ParMerge(dst[:0], mergeRuns, codes.Compare, pool)
			}
			b.SetBytes(8 * n)
		})
	}

	// End-to-end: the acceptance shape (p=4 ranks x 100k keys per rank)
	// through the full HSS pipeline on the sim transport.
	const p, perRank = 4, 100000
	shards := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 40}.Shards(perRank, p, 79)
	for _, w := range workersSweep {
		b.Run(fmt.Sprintf("endtoend/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			s, err := New[int64](Config{Procs: p, Epsilon: 0.1, Seed: 3, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := cloneShards(shards)
				b.StartTimer()
				if _, _, err := s.Sort(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(p) * int64(perRank) * 8)
		})
	}
}

// BenchmarkSpill is the out-of-core plane's headline: the identical
// sort fully in memory versus under a per-rank MemoryBudget of a half
// and a quarter of each rank's data (so the dataset is 2× and 4× the
// budget). The gap is the cost of compressing, writing, reading back
// and re-merging the spilled runs; compression_pct reports how much
// smaller the delta-varint + flate run files were than the raw spilled
// keys.
func BenchmarkSpill(b *testing.B) {
	b.ReportAllocs()
	const p, n = 4, 200000
	rankBytes := int64(n) * 8
	budgets := []struct {
		name   string
		budget int64
	}{
		{"in-memory", 0},
		{"2x-budget", rankBytes / 2},
		{"4x-budget", rankBytes / 4},
	}
	for _, tc := range budgets {
		b.Run(fmt.Sprintf("p=%d/n=%d/%s", p, n, tc.name), func(b *testing.B) {
			b.ReportAllocs()
			var stats Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				shards := dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.Shards(n, p, uint64(i)+1)
				b.StartTimer()
				cfg := Config{Procs: p, Epsilon: 0.1, Seed: 3, StreamExchange: true, ChunkKeys: 4096, MemoryBudget: tc.budget}
				var err error
				_, stats, err = Sort(cfg, shards)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(p) * int64(n) * 8)
			if tc.budget > 0 {
				if stats.SpilledBytes == 0 {
					b.Fatal("budgeted benchmark shape never spilled")
				}
				b.ReportMetric(float64(stats.SpilledBytes)/(1<<20), "spilled_MiB")
				b.ReportMetric(100*(1-float64(stats.SpillFileBytes)/float64(stats.SpilledBytes)), "compression_pct")
				b.ReportMetric(float64(stats.PeakResidentBytes)/1024, "resident_KiB")
			}
		})
	}
}
