package core

import (
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/exchange"
	"hssort/internal/par"
	"hssort/internal/spill"
)

// Sort runs the full HSS pipeline on this rank's local keys and returns
// the rank's globally sorted partition: local sort → splitter
// determination → all-to-all exchange → k-way merge (§6.1.2). Every rank
// of the world must call Sort with the same Options. The input slice is
// sorted in place and its storage re-used (the Coder plane instead
// leaves the input untouched); callers must not reuse it.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, Stats{}, err
	}
	if opt.Coder != nil {
		return sortViaCodes(c, local, opt)
	}
	if opt.PrefixCode {
		return sortPrefix(c, local, opt)
	}
	base := opt.BaseTag
	pool := par.New(opt.Workers)
	var stats Stats
	stats.Buckets = opt.Buckets
	stats.Workers = pool.Workers()

	// Phase 1: local sort (embarrassingly parallel, §6.1.2) — the
	// comparator-free radix plane when a code extractor is available,
	// fanned over this rank's worker pool; over a memory budget,
	// spill.LocalSort runs the same kernel segment-at-a-time through
	// disk runs with identical output.
	t0 := time.Now()
	localCodes, err := spill.LocalSort(opt.Spill, local, opt.Code, opt.Cmp, pool)
	if err != nil {
		return nil, stats, err
	}
	localSort := time.Since(t0)

	// Global key count.
	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]

	// Phase 2: splitter determination — skipped entirely when a stored
	// plan injects the splitters (the prepare-once/sort-many operation
	// phase).
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters := opt.Splitters
	if splitters != nil {
		// Injected splitters cross an API boundary: re-establish the
		// sorted invariant exchange.Partition relies on, once per sort.
		exchange.ValidateSplitters(splitters, opt.Cmp)
	} else {
		var info SplitterInfo
		splitters, info, err = DetermineSplitters(c, local, stats.N, opt)
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = info.Rounds
		stats.SamplePerRound = info.SamplePerRound
		stats.TotalSample = info.TotalSample
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	partition := func(sp []K) [][]K {
		if localCodes != nil {
			return exchange.PartitionByCodePar(local, localCodes, codes.Extract(sp, opt.Code), pool)
		}
		return exchange.PartitionPar(local, sp, opt.Cmp, pool)
	}
	t2 := time.Now()
	runs := partition(splitters)
	partitionTime := time.Since(t2)

	// Staleness guard: a stored plan is only as good as the distribution
	// it was histogrammed on. When armed, measure the bucket imbalance
	// the stale splitters would produce and re-histogram if it exceeds
	// the bound — the self-improving sorter's fallback to its training
	// phase. The guard (and any replan) is splitter-determination work.
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			splitters, info, err := DetermineSplitters(c, local, stats.N, opt)
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = info.Rounds
			stats.SamplePerRound = info.SamplePerRound
			stats.TotalSample = info.TotalSample
			runs = partition(splitters)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}

	// Phase 3+4: data exchange and k-way merge — fused by
	// ExchangeMerge, which runs either the materializing path or (with
	// Options.ChunkKeys > 0) the streaming pipeline that overlaps the
	// merge with the exchange tail.
	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Spill: opt.Spill}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := FinishStats(c, base+tagStats, &stats, PhaseTimes{
		SplitterBytes: splitterBytes,
		ExchangeBytes: exchangeBytes,
		LocalSort:     localSort,
		Splitter:      splitterTime,
		Exchange:      partitionTime + exchangeTime,
		Merge:         mergeTime,
		Overlap:       sst.Overlap,
		PeakInFlight:  sst.PeakInFlight,
		OutCount:      len(out),
		ParSpawned:    pc.Spawned,
		ParTasks:      pc.Tasks,
		Spill:         opt.Spill.TakeStats(),
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// sortPrefix is the prefix plane (Options.PrefixCode): the code
// decoration is a non-injective order-preserving prefix of the key, so
// every code-keyed kernel runs as on the decorated plane, with a
// comparator tie-break at exactly the points where distinct keys can
// collide on a code — after the radix local sort (TieBreakPar) and
// inside the merges (StreamOptions.Tie). Partition needs no repair:
// lower-bound code cuts keep every occurrence of a code value in one
// bucket, and tie-broken runs concatenate in comparator order. Splitter
// determination runs entirely in code space — splitter traffic stays
// fixed-size code points regardless of key length, and on adversarial
// shared-prefix input the candidate pool saturates (every probe is the
// same code) so the protocol stops after its stagnation window instead
// of looping: SplitterInfo.Finalized reports false and the achieved
// imbalance is whatever the code plane could express.
func sortPrefix[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	base := opt.BaseTag
	pool := par.New(opt.Workers)
	var stats Stats
	stats.Buckets = opt.Buckets
	stats.Workers = pool.Workers()

	// Phase 1: radix local sort on the code decoration, then restore
	// full comparator order within equal-code spans.
	t0 := time.Now()
	localCodes := codes.SortByCodePar(local, opt.Code, pool)
	collisions := codes.TieBreakPar(localCodes, local, opt.Cmp, pool)
	localSort := time.Since(t0)

	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]

	// Phase 2: splitter determination in code space. Injected splitters
	// are projected to their codes — re-extraction is exact because a
	// splitter's code is a pure function of the key.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	var spCodes []codes.Code
	if opt.Splitters != nil {
		spCodes = codes.Extract(opt.Splitters, opt.Code)
		exchange.ValidateSplitters(spCodes, codes.Compare)
	} else {
		var info SplitterInfo
		spCodes, info, err = DetermineSplitters(c, localCodes, stats.N, prefixDetOptions(opt))
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = info.Rounds
		stats.SamplePerRound = info.SamplePerRound
		stats.TotalSample = info.TotalSample
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	t2 := time.Now()
	runs := exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
	partitionTime := time.Since(t2)

	// Staleness guard, as on the comparator plane: replanning runs the
	// code-space determination again.
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			var info SplitterInfo
			spCodes, info, err = DetermineSplitters(c, localCodes, stats.N, prefixDetOptions(opt))
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = info.Rounds
			stats.SamplePerRound = info.SamplePerRound
			stats.TotalSample = info.TotalSample
			runs = exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}

	// Phase 3+4: exchange and tie-aware merge.
	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Tie: true}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := FinishStats(c, base+tagStats, &stats, PhaseTimes{
		SplitterBytes:    splitterBytes,
		ExchangeBytes:    exchangeBytes,
		LocalSort:        localSort,
		Splitter:         splitterTime,
		Exchange:         partitionTime + exchangeTime,
		Merge:            mergeTime,
		Overlap:          sst.Overlap,
		PeakInFlight:     sst.PeakInFlight,
		OutCount:         len(out),
		ParSpawned:       pc.Spawned,
		ParTasks:         pc.Tasks,
		PrefixCollisions: collisions,
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// prefixDetOptions projects prefix-plane options onto code space for
// splitter determination: the protocol — sampling draws, histogram
// ranks, splitter choices — runs over this rank's sorted code
// decoration under raw integer comparison, exactly as the bijective
// plane's determination does.
func prefixDetOptions[K any](opt Options[K]) Options[codes.Code] {
	return Options[codes.Code]{
		Cmp:               codes.Compare,
		Code:              codes.ExtractCode,
		Epsilon:           opt.Epsilon,
		Buckets:           opt.Buckets,
		Owner:             opt.Owner,
		Schedule:          opt.Schedule,
		Rounds:            opt.Rounds,
		MaxRounds:         opt.MaxRounds,
		OversampleFactor:  opt.OversampleFactor,
		Seed:              opt.Seed,
		Approx:            opt.Approx,
		ApproxSize:        opt.ApproxSize,
		Workers:           opt.Workers,
		BaseTag:           opt.BaseTag,
		PipelineChunk:     opt.PipelineChunk,
		PipelineThreshold: opt.PipelineThreshold,
		OnRound:           opt.OnRound,
	}
}

// sortViaCodes is the Coder plane: encode this rank's keys once, run the
// identical pipeline on raw code points (where the compute phases
// specialize to radix sort, branch-free searches and code-keyed merges,
// and the exchange moves codes, not keys), and decode the merged
// partition once at the end. The protocol — sampling draws, histogram
// updates, splitter choices, bucket cuts, merge tie-breaks — is a
// function of key order only, and the coder preserves it exactly, so the
// decoded output is rank-identical to the comparator plane's.
func sortViaCodes[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, Stats, error) {
	pool := par.New(opt.Workers)
	enc := codes.EncodeIntoPar(opt.Coder, local, nil, pool)
	var splitters []codes.Code
	if opt.Splitters != nil {
		splitters = codes.EncodeSlice(opt.Coder, opt.Splitters)
	}
	out, stats, err := Sort(c, enc, Options[codes.Code]{
		Splitters:         splitters,
		StaleBound:        opt.StaleBound,
		Cmp:               codes.Compare,
		Code:              codes.ExtractCode,
		Epsilon:           opt.Epsilon,
		Buckets:           opt.Buckets,
		Owner:             opt.Owner,
		Schedule:          opt.Schedule,
		Rounds:            opt.Rounds,
		MaxRounds:         opt.MaxRounds,
		OversampleFactor:  opt.OversampleFactor,
		Seed:              opt.Seed,
		Approx:            opt.Approx,
		ApproxSize:        opt.ApproxSize,
		ChunkKeys:         opt.ChunkKeys,
		Workers:           opt.Workers,
		BaseTag:           opt.BaseTag,
		PipelineChunk:     opt.PipelineChunk,
		PipelineThreshold: opt.PipelineThreshold,
		OnRound:           opt.OnRound,
		Spill:             opt.Spill,
	})
	if err != nil {
		return nil, stats, err
	}
	return codes.DecodeSlicePar(opt.Coder, out, pool), stats, nil
}
