// Package overpartition implements parallel sorting by over-partitioning
// (Li & Sevcik 1994), the §4.2 baseline: sample k·p−1 splitters to cut
// the input into k·p buckets — k× more than processors — then assign
// whole buckets to processors, largest first, so bucket-size variance
// averages out without accurate splitters.
//
// The original is a shared-memory algorithm whose processors pull buckets
// off a size-ordered task queue; the paper notes "it is not immediately
// clear how to extend the idea of task queues for a distributed cluster".
// Our distributed rendering makes the one scheduling decision the queue
// would make — longest-processing-time (LPT) assignment of buckets to
// processors — centrally after one histogram of the sampled splitters,
// then reuses the standard exchange. Bucket placement is therefore
// non-contiguous: each rank's output is sorted, but rank order does not
// follow key order (as with §6.3's virtual processors).
package overpartition
