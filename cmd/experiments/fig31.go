package main

import (
	"fmt"

	"hssort"
	"hssort/internal/tablefmt"
)

// runFig31 illustrates Fig 3.1: the splitter intervals (the fraction of
// the input still in play, G_j/N) shrink geometrically as HSS rounds
// progress.
func runFig31(scale float64) error {
	n := int64(1 << 20 * scale)
	if n < 1<<14 {
		n = 1 << 14
	}
	const buckets = 16
	res, err := hssort.SimulateSplitters(n, buckets, 0.02, hssort.HSS, 0, 1)
	if err != nil {
		return err
	}
	t := tablefmt.New("round", "sample size", "coverage G_j", "G_j / N")
	for j := 0; j < res.Rounds; j++ {
		t.AddRow(
			fmt.Sprintf("%d", j+1),
			fmt.Sprintf("%d", res.SamplePerRound[j]),
			fmt.Sprintf("%d", res.CoveragePerRound[j]),
			fmt.Sprintf("%.5f", float64(res.CoveragePerRound[j])/float64(n)),
		)
	}
	fmt.Printf("HSS on N=%d keys, %d buckets, eps=0.02 (finalized=%v, imbalance=%.4f)\n\n",
		n, buckets, res.Finalized, res.Imbalance)
	fmt.Print(t.String())
	fmt.Println("\nPaper (Fig 3.1): splitter intervals shrink every round; samples are")
	fmt.Println("drawn only from the surviving intervals.")
	return nil
}
