// Command hssort sorts a synthetic workload with any of the library's
// algorithms and prints the paper's metrics: phase breakdown,
// histogramming rounds, sample sizes, communication volume, and the
// achieved load imbalance.
//
// Examples:
//
//	hssort -p 16 -n 100000                          # HSS on uniform keys
//	hssort -p 16 -alg samplesort-regular -eps 0.02  # baseline comparison
//	hssort -p 16 -dist powerskew -alg histogramsort # skew vs bisection
//	hssort -p 16 -dist dupheavy -tag                # §4.3 duplicate tagging
//	hssort -p 16 -alg node-hss -cores 4             # §6.1 two-level sort
//	hssort -p 16 -keys bytes -dist urllike          # []byte keys, prefix-code plane
//
// Multi-process deployment (the tcp transport; see docs/WIRE.md and the
// README's "Distributed deployment" section):
//
//	hssort -transport tcp -launch local:4 -n 100000   # fork 4 workers on localhost
//
//	# or launch the worker processes yourself (possibly on different hosts):
//	hssort -transport tcp -coordinator host0:9999 -rank 0 -p 4 ...
//	hssort -transport tcp -coordinator host0:9999 -rank 1 -p 4 ...
//	...
//
// Every worker must be started with identical workload flags (-n, -dist,
// -seed, -alg, …): each process derives the deterministic global input
// and sorts its own rank's shard. -digest prints per-rank output
// fingerprints that are comparable across transports, which is how the
// CI smoke asserts rank-identical output of a 4-process tcp run against
// the in-process sim oracle.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"hssort"
	"hssort/internal/dist"
	"hssort/internal/tablefmt"
)

var algorithms = map[string]hssort.Algorithm{
	"hss":                hssort.HSS,
	"hss-1round":         hssort.HSSOneRound,
	"hss-theory":         hssort.HSSTheoretical,
	"samplesort-regular": hssort.SampleSortRegular,
	"samplesort-random":  hssort.SampleSortRandom,
	"histogramsort":      hssort.HistogramSort,
	"bitonic":            hssort.Bitonic,
	"radix":              hssort.Radix,
	"node-hss":           hssort.NodeHSS,
	"overpartition":      hssort.OverPartition,
}

var distributions = map[string]dist.Kind{
	"uniform":      dist.Uniform,
	"gaussian":     dist.Gaussian,
	"exponential":  dist.Exponential,
	"powerskew":    dist.PowerSkew,
	"zipfian":      dist.Zipfian,
	"almostsorted": dist.AlmostSorted,
	"dupheavy":     dist.DuplicateHeavy,
	"staircase":    dist.Staircase,
}

var byteDistributions = map[string]dist.ByteKind{
	"hashlike": dist.HashLike,
	"urllike":  dist.URLLike,
	"loglines": dist.LogLines,
}

func names[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return strings.Join(out, ", ")
}

func main() {
	var (
		p       = flag.Int("p", 8, "simulated processors")
		n       = flag.Int("n", 100000, "keys per processor")
		algName = flag.String("alg", "hss", "algorithm: "+names(algorithms))
		keyType = flag.String("keys", "int64", "key type: int64, or bytes for variable-length byte strings on the prefix-code plane")
		dsName  = flag.String("dist", "uniform", "distribution: "+names(distributions)+"; with -keys bytes: "+names(byteDistributions)+" (default hashlike)")
		eps     = flag.Float64("eps", 0.05, "load-imbalance threshold")
		buckets = flag.Int("buckets", 0, "output buckets (default: p)")
		rounds  = flag.Int("rounds", 0, "rounds for hss-theory (default: log log p/eps)")
		cores   = flag.Int("cores", 4, "cores per node for node-hss")
		tag     = flag.Bool("tag", false, "tag duplicates (§4.3)")
		approx  = flag.Bool("approx", false, "approximate histogramming (§3.4)")
		seed    = flag.Uint64("seed", 1, "random seed")
		trName  = flag.String("transport", "sim", "comm backend — "+strings.Join(hssort.TransportSummaries(), "; "))
		cpName  = flag.String("codepath", "auto", "compute plane: auto (code plane when available), off (comparator oracle) or on (require the code plane)")
		stream  = flag.Bool("stream", false, "streaming chunked exchange overlapped with the merge")
		workers = flag.Int("workers", 0, "per-rank compute worker pool size (0 = GOMAXPROCS split across hosted ranks, 1 = serial)")
		chunk   = flag.Int("chunk", 0, "streaming-exchange chunk size in keys (implies -stream; default 64Ki)")
		budget  = flag.Int64("mem-budget", 0, "per-rank memory budget in bytes: sort out of core, spilling compressed run files when the spill-managed working set would exceed it (0 = in-memory)")
		spillSt = flag.String("spill-dir", "", "directory for out-of-core run files (requires -mem-budget; default: per-rank dirs under the system temp dir)")
		repeat  = flag.Int("repeat", 1, "sorts to run through one engine (fresh shards each time; demonstrates Sorter reuse)")
		plan    = flag.Bool("plan", false, "prepare a splitter plan once and sort with SortWithPlan (0 histogram rounds per sort)")
		stale   = flag.Float64("staleness", 0, "with -plan: bucket-imbalance bound above which a sort re-histograms (0 = trust the plan)")
		verbose = flag.Bool("v", false, "verify the output is globally sorted")

		coordinator = flag.String("coordinator", "", "tcp worker mode: host:port of the rank-0 rendezvous listener (requires -transport tcp and -rank)")
		rank        = flag.Int("rank", 0, "tcp worker mode: this process's rank in [0, p)")
		listenAddr  = flag.String("listen", "", "tcp worker mode: bind address of this process's data listener (default 127.0.0.1:0)")
		launch      = flag.String("launch", "", "convenience launcher: local:N forks N tcp worker processes on localhost and relays their output")
		digest      = flag.Bool("digest", false, "print per-rank output fingerprints (comparable across transports)")

		heartbeat   = flag.Duration("heartbeat", 0, "tcp: liveness-probe period on idle links (default peer-timeout/3 when -peer-timeout is set)")
		peerTimeout = flag.Duration("peer-timeout", 0, "tcp: declare a silent peer crashed after this long (0 = detect severed sockets only)")
		rejoin      = flag.Bool("rejoin", false, "tcp worker mode: rejoin the live mesh in place of this rank's crashed predecessor instead of bootstrapping a new world")
		rejoinWait  = flag.Duration("rejoin-wait", 0, "tcp: after a peer crash, retry the sort and wait up to this long for the respawned rank to rejoin (0 = fail on first crash)")
		chaosSpec   = flag.String("chaos", "", "deterministic fault injection \"seed:drop=P,delay=P,dup=P,maxdelay=DUR,crash=RANK@PHASE\" (PHASE: start, splitter, exchange, or sends:N); in worker mode a crash of this rank is a real kill -9")
	)
	flag.Parse()

	alg, ok := algorithms[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q; known: %s\n", *algName, names(algorithms))
		os.Exit(2)
	}
	transport, err := hssort.ParseTransport(*trName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	codePath, err := hssort.ParseCodePath(*cpName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaos, err := hssort.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var kind dist.Kind
	var byteKind dist.ByteKind
	byteKeys := false
	switch *keyType {
	case "int64":
		kind, ok = distributions[*dsName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown distribution %q; known: %s\n", *dsName, names(distributions))
			os.Exit(2)
		}
	case "bytes":
		byteKeys = true
		if *dsName == "uniform" {
			*dsName = "hashlike" // the int64 default maps to the byte-key default
		}
		byteKind, ok = byteDistributions[*dsName]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown byte distribution %q; known: %s\n", *dsName, names(byteDistributions))
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown key type %q; known: int64, bytes\n", *keyType)
		os.Exit(2)
	}

	if *launch != "" {
		os.Exit(launchWorkers(*launch))
	}
	workerMode := *coordinator != ""
	if workerMode {
		if transport != hssort.TransportTCP {
			fmt.Fprintln(os.Stderr, "-coordinator requires -transport tcp")
			os.Exit(2)
		}
		if *rank < 0 || *rank >= *p {
			fmt.Fprintf(os.Stderr, "-rank %d outside [0, %d)\n", *rank, *p)
			os.Exit(2)
		}
		if *verbose || *plan {
			fmt.Fprintln(os.Stderr, "-v and -plan need the whole output in one process; unavailable in tcp worker mode")
			os.Exit(2)
		}
	}

	var shards, input [][]int64
	if !byteKeys {
		shards = dist.Spec{Kind: kind}.Shards(*n, *p, *seed)
		if workerMode {
			// Each process derives the deterministic global input and keeps
			// only its own rank's shard; peers sort theirs.
			for i := range shards {
				if i != *rank {
					shards[i] = nil
				}
			}
		}
		if *verbose {
			input = make([][]int64, *p)
			for i := range shards {
				input[i] = slices.Clone(shards[i])
			}
		}
	}

	cfg := hssort.Config{
		Procs:          *p,
		Algorithm:      alg,
		Epsilon:        *eps,
		Buckets:        *buckets,
		Rounds:         *rounds,
		CoresPerNode:   *cores,
		TagDuplicates:  *tag,
		Approx:         *approx,
		Seed:           *seed,
		Transport:      transport,
		CodePath:       codePath,
		StreamExchange: *stream,
		ChunkKeys:      *chunk,
		Workers:        *workers,
		PlanStaleness:  *stale,
		Chaos:          chaos,
		MemoryBudget:   *budget,
		SpillDir:       *spillSt,
	}
	cfg.TCP = hssort.TCPConfig{
		HeartbeatInterval: *heartbeat,
		PeerTimeout:       *peerTimeout,
		RejoinWait:        *rejoinWait,
	}
	if workerMode {
		cfg.TCP.Coordinator = *coordinator
		cfg.TCP.Rank = *rank
		cfg.TCP.ListenAddr = *listenAddr
		cfg.TCP.Rejoin = *rejoin
		if chaos != nil && (chaos.CrashPhase != "" || chaos.CrashAfterSends > 0) {
			// A worker-mode chaos crash is the real thing: the victim
			// process SIGKILLs itself mid-protocol (no shutdown handshake,
			// peers see a severed socket), exactly what the respawn +
			// rejoin machinery exists to survive.
			chaos.OnCrash = func(int) {
				proc, _ := os.FindProcess(os.Getpid())
				proc.Kill()
				select {}
			}
		}
	}

	// The engine is built once; Ctrl-C cancels the in-flight sort on
	// every simulated rank through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if byteKeys {
		os.Exit(runBytes(ctx, cfg, byteKind, byteOpts{
			distName: *dsName, n: *n, seed: *seed,
			rank: *rank, workerMode: workerMode,
			plan: *plan, repeat: *repeat, verbose: *verbose, digest: *digest,
			rejoinWait: *rejoinWait,
		}))
	}

	engine, err := hssort.New[int64](cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	var splitterPlan *hssort.Plan[int64]
	if *plan {
		planStart := time.Now()
		splitterPlan, err = engine.Plan(ctx, shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("plan: %d splitters in %d rounds (%d sample keys, achieved eps %.4f vs target %.4f) in %v\n\n",
			len(splitterPlan.Splitters), splitterPlan.Rounds, splitterPlan.TotalSample,
			splitterPlan.AchievedEpsilon, splitterPlan.Epsilon,
			time.Since(planStart).Round(time.Millisecond))
	}

	start := time.Now()
	var outs [][]int64
	var stats hssort.Stats
	runs := max(*repeat, 1)
	var retries retryBudget
	for i := 0; i < runs; {
		work := shards
		if i < runs-1 {
			// Warm-up sorts on fresh shards; the last run sorts (and,
			// with -v, verifies) the original input.
			work = dist.Spec{Kind: kind}.Shards(*n, *p, *seed+uint64(i)+1)
		}
		if splitterPlan != nil {
			outs, stats, err = engine.SortWithPlan(ctx, splitterPlan, work)
		} else {
			outs, stats, err = engine.Sort(ctx, work)
		}
		if err != nil {
			if retries.retry(err, *rejoinWait) {
				continue // the respawned rank rejoins; re-run this sort
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		i++
	}
	wall := time.Since(start)
	if runs > 1 {
		fmt.Printf("ran %d sorts through one engine (%v/sort); metrics below describe the last\n\n",
			runs, (wall / time.Duration(runs)).Round(time.Microsecond))
	}

	if workerMode && *rank != 0 {
		// Peers report their partition; whole-run stats live on rank 0.
		fmt.Printf("%s: rank %d/%d sorted its partition (%s keys received) in %v over tcp\n",
			alg, *rank, *p, tablefmt.Count(float64(totalKeys(outs))), wall.Round(time.Millisecond))
		if *digest {
			printDigests(outs, *rank, workerMode)
		}
		return
	}
	report{cfg: cfg, distName: *dsName, wall: wall, stats: stats,
		planned: splitterPlan != nil, workerMode: workerMode}.print()
	if *digest {
		printDigests(outs, *rank, workerMode)
		printStatsJSON(stats)
	}

	if *verbose {
		var want, got []int64
		for _, s := range input {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				fmt.Fprintln(os.Stderr, "FAIL: a rank's output is not sorted")
				os.Exit(1)
			}
			got = append(got, o...)
		}
		// Non-contiguous bucket placements produce per-rank sorted
		// output whose rank order does not follow key order.
		if cfg.RoundRobinBuckets || alg == hssort.OverPartition {
			slices.Sort(got)
		}
		if !slices.Equal(got, want) {
			fmt.Fprintln(os.Stderr, "FAIL: output is not the sorted permutation of the input")
			os.Exit(1)
		}
		fmt.Println("\nverified: output is the globally sorted permutation of the input")
	}
}

// totalKeys counts the keys across a rank's output partitions.
func totalKeys[K any](outs [][]K) int {
	var total int
	for _, o := range outs {
		total += len(o)
	}
	return total
}

// report prints the whole-run metrics table. It is key-type agnostic:
// the int64 and []byte paths feed it the same Config and Stats.
type report struct {
	cfg        hssort.Config
	distName   string
	wall       time.Duration
	stats      hssort.Stats
	planned    bool
	workerMode bool
}

func (r report) print() {
	stats := r.stats
	world := "simulated processors"
	if r.workerMode {
		world = "worker processes"
	}
	fmt.Printf("%s: sorted %s %s keys on %d %s in %v (%s transport, %s code path)\n\n",
		r.cfg.Algorithm, tablefmt.Count(float64(stats.N)), r.distName, r.cfg.Procs, world,
		r.wall.Round(time.Millisecond), r.cfg.Transport, r.cfg.CodePath)
	if r.cfg.Transport == hssort.TransportInproc {
		fmt.Println("note: the inproc transport does no byte accounting; byte/message metrics read zero")
		fmt.Println()
	}
	if r.cfg.Transport == hssort.TransportTCP {
		fmt.Println("note: tcp byte/message metrics are measured wire traffic (headers included), not the sim model")
		if r.workerMode {
			fmt.Println("note: in worker mode the byte/message totals cover this process's rank only")
		}
		fmt.Println()
	}
	t := tablefmt.New("metric", "value")
	t.AddRow("local sort (max over ranks)", stats.LocalSort.Round(10*time.Microsecond).String())
	t.AddRow("splitter determination", stats.Splitter.Round(10*time.Microsecond).String())
	t.AddRow("data exchange", stats.Exchange.Round(10*time.Microsecond).String())
	t.AddRow("final merge", stats.Merge.Round(10*time.Microsecond).String())
	if r.cfg.StreamExchange || r.cfg.ChunkKeys > 0 {
		t.AddRow("merge overlapped with exchange", stats.ExchangeOverlap.Round(10*time.Microsecond).String())
		t.AddRow("peak in-flight exchange data", tablefmt.Bytes(float64(stats.PeakInFlightBytes)))
	}
	if stats.Workers > 1 {
		t.AddRow("workers per rank", fmt.Sprintf("%d (%d forks, %d parallel tasks)", stats.Workers, stats.ParSpawned, stats.ParTasks))
	}
	if r.cfg.MemoryBudget > 0 {
		t.AddRow("memory budget per rank", tablefmt.Bytes(float64(r.cfg.MemoryBudget)))
		t.AddRow("spilled to run files", fmt.Sprintf("%s (%s on disk, %d reads)",
			tablefmt.Bytes(float64(stats.SpilledBytes)), tablefmt.Bytes(float64(stats.SpillFileBytes)), stats.SpillReads))
		t.AddRow("peak spill-managed resident", tablefmt.Bytes(float64(stats.PeakResidentBytes)))
	}
	t.AddRow("histogramming rounds", fmt.Sprintf("%d", stats.Rounds))
	if r.planned {
		t.AddRow("plan replanned (stale)", fmt.Sprintf("%v", stats.Replanned))
	}
	t.AddRow("total sample (probe keys)", fmt.Sprintf("%d", stats.TotalSample))
	t.AddRow("splitter-phase bytes", tablefmt.Bytes(float64(stats.SplitterBytes)))
	t.AddRow("exchange-phase bytes", tablefmt.Bytes(float64(stats.ExchangeBytes)))
	t.AddRow("total messages", fmt.Sprintf("%d", stats.TotalMsgs))
	if stats.PrefixCollisions > 0 {
		t.AddRow("prefix collisions (tie-broken)", fmt.Sprintf("%d", stats.PrefixCollisions))
	}
	t.AddRow("load imbalance (max/avg)", fmt.Sprintf("%.4f (target <= %.4f)", stats.Imbalance, 1+r.cfg.Epsilon))
	fmt.Print(t.String())
}

// retryBudget retries a sort that failed on a peer crash while the
// operator respawns the lost rank (-rejoin-wait > 0): the next attempt
// blocks in the transport's rejoin wait until the mesh heals. Any other
// error, or a sixth consecutive crash, stops the retries.
type retryBudget struct{ attempts int }

func (b *retryBudget) retry(err error, rejoinWait time.Duration) bool {
	var crash *hssort.PeerCrashError
	if rejoinWait <= 0 || !errors.As(err, &crash) {
		return false
	}
	if b.attempts++; b.attempts > 5 {
		return false
	}
	fmt.Fprintf(os.Stderr, "peer rank %d crashed mid-sort; retrying once it rejoins (attempt %d)\n",
		crash.Rank, b.attempts)
	return true
}

// byteOpts carries the flag values the []byte path needs beyond Config.
type byteOpts struct {
	distName   string
	n          int
	seed       uint64
	rank       int
	workerMode bool
	plan       bool
	repeat     int
	verbose    bool
	digest     bool
	rejoinWait time.Duration
}

// runBytes is the -keys bytes counterpart of main's int64 flow: same
// engine lifecycle (Plan, -repeat reuse, worker mode, digests, -v
// verification), but over variable-length byte-string keys via
// hssort.NewBytes — the prefix-code plane.
func runBytes(ctx context.Context, cfg hssort.Config, kind dist.ByteKind, o byteOpts) int {
	spec := dist.ByteSpec{Kind: kind}
	shards := spec.Shards(o.n, cfg.Procs, o.seed)
	if o.workerMode {
		for i := range shards {
			if i != o.rank {
				shards[i] = nil
			}
		}
	}
	var input [][][]byte
	if o.verbose {
		input = make([][][]byte, cfg.Procs)
		for i := range shards {
			input[i] = slices.Clone(shards[i])
		}
	}

	engine, err := hssort.NewBytes(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer engine.Close()

	var splitterPlan *hssort.Plan[[]byte]
	if o.plan {
		planStart := time.Now()
		splitterPlan, err = engine.Plan(ctx, shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("plan: %d splitters in %d rounds (%d sample keys, achieved eps %.4f vs target %.4f) in %v\n\n",
			len(splitterPlan.Splitters), splitterPlan.Rounds, splitterPlan.TotalSample,
			splitterPlan.AchievedEpsilon, splitterPlan.Epsilon,
			time.Since(planStart).Round(time.Millisecond))
	}

	start := time.Now()
	var outs [][][]byte
	var stats hssort.Stats
	runs := max(o.repeat, 1)
	var retries retryBudget
	for i := 0; i < runs; {
		work := shards
		if i < runs-1 {
			work = spec.Shards(o.n, cfg.Procs, o.seed+uint64(i)+1)
		}
		if splitterPlan != nil {
			outs, stats, err = engine.SortWithPlan(ctx, splitterPlan, work)
		} else {
			outs, stats, err = engine.Sort(ctx, work)
		}
		if err != nil {
			if retries.retry(err, o.rejoinWait) {
				continue
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		i++
	}
	wall := time.Since(start)
	if runs > 1 {
		fmt.Printf("ran %d sorts through one engine (%v/sort); metrics below describe the last\n\n",
			runs, (wall / time.Duration(runs)).Round(time.Microsecond))
	}

	if o.workerMode && o.rank != 0 {
		fmt.Printf("%s: rank %d/%d sorted its partition (%s keys received) in %v over tcp\n",
			cfg.Algorithm, o.rank, cfg.Procs, tablefmt.Count(float64(totalKeys(outs))), wall.Round(time.Millisecond))
		if o.digest {
			printByteDigests(outs, o.rank, true)
		}
		return 0
	}
	report{cfg: cfg, distName: o.distName, wall: wall, stats: stats,
		planned: splitterPlan != nil, workerMode: o.workerMode}.print()
	if o.digest {
		printByteDigests(outs, o.rank, o.workerMode)
		printStatsJSON(stats)
	}

	if o.verbose {
		var want, got [][]byte
		for _, s := range input {
			want = append(want, s...)
		}
		slices.SortFunc(want, bytes.Compare)
		for _, part := range outs {
			if !slices.IsSortedFunc(part, bytes.Compare) {
				fmt.Fprintln(os.Stderr, "FAIL: a rank's output is not sorted")
				return 1
			}
			got = append(got, part...)
		}
		if cfg.Algorithm == hssort.OverPartition {
			slices.SortFunc(got, bytes.Compare)
		}
		if !slices.EqualFunc(got, want, bytes.Equal) {
			fmt.Fprintln(os.Stderr, "FAIL: output is not the sorted permutation of the input")
			return 1
		}
		fmt.Println("\nverified: output is the globally sorted permutation of the input")
	}
	return 0
}

// printByteDigests is printDigests for byte-string partitions: FNV-64a
// over length-prefixed keys, so the fingerprint distinguishes
// {"ab","c"} from {"a","bc"}.
func printByteDigests(outs [][][]byte, rank int, workerMode bool) {
	for r, o := range outs {
		if workerMode && r != rank {
			continue // peers print their own
		}
		h := fnv.New64a()
		var b [8]byte
		for _, k := range o {
			binary.LittleEndian.PutUint64(b[:], uint64(len(k)))
			h.Write(b[:])
			h.Write(k)
		}
		fmt.Printf("digest rank=%d n=%d fnv=%016x\n", r, len(o), h.Sum64())
	}
}

// printStatsJSON emits the run's statistics as one machine-readable
// "stats {json}" line (hssort.Stats.Snapshot) next to the digest
// lines, so scripted runs can diff digests and scrape metrics from one
// invocation. Digest consumers key on the "digest " prefix and are
// unaffected.
func printStatsJSON(stats hssort.Stats) {
	b, err := json.Marshal(stats)
	if err != nil {
		return
	}
	fmt.Printf("stats %s\n", b)
}

// printDigests emits one deterministic fingerprint line per output
// partition. The lines are identical for rank-identical output, whatever
// transport produced it — diffing the sorted digest lines of a tcp
// worker fleet against a sim run is the cross-process correctness check
// the CI smoke performs.
func printDigests(outs [][]int64, rank int, workerMode bool) {
	for r, o := range outs {
		if workerMode && r != rank {
			continue // peers print their own
		}
		h := fnv.New64a()
		var b [8]byte
		for _, k := range o {
			binary.LittleEndian.PutUint64(b[:], uint64(k))
			h.Write(b[:])
		}
		fmt.Printf("digest rank=%d n=%d fnv=%016x\n", r, len(o), h.Sum64())
	}
}

// launchWorkers implements -launch local:N: fork N copies of this
// binary as tcp worker processes on localhost (rank 0 doubling as the
// rendezvous coordinator), relay their output line-atomically, and exit
// non-zero if any worker fails.
func launchWorkers(spec string) int {
	mode, arg, ok := strings.Cut(spec, ":")
	if !ok || mode != "local" {
		fmt.Fprintf(os.Stderr, "unsupported -launch %q (supported: local:N)\n", spec)
		return 2
	}
	procs, err := strconv.Atoi(arg)
	if err != nil || procs < 1 {
		fmt.Fprintf(os.Stderr, "bad worker count in -launch %q\n", spec)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Reserve an ephemeral port for the coordinator. The port is
	// released before rank 0 rebinds it — a tiny race that a stray
	// process on localhost could lose; rerun on the (rare) bootstrap
	// failure.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	coordinator := ln.Addr().String()
	ln.Close()

	// Forward every flag except the launcher's own, overriding the
	// world size with the worker count. -listen must not propagate: the
	// workers are loopback processes with ephemeral ports, and a shared
	// explicit bind address would collide across ranks.
	var common []string
	// -rejoin also stays local: a fresh fleet bootstraps a new world,
	// only a respawned single rank rejoins an existing one.
	skip := map[string]bool{"launch": true, "coordinator": true, "rank": true, "p": true, "transport": true, "listen": true, "rejoin": true}
	flag.Visit(func(f *flag.Flag) {
		if !skip[f.Name] {
			common = append(common, "-"+f.Name+"="+f.Value.String())
		}
	})
	common = append(common, "-transport=tcp", fmt.Sprintf("-p=%d", procs))

	fmt.Printf("launching %d tcp worker processes (coordinator %s)\n", procs, coordinator)
	var mu sync.Mutex // line-atomic relay of worker output
	var wg sync.WaitGroup
	fails := make([]error, procs)
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			args := append(slices.Clone(common), "-coordinator="+coordinator, fmt.Sprintf("-rank=%d", r))
			cmd := exec.Command(exe, args...)
			out, err := cmd.StdoutPipe()
			if err != nil {
				fails[r] = err
				return
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				fails[r] = err
				return
			}
			sc := bufio.NewScanner(out)
			sc.Buffer(make([]byte, 1<<16), 1<<20)
			for sc.Scan() {
				mu.Lock()
				fmt.Printf("[rank %d] %s\n", r, sc.Text())
				mu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				fails[r] = fmt.Errorf("worker %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	code := 0
	for _, err := range fails {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	return code
}
