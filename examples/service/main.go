// Service usage: the prepare-once/sort-many regime on a drifting key
// distribution.
//
// A long-lived Sorter engine is built once (transport, worker world and
// scratch are reused across every call), a splitter Plan is prepared on
// the first batch, and subsequent batches are sorted with SortWithPlan
// — zero histogramming rounds while the distribution holds. As the
// workload drifts, the plan's splitters go stale and bucket loads skew;
// the staleness guard (Config.PlanStaleness) detects this with one
// cheap reduction per sort and re-histograms only then, after which a
// fresh Plan restores 0-round sorts.
//
// This is the operation-phase/training-phase split of a self-improving
// sorter: the paper's cheap histogramming is what makes re-planning
// affordable whenever the guard fires.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"os/signal"
	"time"

	"hssort"
)

const (
	procs    = 16
	perProc  = 40_000
	batches  = 8
	epsilon  = 0.05
	staleAt  = 1.5 // re-histogram when a bucket exceeds 1.5× its even share
	driftPer = 1 << 36
)

// batchShards draws one batch: uniform keys whose window slides upward
// by drift — a smoothly drifting distribution, as a time-keyed or
// load-keyed workload would produce.
func batchShards(batch int, drift int64) [][]int64 {
	shards := make([][]int64, procs)
	lo := int64(batch) * drift
	for r := range shards {
		rng := rand.New(rand.NewPCG(uint64(batch)*1000+uint64(r), 42))
		shards[r] = make([]int64, perProc)
		for i := range shards[r] {
			shards[r][i] = lo + rng.Int64N(1<<42)
		}
	}
	return shards
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Build the engine once. Everything heavyweight — config
	// validation, the transport, one goroutine per simulated rank,
	// per-rank scratch — happens here, not per sort.
	engine, err := hssort.New[int64](hssort.Config{
		Procs:         procs,
		Epsilon:       epsilon,
		Transport:     hssort.TransportInproc, // production-style throughput
		PlanStaleness: staleAt,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// Training phase: one Plan on the first batch.
	plan, err := engine.Plan(ctx, batchShards(0, driftPer))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d splitters, %d histogram rounds, %d sample keys, achieved eps %.4f (target %.4f)\n\n",
		len(plan.Splitters), plan.Rounds, plan.TotalSample, plan.AchievedEpsilon, plan.Epsilon)

	// Operation phase: sort every batch with the stored plan. The
	// distribution drifts batch by batch; the guard decides when the
	// plan has to be re-learned.
	fmt.Printf("%-7s %-10s %-10s %-12s %-10s %s\n",
		"batch", "rounds", "replanned", "imbalance", "wall", "note")
	for b := 1; b <= batches; b++ {
		if err := ctx.Err(); err != nil {
			log.Fatal(err)
		}
		shards := batchShards(b, driftPer)
		start := time.Now()
		_, stats, err := engine.SortWithPlan(ctx, plan, shards)
		if err != nil {
			log.Fatal(err)
		}
		note := "plan reused, histogramming skipped"
		if stats.Replanned {
			note = "plan stale -> re-histogrammed; refreshing plan"
			// Re-learn on the current distribution so the next batches
			// are cheap again.
			if plan, err = engine.Plan(ctx, batchShards(b, driftPer)); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-7d %-10d %-10v %-12.4f %-10v %s\n",
			b, stats.Rounds, stats.Replanned, stats.Imbalance,
			time.Since(start).Round(time.Millisecond), note)
	}

	fmt.Printf("\nplan-reuse batches skipped histogramming and stayed within the staleness bound (%.2f);\n", staleAt)
	fmt.Printf("whenever drift pushed a bucket past it, one re-histogram restored the %.4f target\n", 1+epsilon)
}
