package hssort

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
)

// ChaosConfig (Config.Chaos) wraps the sort's transport in a
// deterministic fault-injection layer: seeded per-message link faults
// (drops retransmitted after a delay, latency jitter, suppressed
// duplicates) and a one-shot rank crash at a named protocol phase. Link
// faults model a lossy network under its repair layer, so they add
// latency without changing any output — a chaos run is rank-identical
// to a clean one. A crash is real: the victim rank's endpoint dies
// (over TCP the peers see the socket sever) and surviving ranks fail
// with a *PeerCrashError naming the lost rank. The same Seed replays
// the same fault schedule.
type ChaosConfig struct {
	// Seed drives every fault decision; same seed, same schedule.
	Seed uint64
	// Drop, Delay, Dup are per-message probabilities (summing to at most
	// 1) of the three link faults.
	Drop, Delay, Dup float64
	// MaxDelay bounds the injected latency jitter. Default 2ms.
	MaxDelay time.Duration
	// CrashRank is the rank killed when CrashPhase or CrashAfterSends
	// triggers.
	CrashRank int
	// CrashPhase triggers the crash on CrashRank's first send of a named
	// sort phase: "start" (any message), "splitter" (sample gathering
	// and histogramming) or "exchange" (bucket data movement). Empty
	// disables phase-triggered crashing.
	CrashPhase string
	// CrashAfterSends triggers the crash on CrashRank's nth send
	// (counting all destinations). Zero disables.
	CrashAfterSends int
	// OnCrash, when set, replaces the default crash action (killing the
	// victim's transport endpoint). The multi-process harness uses it to
	// SIGKILL the victim process itself.
	OnCrash func(rank int)
}

// chaosPhases lists the CrashPhase values, in flag-help order.
var chaosPhases = []string{"start", "splitter", "exchange"}

// faultSpec validates the config and lowers it to the comm-layer fault
// schedule, mapping CrashPhase onto the sort's tag ranges.
func (cc *ChaosConfig) faultSpec(procs int) (comm.FaultSpec, error) {
	if cc.Drop < 0 || cc.Delay < 0 || cc.Dup < 0 || cc.Drop+cc.Delay+cc.Dup > 1 {
		return comm.FaultSpec{}, fmt.Errorf("hssort: chaos probabilities must be non-negative and sum to at most 1 (drop=%g delay=%g dup=%g)", cc.Drop, cc.Delay, cc.Dup)
	}
	spec := comm.FaultSpec{
		Seed:            cc.Seed,
		Drop:            cc.Drop,
		Delay:           cc.Delay,
		Dup:             cc.Dup,
		MaxDelay:        cc.MaxDelay,
		CrashRank:       cc.CrashRank,
		CrashAfterSends: cc.CrashAfterSends,
		OnCrash:         cc.OnCrash,
	}
	if cc.CrashPhase != "" {
		lo, hi, ok := core.PhaseTagRange(0, cc.CrashPhase)
		if !ok {
			return comm.FaultSpec{}, fmt.Errorf("hssort: unknown chaos crash phase %q (valid values: %s)", cc.CrashPhase, strings.Join(chaosPhases, ", "))
		}
		spec.CrashWhen = func(src, dst int, tag comm.Tag) bool {
			return tag >= lo && tag < hi
		}
	}
	if cc.CrashPhase != "" || cc.CrashAfterSends > 0 {
		if cc.CrashRank < 0 || cc.CrashRank >= procs {
			return comm.FaultSpec{}, fmt.Errorf("hssort: chaos crash rank %d out of range [0, %d)", cc.CrashRank, procs)
		}
	}
	return spec, nil
}

// ParseChaosSpec parses the command-line chaos syntax "seed:spec" where
// spec is a comma-separated list of faults:
//
//	drop=P  delay=P  dup=P      link-fault probabilities in [0, 1]
//	maxdelay=DUR                jitter bound (time.ParseDuration)
//	crash=RANK@PHASE            kill RANK at its first PHASE send
//	crash=RANK@sends:N          kill RANK at its Nth send
//
// PHASE is start, splitter or exchange. Example:
// "1:drop=0.01,delay=0.05,crash=2@exchange". An empty string returns
// nil (chaos off).
func ParseChaosSpec(s string) (*ChaosConfig, error) {
	if s == "" {
		return nil, nil
	}
	seedStr, spec, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("hssort: chaos spec %q: want \"seed:fault,fault,...\"", s)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("hssort: chaos seed %q: %v", seedStr, err)
	}
	cc := &ChaosConfig{Seed: seed}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("hssort: chaos fault %q: want key=value", field)
		}
		switch key {
		case "drop", "delay", "dup":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("hssort: chaos %s=%q: want a probability in [0, 1]", key, val)
			}
			switch key {
			case "drop":
				cc.Drop = p
			case "delay":
				cc.Delay = p
			case "dup":
				cc.Dup = p
			}
		case "maxdelay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("hssort: chaos maxdelay=%q: %v", val, err)
			}
			cc.MaxDelay = d
		case "crash":
			rankStr, when, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("hssort: chaos crash=%q: want RANK@PHASE or RANK@sends:N", val)
			}
			rank, err := strconv.Atoi(rankStr)
			if err != nil || rank < 0 {
				return nil, fmt.Errorf("hssort: chaos crash rank %q: want a non-negative rank", rankStr)
			}
			cc.CrashRank = rank
			if nStr, isSends := strings.CutPrefix(when, "sends:"); isSends {
				n, err := strconv.Atoi(nStr)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("hssort: chaos crash sends count %q: want a positive integer", nStr)
				}
				cc.CrashAfterSends = n
			} else {
				if _, _, ok := core.PhaseTagRange(0, when); !ok {
					return nil, fmt.Errorf("hssort: chaos crash phase %q (valid values: %s)", when, strings.Join(chaosPhases, ", "))
				}
				cc.CrashPhase = when
			}
		default:
			return nil, fmt.Errorf("hssort: unknown chaos fault %q (valid keys: drop, delay, dup, maxdelay, crash)", key)
		}
	}
	return cc, nil
}
