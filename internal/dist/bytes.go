package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// ByteKind names a byte-string key distribution. Each kind exercises a
// different prefix-code regime: HashLike keys diverge in the first byte
// (the prefix plane almost never ties), URLLike keys share an exact
// 8-byte scheme prefix (every key maps to the same code — the
// adversarial saturation case), and LogLines share a long common prefix
// that still fits inside the 8-byte code window only partially.
type ByteKind int

const (
	// HashLike emits hex digests: 32 lowercase hex characters drawn
	// uniformly. Codes are effectively unique, so the prefix plane
	// behaves like the bijective uint64 plane.
	HashLike ByteKind = iota
	// URLLike emits "https://" + host + path. The scheme is exactly 8
	// bytes, so every key shares one prefix code and all ordering
	// happens in the comparator tie-break — the worst case for the
	// prefix plane and the natural ε-saturation input.
	URLLike
	// LogLines emits "2026-08-DD HH:MM:SS level msg" timestamped lines.
	// The 8-byte code covers "2026-08-" plus nothing: all keys collide
	// on the code, like URLLike, but with longer, more varied tails.
	LogLines
)

// String returns the distribution name used in experiment output.
func (k ByteKind) String() string {
	switch k {
	case HashLike:
		return "hashlike"
	case URLLike:
		return "urllike"
	case LogLines:
		return "loglines"
	default:
		return "unknown"
	}
}

// ByteSpec describes a distribution over byte-string keys, the []byte
// counterpart of Spec. The same determinism contract holds: a shard
// depends only on (perRank, rank, seed), never on the other shards.
type ByteSpec struct {
	// Kind selects the distribution shape.
	Kind ByteKind
	// Hosts is the number of distinct hosts for URLLike (default 64).
	// Fewer hosts means heavier duplication of the bytes just past the
	// shared scheme prefix.
	Hosts int
}

// Shards builds all p shards: Shards(n, p, seed)[r] == Shard(n, r, p, seed).
func (s ByteSpec) Shards(perRank, p int, seed uint64) [][][]byte {
	out := make([][][]byte, p)
	for r := range out {
		out[r] = s.Shard(perRank, r, p, seed)
	}
	return out
}

// Shard generates rank r's perRank byte-string keys, deterministically
// from the arguments alone.
func (s ByteSpec) Shard(perRank, rank, p int, seed uint64) [][]byte {
	rng := rand.New(rand.NewPCG(seed, uint64(rank)+0x9e3779b97f4a7c15))
	keys := make([][]byte, perRank)
	switch s.Kind {
	case URLLike:
		hosts := s.Hosts
		if hosts <= 0 {
			hosts = 64
		}
		for i := range keys {
			keys[i] = urlKey(rng, hosts)
		}
	case LogLines:
		for i := range keys {
			keys[i] = logKey(rng)
		}
	default: // HashLike
		for i := range keys {
			keys[i] = hexKey(rng)
		}
	}
	return keys
}

const hexDigits = "0123456789abcdef"

// hexKey emits 32 uniform hex characters (a hash-digest lookalike).
func hexKey(rng *rand.Rand) []byte {
	k := make([]byte, 32)
	for off := 0; off < len(k); off += 16 {
		v := rng.Uint64()
		for j := 0; j < 16; j++ {
			k[off+j] = hexDigits[v&0xf]
			v >>= 4
		}
	}
	return k
}

// urlKey emits "https://hNN.example.com/<zipf-ish path>". The scheme is
// exactly 8 bytes wide, so the prefix code is identical for every key.
func urlKey(rng *rand.Rand, hosts int) []byte {
	// Log-uniform host rank: low-numbered hosts recur far more often,
	// mirroring real traffic skew (same idiom as Spec's Zipfian kind).
	h := int(math.Exp(rng.Float64()*math.Log(float64(hosts)))) - 1
	if h >= hosts {
		h = hosts - 1
	}
	depth := 1 + rng.IntN(3)
	key := fmt.Appendf(nil, "https://h%02d.example.com", h)
	for d := 0; d < depth; d++ {
		key = fmt.Appendf(key, "/p%04d", rng.IntN(10000))
	}
	return key
}

// logKey emits a timestamped log line; all lines share the 8-byte
// "2026-08-" prefix, so every prefix code collides.
func logKey(rng *rand.Rand) []byte {
	levels := [...]string{"DEBUG", "INFO", "WARN", "ERROR"}
	return fmt.Appendf(nil, "2026-08-%02d %02d:%02d:%02d %s worker=%d seq=%06d",
		1+rng.IntN(28), rng.IntN(24), rng.IntN(60), rng.IntN(60),
		levels[rng.IntN(len(levels))], rng.IntN(32), rng.IntN(1000000))
}
