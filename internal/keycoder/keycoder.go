package keycoder

import "math"

// signBit is the most significant bit of a 64-bit word.
const signBit = uint64(1) << 63

// Coder is an order-preserving bijection between keys of type K and uint64
// code points. Implementations must be stateless and safe for concurrent
// use.
type Coder[K any] interface {
	// Encode maps a key to its code point.
	Encode(K) uint64
	// Decode inverts Encode.
	Decode(uint64) K
}

// Uint64 is the identity coder for uint64 keys.
type Uint64 struct{}

// Encode returns k unchanged.
func (Uint64) Encode(k uint64) uint64 { return k }

// Decode returns c unchanged.
func (Uint64) Decode(c uint64) uint64 { return c }

// Int64 encodes signed 64-bit keys by flipping the sign bit, which maps the
// signed order onto the unsigned order.
type Int64 struct{}

// Encode maps an int64 to a uint64 preserving order.
func (Int64) Encode(k int64) uint64 { return uint64(k) ^ signBit }

// Decode inverts Encode.
func (Int64) Decode(c uint64) int64 { return int64(c ^ signBit) }

// Int32 encodes signed 32-bit keys via widening to Int64.
type Int32 struct{}

// Encode maps an int32 to a uint64 preserving order.
func (Int32) Encode(k int32) uint64 { return Int64{}.Encode(int64(k)) }

// Decode inverts Encode.
func (Int32) Decode(c uint64) int32 { return int32(Int64{}.Decode(c)) }

// Uint32 encodes unsigned 32-bit keys via widening.
type Uint32 struct{}

// Encode maps a uint32 to a uint64 preserving order.
func (Uint32) Encode(k uint32) uint64 { return uint64(k) }

// Decode inverts Encode.
func (Uint32) Decode(c uint64) uint32 { return uint32(c) }

// Float64 encodes IEEE-754 doubles with the standard total-order bit trick:
// negative values have all bits flipped, non-negative values have the sign
// bit set. The encoding orders -Inf < negative < -0 < +0 < positive < +Inf.
// NaN payloads round-trip but their position in the order is unspecified;
// callers sorting float data should filter NaNs first.
type Float64 struct{}

// Encode maps a float64 to a uint64 preserving numeric order.
func (Float64) Encode(k float64) uint64 {
	bits := math.Float64bits(k)
	if bits&signBit != 0 {
		return ^bits
	}
	return bits | signBit
}

// Decode inverts Encode.
func (Float64) Decode(c uint64) float64 {
	if c&signBit != 0 {
		return math.Float64frombits(c ^ signBit)
	}
	return math.Float64frombits(^c)
}

// Float32 encodes IEEE-754 singles with the same total-order bit trick
// as Float64, applied to the 32-bit pattern and widened to uint64 (like
// Int32, the image occupies the low 32 bits of code space, so Decode of
// an arbitrary uint64 truncates). NaN caveats match Float64.
type Float32 struct{}

// f32SignBit is the most significant bit of a 32-bit word.
const f32SignBit = uint32(1) << 31

// Encode maps a float32 to a uint64 preserving numeric order.
func (Float32) Encode(k float32) uint64 {
	bits := math.Float32bits(k)
	if bits&f32SignBit != 0 {
		return uint64(^bits)
	}
	return uint64(bits | f32SignBit)
}

// Decode inverts Encode.
func (Float32) Decode(c uint64) float32 {
	bits := uint32(c)
	if bits&f32SignBit != 0 {
		return math.Float32frombits(bits ^ f32SignBit)
	}
	return math.Float32frombits(^bits)
}

// Mid returns the midpoint of the inclusive code interval [lo, hi] without
// overflow. When hi <= lo it returns lo, so repeated bisection always
// terminates.
func Mid(lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)/2
}
