package hssort

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"os/exec"
	"runtime"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"hssort/internal/dist"
)

// tcp_test.go is the tcp backend's acceptance gate at the library
// level: rank-identical output vs the sim oracle across algorithms,
// exchange planes and code paths; engine cancellation over sockets
// returning ctx.Err(); the worker-mode engine (one process per rank);
// and a true multi-process run via re-exec of this test binary.

// keyDigest is a deterministic fingerprint of one rank's output.
func keyDigest(keys []int64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(b[:], uint64(k))
		h.Write(b[:])
	}
	return fmt.Sprintf("%d:%016x", len(keys), h.Sum64())
}

// TestTCPSortEquivalence: HSS, sample sort, classic histogram sort and
// NodeHSS produce rank-identical output over tcp (loopback mesh: real
// sockets, real serialization) and sim, across both exchange planes and
// both code paths, with identical protocol-level stats.
func TestTCPSortEquivalence(t *testing.T) {
	const p, perRank = 4, 2000
	algs := []struct {
		name string
		cfg  Config
	}{
		{"hss", Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}},
		{"samplesort", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 5}},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 7}},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 9}},
	}
	for _, alg := range algs {
		for _, stream := range []bool{false, true} {
			for _, cp := range []CodePath{CodePathOff, CodePathOn} {
				name := fmt.Sprintf("%s/stream=%v/codepath=%v", alg.name, stream, cp)
				t.Run(name, func(t *testing.T) {
					shards := dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.Shards(perRank, p, 17)
					cfg := alg.cfg
					cfg.StreamExchange = stream
					cfg.CodePath = cp

					simCfg := cfg
					simCfg.Transport = TransportSim
					simOuts, simStats, err := Sort(simCfg, cloneShards(shards))
					if err != nil {
						t.Fatalf("sim: %v", err)
					}

					tcpCfg := cfg
					tcpCfg.Transport = TransportTCP // zero TCPConfig: loopback mesh
					tcpOuts, tcpStats, err := Sort(tcpCfg, cloneShards(shards))
					if err != nil {
						t.Fatalf("tcp: %v", err)
					}

					for r := range simOuts {
						if !slices.Equal(simOuts[r], tcpOuts[r]) {
							t.Fatalf("rank %d output differs between sim and tcp (%d vs %d keys)",
								r, len(simOuts[r]), len(tcpOuts[r]))
						}
					}
					if simStats.Rounds != tcpStats.Rounds || simStats.TotalSample != tcpStats.TotalSample {
						t.Errorf("protocol stats differ: sim %d rounds/%d sample, tcp %d rounds/%d sample",
							simStats.Rounds, simStats.TotalSample, tcpStats.Rounds, tcpStats.TotalSample)
					}
					// tcp accounting is measured, not modeled — it will
					// not equal sim's numbers, but it must exist.
					if tcpStats.TotalBytes == 0 || tcpStats.TotalMsgs == 0 {
						t.Error("tcp transport reported no measured traffic")
					}
				})
			}
		}
	}
}

// TestTCPSortKVEquivalence: record payloads ride the wire codec
// (fixed-width KV structs move as bulk copies) rank-identically to sim.
func TestTCPSortKVEquivalence(t *testing.T) {
	const p, perRank = 4, 1500
	keys := dist.Spec{Kind: dist.Gaussian, Min: 0, Max: 1 << 30}.Shards(perRank, p, 23)
	mkShards := func() [][]KV[int64, int32] {
		shards := make([][]KV[int64, int32], p)
		for r := range shards {
			for i, k := range keys[r] {
				shards[r] = append(shards[r], KV[int64, int32]{Key: k, Val: int32(r*perRank + i)})
			}
		}
		return shards
	}
	sortWith := func(tr Transport) [][]KV[int64, int32] {
		t.Helper()
		cfg := Config{Procs: p, Epsilon: 0.05, Seed: 11, Transport: tr, StreamExchange: true}
		outs, _, err := SortKV(cfg, mkShards())
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		return outs
	}
	simOuts := sortWith(TransportSim)
	tcpOuts := sortWith(TransportTCP)
	for r := range simOuts {
		// Key sequences must match exactly; payload multisets per rank
		// must match (equal keys may legally swap payload order).
		if len(simOuts[r]) != len(tcpOuts[r]) {
			t.Fatalf("rank %d sizes differ: %d vs %d", r, len(simOuts[r]), len(tcpOuts[r]))
		}
		var simVals, tcpVals []int32
		for i := range simOuts[r] {
			if simOuts[r][i].Key != tcpOuts[r][i].Key {
				t.Fatalf("rank %d key %d differs", r, i)
			}
			simVals = append(simVals, simOuts[r][i].Val)
			tcpVals = append(tcpVals, tcpOuts[r][i].Val)
		}
		slices.Sort(simVals)
		slices.Sort(tcpVals)
		if !slices.Equal(simVals, tcpVals) {
			t.Fatalf("rank %d payload multiset differs", r)
		}
	}
}

// TestTCPEngineCancellation: cancelling a sort running over sockets
// returns ctx.Err() from the engine, the engine stays usable, and Close
// releases every socket and goroutine.
func TestTCPEngineCancellation(t *testing.T) {
	const p, perRank = 4, 20000
	before := runtime.NumGoroutine()
	{
		shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, 31)
		engine, err := New[int64](Config{Procs: p, Epsilon: 0.02, Seed: 3, Transport: TransportTCP, StreamExchange: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancelled before the run: every rank must unblock immediately
		if _, _, err := engine.Sort(ctx, cloneShards(shards)); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled sort returned %v, want context.Canceled", err)
		}

		ctx2, cancel2 := context.WithCancel(context.Background())
		time.AfterFunc(2*time.Millisecond, cancel2) // mid-flight
		_, _, err = engine.Sort(ctx2, cloneShards(shards))
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-flight cancel returned %v", err)
		}

		// The same engine — same mesh, post-abort — serves a clean sort.
		outs, _, err := engine.Sort(context.Background(), cloneShards(shards))
		if err != nil {
			t.Fatalf("sort after cancellation: %v", err)
		}
		var total int
		for r, o := range outs {
			if !slices.IsSorted(o) {
				t.Errorf("rank %d output not sorted after recovery", r)
			}
			total += len(o)
		}
		if total != p*perRank {
			t.Errorf("recovered sort moved %d keys, want %d", total, p*perRank)
		}
		engine.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------
// Worker mode (one engine per rank) and multi-process execution
// ---------------------------------------------------------------------

// freeLoopbackAddr reserves an ephemeral port and releases it for the
// coordinator to bind. The tiny bind race is covered by retries.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// workerConfig builds the worker-mode engine config for one rank.
func workerConfig(coordinator string, rank, procs int, stream bool, cp CodePath) Config {
	return Config{
		Procs:          procs,
		Algorithm:      HSS,
		Epsilon:        0.05,
		Seed:           3,
		Transport:      TransportTCP,
		StreamExchange: stream,
		CodePath:       cp,
		TCP: TCPConfig{
			Coordinator:      coordinator,
			Rank:             rank,
			BootstrapTimeout: 20 * time.Second,
		},
	}
}

// workerShards generates the deterministic global input every worker
// derives independently (mirroring how a real deployment gives each
// process its own shard of a common dataset).
func workerShards(procs, perRank int) [][]int64 {
	return dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.Shards(perRank, procs, 17)
}

// simDigests computes the oracle digests of the worker-mode input.
func simDigests(t *testing.T, procs, perRank int, runs int) [][]string {
	t.Helper()
	engine, err := New[int64](Config{Procs: procs, Algorithm: HSS, Epsilon: 0.05, Seed: 3, Transport: TransportSim})
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	out := make([][]string, runs)
	for run := 0; run < runs; run++ {
		outs, _, err := engine.Sort(context.Background(), cloneShards(workerShards(procs, perRank)))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			out[run] = append(out[run], keyDigest(o))
		}
	}
	return out
}

// TestTCPWorkerModeEngines: p engines, each hosting one rank of a TCP
// world (exactly the multi-process drive model, inside one test
// process), sort repeatedly through independent Resets. Each engine
// returns only its own rank's partition; the assembled digests match
// the sim oracle, run after run.
func TestTCPWorkerModeEngines(t *testing.T) {
	const p, perRank, runs = 4, 2000, 3
	want := simDigests(t, p, perRank, runs)

	var got [][]string
	for attempt := 0; ; attempt++ {
		digests, err := runWorkerEngines(p, perRank, runs)
		if err == nil {
			got = digests
			break
		}
		if attempt >= 2 {
			t.Fatalf("worker-mode engines failed after retries: %v", err)
		}
		t.Logf("retrying after bootstrap race: %v", err)
	}
	for run := 0; run < runs; run++ {
		if !slices.Equal(got[run], want[run]) {
			t.Errorf("run %d digests differ:\n tcp %v\n sim %v", run, got[run], want[run])
		}
	}
}

// runWorkerEngines drives one complete worker-mode world in-process.
func runWorkerEngines(p, perRank, runs int) ([][]string, error) {
	coordinator := ""
	{
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		coordinator = ln.Addr().String()
		ln.Close()
	}
	digests := make([][]string, runs)
	for i := range digests {
		digests[i] = make([]string, p)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				engine, err := New[int64](workerConfig(coordinator, r, p, true, CodePathAuto))
				if err != nil {
					return fmt.Errorf("rank %d: %w", r, err)
				}
				defer engine.Close()
				for run := 0; run < runs; run++ {
					shards := make([][]int64, p)
					shards[r] = slices.Clone(workerShards(p, perRank)[r])
					outs, stats, err := engine.Sort(context.Background(), shards)
					if err != nil {
						return fmt.Errorf("rank %d run %d: %w", r, run, err)
					}
					digests[run][r] = keyDigest(outs[r])
					if r == 0 && stats.N != int64(p*perRank) {
						return fmt.Errorf("rank 0 stats.N = %d, want %d", stats.N, p*perRank)
					}
					if r != 0 {
						for q, o := range outs {
							if q != r && o != nil {
								return fmt.Errorf("rank %d received rank %d's output", r, q)
							}
						}
					}
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	return digests, errors.Join(errs...)
}

// tcpWorkerEnv triggers worker mode in TestMain when this test binary
// is re-executed as a sort worker process.
const tcpWorkerEnv = "HSSORT_TCP_WORKER"

// runTCPWorker is the re-exec entry point: spec is
// "rank=R procs=P perRank=N runs=K coordinator=ADDR" plus the optional
// failure-survival fields "heartbeat=DUR peerTimeout=DUR rejoinWait=DUR
// rejoin=1 chaos=SEED:SPEC". It sorts through a worker-mode engine and
// prints one digest line per run; a chaos crash naming this rank
// SIGKILLs the process (a real kill -9, observed by the peers as a raw
// socket sever), while a *PeerCrashError from a peer's death is printed
// as a CRASH line and the run retried — the retry blocks in the
// transport's rejoin wait until the respawned rank heals the mesh.
func runTCPWorker(spec string) int {
	var rank, procs, perRank, runs, chunk int
	var budget int64
	var coordinator, chaosSpec, spillDir string
	var heartbeat, peerTimeout, rejoinWait time.Duration
	rejoin := false
	for _, f := range strings.Fields(spec) {
		k, v, _ := strings.Cut(f, "=")
		switch k {
		case "rank":
			fmt.Sscanf(v, "%d", &rank)
		case "procs":
			fmt.Sscanf(v, "%d", &procs)
		case "perRank":
			fmt.Sscanf(v, "%d", &perRank)
		case "runs":
			fmt.Sscanf(v, "%d", &runs)
		case "coordinator":
			coordinator = v
		case "heartbeat":
			heartbeat, _ = time.ParseDuration(v)
		case "peerTimeout":
			peerTimeout, _ = time.ParseDuration(v)
		case "rejoinWait":
			rejoinWait, _ = time.ParseDuration(v)
		case "rejoin":
			rejoin = v == "1"
		case "chaos":
			chaosSpec = v
		case "budget":
			fmt.Sscanf(v, "%d", &budget)
		case "spilldir":
			spillDir = v
		case "chunk":
			fmt.Sscanf(v, "%d", &chunk)
		}
	}
	cfg := workerConfig(coordinator, rank, procs, true, CodePathAuto)
	cfg.TCP.HeartbeatInterval = heartbeat
	cfg.TCP.PeerTimeout = peerTimeout
	cfg.TCP.RejoinWait = rejoinWait
	cfg.TCP.Rejoin = rejoin
	cfg.MemoryBudget = budget
	cfg.SpillDir = spillDir
	if chunk != 0 {
		cfg.ChunkKeys = chunk
	}
	if chaosSpec != "" {
		cc, err := ParseChaosSpec(chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d: %v\n", rank, err)
			return 1
		}
		cc.OnCrash = func(int) {
			// A real crash: no deferred Close, no shutdown handshake.
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill()
			select {} // unreachable; Kill is SIGKILL
		}
		cfg.Chaos = cc
	}
	engine, err := New[int64](cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %d: %v\n", rank, err)
		return 1
	}
	defer engine.Close()
	for run, attempts := 0, 0; run < runs; {
		shards := make([][]int64, procs)
		shards[rank] = slices.Clone(workerShards(procs, perRank)[rank])
		outs, stats, err := engine.Sort(context.Background(), shards)
		var crash *PeerCrashError
		if errors.As(err, &crash) {
			if attempts++; attempts > 5 {
				fmt.Fprintf(os.Stderr, "worker %d run %d: still crashed after %d attempts: %v\n", rank, run, attempts, err)
				return 1
			}
			fmt.Printf("CRASH run=%d rank=%d lost=%d\n", run, rank, crash.Rank)
			continue // retry the run; Reset waits out the rejoin
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker %d run %d: %v\n", rank, run, err)
			return 1
		}
		fmt.Printf("DIGEST run=%d rank=%d %s\n", run, rank, keyDigest(outs[rank]))
		if rank == 0 && stats.Respawns > 0 {
			fmt.Printf("RESPAWNS run=%d %d\n", run, stats.Respawns)
		}
		if rank == 0 && stats.SpilledBytes > 0 {
			fmt.Printf("SPILL run=%d bytes=%d\n", run, stats.SpilledBytes)
		}
		run++
	}
	return 0
}

// TestTCPMultiProcess is the real thing: four OS processes (re-execs of
// this test binary), a rendezvous over localhost, two sorts through
// each process's engine, rank-identical digests vs the sim oracle.
func TestTCPMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run")
	}
	const p, perRank, runs = 4, 2000, 2
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want := simDigests(t, p, perRank, runs)

	var lines []string
	for attempt := 0; ; attempt++ {
		lines, err = launchWorkers(t, exe, p, perRank, runs)
		if err == nil {
			break
		}
		if attempt >= 2 {
			t.Fatalf("worker processes failed after retries: %v", err)
		}
		t.Logf("retrying after bootstrap race: %v", err)
	}

	got := make([][]string, runs)
	for i := range got {
		got[i] = make([]string, p)
	}
	for _, line := range lines {
		var run, rank int
		var digest string
		if _, err := fmt.Sscanf(line, "DIGEST run=%d rank=%d %s", &run, &rank, &digest); err != nil {
			continue
		}
		got[run][rank] = digest
	}
	for run := 0; run < runs; run++ {
		if !slices.Equal(got[run], want[run]) {
			t.Errorf("run %d digests differ:\n tcp %v\n sim %v", run, got[run], want[run])
		}
	}
}

// launchWorkers forks p worker processes and collects their stdout.
func launchWorkers(t *testing.T, exe string, p, perRank, runs int) ([]string, error) {
	t.Helper()
	coordinator := freeLoopbackAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var mu sync.Mutex
	var lines []string
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cmd := exec.CommandContext(ctx, exe, "-test.run=NONE")
			cmd.Env = append(os.Environ(), fmt.Sprintf("%s=rank=%d procs=%d perRank=%d runs=%d coordinator=%s",
				tcpWorkerEnv, r, p, perRank, runs, coordinator))
			out, err := cmd.StdoutPipe()
			if err != nil {
				errs[r] = err
				return
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				errs[r] = err
				return
			}
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				mu.Lock()
				lines = append(lines, sc.Text())
				mu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				errs[r] = fmt.Errorf("worker %d: %w", r, err)
			}
		}(r)
	}
	wg.Wait()
	return lines, errors.Join(errs...)
}

// TestTCPMultiProcessKillRespawn is the failure-survival counterpart of
// TestTCPMultiProcess: four OS processes, one of which SIGKILLs itself
// mid-exchange of the first sort (a seeded chaos crash — a real kill
// -9, no shutdown handshake). The surviving processes report the crash
// as a *PeerCrashError naming the victim, the harness respawns the
// victim with the rejoin flag, the retried sort and the following one
// complete, and every digest matches the sim oracle.
func TestTCPMultiProcessKillRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill/respawn run")
	}
	const p, perRank, runs, victim = 4, 1500, 2, 2
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want := simDigests(t, p, perRank, runs)

	var lines []string
	for attempt := 0; ; attempt++ {
		lines, err = launchKillRespawn(t, exe, p, perRank, runs, victim)
		if err == nil {
			break
		}
		if attempt >= 2 {
			t.Fatalf("kill/respawn fleet failed after retries: %v", err)
		}
		t.Logf("retrying after bootstrap race: %v", err)
	}

	got := make([][]string, runs)
	for i := range got {
		got[i] = make([]string, p)
	}
	crashes := make(map[int]int) // reporting rank -> lost rank
	respawns := 0
	for _, line := range lines {
		var run, rank, lost, n int
		var digest string
		switch {
		case scanLine(line, "DIGEST run=%d rank=%d %s", &run, &rank, &digest):
			got[run][rank] = digest
		case scanLine(line, "CRASH run=%d rank=%d lost=%d", &run, &rank, &lost):
			crashes[rank] = lost
		case scanLine(line, "RESPAWNS run=%d %d", &run, &n):
			respawns = max(respawns, n)
		}
	}
	for run := 0; run < runs; run++ {
		if !slices.Equal(got[run], want[run]) {
			t.Errorf("run %d digests differ:\n tcp %v\n sim %v", run, got[run], want[run])
		}
	}
	// Every surviving process must have observed the same typed crash,
	// naming the same rank.
	if len(crashes) < p-1 {
		t.Errorf("only %d of %d survivors reported the crash: %v", len(crashes), p-1, crashes)
	}
	for rank, lost := range crashes {
		if lost != victim {
			t.Errorf("rank %d reported lost rank %d, want %d", rank, lost, victim)
		}
	}
	// The respawn is visible in the post-rejoin run's aggregated stats:
	// each survivor adopted one rejoined edge and the joiner respawned.
	if respawns < p-1 {
		t.Errorf("rank 0 stats report %d respawns, want >= %d", respawns, p-1)
	}
}

// scanLine is a strict Sscanf wrapper: true only when every field
// matched.
func scanLine(line, format string, args ...any) bool {
	n, err := fmt.Sscanf(line, format, args...)
	return err == nil && n == len(args)
}

// launchKillRespawn forks the kill/respawn worker fleet: p-1 survivors
// with heartbeats and a rejoin wait, one victim armed with a seeded
// self-SIGKILL at its first exchange-phase send. When the victim dies
// (which must be by signal, not a clean exit), it is relaunched with
// rejoin=1; all stdout lines are collected.
func launchKillRespawn(t *testing.T, exe string, p, perRank, runs, victim int) ([]string, error) {
	t.Helper()
	coordinator := freeLoopbackAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var mu sync.Mutex
	var lines []string
	// run starts one worker process and blocks until it exits, draining
	// its stdout to EOF before Wait (Wait closes the pipe).
	run := func(spec string) error {
		cmd := exec.CommandContext(ctx, exe, "-test.run=NONE")
		cmd.Env = append(os.Environ(), tcpWorkerEnv+"="+spec)
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			mu.Unlock()
		}
		return cmd.Wait()
	}
	base := func(r int) string {
		return fmt.Sprintf("rank=%d procs=%d perRank=%d runs=%d coordinator=%s heartbeat=500ms peerTimeout=5s rejoinWait=60s",
			r, p, perRank, runs, coordinator)
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				if r != victim {
					if err := run(base(r)); err != nil {
						return fmt.Errorf("worker %d: %w", r, err)
					}
					return nil
				}
				// The victim: armed to SIGKILL itself at its first
				// exchange-phase send of the first sort.
				if err := run(base(r) + fmt.Sprintf(" chaos=9:crash=%d@exchange", victim)); err == nil {
					return fmt.Errorf("victim exited cleanly; the chaos crash never fired")
				}
				// Respawn with the rejoin handshake; it re-registers with
				// the coordinator, redials the survivors and re-executes
				// its shard from run 0.
				if err := run(base(r) + " rejoin=1"); err != nil {
					return fmt.Errorf("respawned victim: %w", err)
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	return lines, errors.Join(errs...)
}

// TestTCPMultiProcessSpillKillRespawn is the out-of-core plane's
// crash-survival gate: four OS processes sorting out of core (a
// MemoryBudget of a quarter of each rank's data, small streamed
// chunks, a shared SpillDir), one of which SIGKILLs itself
// mid-exchange — while spill runs from its budget-squeezed local sort
// sit on disk and the survivors hold open divert writers. The
// survivors report the typed *PeerCrashError, the respawned victim
// wipes its crashed predecessor's orphaned run files when it reclaims
// the rank directory, every digest matches the in-memory sim oracle,
// and after the fleet closes the shared SpillDir is empty — no
// orphaned run files survive.
func TestTCPMultiProcessSpillKillRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill/respawn run")
	}
	const p, perRank, runs, victim = 4, 20000, 2, 2
	budget := int64(perRank) * 8 / 4
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want := simDigests(t, p, perRank, runs)
	spillDir := t.TempDir()

	var lines []string
	for attempt := 0; ; attempt++ {
		lines, err = launchSpillKillRespawn(t, exe, p, perRank, runs, victim, budget, spillDir)
		if err == nil {
			break
		}
		if attempt >= 2 {
			t.Fatalf("spill kill/respawn fleet failed after retries: %v", err)
		}
		t.Logf("retrying after bootstrap race: %v", err)
	}

	got := make([][]string, runs)
	for i := range got {
		got[i] = make([]string, p)
	}
	crashes := make(map[int]int)
	spilled := make(map[int]int64) // run -> global spilled bytes (rank 0's aggregate)
	for _, line := range lines {
		var run, rank, lost int
		var bytes int64
		var digest string
		switch {
		case scanLine(line, "DIGEST run=%d rank=%d %s", &run, &rank, &digest):
			got[run][rank] = digest
		case scanLine(line, "CRASH run=%d rank=%d lost=%d", &run, &rank, &lost):
			crashes[rank] = lost
		case scanLine(line, "SPILL run=%d bytes=%d", &run, &bytes):
			spilled[run] = bytes
		}
	}
	for run := 0; run < runs; run++ {
		if !slices.Equal(got[run], want[run]) {
			t.Errorf("run %d digests differ:\n tcp %v\n sim %v", run, got[run], want[run])
		}
		if spilled[run] == 0 {
			t.Errorf("run %d reports no spilled bytes; the budget never engaged", run)
		}
	}
	if len(crashes) < p-1 {
		t.Errorf("only %d of %d survivors reported the crash: %v", len(crashes), p-1, crashes)
	}
	for rank, lost := range crashes {
		if lost != victim {
			t.Errorf("rank %d reported lost rank %d, want %d", rank, lost, victim)
		}
	}
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("SpillDir holds orphans after the fleet closed: %v", names)
	}
}

// launchSpillKillRespawn forks the out-of-core kill/respawn fleet:
// every worker sorts under the given MemoryBudget with run files in
// the shared spillDir, and the victim is armed with a seeded
// self-SIGKILL at its first exchange-phase send.
func launchSpillKillRespawn(t *testing.T, exe string, p, perRank, runs, victim int, budget int64, spillDir string) ([]string, error) {
	t.Helper()
	coordinator := freeLoopbackAddr(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var mu sync.Mutex
	var lines []string
	run := func(spec string) error {
		cmd := exec.CommandContext(ctx, exe, "-test.run=NONE")
		cmd.Env = append(os.Environ(), tcpWorkerEnv+"="+spec)
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			mu.Unlock()
		}
		return cmd.Wait()
	}
	base := func(r int) string {
		return fmt.Sprintf("rank=%d procs=%d perRank=%d runs=%d coordinator=%s heartbeat=500ms peerTimeout=5s rejoinWait=60s budget=%d spilldir=%s chunk=1024",
			r, p, perRank, runs, coordinator, budget, spillDir)
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				if r != victim {
					if err := run(base(r)); err != nil {
						return fmt.Errorf("worker %d: %w", r, err)
					}
					return nil
				}
				if err := run(base(r) + fmt.Sprintf(" chaos=9:crash=%d@exchange", victim)); err == nil {
					return fmt.Errorf("victim exited cleanly; the chaos crash never fired")
				}
				if err := run(base(r) + " rejoin=1"); err != nil {
					return fmt.Errorf("respawned victim: %w", err)
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	return lines, errors.Join(errs...)
}
