package rankoracle

import (
	"cmp"
	"fmt"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

// buildGlobal sorts the union of shards for ground-truth ranks.
func buildGlobal(shards [][]int64) []int64 {
	var all []int64
	for _, s := range shards {
		all = append(all, s...)
	}
	slices.Sort(all)
	return all
}

func trueRank(global []int64, q int64) int64 {
	lo, hi := 0, len(global)
	for lo < hi {
		mid := (lo + hi) / 2
		if global[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}

func TestOracleTheorem341Accuracy(t *testing.T) {
	// p processors, N/p keys each; with the theorem's sample size every
	// query must be within N·ε/p — we allow 3× the bound to absorb the
	// "w.h.p." slack on one fixed seed.
	const p, perRank = 8, 20000
	const eps = 0.1
	spec := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 40}
	shards := spec.Shards(perRank, p, 3)
	global := buildGlobal(shards)
	probes := make([]int64, 50)
	for i := range probes {
		probes[i] = global[i*len(global)/len(probes)]
	}
	var estimates []int64
	var bound int64
	w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		o, err := New(c, local, Options[int64]{Cmp: icmp, Epsilon: eps, Seed: 7})
		if err != nil {
			return err
		}
		est, err := o.Query(probes)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			estimates = est
			bound = o.ErrorBound()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("error bound %d", bound)
	}
	worst := int64(0)
	for i, q := range probes {
		diff := estimates[i] - trueRank(global, q)
		if diff < 0 {
			diff = -diff
		}
		if diff > worst {
			worst = diff
		}
	}
	if worst > 3*bound {
		t.Errorf("worst rank error %d exceeds 3x the theorem bound %d", worst, 3*bound)
	}
}

func TestOracleQueriesAgreeAcrossRanks(t *testing.T) {
	const p = 5
	spec := dist.Spec{Kind: dist.Gaussian}
	shards := spec.Shards(4000, p, 9)
	probes := []int64{1 << 50, 1 << 60, 1 << 61}
	results := make([][]int64, p)
	w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		o, err := New(c, local, Options[int64]{Cmp: icmp})
		if err != nil {
			return err
		}
		est, err := o.Query(probes)
		if err != nil {
			return err
		}
		results[c.Rank()] = est
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if !slices.Equal(results[r], results[0]) {
			t.Fatalf("rank %d estimates differ", r)
		}
	}
}

func TestOracleExtremeProbes(t *testing.T) {
	const p = 3
	spec := dist.Spec{Kind: dist.Uniform, Min: 100, Max: 1000}
	shards := spec.Shards(3000, p, 4)
	w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		o, err := New(c, local, Options[int64]{Cmp: icmp})
		if err != nil {
			return err
		}
		est, err := o.Query([]int64{0, 1 << 60})
		if err != nil {
			return err
		}
		if est[0] != 0 {
			return fmt.Errorf("below-everything probe rank %d", est[0])
		}
		if est[1] != o.N {
			return fmt.Errorf("above-everything probe rank %d, want %d", est[1], o.N)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOracleEmptyInput(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(10*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		o, err := New(c, []int64{}, Options[int64]{Cmp: icmp})
		if err != nil {
			return err
		}
		est, err := o.Query([]int64{5})
		if err != nil {
			return err
		}
		if est[0] != 0 {
			return fmt.Errorf("empty oracle rank %d", est[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOracleRejectsMissingCmp(t *testing.T) {
	w := comm.NewWorld(1, comm.WithTimeout(5*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		if _, err := New(c, []int64{1}, Options[int64]{}); err == nil {
			return fmt.Errorf("missing Cmp accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOracleSampleSizeDefault(t *testing.T) {
	const p = 4
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := make([]int64, 10000)
		for i := range local {
			local[i] = int64(i)
		}
		o, err := New(c, local, Options[int64]{Cmp: icmp, Epsilon: 0.05})
		if err != nil {
			return err
		}
		// √(2·4·ln4)/0.05 ≈ 94; the sample is capped by n.
		if o.SampleSize() < 50 || o.SampleSize() > 200 {
			return fmt.Errorf("sample size %d outside expected band", o.SampleSize())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
