package exactsplit

import (
	"fmt"
	"sort"
	"time"

	"hssort/internal/collective"
	"hssort/internal/comm"
)

// Options configures Select. Cmp is required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// MaxRounds caps selection rounds (safety net; weighted-median
	// narrowing needs ~log_{4/3} N). Default 200.
	MaxRounds int
	// BaseTag is the tag range start (6 tags). Default 9000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults() (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("exactsplit: Options.Cmp is required")
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 200
	}
	if o.BaseTag == 0 {
		o.BaseTag = 9000
	}
	return o, nil
}

// Tag offsets within BaseTag.
const (
	tagProposals = 0 // per-target window medians + sizes (gather)
	tagPivots    = 1 // pivot broadcast
	tagRanks     = 2 // pivot rank histogram (reduce)
	tagResult    = 3 // final keys broadcast
	tagCount     = 4 // N all-reduce (+1)
)

// proposal is one rank's per-target candidate: its window median and the
// window population backing it.
type proposal[K any] struct {
	Key    K
	Weight int64
	Valid  bool
}

// Select returns, for each target rank t (0 <= t < N over all ranks'
// keys), a key k with rank(k) <= t < rank(k) + multiplicity(k): the key
// occupying global position t in the sorted order. All ranks must call
// Select collectively with identical targets over locally sorted data;
// all ranks receive the same keys.
func Select[K any](c *comm.Comm, sortedLocal []K, targets []int64, opt Options[K]) ([]K, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	base := opt.BaseTag
	root := 0
	me := c.Rank()

	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(sortedLocal))}, collective.SumInt64)
	if err != nil {
		return nil, err
	}
	n := nVec[0]
	for _, t := range targets {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("exactsplit: target rank %d outside [0, %d)", t, n)
		}
	}
	m := len(targets)
	if m == 0 {
		return []K{}, nil
	}

	// Per-target local windows [lo, hi) into sortedLocal.
	lo := make([]int, m)
	hi := make([]int, m)
	for i := range hi {
		hi[i] = len(sortedLocal)
	}
	// Root-side bookkeeping.
	type state[K2 any] struct {
		resolved bool
		key      K
	}
	var states []state[K]
	if me == root {
		states = make([]state[K], m)
	}

	for round := 0; round < opt.MaxRounds; round++ {
		// Every rank proposes its window median per target.
		props := make([]proposal[K], m)
		for i := range targets {
			if hi[i] > lo[i] {
				props[i] = proposal[K]{
					Key:    sortedLocal[(lo[i]+hi[i])/2],
					Weight: int64(hi[i] - lo[i]),
					Valid:  true,
				}
			}
		}
		gathered, err := collective.Gatherv(c, root, base+tagProposals, props)
		if err != nil {
			return nil, err
		}

		// Root picks one pivot per unresolved target: the weighted
		// median of the ranks' medians.
		var pivots []proposal[K]
		if me == root {
			pivots = make([]proposal[K], m)
			done := true
			for i := range targets {
				if states[i].resolved {
					continue
				}
				pivot, ok := weightedMedian(gathered, i, opt.Cmp)
				if !ok {
					// No rank has active keys yet the target is
					// unresolved: protocol invariant broken.
					return nil, fmt.Errorf("exactsplit: target %d lost its window", targets[i])
				}
				pivots[i] = proposal[K]{Key: pivot, Valid: true}
				done = false
			}
			if done {
				pivots = nil // signals completion
			}
		}
		pivots, err = collective.Bcast(c, root, base+tagPivots, pivots)
		if err != nil {
			return nil, err
		}
		if pivots == nil {
			break
		}

		// Histogram the pivots exactly: global (#< pivot, #<= pivot).
		counts := make([]int64, 2*m)
		for i := range targets {
			if !pivots[i].Valid {
				continue
			}
			lt, le := localSpan(sortedLocal, pivots[i].Key, opt.Cmp)
			counts[2*i] = lt
			counts[2*i+1] = le
		}
		global, err := collective.Reduce(c, root, base+tagRanks, counts, collective.SumInt64)
		if err != nil {
			return nil, err
		}

		// Root classifies each pivot; every rank then narrows windows.
		// The narrowing decision is a pure function of (pivot, verdict),
		// broadcast as per-target verdicts encoded in the pivot slice.
		verdicts := make([]int8, m) // -1: go left, 0: resolved, +1: go right
		if me == root {
			for i, t := range targets {
				if states[i].resolved || !pivots[i].Valid {
					verdicts[i] = 0
					continue
				}
				ltRank, leRank := global[2*i], global[2*i+1]
				switch {
				case t < ltRank:
					verdicts[i] = -1
				case t >= leRank:
					verdicts[i] = 1
				default:
					verdicts[i] = 0
					states[i].resolved = true
					states[i].key = pivots[i].Key
				}
			}
		}
		verdicts, err = collective.Bcast(c, root, base+tagPivots+10, verdicts)
		if err != nil {
			return nil, err
		}
		for i := range targets {
			if !pivots[i].Valid {
				continue
			}
			switch verdicts[i] {
			case -1:
				// Keep keys strictly below the pivot.
				hi[i] = lo[i] + sort.Search(hi[i]-lo[i], func(j int) bool {
					return opt.Cmp(sortedLocal[lo[i]+j], pivots[i].Key) >= 0
				})
			case 1:
				// Keep keys strictly above the pivot.
				lo[i] = lo[i] + sort.Search(hi[i]-lo[i], func(j int) bool {
					return opt.Cmp(sortedLocal[lo[i]+j], pivots[i].Key) > 0
				})
			}
		}
	}

	// Broadcast the resolved keys.
	var result []K
	if me == root {
		result = make([]K, m)
		for i, st := range states {
			if !st.resolved {
				return nil, fmt.Errorf("exactsplit: target %d unresolved after %d rounds", targets[i], opt.MaxRounds)
			}
			result[i] = st.key
		}
	}
	result, err = collective.Bcast(c, root, base+tagResult, result)
	if err != nil {
		return nil, err
	}
	if me != root && len(result) != m {
		return nil, fmt.Errorf("exactsplit: truncated result")
	}
	return result, nil
}

// weightedMedian returns the weighted median of the ranks' proposals for
// target i: the smallest proposed key whose cumulative weight reaches
// half the total.
func weightedMedian[K any](gathered [][]proposal[K], i int, cmp func(K, K) int) (K, bool) {
	type wk struct {
		key K
		w   int64
	}
	var items []wk
	var total int64
	for _, rankProps := range gathered {
		p := rankProps[i]
		if p.Valid && p.Weight > 0 {
			items = append(items, wk{key: p.Key, w: p.Weight})
			total += p.Weight
		}
	}
	if len(items) == 0 {
		var zero K
		return zero, false
	}
	sort.Slice(items, func(a, b int) bool { return cmp(items[a].key, items[b].key) < 0 })
	var acc int64
	for _, it := range items {
		acc += it.w
		if 2*acc >= total {
			return it.key, true
		}
	}
	return items[len(items)-1].key, true
}

// localSpan returns (#keys < q, #keys <= q) in the local sorted data.
func localSpan[K any](sorted []K, q K, cmp func(K, K) int) (lt, le int64) {
	lt = int64(sort.Search(len(sorted), func(j int) bool { return cmp(sorted[j], q) >= 0 }))
	le = int64(sort.Search(len(sorted), func(j int) bool { return cmp(sorted[j], q) > 0 }))
	return lt, le
}

// PerfectSplitters returns the p-1 keys that partition n keys into p
// perfectly balanced buckets (targets N·i/p), the §2.1 reference point.
// Wall time is dominated by O(log N) histogram rounds.
func PerfectSplitters[K any](c *comm.Comm, sortedLocal []K, buckets int, opt Options[K]) ([]K, time.Duration, error) {
	start := time.Now()
	nVec, err := collective.AllReduce(c, opt.BaseTag+20, []int64{int64(len(sortedLocal))}, collective.SumInt64)
	if err != nil {
		return nil, 0, err
	}
	n := nVec[0]
	if buckets < 2 || n == 0 {
		return []K{}, time.Since(start), nil
	}
	targets := make([]int64, 0, buckets-1)
	for i := 1; i < buckets; i++ {
		t := n * int64(i) / int64(buckets)
		if t >= n {
			t = n - 1
		}
		targets = append(targets, t)
	}
	keys, err := Select(c, sortedLocal, targets, opt)
	return keys, time.Since(start), err
}
