package spill

import (
	"errors"
	"fmt"
)

// ErrCorrupt marks a run file whose stored frames fail validation —
// a bad magic number, a checksum mismatch, an impossible frame header,
// a malformed delta stream, or a file that ends without its final
// marker. It is always wrapped in a *Error; callers branch with
// errors.Is.
var ErrCorrupt = errors.New("corrupt spill data")

// Error is the typed failure of the out-of-core plane: any disk
// operation (create, write, sync, read, remove) or frame validation
// that fails surfaces as a *Error naming the operation and the run-file
// path, wrapping the underlying cause (an *os.PathError, ErrCorrupt,
// ...). The root package re-exports it as hssort.SpillError.
type Error struct {
	// Op is the failed operation: "create", "write", "finish", "open",
	// "read", "decode", "remove".
	Op string
	// Path is the run file (or directory) involved.
	Path string
	// Err is the underlying cause.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("spill: %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// corrupt builds the *Error for a validation failure.
func corrupt(op, path, format string, args ...any) error {
	return &Error{Op: op, Path: path, Err: fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)}
}
