package sampling

import (
	"cmp"
	"math"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 17)) }

func TestBernoulliEdgeCases(t *testing.T) {
	keys := []int64{1, 2, 3}
	if got := Bernoulli(keys, 0, rng(1)); len(got) != 0 {
		t.Errorf("prob 0 sampled %v", got)
	}
	if got := Bernoulli(keys, -0.5, rng(1)); len(got) != 0 {
		t.Errorf("negative prob sampled %v", got)
	}
	if got := Bernoulli(keys, 1, rng(1)); !slices.Equal(got, keys) {
		t.Errorf("prob 1 sampled %v", got)
	}
	if got := Bernoulli(keys, 2, rng(1)); !slices.Equal(got, keys) {
		t.Errorf("prob 2 sampled %v", got)
	}
	if got := Bernoulli([]int64{}, 0.5, rng(1)); len(got) != 0 {
		t.Errorf("empty input sampled %v", got)
	}
}

func TestBernoulliPreservesOrderNoDuplicates(t *testing.T) {
	keys := make([]int, 10000)
	for i := range keys {
		keys[i] = i
	}
	got := Bernoulli(keys, 0.05, rng(2))
	if !slices.IsSorted(got) {
		t.Error("sample out of order")
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatal("index sampled twice")
		}
	}
}

func TestBernoulliMeanConcentrates(t *testing.T) {
	const n = 200000
	const prob = 0.01
	keys := make([]byte, n)
	total := 0
	for trial := uint64(0); trial < 5; trial++ {
		total += len(Bernoulli(keys, prob, rng(trial)))
	}
	mean := float64(total) / 5
	want := float64(n) * prob
	if math.Abs(mean-want) > want*0.1 {
		t.Errorf("mean sample size %.0f, want ~%.0f", mean, want)
	}
}

func TestBernoulliIndicesMatchesNaive(t *testing.T) {
	// Statistical cross-check: per-index inclusion frequency over many
	// trials approximates prob for every index (no positional bias).
	const n = 50
	const prob = 0.3
	const trials = 4000
	counts := make([]int, n)
	r := rng(3)
	for trial := 0; trial < trials; trial++ {
		BernoulliIndices(n, prob, r, func(i int) { counts[i]++ })
	}
	for i, c := range counts {
		f := float64(c) / trials
		if math.Abs(f-prob) > 0.05 {
			t.Errorf("index %d inclusion freq %.3f, want ~%.3f", i, f, prob)
		}
	}
}

// TestBernoulliTinyProbNoOverflow is the regression test for the
// geometric-skip overflow: at prob = 1e-300 the float64 skip is ~1e300,
// far beyond MaxInt. The old int conversion wrapped platform-defined and
// i += 1 + skip could go negative, panicking emit(i) with a bogus index.
// The skip must instead cap at the remaining length and emit nothing.
func TestBernoulliTinyProbNoOverflow(t *testing.T) {
	r := rng(7)
	for trial := 0; trial < 1000; trial++ {
		BernoulliIndices(1000, 1e-300, r, func(i int) {
			if i < 0 || i >= 1000 {
				t.Fatalf("emitted out-of-range index %d", i)
			}
			t.Fatalf("prob 1e-300 emitted index %d", i)
		})
	}
	// Just-in-range skips: probabilities around 1e-17 put the skip near
	// the int64 boundary where the wrap used to happen.
	for _, prob := range []float64{1e-16, 1e-17, 1e-18, 1e-19} {
		for trial := 0; trial < 1000; trial++ {
			BernoulliIndices(1000, prob, r, func(i int) {
				if i < 0 || i >= 1000 {
					t.Fatalf("prob %g emitted out-of-range index %d", prob, i)
				}
			})
		}
	}
}

func TestRegularSpacing(t *testing.T) {
	sorted := make([]int64, 100)
	for i := range sorted {
		sorted[i] = int64(i)
	}
	got := Regular(sorted, 4)
	want := []int64{24, 49, 74, 99}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestRegularEdgeCases(t *testing.T) {
	if got := Regular([]int64{}, 4); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
	if got := Regular([]int64{5}, 0); len(got) != 0 {
		t.Errorf("s=0: %v", got)
	}
	in := []int64{1, 2, 3}
	got := Regular(in, 10)
	if !slices.Equal(got, in) {
		t.Errorf("s>n: %v", got)
	}
	got[0] = 99
	if in[0] == 99 {
		t.Error("s>n case aliased input")
	}
}

func TestRegularProperty(t *testing.T) {
	// s samples from n sorted keys: result sorted, correct length,
	// last sample is the maximum.
	f := func(nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%2000) + 1
		s := int(sRaw%50) + 1
		sorted := make([]int, n)
		for i := range sorted {
			sorted[i] = i * 2
		}
		got := Regular(sorted, s)
		wantLen := min(s, n)
		if len(got) != wantLen {
			return false
		}
		if !slices.IsSorted(got) {
			return false
		}
		return got[len(got)-1] == sorted[n-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBlockOnePerBlock(t *testing.T) {
	n, s := 100, 10
	sorted := make([]int, n)
	for i := range sorted {
		sorted[i] = i
	}
	got := RandomBlock(sorted, s, rng(4))
	if len(got) != s {
		t.Fatalf("got %d samples, want %d", len(got), s)
	}
	for i, v := range got {
		lo, hi := i*n/s, (i+1)*n/s
		if v < lo || v >= hi {
			t.Errorf("sample %d = %d outside its block [%d,%d)", i, v, lo, hi)
		}
	}
	if !slices.IsSorted(got) {
		t.Error("block samples not sorted")
	}
}

func TestRandomBlockEdgeCases(t *testing.T) {
	if got := RandomBlock([]int{}, 3, rng(1)); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := RandomBlock([]int{7}, 5, rng(1)); !slices.Equal(got, []int{7}) {
		t.Errorf("s>n: %v", got)
	}
}

func TestRepresentativeRankAccuracy(t *testing.T) {
	// Theorem 3.4.1 shape check on one processor: with s = sqrt(2p lnp)/eps
	// the estimated local rank is within (eps/sqrt(p-ish)) * n of truth;
	// locally we just require error <= n/s * small factor.
	const n = 100000
	sorted := make([]int64, n)
	for i := range sorted {
		sorted[i] = int64(i * 3)
	}
	s := 1000
	rep := NewRepresentative(sorted, s, rng(5))
	icmp := func(a, b int64) int { return cmp.Compare(a, b) }
	maxErr := int64(0)
	for probe := int64(0); probe < int64(n*3); probe += 9999 {
		est := rep.LocalRank(probe, icmp)
		truth := int64(0)
		for _, k := range sorted {
			if k < probe {
				truth++
			} else {
				break
			}
		}
		err := est - truth
		if err < 0 {
			err = -err
		}
		if err > maxErr {
			maxErr = err
		}
	}
	// Each sample key stands for n/s keys; the estimator error per query
	// is O(blockLen) here (single processor, no averaging).
	if maxErr > int64(3*n/s) {
		t.Errorf("max rank error %d exceeds 3 blocks (%d)", maxErr, 3*n/s)
	}
}

func TestRepresentativeEmpty(t *testing.T) {
	rep := NewRepresentative([]int64{}, 10, rng(1))
	if got := rep.LocalRank(5, func(a, b int64) int { return cmp.Compare(a, b) }); got != 0 {
		t.Errorf("empty representative rank = %d", got)
	}
}

func TestRatioScheduleShape(t *testing.T) {
	p, eps := 1024, 0.05
	for _, k := range []int{1, 2, 3, 5} {
		sched := RatioSchedule(p, eps, k)
		if len(sched) != k {
			t.Fatalf("k=%d: len %d", k, len(sched))
		}
		// Monotone increasing, last equals the one-round ratio.
		for i := 1; i < k; i++ {
			if sched[i] <= sched[i-1] {
				t.Errorf("k=%d: schedule not increasing: %v", k, sched)
			}
		}
		want := OneRoundRatio(p, eps)
		if math.Abs(sched[k-1]-want)/want > 1e-9 {
			t.Errorf("k=%d: final ratio %.4f, want %.4f", k, sched[k-1], want)
		}
		// Geometric: s_j / s_{j-1} constant.
		if k >= 3 {
			r1 := sched[1] / sched[0]
			r2 := sched[2] / sched[1]
			if math.Abs(r1-r2)/r1 > 1e-9 {
				t.Errorf("k=%d: schedule not geometric: %v", k, sched)
			}
		}
	}
}

func TestOneRoundRatioMatchesPaperExample(t *testing.T) {
	// §1: p = 64*10^3, eps = 0.05 → sample ≈ p * 2 ln p / eps keys ≈
	// 250 MB at 8 bytes/key (the paper's "250 MB for HSS with one round").
	p := 64000
	s := OneRoundRatio(p, 0.05)
	bytes := float64(p) * s * 8
	if bytes < 150e6 || bytes > 500e6 {
		t.Errorf("one-round sample = %.0f MB, paper says ~250 MB", bytes/1e6)
	}
}

func TestAutoRounds(t *testing.T) {
	if k := AutoRounds(2, 1); k < 1 {
		t.Errorf("AutoRounds floor broken: %d", k)
	}
	// ln(ln(64000)/0.05) = ln(221.6) ≈ 5.4 → 6
	if k := AutoRounds(64000, 0.05); k != 6 {
		t.Errorf("AutoRounds(64000, 0.05) = %d, want 6", k)
	}
	// Monotone in p.
	if AutoRounds(1<<20, 0.05) < AutoRounds(1<<10, 0.05) {
		t.Error("AutoRounds not monotone in p")
	}
}

func TestExpectedRoundsFixedMatchesTable61(t *testing.T) {
	// Table 6.1: f = 5, eps = 0.02, p in 4K..32K → bound = 8.
	for _, p := range []int{4096, 8192, 16384, 32768} {
		got, err := ExpectedRoundsFixed(p, 0.02, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got != 8 {
			t.Errorf("p=%d: bound %d, paper says 8", p, got)
		}
	}
	if _, err := ExpectedRoundsFixed(1024, 0.02, 2); err == nil {
		t.Error("f=2 accepted; bound diverges")
	}
}

func TestRepresentativeSize(t *testing.T) {
	// sqrt(2 * 10^4 * ln 10^4)/0.05: positive and growing with p.
	a := RepresentativeSize(100, 0.05)
	b := RepresentativeSize(10000, 0.05)
	if a <= 0 || b <= a {
		t.Errorf("RepresentativeSize not increasing: %d, %d", a, b)
	}
}

func BenchmarkBernoulli(b *testing.B) {
	keys := make([]int64, 1<<20)
	r := rng(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bernoulli(keys, 0.001, r)
	}
}
