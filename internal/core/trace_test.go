package core

import (
	"slices"
	"sync"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

// TestOnRoundTrace verifies the per-round observability hook: it fires
// once per round on the root only, with monotonically non-increasing
// coverage and non-decreasing finalized counts.
func TestOnRoundTrace(t *testing.T) {
	const p, perRank = 6, 2000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 3)

	var mu sync.Mutex
	var traces []RoundTrace
	var rounds int
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		_, st, err := Sort(c, shards[c.Rank()], Options[int64]{
			Cmp: icmp, Epsilon: 0.02, Seed: 5,
			OnRound: func(tr RoundTrace) {
				mu.Lock()
				traces = append(traces, tr)
				mu.Unlock()
			},
		})
		if c.Rank() == 0 {
			rounds = st.Rounds
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != rounds {
		t.Fatalf("%d traces for %d rounds (hook must fire on root only, once per round)", len(traces), rounds)
	}
	for i, tr := range traces {
		if tr.Round != i+1 {
			t.Errorf("trace %d has round %d", i, tr.Round)
		}
		if tr.Prob <= 0 || tr.Prob > 1 {
			t.Errorf("round %d prob %v", tr.Round, tr.Prob)
		}
		if tr.Probes <= 0 {
			t.Errorf("round %d had no probes", tr.Round)
		}
		if i > 0 {
			if tr.Coverage > traces[i-1].Coverage {
				t.Errorf("coverage grew at round %d: %d -> %d", tr.Round, traces[i-1].Coverage, tr.Coverage)
			}
			if tr.Finalized < traces[i-1].Finalized {
				t.Errorf("finalized count fell at round %d", tr.Round)
			}
		}
	}
	last := traces[len(traces)-1]
	if last.Finalized != p-1 {
		t.Errorf("final trace has %d/%d splitters finalized", last.Finalized, p-1)
	}
}

// TestBucketsExceedKeys exercises the degenerate regime where there are
// more buckets than keys: many targets collapse to the same rank and
// most buckets end empty, but the sort must stay correct.
func TestBucketsExceedKeys(t *testing.T) {
	const p = 4
	shards := [][]int64{{5, 1}, {9}, {3}, {7, 2}}
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs := make([][]int64, p)
	w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, _, err := Sort(c, in[c.Rank()], Options[int64]{
			Cmp: icmp, Epsilon: 0.1, Buckets: 64, Seed: 3,
		})
		outs[c.Rank()] = out
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)
}

// TestTwoRanksMinimal pins the smallest nontrivial world.
func TestTwoRanksMinimal(t *testing.T) {
	shards := [][]int64{{2}, {1}}
	in := [][]int64{{2}, {1}}
	outs := make([][]int64, 2)
	w := comm.NewWorld(2, comm.WithTimeout(30*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, _, err := Sort(c, in[c.Rank()], Options[int64]{Cmp: icmp, Epsilon: 0.5, Seed: 1})
		outs[c.Rank()] = out
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)
}
