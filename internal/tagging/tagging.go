package tagging

import "fmt"

// Tagged is a key with its disambiguating origin: comparisons order by
// Key first, then PE (processor), then Idx (local position).
type Tagged[K any] struct {
	// Key is the application key.
	Key K
	// PE is the rank the key resides on before sorting.
	PE int32
	// Idx is the key's index in the rank's local array.
	Idx int32
}

// Cmp lifts a key comparator to tagged keys: ties on Key break by
// (PE, Idx), producing a strict total order.
func Cmp[K any](cmp func(K, K) int) func(Tagged[K], Tagged[K]) int {
	return func(a, b Tagged[K]) int {
		if c := cmp(a.Key, b.Key); c != 0 {
			return c
		}
		if a.PE != b.PE {
			if a.PE < b.PE {
				return -1
			}
			return 1
		}
		if a.Idx != b.Idx {
			if a.Idx < b.Idx {
				return -1
			}
			return 1
		}
		return 0
	}
}

// Wrap tags each local key with this rank and its local index. It panics
// if the local array exceeds the int32 index space (2^31-1 keys per rank,
// far beyond the simulated scale).
func Wrap[K any](local []K, rank int) []Tagged[K] {
	if len(local) > 1<<31-1 {
		panic(fmt.Sprintf("tagging: local size %d exceeds int32 index space", len(local)))
	}
	out := make([]Tagged[K], len(local))
	for i, k := range local {
		out[i] = Tagged[K]{Key: k, PE: int32(rank), Idx: int32(i)}
	}
	return out
}

// Unwrap strips the tags, preserving order.
func Unwrap[K any](tagged []Tagged[K]) []K {
	out := make([]K, len(tagged))
	for i, t := range tagged {
		out[i] = t.Key
	}
	return out
}
