package hssort

import "cmp"

// KV pairs a sortable key with an opaque payload that travels with it
// through the exchange — the paper's experimental records are 8-byte
// integer keys with a 4-byte payload (Fig 6.1). Payloads are never
// inspected: all splitter decisions use only keys.
type KV[K cmp.Ordered, V any] struct {
	// Key orders the record.
	Key K
	// Val rides along.
	Val V
}

// CompareKV orders KV records by key. Records with equal keys compare
// equal; combine with Config.TagDuplicates for a strict total order on
// duplicate-heavy data.
func CompareKV[K cmp.Ordered, V any](a, b KV[K, V]) int {
	return cmp.Compare(a.Key, b.Key)
}

// SortKV sorts keyed records across simulated processors; see Sort for
// semantics. The HistogramSort and Radix algorithms are unavailable for
// records (they need key-space arithmetic); use the HSS variants or the
// sample sorts.
func SortKV[K cmp.Ordered, V any](cfg Config, shards [][]KV[K, V]) ([][]KV[K, V], Stats, error) {
	return SortFunc(cfg, shards, CompareKV[K, V])
}
