package nodesort

import (
	"fmt"
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/merge"
	"hssort/internal/par"
	"hssort/internal/spill"
)

// Options configures a two-level node sort. Cmp and CoresPerNode are
// required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// Code, when set, must be an order-preserving uint64 extractor for
	// Cmp; the compute hot paths (local sort, partition cuts, the
	// leaders' combine and node-level merges) then run on the
	// comparator-free code plane (see core.Options.Code).
	Code func(K) uint64
	// PrefixCode marks Code as a non-injective prefix extractor (see
	// core.Options.PrefixCode): local sorts repair equal-code spans with
	// the comparator, node-level splitter determination runs in code
	// space, and the leaders' combine and node-level merges tie-break
	// equal codes. Requires Code.
	PrefixCode bool
	// CoresPerNode is the node width c; the world size must be a
	// multiple of c.
	CoresPerNode int
	// Epsilon is the node-level imbalance threshold (the paper uses
	// 0.02 for node-level partitioning). Default 0.02.
	Epsilon float64
	// Schedule, Seed, OversampleFactor configure the node-level HSS
	// splitter determination (see core.Options).
	Schedule         core.Schedule
	Seed             uint64
	OversampleFactor float64
	// ChunkKeys, when positive, streams the node-to-node exchange in
	// chunks overlapped with the node-level merge (see
	// core.Options.ChunkKeys). 0 = materializing exchange.
	ChunkKeys int
	// Workers is the size of this rank's compute worker pool (see
	// core.Options.Workers). <=1 keeps every kernel serial. Leaders use
	// the pool for the combine and node-level merges as well.
	Workers int
	// Splitters, when non-nil, injects pre-determined node-level
	// splitters — n-1 keys for n nodes, non-decreasing, identical on
	// every rank — and skips splitter determination (see
	// core.Options.Splitters).
	Splitters []K
	// StaleBound arms the staleness guard for injected Splitters (see
	// core.Options.StaleBound), measured over node buckets. 0 disables
	// it.
	StaleBound float64
	// Scratch, when non-nil, is this rank's reusable exchange state for
	// the node-to-node leader exchange (see core.Options.Scratch).
	Scratch *exchange.Scratch[K]
	// Spill, when non-nil, is this rank's out-of-core manager (see
	// core.Options.Spill). nil keeps every phase in memory.
	Spill *spill.Manager
	// BaseTag is the start of the tag range (~40 tags). Default 7000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults(p int) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("nodesort: Options.Cmp is required")
	}
	if o.PrefixCode && o.Code == nil {
		return o, fmt.Errorf("nodesort: PrefixCode requires Code")
	}
	if o.CoresPerNode < 1 {
		return o, fmt.Errorf("nodesort: CoresPerNode %d < 1", o.CoresPerNode)
	}
	if p%o.CoresPerNode != 0 {
		return o, fmt.Errorf("nodesort: world size %d not a multiple of CoresPerNode %d", p, o.CoresPerNode)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.02
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("nodesort: Epsilon %v < 0", o.Epsilon)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ChunkKeys < 0 {
		return o, fmt.Errorf("nodesort: ChunkKeys %d < 0", o.ChunkKeys)
	}
	if o.StaleBound < 0 {
		return o, fmt.Errorf("nodesort: StaleBound %v < 0", o.StaleBound)
	}
	if o.Splitters != nil && len(o.Splitters) != p/o.CoresPerNode-1 {
		return o, fmt.Errorf("nodesort: %d injected splitters for %d nodes (want %d)", len(o.Splitters), p/o.CoresPerNode, p/o.CoresPerNode-1)
	}
	if o.BaseTag == 0 {
		o.BaseTag = 7000
	}
	return o, nil
}

// Tag offsets within BaseTag.
const (
	tagSplitter = 10 // node-level HSS (core.TagSpan tags)
	tagCombine  = 25 // intra-node run gather
	tagNodeEx   = 26 // node-to-node exchange
	tagScatter  = 27 // within-node scatter
	tagStats    = 28 // stats all-reduce (+1)
	tagStale    = 30 // staleness-guard node-load all-reduce
)

// Sort runs the two-level sort and returns this rank's globally sorted
// partition (rank order = global order). Every rank must call Sort with
// the same Options. The input is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, core.Stats{}, err
	}
	p := c.Size()
	me := c.Rank()
	cores := opt.CoresPerNode
	nodes := p / cores
	node := me / cores
	leaderRank := node * cores
	isLeader := me == leaderRank
	base := opt.BaseTag
	pool := par.New(opt.Workers)
	var stats core.Stats
	stats.Buckets = nodes
	stats.Workers = pool.Workers()

	t0 := time.Now()
	var localCodes []codes.Code
	var collisions int64
	if opt.PrefixCode {
		// Prefix plane: radix-sort the code decoration, then restore
		// comparator order within equal-code spans (see
		// core.Options.PrefixCode). Never budgeted: the root validation
		// rejects MemoryBudget for variable-length keys.
		localCodes = codes.SortByCodePar(local, opt.Code, pool)
		collisions = codes.TieBreakPar(localCodes, local, opt.Cmp, pool)
	} else {
		localCodes, err = spill.LocalSort(opt.Spill, local, opt.Code, opt.Cmp, pool)
		if err != nil {
			return nil, stats, err
		}
	}
	localSort := time.Since(t0)

	// Node-level splitter determination: all p ranks participate, but
	// only n-1 splitters are sought (§6.1: "data partitioning needs to
	// be only across physical nodes").
	nVec, err := collective.AllReduce(c, base, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	stats.N = nVec[0]
	if stats.N == 0 {
		// Nothing to move: every rank returns empty, consistently.
		stats.Imbalance = 1
		stats.LocalSort = localSort
		return []K{}, stats, nil
	}
	determine := func() ([]K, core.SplitterInfo, error) {
		return core.DetermineSplitters(c, local, stats.N, core.Options[K]{
			Cmp:              opt.Cmp,
			Epsilon:          opt.Epsilon,
			Buckets:          nodes,
			Schedule:         opt.Schedule,
			Seed:             opt.Seed,
			OversampleFactor: opt.OversampleFactor,
			BaseTag:          base + tagSplitter,
		})
	}
	// On the prefix plane determination runs in code space over the
	// sorted code decoration — node-level splitter traffic stays
	// fixed-size code points regardless of key length — and partition
	// consumes the splitter codes directly.
	determineCodes := func() ([]codes.Code, core.SplitterInfo, error) {
		return core.DetermineSplitters(c, localCodes, stats.N, core.Options[codes.Code]{
			Cmp:              codes.Compare,
			Code:             codes.ExtractCode,
			Epsilon:          opt.Epsilon,
			Buckets:          nodes,
			Schedule:         opt.Schedule,
			Seed:             opt.Seed,
			OversampleFactor: opt.OversampleFactor,
			BaseTag:          base + tagSplitter,
		})
	}
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters := opt.Splitters
	var spCodes []codes.Code
	var info core.SplitterInfo
	switch {
	case opt.PrefixCode && splitters != nil:
		spCodes = codes.Extract(splitters, opt.Code)
		exchange.ValidateSplitters(spCodes, codes.Compare)
	case opt.PrefixCode:
		spCodes, info, err = determineCodes()
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = info.Rounds
		stats.SamplePerRound = info.SamplePerRound
		stats.TotalSample = info.TotalSample
	case splitters != nil:
		exchange.ValidateSplitters(splitters, opt.Cmp)
	default:
		splitters, info, err = determine()
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = info.Rounds
		stats.SamplePerRound = info.SamplePerRound
		stats.TotalSample = info.TotalSample
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	// Build this node's group; node g occupies ranks [g·c, (g+1)·c).
	members := make([]int, cores)
	for i := range members {
		members[i] = leaderRank + i
	}
	group, err := collective.NewGroup(c, members)
	if err != nil {
		return nil, stats, err
	}

	// Message combining (§6.1): every core hands its n partitioned runs
	// to the node leader by reference (shared memory), so the network
	// sees nothing yet.
	partition := func(sp []K, spc []codes.Code) [][]K {
		if opt.PrefixCode {
			return exchange.PartitionByCodePar(local, localCodes, spc, pool)
		}
		if localCodes != nil {
			return exchange.PartitionByCodePar(local, localCodes, codes.Extract(sp, opt.Code), pool)
		}
		return exchange.PartitionPar(local, sp, opt.Cmp, pool)
	}
	runs := partition(splitters, spCodes)

	// Staleness guard for injected node-level splitters: all p ranks
	// all-reduce the node-bucket loads; a stale plan re-histograms. The
	// guard and any replan are splitter-determination work.
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t1g := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			var info core.SplitterInfo
			if opt.PrefixCode {
				spCodes, info, err = determineCodes()
			} else {
				splitters, info, err = determine()
			}
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = info.Rounds
			stats.SamplePerRound = info.SamplePerRound
			stats.TotalSample = info.TotalSample
			runs = partition(splitters, spCodes)
		}
		splitterTime += time.Since(t1g)
		splitterBytes = c.Counters().BytesSent - bytes0
	}

	bytes1 := c.Counters().BytesSent
	t2 := time.Now()
	gathered, err := collective.Gatherv(group, 0, base+tagCombine, runs)
	if err != nil {
		return nil, stats, err
	}

	// Node-to-node exchange: leaders merge their cores' runs per
	// destination node and exchange n(n-1) combined messages —
	// materialized, or streamed in chunks overlapped with the node-level
	// merge when Options.ChunkKeys is set.
	var nodeData []K
	var nodeMergeTime time.Duration
	var sst exchange.StreamStats
	if isLeader {
		// Prefix plane: the combine and node-level merges resolve
		// equal-code matches with the comparator.
		var tie func(K, K) int
		if opt.PrefixCode {
			tie = opt.Cmp
		}
		combined := make([][]K, nodes)
		for dst := 0; dst < nodes; dst++ {
			perCore := make([][]K, 0, cores)
			for _, coreRuns := range gathered {
				perCore = append(perCore, coreRuns[dst])
			}
			if opt.Code != nil && pool.Workers() > 1 {
				combined[dst] = merge.ParMergeByCodeTie(nil, perCore, opt.Code, tie, pool)
			} else if opt.Code != nil {
				combined[dst] = merge.KWayByCodeTie(perCore, opt.Code, tie)
			} else if pool.Workers() > 1 {
				combined[dst] = merge.ParMerge(nil, perCore, opt.Cmp, pool)
			} else {
				combined[dst] = merge.KWay(perCore, opt.Cmp)
			}
		}
		var leaders []int
		for g := 0; g < nodes; g++ {
			leaders = append(leaders, g*cores)
		}
		leaderGroup, err := collective.NewGroup(c, leaders)
		if err != nil {
			return nil, stats, err
		}
		nodeData, _, nodeMergeTime, sst, err = exchange.ExchangeMerge(
			leaderGroup, base+tagNodeEx, combined, exchange.ContiguousOwner(nodes, nodes), opt.Cmp, opt.Code,
			exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Tie: opt.PrefixCode, Spill: opt.Spill}, opt.Scratch)
		if err != nil {
			return nil, stats, err
		}
	}
	exchangeTime := time.Since(t2) - nodeMergeTime
	exchangeBytes := c.Counters().BytesSent - bytes1

	// Final within-node sorting (§6.1): the leader has its node's bucket
	// assembled, cuts exact per-core quantiles (the shared-memory limit
	// of regular sampling), and scatters the pieces back to its cores.
	t3 := time.Now()
	var parts [][]K
	if isLeader {
		parts = make([][]K, cores)
		for i := 0; i < cores; i++ {
			lo := i * len(nodeData) / cores
			hi := (i + 1) * len(nodeData) / cores
			parts[i] = nodeData[lo:hi]
		}
	}
	out, err := collective.Scatterv(group, 0, base+tagScatter, parts)
	if err != nil {
		return nil, stats, err
	}
	mergeTime := nodeMergeTime + time.Since(t3)
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := core.FinishStats(c, base+tagStats, &stats, core.PhaseTimes{
		SplitterBytes:    splitterBytes,
		ExchangeBytes:    exchangeBytes,
		LocalSort:        localSort,
		Splitter:         splitterTime,
		Exchange:         exchangeTime,
		Merge:            mergeTime,
		Overlap:          sst.Overlap,
		PeakInFlight:     sst.PeakInFlight,
		OutCount:         len(out),
		ParSpawned:       pc.Spawned,
		ParTasks:         pc.Tasks,
		PrefixCollisions: collisions,
		Spill:            opt.Spill.TakeStats(),
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}
