package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

// TestSortSurvivesAsErrorWhenLinkFails injects a link failure mid-run:
// the sort must surface an error on every rank (via the interceptor veto
// plus the world timeout) rather than hanging or panicking.
func TestSortSurvivesAsErrorWhenLinkFails(t *testing.T) {
	const p = 6
	linkDown := errors.New("injected link failure")
	var sent atomic.Int64
	w := comm.NewWorld(p,
		comm.WithTimeout(2*time.Second),
		comm.WithInterceptor(func(src, dst int, m *comm.Message) error {
			// Let the early collectives through, then cut one link.
			if sent.Add(1) > 40 && src == 2 && dst == 0 {
				return linkDown
			}
			return nil
		}))
	shards := dist.Spec{Kind: dist.Uniform}.Shards(2000, p, 3)
	err := w.Run(func(c *comm.Comm) error {
		_, _, err := Sort(c, shards[c.Rank()], Options[int64]{Cmp: icmp, Epsilon: 0.1})
		return err
	})
	if err == nil {
		t.Fatal("sort reported success across a dead link")
	}
	// The originating rank must see the injected error itself; the rest
	// fail via the abort.
	if !errors.Is(err, linkDown) && !errors.Is(err, comm.ErrAborted) {
		t.Errorf("error chain carries neither the injection nor the abort: %v", err)
	}
}

// TestConcurrentWorldsIsolated runs two independent sorts concurrently:
// worlds must not share any state (tags, counters, mailboxes).
func TestConcurrentWorldsIsolated(t *testing.T) {
	const p = 4
	run := func(seed uint64, out chan<- error) {
		shards := dist.Spec{Kind: dist.Gaussian}.Shards(3000, p, seed)
		w := comm.NewWorld(p, comm.WithTimeout(30*time.Second))
		out <- w.Run(func(c *comm.Comm) error {
			sorted, st, err := Sort(c, shards[c.Rank()], Options[int64]{Cmp: icmp, Epsilon: 0.1, Seed: seed})
			if err != nil {
				return err
			}
			if len(sorted) == 0 || st.N != p*3000 {
				return errors.New("bogus result under concurrency")
			}
			return nil
		})
	}
	errs := make(chan error, 2)
	go run(1, errs)
	go run(2, errs)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
