package radix

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
	"hssort/internal/keycoder"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func baseOpt() Options[int64] {
	return Options[int64]{Cmp: icmp, Coder: keycoder.Int64{}, Bits: 10}
}

func trySort(shards [][]int64, opt Options[int64]) ([][]int64, float64, error) {
	p := len(shards)
	outs := make([][]int64, p)
	var imb float64
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			imb = st.Imbalance
		}
		return nil
	})
	return outs, imb, err
}

func clone(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

func TestRadixUniform(t *testing.T) {
	const p, perRank = 6, 2000
	spec := dist.Spec{Kind: dist.Uniform}
	shards := spec.Shards(perRank, p, 3)
	outs, imb, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatalf("rank %d not sorted", r)
		}
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("not the sorted permutation")
	}
	// Uniform codes over the full range: decent balance expected.
	if imb > 1.5 {
		t.Errorf("uniform imbalance %.3f", imb)
	}
}

func TestRadixSkewBreaksBalance(t *testing.T) {
	// §4.2: a hot digit cannot be split, so duplicates wreck balance —
	// the weakness comparison benchmarks surface.
	const p, perRank = 4, 1000
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, perRank)
		for i := range shards[r] {
			shards[r][i] = 42 // one digit holds everything
		}
	}
	outs, imb, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total != p*perRank {
		t.Fatalf("lost keys: %d", total)
	}
	if imb < float64(p)-0.01 {
		t.Errorf("constant input imbalance %.2f, want ~p (single hot digit)", imb)
	}
}

func TestRadixNarrowRange(t *testing.T) {
	// Keys spanning few distinct codes exercise empty digit buckets.
	const p = 4
	spec := dist.Spec{Kind: dist.Uniform, Min: 1000, Max: 2000}
	shards := spec.Shards(500, p, 9)
	outs, _, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for _, o := range outs {
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("not the sorted permutation")
	}
}

func TestRadixNegativeKeys(t *testing.T) {
	const p = 2
	spec := dist.Spec{Kind: dist.Uniform, Min: -1 << 40, Max: 1 << 40}
	shards := spec.Shards(800, p, 11)
	outs, _, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for _, o := range outs {
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("negative keys not sorted correctly")
	}
}

func TestRadixOptionValidation(t *testing.T) {
	if _, _, err := trySort([][]int64{{1}}, Options[int64]{Coder: keycoder.Int64{}}); err == nil {
		t.Error("missing Cmp accepted")
	}
	if _, _, err := trySort([][]int64{{1}}, Options[int64]{Cmp: icmp}); err == nil {
		t.Error("missing Coder accepted")
	}
	bad := baseOpt()
	bad.Bits = 40
	if _, _, err := trySort([][]int64{{1}}, bad); err == nil {
		t.Error("Bits=40 accepted")
	}
}

func TestRadixProperty(t *testing.T) {
	f := func(seed uint32, pRaw uint8) bool {
		p := int(pRaw%5) + 1
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: -1 << 30, Max: 1 << 30}
		shards := make([][]int64, p)
		var want []int64
		for r := range shards {
			shards[r] = spec.Shard(int(seed%400)+10, r, p, uint64(seed))
			want = append(want, shards[r]...)
		}
		slices.Sort(want)
		outs, _, err := trySort(clone(shards), baseOpt())
		if err != nil {
			t.Log(err)
			return false
		}
		var got []int64
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
