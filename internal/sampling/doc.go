// Package sampling implements every sampling scheme the paper builds on or
// compares against:
//
//   - Sampling Method 1 (§3): independent Bernoulli sampling of each key
//     with probability p·s/N, implemented with geometric skips so the cost
//     is proportional to the sample size, not the input size.
//   - Regular sampling (§4.1.2, Shi & Schaeffer): s evenly spaced keys
//     from the local sorted input.
//   - Random block sampling (§4.1.1, Blelloch et al.): one uniform key
//     from each of s equal blocks of the local sorted input.
//   - Representative samples (§3.4): a random-block sample retained across
//     rounds to answer approximate rank queries.
//
// It also centralizes the paper's sampling-ratio arithmetic: the one-round
// ratios of Theorems 3.2.1/3.2.2, the k-round geometric schedule
// s_j = (2 ln p / ε)^(j/k) of §3.3, and the optimal round count
// k* = ln(ln p / ε) of Lemma 3.3.2.
//
// Like internal/histogram, this package is pure computation — sample
// sizes and draws only; internal/core moves the drawn keys between ranks.
package sampling
