package exchange

import (
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
)

// BenchmarkPartition measures cutting a sorted shard into B runs.
func BenchmarkPartition(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewPCG(1, 2))
	sorted := make([]int64, 1<<20)
	for i := range sorted {
		sorted[i] = rng.Int64()
	}
	slices.Sort(sorted)
	splitters := make([]int64, 1023)
	for i := range splitters {
		splitters[i] = rng.Int64()
	}
	slices.Sort(splitters)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(sorted, splitters, icmp)
	}
}

// BenchmarkExchange measures the full data-movement step — personalized
// all-to-all plus k-way merge — comparing the materializing path against
// the streaming pipeline on three shapes:
//
//   - data-bound: few ranks, big shards; merge work dominates. The
//     streaming path must hold parity here (its chunk protocol adds
//     messages but removes the full-materialization barrier).
//   - comm-bound flat: p = 64 microshards; per-message costs dominate,
//     the regime of the paper's real processor counts.
//   - comm-bound over-partitioned (B = 4p, the §6.3 ChaNGa regime):
//     streaming's structural advantage — it merges p per-sender streams
//     instead of sorting and merging B·p (bucket, sender) runs, so the
//     tournament tree is shallower and the post-receive sort disappears.
//
// Caveat for reading results: on hosts with fewer cores than ranks the
// simulated "communication" time is CPU time in disguise, so
// send/merge overlap cannot shorten wall clock (there is no idle to
// hide work in) and only structural savings show up. On real networks —
// and on hosts with cores to spare — the overlap term §6.2 describes
// comes on top.
func BenchmarkExchange(b *testing.B) {
	b.ReportAllocs()
	shapes := []struct {
		name       string
		p, perRank int
		overpart   int // buckets per rank (1 = flat)
	}{
		{"data-bound/p=16/n=262144", 16, 1 << 18, 1},
		{"comm-bound/p=64/n=2048", 64, 1 << 11, 1},
		{"comm-bound/p=64/B=256/n=2048", 64, 1 << 11, 4},
	}
	paths := []struct {
		name string
		opt  StreamOptions
	}{
		{"materializing", StreamOptions{}},
		{"streaming", StreamOptions{ChunkKeys: DefaultChunkKeys}},
		{"streaming/c=4Ki", StreamOptions{ChunkKeys: 4 << 10}},
	}
	for _, shape := range shapes {
		p := shape.p
		buckets := p * shape.overpart
		splitters := make([]int64, buckets-1)
		for i := range splitters {
			splitters[i] = int64(i+1) << (63 - bits(buckets))
		}
		shards := make([][]int64, p)
		rng := rand.New(rand.NewPCG(3, 4))
		for r := range shards {
			shards[r] = make([]int64, shape.perRank)
			for i := range shards[r] {
				shards[r][i] = rng.Int64() // non-negative by contract
			}
			slices.Sort(shards[r])
		}
		owner := ContiguousOwner(buckets, p)
		for _, path := range paths {
			b.Run(shape.name+"/"+path.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					w := comm.NewWorld(p, comm.WithTimeout(time.Minute))
					err := w.Run(func(c *comm.Comm) error {
						runs := Partition(shards[c.Rank()], splitters, icmp)
						_, _, _, _, err := ExchangeMerge(c, 1, runs, owner, icmp, nil, path.opt, nil)
						return err
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(p * shape.perRank * 8))
			})
		}
	}
}

// bits returns floor(log2 p) for the splitter spacing above.
func bits(p int) int {
	n := 0
	for 1<<n < p {
		n++
	}
	return n
}
