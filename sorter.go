package hssort

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"hssort/internal/bitonic"
	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/histogram"
	"hssort/internal/histsort"
	"hssort/internal/keycoder"
	"hssort/internal/nodesort"
	"hssort/internal/overpartition"
	"hssort/internal/par"
	"hssort/internal/radix"
	"hssort/internal/samplesort"
	"hssort/internal/spill"
	"hssort/internal/tagging"
)

// Sorter is a long-lived sorting engine: New validates the Config once,
// constructs the transport and the per-rank worker world once, and the
// resulting Sorter is then called repeatedly — Sort for full sorts,
// Plan/SortWithPlan for the prepare-once/sort-many split — with the
// goroutine pool, exchange chunk buffers, merge trees and code-plane
// scratch reused across calls. One-shot helpers (the package-level Sort,
// SortFunc, SortKV) are thin wrappers over a throwaway engine.
//
// A Sorter serializes its calls (concurrent Sort calls run one after
// another over the same simulated machine) and must be released with
// Close, which stops the worker goroutines.
//
// Every method takes a context: cancellation or deadline expiry aborts
// the in-flight sort on all simulated ranks — mid-histogram, mid-exchange,
// wherever they are — through the communication runtime's abort
// machinery, and the call returns ctx.Err(). The engine stays usable
// afterwards.
type Sorter[K any] struct {
	cfg     Config
	compare func(K, K) int
	coder   keycoder.Coder[K]
	code    func(K) uint64 // decorated-plane extractor (records) or prefix extractor
	prefix  bool           // code is a non-injective prefix extractor (NewBytes)
	isNaN   func(K) bool   // non-nil only for float keys with a coder
	pool    *comm.Pool
	scratch []*rankScratch[K]
	spills  []*spill.Manager // per-rank spill managers; nil when MemoryBudget is 0, nil entries for ranks other processes host

	mu     sync.Mutex
	closed bool
}

// rankScratch is one simulated rank's reusable buffers.
type rankScratch[K any] struct {
	enc      []codes.Code                 // bijective-plane encode buffer
	exch     exchange.Scratch[K]          // comparator/decorated-plane exchange state
	exchCode exchange.Scratch[codes.Code] // bijective-plane exchange state
}

// ErrSorterClosed is returned by Sorter methods after Close.
var ErrSorterClosed = errors.New("hssort: sorter closed")

// New creates a Sorter for ordered keys. Config.Procs is required (the
// worker world is sized at construction); every other field is
// validated here, once, instead of on every sort.
func New[K cmp.Ordered](cfg Config) (*Sorter[K], error) {
	var isNaN func(K) bool
	var zero K
	switch any(zero).(type) {
	case float64, float32:
		isNaN = func(k K) bool { return k != k }
	}
	return newSorter(cfg, cmp.Compare[K], coderFor[K](), nil, isNaN, false)
}

// NewFunc creates a Sorter with an explicit comparator, for key types
// without a built-in order. The HistogramSort and Radix algorithms
// additionally need key-space arithmetic and are unavailable unless
// Config.Coder supplies it.
func NewFunc[K any](cfg Config, compare func(K, K) int) (*Sorter[K], error) {
	if compare == nil {
		return nil, fmt.Errorf("hssort: comparator is required")
	}
	return newSorter[K](cfg, compare, nil, nil, nil, false)
}

// newSorter is the shared constructor: resolve the coder, validate the
// configuration once, build the transport and the worker pool. prefix
// marks code as a non-injective prefix extractor (the NewBytes plane);
// it changes which algorithms are admissible and puts the prefix
// tie-break pipelines in play.
func newSorter[K any](cfg Config, compare func(K, K) int, builtin keycoder.Coder[K], code func(K) uint64, isNaN func(K) bool, prefix bool) (*Sorter[K], error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("hssort: at least one shard is required")
	}
	coder, err := resolveCoder(cfg, builtin)
	if err != nil {
		return nil, err
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.PlanStaleness < 0 {
		return nil, fmt.Errorf("hssort: PlanStaleness %v < 0", cfg.PlanStaleness)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("hssort: Workers %d < 0", cfg.Workers)
	}
	switch cfg.Algorithm {
	case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom,
		HistogramSort, Bitonic, Radix, NodeHSS, OverPartition:
	default:
		return nil, fmt.Errorf("hssort: unknown algorithm %v", cfg.Algorithm)
	}
	if cfg.Algorithm == NodeHSS {
		if cfg.CoresPerNode < 1 {
			return nil, fmt.Errorf("hssort: NodeHSS requires CoresPerNode >= 1")
		}
		if cfg.Procs%cfg.CoresPerNode != 0 {
			return nil, fmt.Errorf("hssort: Procs %d not a multiple of CoresPerNode %d", cfg.Procs, cfg.CoresPerNode)
		}
	}
	if prefix {
		if cfg.Algorithm == Radix {
			return nil, fmt.Errorf("hssort: Radix needs a bijective key coder; byte-string keys carry only a prefix code")
		}
		if cfg.Algorithm == HistogramSort && cfg.CodePath == CodePathOff {
			return nil, fmt.Errorf("hssort: HistogramSort on byte-string keys runs probe bisection over the prefix code plane, which CodePathOff disables")
		}
	}
	switch cfg.Algorithm {
	case HistogramSort, Radix:
		if coder == nil && !prefix {
			return nil, fmt.Errorf("hssort: %v requires an integer or float key type", cfg.Algorithm)
		}
	}
	if cfg.TagDuplicates {
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, NodeHSS:
		default:
			return nil, fmt.Errorf("hssort: TagDuplicates is not supported by %v", cfg.Algorithm)
		}
		if cfg.CodePath == CodePathOn {
			return nil, fmt.Errorf("hssort: CodePathOn is incompatible with TagDuplicates (tagged records carry no order-preserving 64-bit code)")
		}
	} else if cfg.CodePath == CodePathOn {
		useBijective := coder != nil && bijectiveCodePlane(cfg.Algorithm)
		useRecord := !useBijective && !prefix && code != nil && recordCodePlane(cfg.Algorithm)
		usePrefix := prefix && code != nil && prefixCodePlane(cfg.Algorithm)
		if !useBijective && !useRecord && !usePrefix {
			if coder == nil && code == nil {
				return nil, fmt.Errorf("hssort: CodePathOn, but no order-preserving coder is known for the key type (set Config.Coder)")
			}
			return nil, fmt.Errorf("hssort: CodePathOn, but %v has no code-plane support", cfg.Algorithm)
		}
	}
	if cfg.MemoryBudget < 0 {
		return nil, fmt.Errorf("hssort: MemoryBudget %d < 0", cfg.MemoryBudget)
	}
	if cfg.SpillDir != "" && cfg.MemoryBudget == 0 {
		return nil, fmt.Errorf("hssort: SpillDir is set but MemoryBudget is 0 (the out-of-core plane is off)")
	}
	if cfg.MemoryBudget > 0 {
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, NodeHSS:
		default:
			return nil, fmt.Errorf("hssort: MemoryBudget is not supported by %v", cfg.Algorithm)
		}
		if cfg.TagDuplicates {
			return nil, fmt.Errorf("hssort: MemoryBudget is incompatible with TagDuplicates (tagged records are per-call transient types the spill plane cannot persist)")
		}
		if prefix {
			return nil, fmt.Errorf("hssort: MemoryBudget is not supported on the byte-string prefix plane (variable-length keys cannot be framed into fixed-size spill runs)")
		}
		if !spill.Spillable[K]() {
			var zero K
			return nil, fmt.Errorf("hssort: MemoryBudget requires a fixed-size key type without pointers, got %T", zero)
		}
	}
	tr, err := newTransport(cfg)
	if err != nil {
		return nil, err
	}
	var spills []*spill.Manager
	if cfg.MemoryBudget > 0 {
		spills = make([]*spill.Manager, cfg.Procs)
		// Only the ranks this process hosts get a manager: a multi-process
		// TCP worker carries exactly its own rank, everything else
		// co-hosts the whole world.
		lo, hi := 0, cfg.Procs
		if cfg.Transport == TransportTCP && cfg.TCP.Coordinator != "" {
			lo, hi = cfg.TCP.Rank, cfg.TCP.Rank+1
		}
		for r := lo; r < hi; r++ {
			m, err := spill.NewManager(cfg.MemoryBudget, cfg.SpillDir, r)
			if err != nil {
				for _, mm := range spills {
					mm.Close()
				}
				closeTransport(tr)
				return nil, err
			}
			spills[r] = m
		}
	}
	if coder == nil && code == nil {
		isNaN = nil // no code plane to guard
	}
	s := &Sorter[K]{
		cfg:     cfg,
		compare: compare,
		coder:   coder,
		code:    code,
		prefix:  prefix,
		isNaN:   isNaN,
		pool:    comm.NewPool(cfg.Procs, comm.WithTimeout(cfg.Timeout), comm.WithTransport(tr)),
		scratch: make([]*rankScratch[K], cfg.Procs),
		spills:  spills,
	}
	if s.cfg.Workers == 0 {
		// Resolve the default once, against this transport's hosting
		// shape: co-hosted ranks split GOMAXPROCS evenly, a lone TCP rank
		// owns the whole process budget.
		s.cfg.Workers = par.Default(s.pool.HostedRanks())
	}
	for r := range s.scratch {
		s.scratch[r] = &rankScratch[K]{}
	}
	return s, nil
}

// Close stops the engine's worker goroutines, releases its scratch and
// tears down the transport (for the tcp backend: a graceful shutdown
// handshake on every connection, after which no reader/writer
// goroutines remain). It is idempotent; calls after Close return
// ErrSorterClosed.
func (s *Sorter[K]) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.pool.Close()
	closeTransport(s.pool.Transport())
	for _, m := range s.spills {
		m.Close() // nil-safe; removes each hosted rank's run directory
	}
}

// Sort sorts shards[i] (the keys initially on simulated processor i)
// and returns the per-processor partitions of the global sorted order,
// exactly like the package-level Sort but over the engine's reused
// machine. The input shards are consumed (locally sorted in place,
// except on the bijective code plane).
func (s *Sorter[K]) Sort(ctx context.Context, shards [][]K) ([][]K, Stats, error) {
	return s.sort(ctx, nil, shards)
}

// SortWithPlan sorts with the splitters of a previously prepared Plan,
// skipping splitter determination entirely: the sort goes straight to
// partition → exchange → merge and Stats.Rounds reads 0. If
// Config.PlanStaleness > 0, the ranks first measure the bucket
// imbalance the stored splitters would produce (one B-length reduction)
// and re-histogram when it exceeds the bound — Stats.Replanned then
// reports that the plan was stale. The plan must come from this
// engine's Plan (or one with identical Procs and bucket geometry).
func (s *Sorter[K]) SortWithPlan(ctx context.Context, plan *Plan[K], shards [][]K) ([][]K, Stats, error) {
	if plan == nil {
		return nil, Stats{}, fmt.Errorf("hssort: nil plan (prepare one with Sorter.Plan)")
	}
	return s.sort(ctx, plan, shards)
}

// sort is the shared engine run: resolve the per-call compute plane
// (the NaN guard may demote it), pick the pipeline, run the worker
// world.
func (s *Sorter[K]) sort(ctx context.Context, plan *Plan[K], shards [][]K) ([][]K, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, Stats{}, ErrSorterClosed
	}
	if len(shards) != s.cfg.Procs {
		return nil, Stats{}, fmt.Errorf("hssort: Config.Procs = %d but %d shards supplied", s.cfg.Procs, len(shards))
	}
	if plan != nil {
		if err := s.checkPlan(plan); err != nil {
			return nil, Stats{}, err
		}
	}
	var planSplitters []K
	if plan != nil {
		planSplitters = plan.Splitters
	}
	useBijective, useRecord, usePrefix, err := s.resolvePlanes(shards, planSplitters)
	if err != nil {
		return nil, Stats{}, err
	}
	if s.cfg.TagDuplicates {
		return s.sortTagged(ctx, shards)
	}
	if useBijective {
		return s.sortCoded(ctx, plan, shards)
	}
	code := s.code
	if !useRecord && !usePrefix {
		code = nil
	}
	return runEngine(ctx, s, plan, shards, s.compare, s.coder, code, usePrefix, scratchPlain)
}

// resolvePlanes picks the per-call compute plane, demoting CodePathAuto
// to the comparator plane (or failing CodePathOn) when the input holds
// NaN float keys — the one ordered value no order-preserving code can
// carry. A stored plan's splitters are scanned too: a plan prepared on
// NaN-bearing data can legitimately carry a NaN splitter, which must
// keep the sort off the code plane even when the shards are NaN-free.
func (s *Sorter[K]) resolvePlanes(shards [][]K, planSplitters []K) (useBijective, useRecord, usePrefix bool, err error) {
	cp, err := guardNaN(s.cfg.CodePath, shards, s.isNaN)
	if err != nil {
		return false, false, false, err
	}
	if planSplitters != nil {
		cp, err = guardNaN(cp, [][]K{planSplitters}, s.isNaN)
		if err != nil {
			return false, false, false, err
		}
	}
	if s.cfg.TagDuplicates {
		return false, false, false, nil
	}
	useBijective = cp != CodePathOff && s.coder != nil && bijectiveCodePlane(s.cfg.Algorithm)
	useRecord = cp != CodePathOff && !useBijective && !s.prefix && s.code != nil && recordCodePlane(s.cfg.Algorithm)
	usePrefix = cp != CodePathOff && s.prefix && s.code != nil && prefixCodePlane(s.cfg.Algorithm)
	return useBijective, useRecord, usePrefix, nil
}

// checkPlan verifies a plan fits this engine's geometry.
func (s *Sorter[K]) checkPlan(plan *Plan[K]) error {
	if s.cfg.TagDuplicates {
		return fmt.Errorf("hssort: splitter plans are not supported with TagDuplicates")
	}
	if !planCapable(s.cfg.Algorithm) {
		return fmt.Errorf("hssort: %v is not splitter-based; plans do not apply", s.cfg.Algorithm)
	}
	if plan.procs == 0 {
		return fmt.Errorf("hssort: plan was not prepared by Sorter.Plan")
	}
	if plan.procs != s.cfg.Procs {
		return fmt.Errorf("hssort: plan prepared for %d procs, engine has %d", plan.procs, s.cfg.Procs)
	}
	if want := s.effectiveBuckets(); plan.Buckets != want {
		return fmt.Errorf("hssort: plan prepared for %d buckets, engine partitions into %d", plan.Buckets, want)
	}
	if len(plan.Splitters) != plan.Buckets-1 {
		return fmt.Errorf("hssort: plan holds %d splitters for %d buckets", len(plan.Splitters), plan.Buckets)
	}
	for i := 1; i < len(plan.Splitters); i++ {
		if s.compare(plan.Splitters[i-1], plan.Splitters[i]) > 0 {
			return fmt.Errorf("hssort: plan splitters are not sorted (index %d)", i)
		}
	}
	return nil
}

// effectiveBuckets is the number of output ranges the engine's
// configuration partitions into: Buckets (default Procs), or the node
// count for NodeHSS.
func (s *Sorter[K]) effectiveBuckets() int {
	if s.cfg.Algorithm == NodeHSS {
		return s.cfg.Procs / s.cfg.CoresPerNode
	}
	if s.cfg.Buckets != 0 {
		return s.cfg.Buckets
	}
	return s.cfg.Procs
}

// planCapable reports whether the algorithm determines splitters — the
// precondition for Plan and SortWithPlan.
func planCapable(a Algorithm) bool {
	switch a {
	case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, NodeHSS:
		return true
	}
	return false
}

// scratchMode selects which per-rank scratch slot an engine run uses.
type scratchMode int

const (
	scratchNone  scratchMode = iota // tagged plane: element type differs per call
	scratchPlain                    // comparator/decorated plane (element type K)
)

// runEngine executes one sort over the engine's worker pool: the
// generic core shared by the comparator, decorated and (via sortCoded)
// bijective planes. E is the element type actually sorted.
func runEngine[K, E any](ctx context.Context, s *Sorter[K], plan *Plan[E], shards [][]E, compare func(E, E) int, coder keycoder.Coder[E], code func(E) uint64, prefix bool, mode scratchMode) ([][]E, Stats, error) {
	p := s.cfg.Procs
	outs := make([][]E, p)
	var stats Stats
	err := s.pool.Run(ctx, func(c *comm.Comm) error {
		inj := injection[E]{}
		if plan != nil {
			inj.splitters = plan.Splitters
			inj.stale = s.cfg.PlanStaleness
		}
		if mode == scratchPlain {
			if sc, ok := any(&s.scratch[c.Rank()].exch).(*exchange.Scratch[E]); ok {
				inj.scratch = sc
			}
		}
		inj.spill = s.spillFor(c.Rank())
		out, st, err := dispatch(c, shards[c.Rank()], s.cfg, compare, coder, code, prefix, inj)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = fromCore(st)
		}
		return nil
	})
	s.releaseScratch()
	s.resetSpills()
	if err != nil {
		return nil, Stats{}, ctxErr(ctx, err)
	}
	total := s.pool.Transport().TotalCounters()
	stats.TotalMsgs = total.MsgsSent
	stats.TotalBytes = total.BytesSent
	return outs, stats, nil
}

// releaseScratch drops every rank's scratch references to the last
// input once the worker world has joined (the earliest point at which
// clearing the shared chunk views is safe — see exchange.Scratch.Release),
// so a parked engine does not pin the data of its last sort.
func (s *Sorter[K]) releaseScratch() {
	for _, sc := range s.scratch {
		sc.exch.Release()
		sc.exchCode.Release()
	}
}

// spillFor returns rank r's spill manager, nil when the out-of-core
// plane is off or another process hosts r.
func (s *Sorter[K]) spillFor(r int) *spill.Manager {
	if s.spills == nil {
		return nil
	}
	return s.spills[r]
}

// resetSpills zeroes every hosted rank's spill accounting and removes
// run files a failed or aborted sort left behind, so each sort starts
// from a clean directory and fresh counters. Runs after the worker
// world has joined, like releaseScratch.
func (s *Sorter[K]) resetSpills() {
	for _, m := range s.spills {
		m.Reset() // nil-safe
	}
}

// ctxErr maps a worker-world error back to the caller: when the run
// failed because ctx was cancelled, every rank reports the wrapped
// cancellation and the engine returns ctx.Err() itself.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
		return cerr
	}
	return err
}

// sortCoded runs the bijective code plane over the engine: each rank
// encodes its shard once into the rank's reusable code buffer, the full
// pipeline runs on raw uint64s, and each rank decodes its merged
// partition once at the end (see the package-level documentation of the
// code plane). Plan splitters are encoded likewise, so plan injection
// composes with the code plane.
func (s *Sorter[K]) sortCoded(ctx context.Context, plan *Plan[K], shards [][]K) ([][]K, Stats, error) {
	p := s.cfg.Procs
	outs := make([][]K, p)
	var stats Stats
	var codePlan *Plan[codes.Code]
	if plan != nil {
		codePlan = &Plan[codes.Code]{Splitters: codes.EncodeSlice(s.coder, plan.Splitters)}
	}
	encTime := make([]time.Duration, p)
	decTime := make([]time.Duration, p)
	err := s.pool.Run(ctx, func(c *comm.Comm) error {
		r := c.Rank()
		sc := s.scratch[r]
		cp := par.New(s.cfg.Workers)
		t0 := time.Now()
		sc.enc = codes.EncodeIntoPar(s.coder, shards[r], sc.enc, cp)
		encTime[r] = time.Since(t0)
		inj := injection[codes.Code]{scratch: &sc.exchCode, spill: s.spillFor(r)}
		if codePlan != nil {
			inj.splitters = codePlan.Splitters
			inj.stale = s.cfg.PlanStaleness
		}
		out, st, err := dispatch(c, sc.enc, s.cfg, codes.Compare, keycoder.Coder[codes.Code](codes.Identity{}), codes.ExtractCode, false, inj)
		if err != nil {
			return err
		}
		t1 := time.Now()
		outs[r] = codes.DecodeSlicePar(s.coder, out, cp)
		decTime[r] = time.Since(t1)
		if r == 0 {
			stats = fromCore(st)
		}
		return nil
	})
	s.releaseScratch()
	s.resetSpills()
	if err != nil {
		return nil, Stats{}, ctxErr(ctx, err)
	}
	// The code plane's O(n) encode and decode are work the comparator
	// plane does not do; charge them to the phases they bracket —
	// encode to the local sort, decode to the merge — so cross-plane
	// phase breakdowns stay honest. (Adding per-phase maxima is a
	// slight upper bound on the true combined critical path.)
	stats.LocalSort += slices.Max(encTime)
	stats.Merge += slices.Max(decTime)
	total := s.pool.Transport().TotalCounters()
	stats.TotalMsgs = total.MsgsSent
	stats.TotalBytes = total.BytesSent
	return outs, stats, nil
}

// sortTagged runs the §4.3 duplicate-handling path over the engine:
// wrap, sort tagged, unwrap. Tagged records order by (key, origin),
// which no 64-bit code can carry, so this path always runs on the
// comparator plane (and without plan injection — plans hold plain keys).
func (s *Sorter[K]) sortTagged(ctx context.Context, shards [][]K) ([][]K, Stats, error) {
	tagged := make([][]tagging.Tagged[K], len(shards))
	for r, sh := range shards {
		tagged[r] = tagging.Wrap(sh, r)
	}
	outs, stats, err := runEngine(ctx, s, nil, tagged, tagging.Cmp(s.compare), nil, nil, false, scratchNone)
	if err != nil {
		return nil, stats, err
	}
	plain := make([][]K, len(outs))
	for r, o := range outs {
		plain[r] = tagging.Unwrap(o)
	}
	return plain, stats, nil
}

// Plan runs only the front half of a sort — local sort plus splitter
// determination (sampling and histogramming for the HSS variants, the
// sampling phase for the sample sorts, probe refinement for classic
// histogram sort, node-level histogramming for NodeHSS) — and returns
// the finalized splitters with the protocol's achieved statistics. The
// input shards are read, not consumed.
//
// The returned Plan is the reusable artifact of the
// prepare-once/sort-many regime: SortWithPlan skips splitter
// determination entirely, which on a stationary distribution produces
// output rank-identical to Sort at a fraction of the protocol cost.
// Plan is deterministic given Config.Seed and the input, and uses the
// same per-rank sampling streams as Sort — the splitters are exactly
// the ones the equivalent Sort would have determined.
func (s *Sorter[K]) Plan(ctx context.Context, shards [][]K) (*Plan[K], error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSorterClosed
	}
	if len(shards) != s.cfg.Procs {
		return nil, fmt.Errorf("hssort: Config.Procs = %d but %d shards supplied", s.cfg.Procs, len(shards))
	}
	if s.cfg.TagDuplicates {
		return nil, fmt.Errorf("hssort: splitter plans are not supported with TagDuplicates")
	}
	if !planCapable(s.cfg.Algorithm) {
		return nil, fmt.Errorf("hssort: %v is not splitter-based; plans do not apply", s.cfg.Algorithm)
	}
	empty := true
	for _, sh := range shards {
		if len(sh) > 0 {
			empty = false
			break
		}
	}
	if empty {
		// Splitter determination on zero keys yields zero splitters — a
		// plan every SortWithPlan would have to reject. Fail here, at
		// training time, not in the operation phase.
		return nil, fmt.Errorf("hssort: cannot plan on empty input")
	}
	useBijective, _, usePrefix, err := s.resolvePlanes(shards, nil)
	if err != nil {
		return nil, err
	}
	if useBijective {
		res, err := runPlan(ctx, s, shards, codes.Compare, keycoder.Coder[codes.Code](codes.Identity{}),
			func(r int) []codes.Code { return codes.EncodeSlice(s.coder, shards[r]) })
		if err != nil {
			return nil, err
		}
		plan := assemblePlan[K](s, res)
		plan.Splitters = codes.DecodeSlice(s.coder, res.splitters)
		return plan, nil
	}
	if usePrefix {
		// Prefix plane: determination runs entirely in code space (as the
		// prefix sorts do), and the splitter codes materialize as their
		// canonical 8-byte big-endian representatives — re-extraction at
		// injection time (SortWithPlan) recovers exactly these codes.
		res, err := runPlan(ctx, s, shards, codes.Compare, keycoder.Coder[codes.Code](codes.Identity{}),
			func(r int) []codes.Code { return codes.Extract(shards[r], s.code) })
		if err != nil {
			return nil, err
		}
		plan := assemblePlan[K](s, res)
		plan.Splitters = prefixSplitters[K](res.splitters)
		return plan, nil
	}
	res, err := runPlan(ctx, s, shards, s.compare, s.coder,
		func(r int) []K { return slices.Clone(shards[r]) })
	if err != nil {
		return nil, err
	}
	plan := assemblePlan[K](s, res)
	plan.Splitters = res.splitters
	return plan, nil
}

// Plan is a finalized splitter plan: the output of splitter
// determination, detached from the sort that would normally follow, so
// it can be applied to any number of later sorts (SortWithPlan). See
// Sorter.Plan.
type Plan[K any] struct {
	// Splitters are the finalized bucket boundaries: Buckets-1 keys in
	// non-decreasing order. Bucket i receives keys in [S_{i-1}, S_i).
	Splitters []K
	// Buckets is the bucket count the plan partitions into (the node
	// count for NodeHSS).
	Buckets int
	// N is the global key count of the planning input.
	N int64
	// Rounds, SamplePerRound and TotalSample describe the
	// splitter-determination protocol, exactly as in Stats.
	Rounds         int
	SamplePerRound []int64
	TotalSample    int64
	// Finalized reports whether every splitter met its target rank
	// window (false means the termination fallback fired — e.g. on
	// mass-duplicate inputs without tagging).
	Finalized bool
	// Epsilon is the configured load-imbalance target ε the protocol
	// aimed for.
	Epsilon float64
	// AchievedEpsilon is the measured quality of the plan on the
	// planning input: the largest bucket's load relative to the even
	// share N/Buckets, minus 1. It is computed exactly (one extra
	// histogram round over the final splitters) and is what a
	// SortWithPlan on the same data would observe.
	AchievedEpsilon float64

	procs int
	alg   Algorithm
}

// prefixSplitters materializes code-space splitters as byte-string
// keys: each splitter becomes keycoder.PrefixBytes of its code, the
// canonical 8-byte big-endian representative whose re-extracted prefix
// code is the splitter code itself. Only the prefix plane calls this,
// so K is always []byte.
func prefixSplitters[K any](sp []codes.Code) []K {
	out := make([]K, len(sp))
	for i, c := range sp {
		out[i] = any(keycoder.PrefixBytes(uint64(c))).(K)
	}
	return out
}

// planResult carries one plan run's outcome out of the worker world.
type planResult[E any] struct {
	splitters      []E
	n              int64
	rounds         int
	samplePerRound []int64
	totalSample    int64
	finalized      bool
	achieved       float64
}

// Plan-run tags, outside every algorithm's default BaseTag range (each
// pool run starts from a clean transport, but keeping them disjoint
// from the determination tags keeps the protocol readable).
const (
	planTagCount = 900 // global N all-reduce (+1)
	planTagRanks = 910 // achieved-ε histogram all-reduce (+1)
)

// assemblePlan copies the run outcome into the public Plan shape
// (Splitters are filled by the caller, which knows the plane).
func assemblePlan[K any, E any](s *Sorter[K], res planResult[E]) *Plan[K] {
	eps := s.cfg.Epsilon
	if eps == 0 {
		if s.cfg.Algorithm == NodeHSS {
			eps = 0.02
		} else {
			eps = 0.05
		}
	}
	return &Plan[K]{
		Buckets:         s.effectiveBuckets(),
		N:               res.n,
		Rounds:          res.rounds,
		SamplePerRound:  res.samplePerRound,
		TotalSample:     res.totalSample,
		Finalized:       res.finalized,
		Epsilon:         eps,
		AchievedEpsilon: res.achieved,
		procs:           s.cfg.Procs,
		alg:             s.cfg.Algorithm,
	}
}

// runPlan executes the splitter-determination-only pipeline over the
// engine's worker pool. localOf materializes rank r's working copy
// (cloned or encoded — Plan never consumes the caller's shards).
func runPlan[K, E any](ctx context.Context, s *Sorter[K], shards [][]K, compare func(E, E) int, coder keycoder.Coder[E], localOf func(r int) []E) (planResult[E], error) {
	cfg := s.cfg
	var res planResult[E]
	err := s.pool.Run(ctx, func(c *comm.Comm) error {
		r := c.Rank()
		local := localOf(r)
		slices.SortFunc(local, compare)

		nVec, err := collective.AllReduce(c, planTagCount, []int64{int64(len(local))}, collective.SumInt64)
		if err != nil {
			return err
		}
		n := nVec[0]

		var sp []E
		rounds, finalized := 0, true
		var samplePerRound []int64
		var totalSample int64
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, NodeHSS:
			opts := hssDetOptions(cfg, compare)
			if cfg.Algorithm == NodeHSS {
				opts = nodeDetOptions(cfg, compare)
			}
			var info core.SplitterInfo
			sp, info, err = core.DetermineSplitters(c, local, n, opts)
			if err != nil {
				return err
			}
			rounds = info.Rounds
			samplePerRound = info.SamplePerRound
			totalSample = info.TotalSample
			finalized = info.Finalized
		case SampleSortRegular, SampleSortRandom:
			var size int64
			sp, size, err = samplesort.DetermineSplitters(c, local, n, samplesortDetOptions(cfg, compare))
			if err != nil {
				return err
			}
			rounds = 1
			samplePerRound = []int64{size}
			totalSample = size
		case HistogramSort:
			var probes int64
			sp, rounds, probes, err = histsort.DetermineSplitters(c, local, n, histsortDetOptions(cfg, compare, coder))
			if err != nil {
				return err
			}
			totalSample = probes
		default:
			return fmt.Errorf("hssort: %v is not splitter-based; plans do not apply", cfg.Algorithm)
		}

		// Measure the plan's exact quality on the planning data: one
		// more histogram round over the final splitters yields the
		// global bucket loads, hence the achieved ε.
		ranks := histogram.LocalRanks(local, sp, compare)
		global, err := collective.AllReduce(c, planTagRanks, ranks, collective.SumInt64)
		if err != nil {
			return err
		}
		if r == 0 {
			buckets := len(sp) + 1
			var maxLoad, prev int64
			for _, rk := range global {
				maxLoad = max(maxLoad, rk-prev)
				prev = rk
			}
			maxLoad = max(maxLoad, n-prev)
			achieved := 0.0
			if n > 0 {
				achieved = float64(maxLoad)*float64(buckets)/float64(n) - 1
			}
			res = planResult[E]{
				splitters:      sp,
				n:              n,
				rounds:         rounds,
				samplePerRound: samplePerRound,
				totalSample:    totalSample,
				finalized:      finalized,
				achieved:       achieved,
			}
		}
		return nil
	})
	if err != nil {
		return planResult[E]{}, ctxErr(ctx, err)
	}
	return res, nil
}

// The *DetOptions builders are the single source of the
// determination-relevant option wiring, shared by dispatch (full sorts)
// and runPlan (plan-only runs): the Plan API's core invariant — the
// splitters a Plan determines are exactly the ones the equivalent Sort
// would have determined — holds because both paths build these options
// through the same functions.

// hssDetOptions wires Config into the HSS-variant splitter
// determination options.
func hssDetOptions[E any](cfg Config, compare func(E, E) int) core.Options[E] {
	sched := core.FixedOversampling
	switch cfg.Algorithm {
	case HSSOneRound:
		sched = core.OneRoundScanning
	case HSSTheoretical:
		sched = core.Theoretical
	}
	return core.Options[E]{
		Cmp:              compare,
		Epsilon:          cfg.Epsilon,
		Buckets:          cfg.Buckets,
		Schedule:         sched,
		Rounds:           cfg.Rounds,
		OversampleFactor: cfg.OversampleFactor,
		Seed:             cfg.Seed,
		Approx:           cfg.Approx,
	}
}

// nodeDetOptions wires Config into NodeHSS's node-level splitter
// determination, mirroring nodesort.Sort's internal determine() exactly
// — FixedOversampling over node-count buckets, nodesort's 0.02 default
// ε, no Rounds/Approx threading — so plans match what its sorts do.
func nodeDetOptions[E any](cfg Config, compare func(E, E) int) core.Options[E] {
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.02
	}
	return core.Options[E]{
		Cmp:              compare,
		Epsilon:          eps,
		Buckets:          cfg.Procs / cfg.CoresPerNode,
		Schedule:         core.FixedOversampling,
		Seed:             cfg.Seed,
		OversampleFactor: cfg.OversampleFactor,
	}
}

// samplesortDetOptions wires Config into the sample-sort sampling
// phase options.
func samplesortDetOptions[E any](cfg Config, compare func(E, E) int) samplesort.Options[E] {
	method := samplesort.Regular
	if cfg.Algorithm == SampleSortRandom {
		method = samplesort.Random
	}
	return samplesort.Options[E]{
		Cmp:           compare,
		Epsilon:       cfg.Epsilon,
		Buckets:       cfg.Buckets,
		Method:        method,
		Oversample:    int(cfg.OversampleFactor),
		MaxOversample: cfg.MaxOversample,
		Seed:          cfg.Seed,
	}
}

// histsortDetOptions wires Config into classic histogram sort's probe
// refinement options.
func histsortDetOptions[E any](cfg Config, compare func(E, E) int, coder keycoder.Coder[E]) histsort.Options[E] {
	return histsort.Options[E]{
		Cmp:     compare,
		Coder:   coder,
		Epsilon: cfg.Epsilon,
		Buckets: cfg.Buckets,
	}
}

// injection carries a sort call's plan-reuse state into dispatch.
type injection[K any] struct {
	// splitters, when non-nil, skip splitter determination.
	splitters []K
	// stale is the staleness bound guarding injected splitters (0 off).
	stale float64
	// scratch is this rank's reusable exchange state (may be nil).
	scratch *exchange.Scratch[K]
	// spill is this rank's out-of-core manager (nil when MemoryBudget
	// is 0 or another process hosts the rank).
	spill *spill.Manager
}

// guardNaN resolves the per-call code path for inputs that may contain
// NaN keys — the one ordered value no order-preserving code can carry:
// the comparator sorts NaN below everything while the IEEE encoding
// scatters NaN payloads to both extremes. isNaN is non-nil only for
// float key types with a coder in play (plain float64/float32 keys and
// float-keyed KV records share this helper); when a NaN is found,
// CodePathAuto falls back to the comparator plane and CodePathOn fails
// loudly.
func guardNaN[E any](cp CodePath, shards [][]E, isNaN func(E) bool) (CodePath, error) {
	if isNaN == nil || cp == CodePathOff {
		return cp, nil
	}
	for _, s := range shards {
		for _, k := range s {
			if !isNaN(k) {
				continue
			}
			if cp == CodePathOn {
				return cp, fmt.Errorf("hssort: CodePathOn, but the input contains NaN keys, whose comparator order (NaN first) no order-preserving code realizes")
			}
			return CodePathOff, nil
		}
	}
	return cp, nil
}

// dispatch routes one rank's work to the selected algorithm. code, when
// non-nil, is the order-preserving extractor that puts the algorithm's
// compute hot paths on the code plane (on the bijective plane K is
// already the code-point type and code is the identity); prefix marks
// it non-injective, selecting the tie-breaking prefix pipelines. inj
// carries plan injection and per-rank scratch for the splitter-based
// algorithms.
func dispatch[K any](c *comm.Comm, local []K, cfg Config, compare func(K, K) int, coder keycoder.Coder[K], code func(K) uint64, prefix bool, inj injection[K]) ([]K, core.Stats, error) {
	var owner func(int) int
	if cfg.RoundRobinBuckets {
		owner = exchange.RoundRobinOwner(cfg.Procs)
	}
	chunkKeys := cfg.ChunkKeys
	if chunkKeys == 0 && cfg.StreamExchange {
		chunkKeys = exchange.DefaultChunkKeys
	}
	if chunkKeys != 0 {
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, NodeHSS:
		default:
			return nil, core.Stats{}, fmt.Errorf("hssort: StreamExchange is not supported by %v", cfg.Algorithm)
		}
	}
	switch cfg.Algorithm {
	case HSS, HSSOneRound, HSSTheoretical:
		o := hssDetOptions(cfg, compare)
		o.Code = code
		o.PrefixCode = prefix
		o.Owner = owner
		o.ChunkKeys = chunkKeys
		o.Workers = cfg.Workers
		o.Splitters = inj.splitters
		o.StaleBound = inj.stale
		o.Scratch = inj.scratch
		o.Spill = inj.spill
		return core.Sort(c, local, o)
	case SampleSortRegular, SampleSortRandom:
		o := samplesortDetOptions(cfg, compare)
		o.Code = code
		o.PrefixCode = prefix
		o.Owner = owner
		o.ChunkKeys = chunkKeys
		o.Workers = cfg.Workers
		o.Splitters = inj.splitters
		o.StaleBound = inj.stale
		o.Scratch = inj.scratch
		o.Spill = inj.spill
		return samplesort.Sort(c, local, o)
	case HistogramSort:
		if coder == nil && !prefix {
			return nil, core.Stats{}, fmt.Errorf("hssort: %v requires an integer or float key type", cfg.Algorithm)
		}
		o := histsortDetOptions(cfg, compare, coder)
		o.Code = code
		o.PrefixCode = prefix
		o.Owner = owner
		o.ChunkKeys = chunkKeys
		o.Workers = cfg.Workers
		o.Splitters = inj.splitters
		o.StaleBound = inj.stale
		o.Scratch = inj.scratch
		o.Spill = inj.spill
		return histsort.Sort(c, local, o)
	case Bitonic:
		return bitonic.Sort(c, local, bitonic.Options[K]{Cmp: compare})
	case Radix:
		if coder == nil {
			return nil, core.Stats{}, fmt.Errorf("hssort: %v requires an integer or float key type", cfg.Algorithm)
		}
		return radix.Sort(c, local, radix.Options[K]{Cmp: compare, Coder: coder, Code: code})
	case NodeHSS:
		return nodesort.Sort(c, local, nodesort.Options[K]{
			Cmp:              compare,
			Code:             code,
			PrefixCode:       prefix,
			CoresPerNode:     cfg.CoresPerNode,
			Epsilon:          cfg.Epsilon,
			Schedule:         core.FixedOversampling,
			Seed:             cfg.Seed,
			OversampleFactor: cfg.OversampleFactor,
			ChunkKeys:        chunkKeys,
			Workers:          cfg.Workers,
			Splitters:        inj.splitters,
			StaleBound:       inj.stale,
			Scratch:          inj.scratch,
			Spill:            inj.spill,
		})
	case OverPartition:
		return overpartition.Sort(c, local, overpartition.Options[K]{
			Cmp:       compare,
			OverRatio: cfg.Rounds, // reuse Rounds as k; 0 → log p
			Seed:      cfg.Seed,
		})
	default:
		return nil, core.Stats{}, fmt.Errorf("hssort: unknown algorithm %v", cfg.Algorithm)
	}
}
