package exchange

import (
	"cmp"
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/keycoder"
	"hssort/internal/merge"
)

// TestExchangeAccounting pins the wire-size model: every message —
// including empty ones, which still pay the §5.1 latency term — charges
// MsgHeaderBytes, plus RunHeaderBytes and the payload per carried run.
func TestExchangeAccounting(t *testing.T) {
	const p = 3
	shards := [][]int64{{0, 1, 12}, {5, 15, 25}, {21, 22}}
	splitters := []int64{10, 20}
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		runs := Partition(shards[c.Rank()], splitters, icmp)
		_, err := Exchange(c, 1, runs, ContiguousOwner(p, p))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-rank non-local runs: rank 0 sends {12} to 1 and nothing to 2;
	// rank 1 sends {5} to 0 and {25} to 2; rank 2 sends two empty
	// messages. 6 messages total, 3 of them carrying one run each.
	wantBytes := int64(6*MsgHeaderBytes + 3*(RunHeaderBytes+8))
	total := w.TotalCounters()
	if total.MsgsSent != 6 {
		t.Errorf("MsgsSent = %d, want 6", total.MsgsSent)
	}
	if total.BytesSent != wantBytes {
		t.Errorf("BytesSent = %d, want %d", total.BytesSent, wantBytes)
	}
	if total.BytesRecv != wantBytes {
		t.Errorf("BytesRecv = %d, want %d (all sent traffic delivered)", total.BytesRecv, wantBytes)
	}
}

// pair is a key with a hidden identity: cmp orders by k only, so
// duplicate keys from different origins are distinguishable in the
// output — any tie-break divergence between the exchange paths shows up
// as an id mismatch.
type pair struct{ k, id int64 }

func pairCmp(a, b pair) int { return cmp.Compare(a.k, b.k) }

// streamCase runs one shard set through both data-movement paths on one
// backend and requires rank-identical output, plus the in-flight bound.
func streamCase(t *testing.T, mk func(p int) comm.Transport, shards [][]pair, buckets int, owner func(int) int, opt StreamOptions) {
	t.Helper()
	p := len(shards)
	splitters := make([]pair, buckets-1)
	// Evenly spaced splitters over the observed key range, some duplicated.
	var all []pair
	for _, s := range shards {
		all = append(all, s...)
	}
	slices.SortFunc(all, pairCmp)
	for i := range splitters {
		if len(all) == 0 {
			splitters[i] = pair{}
			continue
		}
		splitters[i] = pair{k: all[(i+1)*len(all)/buckets%len(all)].k}
	}
	slices.SortFunc(splitters, pairCmp)

	outM := make([][]pair, p)
	w := comm.NewWorld(p, comm.WithTransport(mk(p)), comm.WithTimeout(20*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		runs := Partition(slices.Clone(shards[c.Rank()]), splitters, pairCmp)
		recv, err := Exchange(c, 1, runs, owner)
		if err != nil {
			return err
		}
		outM[c.Rank()] = merge.KWay(recv, pairCmp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	outS := make([][]pair, p)
	stats := make([]StreamStats, p)
	w = comm.NewWorld(p, comm.WithTransport(mk(p)), comm.WithTimeout(20*time.Second))
	err = w.Run(func(c *comm.Comm) error {
		runs := Partition(slices.Clone(shards[c.Rank()]), splitters, pairCmp)
		out, st, err := ExchangeStream(c, 1, runs, owner, pairCmp, nil, opt, nil)
		if err != nil {
			return err
		}
		outS[c.Rank()] = out
		stats[c.Rank()] = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Third pass: the same streaming exchange on the code plane (records
	// merged by an order-preserving extractor instead of the comparator).
	// Identical output, duplicate ids included: equal keys have equal
	// codes and both planes tie-break by sender run.
	outC := make([][]pair, p)
	w = comm.NewWorld(p, comm.WithTransport(mk(p)), comm.WithTimeout(20*time.Second))
	err = w.Run(func(c *comm.Comm) error {
		runs := Partition(slices.Clone(shards[c.Rank()]), splitters, pairCmp)
		out, _, err := ExchangeStream(c, 1, runs, owner, pairCmp,
			func(x pair) uint64 { return keycoder.Int64{}.Encode(x.k) }, opt, nil)
		if err != nil {
			return err
		}
		outC[c.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	eff := opt.withDefaults()
	budget := int64(p-1) * int64(eff.Window) * int64(eff.ChunkKeys) * comm.SizeOf[pair]()
	for r := 0; r < p; r++ {
		if !slices.Equal(outM[r], outS[r]) {
			t.Fatalf("rank %d: streaming output diverged from materializing path (%d vs %d keys)", r, len(outS[r]), len(outM[r]))
		}
		if !slices.Equal(outM[r], outC[r]) {
			t.Fatalf("rank %d: code-plane streaming output diverged (%d vs %d keys)", r, len(outC[r]), len(outM[r]))
		}
		if stats[r].PeakInFlight > budget {
			t.Errorf("rank %d: peak in-flight %d exceeds budget %d", r, stats[r].PeakInFlight, budget)
		}
	}
}

// TestExchangeStreamEquivalence sweeps world sizes, ownership maps,
// chunk sizes and windows on both transports: the streaming pipeline
// must be output-identical to Exchange + KWay, duplicates included.
func TestExchangeStreamEquivalence(t *testing.T) {
	backends := []struct {
		name string
		mk   func(p int) comm.Transport
	}{
		{"sim", func(p int) comm.Transport { return comm.NewSimTransport(p) }},
		{"inproc", func(p int) comm.Transport { return comm.NewInprocTransport(p) }},
	}
	type shape struct {
		name    string
		p       int
		buckets int
		owner   func(buckets, p int) func(int) int
	}
	contig := func(b, p int) func(int) int { return ContiguousOwner(b, p) }
	rr := func(b, p int) func(int) int { return RoundRobinOwner(p) }
	shapes := []shape{
		{"p1", 1, 1, contig},
		{"p2", 2, 2, contig},
		{"p5-flat", 5, 5, contig},
		{"p4-overpart", 4, 12, contig},
		{"p3-roundrobin", 3, 9, rr},
	}
	opts := []StreamOptions{
		{ChunkKeys: 1, Window: 1}, // worst case: every key its own message
		{ChunkKeys: 7, Window: 2},
		{ChunkKeys: 1 << 16, Window: 2}, // defaults: one chunk per run
	}
	for _, be := range backends {
		for _, sh := range shapes {
			for oi, opt := range opts {
				t.Run(fmt.Sprintf("%s/%s/opt%d", be.name, sh.name, oi), func(t *testing.T) {
					rng := rand.New(rand.NewPCG(uint64(sh.p)*1000+uint64(oi), 99))
					shards := make([][]pair, sh.p)
					id := int64(0)
					for r := range shards {
						n := rng.IntN(300)
						shards[r] = make([]pair, n)
						for i := range shards[r] {
							// Small key range: lots of cross-rank duplicates.
							shards[r][i] = pair{k: rng.Int64N(40), id: id}
							id++
						}
						slices.SortFunc(shards[r], pairCmp)
					}
					streamCase(t, be.mk, shards, sh.buckets, sh.owner(sh.buckets, sh.p), opt)
				})
			}
		}
	}
}

// TestExchangeStreamEmptyAndSkewed covers degenerate loads: some ranks
// empty, all data on one rank, empty world-wide buckets.
func TestExchangeStreamEmptyAndSkewed(t *testing.T) {
	mk := func(p int) comm.Transport { return comm.NewSimTransport(p) }
	t.Run("all-empty", func(t *testing.T) {
		shards := make([][]pair, 4)
		streamCase(t, mk, shards, 4, ContiguousOwner(4, 4), StreamOptions{ChunkKeys: 4})
	})
	t.Run("one-loaded", func(t *testing.T) {
		shards := make([][]pair, 4)
		for i := 0; i < 100; i++ {
			shards[2] = append(shards[2], pair{k: int64(i % 13), id: int64(i)})
		}
		slices.SortFunc(shards[2], pairCmp)
		streamCase(t, mk, shards, 4, ContiguousOwner(4, 4), StreamOptions{ChunkKeys: 8})
	})
}

// TestExchangeStreamBadOwner mirrors the materializing path's owner
// validation.
func TestExchangeStreamBadOwner(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(time.Second))
	err := w.Run(func(c *comm.Comm) error {
		runs := [][]int64{{1}, {2}}
		_, _, err := ExchangeStream(c, 1, runs, func(int) int { return 7 }, icmp, nil, StreamOptions{}, nil)
		if err == nil {
			return fmt.Errorf("bad owner accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
