// Command bench runs the repository's headline benchmarks and emits the
// perf trajectory artifacts future PRs diff against:
//
//   - a raw, benchstat-compatible text file (every `go test -bench` line
//     verbatim, so `benchstat old.txt new.txt` works out of the box), and
//   - a JSON summary with one entry per benchmark result, parsed into
//     name, sub-benchmark path, iteration count and metric map.
//
// Usage:
//
//	go run ./cmd/bench                       # full headline set -> BENCH_PR10.{txt,json}
//	go run ./cmd/bench -benchtime 1x -count 1  # CI smoke
//	go run ./cmd/bench -bench 'CodePath' -out /tmp/code  # focused run
//
// The headline set covers the compute plane (BenchmarkCodePath and the
// kernel-level CodeLocalSort/CodeMerge), the data plane
// (StreamExchange, Exchange), the transport comparisons (in-memory
// backends plus the tcp wire backend) and the engine
// amortization (BenchmarkSorterReuse: one-shot vs engine-reuse vs
// plan-reuse), the intra-rank multicore plane (BenchmarkWorkers:
// the four parallel kernels plus the end-to-end sort swept over
// worker-pool sizes) and the byte-string prefix plane
// (BenchmarkByteKeys: hash-like vs shared-prefix keys, prefix plane vs
// pure comparator) — the benchmarks whose shapes PRs claim wins on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	// Pkg is the Go package the benchmark ran in.
	Pkg string `json:"pkg"`
	// Name is the full benchmark name including sub-benchmark path and
	// the -procs suffix stripped (Procs carries it).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the benchmark name.
	Procs int `json:"procs"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported metric (ns/op,
	// MB/s, B/op, allocs/op, and any b.ReportMetric custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// output is the JSON artifact schema.
type output struct {
	// Label identifies the run (defaults to the artifact prefix).
	Label string `json:"label"`
	// Date is the RFC3339 run timestamp.
	Date string `json:"date"`
	// GoVersion, GOOS, GOARCH describe the toolchain and host.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Bench and Count echo the selection flags.
	Bench string `json:"bench"`
	Count int    `json:"count"`
	// Benchmarks holds every parsed result in output order.
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches a `go test -bench` result line:
// BenchmarkName/sub/path-8  <iters>  <value> <unit> [<value> <unit>]...
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func parseLine(pkg, line string) (result, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return result{}, false
	}
	iters, err := strconv.ParseInt(m[3], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Pkg: pkg, Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
	if m[2] != "" {
		r.Procs, _ = strconv.Atoi(m[2])
	}
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

func main() {
	var (
		bench     = flag.String("bench", "CodePath|CodeLocalSort|CodeMerge|StreamExchange|TransportBackends|TCPTransport|Partition|SorterReuse|Workers|ByteKeys|Spill", "benchmark selection regex (go test -bench)")
		benchtime = flag.String("benchtime", "", "per-benchmark time or iteration budget (go test -benchtime)")
		count     = flag.Int("count", 1, "repetitions per benchmark (go test -count); use >= 5 for benchstat-grade numbers")
		timeout   = flag.String("timeout", "30m", "go test timeout")
		out       = flag.String("out", "BENCH_PR10", "artifact prefix: <out>.txt (benchstat-compatible raw) and <out>.json")
		packages  = flag.String("packages", "./...", "packages to benchmark")
	)
	flag.Parse()

	args := []string{"test", "-run=NONE", "-bench=" + *bench, "-benchmem",
		"-count=" + strconv.Itoa(*count), "-timeout=" + *timeout}
	if *benchtime != "" {
		args = append(args, "-benchtime="+*benchtime)
	}
	args = append(args, *packages)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	txt, err := os.Create(*out + ".txt")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer txt.Close()

	res := output{
		Label:     *out,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		Count:     *count,
	}
	pkg := ""
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		fmt.Fprintln(txt, line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if r, ok := parseLine(pkg, line); ok {
			res.Benchmarks = append(res.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "bench: go test failed:", err)
		os.Exit(1)
	}
	if len(res.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results parsed")
		os.Exit(1)
	}

	js, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if err := os.WriteFile(*out+".json", js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nbench: %d results -> %s.txt (benchstat-compatible), %s.json\n", len(res.Benchmarks), *out, *out)
}
