package histsort

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/dist"
	"hssort/internal/keycoder"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func baseOpt() Options[int64] {
	return Options[int64]{Cmp: icmp, Coder: keycoder.Int64{}, Epsilon: 0.1}
}

func trySort(shards [][]int64, opt Options[int64]) ([][]int64, core.Stats, error) {
	p := len(shards)
	outs := make([][]int64, p)
	var stats core.Stats
	w := comm.NewWorld(p, comm.WithTimeout(120*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	return outs, stats, err
}

func checkGloballySorted(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, out := range outs {
		if !slices.IsSorted(out) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, out...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("output not the sorted permutation of input")
	}
}

func clone(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

func TestHistSortUniform(t *testing.T) {
	const p, perRank = 6, 1500
	spec := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 30}
	shards := spec.Shards(perRank, p, 3)
	outs, stats, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", stats.Imbalance)
	}
	if stats.Rounds < 2 {
		t.Errorf("bisection finished in %d rounds — suspicious", stats.Rounds)
	}
}

func TestHistSortSkewNeedsMoreRoundsThanUniform(t *testing.T) {
	// §2.3: skewed key distributions inflate classic histogram sort's
	// round count — the motivation for HSS.
	const p, perRank = 6, 1500
	uni := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 50}
	skew := dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 50, Param: 8}
	_, uniStats, err := trySort(clone(uni.Shards(perRank, p, 5)), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	_, skewStats, err := trySort(clone(skew.Shards(perRank, p, 5)), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	if skewStats.Rounds < uniStats.Rounds {
		t.Logf("skew rounds %d < uniform rounds %d (can happen on small inputs)", skewStats.Rounds, uniStats.Rounds)
	}
	if skewStats.Rounds < 3 {
		t.Errorf("power-skew over 2^50 range finished in %d rounds", skewStats.Rounds)
	}
}

func TestHistSortMoreProbesFewerRounds(t *testing.T) {
	const p, perRank = 4, 1000
	spec := dist.Spec{Kind: dist.Gaussian, Min: 0, Max: 1 << 40}
	one := baseOpt()
	one.ProbesPerSplitter = 1
	many := baseOpt()
	many.ProbesPerSplitter = 8
	_, oneStats, err := trySort(clone(spec.Shards(perRank, p, 7)), one)
	if err != nil {
		t.Fatal(err)
	}
	_, manyStats, err := trySort(clone(spec.Shards(perRank, p, 7)), many)
	if err != nil {
		t.Fatal(err)
	}
	if manyStats.Rounds >= oneStats.Rounds {
		t.Errorf("8 probes/splitter (%d rounds) not faster than 1 (%d rounds)",
			manyStats.Rounds, oneStats.Rounds)
	}
}

func TestHistSortDuplicatesTerminate(t *testing.T) {
	const p = 4
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, 300)
		for i := range shards[r] {
			shards[r][i] = int64(i % 3) // three distinct values
		}
	}
	opt := baseOpt()
	opt.MaxRounds = 70
	outs, _, err := trySort(clone(shards), opt)
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)
}

func TestHistSortSingleRankAndEmpty(t *testing.T) {
	shards := [][]int64{{9, 1, 5}}
	outs, _, err := trySort(clone(shards), baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)

	outs, _, err = trySort([][]int64{{}, {}}, baseOpt())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if len(o) != 0 {
			t.Errorf("empty input produced %v", o)
		}
	}
}

func TestHistSortRejectsMissingDeps(t *testing.T) {
	if _, _, err := trySort([][]int64{{1}}, Options[int64]{Coder: keycoder.Int64{}}); err == nil {
		t.Error("missing Cmp accepted")
	}
	if _, _, err := trySort([][]int64{{1}}, Options[int64]{Cmp: icmp}); err == nil {
		t.Error("missing Coder accepted")
	}
}

func TestHistSortProperty(t *testing.T) {
	f := func(seed uint32, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 20}
		shards := make([][]int64, p)
		for r := range shards {
			shards[r] = spec.Shard(int(seed%300)+20, r, p, uint64(seed))
		}
		opt := baseOpt()
		opt.Epsilon = 0.2
		opt.ProbesPerSplitter = 4
		outs, _, err := trySort(clone(shards), opt)
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
