package samplesort

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/merge"
	"hssort/internal/par"
	"hssort/internal/sampling"
	"hssort/internal/spill"
)

// Method selects the sampling method.
type Method int

const (
	// Regular picks s evenly spaced keys per processor (§4.1.2).
	Regular Method = iota
	// Random picks one uniform key per block of N/(ps) keys (§4.1.1).
	Random
)

// String returns the method name used in experiment output.
func (m Method) String() string {
	switch m {
	case Regular:
		return "regular"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a sample sort. Cmp is required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// Code, when set, must be an order-preserving uint64 extractor for
	// Cmp; the compute hot paths (local sort, partition cuts, merges)
	// then run on the comparator-free code plane (see core.Options.Code).
	Code func(K) uint64
	// PrefixCode marks Code as a non-injective prefix extractor (see
	// core.Options.PrefixCode): the pipeline runs code-keyed with a
	// comparator tie-break after the local sort and inside the merges,
	// and the sampling phase gathers fixed-size code points instead of
	// keys. Requires Code.
	PrefixCode bool
	// Epsilon is the target load-imbalance threshold. Default 0.05.
	Epsilon float64
	// Buckets is the number of output ranges. Default: world size.
	Buckets int
	// Owner maps buckets to ranks. Default contiguous.
	Owner func(bucket int) int
	// Method selects regular or random sampling. Default Regular.
	Method Method
	// Oversample is the per-processor sample size s. Default: the
	// method's provable value — B/ε for Regular (Lemma 4.1.1),
	// 4(1+ε)ln N/ε² for Random (§4.1.1) — capped by MaxOversample.
	Oversample int
	// MaxOversample caps s so huge configurations stay runnable;
	// 0 means no cap. The cap mirrors what practical deployments do and
	// is reported in Stats so experiments can show the guarantee/cost
	// trade-off.
	MaxOversample int
	// Seed drives random sampling. Default 1.
	Seed uint64
	// ChunkKeys, when positive, selects the streaming chunked exchange
	// (see core.Options.ChunkKeys). 0 = materializing exchange.
	ChunkKeys int
	// Workers is this rank's compute-phase worker budget (see
	// core.Options.Workers). <= 1 runs every kernel serially.
	Workers int
	// Splitters, when non-nil, injects pre-determined splitters and
	// skips the sampling phase entirely (see core.Options.Splitters):
	// Buckets-1 keys in non-decreasing cmp order, identical on every
	// rank.
	Splitters []K
	// StaleBound arms the staleness guard for injected Splitters (see
	// core.Options.StaleBound). 0 disables it.
	StaleBound float64
	// Scratch, when non-nil, is this rank's reusable exchange state
	// (see core.Options.Scratch).
	Scratch *exchange.Scratch[K]
	// Spill, when non-nil, is this rank's out-of-core manager (see
	// core.Options.Spill). nil keeps every phase in memory.
	Spill *spill.Manager
	// BaseTag is the start of the tag range this sort uses. Default 2000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults(p int, n int64) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("samplesort: Options.Cmp is required")
	}
	if o.PrefixCode && o.Code == nil {
		return o, fmt.Errorf("samplesort: PrefixCode requires Code")
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("samplesort: Epsilon %v < 0", o.Epsilon)
	}
	if o.Buckets == 0 {
		o.Buckets = p
	}
	if o.Buckets < 1 {
		return o, fmt.Errorf("samplesort: Buckets %d < 1", o.Buckets)
	}
	if o.Owner == nil {
		o.Owner = exchange.ContiguousOwner(o.Buckets, p)
	}
	if o.Oversample == 0 {
		switch o.Method {
		case Regular:
			o.Oversample = int(math.Ceil(float64(o.Buckets) / o.Epsilon))
		case Random:
			if n < 2 {
				n = 2
			}
			o.Oversample = int(math.Ceil(4 * (1 + o.Epsilon) * math.Log(float64(n)) / (o.Epsilon * o.Epsilon)))
		}
	}
	if o.Oversample < 1 {
		o.Oversample = 1
	}
	if o.MaxOversample > 0 && o.Oversample > o.MaxOversample {
		o.Oversample = o.MaxOversample
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ChunkKeys < 0 {
		return o, fmt.Errorf("samplesort: ChunkKeys %d < 0", o.ChunkKeys)
	}
	if o.StaleBound < 0 {
		return o, fmt.Errorf("samplesort: StaleBound %v < 0", o.StaleBound)
	}
	if o.Splitters != nil && len(o.Splitters) != o.Buckets-1 {
		return o, fmt.Errorf("samplesort: %d injected splitters for %d buckets (want %d)", len(o.Splitters), o.Buckets, o.Buckets-1)
	}
	if o.BaseTag == 0 {
		o.BaseTag = 2000
	}
	return o, nil
}

// Tag offsets within BaseTag.
const (
	tagCount    = 0 // N all-reduce (+1)
	tagGather   = 2 // sample gather
	tagSplit    = 3 // splitter broadcast (+1)
	tagExchange = 5 // bucket exchange
	tagStats    = 6 // stats all-reduce (+1)
	tagStale    = 8 // staleness-guard bucket-load all-reduce
)

// Sort runs parallel sample sort on this rank's keys and returns its
// globally sorted partition. Every rank must call Sort with the same
// Options. The input slice is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	if opt.PrefixCode {
		if opt.Code == nil {
			return nil, core.Stats{}, fmt.Errorf("samplesort: PrefixCode requires Code")
		}
		return sortPrefix(c, local, opt)
	}
	var stats core.Stats
	pool := par.New(opt.Workers)
	stats.Workers = pool.Workers()
	// Phase 1: local sort — radix on the code plane when available,
	// fanned over this rank's worker pool; spill-aware under a memory
	// budget (see spill.LocalSort).
	t0 := time.Now()
	localCodes, err := spill.LocalSort(opt.Spill, local, opt.Code, opt.Cmp, pool)
	if err != nil {
		return nil, stats, err
	}
	localSort := time.Since(t0)

	nVec, err := collective.AllReduce(c, opt.BaseTag+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	n := nVec[0]
	opt, err = opt.withDefaults(c.Size(), n)
	if err != nil {
		return nil, stats, err
	}
	base := opt.BaseTag
	stats.N = n
	stats.Buckets = opt.Buckets

	// Phase 2: sampling + splitter selection at the central processor —
	// skipped when a stored plan injects the splitters.
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters := opt.Splitters
	if splitters != nil {
		exchange.ValidateSplitters(splitters, opt.Cmp)
	} else {
		var sampleSize int64
		splitters, sampleSize, err = DetermineSplitters(c, local, n, opt)
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = 1
		stats.SamplePerRound = []int64{sampleSize}
		stats.TotalSample = sampleSize
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	// Phase 3+4: exchange and merge (identical to HSS).
	partition := func(sp []K) [][]K {
		if localCodes != nil {
			return exchange.PartitionByCodePar(local, localCodes, codes.Extract(sp, opt.Code), pool)
		}
		return exchange.PartitionPar(local, sp, opt.Cmp, pool)
	}
	t2 := time.Now()
	runs := partition(splitters)
	partitionTime := time.Since(t2)
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			splitters, sampleSize, err := DetermineSplitters(c, local, n, opt)
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = 1
			stats.SamplePerRound = []int64{sampleSize}
			stats.TotalSample = sampleSize
			runs = partition(splitters)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}
	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Spill: opt.Spill}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := core.FinishStats(c, base+tagStats, &stats, core.PhaseTimes{
		SplitterBytes: splitterBytes,
		ExchangeBytes: exchangeBytes,
		LocalSort:     localSort,
		Splitter:      splitterTime,
		Exchange:      partitionTime + exchangeTime,
		Merge:         mergeTime,
		Overlap:       sst.Overlap,
		PeakInFlight:  sst.PeakInFlight,
		OutCount:      len(out),
		ParSpawned:    pc.Spawned,
		ParTasks:      pc.Tasks,
		Spill:         opt.Spill.TakeStats(),
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// sortPrefix is the prefix plane (Options.PrefixCode): the local sort
// radix-sorts the code decoration and repairs equal-code spans with the
// comparator, the sampling phase runs entirely over the sorted code
// decoration (gathered samples are fixed-size code points regardless of
// key length), partition cuts run on codes, and the merges tie-break
// equal codes with the comparator (see core.Options.PrefixCode).
func sortPrefix[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	var stats core.Stats
	pool := par.New(opt.Workers)
	stats.Workers = pool.Workers()

	t0 := time.Now()
	localCodes := codes.SortByCodePar(local, opt.Code, pool)
	collisions := codes.TieBreakPar(localCodes, local, opt.Cmp, pool)
	localSort := time.Since(t0)

	if opt.BaseTag == 0 {
		opt.BaseTag = 2000
	}
	nVec, err := collective.AllReduce(c, opt.BaseTag+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	n := nVec[0]
	opt, err = opt.withDefaults(c.Size(), n)
	if err != nil {
		return nil, stats, err
	}
	base := opt.BaseTag
	stats.N = n
	stats.Buckets = opt.Buckets

	// Phase 2: sampling + splitter selection in code space. Injected
	// splitters are projected to their codes (exact: a splitter's code
	// is a pure function of the key).
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	var spCodes []codes.Code
	if opt.Splitters != nil {
		spCodes = codes.Extract(opt.Splitters, opt.Code)
		exchange.ValidateSplitters(spCodes, codes.Compare)
	} else {
		var sampleSize int64
		spCodes, sampleSize, err = DetermineSplitters(c, localCodes, n, prefixDetOptions(opt))
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = 1
		stats.SamplePerRound = []int64{sampleSize}
		stats.TotalSample = sampleSize
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	t2 := time.Now()
	runs := exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
	partitionTime := time.Since(t2)
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			var sampleSize int64
			spCodes, sampleSize, err = DetermineSplitters(c, localCodes, n, prefixDetOptions(opt))
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = 1
			stats.SamplePerRound = []int64{sampleSize}
			stats.TotalSample = sampleSize
			runs = exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}

	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Tie: true}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := core.FinishStats(c, base+tagStats, &stats, core.PhaseTimes{
		SplitterBytes:    splitterBytes,
		ExchangeBytes:    exchangeBytes,
		LocalSort:        localSort,
		Splitter:         splitterTime,
		Exchange:         partitionTime + exchangeTime,
		Merge:            mergeTime,
		Overlap:          sst.Overlap,
		PeakInFlight:     sst.PeakInFlight,
		OutCount:         len(out),
		ParSpawned:       pc.Spawned,
		ParTasks:         pc.Tasks,
		PrefixCollisions: collisions,
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// prefixDetOptions projects prefix-plane options onto code space for the
// sampling phase: draws, the root's sample merge and splitter selection
// all run over sorted code decorations under raw integer comparison.
func prefixDetOptions[K any](o Options[K]) Options[codes.Code] {
	return Options[codes.Code]{
		Cmp:           codes.Compare,
		Code:          codes.ExtractCode,
		Epsilon:       o.Epsilon,
		Buckets:       o.Buckets,
		Method:        o.Method,
		Oversample:    o.Oversample,
		MaxOversample: o.MaxOversample,
		Seed:          o.Seed,
		BaseTag:       o.BaseTag,
	}
}

// DetermineSplitters runs the sampling phase (§2.2 steps 1-2): every rank
// contributes s keys, the root sorts the combined sample and selects
// evenly spaced splitters, broadcast to all ranks. local must already be
// sorted. It returns the splitters on every rank plus the combined
// sample size. Exported so splitter plans (hssort.Sorter.Plan) can run
// the sampling phase alone; defaults are applied internally
// (idempotent).
func DetermineSplitters[K any](c *comm.Comm, local []K, n int64, opt Options[K]) ([]K, int64, error) {
	opt, err := opt.withDefaults(c.Size(), n) // idempotent
	if err != nil {
		return nil, 0, err
	}
	var mine []K
	switch opt.Method {
	case Regular:
		mine = sampling.Regular(local, opt.Oversample)
	case Random:
		rng := rand.New(rand.NewPCG(opt.Seed, uint64(c.Rank())*0x9e3779b97f4a7c15))
		mine = sampling.RandomBlock(local, opt.Oversample, rng)
	default:
		return nil, 0, fmt.Errorf("samplesort: unknown method %d", opt.Method)
	}
	parts, err := collective.Gatherv(c, 0, opt.BaseTag+tagGather, mine)
	if err != nil {
		return nil, 0, err
	}
	var splitters []K
	var sampleSize int64
	if c.Rank() == 0 {
		// Merge the p sorted per-rank samples (duplicates retained: the
		// splitter index formula depends on the full multiset).
		lambda := mergeParts(parts, opt.Cmp)
		sampleSize = int64(len(lambda))
		splitters = selectSplitters(lambda, c.Size(), opt)
	}
	splitters, err = collective.Bcast(c, 0, opt.BaseTag+tagSplit, splitters)
	if err != nil {
		return nil, 0, err
	}
	size, err := collective.BcastValue(c, 0, opt.BaseTag+tagSplit+1, sampleSize)
	if err != nil {
		return nil, 0, err
	}
	// The one-time validation that lets exchange.Partition skip its
	// per-call O(B) re-check.
	exchange.ValidateSplitters(splitters, opt.Cmp)
	return splitters, size, nil
}

// mergeParts pairwise-merges sorted per-rank samples.
func mergeParts[K any](parts [][]K, cmp func(K, K) int) []K {
	for len(parts) > 1 {
		var next [][]K
		for i := 0; i+1 < len(parts); i += 2 {
			next = append(next, merge.Two(parts[i], parts[i+1], cmp))
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	if len(parts) == 0 {
		return nil
	}
	return parts[0]
}

// selectSplitters picks B-1 splitters from the combined sorted sample Λ.
// Regular sampling uses the shifted index λ_{s·i − p/2} of §4.1.2
// (generalized to B buckets via the sample fraction i/B with a half-block
// back-shift); random sampling picks evenly spaced keys (§4.1.1).
func selectSplitters[K any](lambda []K, p int, opt Options[K]) []K {
	m := len(lambda)
	b := opt.Buckets
	if m == 0 || b == 1 {
		// No sample (empty input) or a single bucket: no splitters —
		// everything lands in bucket 0.
		return []K{}
	}
	out := make([]K, 0, b-1)
	for i := 1; i < b; i++ {
		var idx int
		switch opt.Method {
		case Regular:
			// 1-based λ_{s·i − p/2} with s·i generalized to i·M/B.
			idx = i*m/b - p/2 - 1
		default:
			idx = i * m / b
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= m {
			idx = m - 1
		}
		out = append(out, lambda[idx])
	}
	// Clamping can invert neighbours on tiny samples; restore order.
	slices.SortFunc(out, opt.Cmp)
	return out
}
