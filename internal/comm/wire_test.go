package comm

import (
	"math"
	"reflect"
	"testing"
)

// The wire codec must round-trip every payload shape the repository's
// protocols send: bulk key slices, generic protocol structs with
// unexported fields, nested slices, strings, and nil — with the decoded
// value owning fresh memory.

// wireStruct mirrors the protocol structs (streamMsg, bruckItem,
// roundPlan): unexported fields, nested slices, bools.
type wireStruct struct {
	runs   [][]int64
	keys   int
	total  int64
	last   bool
	credit int32
}

// wireNested mirrors roundPlan: a struct holding slices of flat structs.
type wireInterval struct {
	Lo    int64
	HasLo bool
	Hi    int64
	HasHi bool
}

type wireNested struct {
	Done      bool
	Intervals []wireInterval
	Splitters []int64
	note      string
}

func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	buf, err := appendWirePayload(nil, payload)
	if err != nil {
		t.Fatalf("encode %T: %v", payload, err)
	}
	got, err := decodeWirePayload(buf)
	if err != nil {
		t.Fatalf("decode %T: %v", payload, err)
	}
	return got
}

func TestWireRoundTripBulkSlices(t *testing.T) {
	RegisterWire[[]int64]()
	cases := []any{
		[]int64{math.MinInt64, -1, 0, 1, math.MaxInt64},
		[]uint64{0, 1, math.MaxUint64},
		[]int32{math.MinInt32, 0, math.MaxInt32},
		[]uint32{0, math.MaxUint32},
		[]float64{math.Inf(-1), -0.0, 0.0, 1.5, math.Inf(1)},
		[]float32{-1.5, 0, float32(math.Inf(1))},
		[]int64{},       // empty, non-nil
		[]int64(nil),    // typed nil
		[]byte{1, 2, 3}, // predeclared byte slice
		[]string{"a", ""},
	}
	for _, c := range cases {
		got := roundTrip(t, c)
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip %T: got %#v, want %#v", c, got, c)
		}
	}
}

func TestWireRoundTripValues(t *testing.T) {
	for _, c := range []any{int(-7), int64(1 << 40), uint64(math.MaxUint64), true, "hello", struct{}{}} {
		got := roundTrip(t, c)
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip %T: got %#v, want %#v", c, got, c)
		}
	}
	if got := roundTrip(t, nil); got != nil {
		t.Errorf("nil payload decoded to %#v", got)
	}
}

func TestWireRoundTripUnexportedStruct(t *testing.T) {
	RegisterWire[wireStruct]()
	in := wireStruct{
		runs:   [][]int64{{3, 1}, nil, {}, {42}},
		keys:   3,
		total:  1 << 50,
		last:   true,
		credit: -2,
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("got %#v, want %#v", got, in)
	}
}

func TestWireRoundTripNestedStructSlices(t *testing.T) {
	RegisterWire[wireNested]()
	RegisterWire[[]wireStruct]()
	in := wireNested{
		Done: true,
		Intervals: []wireInterval{
			{Lo: -5, HasLo: true, Hi: 10, HasHi: true},
			{Hi: 3, HasHi: true},
		},
		Splitters: []int64{1, 2, 3},
		note:      "unexported string",
	}
	got := roundTrip(t, in)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("got %#v, want %#v", got, in)
	}

	// Slices of pointer-bearing structs recurse per element.
	sl := []wireStruct{{keys: 1, runs: [][]int64{{9}}}, {last: true}}
	got2 := roundTrip(t, sl)
	if !reflect.DeepEqual(got2, sl) {
		t.Errorf("got %#v, want %#v", got2, sl)
	}
}

// TestWireDecodeOwnsMemory: mutating the decoded value must not touch
// the sender's buffers (the wire transfer is a real copy, unlike the
// in-memory transports).
func TestWireDecodeOwnsMemory(t *testing.T) {
	in := []int64{1, 2, 3}
	got := roundTrip(t, in).([]int64)
	got[0] = 99
	if in[0] != 1 {
		t.Error("decoded slice aliases the source")
	}
}

// TestWireUnknownTypeError: decoding a type the process never registered
// fails with a actionable error instead of corrupting.
func TestWireUnknownTypeError(t *testing.T) {
	buf := appendWireString(nil, "example.com/nope.Missing")
	if _, err := decodeWirePayload(buf); err == nil {
		t.Fatal("unknown wire type decoded")
	}
}

// TestWireTruncatedData: every truncation point fails cleanly.
func TestWireTruncatedData(t *testing.T) {
	buf, err := appendWirePayload(nil, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeWirePayload(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

// TestWireFrameHeaderRoundTrip pins the 25-byte header layout.
func TestWireFrameHeaderRoundTrip(t *testing.T) {
	h := frameHeader{kind: frameData, src: 3, dst: 7, tag: 0xdeadbeef, gen: 42, len: 1 << 33}
	var buf [frameHeaderLen]byte
	putFrameHeader(buf[:], h)
	if got := parseFrameHeader(buf[:]); got != h {
		t.Errorf("header round trip: got %+v, want %+v", got, h)
	}
}

// TestWireFastPathMatchesReflectPath: the type-switch encoding of the
// bulk slices must be byte-identical to the generic path, since decode
// is shared.
func TestWireFastPathMatchesReflectPath(t *testing.T) {
	in := []int64{5, -6, 7}
	fast, err := appendWirePayload(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	// Defeat the type switch by hiding the slice in a struct.
	type box struct{ S []int64 }
	RegisterWire[box]()
	boxed, err := appendWirePayload(nil, box{S: in})
	if err != nil {
		t.Fatal(err)
	}
	// The boxed encoding is name("…box") + slice encoding; the fast one
	// is name("[]int64") + slice encoding. Compare the tails.
	tail := func(b []byte) []byte {
		_, rest, err := readWireString(b)
		if err != nil {
			t.Fatal(err)
		}
		return rest
	}
	if !reflect.DeepEqual(tail(fast), tail(boxed)) {
		t.Errorf("fast-path bytes %v != reflect-path bytes %v", tail(fast), tail(boxed))
	}
}
