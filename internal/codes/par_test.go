package codes

import (
	"math/rand/v2"
	"slices"
	"testing"

	"hssort/internal/keycoder"
	"hssort/internal/par"
)

// parInputs yields code arrays big enough to cross parCutoff, in the
// shapes that stress the parallel count/scatter pass: uniform randoms,
// narrow ranges (degenerate top levels), heavy duplicates, all-equal,
// sorted, and reversed.
func parInputs(rng *rand.Rand) [][]Code {
	var out [][]Code
	for _, n := range []int{parCutoff - 1, parCutoff, parCutoff + 123, 100_000} {
		uniform := make([]Code, n)
		narrow := make([]Code, n)
		dup := make([]Code, n)
		equal := make([]Code, n)
		for i := 0; i < n; i++ {
			uniform[i] = Code(rng.Uint64())
			narrow[i] = Code(rng.Uint64N(1000))
			dup[i] = Code(rng.Uint64N(4))
			equal[i] = 42
		}
		asc := slices.Clone(uniform)
		slices.Sort(asc)
		desc := slices.Clone(asc)
		slices.Reverse(desc)
		out = append(out, uniform, narrow, dup, equal, asc, desc)
	}
	return out
}

var parWorkerCounts = []int{1, 2, 3, 8}

func TestSortParMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, in := range parInputs(rng) {
		want := slices.Clone(in)
		Sort(want)
		for _, w := range parWorkerCounts {
			got := slices.Clone(in)
			SortPar(got, par.New(w))
			if !slices.Equal(got, want) {
				t.Fatalf("workers=%d n=%d: SortPar diverged from Sort", w, len(in))
			}
		}
	}
}

func TestSortParDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	in := make([]Code, 100_000)
	for i := range in {
		in[i] = Code(rng.Uint64N(512)) // duplicate-heavy, degenerate top bytes
	}
	p := par.New(4)
	first := slices.Clone(in)
	SortPar(first, p)
	for run := 0; run < 3; run++ {
		again := slices.Clone(in)
		SortPar(again, p)
		if !slices.Equal(again, first) {
			t.Fatalf("run %d: SortPar output differs from first run", run)
		}
	}
}

func TestSortByCodeParTandem(t *testing.T) {
	type rec struct {
		k   uint64
		tag int
	}
	rng := rand.New(rand.NewPCG(15, 16))
	n := parCutoff + 777
	elems := make([]rec, n)
	for i := range elems {
		elems[i] = rec{k: rng.Uint64N(64), tag: i} // heavy duplicates
	}
	want := make(map[uint64][]int)
	for _, e := range elems {
		want[e.k] = append(want[e.k], e.tag)
	}
	for _, w := range parWorkerCounts {
		got := slices.Clone(elems)
		cs := SortByCodePar(got, func(r rec) uint64 { return r.k }, par.New(w))
		if !slices.IsSorted(cs) {
			t.Fatalf("workers=%d: codes not sorted", w)
		}
		seen := make(map[uint64][]int)
		for i, e := range got {
			if uint64(cs[i]) != e.k {
				t.Fatalf("workers=%d: code detached from element at %d", w, i)
			}
			seen[e.k] = append(seen[e.k], e.tag)
		}
		for k, tags := range want {
			g := slices.Clone(seen[k])
			slices.Sort(g)
			wantTags := slices.Clone(tags)
			slices.Sort(wantTags)
			if !slices.Equal(g, wantTags) {
				t.Fatalf("workers=%d: payloads for key %d diverged", w, k)
			}
		}
	}
}

func TestSortByCodeParDeterministic(t *testing.T) {
	type rec struct {
		k   uint64
		tag int
	}
	rng := rand.New(rand.NewPCG(17, 18))
	in := make([]rec, parCutoff*2)
	for i := range in {
		in[i] = rec{k: rng.Uint64N(128), tag: i}
	}
	p := par.New(4)
	ext := func(r rec) uint64 { return r.k }
	first := slices.Clone(in)
	SortByCodePar(first, ext, p)
	for run := 0; run < 3; run++ {
		again := slices.Clone(in)
		SortByCodePar(again, ext, p)
		if !slices.Equal(again, first) {
			t.Fatalf("run %d: SortByCodePar payload order differs from first run", run)
		}
	}
}

func TestSortByCodeParIdentityPlane(t *testing.T) {
	cs := make([]Code, parCutoff)
	rng := rand.New(rand.NewPCG(19, 20))
	for i := range cs {
		cs[i] = Code(rng.Uint64())
	}
	got := SortByCodePar(cs, ExtractCode, par.New(4))
	if &got[0] != &cs[0] {
		t.Fatal("pure plane must alias, not copy")
	}
	if !slices.IsSorted(cs) {
		t.Fatal("pure plane not sorted in place")
	}
}

func TestCodecParMatchesSerial(t *testing.T) {
	coder := keycoder.Int64{}
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{0, 100, parCutoff, parCutoff * 3} {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int64()
		}
		wantCodes := EncodeSlice(coder, keys)
		for _, w := range parWorkerCounts {
			p := par.New(w)
			if got := EncodeIntoPar(coder, keys, nil, p); !slices.Equal(got, wantCodes) {
				t.Fatalf("workers=%d n=%d: EncodeIntoPar diverged", w, n)
			}
			// Capacity reuse: a big-enough dst must be written in place.
			dst := make([]Code, 0, n+10)
			got := EncodeIntoPar(coder, keys, dst, p)
			if n > 0 && &got[0] != &dst[:1][0] {
				t.Fatalf("workers=%d n=%d: EncodeIntoPar ignored dst capacity", w, n)
			}
			if back := DecodeSlicePar(coder, wantCodes, p); !slices.Equal(back, keys) {
				t.Fatalf("workers=%d n=%d: DecodeSlicePar diverged", w, n)
			}
		}
	}
}

func TestExtractParMatchesSerial(t *testing.T) {
	type rec struct{ k uint64 }
	rng := rand.New(rand.NewPCG(23, 24))
	elems := make([]rec, parCutoff+5)
	for i := range elems {
		elems[i] = rec{k: rng.Uint64()}
	}
	ext := func(r rec) uint64 { return r.k }
	want := Extract(elems, ext)
	for _, w := range parWorkerCounts {
		if got := ExtractPar(elems, ext, par.New(w)); !slices.Equal(got, want) {
			t.Fatalf("workers=%d: ExtractPar diverged", w)
		}
	}
	// Pure plane aliases.
	cs := []Code{3, 1, 2}
	if got := ExtractPar(cs, ExtractCode, par.New(4)); &got[0] != &cs[0] {
		t.Fatal("pure plane must alias")
	}
}
