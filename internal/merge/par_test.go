package merge

import (
	"math/rand/v2"
	"slices"
	"testing"

	"hssort/internal/codes"
	"hssort/internal/par"
)

// randomRuns builds k sorted code runs totalling ~total keys, drawn from
// the given value span (small spans stress duplicates).
func randomSpanRuns(rng *rand.Rand, k, total int, span uint64) [][]codes.Code {
	runs := make([][]codes.Code, k)
	for r := range runs {
		n := total / k
		if r == 0 {
			n += total % k
		}
		run := make([]codes.Code, n)
		for i := range run {
			if span == 0 {
				run[i] = codes.Code(rng.Uint64())
			} else {
				run[i] = codes.Code(rng.Uint64N(span))
			}
		}
		slices.Sort(run)
		runs[r] = run
	}
	return runs
}

// checkCuts asserts the SplitRuns contract: per run, cuts are
// non-decreasing, in range, and covering; across parts, every code value
// falls in exactly one part (max of part p strictly below min of part
// p+1 over non-empty parts).
func checkCuts(t *testing.T, runs [][]codes.Code, cuts [][]int, parts int) {
	t.Helper()
	if len(cuts) != len(runs) {
		t.Fatalf("cuts for %d runs, want %d", len(cuts), len(runs))
	}
	for r, c := range cuts {
		if len(c) != parts+1 {
			t.Fatalf("run %d: %d cuts, want %d", r, len(c), parts+1)
		}
		if c[0] != 0 || c[parts] != len(runs[r]) {
			t.Fatalf("run %d: cuts %v do not cover [0,%d)", r, c, len(runs[r]))
		}
		for p := 1; p <= parts; p++ {
			if c[p] < c[p-1] {
				t.Fatalf("run %d: cuts %v not monotone", r, c)
			}
		}
	}
	// Order-disjointness with no value split across parts: strict
	// inequality between a part's max and the next non-empty part's min.
	prevSet := false
	var prevMax codes.Code
	for p := 0; p < parts; p++ {
		var lo, hi codes.Code
		empty := true
		for r, run := range runs {
			seg := run[cuts[r][p]:cuts[r][p+1]]
			if len(seg) == 0 {
				continue
			}
			if empty || seg[0] < lo {
				lo = seg[0]
			}
			if empty || seg[len(seg)-1] > hi {
				hi = seg[len(seg)-1]
			}
			empty = false
		}
		if empty {
			continue
		}
		if prevSet && lo <= prevMax {
			t.Fatalf("part %d min %d <= previous part max %d: a value spans two parts", p, lo, prevMax)
		}
		prevMax, prevSet = hi, true
	}
}

func TestSplitRunsContract(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	shapes := []struct {
		k, total int
		span     uint64
	}{
		{1, 1000, 0}, {4, 10_000, 0}, {4, 10_000, 8}, {7, 5000, 1},
		{3, 0, 0}, {5, 300, 1 << 40},
	}
	for _, sh := range shapes {
		runs := randomSpanRuns(rng, sh.k, sh.total, sh.span)
		for _, parts := range []int{1, 2, 3, 8, 64} {
			cuts := SplitRuns(runs, parts)
			checkCuts(t, runs, cuts, parts)
			// Property: the per-part ranges partition each run exactly
			// (multiset identity is immediate: the parts are contiguous,
			// monotone, covering slices of each run — checked above).
		}
	}
}

func TestParMergeMatchesKWay(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	cmp := codes.Compare
	for _, span := range []uint64{0, 16, 1} {
		for _, total := range []int{0, 100, parMergeCutoff + 999} {
			runs := randomSpanRuns(rng, 5, total, span)
			want := KWay(runs, cmp)
			for _, w := range []int{1, 2, 3, 8} {
				got := ParMerge(nil, runs, cmp, par.New(w))
				if !slices.Equal(got, want) {
					t.Fatalf("workers=%d total=%d span=%d: ParMerge diverged from KWay", w, total, span)
				}
			}
			// Appending to a non-empty dst preserves the prefix.
			prefix := []codes.Code{7, 7, 7}
			got := ParMerge(slices.Clone(prefix), runs, cmp, par.New(4))
			if !slices.Equal(got[:3], prefix) || !slices.Equal(got[3:], want) {
				t.Fatalf("total=%d span=%d: ParMerge clobbered dst prefix", total, span)
			}
		}
	}
}

func TestParMergeCodedMatchesSerial(t *testing.T) {
	// Decorated plane: payload tags must ride codes exactly as in the
	// serial CodeTree merge — byte-identical, tie-breaks included.
	type rec struct {
		k   uint64
		tag int
	}
	rng := rand.New(rand.NewPCG(35, 36))
	k, total := 4, parMergeCutoff*2
	elemRuns := make([][]rec, k)
	codeRuns := make([][]codes.Code, k)
	id := 0
	for r := range elemRuns {
		run := make([]rec, total/k)
		for i := range run {
			run[i] = rec{k: rng.Uint64N(64), tag: id} // heavy duplicates
			id++
		}
		slices.SortFunc(run, func(a, b rec) int { return codes.Compare(codes.Code(a.k), codes.Code(b.k)) })
		elemRuns[r] = run
		codeRuns[r] = codes.Extract(run, func(e rec) uint64 { return e.k })
	}
	want := KWayByCode(elemRuns, func(e rec) uint64 { return e.k })
	for _, w := range []int{1, 2, 3, 8} {
		got := ParMergeCoded(nil, elemRuns, codeRuns, par.New(w))
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: ParMergeCoded diverged from KWayByCode", w)
		}
		got = ParMergeByCode(nil, elemRuns, func(e rec) uint64 { return e.k }, par.New(w))
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: ParMergeByCode diverged from KWayByCode", w)
		}
	}
}

func TestParMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	runs := randomSpanRuns(rng, 6, parMergeCutoff*3, 128)
	p := par.New(4)
	first := ParMerge(nil, runs, codes.Compare, p)
	for run := 0; run < 3; run++ {
		if again := ParMerge(nil, runs, codes.Compare, p); !slices.Equal(again, first) {
			t.Fatalf("run %d: ParMerge output differs from first run", run)
		}
	}
}

func TestLoserTreeRest(t *testing.T) {
	lt := NewStreaming(codes.Compare)
	a := lt.AddRun([]codes.Code{1, 4, 9})
	b := lt.AddRun(nil)
	lt.Append(b, []codes.Code{2, 3})
	lt.Append(b, []codes.Code{5, 8}) // queued behind the current chunk
	lt.CloseRun(a)
	lt.CloseRun(b)
	// Consume two keys through the tree, then take the rest in bulk.
	for i := 0; i < 2; i++ {
		if _, ok := lt.NextReady(); !ok {
			t.Fatal("NextReady blocked on closed runs")
		}
	}
	rest, cs := lt.Rest()
	if cs != nil {
		t.Fatal("comparator plane must report nil codes")
	}
	if len(rest) != 2 {
		t.Fatalf("Rest returned %d runs, want 2", len(rest))
	}
	if !slices.Equal(rest[0], []codes.Code{4, 9}) {
		t.Fatalf("run a rest = %v", rest[0])
	}
	if !slices.Equal(rest[1], []codes.Code{3, 5, 8}) {
		t.Fatalf("run b rest = %v (multi-chunk concat)", rest[1])
	}
	if !lt.Exhausted() {
		t.Fatal("tree not exhausted after Rest")
	}
	if lt.Consumed(a)+lt.Consumed(b) != 7 {
		t.Fatalf("consumed %d+%d, want 7 total", lt.Consumed(a), lt.Consumed(b))
	}
	if _, ok := lt.Next(); ok {
		t.Fatal("Next emitted after Rest")
	}
}

func TestCodeTreeRest(t *testing.T) {
	ct := NewCodeTree[string]()
	a := ct.AddRun([]codes.Code{1, 4}, []string{"a1", "a4"})
	b := ct.AddRun([]codes.Code{2}, []string{"b2"})
	ct.Append(b, []codes.Code{6, 7}, []string{"b6", "b7"})
	ct.CloseRun(a)
	ct.CloseRun(b)
	if e, ok := ct.NextReady(); !ok || e != "a1" {
		t.Fatalf("first emit = %q, %v", e, ok)
	}
	elems, cs := ct.Rest()
	if !slices.Equal(cs[0], []codes.Code{4}) || !slices.Equal(elems[0], []string{"a4"}) {
		t.Fatalf("run a rest = %v / %v", cs[0], elems[0])
	}
	if !slices.Equal(cs[1], []codes.Code{2, 6, 7}) || !slices.Equal(elems[1], []string{"b2", "b6", "b7"}) {
		t.Fatalf("run b rest = %v / %v", cs[1], elems[1])
	}
	if !ct.Exhausted() {
		t.Fatal("tree not exhausted after Rest")
	}
}

// restDrain drives a streamer's Rest plus the matching parallel merge
// and compares against its serial drain, for one key type.
func restDrain[K comparable](t *testing.T, name string, cmp func(K, K) int, code func(K) uint64, r0, r1 []K) {
	t.Helper()
	feed := func(s Streamer[K]) {
		a := s.AddRun(r0)
		b := s.AddRun(r1)
		s.CloseRun(a)
		s.CloseRun(b)
	}
	serial := NewStreamer[K](cmp, code)
	feed(serial)
	var want []K
	for {
		k, ok := serial.Next()
		if !ok {
			break
		}
		want = append(want, k)
	}
	s := NewStreamer[K](cmp, code)
	feed(s)
	elems, cs := s.Rest()
	var got []K
	if cs != nil {
		got = ParMergeCoded(nil, elems, cs, par.New(3))
	} else {
		got = ParMerge(nil, elems, cmp, par.New(3))
	}
	if !slices.Equal(got, want) {
		t.Fatalf("%s plane: Rest+ParMerge %v, serial drain %v", name, got, want)
	}
	if !s.Exhausted() {
		t.Fatalf("%s plane: streamer not exhausted after Rest", name)
	}
}

func TestStreamerRestAcrossPlanes(t *testing.T) {
	// Serial drain vs Rest + parallel merge must agree on every plane:
	// pure code (CodeTree aliasing), coded (CodeTree + extractor), and
	// comparator (LoserTree, nil codes from Rest).
	restDrain(t, "pure", codes.Compare, nil,
		[]codes.Code{1, 3, 3, 9}, []codes.Code{2, 3, 4})
	restDrain(t, "coded", func(a, b uint64) int { return codes.Compare(codes.Code(a), codes.Code(b)) },
		func(k uint64) uint64 { return k },
		[]uint64{1, 3, 3, 9}, []uint64{2, 3, 4})
	restDrain[int](t, "comparator", func(a, b int) int { return a - b }, nil,
		[]int{1, 3, 3, 9}, []int{2, 3, 4})
}
