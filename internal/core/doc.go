// Package core implements Histogram Sort with Sampling (HSS) — the
// paper's primary contribution — as a distributed algorithm over the
// internal/comm runtime, together with a centralized protocol simulator
// that runs the identical splitter-determination protocol at the paper's
// true processor counts (up to hundreds of thousands of buckets).
//
// The distributed sort has the paper's three phases (§6.1.2): local sort;
// splitter determination by rounds of sampling + histogramming; and the
// all-to-all data exchange followed by a k-way merge. Splitter
// determination supports the three sampling disciplines the paper
// analyzes:
//
//   - FixedOversampling (§6.1.2): every round gathers an expected f·B-key
//     sample from the union of active splitter intervals (the production
//     configuration, f = 5 in the paper's runs).
//   - Theoretical (§3.3): k rounds with the geometric ratio schedule
//     s_j = (2 ln B/ε)^(j/k).
//   - OneRoundScanning (§3.2): a single 2/ε-ratio sample finished by the
//     Axtmann scanning algorithm.
package core
