package hssort

import "hssort/internal/comm"

// The failure-survival error taxonomy, re-exported from the transport
// layer so callers can branch on errors.As without importing internal
// packages. All three come back (wrapped) from Sort/Plan calls over the
// TCP transport.

// PeerCrashError reports that a peer rank died mid-run: its connection
// severed, its silence exceeded TCPConfig.PeerTimeout, or another rank
// reported the crash over the abort channel. Every surviving rank of
// the world observes the same PeerCrashError naming the same lost rank.
// The mesh heals when the rank respawns with TCPConfig.Rejoin — the
// same Sorter then completes the next Sort, deterministically
// re-executing the lost rank's shard.
type PeerCrashError = comm.PeerCrashError

// BootstrapError reports that an endpoint failed to construct or rejoin
// the TCP mesh (rendezvous, listener setup, peer dialing, or protocol
// handshake), before any sort ran.
type BootstrapError = comm.BootstrapError

// VersionMismatchError reports a bootstrap handshake between processes
// speaking different wire-protocol versions (docs/WIRE.md): a mixed
// deployment that must be rebuilt, not retried.
type VersionMismatchError = comm.VersionMismatchError
