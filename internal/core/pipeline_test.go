package core

import (
	"slices"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

// TestSortForcedPipelinedCollectives drives the probe broadcast and the
// histogram reduction through the pipelined (chunked chain) path by
// setting the threshold to 1 — the configuration §5.1 assumes for large
// histograms — and verifies the sort end to end.
func TestSortForcedPipelinedCollectives(t *testing.T) {
	const p, perRank = 6, 1500
	spec := dist.Spec{Kind: dist.Gaussian}
	shards := spec.Shards(perRank, p, 21)
	in := make([][]int64, p)
	for i := range shards {
		in[i] = slices.Clone(shards[i])
	}
	outs := make([][]int64, p)
	var stats Stats
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, in[c.Rank()], Options[int64]{
			Cmp:               icmp,
			Epsilon:           0.1,
			Seed:              3,
			PipelineThreshold: 1,  // everything pipelined
			PipelineChunk:     16, // many chunks per message
		})
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGloballySorted(t, shards, outs)
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f under pipelined collectives", stats.Imbalance)
	}
}

// TestSortPipelineThresholdBoundary runs both sides of the threshold on
// identical input and seeds: results must be identical — the collective
// implementation must not leak into the algorithm's decisions.
func TestSortPipelineThresholdBoundary(t *testing.T) {
	const p, perRank = 4, 1200
	run := func(threshold int) []int64 {
		spec := dist.Spec{Kind: dist.Uniform}
		shards := spec.Shards(perRank, p, 33)
		outs := make([][]int64, p)
		w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			out, _, err := Sort(c, shards[c.Rank()], Options[int64]{
				Cmp: icmp, Epsilon: 0.1, Seed: 5,
				PipelineThreshold: threshold, PipelineChunk: 8,
			})
			outs[c.Rank()] = out
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		var flat []int64
		for _, o := range outs {
			flat = append(flat, o...)
		}
		return flat
	}
	binomial := run(1 << 30)
	pipelined := run(1)
	if !slices.Equal(binomial, pipelined) {
		t.Fatal("collective choice changed the sorted output")
	}
}
