package main

import (
	"fmt"
	"time"

	"hssort"
	"hssort/internal/changa"
	"hssort/internal/tablefmt"
)

// runFig62 regenerates Fig 6.2: the ChaNGa sorting step — clustered
// Morton keys, virtual-processor buckets (more buckets than ranks,
// placed non-contiguously) — comparing HSS against classic histogram
// sort ("Old") on the Dwarf and Lambb dataset analogues, across
// processor counts with a fixed dataset size (strong scaling of the
// splitting cost).
func runFig62(scale float64) error {
	totalParticles := int(200000 * scale)
	if totalParticles < 20000 {
		totalParticles = 20000
	}
	t := tablefmt.New("dataset", "p", "buckets", "HSS time", "HSS split", "HSS rounds", "Old time", "Old split", "Old rounds")
	for _, ds := range changa.Datasets {
		for _, p := range []int{4, 8, 16, 32} {
			buckets := 4 * p // virtual processors outnumber cores (§6.3)
			shards := make([][]uint64, p)
			for r := 0; r < p; r++ {
				shards[r] = changa.ShardKeys(ds, totalParticles, r, p, 77)
			}
			cfg := hssort.Config{
				Procs: p, Buckets: buckets, RoundRobinBuckets: true,
				Epsilon: 0.05, Seed: 5, Timeout: 10 * time.Minute,
				Transport: transport,
			}
			_, hssStats, err := hssort.Sort(cfg, cloneShards(shards))
			if err != nil {
				return fmt.Errorf("%s p=%d HSS: %w", ds.Name, p, err)
			}
			cfg.Algorithm = hssort.HistogramSort
			_, oldStats, err := hssort.Sort(cfg, cloneShards(shards))
			if err != nil {
				return fmt.Errorf("%s p=%d Old: %w", ds.Name, p, err)
			}
			t.AddRow(
				ds.Name,
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%d", buckets),
				hssStats.Total().Round(time.Millisecond).String(),
				hssStats.Splitter.Round(100*time.Microsecond).String(),
				fmt.Sprintf("%d", hssStats.Rounds),
				oldStats.Total().Round(time.Millisecond).String(),
				oldStats.Splitter.Round(100*time.Microsecond).String(),
				fmt.Sprintf("%d", oldStats.Rounds),
			)
		}
	}
	fmt.Printf("ChaNGa sorting step, %s particles per dataset:\n\n", tablefmt.Count(float64(totalParticles)))
	fmt.Print(t.String())
	fmt.Println("\nPaper (Fig 6.2): HSS below Old at every p on both datasets (the round")
	fmt.Println("count gap — a handful vs dozens of synchronous probe rounds — is the")
	fmt.Println("mechanism); time grows with p for a fixed dataset because bucket count")
	fmt.Println("(and splitting work) grows multiplicatively with the processor count.")
	return nil
}

func cloneShards(shards [][]uint64) [][]uint64 {
	out := make([][]uint64, len(shards))
	for i, s := range shards {
		out[i] = append([]uint64(nil), s...)
	}
	return out
}
