// Command hssort sorts a synthetic workload with any of the library's
// algorithms over simulated processors and prints the paper's metrics:
// phase breakdown, histogramming rounds, sample sizes, communication
// volume, and the achieved load imbalance.
//
// Examples:
//
//	hssort -p 16 -n 100000                          # HSS on uniform keys
//	hssort -p 16 -alg samplesort-regular -eps 0.02  # baseline comparison
//	hssort -p 16 -dist powerskew -alg histogramsort # skew vs bisection
//	hssort -p 16 -dist dupheavy -tag                # §4.3 duplicate tagging
//	hssort -p 16 -alg node-hss -cores 4             # §6.1 two-level sort
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"hssort"
	"hssort/internal/dist"
	"hssort/internal/tablefmt"
)

var algorithms = map[string]hssort.Algorithm{
	"hss":                hssort.HSS,
	"hss-1round":         hssort.HSSOneRound,
	"hss-theory":         hssort.HSSTheoretical,
	"samplesort-regular": hssort.SampleSortRegular,
	"samplesort-random":  hssort.SampleSortRandom,
	"histogramsort":      hssort.HistogramSort,
	"bitonic":            hssort.Bitonic,
	"radix":              hssort.Radix,
	"node-hss":           hssort.NodeHSS,
	"overpartition":      hssort.OverPartition,
}

var distributions = map[string]dist.Kind{
	"uniform":      dist.Uniform,
	"gaussian":     dist.Gaussian,
	"exponential":  dist.Exponential,
	"powerskew":    dist.PowerSkew,
	"zipfian":      dist.Zipfian,
	"almostsorted": dist.AlmostSorted,
	"dupheavy":     dist.DuplicateHeavy,
	"staircase":    dist.Staircase,
}

func names[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return strings.Join(out, ", ")
}

func main() {
	var (
		p       = flag.Int("p", 8, "simulated processors")
		n       = flag.Int("n", 100000, "keys per processor")
		algName = flag.String("alg", "hss", "algorithm: "+names(algorithms))
		dsName  = flag.String("dist", "uniform", "distribution: "+names(distributions))
		eps     = flag.Float64("eps", 0.05, "load-imbalance threshold")
		buckets = flag.Int("buckets", 0, "output buckets (default: p)")
		rounds  = flag.Int("rounds", 0, "rounds for hss-theory (default: log log p/eps)")
		cores   = flag.Int("cores", 4, "cores per node for node-hss")
		tag     = flag.Bool("tag", false, "tag duplicates (§4.3)")
		approx  = flag.Bool("approx", false, "approximate histogramming (§3.4)")
		seed    = flag.Uint64("seed", 1, "random seed")
		trName  = flag.String("transport", "sim", "comm backend: sim (byte-accounted) or inproc (shared-memory fast path)")
		cpName  = flag.String("codepath", "auto", "compute plane: auto (code plane when available), off (comparator oracle) or on (require the code plane)")
		stream  = flag.Bool("stream", false, "streaming chunked exchange overlapped with the merge")
		chunk   = flag.Int("chunk", 0, "streaming-exchange chunk size in keys (implies -stream; default 64Ki)")
		verbose = flag.Bool("v", false, "verify the output is globally sorted")
	)
	flag.Parse()

	alg, ok := algorithms[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q; known: %s\n", *algName, names(algorithms))
		os.Exit(2)
	}
	transport, err := hssort.ParseTransport(*trName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	codePath, err := hssort.ParseCodePath(*cpName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, ok := distributions[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q; known: %s\n", *dsName, names(distributions))
		os.Exit(2)
	}

	spec := dist.Spec{Kind: kind}
	shards := spec.Shards(*n, *p, *seed)
	var input [][]int64
	if *verbose {
		input = make([][]int64, *p)
		for i := range shards {
			input[i] = slices.Clone(shards[i])
		}
	}

	cfg := hssort.Config{
		Procs:          *p,
		Algorithm:      alg,
		Epsilon:        *eps,
		Buckets:        *buckets,
		Rounds:         *rounds,
		CoresPerNode:   *cores,
		TagDuplicates:  *tag,
		Approx:         *approx,
		Seed:           *seed,
		Transport:      transport,
		CodePath:       codePath,
		StreamExchange: *stream,
		ChunkKeys:      *chunk,
	}
	start := time.Now()
	outs, stats, err := hssort.Sort(cfg, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("%s: sorted %s %s keys on %d simulated processors in %v (%s transport, %s code path)\n\n",
		alg, tablefmt.Count(float64(stats.N)), *dsName, *p, wall.Round(time.Millisecond), transport, codePath)
	if transport == hssort.TransportInproc {
		fmt.Println("note: the inproc transport does no byte accounting; byte/message metrics read zero")
		fmt.Println()
	}
	t := tablefmt.New("metric", "value")
	t.AddRow("local sort (max over ranks)", stats.LocalSort.Round(10*time.Microsecond).String())
	t.AddRow("splitter determination", stats.Splitter.Round(10*time.Microsecond).String())
	t.AddRow("data exchange", stats.Exchange.Round(10*time.Microsecond).String())
	t.AddRow("final merge", stats.Merge.Round(10*time.Microsecond).String())
	if *stream || *chunk > 0 {
		t.AddRow("merge overlapped with exchange", stats.ExchangeOverlap.Round(10*time.Microsecond).String())
		t.AddRow("peak in-flight exchange data", tablefmt.Bytes(float64(stats.PeakInFlightBytes)))
	}
	t.AddRow("histogramming rounds", fmt.Sprintf("%d", stats.Rounds))
	t.AddRow("total sample (probe keys)", fmt.Sprintf("%d", stats.TotalSample))
	t.AddRow("splitter-phase bytes", tablefmt.Bytes(float64(stats.SplitterBytes)))
	t.AddRow("exchange-phase bytes", tablefmt.Bytes(float64(stats.ExchangeBytes)))
	t.AddRow("total messages", fmt.Sprintf("%d", stats.TotalMsgs))
	t.AddRow("load imbalance (max/avg)", fmt.Sprintf("%.4f (target <= %.4f)", stats.Imbalance, 1+*eps))
	fmt.Print(t.String())

	if *verbose {
		var want, got []int64
		for _, s := range input {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				fmt.Fprintln(os.Stderr, "FAIL: a rank's output is not sorted")
				os.Exit(1)
			}
			got = append(got, o...)
		}
		// Non-contiguous bucket placements produce per-rank sorted
		// output whose rank order does not follow key order.
		if cfg.RoundRobinBuckets || alg == hssort.OverPartition {
			slices.Sort(got)
		}
		if !slices.Equal(got, want) {
			fmt.Fprintln(os.Stderr, "FAIL: output is not the sorted permutation of the input")
			os.Exit(1)
		}
		fmt.Println("\nverified: output is the globally sorted permutation of the input")
	}
}
