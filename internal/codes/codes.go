package codes

import "hssort/internal/keycoder"

// Code is an order-preserving uint64 code point for one key: for any two
// keys a, b of the encoded type, cmp(a, b) < 0 ⇔ code(a) < code(b). See
// the package comment for the ordering invariant carried by the named
// type.
type Code uint64

// Compare is the three-way natural-order comparator for code points —
// the Cmp the protocol layers (tracker updates, sample merging, debug
// validation) use when a pipeline runs entirely in code space.
func Compare(a, b Code) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Identity is the keycoder for code points themselves: a pipeline that
// has already been mapped into code space presents Identity wherever
// key-space arithmetic (histsort probe synthesis, radix digit
// extraction) demands a coder.
type Identity struct{}

// Encode returns the code point unchanged.
func (Identity) Encode(c Code) uint64 { return uint64(c) }

// Decode returns the code point unchanged.
func (Identity) Decode(u uint64) Code { return Code(u) }

// ExtractCode is the identity code extractor for the pure code plane
// (element type == Code).
func ExtractCode(c Code) uint64 { return uint64(c) }

// EncodeSlice maps keys through the coder into a fresh code array. When
// the keys already are code points it returns the input aliased — the
// zero-copy identity of the pure plane.
func EncodeSlice[K any](coder keycoder.Coder[K], keys []K) []Code {
	if cs, ok := any(keys).([]Code); ok {
		return cs
	}
	out := make([]Code, len(keys))
	for i, k := range keys {
		out[i] = Code(coder.Encode(k))
	}
	return out
}

// EncodeInto is EncodeSlice writing into dst's storage when its capacity
// suffices (allocating otherwise) — the engine-reuse variant that lets a
// long-lived sorter keep one encode buffer per rank. The identity alias
// of the pure plane still applies; dst is then untouched.
func EncodeInto[K any](coder keycoder.Coder[K], keys []K, dst []Code) []Code {
	if cs, ok := any(keys).([]Code); ok {
		return cs
	}
	if cap(dst) < len(keys) {
		dst = make([]Code, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = Code(coder.Encode(k))
	}
	return dst
}

// DecodeSlice inverts EncodeSlice. When the requested key type is Code
// itself it returns the input aliased.
func DecodeSlice[K any](coder keycoder.Coder[K], cs []Code) []K {
	if ks, ok := any(cs).([]K); ok {
		return ks
	}
	out := make([]K, len(cs))
	for i, c := range cs {
		out[i] = coder.Decode(uint64(c))
	}
	return out
}

// Extract maps elements through the code extractor into a fresh code
// array, aliasing when the elements already are code points.
func Extract[E any](elems []E, code func(E) uint64) []Code {
	if cs, ok := any(elems).([]Code); ok {
		return cs
	}
	out := make([]Code, len(elems))
	for i, e := range elems {
		out[i] = Code(code(e))
	}
	return out
}

// Rank returns the number of codes in the sorted slice that are strictly
// below q — the first index whose code is >= q. It is the branch-lean
// binary search behind histogram scans and partition cuts on the code
// plane: the loop body is a single compare-and-select the compiler can
// turn into a conditional move, with no comparator call.
func Rank(sorted []Code, q Code) int {
	pos, n := 0, len(sorted)
	for n > 0 {
		half := n >> 1
		if sorted[pos+half] < q {
			pos += half + 1
			n -= half + 1
		} else {
			n = half
		}
	}
	return pos
}

// Ranks answers one Rank query per probe, the code-plane form of
// histogram.LocalRanks.
func Ranks(sorted []Code, probes []Code) []int64 {
	out := make([]int64, len(probes))
	for i, q := range probes {
		out[i] = int64(Rank(sorted, q))
	}
	return out
}

// Cuts returns, for each splitter code, the index in the sorted code
// array where its bucket boundary falls (the first code >= the
// splitter). Splitter codes must be non-decreasing. When the splitter
// count is large relative to the data — the over-partitioned B >> n/p
// regime — a single forward scan through both sequences replaces the
// B independent binary searches.
func Cuts(sorted []Code, splitters []Code) []int {
	cuts := make([]int, len(splitters))
	if ForwardScanBetter(len(sorted), len(splitters)) {
		pos := 0
		for i, s := range splitters {
			for pos < len(sorted) && sorted[pos] < s {
				pos++
			}
			cuts[i] = pos
		}
		return cuts
	}
	prev := 0
	for i, s := range splitters {
		prev += Rank(sorted[prev:], s)
		cuts[i] = prev
	}
	return cuts
}

// ForwardScanBetter reports whether partitioning n sorted keys at b
// splitters is cheaper as one O(n+b) forward scan than as b independent
// O(log n) binary searches. Shared with exchange.Partition so both
// planes flip modes at the same shape.
func ForwardScanBetter(n, b int) bool {
	if b == 0 {
		return false
	}
	logN := 1
	for m := n; m > 1; m >>= 1 {
		logN++
	}
	return b*logN > n+b
}
