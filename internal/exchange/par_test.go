package exchange

import (
	"math/rand/v2"
	"slices"
	"testing"
	"time"

	"hssort/internal/codes"
	"hssort/internal/comm"
	"hssort/internal/keycoder"
	"hssort/internal/par"
)

// TestPartitionParMatchesSerial pins the bit-identity of the parallel
// partition: every cut is the unique lower bound of its splitter, so
// worker count and sub-range strategy must not move a single offset.
func TestPartitionParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for _, n := range []int{0, 100, partitionParKeys, partitionParKeys * 4} {
		for _, b := range []int{0, 1, 3, 64, 1000} {
			sorted := make([]int64, n)
			for i := range sorted {
				sorted[i] = rng.Int64N(1 << 20) // duplicates likely
			}
			slices.Sort(sorted)
			splitters := make([]int64, b)
			for i := range splitters {
				splitters[i] = rng.Int64N(1 << 20)
			}
			slices.Sort(splitters)
			want := Partition(sorted, splitters, icmp)
			cs := codes.EncodeSlice(keycoder.Int64{}, sorted)
			scs := codes.EncodeSlice(keycoder.Int64{}, splitters)
			wantByCode := PartitionByCode(sorted, cs, scs)
			for _, w := range []int{1, 2, 3, 8} {
				p := par.New(w)
				got := PartitionPar(sorted, splitters, icmp, p)
				if !runsEqual(got, want) {
					t.Fatalf("n=%d b=%d workers=%d: PartitionPar diverged", n, b, w)
				}
				gotC := PartitionByCodePar(sorted, cs, scs, p)
				if !runsEqual(gotC, wantByCode) {
					t.Fatalf("n=%d b=%d workers=%d: PartitionByCodePar diverged", n, b, w)
				}
			}
		}
	}
}

// TestPartitionParAllEqual pins duplicate handling: with every key equal
// to every splitter, all lower-bound cuts coincide and the parallel scan
// must reproduce the same empty-run pattern.
func TestPartitionParAllEqual(t *testing.T) {
	sorted := make([]int64, partitionParKeys*2)
	for i := range sorted {
		sorted[i] = 7
	}
	splitters := []int64{7, 7, 7}
	want := Partition(sorted, splitters, icmp)
	got := PartitionPar(sorted, splitters, icmp, par.New(4))
	if !runsEqual(got, want) {
		t.Fatal("PartitionPar diverged on all-equal input")
	}
}

func runsEqual[K comparable](a, b [][]K) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestExchangeMergePoolEquivalence pins that a worker pool changes
// nothing about ExchangeMerge's output on either data-movement path, on
// either plane: materializing (ChunkKeys 0) and streaming, comparator
// and code-keyed, swept over worker counts against the serial result.
func TestExchangeMergePoolEquivalence(t *testing.T) {
	const p = 4
	rng := rand.New(rand.NewPCG(43, 44))
	shards := make([][]int64, p)
	var all []int64
	for r := range shards {
		shard := make([]int64, 5000)
		for i := range shard {
			shard[i] = rng.Int64N(512) // duplicate-heavy
		}
		slices.Sort(shard)
		shards[r] = shard
		all = append(all, shard...)
	}
	slices.Sort(all)
	splitters := make([]int64, p-1)
	for i := range splitters {
		splitters[i] = all[(i+1)*len(all)/p]
	}
	coder := keycoder.Int64{}
	code := func(k int64) uint64 { return coder.Encode(k) }

	run := func(chunkKeys int, useCode bool, pool *par.Pool) [][]int64 {
		t.Helper()
		outs := make([][]int64, p)
		w := comm.NewWorld(p, comm.WithTimeout(20*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			runs := Partition(shards[c.Rank()], splitters, icmp)
			var codeFn func(int64) uint64
			if useCode {
				codeFn = code
			}
			out, _, _, _, err := ExchangeMerge(c, 1, runs, ContiguousOwner(p, p),
				icmp, codeFn, StreamOptions{ChunkKeys: chunkKeys, Pool: pool}, nil)
			outs[c.Rank()] = out
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}

	for _, chunkKeys := range []int{0, 512} {
		for _, useCode := range []bool{false, true} {
			want := run(chunkKeys, useCode, nil)
			for _, workers := range []int{2, 3, 8} {
				got := run(chunkKeys, useCode, par.New(workers))
				for r := range got {
					if !slices.Equal(got[r], want[r]) {
						t.Fatalf("chunkKeys=%d code=%v workers=%d: rank %d output diverged from serial",
							chunkKeys, useCode, workers, r)
					}
				}
			}
		}
	}
}
