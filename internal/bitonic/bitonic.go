package bitonic

import (
	"fmt"
	"slices"
	"time"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
)

// Options configures a bitonic sort. Cmp is required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// BaseTag is the start of the tag range this sort uses. Default 4000.
	BaseTag comm.Tag
}

// Sort runs distributed bitonic sort. The world size must be a power of
// two and every rank must hold the same number of keys (the classic
// hypercube formulation; §4.2 notes the algorithm's rigidity). The result
// is the globally sorted partition in rank order. The input is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	if opt.Cmp == nil {
		return nil, core.Stats{}, fmt.Errorf("bitonic: Options.Cmp is required")
	}
	if opt.BaseTag == 0 {
		opt.BaseTag = 4000
	}
	p := c.Size()
	if p&(p-1) != 0 {
		return nil, core.Stats{}, fmt.Errorf("bitonic: world size %d is not a power of two", p)
	}
	var stats core.Stats
	stats.Buckets = p

	// Equal local sizes are required for compare-split symmetry.
	sizes, err := collective.AllReduce(c, opt.BaseTag, []int64{int64(len(local)), int64(len(local))},
		func(dst, src []int64) {
			if src[0] < dst[0] {
				dst[0] = src[0]
			}
			if src[1] > dst[1] {
				dst[1] = src[1]
			}
		})
	if err != nil {
		return nil, stats, err
	}
	if sizes[0] != sizes[1] {
		return nil, stats, fmt.Errorf("bitonic: unequal local sizes (min %d, max %d)", sizes[0], sizes[1])
	}
	stats.N = int64(p) * sizes[0]

	t0 := time.Now()
	slices.SortFunc(local, opt.Cmp)
	localSort := time.Since(t0)

	me := c.Rank()
	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	stage := 0
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := me ^ j
			// Within a merge stage of block size k, blocks with
			// (rank & k) == 0 sort ascending; the lower rank of an
			// ascending pair keeps the small half.
			ascending := me&k == 0
			keepSmall := ascending == (me < partner)
			tag := opt.BaseTag + 2 + comm.Tag(stage)
			stage++
			if err := comm.SendSlice(c, partner, tag, local); err != nil {
				return nil, stats, err
			}
			theirs, err := comm.RecvSlice[K](c, partner, tag)
			if err != nil {
				return nil, stats, err
			}
			local = compareSplit(local, theirs, keepSmall, opt.Cmp)
		}
	}
	exchangeTime := time.Since(t1)
	exchangeBytes := c.Counters().BytesSent - bytes0
	stats.LocalCount = len(local)

	agg, err := collective.AllReduce(c, opt.BaseTag+1, []int64{
		exchangeBytes, int64(localSort), int64(exchangeTime),
	}, func(dst, src []int64) {
		dst[0] += src[0]
		for i := 1; i <= 2; i++ {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	})
	if err != nil {
		return nil, stats, err
	}
	stats.ExchangeBytes = agg[0]
	stats.LocalSort = time.Duration(agg[1])
	stats.Exchange = time.Duration(agg[2])
	stats.Imbalance = 1 // bitonic preserves equal loads exactly
	return local, stats, nil
}

// compareSplit merges two sorted runs of equal length and keeps the lower
// or upper half, the distributed compare-exchange primitive.
func compareSplit[K any](mine, theirs []K, keepSmall bool, cmp func(K, K) int) []K {
	n := len(mine)
	out := make([]K, n)
	if keepSmall {
		i, j := 0, 0
		for k := 0; k < n; k++ {
			if j >= len(theirs) || (i < n && cmp(mine[i], theirs[j]) <= 0) {
				out[k] = mine[i]
				i++
			} else {
				out[k] = theirs[j]
				j++
			}
		}
		return out
	}
	i, j := n-1, len(theirs)-1
	for k := n - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && cmp(mine[i], theirs[j]) > 0) {
			out[k] = mine[i]
			i--
		} else {
			out[k] = theirs[j]
			j--
		}
	}
	return out
}
