package spill

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"os"
	"unsafe"

	"hssort/internal/codes"
)

// RunReader streams a run file back one frame at a time. It implements
// merge.Source[K]: NextChunk returns each frame's keys in order and
// (nil, nil) at the final marker. The returned slice reuses the
// reader's decode buffers and is valid only until the next NextChunk —
// exactly the ownership discipline merge.FromSources and the exchange
// tail refill follow (a run is refilled only once the tree has consumed
// its previous chunk).
//
// Every frame is validated before any key is surfaced: header sanity
// caps, CRC-32C over the stored payload, inflate size limits, exact
// decoded length. A damaged or truncated file yields a *Error wrapping
// ErrCorrupt, never plausible-looking garbage keys.
type RunReader[K any] struct {
	m       *Manager
	path    string
	f       *os.File
	br      *bufio.Reader
	keySize int64
	delta   bool

	payBuf   []byte       // stored payload staging
	inf      bytes.Buffer // inflate output
	fr       io.ReadCloser
	keysBuf  []K
	codesBuf []codes.Code

	done   bool
	remove bool
}

// OpenRun opens a run file for streaming read-back. With removeOnEOF
// the file is deleted when the final marker is reached.
func OpenRun[K any](m *Manager, path string, removeOnEOF bool) (*RunReader[K], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, &Error{Op: "open", Path: path, Err: err}
	}
	var zero K
	r := &RunReader[K]{
		m:       m,
		path:    path,
		f:       f,
		br:      bufio.NewReaderSize(f, 1<<16),
		keySize: int64(unsafe.Sizeof(zero)),
		delta:   isCodePlane[K](),
		remove:  removeOnEOF,
	}
	var magic [len(runMagic)]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		r.Close()
		return nil, corrupt("open", path, "missing magic: %v", err)
	}
	if string(magic[:]) != runMagic {
		r.Close()
		return nil, corrupt("open", path, "bad magic %q", magic[:])
	}
	return r, nil
}

// NextChunk implements merge.Source: it returns the next frame's keys,
// or (nil, nil) once the final marker is reached (at which point the
// file is closed and, if requested, removed).
func (r *RunReader[K]) NextChunk() ([]K, error) {
	if r.done {
		return nil, nil
	}
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return nil, corrupt("read", r.path, "truncated frame header: %v", err)
	}
	payLen := binary.LittleEndian.Uint32(hdr[0:])
	keyCount := binary.LittleEndian.Uint32(hdr[4:])
	flags := hdr[8]
	crc := binary.LittleEndian.Uint32(hdr[9:])
	if flags&flagFinal != 0 {
		if payLen != 0 || keyCount != 0 || crc != frameCRC(hdr[:9], nil) {
			return nil, corrupt("read", r.path, "malformed final marker")
		}
		r.done = true
		if err := r.finishClose(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if payLen > maxFramePayload || keyCount == 0 || keyCount > maxFrameKeys {
		return nil, corrupt("read", r.path, "implausible frame header: payload=%d keys=%d", payLen, keyCount)
	}
	if cap(r.payBuf) < int(payLen) {
		r.payBuf = make([]byte, payLen)
	}
	r.payBuf = r.payBuf[:payLen]
	if _, err := io.ReadFull(r.br, r.payBuf); err != nil {
		return nil, corrupt("read", r.path, "truncated frame payload: %v", err)
	}
	if got := frameCRC(hdr[:9], r.payBuf); got != crc {
		return nil, corrupt("read", r.path, "frame checksum mismatch: got %08x want %08x", got, crc)
	}
	data := r.payBuf
	if flags&flagFlate != 0 {
		var err error
		if data, err = r.inflate(data, keyCount, flags); err != nil {
			return nil, err
		}
	}
	if flags&flagDelta != 0 {
		if !r.delta {
			return nil, corrupt("decode", r.path, "delta frame in a raw-record run")
		}
		cs, err := codes.DeltaDecode(r.codesBuf, data, int(keyCount))
		if err != nil {
			return nil, corrupt("decode", r.path, "%v", err)
		}
		r.codesBuf = cs
		r.m.noteRead()
		return any(cs).([]K), nil
	}
	if int64(len(data)) != int64(keyCount)*r.keySize {
		return nil, corrupt("decode", r.path, "raw frame is %d bytes for %d keys of %d bytes", len(data), keyCount, r.keySize)
	}
	if cap(r.keysBuf) < int(keyCount) {
		r.keysBuf = make([]K, keyCount)
	}
	r.keysBuf = r.keysBuf[:keyCount]
	copy(rawBytes(r.keysBuf), data)
	r.m.noteRead()
	return r.keysBuf, nil
}

// inflate decompresses a flate payload, bounding the output by what the
// frame header admits so a damaged stream cannot balloon memory.
func (r *RunReader[K]) inflate(stored []byte, keyCount uint32, flags byte) ([]byte, error) {
	limit := int64(keyCount) * r.keySize
	if flags&flagDelta != 0 {
		limit = int64(keyCount) * binary.MaxVarintLen64
	}
	src := bytes.NewReader(stored)
	if r.fr == nil {
		r.fr = flate.NewReader(src)
	} else if err := r.fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, corrupt("decode", r.path, "flate reset: %v", err)
	}
	r.inf.Reset()
	n, err := r.inf.ReadFrom(io.LimitReader(r.fr, limit+1))
	if err != nil {
		return nil, corrupt("decode", r.path, "flate stream: %v", err)
	}
	if n > limit {
		return nil, corrupt("decode", r.path, "inflated frame exceeds %d bytes for %d keys", limit, keyCount)
	}
	return r.inf.Bytes(), nil
}

// finishClose closes (and optionally removes) the file after the final
// marker.
func (r *RunReader[K]) finishClose() error {
	var first error
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			first = &Error{Op: "read", Path: r.path, Err: err}
		}
		r.f = nil
	}
	if r.remove {
		if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) && first == nil {
			first = &Error{Op: "remove", Path: r.path, Err: err}
		}
		r.remove = false
	}
	return first
}

// Close releases the reader early (error paths, aborts). With
// removeOnEOF set the file is removed here too, so abandoned merges do
// not leak run files. Idempotent.
func (r *RunReader[K]) Close() error {
	r.done = true
	return r.finishClose()
}
