// Load balance under skew: the paper's core claim is that HSS reaches a
// requested (1+ε) load balance with a sample orders of magnitude smaller
// than sample sort needs for the same guarantee (Table 5.1, Fig 4.1).
//
// This example sorts a heavily skewed workload (95% of keys in 1% of the
// key range) with HSS and with sample sort whose per-processor sample is
// capped at what HSS uses in total — showing that at equal sampling
// budget, sample sort blows through the imbalance target while HSS meets
// it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"slices"

	"hssort"
)

// skewedShard: 95% of keys land in the lowest 1% of the range.
func skewedShard(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, 1234))
	out := make([]int64, n)
	for i := range out {
		if rng.Float64() < 0.95 {
			out[i] = rng.Int64N(1 << 44) // hot 1%
		} else {
			out[i] = rng.Int64N(1 << 51)
		}
	}
	return out
}

func main() {
	const procs = 32
	const perProc = 50_000
	const eps = 0.05

	shards := make([][]int64, procs)
	for r := range shards {
		shards[r] = skewedShard(perProc, uint64(r))
	}

	run := func(name string, cfg hssort.Config) {
		in := make([][]int64, procs)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		cfg.Procs = procs
		cfg.Epsilon = eps
		cfg.Seed = 9
		_, stats, err := hssort.Sort(cfg, in)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		status := "MEETS TARGET"
		if stats.Imbalance > 1+eps+1e-9 {
			status = fmt.Sprintf("misses target by %.1f%%", 100*(stats.Imbalance-1-eps))
		}
		fmt.Printf("%-34s sample %7d keys   imbalance %.4f   %s\n",
			name, stats.TotalSample, stats.Imbalance, status)
	}

	fmt.Printf("skewed input: %d processors x %d keys, target imbalance <= %.2f\n\n",
		procs, perProc, 1+eps)
	run("HSS (fixed oversampling)", hssort.Config{Algorithm: hssort.HSS})
	run("HSS (one round + scanning)", hssort.Config{Algorithm: hssort.HSSOneRound})

	// Give sample sort roughly the same total sampling budget HSS used:
	// ~5 rounds x 5 x 32 keys => a few hundred per processor is already
	// generous.
	budget := int(math.Ceil(5 * 5))
	run(fmt.Sprintf("sample sort (capped s=%d)", budget),
		hssort.Config{Algorithm: hssort.SampleSortRegular, MaxOversample: budget})

	// With its provable Θ(B/ε) oversampling, sample sort does meet the
	// target — at a much larger sampling cost.
	run("sample sort (provable s=B/eps)", hssort.Config{Algorithm: hssort.SampleSortRegular})

	fmt.Println("\nAt matched sampling budgets HSS holds the guarantee because each")
	fmt.Println("histogram round tells it exactly where the remaining uncertainty is;")
	fmt.Println("sample sort needs its full Θ(p²/ε) sample to promise the same bound.")
}
