package collective

import (
	"fmt"

	"hssort/internal/comm"
)

// pipeHeader announces an incoming pipelined transfer along a chain.
type pipeHeader struct {
	total  int // total element count
	chunks int // number of chunks that follow
}

// chunkCount returns how many chunks a transfer of total elements needs.
func chunkCount(total, chunkLen int) int {
	if total == 0 {
		return 0
	}
	return (total + chunkLen - 1) / chunkLen
}

// PipelinedBcast broadcasts root's data along a chain of ranks in chunks
// of chunkLen elements. For a message of S elements this costs
// O(S + p·chunkLen) element-hops on the critical path instead of the
// binomial tree's O(S log p): the pipelined model the paper assumes for
// large histograms (§5.1). chunkLen <= 0 selects a default of 4096.
func PipelinedBcast[T any](e comm.Endpoint, root int, tag comm.Tag, data []T, chunkLen int) ([]T, error) {
	if chunkLen <= 0 {
		chunkLen = 4096
	}
	p := e.Size()
	if p == 1 {
		return data, nil
	}
	me := e.Rank()
	rel := (me - root + p) % p
	next := (me + 1) % p
	hasNext := rel+1 < p

	if rel == 0 {
		n := len(data)
		chunks := chunkCount(n, chunkLen)
		if err := comm.SendValue(e, next, tag, pipeHeader{total: n, chunks: chunks}); err != nil {
			return nil, fmt.Errorf("collective: pipelined bcast header: %w", err)
		}
		for i := 0; i < chunks; i++ {
			lo := i * chunkLen
			hi := min(lo+chunkLen, n)
			if err := comm.SendSlice(e, next, tag, data[lo:hi]); err != nil {
				return nil, fmt.Errorf("collective: pipelined bcast send: %w", err)
			}
		}
		return data, nil
	}

	prev := (me - 1 + p) % p
	hdr, err := comm.RecvValue[pipeHeader](e, prev, tag)
	if err != nil {
		return nil, fmt.Errorf("collective: pipelined bcast header recv: %w", err)
	}
	if hasNext {
		if err := comm.SendValue(e, next, tag, hdr); err != nil {
			return nil, fmt.Errorf("collective: pipelined bcast header fwd: %w", err)
		}
	}
	out := make([]T, 0, hdr.total)
	for i := 0; i < hdr.chunks; i++ {
		chunk, err := comm.RecvSlice[T](e, prev, tag)
		if err != nil {
			return nil, fmt.Errorf("collective: pipelined bcast recv: %w", err)
		}
		if hasNext {
			if err := comm.SendSlice(e, next, tag, chunk); err != nil {
				return nil, fmt.Errorf("collective: pipelined bcast fwd: %w", err)
			}
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// PipelinedReduce reduces equal-length vectors to root along a chain in
// chunks: the rank furthest from root starts each chunk flowing; every
// rank accumulates its own contribution into the arriving chunk and
// forwards. Cost is O(S + p·chunkLen) element-hops on the critical path,
// the pipelined-reduction model of §5.1. Root returns the reduced vector;
// others return nil. data is consumed as scratch.
func PipelinedReduce[T any](e comm.Endpoint, root int, tag comm.Tag, data []T, op func(dst, src []T), chunkLen int) ([]T, error) {
	if chunkLen <= 0 {
		chunkLen = 4096
	}
	p := e.Size()
	if p == 1 {
		return data, nil
	}
	me := e.Rank()
	rel := (me - root + p) % p
	n := len(data)
	chunks := chunkCount(n, chunkLen)

	// The chain runs tail (rel = p-1) → ... → root (rel = 0).
	tail := rel == p-1
	for i := 0; i < chunks; i++ {
		lo := i * chunkLen
		hi := min(lo+chunkLen, n)
		mine := data[lo:hi]
		if !tail {
			src := (me + 1) % p // rank with rel+1
			recv, err := comm.RecvSlice[T](e, src, tag)
			if err != nil {
				return nil, fmt.Errorf("collective: pipelined reduce recv: %w", err)
			}
			if len(recv) != len(mine) {
				return nil, fmt.Errorf("collective: pipelined reduce chunk mismatch: %d vs %d", len(recv), len(mine))
			}
			op(mine, recv)
		}
		if rel != 0 {
			dst := (me - 1 + p) % p // rank with rel-1
			if err := comm.SendSlice(e, dst, tag, mine); err != nil {
				return nil, fmt.Errorf("collective: pipelined reduce send: %w", err)
			}
		}
	}
	if rel == 0 {
		return data, nil
	}
	return nil, nil
}
