package merge

import "fmt"

// Source is one sorted run delivered chunk-at-a-time — the abstraction
// that lets the loser trees merge runs that do not live in memory. A
// spilled run file (spill.RunReader) is the motivating implementation:
// every NextChunk reads back one frame, so the merge's working set is a
// frame per run rather than the runs themselves.
type Source[K any] interface {
	// NextChunk returns the run's next chunk of sorted keys, or (nil,
	// nil) when the run is exhausted. The returned slice is owned by the
	// caller until the following NextChunk call.
	NextChunk() ([]K, error)
}

// Budget is the admission meter FromSources charges chunk bytes
// against: Acquire when a chunk enters the merge tree, Release once it
// has been fully consumed. spill.Manager implements it (tracking peak
// resident bytes against Config.MemoryBudget); nil disables accounting.
type Budget interface {
	Acquire(bytes int64)
	Release(bytes int64)
}

// FromSources merges the sorted runs behind srcs through st, appending
// the merged keys to out. It keeps at most one unconsumed chunk per run
// resident: a run is refilled only when the tree has consumed
// everything it appended (the same starvation signal the streaming
// exchange keys its credits on), and each chunk's bytes are charged to
// bud while resident. st must be freshly reset; run indices are
// assigned in srcs order, so duplicate keys tie-break by source index —
// callers get deterministic output by fixing the source order.
func FromSources[K any](st Streamer[K], srcs []Source[K], bud Budget, out []K, keySize int64) ([]K, error) {
	n := len(srcs)
	admitted := make([]int64, n) // keys appended to the tree per run
	released := make([]int64, n) // keys whose budget has been returned
	charged := make([]int64, n)  // bytes currently held against bud
	closed := make([]bool, n)
	open := n
	for range srcs {
		st.AddRun(nil)
	}
	for {
		progress := false
		// Refill every starved open run with one chunk; a source that
		// reports exhaustion closes its run instead.
		for i := range srcs {
			if closed[i] || st.Consumed(i) < admitted[i] {
				continue
			}
			keys, err := srcs[i].NextChunk()
			if err != nil {
				return out, err
			}
			if keys == nil {
				st.CloseRun(i)
				closed[i] = true
				open--
			} else {
				if bud != nil {
					b := int64(len(keys)) * keySize
					bud.Acquire(b)
					charged[i] += b
				}
				st.Append(i, keys)
				admitted[i] += int64(len(keys))
			}
			progress = true
		}
		// Emit everything that is provably safe (no open run starved).
		for {
			k, ok := st.NextReady()
			if !ok {
				break
			}
			out = append(out, k)
			progress = true
		}
		// Return the budget of consumed keys.
		if bud != nil {
			for i := range srcs {
				if c := st.Consumed(i); c > released[i] {
					b := min((c-released[i])*keySize, charged[i])
					bud.Release(b)
					charged[i] -= b
					released[i] = c
				}
			}
		}
		if open == 0 && st.Exhausted() {
			return out, nil
		}
		if !progress {
			return out, fmt.Errorf("merge: FromSources stalled with %d open runs", open)
		}
	}
}
