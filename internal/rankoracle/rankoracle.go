package rankoracle

import (
	"fmt"
	"math/rand/v2"

	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/sampling"
)

// Options configures an Oracle. Cmp is required.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// Epsilon is the rank-accuracy parameter: answers are within
	// N·Epsilon/p of truth w.h.p. Default 0.05.
	Epsilon float64
	// SampleSize overrides the per-processor sample size; default
	// √(2p ln p)/ε (Theorem 3.4.1).
	SampleSize int
	// Seed drives block sampling. Default 1.
	Seed uint64
	// BaseTag is the tag range start (3 tags). Default 6000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults(p int) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("rankoracle: Options.Cmp is required")
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("rankoracle: Epsilon %v < 0", o.Epsilon)
	}
	if o.SampleSize == 0 {
		o.SampleSize = sampling.RepresentativeSize(p, o.Epsilon)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BaseTag == 0 {
		o.BaseTag = 6000
	}
	return o, nil
}

// Oracle is one rank's handle to the distributed rank oracle. All ranks
// must construct it collectively (New) and issue the same queries in the
// same order (Query is a collective operation).
type Oracle[K any] struct {
	c   *comm.Comm
	opt Options[K]
	rep sampling.Representative[K]
	// N is the global key count the oracle summarizes.
	N int64
}

// New builds the oracle over this rank's locally sorted data. It is a
// collective call: every rank of the world must participate.
func New[K any](c *comm.Comm, sortedLocal []K, opt Options[K]) (*Oracle[K], error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(opt.Seed, 0x94d049bb133111eb^uint64(c.Rank())))
	rep := sampling.NewRepresentative(sortedLocal, opt.SampleSize, rng)
	nVec, err := collective.AllReduce(c, opt.BaseTag, []int64{int64(len(sortedLocal))}, collective.SumInt64)
	if err != nil {
		return nil, err
	}
	return &Oracle[K]{c: c, opt: opt, rep: rep, N: nVec[0]}, nil
}

// Query estimates the global ranks (count of keys strictly less) of the
// given probe keys. Collective: every rank must pass identical probes;
// every rank receives the same estimates. Cost is one reduction of
// len(probes) counters plus one broadcast — the full input is never
// scanned.
func (o *Oracle[K]) Query(probes []K) ([]int64, error) {
	local := make([]int64, len(probes))
	for i, q := range probes {
		local[i] = o.rep.LocalRank(q, o.opt.Cmp)
	}
	return collective.AllReduce(o.c, o.opt.BaseTag+1, local, collective.SumInt64)
}

// ErrorBound returns the w.h.p. accuracy radius N·ε/p of Theorem 3.4.1.
func (o *Oracle[K]) ErrorBound() int64 {
	return int64(o.opt.Epsilon * float64(o.N) / float64(o.c.Size()))
}

// SampleSize returns the per-rank representative sample size in use.
func (o *Oracle[K]) SampleSize() int { return len(o.rep.Keys) }
