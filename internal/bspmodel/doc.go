// Package bspmodel encodes the paper's analytic cost model (§5.1,
// Table 5.1, Fig 4.1): closed-form sample sizes and BSP running-time
// expressions for sample sort (regular and random sampling) and HSS with
// one, two, k, and the optimal log log p/ε rounds.
//
// These formulas regenerate the concrete numbers the paper quotes —
// 1600 GB / 8.1 GB / 184 MB / 24 MB / 10 MB for p = 10⁵, ε = 5%,
// N/p = 10⁶, 8-byte keys — and the Fig 4.1 sample-size curves.
package bspmodel
