package hssort

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

// TestSortManyRanks exercises the runtime at a rank count well beyond
// the other tests (one goroutine per rank; mailbox matching must stay
// sub-quadratic in practice).
func TestSortManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank world")
	}
	const p, perRank = 256, 400
	shards := dist.Spec{Kind: dist.Gaussian}.Shards(perRank, p, 3)
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	outs, stats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: 5, Timeout: 5 * time.Minute}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, o := range outs {
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("256-rank sort incorrect")
	}
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", stats.Imbalance)
	}
}

// TestSortTimeoutSurfacesCleanly: an absurdly short timeout must produce
// an error mentioning the abort, never a hang or a panic.
func TestSortTimeoutSurfacesCleanly(t *testing.T) {
	const p = 16
	shards := dist.Spec{Kind: dist.Uniform}.Shards(200000, p, 3)
	_, _, err := Sort(Config{Procs: p, Timeout: 1 * time.Nanosecond}, shards)
	if err == nil {
		t.Skip("sort beat the 1ns timeout (!)")
	}
	if !strings.Contains(err.Error(), "abort") && !strings.Contains(err.Error(), "timeout") {
		t.Errorf("timeout error does not mention the abort: %v", err)
	}
}

// TestOverPartitionFacade: per-rank sorted output, union is a
// permutation (rank order intentionally does not follow key order).
func TestOverPartitionFacade(t *testing.T) {
	const p, perRank = 8, 1500
	shards := dist.Spec{Kind: dist.Exponential}.Shards(perRank, p, 11)
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	outs, stats, err := Sort(Config{Procs: p, Algorithm: OverPartition, Seed: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatal("rank output not sorted")
		}
		got = append(got, o...)
	}
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatal("not a permutation")
	}
	if stats.Imbalance > 2 {
		t.Errorf("LPT imbalance %.3f", stats.Imbalance)
	}
}

// TestRepeatedSortsSameWorldSeedsDiffer: same configuration with
// different seeds must still sort correctly (no hidden seed coupling),
// and identical seeds must reproduce identical stats.
func TestSortDeterministicGivenSeed(t *testing.T) {
	const p, perRank = 6, 2000
	run := func(seed uint64) ([]int64, Stats) {
		shards := dist.Spec{Kind: dist.PowerSkew}.Shards(perRank, p, 9)
		outs, stats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: seed}, shards)
		if err != nil {
			t.Fatal(err)
		}
		var flat []int64
		for _, o := range outs {
			flat = append(flat, o...)
		}
		return flat, stats
	}
	a1, s1 := run(7)
	a2, s2 := run(7)
	b, _ := run(8)
	if !slices.Equal(a1, a2) {
		t.Error("same seed produced different outputs")
	}
	if s1.Rounds != s2.Rounds || s1.TotalSample != s2.TotalSample {
		t.Errorf("same seed produced different protocol stats: %+v vs %+v", s1, s2)
	}
	if !slices.Equal(a1, b) {
		t.Error("different seeds changed the sorted output (it must be seed-independent)")
	}
}

// ---------------------------------------------------------------------
// Failure survival (Config.Chaos, PeerCrashError, respawn + rejoin)
// ---------------------------------------------------------------------

// chaosShards is the deterministic input the chaos tests share.
func chaosShards(p, perRank int) [][]int64 {
	return dist.Spec{Kind: dist.PowerSkew, Min: 0, Max: 1 << 40}.Shards(perRank, p, 17)
}

// TestSortUnderFaultInjection: seeded link faults (drops retransmitted,
// latency jitter, suppressed duplicates) over the real TCP loopback
// mesh change no output — each faulted run is rank-identical to a clean
// sim run, across both exchange planes and both code paths. Run with
// -race in CI (the chaos job).
func TestSortUnderFaultInjection(t *testing.T) {
	const p, perRank = 4, 800
	faults := []struct {
		name  string
		chaos ChaosConfig
	}{
		{"drop", ChaosConfig{Seed: 42, Drop: 0.15}},
		{"delay", ChaosConfig{Seed: 43, Delay: 0.25}},
		{"dup", ChaosConfig{Seed: 44, Dup: 0.15}},
		{"mixed", ChaosConfig{Seed: 45, Drop: 0.05, Delay: 0.1, Dup: 0.05}},
	}
	base := Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}
	for _, stream := range []bool{false, true} {
		for _, cp := range []CodePath{CodePathOff, CodePathOn} {
			cfg := base
			cfg.StreamExchange = stream
			cfg.CodePath = cp

			simCfg := cfg
			simCfg.Transport = TransportSim
			want, _, err := Sort(simCfg, chaosShards(p, perRank))
			if err != nil {
				t.Fatalf("sim oracle: %v", err)
			}
			for _, f := range faults {
				name := fmt.Sprintf("%s/stream=%v/codepath=%v", f.name, stream, cp)
				t.Run(name, func(t *testing.T) {
					chaos := f.chaos
					chaosCfg := cfg
					chaosCfg.Transport = TransportTCP
					chaosCfg.Chaos = &chaos
					outs, _, err := Sort(chaosCfg, chaosShards(p, perRank))
					if err != nil {
						t.Fatalf("faulted sort: %v", err)
					}
					for r := range want {
						if !slices.Equal(outs[r], want[r]) {
							t.Fatalf("rank %d output differs under link faults (%d vs %d keys)",
								r, len(outs[r]), len(want[r]))
						}
					}
				})
			}
		}
	}
}

// crashReports walks a (possibly joined and wrapped) sort error and
// counts the per-rank *PeerCrashError leaves naming the victim.
func crashReports(err error, victim int) int {
	n := 0
	var walk func(error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if crash, ok := e.(*PeerCrashError); ok {
			if crash.Rank == victim {
				n++
			}
			return
		}
		if m, ok := e.(interface{ Unwrap() []error }); ok {
			for _, c := range m.Unwrap() {
				walk(c)
			}
			return
		}
		walk(errors.Unwrap(e))
	}
	walk(err)
	return n
}

// TestPeerCrashMidExchange: a seeded crash of one rank during the data
// exchange makes the sort fail fast (no hang) with a *PeerCrashError
// naming the victim, on every surviving rank; Close then releases every
// socket and goroutine.
func TestPeerCrashMidExchange(t *testing.T) {
	const p, perRank, victim = 4, 800, 2
	before := runtime.NumGoroutine()
	{
		engine, err := New[int64](Config{
			Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3,
			Transport: TransportTCP,
			Chaos:     &ChaosConfig{Seed: 7, CrashRank: victim, CrashPhase: "exchange"},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = engine.Sort(context.Background(), chaosShards(p, perRank))
		var crash *PeerCrashError
		if !errors.As(err, &crash) {
			t.Fatalf("crashed sort returned %v, want a *PeerCrashError", err)
		}
		if crash.Rank != victim {
			t.Errorf("PeerCrashError names rank %d, want %d", crash.Rank, victim)
		}
		if !errors.Is(err, comm.ErrAborted) {
			t.Errorf("crash error does not wrap comm.ErrAborted: %v", err)
		}
		// Every surviving rank (and the victim itself, whose sends fail
		// with the latched crash) reports the same typed error for the
		// same rank.
		if n := crashReports(err, victim); n < p-1 {
			t.Errorf("only %d of %d surviving ranks reported the crash: %v", n, p-1, err)
		}
		engine.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after crash + Close: %d > baseline %d",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRejoinThenSort: after a mid-sort crash, respawning the victim
// rank heals the same engine — the next Sort completes and is
// rank-identical to the sim oracle (the lost rank's shard re-executes
// deterministically), and the respawn surfaces in Stats.
func TestRejoinThenSort(t *testing.T) {
	const p, perRank, victim = 4, 1000, 1
	simCfg := Config{Procs: p, Algorithm: HSS, Epsilon: 0.05, Seed: 3}
	want, _, err := Sort(simCfg, chaosShards(p, perRank))
	if err != nil {
		t.Fatalf("sim oracle: %v", err)
	}

	cfg := simCfg
	cfg.Transport = TransportTCP
	cfg.Chaos = &ChaosConfig{Seed: 11, CrashRank: victim, CrashPhase: "exchange"}
	engine, err := New[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	_, _, err = engine.Sort(context.Background(), chaosShards(p, perRank))
	var crash *PeerCrashError
	if !errors.As(err, &crash) || crash.Rank != victim {
		t.Fatalf("crashed sort returned %v, want *PeerCrashError{Rank: %d}", err, victim)
	}

	ft := engine.pool.Transport().(*comm.FaultTransport)
	ft.ClearCrash() // the one-shot crash fired; disarm for the healed runs
	if err := ft.Inner().(*comm.TCPLoopback).Respawn(victim); err != nil {
		t.Fatalf("respawn: %v", err)
	}

	outs, stats, err := engine.Sort(context.Background(), chaosShards(p, perRank))
	if err != nil {
		t.Fatalf("sort after rejoin: %v", err)
	}
	for r := range want {
		if !slices.Equal(outs[r], want[r]) {
			t.Fatalf("rank %d output differs after rejoin (%d vs %d keys)",
				r, len(outs[r]), len(want[r]))
		}
	}
	if stats.Respawns < 1 {
		t.Errorf("Stats.Respawns = %d after a respawn, want >= 1", stats.Respawns)
	}

	// The healed engine keeps working: one more sort, same oracle.
	outs, _, err = engine.Sort(context.Background(), chaosShards(p, perRank))
	if err != nil {
		t.Fatalf("second sort after rejoin: %v", err)
	}
	for r := range want {
		if !slices.Equal(outs[r], want[r]) {
			t.Fatalf("rank %d output differs on the second healed sort", r)
		}
	}
}

// TestAllAlgorithmsUnderRace is a compact everything-at-once run meant
// to be exercised with -race in CI: one sort per algorithm, small data.
func TestAllAlgorithmsUnderRace(t *testing.T) {
	const p, perRank = 4, 300
	algs := []Algorithm{HSS, HSSOneRound, HSSTheoretical, SampleSortRegular,
		SampleSortRandom, HistogramSort, Bitonic, Radix, NodeHSS, OverPartition}
	for _, alg := range algs {
		shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, 13)
		cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.2, Seed: 3}
		if alg == NodeHSS {
			cfg.CoresPerNode = 2
		}
		if _, _, err := Sort(cfg, shards); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}
