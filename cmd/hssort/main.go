// Command hssort sorts a synthetic workload with any of the library's
// algorithms over simulated processors and prints the paper's metrics:
// phase breakdown, histogramming rounds, sample sizes, communication
// volume, and the achieved load imbalance.
//
// Examples:
//
//	hssort -p 16 -n 100000                          # HSS on uniform keys
//	hssort -p 16 -alg samplesort-regular -eps 0.02  # baseline comparison
//	hssort -p 16 -dist powerskew -alg histogramsort # skew vs bisection
//	hssort -p 16 -dist dupheavy -tag                # §4.3 duplicate tagging
//	hssort -p 16 -alg node-hss -cores 4             # §6.1 two-level sort
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"slices"
	"strings"
	"time"

	"hssort"
	"hssort/internal/dist"
	"hssort/internal/tablefmt"
)

var algorithms = map[string]hssort.Algorithm{
	"hss":                hssort.HSS,
	"hss-1round":         hssort.HSSOneRound,
	"hss-theory":         hssort.HSSTheoretical,
	"samplesort-regular": hssort.SampleSortRegular,
	"samplesort-random":  hssort.SampleSortRandom,
	"histogramsort":      hssort.HistogramSort,
	"bitonic":            hssort.Bitonic,
	"radix":              hssort.Radix,
	"node-hss":           hssort.NodeHSS,
	"overpartition":      hssort.OverPartition,
}

var distributions = map[string]dist.Kind{
	"uniform":      dist.Uniform,
	"gaussian":     dist.Gaussian,
	"exponential":  dist.Exponential,
	"powerskew":    dist.PowerSkew,
	"zipfian":      dist.Zipfian,
	"almostsorted": dist.AlmostSorted,
	"dupheavy":     dist.DuplicateHeavy,
	"staircase":    dist.Staircase,
}

func names[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return strings.Join(out, ", ")
}

func main() {
	var (
		p       = flag.Int("p", 8, "simulated processors")
		n       = flag.Int("n", 100000, "keys per processor")
		algName = flag.String("alg", "hss", "algorithm: "+names(algorithms))
		dsName  = flag.String("dist", "uniform", "distribution: "+names(distributions))
		eps     = flag.Float64("eps", 0.05, "load-imbalance threshold")
		buckets = flag.Int("buckets", 0, "output buckets (default: p)")
		rounds  = flag.Int("rounds", 0, "rounds for hss-theory (default: log log p/eps)")
		cores   = flag.Int("cores", 4, "cores per node for node-hss")
		tag     = flag.Bool("tag", false, "tag duplicates (§4.3)")
		approx  = flag.Bool("approx", false, "approximate histogramming (§3.4)")
		seed    = flag.Uint64("seed", 1, "random seed")
		trName  = flag.String("transport", "sim", "comm backend: sim (byte-accounted) or inproc (shared-memory fast path)")
		cpName  = flag.String("codepath", "auto", "compute plane: auto (code plane when available), off (comparator oracle) or on (require the code plane)")
		stream  = flag.Bool("stream", false, "streaming chunked exchange overlapped with the merge")
		chunk   = flag.Int("chunk", 0, "streaming-exchange chunk size in keys (implies -stream; default 64Ki)")
		repeat  = flag.Int("repeat", 1, "sorts to run through one engine (fresh shards each time; demonstrates Sorter reuse)")
		plan    = flag.Bool("plan", false, "prepare a splitter plan once and sort with SortWithPlan (0 histogram rounds per sort)")
		stale   = flag.Float64("staleness", 0, "with -plan: bucket-imbalance bound above which a sort re-histograms (0 = trust the plan)")
		verbose = flag.Bool("v", false, "verify the output is globally sorted")
	)
	flag.Parse()

	alg, ok := algorithms[*algName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q; known: %s\n", *algName, names(algorithms))
		os.Exit(2)
	}
	transport, err := hssort.ParseTransport(*trName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	codePath, err := hssort.ParseCodePath(*cpName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kind, ok := distributions[*dsName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q; known: %s\n", *dsName, names(distributions))
		os.Exit(2)
	}

	spec := dist.Spec{Kind: kind}
	shards := spec.Shards(*n, *p, *seed)
	var input [][]int64
	if *verbose {
		input = make([][]int64, *p)
		for i := range shards {
			input[i] = slices.Clone(shards[i])
		}
	}

	cfg := hssort.Config{
		Procs:          *p,
		Algorithm:      alg,
		Epsilon:        *eps,
		Buckets:        *buckets,
		Rounds:         *rounds,
		CoresPerNode:   *cores,
		TagDuplicates:  *tag,
		Approx:         *approx,
		Seed:           *seed,
		Transport:      transport,
		CodePath:       codePath,
		StreamExchange: *stream,
		ChunkKeys:      *chunk,
		PlanStaleness:  *stale,
	}

	// The engine is built once; Ctrl-C cancels the in-flight sort on
	// every simulated rank through the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	engine, err := hssort.New[int64](cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	var splitterPlan *hssort.Plan[int64]
	if *plan {
		planStart := time.Now()
		splitterPlan, err = engine.Plan(ctx, shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("plan: %d splitters in %d rounds (%d sample keys, achieved eps %.4f vs target %.4f) in %v\n\n",
			len(splitterPlan.Splitters), splitterPlan.Rounds, splitterPlan.TotalSample,
			splitterPlan.AchievedEpsilon, splitterPlan.Epsilon,
			time.Since(planStart).Round(time.Millisecond))
	}

	start := time.Now()
	var outs [][]int64
	var stats hssort.Stats
	runs := max(*repeat, 1)
	for i := 0; i < runs; i++ {
		work := shards
		if i < runs-1 {
			// Warm-up sorts on fresh shards; the last run sorts (and,
			// with -v, verifies) the original input.
			work = dist.Spec{Kind: kind}.Shards(*n, *p, *seed+uint64(i)+1)
		}
		if splitterPlan != nil {
			outs, stats, err = engine.SortWithPlan(ctx, splitterPlan, work)
		} else {
			outs, stats, err = engine.Sort(ctx, work)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	wall := time.Since(start)
	if runs > 1 {
		fmt.Printf("ran %d sorts through one engine (%v/sort); metrics below describe the last\n\n",
			runs, (wall / time.Duration(runs)).Round(time.Microsecond))
	}

	fmt.Printf("%s: sorted %s %s keys on %d simulated processors in %v (%s transport, %s code path)\n\n",
		alg, tablefmt.Count(float64(stats.N)), *dsName, *p, wall.Round(time.Millisecond), transport, codePath)
	if transport == hssort.TransportInproc {
		fmt.Println("note: the inproc transport does no byte accounting; byte/message metrics read zero")
		fmt.Println()
	}
	t := tablefmt.New("metric", "value")
	t.AddRow("local sort (max over ranks)", stats.LocalSort.Round(10*time.Microsecond).String())
	t.AddRow("splitter determination", stats.Splitter.Round(10*time.Microsecond).String())
	t.AddRow("data exchange", stats.Exchange.Round(10*time.Microsecond).String())
	t.AddRow("final merge", stats.Merge.Round(10*time.Microsecond).String())
	if *stream || *chunk > 0 {
		t.AddRow("merge overlapped with exchange", stats.ExchangeOverlap.Round(10*time.Microsecond).String())
		t.AddRow("peak in-flight exchange data", tablefmt.Bytes(float64(stats.PeakInFlightBytes)))
	}
	t.AddRow("histogramming rounds", fmt.Sprintf("%d", stats.Rounds))
	if splitterPlan != nil {
		t.AddRow("plan replanned (stale)", fmt.Sprintf("%v", stats.Replanned))
	}
	t.AddRow("total sample (probe keys)", fmt.Sprintf("%d", stats.TotalSample))
	t.AddRow("splitter-phase bytes", tablefmt.Bytes(float64(stats.SplitterBytes)))
	t.AddRow("exchange-phase bytes", tablefmt.Bytes(float64(stats.ExchangeBytes)))
	t.AddRow("total messages", fmt.Sprintf("%d", stats.TotalMsgs))
	t.AddRow("load imbalance (max/avg)", fmt.Sprintf("%.4f (target <= %.4f)", stats.Imbalance, 1+*eps))
	fmt.Print(t.String())

	if *verbose {
		var want, got []int64
		for _, s := range input {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				fmt.Fprintln(os.Stderr, "FAIL: a rank's output is not sorted")
				os.Exit(1)
			}
			got = append(got, o...)
		}
		// Non-contiguous bucket placements produce per-rank sorted
		// output whose rank order does not follow key order.
		if cfg.RoundRobinBuckets || alg == hssort.OverPartition {
			slices.Sort(got)
		}
		if !slices.Equal(got, want) {
			fmt.Fprintln(os.Stderr, "FAIL: output is not the sorted permutation of the input")
			os.Exit(1)
		}
		fmt.Println("\nverified: output is the globally sorted permutation of the input")
	}
}
