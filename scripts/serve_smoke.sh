#!/usr/bin/env bash
# Daemon smoke: boot hssortd on a free port, drive it with the HTTP
# client example (concurrent jobs from two tenants, int64 and bytes
# keys, every output diffed against a locally sorted copy), assert the
# plan cache shows up in /metrics, probe admission control on a daemon
# with a tiny queue (429s under flood), and check the SIGTERM drain:
# admitted jobs finish and the process exits 0. This is the CI gate for
# the sort-as-a-service surface (internal/server + cmd/hssortd).
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
pids=()
cleanup() {
	for pid in "${pids[@]:-}"; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/hssortd" ./cmd/hssortd
go build -o "$tmp/serviceclient" ./examples/serviceclient

# start_daemon LOGFILE [flags...] — boots hssortd on a free port and
# leaves the bound address in DADDR and the pid in DPID (globals, since
# a command substitution would fork the pid bookkeeping into a
# subshell).
start_daemon() {
	local log="$1"
	shift
	"$tmp/hssortd" -listen 127.0.0.1:0 "$@" >"$log" 2>&1 &
	DPID=$!
	pids+=("$DPID")
	DADDR=""
	for _ in $(seq 1 100); do
		DADDR="$(sed -n 's/^listening on //p' "$log" | head -n 1)"
		[ -n "$DADDR" ] && break
		sleep 0.1
	done
	if [ -z "$DADDR" ]; then
		echo "daemon failed to start:" >&2
		cat "$log" >&2
		exit 1
	fi
}

metric() { # metric NAME ADDR — prints the metric's value
	curl -sf "http://$2/metrics" | awk -v name="$1" '$1 == name {print $2}'
}

# --- Daemon 1: the serving path. -------------------------------------
start_daemon "$tmp/d1.log"
addr=$DADDR
d1=$DPID
echo "== daemon up on $addr"

[ "$(curl -sf "http://$addr/healthz")" = ok ] || { echo "healthz not ok"; exit 1; }

# Concurrent two-tenant jobs, digest-diffed against the library path,
# plus the plan-cache repeat (asserts planCache=hit, rounds=0).
"$tmp/serviceclient" -addr "$addr"

hits="$(metric hssortd_plan_cache_hits_total "$addr")"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
	echo "expected plan cache hits >= 1 in /metrics, got '${hits:-none}'" >&2
	exit 1
fi
rounds0="$(curl -sf "http://$addr/metrics" | grep 'hssortd_last_sort_rounds{tenant="metrics"}' | awk '{print $2}')"
if [ "$rounds0" != 0 ]; then
	echo "expected the recurring tenant's last sort to reuse its plan (0 rounds), got '$rounds0'" >&2
	exit 1
fi
for tenant in metrics search; do
	curl -sf "http://$addr/metrics" | grep -q "hssortd_jobs_total{status=\"done\",tenant=\"$tenant\"}" \
		|| { echo "no done jobs recorded for tenant $tenant" >&2; exit 1; }
done
echo "== plan cache: $hits hits, recurring tenant at 0 rounds"

# --- Daemon 2: admission control and drain. --------------------------
start_daemon "$tmp/d2.log" -queue 2 -concurrency 1 -tenant-jobs 1
addr2=$DADDR
d2=$DPID
echo "== small-queue daemon up on $addr2"

flood_out="$("$tmp/serviceclient" -addr "$addr2" -flood 12)"
echo "$flood_out"
refused="$(echo "$flood_out" | sed -n 's/.* \([0-9]*\) refused with 429.*/\1/p')"
if [ -z "$refused" ] || [ "$refused" -lt 1 ]; then
	echo "expected at least one 429 from the flood" >&2
	exit 1
fi
rejected="$(metric hssortd_rejected_total "$addr2")"
[ "$rejected" = "$refused" ] || { echo "metrics rejected=$rejected but client saw $refused" >&2; exit 1; }

# SIGTERM while flood jobs are still queued/running: the daemon must
# finish the admitted jobs, log the drain, and exit 0.
kill -TERM "$d2"
if ! wait "$d2"; then
	echo "daemon 2 exited non-zero on SIGTERM" >&2
	cat "$tmp/d2.log" >&2
	exit 1
fi
grep -q "drained, exiting" "$tmp/d2.log" || { echo "daemon 2 never logged the drain"; cat "$tmp/d2.log"; exit 1; }
echo "== small-queue daemon drained cleanly under SIGTERM"

# --- Drain daemon 1 too. ---------------------------------------------
kill -TERM "$d1"
if ! wait "$d1"; then
	echo "daemon 1 exited non-zero on SIGTERM" >&2
	cat "$tmp/d1.log" >&2
	exit 1
fi
grep -q "drained, exiting" "$tmp/d1.log" || { echo "daemon 1 never logged the drain"; cat "$tmp/d1.log"; exit 1; }

pids=()
echo "serve smoke passed: concurrent tenants digest-clean, plan cache hit with 0 rounds, flood shed $refused jobs with 429, SIGTERM drained both daemons"
