package comm

import "sync"

// mailbox is one rank's unbounded inbox: a single arrival-ordered queue
// scanned for the first envelope match, mirroring MPI's unexpected
// message queue.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
}

// SimTransport is the simulated, byte-accounted message-passing backend —
// the substrate behind all of the paper's BSP measurements. Every Send
// charges the accounted wire size to per-rank Counters, an optional
// Interceptor can observe and veto messages for fault injection, and Recv
// matches envelopes against a single arrival-ordered queue per rank (so
// AnySource follows arrival order, like an MPI unexpected-message queue).
//
// SimTransport is the default backend of NewWorld. Use InprocTransport
// when throughput matters more than accounting fidelity.
type SimTransport struct {
	p           int
	boxes       []*mailbox
	counters    []Counters
	interceptor Interceptor
	abort       abortState
	bar         *cyclicBarrier
}

var _ Transport = (*SimTransport)(nil)

// NewSimTransport creates a simulated transport connecting p ranks. It
// panics if p < 1.
func NewSimTransport(p int) *SimTransport {
	if p < 1 {
		panicSize(p)
	}
	t := &SimTransport{
		p:        p,
		boxes:    make([]*mailbox, p),
		counters: make([]Counters, p),
	}
	for i := range t.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		t.boxes[i] = mb
	}
	t.bar = newCyclicBarrier(p, t.Err)
	return t
}

// SetInterceptor installs a message interceptor for fault injection.
// Call before any rank starts sending.
func (t *SimTransport) SetInterceptor(ic Interceptor) { t.interceptor = ic }

// Size returns the number of ranks.
func (t *SimTransport) Size() int { return t.p }

// Send enqueues the message in dst's mailbox and charges src's counters.
func (t *SimTransport) Send(src, dst int, tag Tag, payload any, bytes int64) error {
	if err := t.abort.get(); err != nil {
		return err
	}
	m := Message{Src: src, Tag: tag, Payload: payload, Bytes: bytes}
	if ic := t.interceptor; ic != nil {
		if err := ic(src, dst, &m); err != nil {
			return err
		}
	}
	mb := t.boxes[dst]
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
	cnt := &t.counters[src]
	cnt.MsgsSent++
	cnt.BytesSent += bytes
	return nil
}

// Recv scans dst's mailbox in arrival order for the first (src, tag)
// match, blocking until one arrives, and charges dst's counters.
func (t *SimTransport) Recv(dst, src int, tag Tag) (Message, error) {
	mb := t.boxes[dst]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				cnt := &t.counters[dst]
				cnt.MsgsRecv++
				cnt.BytesRecv += m.Bytes
				return m, nil
			}
		}
		if err := t.abort.get(); err != nil {
			return Message{}, err
		}
		mb.cond.Wait()
	}
}

// TryRecv scans dst's mailbox in arrival order for the first (src, tag)
// match and returns it without blocking; ok is false when no match is
// buffered. A successful probe charges dst's counters like Recv.
func (t *SimTransport) TryRecv(dst, src int, tag Tag) (Message, bool, error) {
	mb := t.boxes[dst]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if err := t.abort.get(); err != nil {
		return Message{}, false, err
	}
	for i, m := range mb.queue {
		if (src == AnySource || m.Src == src) && m.Tag == tag {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			cnt := &t.counters[dst]
			cnt.MsgsRecv++
			cnt.BytesRecv += m.Bytes
			return m, true, nil
		}
	}
	return Message{}, false, nil
}

// Barrier blocks until all p ranks have entered.
func (t *SimTransport) Barrier(int) error { return t.bar.await() }

// Abort latches err and unblocks all pending and future operations.
func (t *SimTransport) Abort(err error) {
	t.abort.set(err)
	for _, mb := range t.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	t.bar.wake()
}

// Err returns the abort error, or nil while the transport is live.
func (t *SimTransport) Err() error { return t.abort.get() }

// Reset returns the transport to its freshly constructed state: queued
// messages are discarded, the abort latch clears, the barrier rearms and
// counters zero. Only call while no ranks are running.
func (t *SimTransport) Reset() {
	for _, mb := range t.boxes {
		mb.mu.Lock()
		mb.queue = nil
		mb.mu.Unlock()
	}
	t.abort.reset()
	t.bar.reset()
	t.ResetCounters()
}

// Counters returns a copy of rank r's traffic counters. Call after Run
// returns (or from rank r itself) to avoid racing the owning goroutine.
func (t *SimTransport) Counters(r int) Counters { return t.counters[r] }

// TotalCounters sums counters across all ranks.
func (t *SimTransport) TotalCounters() Counters {
	var total Counters
	for i := range t.counters {
		total.Add(t.counters[i])
	}
	return total
}

// ResetCounters zeroes all counters. Only call while no ranks are running.
func (t *SimTransport) ResetCounters() {
	for i := range t.counters {
		t.counters[i] = Counters{}
	}
}
