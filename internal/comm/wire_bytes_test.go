package comm

import (
	"bytes"
	"reflect"
	"testing"
)

// The varlen-record codec: [][]byte payloads must round trip through
// the arena fast path — standalone, nested in protocol structs, and as
// elements of run lists — with the decoded value owning fresh memory,
// and the decoder must reject every truncation and corruption without
// panicking or over-allocating.

// byteMsg mirrors the byte-key streaming chunk shape
// (exchange.streamMsg[[]byte]): a [][][]byte run list next to flat
// fields.
type byteMsg struct {
	runs   [][][]byte
	keys   int
	last   bool
	credit int32
}

func TestWireRoundTripByteSlices(t *testing.T) {
	cases := [][][]byte{
		nil,
		{},
		{nil},
		{{}},
		{[]byte("a")},
		{[]byte("https://a.example/x"), []byte("https://b.example/"), nil, {}, []byte("z")},
		{bytes.Repeat([]byte{0xab}, 1000), []byte{0}, []byte{255}},
	}
	for _, c := range cases {
		got := roundTrip(t, c)
		if c == nil {
			// A nil [][]byte payload encodes as a typed nil slice.
			if gs, ok := got.([][]byte); !ok || gs != nil {
				t.Errorf("round trip nil [][]byte: got %#v", got)
			}
			continue
		}
		gs, ok := got.([][]byte)
		if !ok {
			t.Fatalf("round trip [][]byte: got %T", got)
		}
		if len(gs) != len(c) {
			t.Fatalf("round trip [][]byte: %d elements, want %d", len(gs), len(c))
		}
		for i := range c {
			if (gs[i] == nil) != (c[i] == nil) || !bytes.Equal(gs[i], c[i]) {
				t.Errorf("element %d: got %#v, want %#v", i, gs[i], c[i])
			}
		}
	}
}

func TestWireByteSlicesFreshMemory(t *testing.T) {
	src := [][]byte{[]byte("aaaa"), []byte("bbbb")}
	got := roundTrip(t, src).([][]byte)
	src[0][0] = 'X'
	src[1][0] = 'X'
	if got[0][0] != 'a' || got[1][0] != 'b' {
		t.Fatal("decoded [][]byte aliases the encode-side memory")
	}
}

func TestWireRoundTripByteMsg(t *testing.T) {
	RegisterWire[byteMsg]()
	m := byteMsg{
		runs: [][][]byte{
			{[]byte("k1"), []byte("k22")},
			nil,
			{nil, {}, []byte("k3333")},
		},
		keys:   6,
		last:   true,
		credit: 0,
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("byteMsg round trip: got %#v, want %#v", got, m)
	}
}

// TestWireByteSlicesLayoutMatchesGeneric pins the fast path to the
// generic slice framing: the encoding of [][]byte must be what the
// reflect walk produces for an equivalent pointer-bearing slice shape
// (outer uvarint(n+1), per element uvarint(len+1) + raw bytes, nil as
// uvarint(0)).
func TestWireByteSlicesLayoutMatchesGeneric(t *testing.T) {
	payload := [][]byte{[]byte("ab"), nil, {}}
	buf, err := appendWirePayload(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	name, rest, err := readWireString(buf)
	if err != nil || name != "[][]uint8" {
		t.Fatalf("wire name %q, err %v", name, err)
	}
	want := []byte{
		4,           // outer: 3 elements + 1
		3, 'a', 'b', // element 0: len 2 + 1, bytes
		0, // element 1: nil
		1, // element 2: empty non-nil
	}
	if !bytes.Equal(rest, want) {
		t.Fatalf("encoding layout: got %v, want %v", rest, want)
	}
}

func FuzzWireByteSlices(f *testing.F) {
	f.Add([]byte("a"), []byte("bb"), 2, 0)
	f.Add([]byte{}, []byte(nil), 1, 3)
	f.Add([]byte("https://a.example/"), bytes.Repeat([]byte{7}, 100), 0, 1)
	f.Fuzz(func(t *testing.T, a, b []byte, cut, mode int) {
		payload := [][]byte{a, b, nil, {}}
		buf, err := appendWirePayload(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		// Round trip must reproduce the payload exactly.
		got, err := decodeWirePayload(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		gs := got.([][]byte)
		if len(gs) != len(payload) {
			t.Fatalf("decoded %d elements, want %d", len(gs), len(payload))
		}
		for i := range payload {
			if (gs[i] == nil) != (payload[i] == nil) || !bytes.Equal(gs[i], payload[i]) {
				t.Fatalf("element %d: got %#v, want %#v", i, gs[i], payload[i])
			}
		}
		// Every strict truncation must be rejected, never panic. (A
		// truncation can only shorten or keep the element count, so the
		// arena sizing stays bounded by the input length.)
		if len(buf) > 0 {
			k := cut % len(buf)
			if k < 0 {
				k += len(buf)
			}
			if _, err := decodeWirePayload(buf[:k]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded successfully", k, len(buf))
			}
		}
		// Flipping a byte must never panic (errors are fine; some flips
		// produce a different valid payload).
		if mode >= 0 && len(buf) > 0 {
			mut := bytes.Clone(buf)
			mut[mode%len(mut)] ^= 0xff
			decodeWirePayload(mut) //nolint:errcheck // must-not-panic probe
		}
	})
}
