package hssort

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"testing"
	"time"

	"hssort/internal/dist"
)

// workersPerRank sits above every parallel kernel's serial cutoff
// (1<<14 keys), so the sweep exercises the actual fan-out paths — radix
// scatter, strided partition, chunked codec, per-core merge — not their
// serial fallbacks.
const workersPerRank = 20000

// workerSweep is the Workers values tested against the Workers=1
// baseline: fixed small pools plus the machine's own GOMAXPROCS,
// deduplicated (on a single-core runner GOMAXPROCS collapses into the
// baseline).
func workerSweep() []int {
	sweep := []int{2, 3, runtime.GOMAXPROCS(0)}
	slices.Sort(sweep)
	sweep = slices.Compact(sweep)
	return slices.DeleteFunc(sweep, func(w int) bool { return w <= 1 })
}

// TestWorkersEquivalence is the multicore plane's acceptance gate: for
// every algorithm with worker-pool support, on all three transports,
// with both exchange planes and both compute planes, a sort with
// Workers > 1 must produce rank-identical output and run the identical
// protocol (rounds, sample volume, imbalance — and, where the transport
// byte-accounts deterministically, identical phase byte counts) as the
// serial Workers = 1 sort. One matrix cell = one (algorithm, transport,
// exchange plane, code path) tuple swept over worker counts.
func TestWorkersEquivalence(t *testing.T) {
	const p = 4
	algs := []struct {
		name string
		cfg  Config
		kind dist.Kind
	}{
		{"hss", Config{Procs: p, Algorithm: HSS, Epsilon: 0.1, Seed: 3}, dist.PowerSkew},
		{"samplesort", Config{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 5}, dist.DuplicateHeavy},
		{"histogramsort", Config{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 7}, dist.Exponential},
		{"node-hss", Config{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 9}, dist.Uniform},
	}
	for _, tc := range algs {
		for _, tr := range []Transport{TransportSim, TransportInproc, TransportTCP} {
			for _, streaming := range []bool{false, true} {
				for _, cp := range []CodePath{CodePathOff, CodePathOn} {
					plane := "materializing"
					if streaming {
						plane = "streaming"
					}
					t.Run(fmt.Sprintf("%s/%s/%s/%s", tc.name, tr, plane, cp), func(t *testing.T) {
						shards := dist.Spec{Kind: tc.kind, Min: 0, Max: 1 << 40, Distinct: 64}.Shards(workersPerRank, p, 61)

						cfg := tc.cfg
						cfg.Transport = tr
						cfg.CodePath = cp
						if streaming {
							cfg.StreamExchange = true
							cfg.ChunkKeys = 1024
						}

						serial := cfg
						serial.Workers = 1
						wantOuts, wantStats, err := Sort(serial, cloneShards(shards))
						if err != nil {
							t.Fatalf("Workers=1 baseline: %v", err)
						}
						if wantStats.Workers != 1 {
							t.Fatalf("baseline Stats.Workers = %d, want 1", wantStats.Workers)
						}

						for _, w := range workerSweep() {
							par := cfg
							par.Workers = w
							gotOuts, gotStats, err := Sort(par, cloneShards(shards))
							if err != nil {
								t.Fatalf("Workers=%d: %v", w, err)
							}
							for r := range wantOuts {
								if !slices.Equal(gotOuts[r], wantOuts[r]) {
									t.Fatalf("Workers=%d: rank %d output differs from the serial sort (%d vs %d keys)",
										w, r, len(gotOuts[r]), len(wantOuts[r]))
								}
							}
							// The protocol is a function of key order and
							// seeds only; the pool must not have changed a
							// single decision.
							if gotStats.Rounds != wantStats.Rounds || gotStats.TotalSample != wantStats.TotalSample {
								t.Errorf("Workers=%d: protocol diverged: %d rounds/%d sample, serial %d rounds/%d sample",
									w, gotStats.Rounds, gotStats.TotalSample, wantStats.Rounds, wantStats.TotalSample)
							}
							if gotStats.Imbalance != wantStats.Imbalance {
								t.Errorf("Workers=%d: imbalance diverged: %v vs %v", w, gotStats.Imbalance, wantStats.Imbalance)
							}
							if tr != TransportTCP {
								// Sim and inproc byte accounting is a pure
								// function of the protocol (inproc reads
								// zero); tcp measures wire timing-dependent
								// framing and is excluded.
								if gotStats.SplitterBytes != wantStats.SplitterBytes {
									t.Errorf("Workers=%d: splitter bytes diverged: %d vs serial %d",
										w, gotStats.SplitterBytes, wantStats.SplitterBytes)
								}
								// Exchange bytes are compared on the
								// materializing path only: the streaming
								// plane's credit grants batch by consumption
								// timing, so a parallel merge tail may
								// legitimately send a different number of
								// flow-control messages (data volume is
								// unchanged; output equality above pins it).
								if !streaming && gotStats.ExchangeBytes != wantStats.ExchangeBytes {
									t.Errorf("Workers=%d: exchange bytes diverged: %d vs serial %d",
										w, gotStats.ExchangeBytes, wantStats.ExchangeBytes)
								}
							}
							if gotStats.Workers != w {
								t.Errorf("Stats.Workers = %d, want %d", gotStats.Workers, w)
							}
							if gotStats.ParTasks == 0 {
								t.Errorf("Workers=%d: Stats.ParTasks = 0 — no kernel ran through the pool", w)
							}
						}
					})
				}
			}
		}
	}
}

// TestWorkersEquivalenceKV extends the sweep to payload-carrying
// records on the decorated plane: the key sequence must be identical
// rank by rank, and for each key the payload multiset must match the
// serial sort (like the planes, the pool may only permute equal-key
// records).
func TestWorkersEquivalenceKV(t *testing.T) {
	const p = 4
	for _, alg := range []Algorithm{HSS, SampleSortRegular} {
		for _, streaming := range []bool{false, true} {
			plane := "materializing"
			if streaming {
				plane = "streaming"
			}
			t.Run(fmt.Sprintf("%v/%s", alg, plane), func(t *testing.T) {
				shards := make([][]KV[int64, int32], p)
				rng := rand.New(rand.NewPCG(6, 53))
				id := int32(0)
				for r := range shards {
					shards[r] = make([]KV[int64, int32], workersPerRank)
					for i := range shards[r] {
						shards[r][i] = KV[int64, int32]{Key: rng.Int64N(512), Val: id} // heavy duplicates
						id++
					}
				}
				cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 13}
				if streaming {
					cfg.StreamExchange = true
					cfg.ChunkKeys = 1024
				}
				serial := cfg
				serial.Workers = 1
				want, _, err := SortKV(serial, cloneAny(shards))
				if err != nil {
					t.Fatalf("Workers=1 baseline: %v", err)
				}
				for _, w := range workerSweep() {
					par := cfg
					par.Workers = w
					got, _, err := SortKV(par, cloneAny(shards))
					if err != nil {
						t.Fatalf("Workers=%d: %v", w, err)
					}
					checkKVEquivalent(t, want, got, w)
				}
			})
		}
	}
}

// checkKVEquivalent asserts got matches want rank by rank: identical
// key sequences, per-key payload multisets equal.
func checkKVEquivalent(t *testing.T, want, got [][]KV[int64, int32], workers int) {
	t.Helper()
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("Workers=%d: rank %d: %d vs %d records", workers, r, len(got[r]), len(want[r]))
		}
		wantVals := map[int64][]int32{}
		for i := range want[r] {
			if got[r][i].Key != want[r][i].Key {
				t.Fatalf("Workers=%d: rank %d: key sequence diverged at %d", workers, r, i)
			}
			wantVals[want[r][i].Key] = append(wantVals[want[r][i].Key], want[r][i].Val)
		}
		gotVals := map[int64][]int32{}
		for _, rec := range got[r] {
			gotVals[rec.Key] = append(gotVals[rec.Key], rec.Val)
		}
		for k, wv := range wantVals {
			gv := gotVals[k]
			slices.Sort(wv)
			slices.Sort(gv)
			if !slices.Equal(gv, wv) {
				t.Fatalf("Workers=%d: rank %d: payload multiset for key %d diverged", workers, r, k)
			}
		}
	}
}

// TestWorkersDeterminism pins run-to-run determinism of the parallel
// kernels: two sorts of the same input through the same engine with the
// same Workers must be byte-identical — including payload order for
// records, where the tandem radix scatter and per-core merges are
// deterministic for a fixed worker count.
func TestWorkersDeterminism(t *testing.T) {
	const p = 4
	t.Run("keys", func(t *testing.T) {
		shards := dist.Spec{Kind: dist.DuplicateHeavy, Distinct: 64}.Shards(workersPerRank, p, 67)
		s, err := New[int64](Config{Procs: p, Epsilon: 0.1, Seed: 17, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		first, _, err := s.Sort(context.Background(), cloneShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		second, _, err := s.Sort(context.Background(), cloneShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		for r := range first {
			if !slices.Equal(first[r], second[r]) {
				t.Fatalf("rank %d: repeated parallel sort diverged", r)
			}
		}
	})
	t.Run("records", func(t *testing.T) {
		shards := make([][]KV[int64, int32], p)
		rng := rand.New(rand.NewPCG(7, 59))
		id := int32(0)
		for r := range shards {
			shards[r] = make([]KV[int64, int32], workersPerRank)
			for i := range shards[r] {
				shards[r][i] = KV[int64, int32]{Key: rng.Int64N(256), Val: id}
				id++
			}
		}
		s, err := NewKV[int64, int32](Config{Procs: p, Epsilon: 0.1, Seed: 19, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		first, _, err := s.SortKV(context.Background(), cloneAny(shards))
		if err != nil {
			t.Fatal(err)
		}
		second, _, err := s.SortKV(context.Background(), cloneAny(shards))
		if err != nil {
			t.Fatal(err)
		}
		for r := range first {
			if !slices.Equal(first[r], second[r]) {
				t.Fatalf("rank %d: repeated parallel record sort diverged (payload order included)", r)
			}
		}
	})
}

// TestWorkersTagDuplicates covers the pool × §4.3 tagging interaction:
// tagged records order totally (key, origin), so the parallel
// comparator-plane kernels must reproduce the serial output
// byte-identically even on mass-duplicate input.
func TestWorkersTagDuplicates(t *testing.T) {
	const p = 4
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, workersPerRank)
		for i := range shards[r] {
			shards[r][i] = int64(i % 3) // three distinct values: worst-case duplicates
		}
	}
	cfg := Config{Procs: p, Epsilon: 0.1, Seed: 23, TagDuplicates: true}
	serial := cfg
	serial.Workers = 1
	want, wantStats, err := Sort(serial, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Imbalance > 1.1 {
		t.Fatalf("tagging failed to balance the serial baseline: %v", wantStats.Imbalance)
	}
	for _, w := range workerSweep() {
		par := cfg
		par.Workers = w
		got, gotStats, err := Sort(par, cloneShards(shards))
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		for r := range want {
			if !slices.Equal(got[r], want[r]) {
				t.Fatalf("Workers=%d: rank %d diverged on tagged duplicates", w, r)
			}
		}
		if gotStats.Imbalance != wantStats.Imbalance {
			t.Errorf("Workers=%d: imbalance diverged: %v vs %v", w, gotStats.Imbalance, wantStats.Imbalance)
		}
	}
}

// TestWorkersCloseNoLeak asserts that an engine whose sorts fanned out
// over a worker pool leaves no goroutines behind after Close — the pool
// is pure fork-join (no persistent workers), so the engine's teardown
// contract is unchanged by Workers > 1.
func TestWorkersCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	shards := dist.Spec{Kind: dist.Uniform}.Shards(workersPerRank, 4, 71)
	s, err := New[int64](Config{Procs: 4, Epsilon: 0.1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sort(context.Background(), cloneShards(shards)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s", runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
