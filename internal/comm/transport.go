package comm

import "sync"

// Transport is the pluggable message-delivery backend a World runs over.
// Three implementations ship with the repository:
//
//   - SimTransport (the default): the simulated, fully byte-accounted
//     runtime used for the paper's BSP measurements. Every message
//     carries an accounted wire size, per-rank Counters track traffic,
//     and an Interceptor can veto sends for fault injection.
//   - InprocTransport: a zero-copy shared-memory fast path for
//     production-style throughput runs. Payloads move by reference with
//     no serialization accounting and no per-message envelope
//     bookkeeping; Counters read zero.
//   - TCPTransport: the multi-process backend — each rank is its own OS
//     process, messages cross real sockets through the wire protocol of
//     docs/WIRE.md, and Counters report measured (not modeled) traffic.
//     NewTCPLoopback provides an in-process world over real localhost
//     sockets.
//
// The contract every implementation must honor (the conformance suite in
// transport_test.go checks it against all backends):
//
//   - Send is asynchronous and never blocks (unbounded buffering).
//   - Recv blocks until a message matching (src, tag) arrives; src may
//     be AnySource. Messages from one sender on one tag are delivered
//     in send order (pairwise FIFO, the MPI non-overtaking rule).
//     AnySource carries no ordering guarantee across senders.
//   - Barrier blocks until all ranks have entered it.
//   - Abort latches the first error and unblocks every pending and
//     future Send/Recv/Barrier with it.
//
// Callers pass valid rank indexes: Comm validates user-supplied ranks
// before delegating, so transports may assume 0 <= src, dst < Size()
// (src additionally may be AnySource in Recv).
type Transport interface {
	// Size returns the number of ranks the transport connects.
	Size() int
	// Send delivers payload from rank src to rank dst on stream tag;
	// bytes is the accounted wire size (ignored by non-accounting
	// backends).
	Send(src, dst int, tag Tag, payload any, bytes int64) error
	// Recv blocks until rank dst has a message matching (src, tag) and
	// returns it; src may be AnySource.
	Recv(dst, src int, tag Tag) (Message, error)
	// TryRecv is the posted-receive probe behind streaming protocols: it
	// returns the next message matching (src, tag) if one is already
	// buffered, without blocking. src may be AnySource. ok reports
	// whether a message was delivered.
	TryRecv(dst, src int, tag Tag) (Message, bool, error)
	// Barrier blocks rank until every rank has entered the barrier.
	Barrier(rank int) error
	// Abort unblocks all pending and future operations with err (or
	// ErrAborted if err is nil). The first abort wins.
	Abort(err error)
	// Err returns the abort error, or nil while the transport is live.
	Err() error
	// Reset returns the transport to its freshly constructed state:
	// queued messages are discarded, the abort latch clears, the barrier
	// rearms and counters zero. Only call while no ranks are running —
	// it is the hook that lets a long-lived engine (comm.Pool) reuse one
	// transport across sorts, including after an abort or cancellation.
	Reset()

	// Counters returns rank r's traffic counters: the byte-accounting
	// hook behind the paper's communication-volume measurements.
	// Non-accounting backends return the zero Counters.
	Counters(r int) Counters
	// TotalCounters sums counters across all ranks.
	TotalCounters() Counters
	// ResetCounters zeroes all counters. Only call while no ranks are
	// running.
	ResetCounters()
}

// RankHoster is the optional Transport extension of multi-process
// backends: a transport that hosts only a subset of the world's ranks in
// this process. World.Run and Pool drive exactly the hosted ranks —
// under TCPTransport each process hosts one rank, so p cooperating
// processes each run their own slice of the same SPMD program. In-memory
// transports host every rank and do not implement the interface.
type RankHoster interface {
	// LocalRanks returns the ranks hosted in this process, sorted.
	LocalRanks() []int
}

// hostedRanks returns the ranks of t that live in this process: all of
// them unless the transport is a RankHoster.
func hostedRanks(t Transport) []int {
	if h, ok := t.(RankHoster); ok {
		return h.LocalRanks()
	}
	all := make([]int, t.Size())
	for i := range all {
		all[i] = i
	}
	return all
}

// abortState is the first-abort-wins error latch shared by the built-in
// transports.
type abortState struct {
	mu  sync.Mutex
	err error
}

// set latches err (ErrAborted if nil) unless an abort already happened.
func (a *abortState) set(err error) {
	if err == nil {
		err = ErrAborted
	}
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// get returns the latched abort error, or nil.
func (a *abortState) get() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// reset clears the latch so the transport can be reused.
func (a *abortState) reset() {
	a.mu.Lock()
	a.err = nil
	a.mu.Unlock()
}

// cyclicBarrier is a reusable p-party barrier that unblocks early when
// the owning transport aborts.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     uint64
	aborted func() error
}

func newCyclicBarrier(size int, aborted func() error) *cyclicBarrier {
	b := &cyclicBarrier{size: size, aborted: aborted}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until size parties have called it (one generation), or
// until the transport aborts.
func (b *cyclicBarrier) await() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.aborted(); err != nil {
		return err
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.size {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for b.gen == gen {
		b.cond.Wait()
		if err := b.aborted(); err != nil {
			return err
		}
	}
	return nil
}

// wake unblocks all waiters so they can observe an abort.
func (b *cyclicBarrier) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset rearms the barrier after an abort. Only call while no parties
// are waiting (all rank goroutines joined).
func (b *cyclicBarrier) reset() {
	b.mu.Lock()
	b.arrived = 0
	b.gen++
	b.cond.Broadcast()
	b.mu.Unlock()
}
