package spill

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"os"
	"unsafe"

	"hssort/internal/codes"
)

// Run-file format (docs/SPILL.md): an 8-byte magic, a sequence of
// frames, and a final marker frame. Each frame is a 13-byte header —
// stored payload length (u32 LE), key count (u32 LE), flags (u8),
// CRC-32C of the stored payload (u32 LE) — followed by the payload.
// Payloads are delta-varint coded on the pure code plane and raw
// fixed-size records otherwise, flate-compressed per frame when that
// actually shrinks them. The final marker (flagFinal, zero length, zero
// count) makes truncation detectable: a reader that hits EOF without it
// reports ErrCorrupt.
const (
	runMagic         = "HSSPILL1"
	frameHeaderBytes = 13

	flagDelta = 1 << 0 // payload is a delta-varint code stream
	flagFlate = 1 << 1 // payload is flate-compressed
	flagFinal = 1 << 2 // end-of-run marker, no payload

	// Sanity caps checked before any allocation on the read path.
	maxFramePayload = 1 << 30
	maxFrameKeys    = 1 << 28

	// Frames smaller than this skip the compression attempt.
	minCompressBytes = 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC checksums a frame: the header's length/count/flags fields
// followed by the stored payload, so a flipped header bit (say, the
// compression flag) is as detectable as a flipped payload bit.
func frameCRC(hdrPrefix, stored []byte) uint32 {
	h := crc32.Checksum(hdrPrefix, crcTable)
	return crc32.Update(h, crcTable, stored)
}

// rawBytes reinterprets a slice of plain-data keys as its backing
// bytes. Callers guarantee K is spillable (Spillable[K]).
func rawBytes[K any](keys []K) []byte {
	if len(keys) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&keys[0])), uintptr(len(keys))*unsafe.Sizeof(keys[0]))
}

// isCodePlane reports whether K is codes.Code, selecting the
// delta-varint payload encoding.
func isCodePlane[K any]() bool {
	_, ok := any([]K(nil)).([]codes.Code)
	return ok
}

// Writer streams one sorted run of keys into a run file, splitting it
// into frameKeys-sized compressed frames. WriteKeys may be called any
// number of times (the run is the concatenation); Finish seals the file
// and hands back the Run descriptor, Abort deletes it. A Writer is not
// safe for concurrent use.
type Writer[K any] struct {
	m         *Manager
	path      string
	f         *os.File
	bw        *bufio.Writer
	frameKeys int
	keySize   int64
	delta     bool

	fw     *flate.Writer
	encBuf []byte       // delta-varint staging
	cmpBuf bytes.Buffer // flate staging

	keys     int64
	err      error
	finished bool
}

// NewWriter creates a run file in m's spill directory. frameKeys bounds
// the keys per frame (and therefore the resident bytes a reader needs
// per run at merge time).
func NewWriter[K any](m *Manager, frameKeys int) (*Writer[K], error) {
	if frameKeys < 1 {
		frameKeys = 1
	}
	if frameKeys > maxFrameKeys {
		frameKeys = maxFrameKeys
	}
	var zero K
	w := &Writer[K]{
		m:         m,
		path:      m.newPath(),
		frameKeys: frameKeys,
		keySize:   int64(unsafe.Sizeof(zero)),
		delta:     isCodePlane[K](),
	}
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, &Error{Op: "create", Path: w.path, Err: err}
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.fw, _ = flate.NewWriter(&w.cmpBuf, flate.BestSpeed)
	if _, err := w.bw.WriteString(runMagic); err != nil {
		w.Abort()
		return nil, &Error{Op: "write", Path: w.path, Err: err}
	}
	return w, nil
}

// Path returns the run file's path.
func (w *Writer[K]) Path() string { return w.path }

// Keys returns the number of keys written so far.
func (w *Writer[K]) Keys() int64 { return w.keys }

// WriteKeys appends sorted keys to the run, splitting them into frames.
// Errors are sticky.
func (w *Writer[K]) WriteKeys(keys []K) error {
	if w.err != nil {
		return w.err
	}
	for len(keys) > 0 {
		n := min(w.frameKeys, len(keys))
		if err := w.writeFrame(keys[:n]); err != nil {
			w.err = err
			return err
		}
		keys = keys[n:]
	}
	return nil
}

func (w *Writer[K]) writeFrame(keys []K) error {
	var payload []byte
	flags := byte(0)
	if w.delta {
		w.encBuf = codes.DeltaAppend(w.encBuf[:0], any(keys).([]codes.Code))
		payload = w.encBuf
		flags |= flagDelta
	} else {
		payload = rawBytes(keys)
	}
	stored := payload
	if len(payload) >= minCompressBytes {
		w.cmpBuf.Reset()
		w.fw.Reset(&w.cmpBuf)
		if _, err := w.fw.Write(payload); err == nil {
			if err := w.fw.Close(); err == nil && w.cmpBuf.Len() < len(payload) {
				stored = w.cmpBuf.Bytes()
				flags |= flagFlate
			}
		}
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(stored)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(keys)))
	hdr[8] = flags
	binary.LittleEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], stored))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return &Error{Op: "write", Path: w.path, Err: err}
	}
	if _, err := w.bw.Write(stored); err != nil {
		return &Error{Op: "write", Path: w.path, Err: err}
	}
	w.keys += int64(len(keys))
	w.m.noteSpill(int64(len(keys))*w.keySize, int64(frameHeaderBytes+len(stored)))
	return nil
}

// Finish writes the final marker, flushes, and closes the file,
// returning the completed run's descriptor. The Writer is dead
// afterwards.
func (w *Writer[K]) Finish() (*Run[K], error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.finished {
		return nil, &Error{Op: "finish", Path: w.path, Err: os.ErrClosed}
	}
	var hdr [frameHeaderBytes]byte
	hdr[8] = flagFinal
	binary.LittleEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], nil))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.m.noteSpill(0, frameHeaderBytes)
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return nil, w.err
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
		return nil, w.err
	}
	w.finished = true
	return &Run[K]{m: w.m, path: w.path, keys: w.keys}, nil
}

func (w *Writer[K]) fail(err error) {
	w.err = &Error{Op: "finish", Path: w.path, Err: err}
	w.f.Close()
	os.Remove(w.path)
	w.finished = true
}

// Abort closes and deletes the run file. Safe to call at any point,
// including after Finish (where it is a no-op: the Run owns the file).
func (w *Writer[K]) Abort() {
	if w.finished {
		return
	}
	w.finished = true
	if w.err == nil {
		w.err = &Error{Op: "write", Path: w.path, Err: os.ErrClosed}
	}
	w.f.Close()
	os.Remove(w.path)
}

// Run describes a sealed run file, ready to be read back.
type Run[K any] struct {
	m    *Manager
	path string
	keys int64
}

// Keys returns the number of keys in the run.
func (r *Run[K]) Keys() int64 { return r.keys }

// Path returns the run file's path.
func (r *Run[K]) Path() string { return r.path }

// Reader opens the run for streaming read-back. With removeOnEOF the
// file is deleted as soon as the reader hits the final marker — the
// steady-state cleanup of a successful merge.
func (r *Run[K]) Reader(removeOnEOF bool) (*RunReader[K], error) {
	return OpenRun[K](r.m, r.path, removeOnEOF)
}

// Remove deletes the run file without reading it.
func (r *Run[K]) Remove() error {
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return &Error{Op: "remove", Path: r.path, Err: err}
	}
	return nil
}
