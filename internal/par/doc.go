// Package par is the intra-rank parallel compute plane: a bounded
// fork-join worker pool the hot kernels (radix local sort, partition
// scans, encode/decode, per-core merge trees) fan their work over.
//
// A Pool is a budget, not a set of goroutines: Do spawns up to Workers
// goroutines for one fork-join region and joins them all before
// returning, so a rank's compute phases never leave workers behind —
// cancellation between phases finds nothing to drain, and
// goroutine-leak assertions hold by construction. The price is one
// goroutine spawn per worker per region, ~1µs each, which the serial
// cutoffs in every kernel keep negligible.
//
// Each simulated rank owns its own Pool. In a process hosting h ranks
// (all of them for the in-memory transports, one for a TCP worker
// process), Default budgets GOMAXPROCS/h workers per rank so
// concurrently running ranks own disjoint core budgets instead of
// oversubscribing the machine.
//
// Determinism contract: Do distributes task indices dynamically (any
// worker may run any task), so kernels built on it must make each
// task's effect a pure function of the task index and the input —
// never of which worker ran it or in what order. Every kernel in this
// repository follows that rule, which is what the worker-count-sweep
// equivalence tests at the repository root pin.
package par
