package comm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// pool builds a Pool over a fresh transport of the given backend,
// released at test end.
func pool(t *testing.T, mk func(p int) Transport, p int) *Pool {
	return NewPool(p, WithTransport(closeLater(t, mk(p))), WithTimeout(10*time.Second))
}

// TestPoolReuse: one Pool serves many runs, each starting from a clean
// protocol state with per-run counters.
func TestPoolReuse(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p, runs = 4, 5
		pl := pool(t, mk, p)
		defer pl.Close()
		for run := 0; run < runs; run++ {
			var sum atomic.Int64
			err := pl.Run(context.Background(), func(c *Comm) error {
				next := (c.Rank() + 1) % p
				if err := c.Send(next, 7, c.Rank()+run, 8); err != nil {
					return err
				}
				m, err := c.Recv((c.Rank()-1+p)%p, 7)
				if err != nil {
					return err
				}
				sum.Add(int64(m.Payload.(int)))
				return c.Barrier()
			})
			if err != nil {
				t.Fatalf("run %d: %v", run, err)
			}
			want := int64(p*(p-1)/2 + p*run)
			if sum.Load() != want {
				t.Fatalf("run %d: sum = %d, want %d", run, sum.Load(), want)
			}
			if _, ok := pl.Transport().(*SimTransport); ok {
				total := pl.Transport().TotalCounters()
				if total.MsgsSent != p {
					t.Fatalf("run %d: MsgsSent = %d, want %d (counters must reset per run)", run, total.MsgsSent, p)
				}
			}
		}
	})
}

// TestPoolRecoversAfterPanic: a rank panic aborts the run (peers unblock
// with ErrAborted) and the next run on the same Pool succeeds.
func TestPoolRecoversAfterPanic(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p = 3
		pl := pool(t, mk, p)
		defer pl.Close()
		err := pl.Run(context.Background(), func(c *Comm) error {
			if c.Rank() == 1 {
				panic("boom")
			}
			_, err := c.Recv(1, 9) // never sent: unblocked by the abort
			return err
		})
		if err == nil || !strings.Contains(err.Error(), "rank 1 panicked") {
			t.Fatalf("aborted run error = %v, want the rank-1 panic", err)
		}
		if err := pl.Run(context.Background(), func(c *Comm) error { return c.Barrier() }); err != nil {
			t.Fatalf("run after panic: %v", err)
		}
	})
}

// TestPoolContextCancel: cancelling the context mid-run unblocks every
// rank with an error satisfying errors.Is(err, context.Canceled), and
// the Pool remains usable.
func TestPoolContextCancel(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p = 4
		pl := pool(t, mk, p)
		defer pl.Close()
		ctx, cancel := context.WithCancel(context.Background())
		rankErrs := make([]error, p)
		err := pl.Run(ctx, func(c *Comm) error {
			if c.Rank() == 0 {
				time.Sleep(5 * time.Millisecond) // let peers park in Recv
				cancel()
			}
			_, err := c.Recv(AnySource, 11) // nothing is ever sent
			rankErrs[c.Rank()] = err
			return err
		})
		if err == nil {
			t.Fatal("cancelled run returned nil")
		}
		for r, re := range rankErrs {
			if !errors.Is(re, context.Canceled) {
				t.Fatalf("rank %d error = %v, want context.Canceled", r, re)
			}
			if !errors.Is(re, ErrAborted) {
				t.Fatalf("rank %d error = %v, want ErrAborted too", r, re)
			}
		}
		if err := pl.Run(context.Background(), func(c *Comm) error { return c.Barrier() }); err != nil {
			t.Fatalf("run after cancel: %v", err)
		}
	})
}

// TestPoolPreCancelled: an already-cancelled context fails fast without
// dispatching any rank work.
func TestPoolPreCancelled(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := pl.Run(ctx, func(c *Comm) error { ran.Store(true); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("rank function ran despite pre-cancelled context")
	}
}

// TestPoolDeadline: a context deadline behaves like cancellation, with
// errors.Is(err, context.DeadlineExceeded) on blocked ranks.
func TestPoolDeadline(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := pl.Run(ctx, func(c *Comm) error {
		_, err := c.Recv(AnySource, 3)
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPoolClose: Close joins the workers (no goroutine leak) and
// subsequent runs fail with ErrPoolClosed.
func TestPoolClose(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := NewPool(8)
	if err := pl.Run(context.Background(), func(c *Comm) error { return c.Barrier() }); err != nil {
		t.Fatal(err)
	}
	pl.Close()
	pl.Close() // idempotent
	if err := pl.Run(context.Background(), func(c *Comm) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("run after close = %v, want ErrPoolClosed", err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the given baseline — the world-join assertion used instead of goleak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTransportReset is the Reset leg of the conformance suite: after
// queued traffic and an abort, Reset restores a usable transport with
// empty queues, a clean latch, a rearmed barrier and zeroed counters.
func TestTransportReset(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p = 3
		tr := mk(p)
		// Leave stale traffic queued and latch an abort.
		if err := tr.Send(0, 1, 5, "stale", 16); err != nil {
			t.Fatal(err)
		}
		tr.Abort(fmt.Errorf("synthetic"))
		if tr.Err() == nil {
			t.Fatal("abort did not latch")
		}
		tr.Reset()
		if err := tr.Err(); err != nil {
			t.Fatalf("Err after Reset = %v", err)
		}
		if _, ok, err := tr.TryRecv(1, 0, 5); err != nil || ok {
			t.Fatalf("stale message survived Reset (ok=%v, err=%v)", ok, err)
		}
		if got := tr.TotalCounters(); got != (Counters{}) {
			t.Fatalf("counters survived Reset: %+v", got)
		}
		// The barrier must work again.
		w := NewWorld(p, WithTransport(tr), WithTimeout(5*time.Second))
		if err := w.Run(func(c *Comm) error { return c.Barrier() }); err != nil {
			t.Fatalf("barrier after Reset: %v", err)
		}
	})
}
