package collective

import (
	"fmt"

	"hssort/internal/comm"
)

// bruckItem is one origin→destination payload in flight through the
// Bruck exchange.
type bruckItem[T any] struct {
	origin int32
	dst    int32
	data   []T
}

// AllToAllvBruck performs the same personalized exchange as AllToAllv
// using the Bruck (store-and-forward) algorithm: ceil(log2 p) rounds in
// which rank r sends one combined message to (r + 2^k) mod p carrying
// every buffered item whose remaining hop distance has bit k set.
//
// Per rank it sends log p messages instead of p-1, at the price of each
// key traveling up to log p hops (≈ S·log p/2 total volume instead of
// S). That trade is exactly the §6.3 future-work remedy for all-to-all
// congestion when per-destination messages are small and p is large —
// the histogram/sample traffic regime, not the bulk data exchange.
// BenchmarkAblationBruck quantifies the crossover.
func AllToAllvBruck[T any](e comm.Endpoint, tag comm.Tag, parts [][]T) ([][]T, error) {
	comm.RegisterWire[[]bruckItem[T]]() // wire transports decode by registered type
	p := e.Size()
	me := e.Rank()
	if len(parts) != p {
		return nil, fmt.Errorf("collective: bruck alltoallv needs %d parts, got %d", p, len(parts))
	}
	out := make([][]T, p)
	out[me] = parts[me]
	if p == 1 {
		return out, nil
	}
	var buffer []bruckItem[T]
	for dst, data := range parts {
		if dst == me || len(data) == 0 {
			continue
		}
		buffer = append(buffer, bruckItem[T]{origin: int32(me), dst: int32(dst), data: data})
	}
	for k := 1; k < p; k <<= 1 {
		var keep, send []bruckItem[T]
		var bytes int64
		for _, it := range buffer {
			distance := (int(it.dst) - me + p) % p
			if distance&k != 0 {
				send = append(send, it)
				bytes += comm.SliceBytes(it.data) + 8
			} else {
				keep = append(keep, it)
			}
		}
		dst := (me + k) % p
		src := (me - k + p) % p
		if err := e.Send(dst, tag, send, bytes); err != nil {
			return nil, fmt.Errorf("collective: bruck send: %w", err)
		}
		m, err := e.Recv(src, tag)
		if err != nil {
			return nil, fmt.Errorf("collective: bruck recv: %w", err)
		}
		recv, ok := m.Payload.([]bruckItem[T])
		if !ok && m.Payload != nil {
			return nil, fmt.Errorf("collective: bruck payload type %T", m.Payload)
		}
		buffer = append(keep, recv...)
	}
	for _, it := range buffer {
		if int(it.dst) != me {
			return nil, fmt.Errorf("collective: bruck item for %d stranded at %d", it.dst, me)
		}
		// Multiple forwarding paths never split an item, so each
		// (origin → me) pair appears at most once.
		out[it.origin] = it.data
	}
	return out, nil
}
