// Package rankoracle implements the §3.4 distributed approximate rank
// oracle: every processor maintains a representative random-block sample
// of its sorted local data, and global rank queries are answered by
// reducing sample-estimated local ranks instead of touching the full
// input. Theorem 3.4.1: with per-processor sample size s = √(2p ln p)/ε,
// every answer is within Nε/p of the true rank w.h.p. The paper offers
// this both as an accelerator for HSS histogramming and as a primitive of
// independent interest for repeated rank/quantile queries in parallel
// data systems.
package rankoracle
