package merge

import "hssort/internal/codes"

// CodeTree is the code-plane counterpart of LoserTree: a tournament tree
// over k sorted runs whose order is carried by parallel uint64 code
// slices, so every match in the tree is a raw integer compare — no
// comparator closure, no dynamic call — while arbitrary element payloads
// ride along and are what the tree emits. On the pure code plane the
// element slices simply alias the code slices.
//
// It mirrors LoserTree's full streaming surface (AddRun / Append /
// CloseRun / NextReady / Next / Consumed / Exhausted) with the same
// semantics: ties resolve in favor of the lower run index, open runs
// with drained buffers block NextReady, and fully drained chunks drop
// out of the tree's reach. The steady-state emit path allocates nothing:
// the tournament replay works in the preallocated tree array, and
// rebuild scratch is cached on the tree.
type CodeTree[E any] struct {
	codes [][]codes.Code
	elems [][]E
	pos   []int // next unread index per run (current-chunk-relative)
	// pendC/pendE queue refill chunks per run, consumed front to back,
	// under LoserTree's invariant: a drained run has no pending chunks.
	pendC [][][]codes.Code
	pendE [][][]E
	// consumed counts keys ever emitted per run.
	consumed []int64
	// open marks runs that may still receive Append; starved counts open
	// runs with drained buffers (they block NextReady).
	open    []bool
	starved int
	// tree[1:] holds losers per internal node; tree[0] the winner.
	tree    []int
	winners []int // rebuild scratch, cached to keep build allocation-free
	k       int   // leaf count (power-of-two padded)
	n       int   // real run count
	dirty   bool  // a head changed outside Next: rebuild before next emit
	// tie, when non-nil, resolves equal-code matches with the element
	// comparator before the run-index tie-break — the prefix plane's
	// collision repair. Nil on the bijective and record planes, where
	// equal codes imply cmp-equal elements.
	tie func(E, E) int
}

// NewCodeTree creates an empty code-keyed tree that admits runs via
// AddRun.
func NewCodeTree[E any]() *CodeTree[E] {
	return &CodeTree[E]{k: 2, tree: make([]int, 2), dirty: true}
}

// NewCodeTreeTie creates a CodeTree for the prefix plane: matches whose
// codes collide are resolved by tie (then by run index). The runs must
// be fully tie-ordered themselves (code-sorted, comparator-sorted
// within equal-code spans) for the merge to emit total comparator
// order.
func NewCodeTreeTie[E any](tie func(E, E) int) *CodeTree[E] {
	t := NewCodeTree[E]()
	t.tie = tie
	return t
}

// Reset empties the tree for reuse, dropping all references to run data
// but keeping the tournament arrays allocated (see LoserTree.Reset).
func (t *CodeTree[E]) Reset() {
	clear(t.codes)
	clear(t.elems)
	clear(t.pendC)
	clear(t.pendE)
	t.codes = t.codes[:0]
	t.elems = t.elems[:0]
	t.pos = t.pos[:0]
	t.pendC = t.pendC[:0]
	t.pendE = t.pendE[:0]
	t.consumed = t.consumed[:0]
	t.open = t.open[:0]
	t.n = 0
	t.starved = 0
	t.dirty = true
}

// AddRun registers a new, initially open run holding the given sorted
// codes and their parallel elements (nil for an empty stream) and
// returns its index. len(cs) must equal len(elems).
func (t *CodeTree[E]) AddRun(cs []codes.Code, elems []E) int {
	if len(cs) != len(elems) {
		panic("merge: CodeTree.AddRun code/element length mismatch")
	}
	i := t.n
	t.codes = append(t.codes, cs)
	t.elems = append(t.elems, elems)
	t.pos = append(t.pos, 0)
	t.pendC = append(t.pendC, nil)
	t.pendE = append(t.pendE, nil)
	t.consumed = append(t.consumed, 0)
	t.open = append(t.open, true)
	t.n++
	if len(cs) == 0 {
		t.starved++
	}
	for t.k < t.n {
		t.k *= 2
	}
	if len(t.tree) != t.k {
		t.tree = make([]int, t.k)
	}
	t.dirty = true
	return i
}

// Append feeds more keys to open run i as a new chunk. Codes must
// compare >= everything previously appended to that run; the tree takes
// ownership of both slices.
func (t *CodeTree[E]) Append(i int, cs []codes.Code, elems []E) {
	if !t.open[i] {
		panic("merge: Append to closed run")
	}
	if len(cs) != len(elems) {
		panic("merge: CodeTree.Append code/element length mismatch")
	}
	if len(cs) == 0 {
		return
	}
	if t.pos[i] >= len(t.codes[i]) {
		t.starved--
		t.dirty = true
		t.codes[i] = cs
		t.elems[i] = elems
		t.pos[i] = 0
	} else {
		t.pendC[i] = append(t.pendC[i], cs)
		t.pendE[i] = append(t.pendE[i], elems)
	}
}

// CloseRun seals run i.
func (t *CodeTree[E]) CloseRun(i int) {
	if !t.open[i] {
		return
	}
	t.open[i] = false
	if t.pos[i] >= len(t.codes[i]) {
		t.starved--
	}
}

// Consumed returns the number of keys emitted from run i so far.
func (t *CodeTree[E]) Consumed(i int) int64 { return t.consumed[i] }

// Exhausted reports whether every run is closed and fully emitted.
func (t *CodeTree[E]) Exhausted() bool {
	for i := 0; i < t.n; i++ {
		if t.open[i] || t.pos[i] < len(t.codes[i]) {
			return false
		}
	}
	return true
}

// Rest removes and returns every run's unconsumed elements and their
// parallel codes, one slice pair per run in run-index order — the
// code-plane hand-off to the parallel drain merge (see LoserTree.Rest).
// Every run must be closed; the keys count as consumed and the tree is
// left exhausted.
func (t *CodeTree[E]) Rest() ([][]E, [][]codes.Code) {
	elems := make([][]E, t.n)
	cs := make([][]codes.Code, t.n)
	for i := 0; i < t.n; i++ {
		if t.open[i] {
			panic("merge: Rest with open run")
		}
		tailC := t.codes[i][t.pos[i]:]
		tailE := t.elems[i][t.pos[i]:]
		if len(t.pendC[i]) == 0 {
			cs[i], elems[i] = tailC, tailE
		} else {
			total := len(tailC)
			for _, c := range t.pendC[i] {
				total += len(c)
			}
			bufC := make([]codes.Code, 0, total)
			bufE := make([]E, 0, total)
			bufC = append(bufC, tailC...)
			bufE = append(bufE, tailE...)
			for j := range t.pendC[i] {
				bufC = append(bufC, t.pendC[i][j]...)
				bufE = append(bufE, t.pendE[i][j]...)
			}
			cs[i], elems[i] = bufC, bufE
		}
		t.consumed[i] += int64(len(cs[i]))
		t.codes[i], t.elems[i] = nil, nil
		t.pendC[i], t.pendE[i] = nil, nil
		t.pos[i] = 0
	}
	t.dirty = true
	return elems, cs
}

// NextReady returns the next merged element if emission is safe (no open
// run is drained); distinguish blocked from exhausted with Exhausted.
func (t *CodeTree[E]) NextReady() (e E, ok bool) {
	if t.starved > 0 {
		var zero E
		return zero, false
	}
	return t.Next()
}

// exhausted reports whether run i has no keys left.
func (t *CodeTree[E]) exhausted(i int) bool {
	return i >= t.n || t.pos[i] >= len(t.codes[i])
}

// less reports whether run a's head precedes run b's head: a raw uint64
// compare with run-index tie-break, exhausted runs last.
func (t *CodeTree[E]) less(a, b int) bool {
	ea, eb := t.exhausted(a), t.exhausted(b)
	switch {
	case ea && eb:
		return a < b
	case ea:
		return false
	case eb:
		return true
	}
	ca, cb := t.codes[a][t.pos[a]], t.codes[b][t.pos[b]]
	if ca != cb {
		return ca < cb
	}
	if t.tie != nil {
		if c := t.tie(t.elems[a][t.pos[a]], t.elems[b][t.pos[b]]); c != 0 {
			return c < 0
		}
	}
	return a < b
}

// build replays the initial tournament bottom-up.
func (t *CodeTree[E]) build() {
	if len(t.winners) != 2*t.k {
		t.winners = make([]int, 2*t.k)
	}
	w := t.winners
	for i := 0; i < t.k; i++ {
		w[t.k+i] = i
	}
	for i := t.k - 1; i >= 1; i-- {
		a, b := w[2*i], w[2*i+1]
		if t.less(a, b) {
			w[i] = a
			t.tree[i] = b
		} else {
			w[i] = b
			t.tree[i] = a
		}
	}
	t.tree[0] = w[1]
}

// Next returns the smallest remaining element across all runs, or
// ok=false when every buffer is drained. On a streaming tree prefer
// NextReady.
func (t *CodeTree[E]) Next() (e E, ok bool) {
	if t.dirty {
		t.build()
		t.dirty = false
	}
	w := t.tree[0]
	if t.exhausted(w) {
		var zero E
		return zero, false
	}
	e = t.elems[w][t.pos[w]]
	t.pos[w]++
	t.consumed[w]++
	if t.pos[w] >= len(t.codes[w]) {
		if q := t.pendC[w]; len(q) > 0 {
			t.codes[w] = q[0]
			t.pendC[w] = q[1:]
			t.elems[w] = t.pendE[w][0]
			t.pendE[w] = t.pendE[w][1:]
			t.pos[w] = 0
		} else if t.open[w] {
			t.starved++
		}
	}
	// Replay matches from leaf w up to the root.
	node := (t.k + w) / 2
	winner := w
	for node >= 1 {
		if t.less(t.tree[node], winner) {
			t.tree[node], winner = winner, t.tree[node]
		}
		node /= 2
	}
	t.tree[0] = winner
	return e, true
}

// KWayByCode merges k sorted runs ordered by the given code extractor
// into a single sorted slice, ties resolving in favor of the lower run
// index — KWay's contract, minus the comparator: each run's codes are
// extracted once (zero-copy when the elements already are codes) and the
// merge itself is raw uint64 compares.
func KWayByCode[K any](runs [][]K, code func(K) uint64) []K {
	return KWayByCodeTie(runs, code, nil)
}

// KWayByCodeTie is KWayByCode for the prefix plane: tie, when non-nil,
// resolves equal-code matches with the comparator before the run-index
// tie-break. Each run must itself be tie-ordered (code-sorted,
// comparator-sorted within equal-code spans).
func KWayByCodeTie[K any](runs [][]K, code func(K) uint64, tie func(K, K) int) []K {
	nonEmpty, total, last := 0, 0, -1
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
			last = i
		}
	}
	switch nonEmpty {
	case 0:
		return []K{}
	case 1:
		out := make([]K, total)
		copy(out, runs[last])
		return out
	}
	t := NewCodeTree[K]()
	t.tie = tie
	for _, r := range runs {
		i := t.AddRun(codes.Extract(r, code), r)
		t.CloseRun(i)
	}
	out := make([]K, 0, total)
	for {
		k, ok := t.Next()
		if !ok {
			break
		}
		out = append(out, k)
	}
	return out
}
