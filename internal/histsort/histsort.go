package histsort

import (
	"fmt"
	"slices"
	"time"

	"hssort/internal/codes"
	"hssort/internal/collective"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/histogram"
	"hssort/internal/keycoder"
	"hssort/internal/par"
	"hssort/internal/spill"
)

// Options configures a classic histogram sort. Cmp and Coder are
// required: the coder supplies the key-space arithmetic that probe
// synthesis needs.
type Options[K any] struct {
	// Cmp is the three-way key comparator.
	Cmp func(K, K) int
	// Coder is the order-preserving key <-> uint64 code bijection.
	Coder keycoder.Coder[K]
	// Code, when set, must be an order-preserving uint64 extractor for
	// Cmp; the compute hot paths (local sort, partition cuts, merges)
	// then run on the comparator-free code plane (see core.Options.Code).
	// Unset leaves every phase on the comparator, Coder notwithstanding —
	// the Coder alone only feeds probe synthesis.
	Code func(K) uint64
	// PrefixCode marks Code as a non-injective prefix extractor (see
	// core.Options.PrefixCode). Probe refinement then bisects the code
	// space directly — probes are code points, no Coder is needed (and
	// Coder is ignored) — while the compute phases run code-keyed with a
	// comparator tie-break. Requires Code.
	PrefixCode bool
	// Epsilon is the target load-imbalance threshold. Default 0.05.
	Epsilon float64
	// Buckets is the number of output ranges. Default: world size.
	Buckets int
	// Owner maps buckets to ranks. Default contiguous.
	Owner func(bucket int) int
	// ProbesPerSplitter is how many evenly spaced probes each
	// unfinalized splitter contributes per round (subdividing its code
	// interval into ProbesPerSplitter+1 parts). Default 1 (pure
	// bisection). Larger values trade histogram size for rounds.
	ProbesPerSplitter int
	// MaxRounds caps refinement rounds; the fallback then uses the
	// closest candidates seen. Default 72 (64-bit bisection + slack).
	MaxRounds int
	// ChunkKeys, when positive, selects the streaming chunked exchange
	// (see core.Options.ChunkKeys). 0 = materializing exchange.
	ChunkKeys int
	// Workers is the size of this rank's compute worker pool (see
	// core.Options.Workers). <=1 keeps every kernel serial.
	Workers int
	// Splitters, when non-nil, injects pre-determined splitters and
	// skips probe refinement entirely (see core.Options.Splitters):
	// Buckets-1 keys in non-decreasing cmp order, identical on every
	// rank.
	Splitters []K
	// StaleBound arms the staleness guard for injected Splitters (see
	// core.Options.StaleBound). 0 disables it.
	StaleBound float64
	// Scratch, when non-nil, is this rank's reusable exchange state
	// (see core.Options.Scratch).
	Scratch *exchange.Scratch[K]
	// Spill, when non-nil, is this rank's out-of-core manager (see
	// core.Options.Spill). nil keeps every phase in memory.
	Spill *spill.Manager
	// BaseTag is the start of the tag range this sort uses. Default 3000.
	BaseTag comm.Tag
}

func (o Options[K]) withDefaults(p int) (Options[K], error) {
	if o.Cmp == nil {
		return o, fmt.Errorf("histsort: Options.Cmp is required")
	}
	if o.PrefixCode && o.Code == nil {
		return o, fmt.Errorf("histsort: PrefixCode requires Code")
	}
	if o.Coder == nil && !o.PrefixCode {
		return o, fmt.Errorf("histsort: Options.Coder is required")
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.05
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("histsort: Epsilon %v < 0", o.Epsilon)
	}
	if o.Buckets == 0 {
		o.Buckets = p
	}
	if o.Buckets < 1 {
		return o, fmt.Errorf("histsort: Buckets %d < 1", o.Buckets)
	}
	if o.Owner == nil {
		o.Owner = exchange.ContiguousOwner(o.Buckets, p)
	}
	if o.ProbesPerSplitter < 1 {
		o.ProbesPerSplitter = 1
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 72
	}
	if o.ChunkKeys < 0 {
		return o, fmt.Errorf("histsort: ChunkKeys %d < 0", o.ChunkKeys)
	}
	if o.StaleBound < 0 {
		return o, fmt.Errorf("histsort: StaleBound %v < 0", o.StaleBound)
	}
	if o.Splitters != nil && len(o.Splitters) != o.Buckets-1 {
		return o, fmt.Errorf("histsort: %d injected splitters for %d buckets (want %d)", len(o.Splitters), o.Buckets, o.Buckets-1)
	}
	if o.BaseTag == 0 {
		o.BaseTag = 3000
	}
	return o, nil
}

// Tag offsets within BaseTag.
const (
	tagCount    = 0 // N all-reduce (+1)
	tagProbes   = 2 // probe broadcast
	tagRanks    = 3 // histogram reduction
	tagSplit    = 4 // final splitter broadcast
	tagExchange = 5 // bucket exchange
	tagStats    = 6 // stats all-reduce (+1)
	tagInfo     = 8 // rounds broadcast
	tagStale    = 9 // staleness-guard bucket-load all-reduce
)

// splitterSearch is the root's bisection state for one splitter.
type splitterSearch struct {
	lo, hi uint64 // inclusive code interval still containing the splitter
	done   bool
}

// Sort runs classic histogram sort on this rank's keys and returns its
// globally sorted partition. Every rank must call Sort with the same
// Options. The input slice is consumed.
func Sort[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, core.Stats{}, err
	}
	if opt.PrefixCode {
		return sortPrefix(c, local, opt)
	}
	base := opt.BaseTag
	pool := par.New(opt.Workers)
	var stats core.Stats
	stats.Buckets = opt.Buckets
	stats.Workers = pool.Workers()

	t0 := time.Now()
	localCodes, err := spill.LocalSort(opt.Spill, local, opt.Code, opt.Cmp, pool)
	if err != nil {
		return nil, stats, err
	}
	localSort := time.Since(t0)

	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	n := nVec[0]
	stats.N = n

	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	splitters := opt.Splitters
	if splitters != nil {
		exchange.ValidateSplitters(splitters, opt.Cmp)
	} else {
		var rounds int
		var totalProbes int64
		splitters, rounds, totalProbes, err = DetermineSplitters(c, local, n, opt)
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = rounds
		stats.TotalSample = totalProbes
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	partition := func(sp []K) [][]K {
		if localCodes != nil {
			return exchange.PartitionByCodePar(local, localCodes, codes.Extract(sp, opt.Code), pool)
		}
		return exchange.PartitionPar(local, sp, opt.Cmp, pool)
	}
	t2 := time.Now()
	runs := partition(splitters)
	partitionTime := time.Since(t2)
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			splitters, rounds, totalProbes, err := DetermineSplitters(c, local, n, opt)
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = rounds
			stats.TotalSample = totalProbes
			runs = partition(splitters)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}
	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Spill: opt.Spill}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := core.FinishStats(c, base+tagStats, &stats, core.PhaseTimes{
		SplitterBytes: splitterBytes,
		ExchangeBytes: exchangeBytes,
		LocalSort:     localSort,
		Splitter:      splitterTime,
		Exchange:      partitionTime + exchangeTime,
		Merge:         mergeTime,
		Overlap:       sst.Overlap,
		PeakInFlight:  sst.PeakInFlight,
		OutCount:      len(out),
		ParSpawned:    pc.Spawned,
		ParTasks:      pc.Tasks,
		Spill:         opt.Spill.TakeStats(),
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// sortPrefix is the prefix plane (Options.PrefixCode): the local sort
// radix-sorts the code decoration and repairs equal-code spans with the
// comparator, and probe refinement bisects the code space directly —
// every probe is a code point, so the protocol needs no key-space
// Decode and the probe traffic stays fixed-size regardless of key
// length. codes.Identity is the degenerate Coder that makes the root's
// bisection arithmetic run on the codes themselves. Partition cuts run
// on codes and the merges tie-break equal codes with the comparator
// (see core.Options.PrefixCode). opt must already have defaults
// applied.
func sortPrefix[K any](c *comm.Comm, local []K, opt Options[K]) ([]K, core.Stats, error) {
	base := opt.BaseTag
	pool := par.New(opt.Workers)
	var stats core.Stats
	stats.Buckets = opt.Buckets
	stats.Workers = pool.Workers()

	t0 := time.Now()
	localCodes := codes.SortByCodePar(local, opt.Code, pool)
	collisions := codes.TieBreakPar(localCodes, local, opt.Cmp, pool)
	localSort := time.Since(t0)

	nVec, err := collective.AllReduce(c, base+tagCount, []int64{int64(len(local))}, collective.SumInt64)
	if err != nil {
		return nil, stats, err
	}
	n := nVec[0]
	stats.N = n

	bytes0 := c.Counters().BytesSent
	t1 := time.Now()
	var spCodes []codes.Code
	if opt.Splitters != nil {
		spCodes = codes.Extract(opt.Splitters, opt.Code)
		exchange.ValidateSplitters(spCodes, codes.Compare)
	} else {
		var rounds int
		var totalProbes int64
		spCodes, rounds, totalProbes, err = DetermineSplitters(c, localCodes, n, prefixDetOptions(opt))
		if err != nil {
			return nil, stats, err
		}
		stats.Rounds = rounds
		stats.TotalSample = totalProbes
	}
	splitterTime := time.Since(t1)
	splitterBytes := c.Counters().BytesSent - bytes0

	t2 := time.Now()
	runs := exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
	partitionTime := time.Since(t2)
	if opt.Splitters != nil && opt.StaleBound > 0 {
		t3 := time.Now()
		imb, _, err := exchange.RunsImbalance(c, base+tagStale, runs)
		if err != nil {
			return nil, stats, err
		}
		if imb > opt.StaleBound {
			stats.Replanned = true
			var rounds int
			var totalProbes int64
			spCodes, rounds, totalProbes, err = DetermineSplitters(c, localCodes, n, prefixDetOptions(opt))
			if err != nil {
				return nil, stats, err
			}
			stats.Rounds = rounds
			stats.TotalSample = totalProbes
			runs = exchange.PartitionByCodePar(local, localCodes, spCodes, pool)
		}
		splitterTime += time.Since(t3)
		splitterBytes = c.Counters().BytesSent - bytes0
	}
	bytes1 := c.Counters().BytesSent
	out, exchangeTime, mergeTime, sst, err := exchange.ExchangeMerge(
		c, base+tagExchange, runs, opt.Owner, opt.Cmp, opt.Code,
		exchange.StreamOptions{ChunkKeys: opt.ChunkKeys, Pool: pool, Tie: true}, opt.Scratch)
	if err != nil {
		return nil, stats, err
	}
	exchangeBytes := c.Counters().BytesSent - bytes1
	stats.LocalCount = len(out)

	pc := pool.Counters()
	if err := core.FinishStats(c, base+tagStats, &stats, core.PhaseTimes{
		SplitterBytes:    splitterBytes,
		ExchangeBytes:    exchangeBytes,
		LocalSort:        localSort,
		Splitter:         splitterTime,
		Exchange:         partitionTime + exchangeTime,
		Merge:            mergeTime,
		Overlap:          sst.Overlap,
		PeakInFlight:     sst.PeakInFlight,
		OutCount:         len(out),
		ParSpawned:       pc.Spawned,
		ParTasks:         pc.Tasks,
		PrefixCollisions: collisions,
	}); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// prefixDetOptions projects prefix-plane options onto code space for
// probe refinement: the root bisects code intervals whose probes ARE the
// codes (codes.Identity), and every rank answers rank queries over its
// sorted code decoration under raw integer comparison.
func prefixDetOptions[K any](o Options[K]) Options[codes.Code] {
	return Options[codes.Code]{
		Cmp:               codes.Compare,
		Coder:             codes.Identity{},
		Code:              codes.ExtractCode,
		Epsilon:           o.Epsilon,
		Buckets:           o.Buckets,
		ProbesPerSplitter: o.ProbesPerSplitter,
		MaxRounds:         o.MaxRounds,
		BaseTag:           o.BaseTag,
	}
}

// DetermineSplitters runs the probe-refinement loop of §2.3 over
// locally sorted keys. It returns the splitters on every rank plus the
// round count and total probe volume. Exported so splitter plans
// (hssort.Sorter.Plan) can run probe refinement alone; defaults are
// applied internally (idempotent).
func DetermineSplitters[K any](c *comm.Comm, local []K, n int64, opt Options[K]) ([]K, int, int64, error) {
	opt, err := opt.withDefaults(c.Size())
	if err != nil {
		return nil, 0, 0, err
	}
	base := opt.BaseTag
	root := 0
	me := c.Rank()
	if opt.Buckets == 1 || n == 0 {
		return []K{}, 0, 0, nil
	}

	var tracker *histogram.Tracker[K]
	var searches []splitterSearch
	if me == root {
		tracker = histogram.NewTracker[K](n, opt.Buckets, opt.Epsilon, opt.Cmp)
		searches = make([]splitterSearch, opt.Buckets-1)
		for i := range searches {
			searches[i] = splitterSearch{lo: 0, hi: ^uint64(0)}
		}
	}

	rounds := 0
	var totalProbes int64
	for {
		// Root synthesizes this round's probes: ProbesPerSplitter
		// evenly spaced codes inside each live interval. An empty probe
		// set signals completion.
		var probes []K
		if me == root {
			probes = synthesizeProbes(searches, tracker, opt)
		}
		probes, err := collective.Bcast(c, root, base+tagProbes, probes)
		if err != nil {
			return nil, rounds, totalProbes, err
		}
		if len(probes) == 0 {
			break
		}
		rounds++
		totalProbes += int64(len(probes))
		ranks, err := collective.Reduce(c, root, base+tagRanks,
			histogram.LocalRanks(local, probes, opt.Cmp), collective.SumInt64)
		if err != nil {
			return nil, rounds, totalProbes, err
		}
		if me == root {
			tracker.Update(probes, ranks)
			narrow(searches, tracker, probes, ranks, opt)
			if rounds >= opt.MaxRounds {
				for i := range searches {
					searches[i].done = true
				}
			}
		}
	}

	var splitters []K
	if me == root {
		sp, ok := tracker.Splitters()
		if !ok {
			return nil, rounds, totalProbes, fmt.Errorf("histsort: no candidates after %d rounds", rounds)
		}
		slices.SortFunc(sp, opt.Cmp)
		splitters = sp
	}
	splitters, err = collective.Bcast(c, root, base+tagSplit, splitters)
	if err != nil {
		return nil, rounds, totalProbes, err
	}
	rv, err := collective.Bcast(c, root, base+tagInfo, []int64{int64(rounds), totalProbes})
	if err != nil {
		return nil, rounds, totalProbes, err
	}
	// The one-time validation that lets exchange.Partition skip its
	// per-call O(B) re-check.
	exchange.ValidateSplitters(splitters, opt.Cmp)
	return splitters, int(rv[0]), rv[1], nil
}

// synthesizeProbes emits the next round's probe keys, or nil when every
// splitter search has converged.
func synthesizeProbes[K any](searches []splitterSearch, tracker *histogram.Tracker[K], opt Options[K]) []K {
	var codes []uint64
	for i := range searches {
		s := &searches[i]
		if s.done || tracker.Finalized(i) {
			continue
		}
		span := s.hi - s.lo
		parts := uint64(opt.ProbesPerSplitter + 1)
		if span == 0 {
			// Code space exhausted (duplicate-heavy data): accept the
			// candidate.
			s.done = true
			continue
		}
		for j := uint64(1); j <= uint64(opt.ProbesPerSplitter); j++ {
			step := span / parts * j
			if step == 0 {
				step = j // degenerate tiny interval: distinct nudges
			}
			code := s.lo + step
			if code > s.hi {
				code = s.hi
			}
			codes = append(codes, code)
		}
	}
	if len(codes) == 0 {
		return nil
	}
	slices.Sort(codes)
	codes = slices.Compact(codes)
	probes := make([]K, len(codes))
	for i, cd := range codes {
		probes[i] = opt.Coder.Decode(cd)
	}
	// Decoding can introduce comparator-level duplicates; compact again.
	probes = slices.CompactFunc(probes, func(a, b K) bool { return opt.Cmp(a, b) == 0 })
	return probes
}

// narrow shrinks each splitter's code interval using the round's global
// ranks, the key-space analogue of the tracker's rank bounds.
func narrow[K any](searches []splitterSearch, tracker *histogram.Tracker[K], probes []K, ranks []int64, opt Options[K]) {
	for i := range searches {
		s := &searches[i]
		if s.done || tracker.Finalized(i) {
			if tracker.Finalized(i) {
				s.done = true
			}
			continue
		}
		target := tracker.Target(i)
		for j, q := range probes {
			code := opt.Coder.Encode(q)
			if code < s.lo || code > s.hi {
				continue
			}
			if ranks[j] < target {
				if code+1 > s.lo {
					s.lo = code + 1
				}
			} else if ranks[j] > target {
				if code == 0 {
					s.done = true
					break
				}
				if code-1 < s.hi {
					s.hi = code - 1
				}
			}
		}
		if s.lo > s.hi {
			s.done = true
		}
	}
}
