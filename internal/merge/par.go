package merge

// The merge-tree-per-core plane: split k sorted runs at sub-splitters
// into worker-count contiguous key ranges, merge each range with the
// serial tournament trees on its own core, and concatenate. Sub-splitter
// cuts are lower bounds, so every occurrence of a code value lands in
// exactly one range; within a range every run keeps its index, so the
// run-index tie-break plays out exactly as in the global merge — the
// concatenated output is byte-identical to serial KWay / KWayByCode,
// payload order on the decorated plane included. That identity is what
// the worker-sweep equivalence tests at the repository root pin.
//
// Sub-splitters are picked with the strided-sample histogram refinement
// idiom (cf. brotli's block splitter: seed codes from strided samples,
// histogram the data against them, refine): take strided samples from
// every run in proportion to its length, histogram the deduplicated
// sample set against the runs by exact global rank, then pick for each
// target quantile the sample whose rank lands closest.

import (
	"slices"

	"hssort/internal/codes"
	"hssort/internal/par"
)

// parMergeCutoff is the total key count below which the parallel merges
// hand straight to the serial trees: splitting and forking cost more
// than they save on small inputs.
const parMergeCutoff = 1 << 14

// splitOversample is how many strided samples the sub-splitter picker
// draws per requested part.
const splitOversample = 32

// SplitRuns picks parts-1 sub-splitter codes over the sorted code runs
// and returns, per run, the parts+1 cut offsets of the induced ranges:
// cuts[r][p] to cuts[r][p+1] is run r's slice of part p. Cuts are
// non-decreasing and cover each run exactly, and every cut is the lower
// bound of its splitter, so all occurrences of a code value fall in one
// part — the property that makes per-part merges concatenate into the
// serial merge order. Duplicate-heavy input degrades balance, never
// correctness: a value that outweighs a whole part still cannot be
// split.
func SplitRuns(runs [][]codes.Code, parts int) [][]int {
	return splitRunsFunc(runs, parts, codes.Compare)
}

// splitRunsFunc is SplitRuns for any key type under a comparator.
func splitRunsFunc[K any](runs [][]K, parts int, cmp func(K, K) int) [][]int {
	if parts < 1 {
		parts = 1
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	cuts := make([][]int, len(runs))
	if parts == 1 || total == 0 {
		for r := range runs {
			c := make([]int, parts+1)
			for p := 1; p <= parts; p++ {
				c[p] = len(runs[r])
			}
			cuts[r] = c
		}
		return cuts
	}
	splitters := subSplitters(runs, total, parts, cmp)
	for r, run := range runs {
		c := make([]int, parts+1)
		prev := 0
		for p, s := range splitters {
			prev += lowerBound(run[prev:], s, cmp)
			c[p+1] = prev
		}
		c[parts] = len(run)
		cuts[r] = c
	}
	return cuts
}

// subSplitters picks parts-1 non-decreasing splitter keys by strided
// sampling plus exact-rank refinement.
func subSplitters[K any](runs [][]K, total, parts int, cmp func(K, K) int) []K {
	want := parts * splitOversample
	var samples []K
	for _, run := range runs {
		if len(run) == 0 {
			continue
		}
		cnt := max(1, want*len(run)/total)
		cnt = min(cnt, len(run))
		for i := 0; i < cnt; i++ {
			samples = append(samples, run[(2*i+1)*len(run)/(2*cnt)])
		}
	}
	out := make([]K, parts-1)
	if len(samples) == 0 {
		return out
	}
	slices.SortFunc(samples, cmp)
	samples = slices.CompactFunc(samples, func(a, b K) bool { return cmp(a, b) == 0 })
	// Histogram the sample set against the runs: ranks[i] is sample i's
	// exact global rank (keys strictly below it across all runs).
	ranks := make([]int, len(samples))
	for _, run := range runs {
		prev := 0
		for i, s := range samples {
			prev += lowerBound(run[prev:], s, cmp)
			ranks[i] += prev
		}
	}
	// Refine: for each target quantile take the sample whose exact rank
	// lands closest. The pointer only advances, so splitters come out
	// non-decreasing.
	j := 0
	for p := 1; p < parts; p++ {
		target := p * total / parts
		for j+1 < len(samples) && absDiff(ranks[j+1], target) <= absDiff(ranks[j], target) {
			j++
		}
		out[p-1] = samples[j]
	}
	return out
}

func absDiff(a, b int) int {
	if a < b {
		return b - a
	}
	return a - b
}

// lowerBound returns the first index in the sorted run whose key is
// >= q.
func lowerBound[K any](run []K, q K, cmp func(K, K) int) int {
	pos, n := 0, len(run)
	for n > 0 {
		half := n >> 1
		if cmp(run[pos+half], q) < 0 {
			pos += half + 1
			n -= half + 1
		} else {
			n = half
		}
	}
	return pos
}

// ParMerge appends the k-way merge of the sorted runs to dst, fanning
// worker-count sub-ranges over the pool. Output is byte-identical to
// append(dst, KWay(runs, cmp)...) for any worker count.
func ParMerge[K any](dst []K, runs [][]K, cmp func(K, K) int, p *par.Pool) []K {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	parts := p.Workers()
	if total < parMergeCutoff {
		parts = 1
	}
	base := len(dst)
	dst = slices.Grow(dst, total)[:base+total]
	if parts == 1 {
		kwayInto(dst[base:], runs, cmp)
		return dst
	}
	cuts := splitRunsFunc(runs, parts, cmp)
	offs := partOffsets(cuts, parts)
	p.Do(parts, func(pt int) {
		sub := make([][]K, len(runs))
		for r, run := range runs {
			sub[r] = run[cuts[r][pt]:cuts[r][pt+1]]
		}
		kwayInto(dst[base+offs[pt]:base+offs[pt+1]], sub, cmp)
	})
	return dst
}

// ParMergeCoded appends the k-way merge of element runs ordered by their
// parallel code runs to dst — the pre-extracted code-plane ParMerge the
// streaming drain feeds from Rest. Output is byte-identical to the
// serial CodeTree merge for any worker count.
func ParMergeCoded[E any](dst []E, elemRuns [][]E, codeRuns [][]codes.Code, p *par.Pool) []E {
	return ParMergeCodedTie(dst, elemRuns, codeRuns, nil, p)
}

// ParMergeCodedTie is ParMergeCoded for the prefix plane: tie, when
// non-nil, resolves equal-code matches with the comparator. The
// sub-splitter cuts are lower bounds on codes, so an equal-code group
// never splits across parts and the per-part tie merges concatenate
// into the serial tie-merge order.
func ParMergeCodedTie[E any](dst []E, elemRuns [][]E, codeRuns [][]codes.Code, tie func(E, E) int, p *par.Pool) []E {
	total := 0
	for _, r := range codeRuns {
		total += len(r)
	}
	parts := p.Workers()
	if total < parMergeCutoff {
		parts = 1
	}
	base := len(dst)
	dst = slices.Grow(dst, total)[:base+total]
	if parts == 1 {
		kwayCodedInto(dst[base:], elemRuns, codeRuns, tie)
		return dst
	}
	cuts := SplitRuns(codeRuns, parts)
	offs := partOffsets(cuts, parts)
	p.Do(parts, func(pt int) {
		subE := make([][]E, len(elemRuns))
		subC := make([][]codes.Code, len(codeRuns))
		for r := range codeRuns {
			subC[r] = codeRuns[r][cuts[r][pt]:cuts[r][pt+1]]
			subE[r] = elemRuns[r][cuts[r][pt]:cuts[r][pt+1]]
		}
		kwayCodedInto(dst[base+offs[pt]:base+offs[pt+1]], subE, subC, tie)
	})
	return dst
}

// ParMergeByCode appends the k-way merge of the runs ordered by the code
// extractor to dst — KWayByCode fanned over the pool, extraction
// included. Output is byte-identical to the serial merge for any worker
// count.
func ParMergeByCode[K any](dst []K, runs [][]K, code func(K) uint64, p *par.Pool) []K {
	return ParMergeByCodeTie(dst, runs, code, nil, p)
}

// ParMergeByCodeTie is ParMergeByCode for the prefix plane (see
// ParMergeCodedTie).
func ParMergeByCodeTie[K any](dst []K, runs [][]K, code func(K) uint64, tie func(K, K) int, p *par.Pool) []K {
	codeRuns := make([][]codes.Code, len(runs))
	p.Do(len(runs), func(r int) {
		codeRuns[r] = codes.Extract(runs[r], code)
	})
	return ParMergeCodedTie(dst, runs, codeRuns, tie, p)
}

// partOffsets sums per-part sizes across runs into part start offsets.
func partOffsets(cuts [][]int, parts int) []int {
	offs := make([]int, parts+1)
	for pt := 0; pt < parts; pt++ {
		size := 0
		for r := range cuts {
			size += cuts[r][pt+1] - cuts[r][pt]
		}
		offs[pt+1] = offs[pt] + size
	}
	return offs
}

// kwayInto merges the sorted runs into out, which must have exactly the
// runs' total length — KWay writing into caller storage.
func kwayInto[K any](out []K, runs [][]K, cmp func(K, K) int) {
	nonEmpty, last := 0, -1
	for i, r := range runs {
		if len(r) > 0 {
			nonEmpty, last = nonEmpty+1, i
		}
	}
	switch nonEmpty {
	case 0:
		return
	case 1:
		copy(out, runs[last])
		return
	}
	lt := NewLoserTree(runs, cmp)
	for i := range out {
		out[i], _ = lt.Next()
	}
}

// kwayCodedInto merges element runs ordered by their parallel code runs
// into out, which must have exactly the runs' total length. The
// single-run short-circuit is tie-safe: each run is already fully
// tie-ordered.
func kwayCodedInto[E any](out []E, elemRuns [][]E, codeRuns [][]codes.Code, tie func(E, E) int) {
	nonEmpty, last := 0, -1
	for i, r := range codeRuns {
		if len(r) > 0 {
			nonEmpty, last = nonEmpty+1, i
		}
	}
	switch nonEmpty {
	case 0:
		return
	case 1:
		copy(out, elemRuns[last])
		return
	}
	t := NewCodeTree[E]()
	t.tie = tie
	for r := range codeRuns {
		i := t.AddRun(codeRuns[r], elemRuns[r])
		t.CloseRun(i)
	}
	for i := range out {
		out[i], _ = t.Next()
	}
}
