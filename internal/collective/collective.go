package collective

import (
	"fmt"

	"hssort/internal/comm"
)

// rankedPart carries one rank's contribution through a gather tree.
type rankedPart[T any] struct {
	rank int
	data []T
}

// Barrier blocks until every rank of e has entered the barrier. It uses
// the dissemination algorithm: ceil(log2 p) rounds of one send + one recv.
func Barrier(e comm.Endpoint, tag comm.Tag) error {
	p := e.Size()
	me := e.Rank()
	for mask := 1; mask < p; mask <<= 1 {
		dst := (me + mask) % p
		src := (me - mask + p) % p
		if err := comm.SendValue(e, dst, tag, struct{}{}); err != nil {
			return fmt.Errorf("collective: barrier send: %w", err)
		}
		if _, err := e.Recv(src, tag); err != nil {
			return fmt.Errorf("collective: barrier recv: %w", err)
		}
	}
	return nil
}

// Bcast broadcasts root's data slice to all ranks along a binomial tree
// (ceil(log2 p) rounds, each rank sends at most log p messages). Non-root
// callers pass nil and receive the broadcast slice; root receives its own
// slice back. The slice is shared by reference: receivers must not modify
// it.
func Bcast[T any](e comm.Endpoint, root int, tag comm.Tag, data []T) ([]T, error) {
	p := e.Size()
	me := e.Rank()
	rel := (me - root + p) % p

	// Receive from the parent (the rank that differs in our lowest set bit).
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (me - mask + p) % p
			var err error
			data, err = comm.RecvSlice[T](e, src, tag)
			if err != nil {
				return nil, fmt.Errorf("collective: bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// Forward to children below the received mask.
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (me + mask) % p
			if err := comm.SendSlice(e, dst, tag, data); err != nil {
				return nil, fmt.Errorf("collective: bcast send: %w", err)
			}
		}
		mask >>= 1
	}
	return data, nil
}

// BcastValue broadcasts a single value from root to all ranks.
func BcastValue[T any](e comm.Endpoint, root int, tag comm.Tag, v T) (T, error) {
	out, err := Bcast(e, root, tag, []T{v})
	if err != nil {
		var zero T
		return zero, err
	}
	return out[0], nil
}

// Reduce combines equal-length data slices from all ranks at root using
// the elementwise accumulator op(dst, src), along a binomial tree. On
// root it returns the fully reduced vector; on other ranks it returns nil.
// Reduce consumes data as its accumulator: callers must not reuse the
// slice afterwards.
func Reduce[T any](e comm.Endpoint, root int, tag comm.Tag, data []T, op func(dst, src []T)) ([]T, error) {
	p := e.Size()
	me := e.Rank()
	rel := (me - root + p) % p
	acc := data
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			if err := comm.SendSlice(e, dst, tag, acc); err != nil {
				return nil, fmt.Errorf("collective: reduce send: %w", err)
			}
			return nil, nil
		}
		srcRel := rel | mask
		if srcRel < p {
			src := (srcRel + root) % p
			recv, err := comm.RecvSlice[T](e, src, tag)
			if err != nil {
				return nil, fmt.Errorf("collective: reduce recv: %w", err)
			}
			if len(recv) != len(acc) {
				return nil, fmt.Errorf("collective: reduce length mismatch: %d vs %d", len(recv), len(acc))
			}
			op(acc, recv)
		}
	}
	return acc, nil
}

// AllReduce is Reduce to rank 0 followed by Bcast; every rank receives the
// reduced vector.
func AllReduce[T any](e comm.Endpoint, tag comm.Tag, data []T, op func(dst, src []T)) ([]T, error) {
	red, err := Reduce(e, 0, tag, data, op)
	if err != nil {
		return nil, err
	}
	return Bcast(e, 0, tag+1, red)
}

// SumInt64 is the elementwise accumulator for histogram reduction.
func SumInt64(dst, src []int64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Gatherv collects each rank's variable-length slice at root along a
// binomial tree. On root it returns all contributions indexed by rank; on
// other ranks it returns nil. Contributed slices transfer ownership.
func Gatherv[T any](e comm.Endpoint, root int, tag comm.Tag, data []T) ([][]T, error) {
	comm.RegisterWire[[]rankedPart[T]]() // wire transports decode by registered type
	p := e.Size()
	me := e.Rank()
	rel := (me - root + p) % p
	parts := []rankedPart[T]{{rank: me, data: data}}
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (rel - mask + root) % p
			bytes := int64(0)
			for _, pt := range parts {
				bytes += comm.SliceBytes(pt.data)
			}
			if err := e.Send(dst, tag, parts, bytes); err != nil {
				return nil, fmt.Errorf("collective: gatherv send: %w", err)
			}
			return nil, nil
		}
		srcRel := rel | mask
		if srcRel < p {
			src := (srcRel + root) % p
			m, err := e.Recv(src, tag)
			if err != nil {
				return nil, fmt.Errorf("collective: gatherv recv: %w", err)
			}
			recv, ok := m.Payload.([]rankedPart[T])
			if !ok {
				return nil, fmt.Errorf("collective: gatherv payload type %T", m.Payload)
			}
			parts = append(parts, recv...)
		}
	}
	out := make([][]T, p)
	for _, pt := range parts {
		out[pt.rank] = pt.data
	}
	return out, nil
}

// GatherFlat gathers and concatenates all contributions at root in rank
// order. Non-root ranks return nil.
func GatherFlat[T any](e comm.Endpoint, root int, tag comm.Tag, data []T) ([]T, error) {
	parts, err := Gatherv(e, root, tag, data)
	if err != nil || parts == nil {
		return nil, err
	}
	total := 0
	for _, pt := range parts {
		total += len(pt)
	}
	out := make([]T, 0, total)
	for _, pt := range parts {
		out = append(out, pt...)
	}
	return out, nil
}

// Scatterv sends parts[i] from root to rank i (direct sends). Every rank
// returns its own part; root's own part is returned without copying.
// Non-root callers pass nil parts.
func Scatterv[T any](e comm.Endpoint, root int, tag comm.Tag, parts [][]T) ([]T, error) {
	p := e.Size()
	me := e.Rank()
	if me == root {
		if len(parts) != p {
			return nil, fmt.Errorf("collective: scatterv needs %d parts, got %d", p, len(parts))
		}
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			if err := comm.SendSlice(e, dst, tag, parts[dst]); err != nil {
				return nil, fmt.Errorf("collective: scatterv send: %w", err)
			}
		}
		return parts[root], nil
	}
	out, err := comm.RecvSlice[T](e, root, tag)
	if err != nil {
		return nil, fmt.Errorf("collective: scatterv recv: %w", err)
	}
	return out, nil
}

// Allgatherv gathers every rank's slice and distributes the full set to
// all ranks (gather at rank 0, then broadcast of the concatenation plus
// offsets).
func Allgatherv[T any](e comm.Endpoint, tag comm.Tag, data []T) ([][]T, error) {
	parts, err := Gatherv(e, 0, tag, data)
	if err != nil {
		return nil, err
	}
	p := e.Size()
	var flat []T
	lens := make([]int64, p)
	if e.Rank() == 0 {
		total := 0
		for _, pt := range parts {
			total += len(pt)
		}
		flat = make([]T, 0, total)
		for i, pt := range parts {
			lens[i] = int64(len(pt))
			flat = append(flat, pt...)
		}
	}
	lensOut, err := Bcast(e, 0, tag+1, lens)
	if err != nil {
		return nil, err
	}
	flatOut, err := Bcast(e, 0, tag+2, flat)
	if err != nil {
		return nil, err
	}
	out := make([][]T, p)
	off := int64(0)
	for i, n := range lensOut {
		out[i] = flatOut[off : off+n]
		off += n
	}
	return out, nil
}

// AllToAllv performs the personalized all-to-all exchange of the data
// movement phase (§2.2 step 3): rank i receives parts[i] from every rank.
// It returns the p received slices indexed by sender; the caller's own
// contribution parts[me] is passed through without copying. Ownership of
// sent parts transfers to receivers.
func AllToAllv[T any](e comm.Endpoint, tag comm.Tag, parts [][]T) ([][]T, error) {
	p := e.Size()
	me := e.Rank()
	if len(parts) != p {
		return nil, fmt.Errorf("collective: alltoallv needs %d parts, got %d", p, len(parts))
	}
	// Stagger destinations so no rank is hammered by all senders at once.
	for i := 1; i < p; i++ {
		dst := (me + i) % p
		if err := comm.SendSlice(e, dst, tag, parts[dst]); err != nil {
			return nil, fmt.Errorf("collective: alltoallv send: %w", err)
		}
	}
	out := make([][]T, p)
	out[me] = parts[me]
	for i := 1; i < p; i++ {
		src := (me - i + p) % p
		recv, err := comm.RecvSlice[T](e, src, tag)
		if err != nil {
			return nil, fmt.Errorf("collective: alltoallv recv: %w", err)
		}
		out[src] = recv
	}
	return out, nil
}
