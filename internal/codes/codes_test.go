package codes

import (
	"math/rand/v2"
	"slices"
	"sort"
	"testing"

	"hssort/internal/keycoder"
)

// testInputs yields code arrays across the shapes that stress a radix
// sort: sizes straddling the insertion cutoff, duplicates, pre-sorted and
// reversed data, narrow ranges (degenerate top bytes), and full-width
// randoms.
func testInputs(rng *rand.Rand) [][]Code {
	sizes := []int{0, 1, 2, 3, insertionCutoff - 1, insertionCutoff, insertionCutoff + 1, 257, 1000, 4096}
	var out [][]Code
	for _, n := range sizes {
		uniform := make([]Code, n)
		narrow := make([]Code, n)
		dup := make([]Code, n)
		for i := 0; i < n; i++ {
			uniform[i] = Code(rng.Uint64())
			narrow[i] = Code(rng.Uint64N(1000)) // top 6 bytes identical
			dup[i] = Code(rng.Uint64N(4))
		}
		asc := slices.Clone(uniform)
		slices.Sort(asc)
		desc := slices.Clone(asc)
		slices.Reverse(desc)
		out = append(out, uniform, narrow, dup, asc, desc)
	}
	// High-bit patterns: values straddling the sign bit, as Int64/Float64
	// encodings produce.
	out = append(out, []Code{1 << 63, 0, ^Code(0), 1<<63 - 1, 1 << 63, 42})
	return out
}

func TestSortMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, in := range testInputs(rng) {
		want := slices.Clone(in)
		slices.Sort(want)
		got := slices.Clone(in)
		Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("Sort diverged from slices.Sort on %d codes", len(in))
		}
	}
}

func TestSortByCodeTandem(t *testing.T) {
	type rec struct {
		k   uint64
		tag int
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 17, insertionCutoff + 3, 1500} {
		elems := make([]rec, n)
		for i := range elems {
			elems[i] = rec{k: rng.Uint64N(64), tag: i} // heavy duplicates
		}
		want := make(map[uint64][]int)
		for _, e := range elems {
			want[e.k] = append(want[e.k], e.tag)
		}
		cs := SortByCode(elems, func(r rec) uint64 { return r.k })
		if len(cs) != n {
			t.Fatalf("n=%d: %d codes", n, len(cs))
		}
		if !slices.IsSorted(cs) {
			t.Fatalf("n=%d: codes not sorted", n)
		}
		got := make(map[uint64][]int)
		for i, e := range elems {
			if uint64(cs[i]) != e.k {
				t.Fatalf("n=%d: code %d detached from element key %d at %d", n, cs[i], e.k, i)
			}
			if i > 0 && elems[i-1].k > e.k {
				t.Fatalf("n=%d: elements not sorted by key at %d", n, i)
			}
			got[e.k] = append(got[e.k], e.tag)
		}
		// Unstable sort: payloads per key must survive as a multiset.
		for k, tags := range want {
			g := got[k]
			slices.Sort(g)
			slices.Sort(tags)
			if !slices.Equal(g, tags) {
				t.Fatalf("n=%d: payloads for key %d diverged", n, k)
			}
		}
	}
}

func TestSortByCodeIdentityPlane(t *testing.T) {
	cs := []Code{5, 3, 9, 3, 0}
	got := SortByCode(cs, ExtractCode)
	if &got[0] != &cs[0] {
		t.Fatal("identity plane did not sort in place")
	}
	if !slices.IsSorted(cs) {
		t.Fatal("identity plane left codes unsorted")
	}
}

func TestRankMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		cs := make([]Code, n)
		for i := range cs {
			cs[i] = Code(rng.Uint64N(200))
		}
		slices.Sort(cs)
		probes := []Code{0, 1, 99, 100, 199, 200, ^Code(0)}
		for i := 0; i < 50; i++ {
			probes = append(probes, Code(rng.Uint64N(220)))
		}
		for _, q := range probes {
			want := sort.Search(len(cs), func(j int) bool { return cs[j] >= q })
			if got := Rank(cs, q); got != want {
				t.Fatalf("Rank(n=%d, q=%d) = %d, want %d", n, q, got, want)
			}
		}
	}
}

func TestCutsBothModes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	shapes := []struct{ n, b int }{
		{10000, 3}, // binary-search regime
		{100, 500}, // forward-scan regime (B >> n)
		{0, 5},     // empty data
		{1000, 0},  // no splitters
		{256, 256}, // boundary-ish
	}
	for _, sh := range shapes {
		cs := make([]Code, sh.n)
		for i := range cs {
			cs[i] = Code(rng.Uint64N(1 << 20))
		}
		slices.Sort(cs)
		sp := make([]Code, sh.b)
		for i := range sp {
			sp[i] = Code(rng.Uint64N(1 << 20))
		}
		slices.Sort(sp)
		got := Cuts(cs, sp)
		for i, s := range sp {
			want := sort.Search(len(cs), func(j int) bool { return cs[j] >= s })
			if got[i] != want {
				t.Fatalf("n=%d b=%d: cut[%d] = %d, want %d", sh.n, sh.b, i, got[i], want)
			}
		}
	}
}

func TestEncodeDecodeSlices(t *testing.T) {
	keys := []int64{-5, 0, 3, -1 << 62, 1 << 62}
	cs := EncodeSlice[int64](keycoder.Int64{}, keys)
	back := DecodeSlice[int64](keycoder.Int64{}, cs)
	if !slices.Equal(back, keys) {
		t.Fatalf("round trip: %v -> %v", keys, back)
	}
	if !slices.IsSortedFunc(cs, Compare) == slices.IsSorted(keys) {
		t.Fatal("order not preserved")
	}

	// Pure-plane aliasing: encoding/decoding a code slice is zero-copy.
	pure := []Code{3, 1, 2}
	if enc := EncodeSlice[Code](Identity{}, pure); &enc[0] != &pure[0] {
		t.Fatal("EncodeSlice copied a code slice")
	}
	if dec := DecodeSlice[Code](Identity{}, pure); &dec[0] != &pure[0] {
		t.Fatal("DecodeSlice copied a code slice")
	}
	if ext := Extract(pure, ExtractCode); &ext[0] != &pure[0] {
		t.Fatal("Extract copied a code slice")
	}
}

func TestCompare(t *testing.T) {
	if Compare(1, 2) >= 0 || Compare(2, 1) <= 0 || Compare(7, 7) != 0 {
		t.Fatal("Compare is not a three-way order")
	}
}

func BenchmarkCodeLocalSort(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewPCG(9, 10))
	base := make([]Code, n)
	for i := range base {
		base[i] = Code(rng.Uint64())
	}
	b.Run("radix", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]Code, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, base)
			b.StartTimer()
			Sort(buf)
		}
		b.SetBytes(n * 8)
	})
	b.Run("comparator", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]Code, n)
		cmp := Compare
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, base)
			b.StartTimer()
			slices.SortFunc(buf, cmp)
		}
		b.SetBytes(n * 8)
	})
}
