package codes

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestDeltaRoundTrip(t *testing.T) {
	cases := [][]Code{
		nil,
		{0},
		{math.MaxUint64},
		{5, 5, 5, 5},
		{10, 3, math.MaxUint64, 0, 7}, // unsorted: wraparound diffs must still round-trip
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]Code, 10_000)
	for i := range random {
		random[i] = Code(rng.Uint64())
	}
	cases = append(cases, random)
	sorted := slices.Clone(random)
	slices.Sort(sorted)
	cases = append(cases, sorted)
	for i, cs := range cases {
		buf := DeltaAppend(nil, cs)
		got, err := DeltaDecode(nil, buf, len(cs))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !slices.Equal(got, cs) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
	// On a sorted dense run (small gaps) the deltas collapse to a byte
	// or two per code — the case the spill plane optimizes for.
	dense := make([]Code, 10_000)
	acc := Code(0)
	for i := range dense {
		acc += Code(rng.Intn(100))
		dense[i] = acc
	}
	if buf := DeltaAppend(nil, dense); len(buf) >= len(dense)*2 {
		t.Fatalf("dense sorted delta encoding is %d bytes for %d codes", len(buf), len(dense))
	}
}

func TestDeltaDecodeRejectsDamage(t *testing.T) {
	buf := DeltaAppend(nil, []Code{1, 2, 300, 70000})
	if _, err := DeltaDecode(nil, buf[:len(buf)-1], 4); err == nil {
		t.Fatal("truncated stream decoded")
	}
	if _, err := DeltaDecode(nil, append(slices.Clone(buf), 0), 4); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DeltaDecode(nil, buf, 5); err == nil {
		t.Fatal("short stream decoded to too many codes")
	}
}
