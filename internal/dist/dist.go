package dist

import (
	"math"
	"math/rand/v2"
)

// Kind names a key distribution. The first six kinds (Uniform through
// AlmostSorted) are parameter-free given a key range, which lets property
// tests draw a Kind from a small integer.
type Kind int

const (
	// Uniform draws keys independently and uniformly from the key range.
	Uniform Kind = iota
	// Gaussian concentrates keys around the middle of the key range
	// (σ = range/8), the paper's "normal" input.
	Gaussian
	// Exponential piles keys near the low end of the range with an
	// exponentially decaying tail.
	Exponential
	// PowerSkew maps uniform draws through u^k (k = Spec.Param,
	// default 4), producing heavy skew toward the low end — the regime
	// where one histogram probe range holds most of the data.
	PowerSkew
	// Zipfian draws log-uniform keys (rank-frequency ≈ 1/x): a few
	// small keys recur very often, stressing duplicate handling.
	Zipfian
	// AlmostSorted gives rank r keys from the r-th slice of the range
	// in nearly ascending order with local jitter, so the input is
	// already close to globally sorted.
	AlmostSorted
	// DuplicateHeavy draws every key from only Spec.Distinct values
	// (default 16): the §4.3 adversarial input where splitter-based
	// balance guarantees need tagging.
	DuplicateHeavy
	// Staircase pre-partitions the data: rank r draws only from the
	// r-th slice of the key range, so nearly all keys must move in the
	// exchange and probe-based splitters see a staircase CDF.
	Staircase
)

// String returns the distribution name used in experiment output.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Exponential:
		return "exponential"
	case PowerSkew:
		return "powerskew"
	case Zipfian:
		return "zipfian"
	case AlmostSorted:
		return "almostsorted"
	case DuplicateHeavy:
		return "dupheavy"
	case Staircase:
		return "staircase"
	default:
		return "unknown"
	}
}

// Spec describes a distribution over int64 keys.
type Spec struct {
	// Kind selects the distribution shape.
	Kind Kind
	// Min and Max bound the keys to [Min, Max). Leaving both zero
	// selects the default range [0, 1<<60).
	Min, Max int64
	// Param is the shape parameter where one applies: the PowerSkew
	// exponent (default 4).
	Param float64
	// Distinct is the number of distinct values for DuplicateHeavy
	// (default 16).
	Distinct int
}

// bounds returns the effective [min, max) range.
func (s Spec) bounds() (int64, int64) {
	if s.Max <= s.Min {
		return 0, 1 << 60
	}
	return s.Min, s.Max
}

// Shards builds all p shards: Shards(n, p, seed)[r] == Shard(n, r, p, seed).
func (s Spec) Shards(perRank, p int, seed uint64) [][]int64 {
	out := make([][]int64, p)
	for r := range out {
		out[r] = s.Shard(perRank, r, p, seed)
	}
	return out
}

// Shard generates rank r's perRank keys. The result depends only on the
// arguments (deterministic per rank), never on the other shards.
func (s Spec) Shard(perRank, rank, p int, seed uint64) []int64 {
	min, max := s.bounds()
	span := max - min
	rng := rand.New(rand.NewPCG(seed, uint64(rank)+0x9e3779b97f4a7c15))
	keys := make([]int64, perRank)
	switch s.Kind {
	case Gaussian:
		mean := float64(min) + float64(span)/2
		sigma := float64(span) / 8
		for i := range keys {
			keys[i] = clamp(int64(mean+rng.NormFloat64()*sigma), min, max)
		}
	case Exponential:
		scale := float64(span) / 8
		for i := range keys {
			keys[i] = clamp(min+int64(rng.ExpFloat64()*scale), min, max)
		}
	case PowerSkew:
		k := s.Param
		if k <= 0 {
			k = 4
		}
		for i := range keys {
			keys[i] = clamp(min+int64(math.Pow(rng.Float64(), k)*float64(span)), min, max)
		}
	case Zipfian:
		// Log-uniform: density ∝ 1/x over [1, span], i.e. Zipf with s≈1.
		logSpan := math.Log(float64(span))
		for i := range keys {
			keys[i] = clamp(min+int64(math.Exp(rng.Float64()*logSpan))-1, min, max)
		}
	case AlmostSorted:
		lo, width := slice(min, span, rank, p)
		step := float64(width) / float64(perRank+1)
		jitter := 4 * step
		for i := range keys {
			base := float64(lo) + float64(i)*step
			keys[i] = clamp(int64(base+(rng.Float64()-0.5)*jitter), min, max)
		}
	case DuplicateHeavy:
		d := s.Distinct
		if d <= 0 {
			d = 16
		}
		for i := range keys {
			v := int64(rng.IntN(d))
			keys[i] = clamp(min+v*span/int64(d), min, max)
		}
	case Staircase:
		lo, width := slice(min, span, rank, p)
		for i := range keys {
			keys[i] = clamp(lo+rng.Int64N(width), min, max)
		}
	default: // Uniform
		for i := range keys {
			keys[i] = min + rng.Int64N(span)
		}
	}
	return keys
}

// slice returns the bounds of rank r's 1/p slice of the key range (used
// by the pre-partitioned distributions).
func slice(min, span int64, rank, p int) (lo, width int64) {
	lo = min + span*int64(rank)/int64(p)
	hi := min + span*int64(rank+1)/int64(p)
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi - lo
}

// clamp bounds v to [min, max).
func clamp(v, min, max int64) int64 {
	if v < min {
		return min
	}
	if v >= max {
		return max - 1
	}
	return v
}
