package hssort

import (
	"context"
	"errors"
	"math"
	"runtime"
	"slices"
	"testing"
	"time"

	"hssort/internal/dist"
)

// bg is the default context for engine tests.
var bg = context.Background()

// TestSorterReuse: one engine serves many sorts, each rank-identical to
// a one-shot Sort of the same input.
func TestSorterReuse(t *testing.T) {
	const p, perRank, rounds = 4, 1500, 4
	cfg := Config{Procs: p, Epsilon: 0.1, Seed: 5}
	s, err := New[int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < rounds; round++ {
		shards := shardsFor(t, dist.Gaussian, p, perRank, uint64(round+1))
		want, wantStats, err := Sort(cfg, cloneShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := s.Sort(bg, cloneShards(shards))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for r := range want {
			if !slicesEqual(want[r], got[r]) {
				t.Fatalf("round %d rank %d: engine output differs from one-shot Sort", round, r)
			}
		}
		if gotStats.Rounds != wantStats.Rounds || gotStats.TotalSample != wantStats.TotalSample {
			t.Fatalf("round %d: protocol stats diverged: %+v vs %+v", round, gotStats, wantStats)
		}
	}
}

func slicesEqual[K comparable](a, b []K) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlanSortWithPlanEquivalence is the plan API's acceptance gate:
// for a stationary distribution (here: the very same input), a plan
// prepared by Sorter.Plan and applied by SortWithPlan must produce
// output rank-identical to a plain Sort — across the HSS variants, both
// transports, both exchange planes and both code paths — while skipping
// histogramming entirely (Stats.Rounds == 0).
func TestPlanSortWithPlanEquivalence(t *testing.T) {
	const p, perRank = 6, 2500
	algorithms := []Algorithm{HSS, HSSOneRound, HSSTheoretical}
	for _, alg := range algorithms {
		for _, tr := range []Transport{TransportSim, TransportInproc} {
			for _, stream := range []bool{false, true} {
				for _, cp := range []CodePath{CodePathOff, CodePathAuto} {
					name := alg.String() + "/" + tr.String()
					if stream {
						name += "/stream"
					} else {
						name += "/materializing"
					}
					name += "/" + cp.String()
					t.Run(name, func(t *testing.T) {
						shards := shardsFor(t, dist.PowerSkew, p, perRank, 17)
						cfg := Config{
							Procs: p, Algorithm: alg, Epsilon: 0.1, Seed: 7,
							Transport: tr, CodePath: cp, StreamExchange: stream,
						}
						if stream {
							cfg.ChunkKeys = 512
						}
						want, wantStats, err := Sort(cfg, cloneShards(shards))
						if err != nil {
							t.Fatal(err)
						}

						s, err := New[int64](cfg)
						if err != nil {
							t.Fatal(err)
						}
						defer s.Close()
						plan, err := s.Plan(bg, shards)
						if err != nil {
							t.Fatal(err)
						}
						if plan.Rounds != wantStats.Rounds {
							t.Errorf("plan rounds %d != sort rounds %d", plan.Rounds, wantStats.Rounds)
						}
						got, gotStats, err := s.SortWithPlan(bg, plan, cloneShards(shards))
						if err != nil {
							t.Fatal(err)
						}
						if gotStats.Rounds != 0 || gotStats.TotalSample != 0 {
							t.Errorf("plan-reuse sort histogrammed: rounds %d, sample %d",
								gotStats.Rounds, gotStats.TotalSample)
						}
						if gotStats.Replanned {
							t.Error("plan-reuse sort replanned without a staleness guard")
						}
						for r := range want {
							if !slicesEqual(want[r], got[r]) {
								t.Fatalf("rank %d: SortWithPlan output differs from Sort (%d vs %d keys)",
									r, len(got[r]), len(want[r]))
							}
						}
					})
				}
			}
		}
	}
}

// TestPlanOtherAlgorithms: the plan path also covers the sample sorts,
// classic histogram sort and NodeHSS (node-level splitters).
func TestPlanOtherAlgorithms(t *testing.T) {
	const p, perRank = 6, 2000
	cases := []Config{
		{Procs: p, Algorithm: SampleSortRegular, Epsilon: 0.1, Seed: 3},
		{Procs: p, Algorithm: SampleSortRandom, Epsilon: 0.1, Seed: 3, StreamExchange: true, ChunkKeys: 512},
		{Procs: p, Algorithm: HistogramSort, Epsilon: 0.1, Seed: 3},
		{Procs: p, Algorithm: NodeHSS, CoresPerNode: 2, Epsilon: 0.1, Seed: 3, Transport: TransportInproc},
		{Procs: p, Algorithm: HSS, Buckets: 4 * p, Epsilon: 0.2, Seed: 3}, // over-partitioned
	}
	for _, cfg := range cases {
		t.Run(cfg.Algorithm.String(), func(t *testing.T) {
			shards := shardsFor(t, dist.Exponential, p, perRank, 23)
			want, _, err := Sort(cfg, cloneShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			s, err := New[int64](cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			plan, err := s.Plan(bg, shards)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := s.SortWithPlan(bg, plan, cloneShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != 0 {
				t.Errorf("plan-reuse sort ran %d histogram rounds", stats.Rounds)
			}
			for r := range want {
				if !slicesEqual(want[r], got[r]) {
					t.Fatalf("rank %d: SortWithPlan output differs from Sort", r)
				}
			}
		})
	}
}

// TestPlanReports: a plan carries the protocol's achieved statistics.
func TestPlanReports(t *testing.T) {
	const p, perRank = 4, 4000
	s, err := New[int64](Config{Procs: p, Epsilon: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	shards := shardsFor(t, dist.Uniform, p, perRank, 5)
	plan, err := s.Plan(bg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Buckets != p || len(plan.Splitters) != p-1 {
		t.Fatalf("plan geometry: %d buckets, %d splitters", plan.Buckets, len(plan.Splitters))
	}
	if plan.N != int64(p*perRank) {
		t.Errorf("plan.N = %d", plan.N)
	}
	if plan.Rounds < 1 || plan.TotalSample < 1 {
		t.Errorf("plan protocol stats empty: %+v", plan)
	}
	if !plan.Finalized {
		t.Error("uniform input did not finalize")
	}
	if plan.Epsilon != 0.05 {
		t.Errorf("plan.Epsilon = %v", plan.Epsilon)
	}
	// The guarantee is probabilistic, but on uniform data the achieved
	// ε must at least be computed and sane.
	if plan.AchievedEpsilon < 0 || plan.AchievedEpsilon > 1 {
		t.Errorf("plan.AchievedEpsilon = %v", plan.AchievedEpsilon)
	}
	// Plan must not consume the input: shards stay unsorted-ish. Verify
	// by sorting with the same engine afterwards.
	outs, _, err := s.Sort(bg, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, shards, outs)
}

// TestPlanStalenessGuard: on a drifted distribution a stale plan
// produces lopsided buckets; with Config.PlanStaleness armed the sort
// detects it, re-histograms (Stats.Replanned) and restores the balance
// target. Without the guard the stale splitters are trusted and the
// imbalance blows through the target.
func TestPlanStalenessGuard(t *testing.T) {
	const p, perRank = 8, 4000
	base := Config{Procs: p, Epsilon: 0.05, Seed: 9}
	// Plan on keys in [0, 1<<40); sort keys shifted far above: every
	// key lands in the last bucket.
	planShards := dist.Spec{Kind: dist.Uniform, Min: 0, Max: 1 << 40}.Shards(perRank, p, 31)
	drifted := dist.Spec{Kind: dist.Uniform, Min: 1 << 41, Max: 1 << 42}.Shards(perRank, p, 32)

	s, err := New[int64](base)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan, err := s.Plan(bg, planShards)
	if err != nil {
		t.Fatal(err)
	}

	// Unguarded: the stale plan funnels everything into one bucket.
	outs, stats, err := s.SortWithPlan(bg, plan, cloneShards(drifted))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, drifted, outs)
	if stats.Replanned || stats.Rounds != 0 {
		t.Fatalf("unguarded sort replanned: %+v", stats)
	}
	if stats.Imbalance < float64(p)-0.01 {
		t.Fatalf("drift did not produce the expected lopsided load (imbalance %v)", stats.Imbalance)
	}

	// Guarded: the staleness probe fires, the sort re-histograms and
	// meets the balance target again.
	guarded := base
	guarded.PlanStaleness = 1.5
	g, err := New[int64](guarded)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gplan, err := g.Plan(bg, planShards)
	if err != nil {
		t.Fatal(err)
	}
	outs, stats, err = g.SortWithPlan(bg, gplan, cloneShards(drifted))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, drifted, outs)
	if !stats.Replanned {
		t.Fatal("staleness guard did not fire")
	}
	if stats.Rounds < 1 {
		t.Error("replan reported no histogramming rounds")
	}
	if stats.Imbalance > 1+base.Epsilon+1e-9 {
		t.Errorf("replanned sort missed the balance target: imbalance %v", stats.Imbalance)
	}

	// A fresh plan on the drifted data passes the same guard silently.
	fresh, err := g.Plan(bg, cloneShards(drifted))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = g.SortWithPlan(bg, fresh, cloneShards(drifted))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replanned {
		t.Error("fresh plan flagged stale")
	}
}

// TestPlanMisuse: plans are rejected when they do not fit the engine.
func TestPlanMisuse(t *testing.T) {
	const p = 4
	shards := shardsFor(t, dist.Uniform, p, 500, 3)

	s, err := New[int64](Config{Procs: p, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan, err := s.Plan(bg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SortWithPlan(bg, nil, cloneShards(shards)); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := s.Plan(bg, make([][]int64, p)); err == nil {
		t.Error("plan on empty input accepted (would be rejected by every SortWithPlan)")
	}
	if _, _, err := s.SortWithPlan(bg, &Plan[int64]{Splitters: plan.Splitters, Buckets: p}, cloneShards(shards)); err == nil {
		t.Error("hand-built plan accepted")
	}

	// A plan from a different geometry.
	other, err := New[int64](Config{Procs: p, Buckets: 2 * p, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, _, err := other.SortWithPlan(bg, plan, cloneShards(shards)); err == nil {
		t.Error("plan with mismatched bucket count accepted")
	}

	// Non-splitter algorithms have no plans.
	bit, err := New[int64](Config{Procs: p, Algorithm: Bitonic})
	if err != nil {
		t.Fatal(err)
	}
	defer bit.Close()
	if _, err := bit.Plan(bg, shards); err == nil {
		t.Error("bitonic produced a plan")
	}
	if _, _, err := bit.SortWithPlan(bg, plan, cloneShards(shards)); err == nil {
		t.Error("bitonic accepted a plan")
	}

	// Tagged sorts cannot use plans (tagged records, plain-key plans).
	tagged, err := New[int64](Config{Procs: p, TagDuplicates: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tagged.Close()
	if _, err := tagged.Plan(bg, shards); err == nil {
		t.Error("tagged engine produced a plan")
	}
}

// TestKVSorterPlan: the record engine supports the full plan lifecycle,
// payloads riding along.
func TestKVSorterPlan(t *testing.T) {
	const p, perRank = 4, 1200
	shards := make([][]KV[int64, int32], p)
	raw := shardsFor(t, dist.Zipfian, p, perRank, 13)
	for r := range shards {
		for i, k := range raw[r] {
			shards[r] = append(shards[r], KV[int64, int32]{Key: k, Val: int32(r*perRank + i)})
		}
	}
	s, err := NewKV[int64, int32](Config{Procs: p, Epsilon: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan, err := s.Plan(bg, shards)
	if err != nil {
		t.Fatal(err)
	}
	outs, stats, err := s.SortWithPlan(bg, plan, cloneAny(shards))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 {
		t.Errorf("KV plan-reuse sort ran %d rounds", stats.Rounds)
	}
	// Keys globally sorted, payload multiset preserved.
	seen := make(map[int32]bool)
	var prev *KV[int64, int32]
	for _, o := range outs {
		for i := range o {
			if prev != nil && prev.Key > o[i].Key {
				t.Fatal("KV output not sorted")
			}
			prev = &o[i]
			if seen[o[i].Val] {
				t.Fatalf("payload %d duplicated", o[i].Val)
			}
			seen[o[i].Val] = true
		}
	}
	if len(seen) != p*perRank {
		t.Fatalf("lost payloads: %d of %d", len(seen), p*perRank)
	}
}

// TestSorterContext: engine calls respect context state — pre-cancelled
// contexts fail fast with ctx.Err() exactly, deadlines expire cleanly,
// and the engine stays usable after a cancelled call.
func TestSorterContext(t *testing.T) {
	const p = 4
	shards := shardsFor(t, dist.Uniform, p, 2000, 3)
	s, err := New[int64](Config{Procs: p, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if _, _, err := s.Sort(cancelled, cloneShards(shards)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Sort returned %v", err)
	}
	if _, err := s.Plan(cancelled, shards); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Plan returned %v", err)
	}

	// A deadline that expires mid-run surfaces as DeadlineExceeded.
	big := shardsFor(t, dist.Uniform, p, 200000, 4)
	expired, cancel2 := context.WithTimeout(bg, time.Millisecond)
	defer cancel2()
	if _, _, err := s.Sort(expired, big); err != nil && err != context.DeadlineExceeded {
		t.Fatalf("deadline error = %v, want context.DeadlineExceeded", err)
	}

	// The engine recovered: a normal sort still works.
	outs, _, err := s.Sort(bg, cloneShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, shards, outs)
}

// TestSorterClose: Close is idempotent, later calls fail with
// ErrSorterClosed, and the worker goroutines actually exit.
func TestSorterClose(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := New[int64](Config{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	shards := shardsFor(t, dist.Uniform, 8, 200, 1)
	if _, _, err := s.Sort(bg, cloneShards(shards)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, _, err := s.Sort(bg, cloneShards(shards)); !errors.Is(err, ErrSorterClosed) {
		t.Fatalf("Sort after Close = %v, want ErrSorterClosed", err)
	}
	if _, err := s.Plan(bg, shards); !errors.Is(err, ErrSorterClosed) {
		t.Fatalf("Plan after Close = %v, want ErrSorterClosed", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("worker goroutines leaked: %d > %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSorterConstructorValidation: New validates once, loudly.
func TestSorterConstructorValidation(t *testing.T) {
	if _, err := New[int64](Config{}); err == nil {
		t.Error("Procs 0 accepted")
	}
	if _, err := New[int64](Config{Procs: 2, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := New[int64](Config{Procs: 2, Algorithm: NodeHSS}); err == nil {
		t.Error("NodeHSS without CoresPerNode accepted")
	}
	if _, err := New[int64](Config{Procs: 3, Algorithm: NodeHSS, CoresPerNode: 2}); err == nil {
		t.Error("NodeHSS with non-divisible CoresPerNode accepted")
	}
	if _, err := NewFunc[int64](Config{Procs: 2}, nil); err == nil {
		t.Error("nil comparator accepted")
	}
	if _, err := New[int64](Config{Procs: 2, PlanStaleness: -1}); err == nil {
		t.Error("negative PlanStaleness accepted")
	}
	type opaque struct{ v int }
	if _, err := NewFunc(Config{Procs: 2, Algorithm: HistogramSort},
		func(a, b opaque) int { return a.v - b.v }); err == nil {
		t.Error("HistogramSort without coder accepted")
	}
}

// TestSortFloat32Keys: the float32 coder entry engages the code plane
// for float32 keys, NaN guard included.
func TestSortFloat32Keys(t *testing.T) {
	const p = 3
	shards := [][]float32{
		{3.5, -1.25, 0, 7e8},
		{-2.5e-7, 99.5, -0.5, 1.5},
		{42, -42, 0.25, -7e-3},
	}
	outs, _, err := Sort(Config{Procs: p, Epsilon: 0.2, CodePath: CodePathOn}, cloneAny(shards))
	if err != nil {
		t.Fatalf("float32 CodePathOn failed: %v", err)
	}
	var prev float32
	first := true
	n := 0
	for _, o := range outs {
		for _, k := range o {
			if !first && k < prev {
				t.Fatal("float32 output not sorted")
			}
			prev, first = k, false
			n++
		}
	}
	if n != 12 {
		t.Fatalf("lost keys: %d", n)
	}
	// NaN falls back to the comparator plane under auto, fails under on.
	nan := [][]float32{{1, float32nan()}, {2, 3}}
	if _, _, err := Sort(Config{Procs: 2, CodePath: CodePathOn}, cloneAny(nan)); err == nil {
		t.Error("float32 NaN under CodePathOn did not fail")
	}
	if _, _, err := Sort(Config{Procs: 2}, cloneAny(nan)); err != nil {
		t.Errorf("float32 NaN under auto failed: %v", err)
	}
}

func float32nan() float32 {
	var z float32
	return z / z
}

// TestPlanNaNSplitterGuard: a plan prepared on NaN-bearing float data
// (comparator plane; NaN sorts first, so it can become a splitter) must
// keep a later SortWithPlan off the code plane even when that sort's
// shards are NaN-free — otherwise the NaN splitter encodes out of
// order.
func TestPlanNaNSplitterGuard(t *testing.T) {
	const p = 4
	nan := math.NaN()
	planShards := [][]float64{
		{nan, nan, nan, 1, 2}, {nan, nan, 3, 4, nan},
		{nan, 5, nan, 6, nan}, {nan, 7, nan, 8, nan},
	}
	s, err := New[float64](Config{Procs: p, Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	plan, err := s.Plan(bg, planShards)
	if err != nil {
		t.Fatal(err)
	}
	hasNaN := false
	for _, sp := range plan.Splitters {
		if sp != sp {
			hasNaN = true
		}
	}
	if !hasNaN {
		t.Skip("plan selected no NaN splitter; guard not exercised")
	}
	clean := [][]float64{{4, 1}, {3, 2}, {8, 5}, {7, 6}}
	outs, _, err := s.SortWithPlan(bg, plan, cloneAny(clean))
	if err != nil {
		t.Fatalf("SortWithPlan with a NaN splitter: %v", err)
	}
	var got []float64
	for _, o := range outs {
		got = append(got, o...)
	}
	if !slices.IsSorted(got) {
		t.Fatalf("output not sorted: %v", got)
	}
}
