package comm

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fault_test.go: the failure-survival machinery — deterministic fault
// injection, typed crash errors, heartbeat liveness, kill/respawn/rejoin
// and mesh resize. Companion to the chaos sweeps in the root package's
// robustness tests, which drive whole sorts through the same layers.

// TestFaultLinkFaultsDeliverExactlyOnce: drop/delay/dup model a lossy
// link under its repair layer, so every message still arrives exactly
// once, in per-pair FIFO order — only later. Two identical runs inject
// the identical fault schedule (same seed, same traffic).
func TestFaultLinkFaultsDeliverExactlyOnce(t *testing.T) {
	const p, msgs = 4, 25
	run := func() FaultStats {
		ft := NewFaultTransport(NewSimTransport(p), FaultSpec{
			Seed: 42, Drop: 0.2, Delay: 0.2, Dup: 0.1,
			MaxDelay: 200 * time.Microsecond,
		})
		defer ft.Close()
		w := NewWorld(p, WithTransport(ft), WithTimeout(20*time.Second))
		err := w.Run(func(c *Comm) error {
			next := (c.Rank() + 1) % p
			for i := 0; i < msgs; i++ {
				if err := SendValue(c, next, 3, int64(c.Rank()*1000+i)); err != nil {
					return err
				}
			}
			prev := (c.Rank() + p - 1) % p
			for i := 0; i < msgs; i++ {
				got, err := RecvValue[int64](c, prev, 3)
				if err != nil {
					return err
				}
				if want := int64(prev*1000 + i); got != want {
					return fmt.Errorf("rank %d message %d: got %d, want %d (fault layer broke FIFO/exactly-once)", c.Rank(), i, got, want)
				}
			}
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return ft.FaultStats()
	}
	first := run()
	if first.Dropped+first.Delayed+first.Duplicated == 0 {
		t.Fatal("fault layer injected nothing at 50% combined probability")
	}
	if second := run(); second != first {
		t.Errorf("fault schedule not deterministic: first run %+v, second %+v", first, second)
	}
}

// TestFaultCrashEveryRankSeesSameTypedError: an injected crash at a
// protocol point kills the victim's endpoint for real, and every
// surviving rank's run fails with a *PeerCrashError naming the same
// rank — whether the survivor saw the EOF itself or learned of the
// crash from the abort broadcast.
func TestFaultCrashEveryRankSeesSameTypedError(t *testing.T) {
	const p, victim = 3, 1
	inner, err := NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFaultTransport(inner, FaultSpec{
		CrashRank: victim,
		CrashWhen: func(src, dst int, tag Tag) bool { return tag == 7 },
	})
	defer ft.Close()
	w := NewWorld(p, WithTransport(ft), WithTimeout(20*time.Second))
	rankErrs := make([]error, p)
	w.Run(func(c *Comm) error {
		err := SendValue(c, (c.Rank()+1)%p, 7, int64(c.Rank()))
		if err == nil {
			_, err = RecvValue[int64](c, (c.Rank()+p-1)%p, 7)
		}
		if err == nil {
			// A survivor whose ring legs dodged the victim still has to
			// observe the crash at the barrier.
			err = c.Barrier()
		}
		rankErrs[c.Rank()] = err
		return err
	})
	for r, err := range rankErrs {
		if r == victim {
			continue // the victim's own error mode is ErrTransportClosed/crash
		}
		var crash *PeerCrashError
		if !errors.As(err, &crash) {
			t.Fatalf("rank %d error %v is not a PeerCrashError", r, err)
		}
		if crash.Rank != victim {
			t.Errorf("rank %d blames rank %d, want %d", r, crash.Rank, victim)
		}
		if !errors.Is(err, ErrAborted) {
			t.Errorf("rank %d crash error does not satisfy ErrAborted", r)
		}
	}
	if st := ft.FaultStats(); st.Crashes != 1 {
		t.Errorf("FaultStats.Crashes = %d, want 1", st.Crashes)
	}
}

// TestTCPLoopbackKillRespawnRejoin is the full recovery cycle at the
// transport level: a clean run, kill -9 of one rank (every survivor
// fails with the same typed error), respawn + rejoin, and a clean run
// again over the same Pool — with the lifecycle counters recording the
// churn and no goroutines left behind at the end.
func TestTCPLoopbackKillRespawnRejoin(t *testing.T) {
	base := runtime.NumGoroutine()
	const p, victim = 3, 2
	mesh, err := NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(p, WithTransport(mesh), WithTimeout(20*time.Second))

	ring := func(c *Comm) error {
		if err := SendValue(c, (c.Rank()+1)%p, 3, int64(c.Rank())); err != nil {
			return err
		}
		got, err := RecvValue[int64](c, (c.Rank()+p-1)%p, 3)
		if err != nil {
			return err
		}
		if want := int64((c.Rank() + p - 1) % p); got != want {
			return fmt.Errorf("rank %d: got %d, want %d", c.Rank(), got, want)
		}
		return c.Barrier()
	}
	ctx := t.Context()
	if err := pool.Run(ctx, ring); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	mesh.Kill(victim)
	rankErrs := make([]error, p)
	var mu sync.Mutex
	pool.Run(ctx, func(c *Comm) error {
		err := ring(c)
		mu.Lock()
		rankErrs[c.Rank()] = err
		mu.Unlock()
		return err
	})
	for r, err := range rankErrs {
		if r == victim {
			if !errors.Is(err, ErrTransportClosed) && err == nil {
				t.Errorf("killed rank %d ran to completion (%v)", r, err)
			}
			continue
		}
		var crash *PeerCrashError
		if !errors.As(err, &crash) || crash.Rank != victim {
			t.Fatalf("survivor %d error %v is not a PeerCrashError for rank %d", r, err, victim)
		}
	}

	if err := mesh.Respawn(victim); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if err := pool.Run(ctx, ring); err != nil {
		t.Fatalf("post-rejoin run: %v", err)
	}
	ctr := mesh.TotalCounters()
	// 1 from the joiner, plus 1 per survivor that re-adopted it.
	if ctr.Respawns != int64(p) {
		t.Errorf("TotalCounters().Respawns = %d, want %d", ctr.Respawns, p)
	}

	pool.Close()
	mesh.Close()
	waitGoroutines(t, base)
}

// TestTCPRespawnRefusesLiveRank: Respawn of a rank that was never
// killed must fail loudly instead of double-binding the rank.
func TestTCPRespawnRefusesLiveRank(t *testing.T) {
	mesh, err := NewTCPLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	if err := mesh.Respawn(1); err == nil {
		t.Fatal("Respawn of a live rank succeeded")
	}
}

// dialWorkerNodesOpts is dialWorkerNodes with a TCPOptions template
// (liveness settings) applied to every endpoint.
func dialWorkerNodesOpts(t *testing.T, p int, tmpl TCPOptions) []*TCPTransport {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*TCPTransport, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			opts := tmpl
			opts.Coordinator = ln.Addr().String()
			opts.Rank = r
			opts.Procs = p
			if opts.BootstrapTimeout == 0 {
				opts.BootstrapTimeout = 10 * time.Second
			}
			if r == 0 {
				opts.CoordinatorListener = ln
			}
			nodes[r], errs[r] = DialTCP(opts)
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		var cwg sync.WaitGroup
		for _, n := range nodes {
			cwg.Add(1)
			go func(n *TCPTransport) { defer cwg.Done(); n.Close() }(n)
		}
		cwg.Wait()
	})
	return nodes
}

// TestHeartbeatDetectsHungPeer: a peer whose process is alive but hung
// (socket open, nothing flowing — here: heartbeats suspended) is
// declared crashed after PeerTimeout, and the blocked receiver unblocks
// with the typed error instead of hanging until the watchdog.
func TestHeartbeatDetectsHungPeer(t *testing.T) {
	nodes := dialWorkerNodesOpts(t, 2, TCPOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		PeerTimeout:       200 * time.Millisecond,
	})
	done := make(chan error, 1)
	go func() {
		_, err := nodes[0].Recv(0, 1, 5) // nothing will ever arrive
		done <- err
	}()
	nodes[1].SuspendHeartbeats(true) // rank 1 "hangs": alive, silent
	select {
	case err := <-done:
		var crash *PeerCrashError
		if !errors.As(err, &crash) || crash.Rank != 1 {
			t.Fatalf("hung peer surfaced as %v, want PeerCrashError for rank 1", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat monitor never declared the hung peer crashed")
	}
}

// TestHeartbeatKeepsIdleWorldAlive: heartbeats must prevent false
// positives — two endpoints idling far longer than PeerTimeout stay
// healthy because heartbeat frames count as traffic.
func TestHeartbeatKeepsIdleWorldAlive(t *testing.T) {
	nodes := dialWorkerNodesOpts(t, 2, TCPOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		PeerTimeout:       60 * time.Millisecond,
	})
	time.Sleep(300 * time.Millisecond) // 5× PeerTimeout of pure idling
	for r, n := range nodes {
		if err := n.Err(); err != nil {
			t.Fatalf("idle endpoint %d latched %v; heartbeats failed to keep it alive", r, err)
		}
	}
	// And the world still works.
	if err := nodes[0].Send(0, 1, 4, int64(7), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[1].Recv(1, 0, 4); err != nil {
		t.Fatal(err)
	}
}

// TestMeshResize: a world resized down and back up re-rendezvouses at
// the same coordinator address, and each new mesh carries traffic.
func TestMeshResize(t *testing.T) {
	mesh, err := NewTCPLoopback(4)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	coord := mesh.CoordinatorAddr()

	ring := func(p int) error {
		w := NewWorld(p, WithTransport(mesh), WithTimeout(20*time.Second))
		return w.Run(func(c *Comm) error {
			if err := SendValue(c, (c.Rank()+1)%p, 3, int64(c.Rank())); err != nil {
				return err
			}
			got, err := RecvValue[int64](c, (c.Rank()+p-1)%p, 3)
			if err != nil {
				return err
			}
			if want := int64((c.Rank() + p - 1) % p); got != want {
				return fmt.Errorf("rank %d: got %d, want %d", c.Rank(), got, want)
			}
			return c.Barrier()
		})
	}
	if err := ring(4); err != nil {
		t.Fatalf("initial world: %v", err)
	}
	for _, newP := range []int{2, 3} {
		if err := mesh.Resize(newP); err != nil {
			t.Fatalf("resize to %d: %v", newP, err)
		}
		if mesh.Size() != newP {
			t.Fatalf("Size() = %d after resize to %d", mesh.Size(), newP)
		}
		if got := mesh.CoordinatorAddr(); got != coord {
			t.Errorf("coordinator moved from %s to %s across resize", coord, got)
		}
		if err := ring(newP); err != nil {
			t.Fatalf("world of %d after resize: %v", newP, err)
		}
	}
}

// TestDialRetryBackoff: the shared dial helper retries with backoff
// until the deadline against a dead address, and connects without
// retries against a live one.
func TestDialRetryBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	start := time.Now()
	_, retries, err := dialRetry(dead, 1, time.Now().Add(150*time.Millisecond))
	if err == nil {
		t.Fatal("dialRetry connected to a closed address")
	}
	if retries < 1 {
		t.Errorf("dialRetry gave up after %d retries in %v, want backoff retries", retries, time.Since(start))
	}

	live, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	c, retries, err := dialRetry(live.Addr().String(), 1, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if retries != 0 {
		t.Errorf("dialRetry to a live listener took %d retries, want 0", retries)
	}
}

// TestBootstrapVersionMismatchTypedError: a peer speaking a different
// hsswire version is rejected with a VersionMismatchError (inside the
// worker's BootstrapError), not a generic parse failure.
func TestBootstrapVersionMismatchTypedError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Fake coordinator from the future: replies to the registration with
	// a table stamped hsswire/999.
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var lenb [4]byte
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			return
		}
		b := make([]byte, binary.LittleEndian.Uint32(lenb[:]))
		if _, err := io.ReadFull(c, b); err != nil {
			return
		}
		reply, _ := json.Marshal(map[string]any{
			"proto": "hsswire/999", "type": "table", "procs": 2,
			"addrs": []string{"127.0.0.1:1", "127.0.0.1:2"},
		})
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(reply)))
		c.Write(lenb[:])
		c.Write(reply)
	}()
	_, err = DialTCP(TCPOptions{Coordinator: ln.Addr().String(), Rank: 1, Procs: 2, BootstrapTimeout: 5 * time.Second})
	if err == nil {
		t.Fatal("mixed-version bootstrap succeeded")
	}
	var boot *BootstrapError
	if !errors.As(err, &boot) || boot.Rank != 1 {
		t.Fatalf("error %v is not a BootstrapError for rank 1", err)
	}
	var ver *VersionMismatchError
	if !errors.As(err, &ver) {
		t.Fatalf("error %v does not carry a VersionMismatchError", err)
	}
	if ver.Peer != "hsswire/999" || ver.Local != protoID {
		t.Errorf("mismatch error %+v does not name both versions", ver)
	}
}

// TestFaultTransportClearCrashAfterRespawn: the ClearCrash +
// Respawn pair heals a chaos-crashed world for the next run.
func TestFaultTransportClearCrashAfterRespawn(t *testing.T) {
	const p, victim = 3, 1
	mesh, err := NewTCPLoopback(p)
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFaultTransport(mesh, FaultSpec{
		CrashRank:       victim,
		CrashAfterSends: 2,
	})
	defer ft.Close()
	pool := NewPool(p, WithTransport(ft), WithTimeout(20*time.Second))
	defer pool.Close()
	ring := func(c *Comm) error {
		for i := 0; i < 3; i++ {
			if err := SendValue(c, (c.Rank()+1)%p, 3, int64(i)); err != nil {
				return err
			}
			if _, err := RecvValue[int64](c, (c.Rank()+p-1)%p, 3); err != nil {
				return err
			}
		}
		return c.Barrier()
	}
	ctx := t.Context()
	if err := pool.Run(ctx, ring); err == nil {
		t.Fatal("run survived an armed crash trigger")
	}
	ft.ClearCrash()
	if err := mesh.Respawn(victim); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if err := pool.Run(ctx, ring); err != nil {
		t.Fatalf("healed run: %v", err)
	}
}
