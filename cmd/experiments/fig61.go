package main

import (
	"fmt"
	"time"

	"hssort"
	"hssort/internal/dist"
	"hssort/internal/tablefmt"
)

// runFig61 regenerates Fig 6.1: HSS weak scaling with the per-phase
// execution-time breakdown (local sort / histogramming / data exchange).
// The paper runs 512–32K cores with 1M 8-byte keys + 4-byte payload per
// core on Mira; we sort the same record shape over simulated ranks at
// laptop scale with a fixed per-rank load, so the phase *fractions* and
// their trend with p are the comparable quantities.
func runFig61(scale float64) error {
	perRank := int(100000 * scale)
	if perRank < 5000 {
		perRank = 5000
	}
	t := tablefmt.New("p", "N", "local sort", "histogramming", "data exchange+merge", "total", "hist %", "rounds", "imbalance")
	for _, p := range []int{4, 8, 16, 32, 64} {
		spec := dist.Spec{Kind: dist.Uniform}
		keyShards := spec.Shards(perRank, p, 42)
		// The paper's records: 8-byte integer key + 4-byte payload.
		shards := make([][]hssort.KV[int64, uint32], p)
		for r, ks := range keyShards {
			shards[r] = make([]hssort.KV[int64, uint32], len(ks))
			for i, k := range ks {
				shards[r][i] = hssort.KV[int64, uint32]{Key: k, Val: uint32(i)}
			}
		}
		_, stats, err := hssort.SortKV(hssort.Config{
			Procs: p, Epsilon: 0.02, Seed: 7, Timeout: 10 * time.Minute,
			Transport: transport,
		}, shards)
		if err != nil {
			return err
		}
		exchange := stats.Exchange + stats.Merge
		total := stats.Total()
		t.AddRow(
			fmt.Sprintf("%d", p),
			tablefmt.Count(float64(stats.N)),
			stats.LocalSort.Round(time.Millisecond).String(),
			stats.Splitter.Round(time.Millisecond).String(),
			exchange.Round(time.Millisecond).String(),
			total.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", 100*float64(stats.Splitter)/float64(total)),
			fmt.Sprintf("%d", stats.Rounds),
			fmt.Sprintf("%.4f", stats.Imbalance),
		)
	}
	fmt.Printf("HSS weak scaling, %s records (8B key + 4B payload) per rank, eps = 0.02:\n\n", tablefmt.Count(float64(perRank)))
	fmt.Print(t.String())
	fmt.Println("\nPaper (Fig 6.1): the histogramming phase is a small fraction of the")
	fmt.Println("total at every scale; data exchange dominates as p grows.")
	return nil
}
