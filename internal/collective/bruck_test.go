package collective

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
)

func TestBruckMatchesDirect(t *testing.T) {
	for _, p := range worldSizes {
		runWorld(t, p, func(c *comm.Comm) error {
			parts := make([][]int64, p)
			for dst := range parts {
				parts[dst] = []int64{int64(c.Rank()*1000 + dst)}
			}
			got, err := AllToAllvBruck(c, 1, parts)
			if err != nil {
				return err
			}
			for src, pt := range got {
				want := []int64{int64(src*1000 + c.Rank())}
				if !slices.Equal(pt, want) {
					return fmt.Errorf("p=%d from %d: got %v want %v", p, src, pt, want)
				}
			}
			return nil
		})
	}
}

func TestBruckEmptyParts(t *testing.T) {
	const p = 5
	runWorld(t, p, func(c *comm.Comm) error {
		parts := make([][]int64, p)
		// Only rank 0 sends anything, and only to rank p-1.
		if c.Rank() == 0 {
			parts[p-1] = []int64{42}
		}
		got, err := AllToAllvBruck(c, 1, parts)
		if err != nil {
			return err
		}
		if c.Rank() == p-1 {
			if !slices.Equal(got[0], []int64{42}) {
				return fmt.Errorf("lost the lone payload: %v", got[0])
			}
		}
		for src, pt := range got {
			if (c.Rank() != p-1 || src != 0) && src != c.Rank() && len(pt) != 0 {
				return fmt.Errorf("phantom payload from %d: %v", src, pt)
			}
		}
		return nil
	})
}

func TestBruckWrongPartCount(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(time.Second))
	err := w.Run(func(c *comm.Comm) error {
		if _, err := AllToAllvBruck(c, 1, [][]int64{{1}}); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBruckFewerMessagesThanDirect pins the point of the algorithm: at
// p = 16 the direct exchange sends p(p-1) = 240 messages, Bruck sends
// p·log2(p) = 64.
func TestBruckFewerMessagesThanDirect(t *testing.T) {
	const p = 16
	mkParts := func(r int) [][]int64 {
		parts := make([][]int64, p)
		for dst := range parts {
			parts[dst] = []int64{int64(r*100 + dst)}
		}
		return parts
	}
	direct := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	if err := direct.Run(func(c *comm.Comm) error {
		_, err := AllToAllv(c, 1, mkParts(c.Rank()))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	bruck := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
	if err := bruck.Run(func(c *comm.Comm) error {
		_, err := AllToAllvBruck(c, 1, mkParts(c.Rank()))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	dm := direct.TotalCounters().MsgsSent
	bm := bruck.TotalCounters().MsgsSent
	if bm >= dm {
		t.Errorf("bruck sent %d messages, direct sent %d", bm, dm)
	}
	if bm != p*4 { // log2(16) = 4 rounds, one message per rank per round
		t.Errorf("bruck sent %d messages, want %d", bm, p*4)
	}
}

// TestBruckProperty: random payload matrix, any world size.
func TestBruckProperty(t *testing.T) {
	f := func(seed uint32, pRaw uint8) bool {
		p := int(pRaw%9) + 1
		rng := rand.New(rand.NewPCG(uint64(seed), 5))
		// payload[src][dst]
		payload := make([][][]int64, p)
		for src := range payload {
			payload[src] = make([][]int64, p)
			for dst := range payload[src] {
				n := rng.IntN(5)
				for i := 0; i < n; i++ {
					payload[src][dst] = append(payload[src][dst], rng.Int64N(1000))
				}
			}
		}
		ok := true
		w := comm.NewWorld(p, comm.WithTimeout(10*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			got, err := AllToAllvBruck(c, 1, payload[c.Rank()])
			if err != nil {
				return err
			}
			for src := 0; src < p; src++ {
				if !slices.Equal(got[src], payload[src][c.Rank()]) {
					ok = false
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAblationBruck compares direct vs Bruck all-to-all for small
// per-destination payloads (the regime §6.3's future work targets).
func BenchmarkAblationBruck(b *testing.B) {
	const p = 16
	parts := make([][]int64, p)
	for dst := range parts {
		parts[dst] = make([]int64, 8)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := comm.NewWorld(p)
			_ = w.Run(func(c *comm.Comm) error {
				cp := make([][]int64, p)
				copy(cp, parts)
				_, err := AllToAllv(c, 1, cp)
				return err
			})
		}
	})
	b.Run("bruck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := comm.NewWorld(p)
			_ = w.Run(func(c *comm.Comm) error {
				cp := make([][]int64, p)
				copy(cp, parts)
				_, err := AllToAllvBruck(c, 1, cp)
				return err
			})
		}
	})
}
