package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitBody mirrors the POST /v1/jobs request from the client's side.
type submitBody struct {
	Tenant    string   `json:"tenant,omitempty"`
	Dataset   string   `json:"dataset,omitempty"`
	KeyType   string   `json:"keyType,omitempty"`
	Keys      any      `json:"keys,omitempty"`
	Values    []string `json:"values,omitempty"`
	TimeoutMs int64    `json:"timeoutMs,omitempty"`
	Wait      bool     `json:"wait,omitempty"`
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := New(cfg)
	t.Cleanup(srv.Close)
	return srv
}

// call drives one request through the server and decodes the JSON body.
func call(t *testing.T, srv *Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var doc map[string]any
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code, doc
}

func submitWait(t *testing.T, srv *Server, body submitBody) map[string]any {
	t.Helper()
	body.Wait = true
	code, doc := call(t, srv, "POST", "/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("wait-submit returned %d: %v", code, doc)
	}
	return doc
}

// resultKeys flattens the result shards of a finished job document into
// float64s (JSON numbers as decoded into any).
func resultKeys(t *testing.T, doc map[string]any) []float64 {
	t.Helper()
	result, ok := doc["result"].(map[string]any)
	if !ok {
		t.Fatalf("job doc has no result: %v", doc)
	}
	var flat []float64
	for _, sh := range result["shards"].([]any) {
		for _, k := range sh.([]any) {
			flat = append(flat, k.(float64))
		}
	}
	return flat
}

// TestServerSortsNumericKeys checks the end-to-end submit path for the
// numeric key types: the daemon's output is the sorted input, the first
// sight of a distribution is a plan-cache miss with real histogramming
// rounds, and stats travel on the job document.
func TestServerSortsNumericKeys(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	rng := rand.New(rand.NewSource(1))
	for _, kt := range []string{"int64", "uint64", "float64"} {
		var keys []any
		for i := 0; i < 3000; i++ {
			keys = append(keys, float64(rng.Intn(1_000_000)))
		}
		doc := submitWait(t, srv, submitBody{Tenant: "acme", Dataset: kt, KeyType: kt, Keys: keys})
		if doc["status"] != "done" {
			t.Fatalf("%s job: %v", kt, doc)
		}
		if doc["planCache"] != "miss" {
			t.Errorf("%s first sight reported planCache %q, want miss", kt, doc["planCache"])
		}
		stats, ok := doc["stats"].(map[string]any)
		if !ok || stats["n"].(float64) != 3000 {
			t.Fatalf("%s stats missing or wrong n: %v", kt, doc["stats"])
		}
		if stats["rounds"].(float64) < 1 {
			t.Errorf("%s miss reported %v rounds, want >= 1 (plan determination)", kt, stats["rounds"])
		}
		got := resultKeys(t, doc)
		want := make([]float64, 0, len(keys))
		for _, k := range keys {
			want = append(want, k.(float64))
		}
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Errorf("%s output is not the sorted input (%d keys)", kt, len(got))
		}
	}
}

// TestServerPlanCacheHit checks the recurring-tenant fast path: the
// same distribution resubmitted hits the cached plan and sorts with
// zero histogramming rounds, and the hit shows up in /metrics.
func TestServerPlanCacheHit(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	rng := rand.New(rand.NewSource(2))
	var keys []any
	for i := 0; i < 4000; i++ {
		keys = append(keys, float64(rng.Intn(1_000_000)))
	}
	first := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if first["status"] != "done" || first["planCache"] != "miss" {
		t.Fatalf("first job: %v", first)
	}
	second := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if second["status"] != "done" || second["planCache"] != "hit" {
		t.Fatalf("second job reported planCache %q, want hit", second["planCache"])
	}
	if rounds := second["stats"].(map[string]any)["rounds"].(float64); rounds != 0 {
		t.Errorf("plan-cache hit sorted with %v rounds, want 0", rounds)
	}
	// The cache is tenant-scoped: another tenant's identical data must
	// not reuse acme's plan.
	other := submitWait(t, srv, submitBody{Tenant: "rival", KeyType: "int64", Keys: keys})
	if other["planCache"] != "miss" {
		t.Errorf("foreign tenant reported planCache %q, want miss", other["planCache"])
	}

	text := metricsText(t, srv)
	for _, want := range []string{
		"hssortd_plan_cache_hits_total 1",
		"hssortd_plan_cache_misses_total 2",
		"hssortd_last_sort_rounds{tenant=\"acme\"} 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerPlanDrift checks the staleness guard behind the plan cache:
// a fingerprint collision that hands drifted data a stale plan must
// re-histogram (Stats.Replanned), report "replanned", and evict the
// poisoned entry.
func TestServerPlanDrift(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	// Force every dataset onto one cache entry so the second, very
	// different distribution collides with the first's plan.
	srv.fingerprint = func(string, int, int, []uint64) uint64 { return 42 }

	rng := rand.New(rand.NewSource(3))
	var uniform, clustered []any
	for i := 0; i < 4000; i++ {
		uniform = append(uniform, float64(rng.Int63n(1<<40)))
		clustered = append(clustered, float64(1<<40+rng.Int63n(1000)))
	}
	first := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: uniform})
	if first["status"] != "done" || first["planCache"] != "miss" {
		t.Fatalf("first job: %v", first)
	}
	drifted := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: clustered})
	if drifted["status"] != "done" {
		t.Fatalf("drifted job: %v", drifted)
	}
	if drifted["planCache"] != "replanned" {
		t.Fatalf("drifted job reported planCache %q, want replanned", drifted["planCache"])
	}
	stats := drifted["stats"].(map[string]any)
	if stats["replanned"] != true || stats["rounds"].(float64) < 1 {
		t.Errorf("replanned run stats: %v", stats)
	}
	got := resultKeys(t, drifted)
	if !slices.IsSorted(got) || len(got) != 4000 {
		t.Errorf("replanned output wrong: %d keys, sorted=%v", len(got), slices.IsSorted(got))
	}
	// The poisoned entry was evicted: the drifted distribution plans
	// fresh on its next visit and hits on the one after.
	if doc := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: clustered}); doc["planCache"] != "miss" {
		t.Errorf("post-drift resubmit reported %q, want miss", doc["planCache"])
	}
	if doc := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: clustered}); doc["planCache"] != "hit" {
		t.Errorf("settled distribution reported %q, want hit", doc["planCache"])
	}
	if text := metricsText(t, srv); !strings.Contains(text, "hssortd_plan_replans_total 1") {
		t.Error("/metrics missing hssortd_plan_replans_total 1")
	}
}

// TestServerSortsBytesKeys checks the []byte key plane end to end
// (base64 keys over JSON, prefix-code engine underneath) plus rank
// queries against the sorted output.
func TestServerSortsBytesKeys(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	rng := rand.New(rand.NewSource(4))
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("url/%03d/%04d", rng.Intn(500), rng.Intn(10000))))
	}
	doc := submitWait(t, srv, submitBody{Tenant: "acme", Dataset: "urls", KeyType: "bytes", Keys: keys})
	if doc["status"] != "done" {
		t.Fatalf("bytes job: %v", doc)
	}
	var got [][]byte
	for _, sh := range doc["result"].(map[string]any)["shards"].([]any) {
		for _, k := range sh.([]any) {
			// JSON []byte travels base64; decode via the json package
			// to stay faithful to the wire format.
			var b []byte
			if err := json.Unmarshal([]byte(`"`+k.(string)+`"`), &b); err != nil {
				t.Fatal(err)
			}
			got = append(got, b)
		}
	}
	want := slices.Clone(keys)
	slices.SortFunc(want, bytes.Compare)
	if len(got) != len(want) {
		t.Fatalf("got %d keys back, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("output diverges from sorted input at %d: %q vs %q", i, got[i], want[i])
		}
	}

	probe := string(want[500])
	code, rankDoc := call(t, srv, "GET", "/v1/datasets/urls/rank?tenant=acme&key="+probe, nil)
	if code != http.StatusOK {
		t.Fatalf("rank query returned %d: %v", code, rankDoc)
	}
	if r := int64(rankDoc["rank"].(float64)); r < 1 || r > 500 {
		// rank counts keys strictly below the probe; duplicates below
		// index 500 pull it under 500.
		t.Errorf("rank %d out of range for the 500th smallest key", r)
	}
}

// TestServerSortsRecords checks the KV path: values ride along with
// their keys through the record engine.
func TestServerSortsRecords(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 4})
	rng := rand.New(rand.NewSource(5))
	var keys []any
	var vals []string
	for i := 0; i < 1500; i++ {
		k := rng.Intn(100000)
		keys = append(keys, float64(k))
		vals = append(vals, fmt.Sprintf("payload-of-%d", k))
	}
	doc := submitWait(t, srv, submitBody{Tenant: "acme", Dataset: "recs", KeyType: "int64", Keys: keys, Values: vals})
	if doc["status"] != "done" {
		t.Fatalf("record job: %v", doc)
	}
	result := doc["result"].(map[string]any)
	shards := result["shards"].([]any)
	values := result["values"].([]any)
	if len(values) != len(shards) {
		t.Fatalf("%d value shards for %d key shards", len(values), len(shards))
	}
	var n int
	var prev float64 = -1
	for r := range shards {
		ks := shards[r].([]any)
		vs := values[r].([]any)
		if len(ks) != len(vs) {
			t.Fatalf("shard %d: %d keys, %d values", r, len(ks), len(vs))
		}
		for i := range ks {
			k := ks[i].(float64)
			if k < prev {
				t.Fatalf("keys not globally sorted at shard %d index %d", r, i)
			}
			prev = k
			if want := fmt.Sprintf("payload-of-%d", int(k)); vs[i].(string) != want {
				t.Fatalf("value %q detached from key %v", vs[i], k)
			}
			n++
		}
	}
	if n != 1500 {
		t.Fatalf("%d records back, want 1500", n)
	}

	// Rank queries work against record datasets too.
	if code, _ := call(t, srv, "GET", "/v1/datasets/recs/rank?tenant=acme&key=0", nil); code != http.StatusOK {
		t.Errorf("rank on a record dataset returned %d", code)
	}
}

// TestServerAdmissionControl checks queue-full 429s: with one worker
// held at the gate and a one-slot queue, the third submission is
// refused with the typed quota error, counted in /metrics, and the held
// work still finishes.
func TestServerAdmissionControl(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2, QueueDepth: 1, Concurrency: 1, TenantConcurrency: 1})
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	// Registered after newTestServer, so it runs before srv.Close and a
	// failing test cannot deadlock the drain on a still-held job.
	t.Cleanup(openGate)
	srv.sched.testGate = func(*job) { <-gate }

	keys := []any{float64(3), float64(1), float64(2), float64(4)}
	code, first := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if code != http.StatusAccepted {
		t.Fatalf("first submit returned %d: %v", code, first)
	}
	waitForCond(t, func() bool { _, running := srv.sched.depth(); return running == 1 })
	if code, _ := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "acme", KeyType: "int64", Keys: keys}); code != http.StatusAccepted {
		t.Fatalf("second submit returned %d, want 202", code)
	}
	code, refused := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "burst", KeyType: "int64", Keys: keys})
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit returned %d, want 429", code)
	}
	if msg := refused["error"].(string); !strings.Contains(msg, "admission control") || !strings.Contains(msg, "1 of 1") {
		t.Errorf("429 error %q does not describe the queue state", msg)
	}
	// The refused job left no trace in the job table.
	if code, _ := call(t, srv, "GET", "/v1/jobs/j-00000003?tenant=burst", nil); code != http.StatusNotFound {
		t.Errorf("refused job is queryable (status %d)", code)
	}

	openGate()
	waitForCond(t, func() bool {
		q, r := srv.sched.depth()
		return q == 0 && r == 0
	})
	if code, doc := call(t, srv, "GET", "/v1/jobs/j-00000001?tenant=acme", nil); code != http.StatusOK || doc["status"] != "done" {
		t.Errorf("held job did not finish: %d %v", code, doc)
	}
	text := metricsText(t, srv)
	if !strings.Contains(text, "hssortd_rejected_total 1") {
		t.Error("/metrics missing hssortd_rejected_total 1")
	}
	if !strings.Contains(text, `hssortd_jobs_total{status="rejected",tenant="burst"} 1`) {
		t.Error("/metrics missing the rejected tenant row")
	}
}

// TestServerDeadline checks job deadlines: a job whose deadline expires
// while queued fails with the context error without touching an engine,
// and the engine pool keeps serving afterwards.
func TestServerDeadline(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2})
	// Hold every dequeued job until its own deadline has expired.
	srv.sched.testGate = func(j *job) {
		if j.ctx != nil {
			<-j.ctx.Done()
		}
	}
	keys := []any{float64(2), float64(1)}
	doc := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: keys, TimeoutMs: 5})
	if doc["status"] != "failed" {
		t.Fatalf("deadline job: %v", doc)
	}
	if msg := doc["error"].(string); !strings.Contains(msg, "context deadline exceeded") {
		t.Errorf("deadline job error %q, want the context error", msg)
	}
	if n := srv.engines.count(); n != 0 {
		t.Errorf("deadline-while-queued built %d engines, want 0", n)
	}

	// The gate releases undeadlined jobs immediately (ctx without a
	// deadline never fires)... so drop it before the follow-up.
	srv.sched.testGate = nil
	after := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if after["status"] != "done" {
		t.Fatalf("post-deadline job: %v", after)
	}
	if n := srv.engines.count(); n != 1 {
		t.Errorf("follow-up job built %d engines, want 1", n)
	}
}

// TestServerCancel checks DELETE /v1/jobs/{id}: a canceled queued job
// reports canceled with the context error and never reaches an engine;
// the pool serves the tenant's next job.
func TestServerCancel(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2, Concurrency: 1, TenantConcurrency: 1, QueueDepth: 8})
	gate := make(chan struct{})
	var once sync.Once
	openGate := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(openGate)
	srv.sched.testGate = func(*job) { <-gate }
	keys := []any{float64(9), float64(7), float64(8)}
	if code, _ := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "acme", KeyType: "int64", Keys: keys}); code != http.StatusAccepted {
		t.Fatal("first submit refused")
	}
	waitForCond(t, func() bool { _, running := srv.sched.depth(); return running == 1 })
	code, queued := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if code != http.StatusAccepted {
		t.Fatal("second submit refused")
	}
	id := queued["id"].(string)

	if code, doc := call(t, srv, "DELETE", "/v1/jobs/"+id+"?tenant=acme", nil); code != http.StatusOK || doc["status"] == "done" {
		t.Fatalf("cancel returned %d %v", code, doc)
	}
	openGate()
	waitForCond(t, func() bool {
		_, doc := call(t, srv, "GET", "/v1/jobs/"+id+"?tenant=acme", nil)
		return doc["status"] == "canceled"
	})
	_, doc := call(t, srv, "GET", "/v1/jobs/"+id+"?tenant=acme", nil)
	if msg := doc["error"].(string); !strings.Contains(msg, "context canceled") {
		t.Errorf("canceled job error %q", msg)
	}

	after := submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: keys})
	if after["status"] != "done" {
		t.Fatalf("post-cancel job: %v", after)
	}
}

// TestServerBadRequests checks the error taxonomy of malformed
// submissions — in particular the PR 4 convention that enum-ish parse
// errors list the valid values.
func TestServerBadRequests(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2, MaxKeys: 10})
	cases := []struct {
		name string
		body submitBody
		code int
		want string
	}{
		{"missing tenant", submitBody{KeyType: "int64", Keys: []any{1.0}}, 400, "tenant is required"},
		{"missing key type", submitBody{Tenant: "t", Keys: []any{1.0}}, 400, "keyType is required (valid values: bytes, float64, int64, uint64)"},
		{"unknown key type", submitBody{Tenant: "t", KeyType: "int32", Keys: []any{1.0}}, 400, `unknown key type "int32" (valid values: bytes, float64, int64, uint64)`},
		{"values with bytes", submitBody{Tenant: "t", KeyType: "bytes", Keys: [][]byte{[]byte("a")}, Values: []string{"v"}}, 400, "values require an ordered key type (valid values: float64, int64, uint64)"},
		{"values mismatch", submitBody{Tenant: "t", KeyType: "int64", Keys: []any{1.0, 2.0}, Values: []string{"v"}}, 400, "1 values for 2 keys"},
		{"keys not an array", submitBody{Tenant: "t", KeyType: "int64", Keys: "nope"}, 400, "keys:"},
		{"too many keys", submitBody{Tenant: "t", KeyType: "int64", Keys: []any{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0}}, 413, "exceeds the 10-key job limit"},
	}
	for _, tc := range cases {
		code, doc := call(t, srv, "POST", "/v1/jobs", tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.code, doc)
			continue
		}
		if msg, _ := doc["error"].(string); !strings.Contains(msg, tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, msg, tc.want)
		}
	}
}

// TestServerTenantIsolation checks that job ids and datasets are
// tenant-scoped: a foreign tenant probing them sees a uniform 404.
func TestServerTenantIsolation(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2})
	doc := submitWait(t, srv, submitBody{Tenant: "acme", Dataset: "d", KeyType: "int64", Keys: []any{2.0, 1.0, 3.0}})
	id := doc["id"].(string)

	if code, _ := call(t, srv, "GET", "/v1/jobs/"+id+"?tenant=acme", nil); code != http.StatusOK {
		t.Fatalf("owner lookup returned %d", code)
	}
	for _, probe := range []string{"/v1/jobs/" + id + "?tenant=rival", "/v1/jobs/" + id, "/v1/jobs/j-99999999?tenant=acme"} {
		code, errDoc := call(t, srv, "GET", probe, nil)
		if code != http.StatusNotFound {
			t.Errorf("GET %s returned %d, want uniform 404", probe, code)
		}
		if msg, _ := errDoc["error"].(string); !strings.Contains(msg, "no job") {
			t.Errorf("GET %s error %q", probe, msg)
		}
	}
	if code, _ := call(t, srv, "GET", "/v1/datasets/d/rank?tenant=rival&key=1", nil); code != http.StatusNotFound {
		t.Errorf("foreign rank query returned %d, want 404", code)
	}
	if code, _ := call(t, srv, "GET", "/v1/datasets/d/rank?tenant=acme&key=zzz", nil); code != http.StatusBadRequest {
		t.Errorf("unparseable rank key returned %d, want 400", code)
	}
	if code, _ := call(t, srv, "GET", "/v1/datasets/d/rank?tenant=acme", nil); code != http.StatusBadRequest {
		t.Errorf("rank without key returned %d, want 400", code)
	}
}

// TestServerDrain checks the shutdown contract end to end: Drain stops
// admission (healthz flips, submissions get 503), finishes admitted
// jobs, tears down every engine, and leaks no goroutines.
func TestServerDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{Shards: 2, Concurrency: 2})

	// Build up real state first: three engine shapes and some jobs.
	submitWait(t, srv, submitBody{Tenant: "a", KeyType: "int64", Keys: []any{3.0, 1.0, 2.0}})
	submitWait(t, srv, submitBody{Tenant: "a", KeyType: "bytes", Keys: [][]byte{[]byte("b"), []byte("a")}})
	submitWait(t, srv, submitBody{Tenant: "b", KeyType: "int64", Keys: []any{5.0, 4.0}, Values: []string{"x", "y"}})
	if n := srv.engines.count(); n < 3 {
		t.Fatalf("expected 3 engine shapes, pool built %d", n)
	}

	if code, _ := call(t, srv, "GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz before drain: %d", code)
	}
	srv.Close()
	if code, _ := call(t, srv, "GET", "/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain returned %d, want 503", code)
	}
	code, doc := call(t, srv, "POST", "/v1/jobs", submitBody{Tenant: "a", KeyType: "int64", Keys: []any{1.0}})
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain returned %d: %v", code, doc)
	}
	// Finished jobs stay queryable through the drain.
	if code, doc := call(t, srv, "GET", "/v1/jobs/j-00000001?tenant=a", nil); code != http.StatusOK || doc["status"] != "done" {
		t.Errorf("drained server lost job history: %d %v", code, doc)
	}
	if text := metricsText(t, srv); !strings.Contains(text, "hssortd_up 0") {
		t.Error("/metrics after drain missing hssortd_up 0")
	}

	// Engine ranks, scheduler workers and transports must all be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerMetricsShape spot-checks the Prometheus exposition: every
// documented metric name appears with HELP/TYPE, and per-tenant label
// rows are present and deterministic.
func TestServerMetricsShape(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 2})
	submitWait(t, srv, submitBody{Tenant: "acme", KeyType: "int64", Keys: []any{2.0, 1.0}})
	text := metricsText(t, srv)
	for _, name := range []string{
		"hssortd_up", "hssortd_queue_depth", "hssortd_jobs_running",
		"hssortd_engines_built", "hssortd_plan_cache_entries",
		"hssortd_jobs_total", "hssortd_rejected_total",
		"hssortd_plan_cache_hits_total", "hssortd_plan_cache_misses_total",
		"hssortd_plan_replans_total", "hssortd_histogram_rounds_total",
		"hssortd_keys_sorted_total", "hssortd_sort_seconds_total",
		"hssortd_exchange_bytes_total", "hssortd_splitter_bytes_total",
		"hssortd_last_sort_rounds", "hssortd_last_achieved_epsilon",
	} {
		if !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing TYPE line for %s", name)
		}
	}
	for _, row := range []string{
		`hssortd_jobs_total{status="done",tenant="acme"} 1`,
		"hssortd_engines_built 1",
		"hssortd_keys_sorted_total 2",
	} {
		if !strings.Contains(text, row) {
			t.Errorf("/metrics missing row %q", row)
		}
	}
}

func metricsText(t *testing.T, srv *Server) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics returned %d", rec.Code)
	}
	return rec.Body.String()
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
