// Approximate rank queries (§3.4): the representative-sample oracle
// answers "what is the global rank of key k?" over sharded data to
// within Nε/p without scanning the data — the paper offers it as a
// standalone primitive for repeated rank/quantile queries in parallel
// data systems (e.g. percentile monitoring over partitioned logs).
//
// This example estimates latency percentiles over 32 shards of a
// log-normal "request latency" dataset and checks them against the
// exact values.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"slices"

	"hssort"
)

func main() {
	const procs = 32
	const perProc = 100_000
	const eps = 0.05

	// Latencies in microseconds, log-normal: median ~1ms, long tail.
	shards := make([][]int64, procs)
	var all []int64
	for r := range shards {
		rng := rand.New(rand.NewPCG(uint64(r), 2024))
		shards[r] = make([]int64, perProc)
		for i := range shards[r] {
			shards[r][i] = int64(1000 * math.Exp(rng.NormFloat64()*0.8))
		}
		all = append(all, shards[r]...)
	}
	slices.Sort(all)
	n := len(all)

	// Probe candidate latency thresholds; the oracle returns their
	// approximate global ranks, i.e. how many requests were faster.
	probes := []int64{500, 1000, 2000, 5000, 10000, 20000}
	ranks, err := hssort.ApproxRanks(shards, probes, eps, 1)
	if err != nil {
		log.Fatal(err)
	}

	bound := int64(eps * float64(n) / procs)
	fmt.Printf("latency dataset: %d samples over %d shards; rank error bound %d\n\n", n, procs, bound)
	fmt.Printf("%12s %14s %14s %10s\n", "latency (µs)", "approx pct", "exact pct", "rank err")
	for i, q := range probes {
		exact := int64(slices.Index(all, q))
		if exact < 0 {
			// q not present: use lower bound position.
			exact = int64(len(all))
			for j, v := range all {
				if v >= q {
					exact = int64(j)
					break
				}
			}
		}
		errRank := ranks[i] - exact
		if errRank < 0 {
			errRank = -errRank
		}
		fmt.Printf("%12d %13.2f%% %13.2f%% %10d\n",
			q, 100*float64(ranks[i])/float64(n), 100*float64(exact)/float64(n), errRank)
		if errRank > 3*bound {
			log.Fatalf("rank error %d far beyond the theorem bound %d", errRank, bound)
		}
	}
	fmt.Println("\nEach query cost one tiny reduction over √(2p ln p)/ε-key summaries —")
	fmt.Println("the shards themselves were never rescanned.")
}
