package codes

// The local-sort kernels: an in-place byte-wise MSD radix sort
// (american-flag permutation) over code arrays, hybridized with insertion
// sort below a cutoff — the comparator-free replacement for
// slices.SortFunc on every rank's local-sort phase. The tandem variant
// drags an arbitrary payload array through the same permutation, which is
// how payload-carrying records (hssort.KV) ride the code plane:
// decorate with codes, radix-sort codes and records together, and the
// records never see a comparator.
//
// Neither kernel is stable; neither is slices.SortFunc (pdqsort), so the
// pipelines' ordering guarantees are unchanged: equal keys have equal
// codes, and every downstream tie-break (bucket cuts, merge order) is a
// function of the code alone.

// insertionCutoff is the segment length below which MSD recursion hands
// off to insertion sort. 48 keys ≈ one to two cache lines of codes —
// small enough that branchy insertion beats another counting pass.
const insertionCutoff = 48

// topShift is the bit offset of the most significant radix byte.
const topShift = 56

// Sort sorts a code array in place in ascending order.
func Sort(cs []Code) {
	msd(cs, topShift)
}

// msd sorts cs by the byte at the given shift, then recurses into each
// byte bucket. Levels on which every code shares the same byte — common
// when the encoded key range is narrow — are skipped without permuting.
func msd(cs []Code, shift int) {
	if len(cs) <= insertionCutoff {
		insertion(cs)
		return
	}
	var counts [256]int
	for {
		for _, c := range cs {
			counts[uint8(c>>shift)]++
		}
		if counts[uint8(cs[0]>>shift)] == len(cs) {
			// Degenerate level: one bucket holds everything.
			if shift == 0 {
				return
			}
			counts[uint8(cs[0]>>shift)] = 0
			shift -= 8
			continue
		}
		break
	}
	var next, end [256]int
	sum := 0
	for b := range next {
		next[b] = sum
		sum += counts[b]
		end[b] = sum
	}
	// American-flag permutation: each swap moves one code into its final
	// byte bucket, so the loop does at most n swaps overall.
	for b := 0; b < 256; b++ {
		for next[b] < end[b] {
			i := next[b]
			d := uint8(cs[i] >> shift)
			if d == uint8(b) {
				next[b]++
			} else {
				cs[i], cs[next[d]] = cs[next[d]], cs[i]
				next[d]++
			}
		}
	}
	if shift == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if seg := cs[end[b]-counts[b] : end[b]]; len(seg) > 1 {
			msd(seg, shift-8)
		}
	}
}

// insertion is the small-segment base case.
func insertion(cs []Code) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && cs[j] > c {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// SortByCode sorts elems ascending by code(e) and returns the parallel
// sorted code array — the decorate-sort-undecorate entry point of the
// compute plane. The extractor must be order-preserving for the
// caller's comparator: cmp(a, b) < 0 ⇔ code(a) < code(b) and
// cmp(a, b) == 0 ⇔ code(a) == code(b). A prefix extractor satisfies
// only the weaker cmp(a, b) < 0 ⟹ code(a) <= code(b); the result is
// then sorted up to equal-code spans and the caller must follow with
// TieBreak/TieBreakPar to restore the full comparator order.
//
// On the pure plane (elems is itself a code array) no decoration
// happens: the slice is radix-sorted in place and returned as its own
// code array.
func SortByCode[E any](elems []E, code func(E) uint64) []Code {
	if cs, ok := any(elems).([]Code); ok {
		Sort(cs)
		return cs
	}
	cs := make([]Code, len(elems))
	for i, e := range elems {
		cs[i] = Code(code(e))
	}
	msdTandem(cs, elems, topShift)
	return cs
}

// msdTandem is msd with a payload array permuted in lockstep.
func msdTandem[E any](cs []Code, pay []E, shift int) {
	if len(cs) <= insertionCutoff {
		insertionTandem(cs, pay)
		return
	}
	var counts [256]int
	for {
		for _, c := range cs {
			counts[uint8(c>>shift)]++
		}
		if counts[uint8(cs[0]>>shift)] == len(cs) {
			if shift == 0 {
				return
			}
			counts[uint8(cs[0]>>shift)] = 0
			shift -= 8
			continue
		}
		break
	}
	var next, end [256]int
	sum := 0
	for b := range next {
		next[b] = sum
		sum += counts[b]
		end[b] = sum
	}
	for b := 0; b < 256; b++ {
		for next[b] < end[b] {
			i := next[b]
			d := uint8(cs[i] >> shift)
			if d == uint8(b) {
				next[b]++
			} else {
				j := next[d]
				cs[i], cs[j] = cs[j], cs[i]
				pay[i], pay[j] = pay[j], pay[i]
				next[d]++
			}
		}
	}
	if shift == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if lo := end[b] - counts[b]; end[b]-lo > 1 {
			msdTandem(cs[lo:end[b]], pay[lo:end[b]], shift-8)
		}
	}
}

// insertionTandem is insertion with the payload moved in lockstep.
func insertionTandem[E any](cs []Code, pay []E) {
	for i := 1; i < len(cs); i++ {
		c, p := cs[i], pay[i]
		j := i - 1
		for j >= 0 && cs[j] > c {
			cs[j+1], pay[j+1] = cs[j], pay[j]
			j--
		}
		cs[j+1], pay[j+1] = c, p
	}
}
