// Service usage over the wire: driving the hssortd daemon through its
// HTTP API instead of linking the library.
//
// Two tenants submit concurrent sort jobs — one sorts int64 telemetry,
// one sorts byte-string URL keys — and every response is checked
// against a locally sorted copy of the same input. One tenant then
// resubmits its recurring distribution and observes the daemon's plan
// cache at work: the repeat sorts with zero histogramming rounds
// (planCache "hit"), the operation-phase payoff the in-process
// examples/service demo shows with SortWithPlan, now behind a network
// API with per-tenant scheduling, quotas and a /metrics surface.
//
// By default the example self-hosts a daemon in-process and exercises
// it over a real localhost socket. Against an already-running daemon:
//
//	go run ./examples/serviceclient -addr localhost:8080
//
// -flood N switches to an admission-control probe: N oversized async
// submissions race into the daemon and the example reports how many
// were refused with 429 — run it against a daemon started with a small
// -queue to watch load shedding (scripts/serve_smoke.sh does).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"hssort"
	"hssort/internal/server"
)

type jobDoc struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Error     string `json:"error"`
	PlanCache string `json:"planCache"`
	Stats     *struct {
		Rounds    int     `json:"rounds"`
		Imbalance float64 `json:"imbalance"`
	} `json:"stats"`
	Result json.RawMessage `json:"result"`
}

type client struct {
	base string
	http *http.Client
}

func (c *client) submit(body any) (int, *jobDoc, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var doc jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &doc, nil
}

// sortRemote submits one wait-mode job and fails loudly on anything but
// a finished sort.
func (c *client) sortRemote(tenant, dataset, keyType string, keys any, extra map[string]any) *jobDoc {
	body := map[string]any{
		"tenant": tenant, "dataset": dataset, "keyType": keyType,
		"keys": keys, "wait": true,
	}
	for k, v := range extra {
		body[k] = v
	}
	code, doc, err := c.submit(body)
	if err != nil {
		log.Fatalf("%s/%s: %v", tenant, dataset, err)
	}
	if code != http.StatusOK || doc.Status != "done" {
		log.Fatalf("%s/%s: HTTP %d, status %q, error %q", tenant, dataset, code, doc.Status, doc.Error)
	}
	return doc
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("serviceclient: ")
	addr := flag.String("addr", "", "daemon address (host:port); empty self-hosts a daemon in-process")
	flood := flag.Int("flood", 0, "submit this many async jobs and report the 429 count instead of the sort demo")
	flag.Parse()

	if *addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(server.Config{Shards: 4, Transport: hssort.TransportInproc})
		go http.Serve(ln, srv)
		defer srv.Close()
		*addr = ln.Addr().String()
		fmt.Printf("self-hosted hssortd on %s\n", *addr)
	}
	c := &client{base: "http://" + *addr, http: &http.Client{Timeout: 2 * time.Minute}}

	if *flood > 0 {
		runFlood(c, *flood)
		return
	}

	// --- Two tenants, concurrent jobs, outputs checked locally. -------
	type check struct {
		tenant, dataset string
		verify          func(*jobDoc) error
	}
	var checks []check
	for round := 0; round < 2; round++ {
		for _, tenant := range []string{"metrics", "search"} {
			seed := uint64(round*2 + len(tenant))
			name := fmt.Sprintf("ints-%d", round)
			keys := intKeys(20_000, seed)
			checks = append(checks, check{tenant, name, verifyInts(c, tenant, name, keys)})
			bname := fmt.Sprintf("urls-%d", round)
			bkeys := urlKeys(10_000, seed)
			checks = append(checks, check{tenant, bname, verifyBytes(c, tenant, bname, bkeys)})
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(checks))
	for _, ck := range checks {
		wg.Add(1)
		go func(ck check) {
			defer wg.Done()
			if err := ck.verify(nil); err != nil {
				errc <- fmt.Errorf("%s/%s: %w", ck.tenant, ck.dataset, err)
			}
		}(ck)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		log.Fatal(err)
	}
	fmt.Printf("%d concurrent jobs across 2 tenants: every output matched the locally sorted input\n", len(checks))

	// --- The recurring tenant hits the plan cache. --------------------
	keys := intKeys(20_000, 99)
	first := c.sortRemote("metrics", "recurring", "int64", keys, nil)
	again := c.sortRemote("metrics", "recurring", "int64", keys, nil)
	fmt.Printf("recurring dataset: first sort planCache=%s rounds=%d, repeat planCache=%s rounds=%d\n",
		first.PlanCache, first.Stats.Rounds, again.PlanCache, again.Stats.Rounds)
	if again.PlanCache != "hit" || again.Stats.Rounds != 0 {
		log.Fatalf("expected the repeat to reuse the cached plan with 0 rounds")
	}

	// --- Rank query against the sorted dataset. -----------------------
	var rank struct {
		Rank       int64   `json:"rank"`
		N          int64   `json:"n"`
		Percentile float64 `json:"percentile"`
	}
	resp, err := c.http.Get(c.base + "/v1/datasets/recurring/rank?tenant=metrics&key=500000")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rank); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("rank(500000) in recurring: %d of %d (p%.0f)\n", rank.Rank, rank.N, rank.Percentile*100)

	// --- A taste of /metrics. -----------------------------------------
	resp, err = c.http.Get(c.base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "hssortd_plan_cache_") || strings.HasPrefix(line, "hssortd_keys_sorted_total") {
			fmt.Println(line)
		}
	}
}

// runFlood submits n async jobs as fast as possible and reports how
// admission control shed load.
func runFlood(c *client, n int) {
	keys := intKeys(50_000, 7)
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, refused := 0, 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, err := c.submit(map[string]any{
				"tenant": fmt.Sprintf("flood-%d", i%2), "keyType": "int64", "keys": keys,
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				log.Fatal(err)
			case code == http.StatusAccepted:
				accepted++
			case code == http.StatusTooManyRequests:
				refused++
			default:
				log.Fatalf("flood submission %d: HTTP %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("flood: %d accepted, %d refused with 429\n", accepted, refused)
	if accepted == 0 {
		log.Fatal("admission control refused everything; queue too small for the flood")
	}
	os.Exit(0)
}

func intKeys(n int, seed uint64) []int64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	keys := make([]int64, n)
	for i := range keys {
		// Mildly skewed: half uniform, half clustered low — enough
		// structure for the histogramming to have something to learn.
		if i%2 == 0 {
			keys[i] = rng.Int64N(1_000_000)
		} else {
			keys[i] = rng.Int64N(50_000)
		}
	}
	return keys
}

func urlKeys(n int, seed uint64) [][]byte {
	rng := rand.New(rand.NewPCG(seed^0xabcd, seed))
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("https://host-%02d.example/%x", rng.IntN(40), rng.Uint64()))
	}
	return keys
}

func verifyInts(c *client, tenant, dataset string, keys []int64) func(*jobDoc) error {
	return func(*jobDoc) error {
		doc := c.sortRemote(tenant, dataset, "int64", keys, nil)
		var result struct {
			Shards [][]int64 `json:"shards"`
		}
		if err := json.Unmarshal(doc.Result, &result); err != nil {
			return err
		}
		var got []int64
		for _, sh := range result.Shards {
			got = append(got, sh...)
		}
		want := slices.Clone(keys)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			return fmt.Errorf("daemon output diverges from the locally sorted input (%d keys)", len(got))
		}
		return nil
	}
}

func verifyBytes(c *client, tenant, dataset string, keys [][]byte) func(*jobDoc) error {
	return func(*jobDoc) error {
		doc := c.sortRemote(tenant, dataset, "bytes", keys, nil)
		var result struct {
			Shards [][][]byte `json:"shards"`
		}
		if err := json.Unmarshal(doc.Result, &result); err != nil {
			return err
		}
		var got [][]byte
		for _, sh := range result.Shards {
			got = append(got, sh...)
		}
		want := slices.Clone(keys)
		slices.SortFunc(want, bytes.Compare)
		if len(got) != len(want) {
			return fmt.Errorf("%d keys back, want %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				return fmt.Errorf("output diverges at index %d", i)
			}
		}
		return nil
	}
}
