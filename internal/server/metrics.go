package server

import (
	"fmt"
	"io"
	"slices"
	"sync"

	"hssort"
)

// metrics is the daemon's Prometheus registry: counters aggregated from
// every finished job's hssort.Stats plus scheduler gauges, rendered in
// the Prometheus text exposition format by writeTo. A hand-rolled
// registry keeps the daemon dependency-free; the surface is the
// stable-name contract documented in docs/API.md.
type metrics struct {
	mu sync.Mutex

	rejected    int64 // admissions refused (429)
	planHits    int64
	planMisses  int64
	planReplans int64

	rounds        int64   // histogram rounds, summed over jobs (plan determination included)
	keysSorted    int64   // keys through the engines
	sortSeconds   float64 // sum of per-job critical-path Stats.Total()
	exchangeBytes int64
	splitterBytes int64

	jobs       map[string]map[string]int64 // tenant -> status -> count
	lastRounds map[string]int64            // tenant -> rounds of its most recent sort
	lastEps    map[string]float64          // tenant -> achieved epsilon of its most recent sort
}

func newMetrics() *metrics {
	return &metrics{
		jobs:       make(map[string]map[string]int64),
		lastRounds: make(map[string]int64),
		lastEps:    make(map[string]float64),
	}
}

// jobFinished folds one finished job into the aggregates. status is the
// terminal job status ("done", "failed" or "canceled"); outcome the
// plan-cache verdict of the run (planNone for jobs that never sorted).
func (m *metrics) jobFinished(tenant, status string, stats hssort.Stats, outcome planOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.jobs[tenant]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.jobs[tenant] = byStatus
	}
	byStatus[status]++
	switch outcome {
	case planHit:
		m.planHits++
	case planMiss:
		m.planMisses++
	case planReplanned:
		m.planHits++ // a replanned run was a cache hit whose staleness guard fired
		m.planReplans++
	}
	if status != "done" {
		return
	}
	m.rounds += int64(stats.Rounds)
	m.keysSorted += stats.N
	m.sortSeconds += stats.Total().Seconds()
	m.exchangeBytes += stats.ExchangeBytes
	m.splitterBytes += stats.SplitterBytes
	m.lastRounds[tenant] = int64(stats.Rounds)
	if stats.Imbalance > 0 {
		m.lastEps[tenant] = stats.Imbalance - 1
	}
}

// rejected429 counts one admission refusal.
func (m *metrics) rejected429(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
	byStatus := m.jobs[tenant]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.jobs[tenant] = byStatus
	}
	byStatus["rejected"]++
}

// gauges are the instantaneous values sampled at scrape time.
type gauges struct {
	queued       int
	running      int
	enginesBuilt int
	planEntries  int
	draining     bool
}

// writeTo renders the registry in the Prometheus text format. Label
// sets are emitted in sorted order so scrapes are deterministic.
func (m *metrics) writeTo(w io.Writer, g gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	up := 1
	if g.draining {
		up = 0
	}
	head := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	counter := func(name, help string, v any) {
		head(name, help, "counter")
		fmt.Fprintf(w, "%s %v\n", name, v)
	}
	gauge := func(name, help string, v any) {
		head(name, help, "gauge")
		fmt.Fprintf(w, "%s %v\n", name, v)
	}
	labeled := func(name, help, typ string, rows []string) {
		head(name, help, typ)
		slices.Sort(rows)
		for _, r := range rows {
			fmt.Fprintln(w, r)
		}
	}

	gauge("hssortd_up", "1 while serving, 0 while draining.", up)
	gauge("hssortd_queue_depth", "Jobs waiting in the admission queue.", g.queued)
	gauge("hssortd_jobs_running", "Jobs currently sorting on an engine.", g.running)
	gauge("hssortd_engines_built", "Warm Sorter engines constructed by the pool.", g.enginesBuilt)
	gauge("hssortd_plan_cache_entries", "Splitter plans held by the plan cache.", g.planEntries)

	var jobRows []string
	for tenant, byStatus := range m.jobs {
		for status, n := range byStatus {
			jobRows = append(jobRows, fmt.Sprintf("hssortd_jobs_total{status=%q,tenant=%q} %d", status, tenant, n))
		}
	}
	labeled("hssortd_jobs_total", "Finished jobs by tenant and terminal status.", "counter", jobRows)
	counter("hssortd_rejected_total", "Submissions refused by admission control (HTTP 429).", m.rejected)
	counter("hssortd_plan_cache_hits_total", "Jobs that reused a cached splitter plan.", m.planHits)
	counter("hssortd_plan_cache_misses_total", "Jobs that had to determine fresh splitters.", m.planMisses)
	counter("hssortd_plan_replans_total", "Cached plans the staleness guard re-histogrammed (Stats.Replanned).", m.planReplans)
	counter("hssortd_histogram_rounds_total", "Histogramming rounds run, summed over jobs.", m.rounds)
	counter("hssortd_keys_sorted_total", "Keys sorted, summed over jobs.", m.keysSorted)
	counter("hssortd_sort_seconds_total", "Critical-path sort time (Stats.Total), summed over jobs.", m.sortSeconds)
	counter("hssortd_exchange_bytes_total", "Exchange-phase bytes (Stats.ExchangeBytes), summed over jobs.", m.exchangeBytes)
	counter("hssortd_splitter_bytes_total", "Splitter-phase bytes (Stats.SplitterBytes), summed over jobs.", m.splitterBytes)

	var roundRows []string
	for tenant, r := range m.lastRounds {
		roundRows = append(roundRows, fmt.Sprintf("hssortd_last_sort_rounds{tenant=%q} %d", tenant, r))
	}
	labeled("hssortd_last_sort_rounds", "Histogramming rounds of each tenant's most recent sort (0 = plan reused).", "gauge", roundRows)
	var epsRows []string
	for tenant, e := range m.lastEps {
		epsRows = append(epsRows, fmt.Sprintf("hssortd_last_achieved_epsilon{tenant=%q} %g", tenant, e))
	}
	labeled("hssortd_last_achieved_epsilon", "Achieved load-imbalance epsilon (Imbalance-1) of each tenant's most recent sort.", "gauge", epsRows)
}
