package nodesort

import (
	"cmp"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func trySort(shards [][]int64, opt Options[int64]) ([][]int64, core.Stats, *comm.World, error) {
	p := len(shards)
	outs := make([][]int64, p)
	var stats core.Stats
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		out, st, err := Sort(c, shards[c.Rank()], opt)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = st
		}
		return nil
	})
	return outs, stats, w, err
}

func clone(shards [][]int64) [][]int64 {
	out := make([][]int64, len(shards))
	for i := range shards {
		out[i] = slices.Clone(shards[i])
	}
	return out
}

func checkGloballySorted(t *testing.T, shards, outs [][]int64) {
	t.Helper()
	var want, got []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	for r, out := range outs {
		if !slices.IsSorted(out) {
			t.Fatalf("rank %d output not sorted", r)
		}
		got = append(got, out...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("output not the sorted permutation of input")
	}
}

func TestNodeSortConfigurations(t *testing.T) {
	const perRank = 800
	for _, cfg := range []struct{ p, c int }{
		{8, 2}, {8, 4}, {8, 8}, {6, 3}, {4, 1}, {12, 4},
	} {
		spec := dist.Spec{Kind: dist.Uniform}
		shards := spec.Shards(perRank, cfg.p, 3)
		outs, stats, _, err := trySort(clone(shards), Options[int64]{
			Cmp: icmp, CoresPerNode: cfg.c, Epsilon: 0.05,
		})
		if err != nil {
			t.Fatalf("p=%d c=%d: %v", cfg.p, cfg.c, err)
		}
		checkGloballySorted(t, shards, outs)
		// Exact within-node quantiles + 5% node-level threshold.
		if stats.Imbalance > 1.06 {
			t.Errorf("p=%d c=%d: imbalance %.4f", cfg.p, cfg.c, stats.Imbalance)
		}
		if stats.Buckets != cfg.p/cfg.c {
			t.Errorf("p=%d c=%d: buckets %d", cfg.p, cfg.c, stats.Buckets)
		}
	}
}

func TestNodeSortSkewed(t *testing.T) {
	const p, c, perRank = 8, 4, 1000
	for _, kind := range []dist.Kind{dist.Exponential, dist.Staircase, dist.PowerSkew} {
		spec := dist.Spec{Kind: kind}
		shards := spec.Shards(perRank, p, 7)
		outs, _, _, err := trySort(clone(shards), Options[int64]{Cmp: icmp, CoresPerNode: c})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		checkGloballySorted(t, shards, outs)
	}
}

// TestNodeSortReducesMessages is the §6.1 claim: combining node-level
// messages slashes the message count of the data-movement phase.
func TestNodeSortReducesMessages(t *testing.T) {
	const p, c, perRank = 16, 4, 500
	spec := dist.Spec{Kind: dist.Uniform}

	_, _, flatWorld, err := func() ([][]int64, core.Stats, *comm.World, error) {
		shards := spec.Shards(perRank, p, 5)
		outs := make([][]int64, p)
		var stats core.Stats
		w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
		err := w.Run(func(cc *comm.Comm) error {
			out, st, err := core.Sort(cc, shards[cc.Rank()], core.Options[int64]{Cmp: icmp, Epsilon: 0.05})
			outs[cc.Rank()] = out
			if cc.Rank() == 0 {
				stats = st
			}
			return err
		})
		return outs, stats, w, err
	}()
	if err != nil {
		t.Fatal(err)
	}

	shards := spec.Shards(perRank, p, 5)
	_, _, nodeWorld, err := trySort(shards, Options[int64]{Cmp: icmp, CoresPerNode: c, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	flatMsgs := flatWorld.TotalCounters().MsgsSent
	nodeMsgs := nodeWorld.TotalCounters().MsgsSent
	if nodeMsgs >= flatMsgs {
		t.Errorf("node-level sort sent %d messages, flat sent %d — combining should win", nodeMsgs, flatMsgs)
	}
}

func TestNodeSortValidation(t *testing.T) {
	if _, _, _, err := trySort([][]int64{{1}, {2}}, Options[int64]{CoresPerNode: 2}); err == nil {
		t.Error("missing Cmp accepted")
	}
	if _, _, _, err := trySort([][]int64{{1}, {2}}, Options[int64]{Cmp: icmp}); err == nil {
		t.Error("CoresPerNode=0 accepted")
	}
	if _, _, _, err := trySort([][]int64{{1}, {2}, {3}}, Options[int64]{Cmp: icmp, CoresPerNode: 2}); err == nil {
		t.Error("p=3, c=2 accepted")
	}
}

func TestNodeSortEmpty(t *testing.T) {
	outs, _, _, err := trySort([][]int64{{}, {}, {}, {}}, Options[int64]{Cmp: icmp, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if len(o) != 0 {
			t.Errorf("empty input produced %v", o)
		}
	}
}

func TestNodeSortProperty(t *testing.T) {
	f := func(seed uint32, cfgRaw uint8) bool {
		cfgs := []struct{ p, c int }{{4, 2}, {6, 2}, {8, 4}, {9, 3}, {4, 4}}
		cfg := cfgs[int(cfgRaw)%len(cfgs)]
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 24}
		shards := make([][]int64, cfg.p)
		for r := range shards {
			shards[r] = spec.Shard(int(seed%300)+30, r, cfg.p, uint64(seed))
		}
		outs, _, _, err := trySort(clone(shards), Options[int64]{
			Cmp: icmp, CoresPerNode: cfg.c, Epsilon: 0.1, Seed: uint64(seed) + 1,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		var want, got []int64
		for _, s := range shards {
			want = append(want, s...)
		}
		slices.Sort(want)
		for _, o := range outs {
			if !slices.IsSorted(o) {
				return false
			}
			got = append(got, o...)
		}
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
