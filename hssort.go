// Package hssort is a Go reproduction of "Histogram Sort with Sampling"
// (Harsh; Kale, Solomonik — SPAA 2019 / UIUC 2017): a distributed
// splitter-based parallel sorting library with provable (1+ε) load
// balance, plus every baseline the paper evaluates against.
//
// The library simulates a distributed-memory machine: Sort spawns one
// goroutine per processor, all communication flows through an explicit
// message-passing runtime with byte accounting, and the returned Stats
// report the BSP quantities the paper measures (per-phase critical-path
// times, communication volume, histogramming rounds, sample sizes, and
// the achieved load imbalance).
//
// Quick start:
//
//	shards := ...           // [][]int64: one slice per simulated processor
//	cfg := hssort.Config{Procs: len(shards), Epsilon: 0.05}
//	out, stats, err := hssort.Sort(cfg, shards)
//
// out[i] is processor i's partition of the global sorted order;
// stats.Imbalance ≤ 1+ε with high probability.
package hssort

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"hssort/internal/bitonic"
	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/exchange"
	"hssort/internal/histsort"
	"hssort/internal/keycoder"
	"hssort/internal/nodesort"
	"hssort/internal/overpartition"
	"hssort/internal/radix"
	"hssort/internal/rankoracle"
	"hssort/internal/samplesort"
	"hssort/internal/tagging"
)

// Algorithm selects the sorting algorithm.
type Algorithm int

const (
	// HSS is Histogram Sort with Sampling in its production
	// configuration (§6.1.2): fixed 5·B-key oversampling per round
	// until all splitters are finalized. The paper's contribution and
	// the default.
	HSS Algorithm = iota
	// HSSOneRound is HSS with a single sampling round finished by the
	// scanning algorithm (§3.2).
	HSSOneRound
	// HSSTheoretical is HSS with the k-round geometric ratio schedule
	// of §3.3 (k = Config.Rounds, default log log B/ε).
	HSSTheoretical
	// SampleSortRegular is sample sort with regular sampling (§4.1.2).
	SampleSortRegular
	// SampleSortRandom is sample sort with random sampling (§4.1.1).
	SampleSortRandom
	// HistogramSort is classic histogram sort (§2.3) — key-space probe
	// bisection, no sampling. Requires an integer or float key type.
	HistogramSort
	// Bitonic is Batcher's bitonic sort on a hypercube (§4.2): requires
	// power-of-two Procs and equal shard sizes.
	Bitonic
	// Radix is a parallel MSD radix partition sort (§4.2). Requires an
	// integer or float key type.
	Radix
	// NodeHSS is HSS with the two-level node partitioning and message
	// combining of §6.1 (set Config.CoresPerNode).
	NodeHSS
	// OverPartition is parallel sorting by over-partitioning (Li &
	// Sevcik, §4.2): k·p sampled buckets assigned to ranks largest
	// first. Output is sorted per rank but rank order does not follow
	// key order.
	OverPartition
)

// String returns the algorithm name used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case HSS:
		return "hss"
	case HSSOneRound:
		return "hss-1round"
	case HSSTheoretical:
		return "hss-theory"
	case SampleSortRegular:
		return "samplesort-regular"
	case SampleSortRandom:
		return "samplesort-random"
	case HistogramSort:
		return "histogramsort"
	case Bitonic:
		return "bitonic"
	case Radix:
		return "radix"
	case NodeHSS:
		return "node-hss"
	case OverPartition:
		return "overpartition"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config configures a sort run. The zero value plus Procs is usable:
// plain HSS at ε = 0.05.
type Config struct {
	// Procs is the number of simulated processors; it must equal
	// len(shards) in Sort. Required.
	Procs int
	// Algorithm selects the sort. Default HSS.
	Algorithm Algorithm
	// Epsilon is the load-imbalance threshold ε. Default 0.05.
	Epsilon float64
	// Buckets is the number of output ranges (virtual processors).
	// Default Procs. Buckets > Procs simulates ChaNGa's TreePiece
	// regime (§6.3).
	Buckets int
	// RoundRobinBuckets places buckets on ranks cyclically instead of
	// contiguously (§6.3's non-contiguous virtual processors). The
	// output is then sorted per rank but not across ranks.
	RoundRobinBuckets bool
	// Rounds is the round count for HSSTheoretical.
	Rounds int
	// OversampleFactor is the per-round oversampling factor f for HSS
	// (default 5) or the per-processor sample size for the sample
	// sorts (default: their provable values).
	OversampleFactor float64
	// MaxOversample caps the sample-sort per-processor sample.
	MaxOversample int
	// CoresPerNode configures NodeHSS. Required for NodeHSS.
	CoresPerNode int
	// TagDuplicates wraps every key with its (processor, index) origin
	// (§4.3), restoring the balance guarantee on duplicate-heavy
	// inputs. Supported by the HSS and sample-sort algorithms.
	TagDuplicates bool
	// Approx enables §3.4 approximate histogramming (HSS variants).
	Approx bool
	// Transport selects the communication backend: TransportSim (the
	// default, fully byte-accounted) or TransportInproc (zero-copy
	// shared-memory fast path; communication-volume Stats read zero).
	Transport Transport
	// StreamExchange replaces the materializing all-to-all + merge with
	// the streaming pipeline: bucket payloads move in ChunkKeys-sized
	// chunks interleaved across destinations and the k-way merge runs
	// incrementally as chunks arrive, overlapping the exchange tail
	// (§6.2) with peak in-flight memory bounded by the flow-control
	// window. Supported by the HSS variants, the sample sorts, classic
	// histogram sort and NodeHSS. Output is rank-identical to the
	// materializing path.
	StreamExchange bool
	// ChunkKeys is the streaming-exchange chunk size in keys; setting it
	// implies StreamExchange. Default 64Ki when streaming.
	ChunkKeys int
	// Seed makes randomized phases reproducible. Default 1.
	Seed uint64
	// Timeout aborts a wedged run (protocol-bug safety net). Default
	// 10 minutes.
	Timeout time.Duration
}

// Stats reports one sort run; see the field comments on the paper
// quantities each one reproduces.
type Stats struct {
	// N is the global key count, Buckets the bucket count.
	N       int64
	Buckets int
	// Rounds is the number of histogramming rounds (Table 6.1);
	// SamplePerRound and TotalSample the per-round and overall sample
	// sizes (Fig 4.1).
	Rounds         int
	SamplePerRound []int64
	TotalSample    int64
	// LocalSort, Splitter, Exchange, Merge are critical-path phase
	// times (Fig 6.1's breakdown).
	LocalSort, Splitter, Exchange, Merge time.Duration
	// ExchangeOverlap is merge time hidden inside the exchange on the
	// streaming path (§6.2's overlap; max over ranks, zero when
	// Config.StreamExchange is off).
	ExchangeOverlap time.Duration
	// PeakInFlightBytes is the peak per-rank volume buffered by the
	// streaming exchange awaiting merge (max over ranks; bounded by
	// (p-1)·window·ChunkKeys·keysize). Zero on the materializing path.
	PeakInFlightBytes int64
	// SplitterBytes and ExchangeBytes are total bytes sent during
	// splitter determination and data movement (§5.1's communication
	// terms).
	SplitterBytes, ExchangeBytes int64
	// TotalMsgs and TotalBytes are whole-run message and byte counts
	// (§6.1's message-combining metric).
	TotalMsgs, TotalBytes int64
	// Imbalance is max load / average load after sorting (§1).
	Imbalance float64
}

// Total returns the end-to-end critical-path time.
func (s Stats) Total() time.Duration {
	return s.LocalSort + s.Splitter + s.Exchange + s.Merge
}

func fromCore(st core.Stats) Stats {
	return Stats{
		N:                 st.N,
		Buckets:           st.Buckets,
		Rounds:            st.Rounds,
		SamplePerRound:    st.SamplePerRound,
		TotalSample:       st.TotalSample,
		LocalSort:         st.LocalSort,
		Splitter:          st.Splitter,
		Exchange:          st.Exchange,
		Merge:             st.Merge,
		ExchangeOverlap:   st.ExchangeOverlap,
		PeakInFlightBytes: st.PeakInFlight,
		SplitterBytes:     st.SplitterBytes,
		ExchangeBytes:     st.ExchangeBytes,
		Imbalance:         st.Imbalance,
	}
}

// Sort sorts shards[i] (the keys initially on processor i) across
// Config.Procs simulated processors and returns the per-processor sorted
// partitions. For every algorithm except RoundRobinBuckets placements,
// the concatenation out[0] ‖ out[1] ‖ … is the sorted input.
func Sort[K cmp.Ordered](cfg Config, shards [][]K) ([][]K, Stats, error) {
	return sortImpl(cfg, shards, cmp.Compare[K], coderFor[K]())
}

// SortFunc is Sort with an explicit comparator, for key types without a
// built-in order. The HistogramSort and Radix algorithms additionally
// need key-space arithmetic and are unavailable through SortFunc.
func SortFunc[K any](cfg Config, shards [][]K, compare func(K, K) int) ([][]K, Stats, error) {
	if compare == nil {
		return nil, Stats{}, fmt.Errorf("hssort: comparator is required")
	}
	return sortImpl(cfg, shards, compare, nil)
}

// coderFor returns the keycoder for supported ordered key types, or nil.
func coderFor[K any]() keycoder.Coder[K] {
	var zero K
	switch any(zero).(type) {
	case int64:
		return any(keycoder.Int64{}).(keycoder.Coder[K])
	case uint64:
		return any(keycoder.Uint64{}).(keycoder.Coder[K])
	case int32:
		return any(keycoder.Int32{}).(keycoder.Coder[K])
	case uint32:
		return any(keycoder.Uint32{}).(keycoder.Coder[K])
	case float64:
		return any(keycoder.Float64{}).(keycoder.Coder[K])
	default:
		return nil
	}
}

func sortImpl[K any](cfg Config, shards [][]K, compare func(K, K) int, coder keycoder.Coder[K]) ([][]K, Stats, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(shards)
	}
	if cfg.Procs != len(shards) {
		return nil, Stats{}, fmt.Errorf("hssort: Config.Procs = %d but %d shards supplied", cfg.Procs, len(shards))
	}
	if cfg.Procs < 1 {
		return nil, Stats{}, fmt.Errorf("hssort: at least one shard is required")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.TagDuplicates {
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, NodeHSS:
		default:
			return nil, Stats{}, fmt.Errorf("hssort: TagDuplicates is not supported by %v", cfg.Algorithm)
		}
		return sortTagged(cfg, shards, compare)
	}
	return runWorld(cfg, shards, compare, coder)
}

// runWorld executes the selected algorithm over a fresh simulated world.
func runWorld[K any](cfg Config, shards [][]K, compare func(K, K) int, coder keycoder.Coder[K]) ([][]K, Stats, error) {
	outs := make([][]K, cfg.Procs)
	var stats Stats
	tr, err := cfg.Transport.newTransport(cfg.Procs)
	if err != nil {
		return nil, Stats{}, err
	}
	w := comm.NewWorld(cfg.Procs, comm.WithTimeout(cfg.Timeout), comm.WithTransport(tr))
	err = w.Run(func(c *comm.Comm) error {
		out, st, err := dispatch(c, shards[c.Rank()], cfg, compare, coder)
		if err != nil {
			return err
		}
		outs[c.Rank()] = out
		if c.Rank() == 0 {
			stats = fromCore(st)
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	total := w.TotalCounters()
	stats.TotalMsgs = total.MsgsSent
	stats.TotalBytes = total.BytesSent
	return outs, stats, nil
}

// sortTagged runs the §4.3 duplicate-handling path: wrap, sort tagged,
// unwrap.
func sortTagged[K any](cfg Config, shards [][]K, compare func(K, K) int) ([][]K, Stats, error) {
	tagged := make([][]tagging.Tagged[K], len(shards))
	for r, s := range shards {
		tagged[r] = tagging.Wrap(s, r)
	}
	outs, stats, err := runWorld(cfg, tagged, tagging.Cmp(compare), nil)
	if err != nil {
		return nil, stats, err
	}
	plain := make([][]K, len(outs))
	for r, o := range outs {
		plain[r] = tagging.Unwrap(o)
	}
	return plain, stats, nil
}

// dispatch routes one rank's work to the selected algorithm.
func dispatch[K any](c *comm.Comm, local []K, cfg Config, compare func(K, K) int, coder keycoder.Coder[K]) ([]K, core.Stats, error) {
	buckets := cfg.Buckets
	var owner func(int) int
	if cfg.RoundRobinBuckets {
		owner = exchange.RoundRobinOwner(cfg.Procs)
	}
	chunkKeys := cfg.ChunkKeys
	if chunkKeys == 0 && cfg.StreamExchange {
		chunkKeys = exchange.DefaultChunkKeys
	}
	if chunkKeys != 0 {
		switch cfg.Algorithm {
		case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, NodeHSS:
		default:
			return nil, core.Stats{}, fmt.Errorf("hssort: StreamExchange is not supported by %v", cfg.Algorithm)
		}
	}
	switch cfg.Algorithm {
	case HSS, HSSOneRound, HSSTheoretical:
		sched := core.FixedOversampling
		switch cfg.Algorithm {
		case HSSOneRound:
			sched = core.OneRoundScanning
		case HSSTheoretical:
			sched = core.Theoretical
		}
		return core.Sort(c, local, core.Options[K]{
			Cmp:              compare,
			Epsilon:          cfg.Epsilon,
			Buckets:          buckets,
			Owner:            owner,
			Schedule:         sched,
			Rounds:           cfg.Rounds,
			OversampleFactor: cfg.OversampleFactor,
			Seed:             cfg.Seed,
			Approx:           cfg.Approx,
			ChunkKeys:        chunkKeys,
		})
	case SampleSortRegular, SampleSortRandom:
		method := samplesort.Regular
		if cfg.Algorithm == SampleSortRandom {
			method = samplesort.Random
		}
		return samplesort.Sort(c, local, samplesort.Options[K]{
			Cmp:           compare,
			Epsilon:       cfg.Epsilon,
			Buckets:       buckets,
			Owner:         owner,
			Method:        method,
			Oversample:    int(cfg.OversampleFactor),
			MaxOversample: cfg.MaxOversample,
			Seed:          cfg.Seed,
			ChunkKeys:     chunkKeys,
		})
	case HistogramSort:
		if coder == nil {
			return nil, core.Stats{}, fmt.Errorf("hssort: %v requires an integer or float key type", cfg.Algorithm)
		}
		return histsort.Sort(c, local, histsort.Options[K]{
			Cmp:       compare,
			Coder:     coder,
			Epsilon:   cfg.Epsilon,
			Buckets:   buckets,
			Owner:     owner,
			ChunkKeys: chunkKeys,
		})
	case Bitonic:
		return bitonic.Sort(c, local, bitonic.Options[K]{Cmp: compare})
	case Radix:
		if coder == nil {
			return nil, core.Stats{}, fmt.Errorf("hssort: %v requires an integer or float key type", cfg.Algorithm)
		}
		return radix.Sort(c, local, radix.Options[K]{Cmp: compare, Coder: coder})
	case NodeHSS:
		sched := core.FixedOversampling
		return nodesort.Sort(c, local, nodesort.Options[K]{
			Cmp:              compare,
			CoresPerNode:     cfg.CoresPerNode,
			Epsilon:          cfg.Epsilon,
			Schedule:         sched,
			Seed:             cfg.Seed,
			OversampleFactor: cfg.OversampleFactor,
			ChunkKeys:        chunkKeys,
		})
	case OverPartition:
		return overpartition.Sort(c, local, overpartition.Options[K]{
			Cmp:       compare,
			OverRatio: cfg.Rounds, // reuse Rounds as k; 0 → log p
			Seed:      cfg.Seed,
		})
	default:
		return nil, core.Stats{}, fmt.Errorf("hssort: unknown algorithm %v", cfg.Algorithm)
	}
}

// SimulateSplitters runs the splitter-determination protocol centrally at
// arbitrary scale (the paper's true processor counts) without moving any
// data: the tool behind Table 6.1 and the measured Fig 4.1 curves. See
// SimResult for the reported quantities.
func SimulateSplitters(n int64, buckets int, eps float64, alg Algorithm, rounds int, seed uint64) (SimResult, error) {
	sched := core.FixedOversampling
	switch alg {
	case HSSOneRound:
		sched = core.OneRoundScanning
	case HSSTheoretical:
		sched = core.Theoretical
	case HSS:
	default:
		return SimResult{}, fmt.Errorf("hssort: SimulateSplitters supports the HSS variants, not %v", alg)
	}
	res, err := core.SimulateSplitters(n, core.Options[int64]{
		Cmp:      cmp.Compare[int64],
		Buckets:  buckets,
		Epsilon:  eps,
		Schedule: sched,
		Rounds:   rounds,
		Seed:     seed,
	})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult(res), nil
}

// SimResult reports a SimulateSplitters run: rounds, per-round sample
// sizes, interval coverage per round, achieved bucket imbalance, and
// whether every splitter met its window.
type SimResult struct {
	Rounds           int
	SamplePerRound   []int64
	TotalSample      int64
	CoveragePerRound []int64
	Imbalance        float64
	Finalized        bool
}

// ApproxRanks answers global rank queries over sharded data with the
// §3.4 approximate rank oracle: each simulated processor summarizes its
// shard with a √(2p ln p)/ε-key representative sample, and every answer
// is within N·ε/p of the true rank w.h.p. (Theorem 3.4.1) at the cost of
// one small reduction per query batch — the paper's standalone primitive
// for repeated rank/quantile queries.
func ApproxRanks[K cmp.Ordered](shards [][]K, probes []K, eps float64, seed uint64) ([]int64, error) {
	p := len(shards)
	if p < 1 {
		return nil, fmt.Errorf("hssort: at least one shard is required")
	}
	var ranks []int64
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Minute))
	err := w.Run(func(c *comm.Comm) error {
		local := make([]K, len(shards[c.Rank()]))
		copy(local, shards[c.Rank()])
		slices.SortFunc(local, cmp.Compare[K])
		oracle, err := rankoracle.New(c, local, rankoracle.Options[K]{
			Cmp: cmp.Compare[K], Epsilon: eps, Seed: seed,
		})
		if err != nil {
			return err
		}
		got, err := oracle.Query(probes)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ranks = got
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ranks, nil
}
