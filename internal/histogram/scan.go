package histogram

import (
	"fmt"
	"sort"
)

// ScanResult reports the splitters chosen by the scanning algorithm and
// the quality of the induced partition as estimated from the sample ranks.
type ScanResult[K any] struct {
	// Splitters holds the buckets-1 chosen splitter keys.
	Splitters []K
	// LastBucket is the number of keys left to the final bucket: the
	// quantity Theorem 3.2.1 bounds by N(1+ε)/B w.h.p.
	LastBucket int64
	// Overfull counts buckets (other than the last) that exceeded the
	// cap because no sample key landed inside their window — zero
	// w.h.p. at the theorem's sampling ratio.
	Overfull int
}

// Scan runs the scanning algorithm of Axtmann et al. (§3.2): given the
// histogrammed sample — sorted distinct keys with exact global ranks — it
// walks the histogram assigning consecutive key ranges to buckets, closing
// a bucket just before it would exceed the cap N(1+ε)/B. The last bucket
// receives the remainder.
//
// The sample is validated against cmp before scanning: duplicate or
// out-of-order keys, or ranks that decrease, would silently make the
// maxHi clamp emit duplicate or out-of-order splitters — Partition then
// panics (or worse, mis-buckets) far from the actual bug. Such input is
// rejected with an error instead.
func Scan[K any](keys []K, ranks []int64, n int64, buckets int, eps float64, cmp func(K, K) int) (ScanResult[K], error) {
	if buckets < 1 {
		return ScanResult[K]{}, fmt.Errorf("histogram: scan buckets %d < 1", buckets)
	}
	if len(keys) != len(ranks) {
		return ScanResult[K]{}, fmt.Errorf("histogram: scan %d keys vs %d ranks", len(keys), len(ranks))
	}
	for i := 1; i < len(keys); i++ {
		switch c := cmp(keys[i-1], keys[i]); {
		case c == 0:
			return ScanResult[K]{}, fmt.Errorf("histogram: scan sample has duplicate keys at %d", i)
		case c > 0:
			return ScanResult[K]{}, fmt.Errorf("histogram: scan sample keys out of order at %d", i)
		}
		if ranks[i] < ranks[i-1] {
			return ScanResult[K]{}, fmt.Errorf("histogram: scan ranks decrease at %d (%d < %d)", i, ranks[i], ranks[i-1])
		}
	}
	if buckets == 1 {
		return ScanResult[K]{LastBucket: n}, nil
	}
	if len(keys) < buckets-1 {
		return ScanResult[K]{}, fmt.Errorf("histogram: scan sample of %d keys cannot yield %d splitters", len(keys), buckets-1)
	}
	cap64 := int64(float64(n) * (1 + eps) / float64(buckets))
	res := ScanResult[K]{Splitters: make([]K, 0, buckets-1)}
	start := int64(0) // rank where the current bucket begins
	j := 0            // next unconsumed sample index
	for b := 0; b < buckets-1; b++ {
		// The splitter for bucket b is the largest sample key whose rank
		// keeps the bucket within cap: rank <= start + cap.
		hi := sort.Search(len(ranks)-j, func(k int) bool { return ranks[j+k] > start+cap64 }) + j
		if hi == j {
			// No sample key fits: the bucket must overfill to make
			// progress. Take the next key and record the violation.
			hi = j + 1
			res.Overfull++
		}
		// Leave at least one key per remaining splitter.
		remaining := buckets - 2 - b
		if maxHi := len(keys) - remaining; hi > maxHi {
			hi = maxHi
		}
		res.Splitters = append(res.Splitters, keys[hi-1])
		start = ranks[hi-1]
		j = hi
	}
	res.LastBucket = n - start
	return res, nil
}
