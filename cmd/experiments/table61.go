package main

import (
	"fmt"

	"hssort"
	"hssort/internal/sampling"
	"hssort/internal/tablefmt"
)

// runTable61 regenerates Table 6.1: the number of histogramming rounds
// HSS needs with a 5p-key sample per round at eps = 0.02, for the paper's
// true processor counts p = 4K..32K, against the analytic bound
// ceil(ln(2 ln p/eps)/ln(f/2)). The protocol simulator executes the exact
// sampling/histogramming protocol, so these are measured rounds, not
// estimates.
func runTable61(scale float64) error {
	const eps = 0.02
	const f = 5.0
	perBucket := int64(1000 * scale)
	if perBucket < 200 {
		perBucket = 200
	}
	t := tablefmt.New("p (x1000)", "sample/round (xp)", "rounds observed", "bound", "imbalance", "finalized")
	for _, p := range []int{4096, 8192, 16384, 32768} {
		res, err := hssort.SimulateSplitters(int64(p)*perBucket, p, eps, hssort.HSS, 0, 1)
		if err != nil {
			return err
		}
		bound, err := sampling.ExpectedRoundsFixed(p, eps, f)
		if err != nil {
			return err
		}
		// Mean per-round sample in units of p.
		var total int64
		for _, s := range res.SamplePerRound {
			total += s
		}
		perRound := float64(total) / float64(res.Rounds) / float64(p)
		t.AddRow(
			fmt.Sprintf("%d", p/1024),
			fmt.Sprintf("%.1f", perRound),
			fmt.Sprintf("%d", res.Rounds),
			fmt.Sprintf("%d", bound),
			fmt.Sprintf("%.4f", res.Imbalance),
			fmt.Sprintf("%v", res.Finalized),
		)
	}
	fmt.Printf("HSS rounds at eps = %.2f with %v-fold oversampling per round:\n\n", eps, f)
	fmt.Print(t.String())
	fmt.Println("\nPaper (Table 6.1): 4 rounds observed at p = 4K, 8K, 16K, 32K; bound 8.")
	return nil
}
