package merge

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"testing"

	"hssort/internal/codes"
)

func randomRuns(rng *rand.Rand, k, maxLen int) [][]codes.Code {
	runs := make([][]codes.Code, k)
	for i := range runs {
		n := rng.IntN(maxLen + 1)
		runs[i] = make([]codes.Code, n)
		for j := range runs[i] {
			runs[i][j] = codes.Code(rng.Uint64N(64)) // heavy duplicates
		}
		slices.Sort(runs[i])
	}
	return runs
}

// TestKWayByCodeMatchesKWay: on the pure plane, the code-keyed merge is
// element-for-element identical to the comparator merge (including
// duplicate tie-break order).
func TestKWayByCodeMatchesKWay(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, k := range []int{0, 1, 2, 3, 5, 8, 17, 64} {
		runs := randomRuns(rng, k, 200)
		want := KWay(runs, codes.Compare)
		got := KWayByCode(runs, codes.ExtractCode)
		if !slices.Equal(got, want) {
			t.Fatalf("k=%d: KWayByCode diverged from KWay", k)
		}
	}
}

// TestKWayByCodeExtractor: the extractor plane merges records by code
// with lower-run tie-break, matching KWay under the equivalent
// comparator.
func TestKWayByCodeExtractor(t *testing.T) {
	type rec struct {
		key uint64
		run int
	}
	rng := rand.New(rand.NewPCG(3, 4))
	runs := make([][]rec, 6)
	for i := range runs {
		n := rng.IntN(100)
		for j := 0; j < n; j++ {
			runs[i] = append(runs[i], rec{key: rng.Uint64N(16), run: i})
		}
		slices.SortFunc(runs[i], func(a, b rec) int { return cmp.Compare(a.key, b.key) })
	}
	want := KWay(runs, func(a, b rec) int { return cmp.Compare(a.key, b.key) })
	got := KWayByCode(runs, func(r rec) uint64 { return r.key })
	if !slices.Equal(got, want) {
		t.Fatal("extractor merge diverged from comparator merge")
	}
}

// TestCodeTreeStreamingMatchesLoserTree drives a CodeTree and a
// LoserTree through an identical randomized chunked feed (adds, appends,
// closes, interleaved guarded drains) and demands identical emissions.
func TestCodeTreeStreamingMatchesLoserTree(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.IntN(7)
		ct := NewStreamer[codes.Code](codes.Compare, nil) // pure plane
		lt := NewStreaming(codes.Compare)
		if _, ok := ct.(*pureCodeStreamer); !ok {
			t.Fatal("NewStreamer did not pick the code tree for codes.Code")
		}

		// Per-run remaining chunk queues.
		chunks := make([][][]codes.Code, k)
		for i := 0; i < k; i++ {
			var last codes.Code
			for c := 0; c < rng.IntN(4); c++ {
				n := rng.IntN(20)
				chunk := make([]codes.Code, n)
				for j := range chunk {
					last += codes.Code(rng.Uint64N(3))
					chunk[j] = last
				}
				chunks[i] = append(chunks[i], chunk)
			}
			ci := ct.AddRun(nil)
			li := lt.AddRun(nil)
			if ci != li {
				t.Fatal("run indices diverged")
			}
		}
		var got, want []codes.Code
		closed := make([]bool, k)
		allClosed := func() bool {
			for _, c := range closed {
				if !c {
					return false
				}
			}
			return true
		}
		for {
			// Random event: feed a chunk, close a run, or drain.
			switch ev := rng.IntN(3); {
			case ev == 0:
				i := rng.IntN(k)
				if len(chunks[i]) > 0 && !closed[i] {
					ct.Append(i, slices.Clone(chunks[i][0]))
					lt.Append(i, slices.Clone(chunks[i][0]))
					chunks[i] = chunks[i][1:]
				}
			case ev == 1:
				i := rng.IntN(k)
				if len(chunks[i]) == 0 && !closed[i] {
					ct.CloseRun(i)
					lt.CloseRun(i)
					closed[i] = true
				}
			default:
				for {
					g, gok := ct.NextReady()
					w, wok := lt.NextReady()
					if gok != wok {
						t.Fatalf("trial %d: readiness diverged (%v vs %v)", trial, gok, wok)
					}
					if !gok {
						break
					}
					got = append(got, g)
					want = append(want, w)
					if ct.Consumed(0) != lt.Consumed(0) {
						t.Fatalf("trial %d: consumed counts diverged", trial)
					}
				}
			}
			if allClosed() && ct.Exhausted() && lt.Exhausted() {
				break
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: emissions diverged (%d vs %d keys)", trial, len(got), len(want))
		}
		if !slices.IsSorted(got) {
			t.Fatalf("trial %d: emissions not sorted", trial)
		}
	}
}

// TestCodeTreePanics: the parallel-array contract is enforced.
func TestCodeTreePanics(t *testing.T) {
	tr := NewCodeTree[codes.Code]()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddRun length mismatch did not panic")
			}
		}()
		tr.AddRun([]codes.Code{1, 2}, []codes.Code{1})
	}()
	i := tr.AddRun(nil, nil)
	tr.CloseRun(i)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Append to closed run did not panic")
			}
		}()
		tr.Append(i, []codes.Code{1}, []codes.Code{1})
	}()
}

// TestCodeMergeInnerLoopZeroAlloc is the code-path merge allocation
// gate: once runs are loaded and the tournament is built, emitting every
// key allocates nothing — no per-key and no per-replay allocations.
func TestCodeMergeInnerLoopZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	runs := randomRuns(rng, 16, 2000)
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	tr := NewCodeTree[codes.Code]()
	for _, r := range runs {
		i := tr.AddRun(r, r)
		tr.CloseRun(i)
	}
	out := make([]codes.Code, 0, total)
	// Prime the tree so the one-time build happens outside the window.
	if k, ok := tr.Next(); ok {
		out = append(out, k)
	}
	allocs := testing.AllocsPerRun(1, func() {
		for {
			k, ok := tr.Next()
			if !ok {
				break
			}
			out = append(out, k)
		}
	})
	if allocs != 0 {
		t.Fatalf("merge inner loop allocated %.1f times per drain, want 0", allocs)
	}
	if len(out) != total || !slices.IsSorted(out) {
		t.Fatalf("drain produced %d keys (want %d), sorted=%v", len(out), total, slices.IsSorted(out))
	}
}

// BenchmarkCodeMerge races the comparator loser tree against the
// code-keyed tree on an identical 64-way merge.
func BenchmarkCodeMerge(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 10))
	runs := randomRuns(rng, 64, 1<<14)
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	b.Run("loser-tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			KWay(runs, codes.Compare)
		}
		b.SetBytes(int64(total) * 8)
	})
	b.Run("code-tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			KWayByCode(runs, codes.ExtractCode)
		}
		b.SetBytes(int64(total) * 8)
	})
}
