// Package merge provides sequential multiway merging of sorted runs.
//
// After the all-to-all data exchange, every processor holds up to p sorted
// runs (one from each sender) that must be merged into its final output
// (§2.2 step 3). For small p a pairwise merge suffices; for large p the
// loser-tree k-way merge does one comparison tree traversal (log k
// comparisons) per output key, which is what the paper's O((N/p) log p)
// merge cost assumes.
//
// This is the final, purely local phase of every splitter-based sort in
// the repository: internal/exchange delivers the runs, merge.KWay turns
// them into the rank's sorted partition. The underlying LoserTree also
// works incrementally — runs can be admitted (AddRun), refilled
// (Append) and sealed (CloseRun) while merging, with NextReady emitting
// only keys no future arrival can precede — which is what lets
// exchange.ExchangeStream overlap the merge with the exchange itself.
package merge
