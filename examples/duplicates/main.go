// Duplicate handling (§4.3): splitter-based sorts cannot balance an
// input whose duplicated values straddle bucket boundaries — no splitter
// key can divide a run of equal keys. The paper's fix is implicit
// tagging: order keys by (key, processor, index), a strict total order,
// at no cost to the bulk data.
//
// This example sorts a Zipf-distributed workload (a few values dominate)
// with and without Config.TagDuplicates and compares the achieved
// balance.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"slices"

	"hssort"
)

// zipfShard draws n keys from ~50 distinct values with Zipf(1.3) weights.
func zipfShard(n int, seed uint64) []int64 {
	const distinct = 50
	cum := make([]float64, distinct)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), 1.3)
		cum[i] = total
	}
	rng := rand.New(rand.NewPCG(seed, 777))
	out := make([]int64, n)
	for i := range out {
		u := rng.Float64() * total
		lo := 0
		for lo < distinct-1 && cum[lo] < u {
			lo++
		}
		out[i] = int64(lo * 1000)
	}
	return out
}

func main() {
	const procs = 16
	const perProc = 40_000
	const eps = 0.05

	shards := make([][]int64, procs)
	for r := range shards {
		shards[r] = zipfShard(perProc, uint64(r))
	}

	run := func(tagged bool) hssort.Stats {
		in := make([][]int64, procs)
		for i := range shards {
			in[i] = slices.Clone(shards[i])
		}
		outs, stats, err := hssort.Sort(hssort.Config{
			Procs:         procs,
			Epsilon:       eps,
			TagDuplicates: tagged,
			Seed:          11,
		}, in)
		if err != nil {
			log.Fatal(err)
		}
		// The output is the sorted permutation either way; only the
		// balance differs.
		var got []int64
		for _, o := range outs {
			got = append(got, o...)
		}
		if !slices.IsSorted(got) {
			log.Fatal("output not globally sorted")
		}
		return stats
	}

	plain := run(false)
	tagged := run(true)

	fmt.Printf("Zipf keys (~50 distinct values), %d processors, target <= %.2f\n\n", procs, 1+eps)
	fmt.Printf("  untagged: imbalance %.3f — the hottest value pins a whole bucket\n", plain.Imbalance)
	fmt.Printf("  tagged:   imbalance %.3f — (key, PE, index) order splits inside runs\n", tagged.Imbalance)
	if tagged.Imbalance > 1+eps+1e-9 {
		log.Fatalf("tagging failed to restore the balance guarantee")
	}
	if plain.Imbalance < tagged.Imbalance {
		fmt.Println("\n(note: on this seed the untagged run got lucky; rerun with more skew)")
	}
}
