package core

import (
	"cmp"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

// transports enumerates the comm backends for the cancellation matrix.
var ctxTransports = []struct {
	name string
	mk   func(p int) comm.Transport
}{
	{"sim", func(p int) comm.Transport { return comm.NewSimTransport(p) }},
	{"inproc", func(p int) comm.Transport { return comm.NewInprocTransport(p) }},
	{"tcp", func(p int) comm.Transport {
		tr, err := comm.NewTCPLoopback(p)
		if err != nil {
			panic(err)
		}
		return tr
	}},
}

// TestCancelMidHistogram cancels the context from inside the
// histogramming loop (the OnRound hook fires on the root between
// collective rounds, while the other ranks sit inside the next round's
// broadcast) on both transports and both exchange planes, and asserts
// that every rank unblocks with an error satisfying
// errors.Is(err, context.Canceled) — then that the same pool runs a
// clean sort afterwards and its workers exit on Close.
func TestCancelMidHistogram(t *testing.T) {
	const p, perRank = 6, 5000
	for _, tr := range ctxTransports {
		for _, chunkKeys := range []int{0, 512} {
			name := tr.name + "/materializing"
			if chunkKeys > 0 {
				name = tr.name + "/stream"
			}
			t.Run(name, func(t *testing.T) {
				before := runtime.NumGoroutine()
				shards := dist.Spec{Kind: dist.Gaussian}.Shards(perRank, p, 7)
				pool := comm.NewPool(p, comm.WithTransport(tr.mk(p)), comm.WithTimeout(30*time.Second))

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				rankErrs := make([]error, p)
				err := pool.Run(ctx, func(c *comm.Comm) error {
					opt := Options[int64]{
						Cmp:       cmp.Compare[int64],
						Epsilon:   0.01, // tight: guarantees several rounds
						ChunkKeys: chunkKeys,
						Workers:   3, // the leak assertion covers the worker pool's forks
					}
					if c.Rank() == 0 {
						opt.OnRound = func(rt RoundTrace) {
							if rt.Round == 1 {
								cancel() // mid-histogramming, peers blocked in collectives
							}
						}
					}
					_, _, err := Sort(c, shards[c.Rank()], opt)
					rankErrs[c.Rank()] = err
					return err
				})
				if err == nil {
					t.Fatal("cancelled sort returned nil")
				}
				for r, re := range rankErrs {
					if !errors.Is(re, context.Canceled) {
						t.Errorf("rank %d error = %v, want context.Canceled", r, re)
					}
				}

				// The engine contract: the same pool must serve a clean
				// sort after the cancellation.
				fresh := dist.Spec{Kind: dist.Gaussian}.Shards(1000, p, 8)
				if err := pool.Run(context.Background(), func(c *comm.Comm) error {
					_, _, err := Sort(c, fresh[c.Rank()], Options[int64]{
						Cmp: cmp.Compare[int64], Epsilon: 0.2, ChunkKeys: chunkKeys, Workers: 3,
					})
					return err
				}); err != nil {
					t.Fatalf("sort after cancellation: %v", err)
				}

				pool.Close()
				if cl, ok := pool.Transport().(io.Closer); ok {
					cl.Close() // tcp: release sockets + pump goroutines
				}
				waitGoroutines(t, before)
			})
		}
	}
}

// waitGoroutines polls until the goroutine count returns to the given
// baseline — the world-join leak assertion.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
