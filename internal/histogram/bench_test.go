package histogram

import (
	"math/rand/v2"
	"slices"
	"testing"
)

func benchSorted(n int) []int64 {
	rng := rand.New(rand.NewPCG(1, 2))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int64()
	}
	slices.Sort(out)
	return out
}

// BenchmarkLocalRanks measures the per-round histogram step: S binary
// searches over the local sorted input (§5.1.2's O(S log(N/p)) term).
func BenchmarkLocalRanks(b *testing.B) {
	b.ReportAllocs()
	sorted := benchSorted(1 << 20)
	probes := benchSorted(1 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalRanks(sorted, probes, icmp)
	}
	b.ReportMetric(float64(len(probes)), "probes")
}

// BenchmarkTrackerUpdate measures the central processor's per-round
// bookkeeping over B-1 splitters and S probes.
func BenchmarkTrackerUpdate(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 30
	const buckets = 4096
	probes := make([]int64, 5*buckets)
	ranks := make([]int64, len(probes))
	for i := range probes {
		probes[i] = int64(i) * (n / int64(len(probes)))
		ranks[i] = probes[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := NewTracker[int64](n, buckets, 0.02, icmp)
		b.StartTimer()
		tr.Update(probes, ranks)
	}
}

// BenchmarkScan measures the scanning algorithm over a 2/ε-ratio sample.
func BenchmarkScan(b *testing.B) {
	b.ReportAllocs()
	const n = 1 << 30
	const buckets = 1024
	keys := make([]int64, 40*buckets)
	ranks := make([]int64, len(keys))
	for i := range keys {
		keys[i] = int64(i) * (n / int64(len(keys)))
		ranks[i] = keys[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(keys, ranks, n, buckets, 0.05, icmp); err != nil {
			b.Fatal(err)
		}
	}
}
