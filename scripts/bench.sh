#!/usr/bin/env bash
# bench.sh — run the headline benchmark set (byte-key prefix-plane
# comparison included) and emit the perf-trajectory artifacts
# (BENCH_PR7.txt, benchstat-compatible raw output, and BENCH_PR7.json).
# Thin wrapper over `go run ./cmd/bench`; all flags pass through, e.g.:
#
#   scripts/bench.sh                       # full set
#   scripts/bench.sh -benchtime 1x         # smoke (what CI runs)
#   scripts/bench.sh -count 5 -out /tmp/b  # benchstat-grade repetitions
set -euo pipefail
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
