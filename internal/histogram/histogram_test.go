package histogram

import (
	"cmp"
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

func TestLocalRanksKnown(t *testing.T) {
	sorted := []int64{10, 20, 20, 30, 40}
	probes := []int64{5, 10, 20, 25, 40, 50}
	got := LocalRanks(sorted, probes, icmp)
	want := []int64{0, 0, 1, 3, 4, 5}
	if !slices.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestLocalRanksEmpty(t *testing.T) {
	if got := LocalRanks([]int64{}, []int64{1, 2}, icmp); !slices.Equal(got, []int64{0, 0}) {
		t.Errorf("empty input ranks = %v", got)
	}
	if got := LocalRanks([]int64{1}, []int64{}, icmp); len(got) != 0 {
		t.Errorf("no probes: %v", got)
	}
}

func TestLocalRanksProperty(t *testing.T) {
	f := func(data []int16, probes []int16) bool {
		sorted := make([]int64, len(data))
		for i, v := range data {
			sorted[i] = int64(v)
		}
		slices.Sort(sorted)
		ps := make([]int64, len(probes))
		for i, v := range probes {
			ps[i] = int64(v)
		}
		got := LocalRanks(sorted, ps, icmp)
		for i, q := range ps {
			naive := int64(0)
			for _, k := range sorted {
				if k < q {
					naive++
				}
			}
			if got[i] != naive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// exactTracker builds a tracker over an explicit global sorted array so
// tests can feed exact ranks.
func exactRanks(global []int64, probes []int64) []int64 {
	return LocalRanks(global, probes, icmp)
}

func TestTrackerFinalizesWithGoodProbes(t *testing.T) {
	// Global input 0..999; 4 buckets → targets 250, 500, 750; eps=0.1
	// gives tolerance 1000*0.1/8 = 12.
	global := seq(1000)
	tr := NewTracker[int64](1000, 4, 0.1, icmp)
	if tr.Tolerance() != 12 {
		t.Fatalf("tolerance = %d, want 12", tr.Tolerance())
	}
	probes := []int64{249, 505, 744}
	tr.Update(probes, exactRanks(global, probes))
	if !tr.Done() {
		t.Fatalf("not done: %d/%d finalized", tr.NumFinalized(), tr.NumSplitters())
	}
	sp, ok := tr.Splitters()
	if !ok {
		t.Fatal("no splitters")
	}
	if !slices.Equal(sp, probes) {
		t.Errorf("splitters %v, want %v", sp, probes)
	}
}

func TestTrackerBoundsTightenMonotonically(t *testing.T) {
	global := seq(10000)
	tr := NewTracker[int64](10000, 2, 0.001, icmp) // single splitter, target 5000, tol 2
	prevCoverage := tr.Coverage()
	if prevCoverage != 10000 {
		t.Fatalf("initial coverage %d", prevCoverage)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for round := 0; round < 30 && !tr.Done(); round++ {
		ivs := tr.ActiveIntervals()
		if len(ivs) != 1 {
			t.Fatalf("round %d: %d active intervals", round, len(ivs))
		}
		iv := ivs[0]
		// Probe a random key inside the active interval.
		lo, hi := iv.LoRank, iv.HiRank
		probe := global[lo+rng.Int64N(hi-lo)]
		if !iv.Contains(probe, icmp) && (!iv.HasLo || probe != iv.Lo) {
			// probes at the exclusive boundary are allowed to be skipped
			continue
		}
		tr.Update([]int64{probe}, exactRanks(global, []int64{probe}))
		cov := tr.Coverage()
		if cov > prevCoverage {
			t.Fatalf("coverage grew: %d -> %d", prevCoverage, cov)
		}
		prevCoverage = cov
	}
	if !tr.Done() {
		t.Fatal("random bisection never finalized the splitter")
	}
}

func TestTrackerIntervalDedup(t *testing.T) {
	// With no probe between adjacent targets, neighbouring splitters
	// share one interval and ActiveIntervals must collapse them.
	tr := NewTracker[int64](1000, 10, 0.0001, icmp)
	probes := []int64{500}
	tr.Update(probes, []int64{500})
	ivs := tr.ActiveIntervals()
	// Splitters 1..4 share (nil, 500), splitter 5 is target 500 (may
	// finalize depending on tol=0), splitters 6..9 share (500, nil).
	if len(ivs) > 3 {
		t.Errorf("got %d intervals, want <= 3 after dedup: %+v", len(ivs), ivs)
	}
}

func TestTrackerSplittersFallback(t *testing.T) {
	tr := NewTracker[int64](100, 4, 0.001, icmp)
	probes := []int64{10, 90}
	tr.Update(probes, []int64{10, 90})
	if tr.Done() {
		t.Error("tracker claimed done with probes far from every target")
	}
	// Candidates exist for all three splitters even though none finalized
	// (ok reports candidate existence, not finalization): 10 is closest
	// to target 25; either probe for 50; 90 for 75.
	sp, ok := tr.Splitters()
	if !ok {
		t.Fatal("candidates missing despite probes covering the range")
	}
	if sp[0] != 10 || sp[2] != 90 {
		t.Errorf("fallback splitters %v", sp)
	}
}

func TestTrackerPanicsOnUnsortedProbes(t *testing.T) {
	tr := NewTracker[int64](100, 2, 0.1, icmp)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unsorted probes")
		}
	}()
	tr.Update([]int64{5, 3}, []int64{5, 3})
}

func TestTrackerPanicsOnLengthMismatch(t *testing.T) {
	tr := NewTracker[int64](100, 2, 0.1, icmp)
	defer func() {
		if recover() == nil {
			t.Error("no panic for length mismatch")
		}
	}()
	tr.Update([]int64{5}, []int64{})
}

func TestNewTrackerPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for buckets=0")
		}
	}()
	NewTracker[int64](100, 0, 0.1, icmp)
}

func TestTrackerSingleBucket(t *testing.T) {
	tr := NewTracker[int64](100, 1, 0.1, icmp)
	if !tr.Done() {
		t.Error("zero splitters should be trivially done")
	}
	if sp, ok := tr.Splitters(); !ok || len(sp) != 0 {
		t.Error("single bucket should yield empty splitters")
	}
}

// TestTrackerConvergesProperty: feeding exact ranks of random probes drawn
// from active intervals must finalize all splitters, and the resulting
// candidate ranks must lie within tolerance.
func TestTrackerConvergesProperty(t *testing.T) {
	f := func(seed uint32, bRaw uint8) bool {
		buckets := int(bRaw%16) + 2
		n := int64(5000)
		global := seq(int(n))
		tr := NewTracker[int64](n, buckets, 0.05, icmp)
		rng := rand.New(rand.NewPCG(uint64(seed), 3))
		for round := 0; round < 64 && !tr.Done(); round++ {
			var probes []int64
			for _, iv := range tr.ActiveIntervals() {
				lo, hi := iv.LoRank, iv.HiRank
				if hi <= lo {
					continue
				}
				probes = append(probes, global[lo+rng.Int64N(hi-lo)])
			}
			probes = dedupSorted(probes)
			if len(probes) == 0 {
				continue
			}
			tr.Update(probes, exactRanks(global, probes))
		}
		if !tr.Done() {
			return false
		}
		for i := 0; i < tr.NumSplitters(); i++ {
			r, ok := tr.CandidateRank(i)
			if !ok || absDiff(r, tr.Target(i)) > tr.Tolerance() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func dedupSorted(v []int64) []int64 {
	slices.Sort(v)
	return slices.Compact(v)
}
