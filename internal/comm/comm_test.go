package comm

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2, WithTimeout(5*time.Second))
	err := w.Run(func(c *Comm) error {
		const tag Tag = 1
		if c.Rank() == 0 {
			if err := SendValue(c, 1, tag, 42); err != nil {
				return err
			}
			v, err := RecvValue[int](c, 1, tag)
			if err != nil {
				return err
			}
			if v != 43 {
				return fmt.Errorf("got %d, want 43", v)
			}
			return nil
		}
		v, err := RecvValue[int](c, 0, tag)
		if err != nil {
			return err
		}
		return SendValue(c, 0, tag, v+1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseFIFO(t *testing.T) {
	const n = 200
	w := NewWorld(2, WithTimeout(5*time.Second))
	err := w.Run(func(c *Comm) error {
		const tag Tag = 7
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := SendValue(c, 1, tag, i); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			v, err := RecvValue[int](c, 0, tag)
			if err != nil {
				return err
			}
			if v != i {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingSkipsNonMatching(t *testing.T) {
	w := NewWorld(2, WithTimeout(5*time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := SendValue(c, 1, 2, "second"); err != nil {
				return err
			}
			return SendValue(c, 1, 1, "first")
		}
		a, err := RecvValue[string](c, 0, 1)
		if err != nil {
			return err
		}
		b, err := RecvValue[string](c, 0, 2)
		if err != nil {
			return err
		}
		if a != "first" || b != "second" {
			return fmt.Errorf("tag matching broken: got %q, %q", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	const p = 8
	w := NewWorld(p, WithTimeout(5*time.Second))
	err := w.Run(func(c *Comm) error {
		const tag Tag = 3
		if c.Rank() == 0 {
			seen := make(map[int]bool)
			for i := 0; i < p-1; i++ {
				m, err := c.Recv(AnySource, tag)
				if err != nil {
					return err
				}
				if seen[m.Src] {
					return fmt.Errorf("duplicate message from %d", m.Src)
				}
				seen[m.Src] = true
				if m.Payload.(int) != m.Src*10 {
					return fmt.Errorf("wrong payload from %d: %v", m.Src, m.Payload)
				}
			}
			return nil
		}
		return SendValue(c, 0, tag, c.Rank()*10)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1, WithTimeout(5*time.Second))
	err := w.Run(func(c *Comm) error {
		if err := SendValue(c, 0, 9, 5); err != nil {
			return err
		}
		v, err := RecvValue[int](c, 0, 9)
		if err != nil {
			return err
		}
		if v != 5 {
			return fmt.Errorf("self-send got %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	w := NewWorld(2, WithTimeout(time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := SendValue(c, 5, 0, 1); err == nil {
			return errors.New("send to invalid rank succeeded")
		}
		if err := SendValue(c, -1, 0, 1); err == nil {
			return errors.New("send to rank -1 succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvInvalidRank(t *testing.T) {
	w := NewWorld(2, WithTimeout(time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if _, err := c.Recv(17, 0); err == nil {
			return errors.New("recv from invalid rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicAbortsWorld(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("rank 0 exploded")
		}
		// Rank 1 would block forever without panic propagation.
		_, err := c.Recv(0, 1)
		return err
	})
	if err == nil {
		t.Fatal("expected error from panicked world")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error %q does not mention the panic", err)
	}
}

func TestTimeoutUnblocksDeadlock(t *testing.T) {
	w := NewWorld(2, WithTimeout(50*time.Millisecond))
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		// Both ranks receive; nobody sends: a protocol deadlock.
		_, err := c.Recv((c.Rank()+1)%2, 1)
		return err
	})
	if err == nil {
		t.Fatal("deadlocked world returned nil error")
	}
	if !errors.Is(err, ErrAborted) {
		t.Errorf("error %v is not ErrAborted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestInterceptorVeto(t *testing.T) {
	veto := errors.New("link down")
	w := NewWorld(2,
		WithTimeout(time.Second),
		WithInterceptor(func(src, dst int, m *Message) error {
			if dst == 1 {
				return veto
			}
			return nil
		}))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			if err := SendValue(c, 1, 1, 1); !errors.Is(err, veto) {
				return fmt.Errorf("send err = %v, want veto", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	w := NewWorld(2, WithTimeout(5*time.Second))
	payload := []int64{1, 2, 3, 4}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, 1, 1, payload)
		}
		_, err := RecvSlice[int64](c, 0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := w.Counters(0), w.Counters(1)
	if c0.MsgsSent != 1 || c0.BytesSent != 32 {
		t.Errorf("rank 0 sent counters = %+v, want 1 msg / 32 bytes", c0)
	}
	if c1.MsgsRecv != 1 || c1.BytesRecv != 32 {
		t.Errorf("rank 1 recv counters = %+v, want 1 msg / 32 bytes", c1)
	}
	total := w.TotalCounters()
	if total.MsgsSent != total.MsgsRecv {
		t.Errorf("total sent %d != total recv %d", total.MsgsSent, total.MsgsRecv)
	}
	w.ResetCounters()
	if w.TotalCounters() != (Counters{}) {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestTypeMismatchDetected(t *testing.T) {
	w := NewWorld(2, WithTimeout(time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return SendValue(c, 1, 1, "not an int")
		}
		if _, err := RecvValue[int](c, 0, 1); err == nil {
			return errors.New("type mismatch not detected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilSliceRoundTrip(t *testing.T) {
	w := NewWorld(2, WithTimeout(time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice[int64](c, 1, 1, nil)
		}
		s, err := RecvSlice[int64](c, 0, 1)
		if err != nil {
			return err
		}
		if len(s) != 0 {
			return fmt.Errorf("nil slice arrived as %v", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

// TestMessageStorm is a property test: under a random all-pairs traffic
// pattern every message is delivered exactly once with its payload intact.
func TestMessageStorm(t *testing.T) {
	f := func(seed uint32, pRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 2
		msgsPerRank := int(nRaw%20) + 1
		w := NewWorld(p, WithTimeout(10*time.Second))
		var delivered atomic.Int64
		err := w.Run(func(c *Comm) error {
			rng := rand.New(rand.NewPCG(uint64(seed), uint64(c.Rank())))
			const tag Tag = 11
			// Everyone sends msgsPerRank messages to random peers, then
			// announces its per-peer counts so receivers know what to expect.
			counts := make([]int, p)
			for i := 0; i < msgsPerRank; i++ {
				dst := rng.IntN(p)
				counts[dst]++
				if err := SendValue(c, dst, tag, c.Rank()*1000+i); err != nil {
					return err
				}
			}
			for dst := 0; dst < p; dst++ {
				if err := SendValue(c, dst, tag+1, counts[dst]); err != nil {
					return err
				}
			}
			expect := 0
			for src := 0; src < p; src++ {
				n, err := RecvValue[int](c, src, tag+1)
				if err != nil {
					return err
				}
				expect += n
			}
			for i := 0; i < expect; i++ {
				v, err := RecvValue[int](c, AnySource, tag)
				if err != nil {
					return err
				}
				if v < 0 || v >= p*1000+msgsPerRank {
					return fmt.Errorf("corrupt payload %d", v)
				}
				delivered.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return delivered.Load() == int64(p*msgsPerRank)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf[int64]() != 8 || SizeOf[int32]() != 4 || SizeOf[byte]() != 1 {
		t.Error("SizeOf wrong for primitive types")
	}
	if SliceBytes([]uint64{1, 2, 3}) != 24 {
		t.Error("SliceBytes wrong")
	}
}

func TestRecvSliceFrom(t *testing.T) {
	w := NewWorld(3, WithTimeout(time.Second))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			got := make([]int, 0, 2)
			for i := 0; i < 2; i++ {
				s, src, err := RecvSliceFrom[int](c, AnySource, 1)
				if err != nil {
					return err
				}
				if len(s) != 1 || s[0] != src {
					return fmt.Errorf("from %d got %v", src, s)
				}
				got = append(got, src)
			}
			slices.Sort(got)
			if !slices.Equal(got, []int{1, 2}) {
				return fmt.Errorf("senders %v", got)
			}
			return nil
		}
		return SendSlice(c, 0, 1, []int{c.Rank()})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSendRecvLatency(b *testing.B) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					if err := SendValue(c, 1, 1, i); err != nil {
						return err
					}
					if _, err := RecvValue[int](c, 1, 2); err != nil {
						return err
					}
				}
				return nil
			}
			for i := 0; i < b.N; i++ {
				if _, err := RecvValue[int](c, 0, 1); err != nil {
					return err
				}
				if err := SendValue(c, 0, 2, i); err != nil {
					return err
				}
			}
			return nil
		})
	}()
	<-done
}
