package hssort

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hssort/internal/comm"
)

// Transport selects the communication backend a sort runs over. The
// algorithms are transport-agnostic — they program against the runtime's
// Transport interface — so the same sort runs in accounting mode, at
// shared-memory speed, or across OS processes on real sockets by
// flipping Config.Transport.
type Transport int

const (
	// TransportSim is the simulated message-passing runtime with full
	// byte accounting: every Stats field is populated, at the cost of
	// per-message bookkeeping. The default, and the backend behind all
	// paper-comparison numbers.
	TransportSim Transport = iota
	// TransportInproc is the zero-copy shared-memory fast path for
	// production-style throughput runs: payloads move by reference with
	// no serialization accounting, so sorts run faster but the
	// communication-volume fields of Stats (SplitterBytes,
	// ExchangeBytes, TotalMsgs, TotalBytes) read zero.
	TransportInproc
	// TransportTCP is the multi-process backend: each rank is its own
	// OS process and every message crosses a real socket through the
	// wire protocol of docs/WIRE.md, making the byte-volume fields of
	// Stats measured wire traffic rather than model output. With
	// Config.TCP left zero it runs as an in-process loopback mesh (p
	// ranks, real localhost sockets); with Config.TCP set it joins a
	// multi-process world — see the README's "Distributed deployment"
	// section.
	TransportTCP
)

// TCPConfig configures this process's endpoint of a multi-process TCP
// world (Config.Transport: TransportTCP). The zero value selects the
// in-process loopback mesh: all Procs ranks in this process, connected
// over real localhost sockets.
type TCPConfig struct {
	// Coordinator is the host:port of the rank-0 rendezvous listener.
	// Rank 0 binds it; other ranks dial it to register and learn the
	// peer address table. Setting it selects worker mode: this process
	// hosts exactly the rank given by Rank, and Sorter calls drive only
	// that rank (shards/outputs of other ranks stay in their processes).
	Coordinator string
	// Rank is this process's rank in [0, Procs).
	Rank int
	// ListenAddr is the bind address of this process's data listener
	// (ranks > 0). Default "127.0.0.1:0"; use a routable interface for
	// multi-machine worlds.
	ListenAddr string
	// BootstrapTimeout bounds rendezvous + mesh construction (default
	// 30s).
	BootstrapTimeout time.Duration
	// HeartbeatInterval is the liveness probe period: each endpoint
	// sends an empty heartbeat frame to every quiet peer at this
	// interval. Zero defaults to PeerTimeout/3 when PeerTimeout is set,
	// else heartbeats are off.
	HeartbeatInterval time.Duration
	// PeerTimeout declares a peer crashed after this much total silence
	// (no data, no heartbeats): surviving ranks then fail the run with a
	// *PeerCrashError naming the lost rank instead of hanging. Zero (the
	// default) disables timeout-based crash detection; connection EOFs
	// are still detected.
	PeerTimeout time.Duration
	// RejoinWait makes the next sort after a peer crash block up to this
	// long for the crashed rank to respawn and rejoin (worker processes
	// restarted with Rejoin set) before giving up. Zero starts the next
	// sort immediately, failing it if the mesh is still torn.
	RejoinWait time.Duration
	// Rejoin re-enters an existing world after a crash instead of
	// bootstrapping a new one: the respawned worker process re-registers
	// with the coordinator, learns the current address table and
	// generation, and redials its mesh edges while the survivors wait
	// (RejoinWait). Worker mode only (Coordinator must be set, Rank > 0).
	Rejoin bool
}

// transportSpec is one registered backend: the single source of truth
// behind String, ParseTransport, the flag help of cmd/hssort and the
// construction switch — so a new backend cannot drift out of the
// documentation or the error messages.
type transportSpec struct {
	value   Transport
	name    string
	summary string
	build   func(cfg Config) (comm.Transport, error)
}

// transportSpecs registers every backend, in flag-help order.
var transportSpecs = []transportSpec{
	{
		value:   TransportSim,
		name:    "sim",
		summary: "simulated in-process runtime with modeled byte accounting (the default)",
		build: func(cfg Config) (comm.Transport, error) {
			return comm.NewSimTransport(cfg.Procs), nil
		},
	},
	{
		value:   TransportInproc,
		name:    "inproc",
		summary: "zero-copy shared-memory fast path; byte/message stats read zero",
		build: func(cfg Config) (comm.Transport, error) {
			return comm.NewInprocTransport(cfg.Procs), nil
		},
	},
	{
		value:   TransportTCP,
		name:    "tcp",
		summary: "multi-process sockets with measured wire traffic (docs/WIRE.md); loopback mesh unless Config.TCP names a coordinator",
		build: func(cfg Config) (comm.Transport, error) {
			if cfg.TCP.Coordinator == "" {
				m, err := comm.NewTCPLoopback(cfg.Procs, comm.TCPOptions{
					BootstrapTimeout:  cfg.TCP.BootstrapTimeout,
					HeartbeatInterval: cfg.TCP.HeartbeatInterval,
					PeerTimeout:       cfg.TCP.PeerTimeout,
					RejoinWait:        cfg.TCP.RejoinWait,
				})
				if err != nil {
					return nil, err
				}
				return m, nil
			}
			return comm.DialTCP(comm.TCPOptions{
				Coordinator:       cfg.TCP.Coordinator,
				Rank:              cfg.TCP.Rank,
				Procs:             cfg.Procs,
				ListenAddr:        cfg.TCP.ListenAddr,
				BootstrapTimeout:  cfg.TCP.BootstrapTimeout,
				HeartbeatInterval: cfg.TCP.HeartbeatInterval,
				PeerTimeout:       cfg.TCP.PeerTimeout,
				RejoinWait:        cfg.TCP.RejoinWait,
				Rejoin:            cfg.TCP.Rejoin,
			})
		},
	},
}

// TransportNames returns the registered backend names in flag-help
// order: the list every error message and usage string derives from.
func TransportNames() []string {
	names := make([]string, len(transportSpecs))
	for i, s := range transportSpecs {
		names[i] = s.name
	}
	return names
}

// TransportSummaries returns "name: summary" lines for the registered
// backends, for command-line usage text.
func TransportSummaries() []string {
	out := make([]string, len(transportSpecs))
	for i, s := range transportSpecs {
		out[i] = s.name + ": " + s.summary
	}
	return out
}

// spec returns the registry entry for t.
func (t Transport) spec() (transportSpec, bool) {
	for _, s := range transportSpecs {
		if s.value == t {
			return s, true
		}
	}
	return transportSpec{}, false
}

// String returns the name used by the -transport command-line flags.
func (t Transport) String() string {
	if s, ok := t.spec(); ok {
		return s.name
	}
	return fmt.Sprintf("Transport(%d)", int(t))
}

// ParseTransport parses a -transport flag value (case-insensitively).
// The set of valid values — and the error listing them — comes from the
// backend registry, so it is always in sync with the implementations.
func ParseTransport(s string) (Transport, error) {
	for _, spec := range transportSpecs {
		if strings.EqualFold(s, spec.name) {
			return spec.value, nil
		}
	}
	return 0, fmt.Errorf("hssort: unknown transport %q (valid values: %s)", s, strings.Join(TransportNames(), ", "))
}

// newTransport builds the comm backend for a run over cfg.Procs ranks,
// wrapping it in the fault-injection layer when Config.Chaos is set.
func newTransport(cfg Config) (comm.Transport, error) {
	s, ok := cfg.Transport.spec()
	if !ok {
		return nil, fmt.Errorf("hssort: unknown transport %v (valid values: %s)", cfg.Transport, strings.Join(TransportNames(), ", "))
	}
	t, err := s.build(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		spec, err := cfg.Chaos.faultSpec(cfg.Procs)
		if err != nil {
			closeTransport(t)
			return nil, err
		}
		return comm.NewFaultTransport(t, spec), nil
	}
	return t, nil
}

// closeTransport releases backends that hold OS resources (sockets,
// goroutines); the in-memory backends need no teardown.
func closeTransport(t comm.Transport) {
	if c, ok := t.(io.Closer); ok {
		c.Close()
	}
}
