package comm

// Transport conformance suite: every test in this file runs against all
// built-in backends — the simulated and shared-memory in-memory runtimes
// and the TCP wire backend (as an in-process loopback mesh, so every
// byte still crosses the codec, framing and socket path) — pinning down
// the contract documented on the Transport interface: pairwise FIFO, tag
// matching, AnySource, native barrier, abort-on-panic. A new backend
// only has to pass this file to be a drop-in replacement.

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// transports enumerates the built-in backends under test. Transports
// built here are registered with closeLater by the test helpers, so
// socket-backed ones release their goroutines at test end.
var transports = []struct {
	name string
	mk   func(p int) Transport
}{
	{"sim", func(p int) Transport { return NewSimTransport(p) }},
	{"inproc", func(p int) Transport { return NewInprocTransport(p) }},
	{"tcp", func(p int) Transport {
		tr, err := NewTCPLoopback(p)
		if err != nil {
			panic(fmt.Sprintf("tcp loopback bootstrap: %v", err))
		}
		return tr
	}},
}

// forEachTransport runs fn once per backend as a subtest.
func forEachTransport(t *testing.T, fn func(t *testing.T, mk func(p int) Transport)) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) { fn(t, tr.mk) })
	}
}

// closeLater releases a transport's resources at test end (no-op for
// the in-memory backends, socket/goroutine teardown for tcp).
func closeLater(t *testing.T, tr Transport) Transport {
	t.Helper()
	if c, ok := tr.(io.Closer); ok {
		t.Cleanup(func() { c.Close() })
	}
	return tr
}

// world builds a World over a fresh transport of the given backend,
// released at test end.
func world(t *testing.T, mk func(p int) Transport, p int) *World {
	return NewWorld(p, WithTransport(closeLater(t, mk(p))), WithTimeout(10*time.Second))
}

// TestConformanceFIFO: messages from one sender on one tag arrive in
// send order, across several concurrent senders.
func TestConformanceFIFO(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p, n = 5, 300
		w := world(t, mk, p)
		err := w.Run(func(c *Comm) error {
			const tag Tag = 4
			for i := 0; i < n; i++ {
				if err := SendValue(c, 0, tag, c.Rank()*n+i); err != nil {
					return err
				}
			}
			if c.Rank() != 0 {
				return nil
			}
			next := make([]int, p)
			for i := 0; i < p*n; i++ {
				m, err := c.Recv(AnySource, tag)
				if err != nil {
					return err
				}
				v := m.Payload.(int)
				if want := m.Src*n + next[m.Src]; v != want {
					return fmt.Errorf("from %d got %d, want %d (FIFO violated)", m.Src, v, want)
				}
				next[m.Src]++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceTagMatching: a receiver asking for one tag never
// consumes or reorders traffic on another.
func TestConformanceTagMatching(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		w := world(t, mk, 2)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				if err := SendValue(c, 1, 2, "second"); err != nil {
					return err
				}
				return SendValue(c, 1, 1, "first")
			}
			a, err := RecvValue[string](c, 0, 1)
			if err != nil {
				return err
			}
			b, err := RecvValue[string](c, 0, 2)
			if err != nil {
				return err
			}
			if a != "first" || b != "second" {
				return fmt.Errorf("tag matching broken: got %q, %q", a, b)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceAnySource: a wildcard receiver sees every sender
// exactly once with the right payload.
func TestConformanceAnySource(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p = 8
		w := world(t, mk, p)
		err := w.Run(func(c *Comm) error {
			const tag Tag = 3
			if c.Rank() != 0 {
				return SendValue(c, 0, tag, c.Rank()*10)
			}
			seen := map[int]bool{}
			for i := 0; i < p-1; i++ {
				m, err := c.Recv(AnySource, tag)
				if err != nil {
					return err
				}
				if seen[m.Src] {
					return fmt.Errorf("duplicate message from %d", m.Src)
				}
				seen[m.Src] = true
				if m.Payload.(int) != m.Src*10 {
					return fmt.Errorf("wrong payload from %d: %v", m.Src, m.Payload)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceMixedAnySourceAndDirect: wildcard and directed receives
// on the same tag drain disjoint messages (no loss, no duplication).
func TestConformanceMixedAnySourceAndDirect(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p, n = 4, 50
		w := world(t, mk, p)
		var got atomic.Int64
		err := w.Run(func(c *Comm) error {
			const tag Tag = 6
			for i := 0; i < n; i++ {
				if err := SendValue(c, 0, tag, 1); err != nil {
					return err
				}
			}
			if c.Rank() != 0 {
				return nil
			}
			// Drain rank 1 directly, everything else via wildcard.
			for i := 0; i < n; i++ {
				if _, err := RecvValue[int](c, 1, tag); err != nil {
					return err
				}
				got.Add(1)
			}
			for i := 0; i < (p-1)*n; i++ {
				if _, err := RecvValue[int](c, AnySource, tag); err != nil {
					return err
				}
				got.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Load() != p*n {
			t.Fatalf("delivered %d messages, want %d", got.Load(), p*n)
		}
	})
}

// TestConformanceTryRecv: the posted-receive probe never blocks, never
// invents messages, respects tag matching, and drains in pairwise FIFO
// order interchangeably with blocking Recv.
func TestConformanceTryRecv(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		w := world(t, mk, 2)
		err := w.Run(func(c *Comm) error {
			const tag Tag = 5
			if c.Rank() == 1 {
				// Handshake so the probe below observes a settled mailbox.
				if _, err := c.Recv(0, tag+1); err != nil {
					return err
				}
				for i := 0; i < 4; i++ {
					if err := SendValue(c, 0, tag, i); err != nil {
						return err
					}
				}
				return SendValue(c, 0, tag+1, -1)
			}
			// Nothing sent yet: the probe must report no message.
			if _, ok, err := c.TryRecv(1, tag); err != nil || ok {
				return fmt.Errorf("probe of empty mailbox: ok=%v err=%v", ok, err)
			}
			// A probe for the wrong tag must not consume other traffic.
			if err := SendValue(c, 1, tag+1, 0); err != nil {
				return err
			}
			if _, err := c.Recv(1, tag+1); err != nil { // all 4 sent after this
				return err
			}
			if _, ok, err := c.TryRecv(1, tag+2); err != nil || ok {
				return fmt.Errorf("probe of absent tag: ok=%v err=%v", ok, err)
			}
			// Drain alternating probe/blocking receives: FIFO must hold.
			for want := 0; want < 4; want++ {
				var got int
				if want%2 == 0 {
					for {
						m, ok, err := c.TryRecv(1, tag)
						if err != nil {
							return err
						}
						if ok {
							got = m.Payload.(int)
							break
						}
					}
				} else {
					m, err := c.Recv(1, tag)
					if err != nil {
						return err
					}
					got = m.Payload.(int)
				}
				if got != want {
					return fmt.Errorf("mixed TryRecv/Recv drained %d, want %d", got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceTryRecvAfterAbort: the probe surfaces the abort error
// instead of reporting an empty mailbox.
func TestConformanceTryRecvAfterAbort(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		tr := closeLater(t, mk(2))
		tr.Abort(nil)
		if _, ok, err := tr.TryRecv(0, 1, 1); err == nil || ok {
			t.Fatalf("TryRecv after abort: ok=%v err=%v, want error", ok, err)
		}
	})
}

// TestConformanceSelfSend: a rank can message itself.
func TestConformanceSelfSend(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		w := world(t, mk, 1)
		err := w.Run(func(c *Comm) error {
			if err := SendValue(c, 0, 9, 5); err != nil {
				return err
			}
			v, err := RecvValue[int](c, 0, 9)
			if err != nil || v != 5 {
				return fmt.Errorf("self-send got %d, %v", v, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceAbortOnPanic: a panic in one rank unblocks every other
// rank's Recv instead of deadlocking, and no phantom message is
// delivered.
func TestConformanceAbortOnPanic(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p = 4
		w := world(t, mk, p)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				panic("rank 0 exploded")
			}
			if _, err := c.Recv(0, 1); err == nil {
				return errors.New("recv returned a phantom message after abort")
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error from panicked world")
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Errorf("error %q does not mention the panic", err)
		}
		if strings.Contains(err.Error(), "phantom") {
			t.Errorf("abort delivered a phantom message: %v", err)
		}
	})
}

// TestConformanceAbortUnblocksBarrier: ranks parked in the native
// barrier are released when the world aborts.
func TestConformanceAbortUnblocksBarrier(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		w := world(t, mk, 2)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				panic("boom")
			}
			return c.Barrier() // rank 0 never arrives
		})
		if err == nil {
			t.Fatal("expected abort to surface through Barrier")
		}
	})
}

// TestConformanceBarrier: no rank leaves the barrier before every rank
// has entered it, across repeated reuse of the same barrier.
func TestConformanceBarrier(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		const p, rounds = 6, 25
		w := world(t, mk, p)
		var entered atomic.Int64
		err := w.Run(func(c *Comm) error {
			for r := 0; r < rounds; r++ {
				entered.Add(1)
				if err := c.Barrier(); err != nil {
					return err
				}
				if n := entered.Load(); n < int64((r+1)*p) {
					return fmt.Errorf("round %d: left barrier after %d arrivals, want >= %d", r, n, (r+1)*p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceTimeout: the World watchdog aborts a deadlocked run on
// every backend.
func TestConformanceTimeout(t *testing.T) {
	forEachTransport(t, func(t *testing.T, mk func(p int) Transport) {
		w := NewWorld(2, WithTransport(closeLater(t, mk(2))), WithTimeout(50*time.Millisecond))
		err := w.Run(func(c *Comm) error {
			_, err := c.Recv((c.Rank()+1)%2, 1) // nobody sends
			return err
		})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	})
}

// TestCountersPerBackend pins the byte-accounting contract: sim counts
// every message and byte; inproc is explicitly unaccounted and reads
// zero.
func TestCountersPerBackend(t *testing.T) {
	run := func(tr Transport) *World {
		w := NewWorld(2, WithTransport(tr), WithTimeout(5*time.Second))
		if err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return SendSlice(c, 1, 1, []int64{1, 2, 3, 4})
			}
			_, err := RecvSlice[int64](c, 0, 1)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	sim := run(NewSimTransport(2))
	if got := sim.Counters(0); got.MsgsSent != 1 || got.BytesSent != 32 {
		t.Errorf("sim sender counters = %+v, want 1 msg / 32 bytes", got)
	}
	inproc := run(NewInprocTransport(2))
	if got := inproc.TotalCounters(); got != (Counters{}) {
		t.Errorf("inproc counters = %+v, want all zero", got)
	}
}

// TestWorldSizeMismatchPanics: NewWorld rejects a transport whose size
// disagrees with the world size.
func TestWorldSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	NewWorld(3, WithTransport(NewInprocTransport(2)))
}

// TestInterceptorRequiresSim: fault injection is a SimTransport feature;
// combining it with the inproc backend is a programming error.
func TestInterceptorRequiresSim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithInterceptor over inproc did not panic")
		}
	}()
	NewWorld(2,
		WithTransport(NewInprocTransport(2)),
		WithInterceptor(func(src, dst int, m *Message) error { return nil }))
}
