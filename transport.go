package hssort

import (
	"fmt"
	"strings"

	"hssort/internal/comm"
)

// Transport selects the communication backend a sort runs over. The
// algorithms are transport-agnostic — they program against the runtime's
// Transport interface — so the same sort runs in accounting mode or at
// shared-memory speed by flipping Config.Transport.
type Transport int

const (
	// TransportSim is the simulated message-passing runtime with full
	// byte accounting: every Stats field is populated, at the cost of
	// per-message bookkeeping. The default, and the backend behind all
	// paper-comparison numbers.
	TransportSim Transport = iota
	// TransportInproc is the zero-copy shared-memory fast path for
	// production-style throughput runs: payloads move by reference with
	// no serialization accounting, so sorts run faster but the
	// communication-volume fields of Stats (SplitterBytes,
	// ExchangeBytes, TotalMsgs, TotalBytes) read zero.
	TransportInproc
)

// String returns the name used by the -transport command-line flags.
func (t Transport) String() string {
	switch t {
	case TransportSim:
		return "sim"
	case TransportInproc:
		return "inproc"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// ParseTransport parses a -transport flag value (case-insensitively).
func ParseTransport(s string) (Transport, error) {
	switch strings.ToLower(s) {
	case "sim":
		return TransportSim, nil
	case "inproc":
		return TransportInproc, nil
	default:
		return 0, fmt.Errorf("hssort: unknown transport %q (valid values: sim, inproc)", s)
	}
}

// newTransport builds the comm backend for a run over p ranks.
func (t Transport) newTransport(p int) (comm.Transport, error) {
	switch t {
	case TransportSim:
		return comm.NewSimTransport(p), nil
	case TransportInproc:
		return comm.NewInprocTransport(p), nil
	default:
		return nil, fmt.Errorf("hssort: unknown transport %v", t)
	}
}
