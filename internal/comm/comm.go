// Package comm is a simulated distributed message-passing runtime: the
// substrate that stands in for MPI/Charm++ in this reproduction.
//
// A World hosts p ranks. Run launches one goroutine per rank executing the
// same SPMD function, mirroring how the paper's algorithm runs one process
// per core. Ranks share no mutable state; all interaction flows through
// Send/Recv with explicit byte accounting, so communication volume and
// message counts — the quantities in the paper's BSP analysis (§5.1) — are
// measured, not estimated.
//
// Semantics:
//
//   - Send is asynchronous and never blocks (mailboxes are unbounded), so
//     no protocol can deadlock on buffer exhaustion — matching MPI's
//     buffered-send model that the paper's collectives assume.
//   - Recv blocks until a message matching (src, tag) arrives. Matching
//     messages from one sender with one tag are delivered in send order
//     (pairwise FIFO, the MPI non-overtaking rule).
//   - Payloads are passed by reference (shared memory under the hood);
//     a sender must not touch a payload after sending. Bytes are counted
//     as if the payload were serialized.
//
// A panic in any rank aborts the whole World, unblocking every Recv with
// ErrAborted — otherwise a bug in one rank would deadlock the rest.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Tag distinguishes message streams between the same pair of ranks.
// Packages building on comm reserve disjoint tag ranges (see the Tag*
// constants in internal/collective).
type Tag uint32

// AnySource may be passed to Recv as src to match a message from any rank.
const AnySource = -1

// ErrAborted is returned from Send/Recv after the World aborts (rank
// panic, explicit Abort, or timeout).
var ErrAborted = errors.New("comm: world aborted")

// Message is one delivered unit: payload plus envelope.
type Message struct {
	// Src is the sending rank.
	Src int
	// Tag is the stream tag the message was sent with.
	Tag Tag
	// Payload is the transferred value, shared by reference.
	Payload any
	// Bytes is the accounted wire size of Payload.
	Bytes int64
}

// Counters accumulates per-rank traffic statistics. Each rank mutates only
// its own Counters from its own goroutine; read them after Run returns or
// from the owning rank.
type Counters struct {
	// MsgsSent and BytesSent count outgoing traffic.
	MsgsSent, BytesSent int64
	// MsgsRecv and BytesRecv count delivered (received) traffic.
	MsgsRecv, BytesRecv int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.MsgsSent += other.MsgsSent
	c.BytesSent += other.BytesSent
	c.MsgsRecv += other.MsgsRecv
	c.BytesRecv += other.BytesRecv
}

// Interceptor observes (and may veto) every message at send time. Used by
// tests for fault injection: returning a non-nil error makes the Send fail
// with that error.
type Interceptor func(src, dst int, m *Message) error

// mailbox is one rank's unbounded inbox.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
}

// World hosts p ranks and their mailboxes.
type World struct {
	p           int
	boxes       []*mailbox
	counters    []Counters
	interceptor Interceptor
	timeout     time.Duration

	abortMu  sync.Mutex
	abortErr error
}

// Option configures a World.
type Option func(*World)

// WithTimeout aborts the World if Run has not completed within d. A zero d
// disables the watchdog (the default).
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// WithInterceptor installs a message interceptor for fault injection.
func WithInterceptor(ic Interceptor) Option {
	return func(w *World) { w.interceptor = ic }
}

// NewWorld creates a World with p ranks. It panics if p < 1.
func NewWorld(p int, opts ...Option) *World {
	if p < 1 {
		panic(fmt.Sprintf("comm: world size %d < 1", p))
	}
	w := &World{
		p:        p,
		boxes:    make([]*mailbox, p),
		counters: make([]Counters, p),
	}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.p }

// Abort unblocks all pending and future Send/Recv calls with err (wrapped
// in ErrAborted if err is nil). The first abort wins.
func (w *World) Abort(err error) {
	w.abortMu.Lock()
	if w.abortErr == nil {
		if err == nil {
			err = ErrAborted
		}
		w.abortErr = err
	}
	w.abortMu.Unlock()
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// aborted returns the abort error, or nil if the world is live.
func (w *World) aborted() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// Run executes fn concurrently on every rank and waits for all to finish.
// It returns the joined errors of all ranks. A panic in any rank aborts
// the World and is reported as that rank's error; other ranks then fail
// with ErrAborted instead of hanging.
func (w *World) Run(fn func(c *Comm) error) error {
	var timer *time.Timer
	if w.timeout > 0 {
		timer = time.AfterFunc(w.timeout, func() {
			w.Abort(fmt.Errorf("%w: timeout after %v", ErrAborted, w.timeout))
		})
		defer timer.Stop()
	}
	var wg sync.WaitGroup
	errs := make([]error, w.p)
	for r := 0; r < w.p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					err := fmt.Errorf("comm: rank %d panicked: %v", rank, rec)
					errs[rank] = err
					w.Abort(err)
				}
			}()
			errs[rank] = fn(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Counters returns a copy of rank r's traffic counters. Call after Run
// returns (or from rank r itself) to avoid racing the owning goroutine.
func (w *World) Counters(r int) Counters { return w.counters[r] }

// TotalCounters sums counters across all ranks.
func (w *World) TotalCounters() Counters {
	var total Counters
	for i := range w.counters {
		total.Add(w.counters[i])
	}
	return total
}

// ResetCounters zeroes all counters. Only call while no ranks are running.
func (w *World) ResetCounters() {
	for i := range w.counters {
		w.counters[i] = Counters{}
	}
}

// Comm is one rank's handle to the World. Endpoint abstracts it so
// sub-groups (internal/collective.Group) can reuse the collectives.
type Comm struct {
	w    *World
	rank int
}

// Endpoint is the rank-addressed messaging surface collectives are built
// on: a Comm, or a Group view of a Comm subset.
type Endpoint interface {
	// Rank returns the caller's rank within the endpoint.
	Rank() int
	// Size returns the number of ranks in the endpoint.
	Size() int
	// Send delivers payload to dst asynchronously; bytes is the
	// accounted wire size.
	Send(dst int, tag Tag, payload any, bytes int64) error
	// Recv blocks for the next message matching (src, tag); src may be
	// AnySource.
	Recv(src int, tag Tag) (Message, error)
}

var _ Endpoint = (*Comm)(nil)

// Rank returns this handle's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the World size.
func (c *Comm) Size() int { return c.w.p }

// World returns the hosting World (for counters and abort).
func (c *Comm) World() *World { return c.w }

// Counters returns this rank's own traffic counters.
func (c *Comm) Counters() Counters { return c.w.counters[c.rank] }

// Send delivers payload to rank dst on stream tag. bytes is the accounted
// wire size of the payload (use the Slice/Value helpers to compute it).
// Send never blocks; it fails only if dst is invalid or the World aborted.
func (c *Comm) Send(dst int, tag Tag, payload any, bytes int64) error {
	if dst < 0 || dst >= c.w.p {
		return fmt.Errorf("comm: rank %d sent to invalid rank %d (world size %d)", c.rank, dst, c.w.p)
	}
	if err := c.w.aborted(); err != nil {
		return err
	}
	m := Message{Src: c.rank, Tag: tag, Payload: payload, Bytes: bytes}
	if ic := c.w.interceptor; ic != nil {
		if err := ic(c.rank, dst, &m); err != nil {
			return err
		}
	}
	mb := c.w.boxes[dst]
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
	cnt := &c.w.counters[c.rank]
	cnt.MsgsSent++
	cnt.BytesSent += bytes
	return nil
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// src may be AnySource. Messages from one sender on one tag arrive in send
// order; messages that do not match are left queued for other Recv calls.
func (c *Comm) Recv(src int, tag Tag) (Message, error) {
	if src != AnySource && (src < 0 || src >= c.w.p) {
		return Message{}, fmt.Errorf("comm: rank %d receiving from invalid rank %d", c.rank, src)
	}
	mb := c.w.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if (src == AnySource || m.Src == src) && m.Tag == tag {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				cnt := &c.w.counters[c.rank]
				cnt.MsgsRecv++
				cnt.BytesRecv += m.Bytes
				return m, nil
			}
		}
		if err := c.w.aborted(); err != nil {
			return Message{}, err
		}
		mb.cond.Wait()
	}
}
