// Package hssort is a Go reproduction of "Histogram Sort with Sampling"
// (Harsh; Kale, Solomonik — SPAA 2019 / UIUC 2017): a distributed
// splitter-based parallel sorting library with provable (1+ε) load
// balance, plus every baseline the paper evaluates against.
//
// The library simulates a distributed-memory machine: Sort spawns one
// goroutine per processor, all communication flows through an explicit
// message-passing runtime with byte accounting, and the returned Stats
// report the BSP quantities the paper measures (per-phase critical-path
// times, communication volume, histogramming rounds, sample sizes, and
// the achieved load imbalance).
//
// Quick start:
//
//	shards := ...           // [][]int64: one slice per simulated processor
//	cfg := hssort.Config{Procs: len(shards), Epsilon: 0.05}
//	out, stats, err := hssort.Sort(cfg, shards)
//
// out[i] is processor i's partition of the global sorted order;
// stats.Imbalance ≤ 1+ε with high probability.
//
// Services that sort repeatedly should hold a Sorter engine (New,
// NewFunc, NewKV, NewBytes) instead of calling Sort in a loop: the
// engine builds the simulated machine once and reuses it every call,
// threads a context.Context through every phase, and exposes splitter
// Plans — Plan runs only sampling+histogramming, SortWithPlan applies
// the stored splitters with zero histogramming rounds (guarded,
// optionally, by Config.PlanStaleness).
//
// Variable-length byte-string keys ([][]byte shards) sort through
// NewBytes/SortBytes on a prefix-code plane: an 8-byte prefix code
// drives the comparator-free kernels and bytes.Compare tie-breaks
// prefix collisions (counted in Stats.PrefixCollisions) — see NewBytes.
package hssort

import (
	"bytes"
	"cmp"
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"hssort/internal/comm"
	"hssort/internal/core"
	"hssort/internal/keycoder"
	"hssort/internal/rankoracle"
)

// Coder is an order-preserving bijection between keys and uint64 code
// points: compare(a, b) < 0 ⇔ Encode(a) < Encode(b), equal keys have
// equal codes, and Decode inverts Encode. Supplying one (Config.Coder)
// — or using a key type for which the library knows one: int64, uint64,
// int32, uint32, float64, float32 — lets the sort run its compute
// phases on the comparator-free code plane (see Config.CodePath).
type Coder[K any] = keycoder.Coder[K]

// Algorithm selects the sorting algorithm.
type Algorithm int

const (
	// HSS is Histogram Sort with Sampling in its production
	// configuration (§6.1.2): fixed 5·B-key oversampling per round
	// until all splitters are finalized. The paper's contribution and
	// the default.
	HSS Algorithm = iota
	// HSSOneRound is HSS with a single sampling round finished by the
	// scanning algorithm (§3.2).
	HSSOneRound
	// HSSTheoretical is HSS with the k-round geometric ratio schedule
	// of §3.3 (k = Config.Rounds, default log log B/ε).
	HSSTheoretical
	// SampleSortRegular is sample sort with regular sampling (§4.1.2).
	SampleSortRegular
	// SampleSortRandom is sample sort with random sampling (§4.1.1).
	SampleSortRandom
	// HistogramSort is classic histogram sort (§2.3) — key-space probe
	// bisection, no sampling. Requires an integer or float key type.
	HistogramSort
	// Bitonic is Batcher's bitonic sort on a hypercube (§4.2): requires
	// power-of-two Procs and equal shard sizes.
	Bitonic
	// Radix is a parallel MSD radix partition sort (§4.2). Requires an
	// integer or float key type.
	Radix
	// NodeHSS is HSS with the two-level node partitioning and message
	// combining of §6.1 (set Config.CoresPerNode).
	NodeHSS
	// OverPartition is parallel sorting by over-partitioning (Li &
	// Sevcik, §4.2): k·p sampled buckets assigned to ranks largest
	// first. Output is sorted per rank but rank order does not follow
	// key order.
	OverPartition
)

// String returns the algorithm name used in experiment output.
func (a Algorithm) String() string {
	switch a {
	case HSS:
		return "hss"
	case HSSOneRound:
		return "hss-1round"
	case HSSTheoretical:
		return "hss-theory"
	case SampleSortRegular:
		return "samplesort-regular"
	case SampleSortRandom:
		return "samplesort-random"
	case HistogramSort:
		return "histogramsort"
	case Bitonic:
		return "bitonic"
	case Radix:
		return "radix"
	case NodeHSS:
		return "node-hss"
	case OverPartition:
		return "overpartition"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// CodePath selects the compute plane: whether the sort's hot loops
// (local sort, partition cuts, histogram scans, k-way merges) run on
// comparator closures or on raw uint64 code points.
type CodePath int

const (
	// CodePathAuto — the default — engages the code plane whenever an
	// order-preserving coder for the key type is available (built-in for
	// the integer and float key types, or supplied via Config.Coder; key
	// coders also cover KV records) and the algorithm supports it, and
	// falls back to the comparator plane otherwise. Note that code
	// points are always 8 bytes, so for narrower key types (int32,
	// uint32) the bijective plane doubles the modeled communication
	// volume the sim transport accounts — use CodePathOff when studying
	// §5.1 byte counts of narrow keys.
	CodePathAuto CodePath = iota
	// CodePathOff forces the comparator plane everywhere — the
	// conformance oracle the code plane's equivalence tests run against.
	CodePathOff
	// CodePathOn requires the code plane and fails the sort if no coder
	// is available, the algorithm lacks code-plane support, or
	// TagDuplicates is set (tagged records carry no order-preserving
	// 64-bit code).
	CodePathOn
)

// String returns the name used by flags and experiment output.
func (cp CodePath) String() string {
	switch cp {
	case CodePathAuto:
		return "auto"
	case CodePathOff:
		return "off"
	case CodePathOn:
		return "on"
	default:
		return fmt.Sprintf("CodePath(%d)", int(cp))
	}
}

// ParseCodePath parses "auto", "off" or "on" (case-insensitively).
func ParseCodePath(s string) (CodePath, error) {
	switch strings.ToLower(s) {
	case "auto":
		return CodePathAuto, nil
	case "off":
		return CodePathOff, nil
	case "on":
		return CodePathOn, nil
	default:
		return 0, fmt.Errorf("hssort: unknown code path %q (valid values: auto, off, on)", s)
	}
}

// Config configures a sort run. The zero value plus Procs is usable:
// plain HSS at ε = 0.05.
type Config struct {
	// Procs is the number of simulated processors; it must equal
	// len(shards) in Sort. Required.
	Procs int
	// Algorithm selects the sort. Default HSS.
	Algorithm Algorithm
	// Epsilon is the load-imbalance threshold ε. Default 0.05.
	Epsilon float64
	// Buckets is the number of output ranges (virtual processors).
	// Default Procs. Buckets > Procs simulates ChaNGa's TreePiece
	// regime (§6.3).
	Buckets int
	// RoundRobinBuckets places buckets on ranks cyclically instead of
	// contiguously (§6.3's non-contiguous virtual processors). The
	// output is then sorted per rank but not across ranks.
	RoundRobinBuckets bool
	// Rounds is the round count for HSSTheoretical.
	Rounds int
	// OversampleFactor is the per-round oversampling factor f for HSS
	// (default 5) or the per-processor sample size for the sample
	// sorts (default: their provable values).
	OversampleFactor float64
	// MaxOversample caps the sample-sort per-processor sample.
	MaxOversample int
	// CoresPerNode configures NodeHSS. Required for NodeHSS.
	CoresPerNode int
	// TagDuplicates wraps every key with its (processor, index) origin
	// (§4.3), restoring the balance guarantee on duplicate-heavy
	// inputs. Supported by the HSS and sample-sort algorithms.
	TagDuplicates bool
	// Approx enables §3.4 approximate histogramming (HSS variants).
	Approx bool
	// Transport selects the communication backend: TransportSim (the
	// default, fully byte-accounted), TransportInproc (zero-copy
	// shared-memory fast path; communication-volume Stats read zero) or
	// TransportTCP (multi-process sockets with measured wire traffic;
	// see TCP below and docs/WIRE.md).
	Transport Transport
	// TCP configures the TransportTCP backend. The zero value runs an
	// in-process loopback mesh over real localhost sockets; setting
	// Coordinator joins a multi-process world in which this process
	// hosts the single rank TCP.Rank — the engine then sorts only that
	// rank's shard (shards[TCP.Rank]), peers sort theirs, and Stats are
	// populated on the rank-0 process only.
	TCP TCPConfig
	// Chaos, when non-nil, wraps the transport in a deterministic
	// seeded fault-injection layer: link faults (drop/delay/dup) that
	// add latency without changing output, and an optional one-shot
	// rank crash at a named phase. See ChaosConfig. Testing facility;
	// leave nil in production.
	Chaos *ChaosConfig
	// CodePath selects the compute plane; see the CodePath constants.
	// The default, CodePathAuto, engages the code-space fast path
	// whenever the key type admits it.
	CodePath CodePath
	// Coder optionally supplies the order-preserving key <-> uint64
	// bijection that unlocks the code plane for key types the library
	// does not know. It must hold a Coder[K] for Sort/SortFunc's key
	// type K — or, for SortKV, a Coder[K] for the record's key type —
	// and must agree with the sort's comparator; any other value fails
	// the sort. (The field is untyped because Config is not generic.)
	Coder any
	// StreamExchange replaces the materializing all-to-all + merge with
	// the streaming pipeline: bucket payloads move in ChunkKeys-sized
	// chunks interleaved across destinations and the k-way merge runs
	// incrementally as chunks arrive, overlapping the exchange tail
	// (§6.2) with peak in-flight memory bounded by the flow-control
	// window. Supported by the HSS variants, the sample sorts, classic
	// histogram sort and NodeHSS. Output is rank-identical to the
	// materializing path.
	StreamExchange bool
	// ChunkKeys is the streaming-exchange chunk size in keys; setting it
	// implies StreamExchange. Default 64Ki when streaming.
	ChunkKeys int
	// Workers is the per-rank compute worker pool size: the intra-rank
	// parallelism of the compute phases (local radix sort, partition
	// cuts, codec passes, k-way merges). 0 — the default — divides
	// GOMAXPROCS evenly among the ranks this process hosts (all Procs
	// for in-memory transports, one for a multi-process TCP rank), so
	// co-hosted ranks never oversubscribe the machine. 1 forces every
	// kernel serial. Output is rank-identical for every Workers value.
	// Supported by the HSS variants, the sample sorts, classic histogram
	// sort and NodeHSS; other algorithms ignore it.
	Workers int
	// PlanStaleness arms the staleness guard of plan-reuse sorts
	// (Sorter.SortWithPlan): after partitioning by a stored plan's
	// splitters, the ranks measure the bucket imbalance max·B/N those
	// splitters would produce (one B-length reduction) and re-histogram
	// when it exceeds this bound — Stats.Replanned reports it. The
	// value is directly comparable to the (1+ε) balance target: a
	// natural setting is a slack multiple such as 1.5·(1+ε). 0 (the
	// default) disables the guard and trusts the plan unconditionally.
	PlanStaleness float64
	// Seed makes randomized phases reproducible. Default 1.
	Seed uint64
	// Timeout aborts a wedged run (protocol-bug safety net). Default
	// 10 minutes.
	Timeout time.Duration
	// MemoryBudget, when > 0, puts the sort out of core: each rank
	// bounds its spill-managed working set — oversized local-sort
	// shards, admitted streaming-exchange chunks, materialized exchange
	// receives and the frames read back during the merges — to this many
	// bytes, writing the excess to compressed, checksummed run files
	// (docs/SPILL.md) that re-enter the k-way merge as additional
	// sources. The budget governs what the spill plane admits, not
	// caller-owned arrays: the input shards and the output partitions
	// are the caller's memory and are never counted. Output is
	// byte-identical to the in-memory sort; Stats.SpilledBytes reports
	// the traffic. Supported by the HSS variants, the sample sorts,
	// classic histogram sort and NodeHSS, for fixed-size key types
	// without pointers (ints, floats, plain structs of them — not
	// byte-string keys) and off the TagDuplicates path. 0 (the default)
	// keeps everything in memory.
	MemoryBudget int64
	// SpillDir is where an out-of-core sort puts its run files; each
	// rank claims the subdirectory hssort-rank-<r> under it (recreating
	// it on respawn, so a crashed predecessor's orphans are wiped). ""
	// — the default — uses per-rank directories under os.TempDir().
	// Setting SpillDir without MemoryBudget is a configuration error.
	SpillDir string
}

// Stats reports one sort run; see the field comments on the paper
// quantities each one reproduces.
type Stats struct {
	// N is the global key count, Buckets the bucket count.
	N       int64
	Buckets int
	// Rounds is the number of histogramming rounds (Table 6.1);
	// SamplePerRound and TotalSample the per-round and overall sample
	// sizes (Fig 4.1).
	Rounds         int
	SamplePerRound []int64
	TotalSample    int64
	// LocalSort, Splitter, Exchange, Merge are critical-path phase
	// times (Fig 6.1's breakdown).
	LocalSort, Splitter, Exchange, Merge time.Duration
	// ExchangeOverlap is merge time hidden inside the exchange on the
	// streaming path (§6.2's overlap; max over ranks, zero when
	// Config.StreamExchange is off).
	ExchangeOverlap time.Duration
	// PeakInFlightBytes is the peak per-rank volume buffered by the
	// streaming exchange awaiting merge (max over ranks; bounded by
	// (p-1)·window·ChunkKeys·keysize). Zero on the materializing path.
	PeakInFlightBytes int64
	// SplitterBytes and ExchangeBytes are total bytes sent during
	// splitter determination and data movement (§5.1's communication
	// terms).
	SplitterBytes, ExchangeBytes int64
	// TotalMsgs and TotalBytes are whole-run message and byte counts
	// (§6.1's message-combining metric).
	TotalMsgs, TotalBytes int64
	// Replanned reports that a plan-reuse sort (Sorter.SortWithPlan)
	// found its stored splitters stale under Config.PlanStaleness and
	// re-histogrammed; Rounds then counts the replan's rounds.
	Replanned bool
	// Workers is the resolved per-rank worker pool size the compute
	// phases ran with (Config.Workers after defaulting). 1 = serial.
	Workers int
	// ParSpawned and ParTasks count, summed over all ranks, the worker
	// goroutines forked and the parallel tasks executed by the compute
	// kernels — ParTasks/ParSpawned is the effective fan-out per fork.
	// Both are zero when Workers is 1.
	ParSpawned, ParTasks int64
	// Imbalance is max load / average load after sorting (§1).
	Imbalance float64
	// PrefixCollisions counts, summed over ranks, the keys that shared
	// an 8-byte prefix code with a neighbour during the local sorts and
	// therefore needed the comparator tie-break — the byte-key prefix
	// plane's measure of how much of the input the fixed-size code could
	// not discriminate. Zero off the prefix plane (NewBytes engines
	// only).
	PrefixCollisions int64
	// Reconnects and Respawns are transport lifecycle counters summed
	// over all ranks: dial retries beyond each first attempt, and rejoin
	// handshakes after a crash (1 from the rejoined rank plus 1 per
	// surviving peer that re-adopted it). Zero on the in-memory
	// transports — nonzero values fingerprint a TCP mesh that survived
	// churn.
	Reconnects, Respawns int64
	// SpilledBytes, SpillFileBytes and SpillReads are out-of-core plane
	// counters, summed over ranks: uncompressed key bytes written to
	// spill runs, the (compressed) bytes those runs occupied on disk,
	// and the frames read back during the merges. All zero when
	// Config.MemoryBudget is 0 or the budget was never exceeded.
	SpilledBytes, SpillFileBytes, SpillReads int64
	// PeakResidentBytes is the peak spill-managed working set of any
	// rank (max over ranks): the high-water mark of bytes the spill
	// plane held in memory at once. At most Config.MemoryBudget, down
	// to the merge's structural floor: every spilled run needs one
	// read-back frame (at least 64 keys) resident to stay mergeable,
	// so a budget smaller than fan-in × minimum frame is overshot by
	// exactly that floor rather than deadlocking.
	PeakResidentBytes int64
}

// Total returns the end-to-end critical-path time.
func (s Stats) Total() time.Duration {
	return s.LocalSort + s.Splitter + s.Exchange + s.Merge
}

func fromCore(st core.Stats) Stats {
	return Stats{
		N:                 st.N,
		Buckets:           st.Buckets,
		Rounds:            st.Rounds,
		SamplePerRound:    st.SamplePerRound,
		TotalSample:       st.TotalSample,
		LocalSort:         st.LocalSort,
		Splitter:          st.Splitter,
		Exchange:          st.Exchange,
		Merge:             st.Merge,
		ExchangeOverlap:   st.ExchangeOverlap,
		PeakInFlightBytes: st.PeakInFlight,
		SplitterBytes:     st.SplitterBytes,
		ExchangeBytes:     st.ExchangeBytes,
		Replanned:         st.Replanned,
		Workers:           st.Workers,
		ParSpawned:        st.ParSpawned,
		ParTasks:          st.ParTasks,
		Imbalance:         st.Imbalance,
		PrefixCollisions:  st.PrefixCollisions,
		Reconnects:        st.Reconnects,
		Respawns:          st.Respawns,
		SpilledBytes:      st.SpilledBytes,
		SpillFileBytes:    st.SpillFileBytes,
		SpillReads:        st.SpillReads,
		PeakResidentBytes: st.PeakResident,
	}
}

// Sort sorts shards[i] (the keys initially on processor i) across
// Config.Procs simulated processors and returns the per-processor sorted
// partitions. For every algorithm except RoundRobinBuckets placements,
// the concatenation out[0] ‖ out[1] ‖ … is the sorted input.
//
// Sort builds the whole simulated machine for one call and tears it
// down again. A service sorting repeatedly should create a Sorter
// (New) once instead: the engine reuses the transport, worker
// goroutines and scratch across calls, and unlocks the
// prepare-once/sort-many Plan API.
func Sort[K cmp.Ordered](cfg Config, shards [][]K) ([][]K, Stats, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(shards)
	}
	s, err := New[K](cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.Sort(context.Background(), shards)
}

// SortFunc is Sort with an explicit comparator, for key types without a
// built-in order. The HistogramSort and Radix algorithms additionally
// need key-space arithmetic and are unavailable through SortFunc unless
// Config.Coder supplies it. Like Sort, it is a one-shot wrapper over a
// throwaway engine; see NewFunc for the reusable form.
func SortFunc[K any](cfg Config, shards [][]K, compare func(K, K) int) ([][]K, Stats, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(shards)
	}
	s, err := NewFunc(cfg, compare)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.Sort(context.Background(), shards)
}

// SortBytes sorts variable-length byte-string keys across Config.Procs
// simulated processors and returns the per-processor sorted partitions
// in bytes.Compare order. It is a one-shot wrapper over a throwaway
// NewBytes engine; see NewBytes for the prefix code plane this runs on.
func SortBytes(cfg Config, shards [][][]byte) ([][][]byte, Stats, error) {
	if cfg.Procs == 0 {
		cfg.Procs = len(shards)
	}
	s, err := NewBytes(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	defer s.Close()
	return s.Sort(context.Background(), shards)
}

// NewBytes creates a Sorter for variable-length byte-string keys,
// ordered by bytes.Compare. No bijective coder exists for unbounded
// keys, so the engine runs the prefix code plane: each key's code is
// its first 8 bytes read big-endian (keycoder.Prefix) — an
// order-preserving but non-injective decoration — and every code-keyed
// kernel (radix local sort, partition cuts, histogram scans, merges)
// is followed by a comparator tie-break exactly where distinct keys
// can collide on a code. Splitter determination runs entirely in code
// space, so splitter traffic stays fixed-size regardless of key
// length; on adversarial inputs whose keys all share an 8-byte prefix
// the protocol saturates after its stagnation window instead of
// looping, and Plan.AchievedEpsilon reports the honest (possibly
// large) imbalance the code plane could express.
//
// Supported algorithms: the HSS variants, the sample sorts, classic
// HistogramSort (probe bisection over code space), NodeHSS, Bitonic
// and OverPartition (pure comparator). Radix is unavailable — it needs
// the full bijection. CodePathOff forces the pure comparator plane
// (the conformance oracle); output is rank-identical either way.
// Stats.PrefixCollisions reports how often the tie-break fired.
func NewBytes(cfg Config) (*Sorter[[]byte], error) {
	if cfg.Coder != nil {
		return nil, fmt.Errorf("hssort: byte-string keys admit no bijective coder; NewBytes uses the built-in prefix code (unset Config.Coder)")
	}
	return newSorter[[]byte](cfg, bytes.Compare, nil, keycoder.Prefix{}.Code, nil, true)
}

// resolveCoder merges the built-in coder for the key type with an
// explicit Config.Coder, which wins when present and fails loudly when
// it holds the wrong type.
func resolveCoder[K any](cfg Config, builtin keycoder.Coder[K]) (keycoder.Coder[K], error) {
	if cfg.Coder == nil {
		return builtin, nil
	}
	c, ok := cfg.Coder.(keycoder.Coder[K])
	if !ok {
		var zero K
		return nil, fmt.Errorf("hssort: Config.Coder is %T, want hssort.Coder[%T]", cfg.Coder, zero)
	}
	return c, nil
}

// bijectiveCodePlane reports whether the algorithm's whole pipeline can
// run in code space (keys encoded once, codes travel the exchange,
// output decoded once). Bitonic and OverPartition keep their
// comparator-structured data movement.
func bijectiveCodePlane(a Algorithm) bool {
	switch a {
	case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, Radix, NodeHSS:
		return true
	}
	return false
}

// recordCodePlane reports whether the algorithm accepts the decorated
// record plane (payload-carrying keys sorted and merged by extracted
// codes). HistogramSort and Radix are excluded: they need the full
// bijection for key-space arithmetic, which records do not admit.
func recordCodePlane(a Algorithm) bool {
	switch a {
	case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, NodeHSS:
		return true
	}
	return false
}

// prefixCodePlane reports whether the algorithm accepts the prefix
// plane (non-injective order-preserving codes with comparator
// tie-breaks — byte-string keys). HistogramSort qualifies: its probe
// bisection runs over code space directly. Radix does not — it needs
// the full bijection to reconstruct keys from codes.
func prefixCodePlane(a Algorithm) bool {
	switch a {
	case HSS, HSSOneRound, HSSTheoretical, SampleSortRegular, SampleSortRandom, HistogramSort, NodeHSS:
		return true
	}
	return false
}

// coderFor returns the keycoder for supported ordered key types, or nil.
func coderFor[K any]() keycoder.Coder[K] {
	var zero K
	switch any(zero).(type) {
	case int64:
		return any(keycoder.Int64{}).(keycoder.Coder[K])
	case uint64:
		return any(keycoder.Uint64{}).(keycoder.Coder[K])
	case int32:
		return any(keycoder.Int32{}).(keycoder.Coder[K])
	case uint32:
		return any(keycoder.Uint32{}).(keycoder.Coder[K])
	case float64:
		return any(keycoder.Float64{}).(keycoder.Coder[K])
	case float32:
		return any(keycoder.Float32{}).(keycoder.Coder[K])
	default:
		return nil
	}
}

// SimulateSplitters runs the splitter-determination protocol centrally at
// arbitrary scale (the paper's true processor counts) without moving any
// data: the tool behind Table 6.1 and the measured Fig 4.1 curves. See
// SimResult for the reported quantities.
func SimulateSplitters(n int64, buckets int, eps float64, alg Algorithm, rounds int, seed uint64) (SimResult, error) {
	sched := core.FixedOversampling
	switch alg {
	case HSSOneRound:
		sched = core.OneRoundScanning
	case HSSTheoretical:
		sched = core.Theoretical
	case HSS:
	default:
		return SimResult{}, fmt.Errorf("hssort: SimulateSplitters supports the HSS variants, not %v", alg)
	}
	res, err := core.SimulateSplitters(n, core.Options[int64]{
		Cmp:      cmp.Compare[int64],
		Buckets:  buckets,
		Epsilon:  eps,
		Schedule: sched,
		Rounds:   rounds,
		Seed:     seed,
	})
	if err != nil {
		return SimResult{}, err
	}
	return SimResult(res), nil
}

// SimResult reports a SimulateSplitters run: rounds, per-round sample
// sizes, interval coverage per round, achieved bucket imbalance, and
// whether every splitter met its window.
type SimResult struct {
	Rounds           int
	SamplePerRound   []int64
	TotalSample      int64
	CoveragePerRound []int64
	Imbalance        float64
	Finalized        bool
}

// ApproxRanks answers global rank queries over sharded data with the
// §3.4 approximate rank oracle: each simulated processor summarizes its
// shard with a √(2p ln p)/ε-key representative sample, and every answer
// is within N·ε/p of the true rank w.h.p. (Theorem 3.4.1) at the cost of
// one small reduction per query batch — the paper's standalone primitive
// for repeated rank/quantile queries.
func ApproxRanks[K cmp.Ordered](shards [][]K, probes []K, eps float64, seed uint64) ([]int64, error) {
	p := len(shards)
	if p < 1 {
		return nil, fmt.Errorf("hssort: at least one shard is required")
	}
	var ranks []int64
	w := comm.NewWorld(p, comm.WithTimeout(10*time.Minute))
	err := w.Run(func(c *comm.Comm) error {
		local := make([]K, len(shards[c.Rank()]))
		copy(local, shards[c.Rank()])
		slices.SortFunc(local, cmp.Compare[K])
		oracle, err := rankoracle.New(c, local, rankoracle.Options[K]{
			Cmp: cmp.Compare[K], Epsilon: eps, Seed: seed,
		})
		if err != nil {
			return err
		}
		got, err := oracle.Query(probes)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			ranks = got
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ranks, nil
}
