package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hssort"
)

// Config configures the daemon. The zero value is usable; withDefaults
// fills the blanks.
type Config struct {
	// Shards is the engine shard (simulated processor) count every job
	// is split across. Default 4.
	Shards int
	// Transport selects the engines' communication backend. Default
	// hssort.TransportInproc (zero-copy in-process).
	Transport hssort.Transport
	// Workers is each engine's per-rank compute worker pool size.
	// Default 1 (serial per rank): concurrent jobs already fan out
	// across engines, so per-rank parallelism would oversubscribe.
	Workers int
	// Epsilon is the engines' load-imbalance threshold. Default 0.05.
	Epsilon float64
	// QueueDepth bounds the admission queue; submissions past it are
	// refused with 429. Default 64.
	QueueDepth int
	// TenantConcurrency caps one tenant's simultaneously running jobs.
	// Default 2.
	TenantConcurrency int
	// Concurrency is the scheduler worker count — the daemon-wide cap
	// on simultaneously running jobs. Default 4.
	Concurrency int
	// PlanCacheSize bounds the splitter-plan LRU. Default 128.
	PlanCacheSize int
	// PlanStaleness is the engines' replan guard threshold. Default 1.5.
	PlanStaleness float64
	// MaxKeys, when positive, refuses jobs above it with 413. Default 0
	// (unlimited).
	MaxKeys int
	// RetainJobs bounds how many finished jobs stay queryable before
	// the oldest are evicted. Default 256.
	RetainJobs int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Transport == 0 {
		c.Transport = hssort.TransportInproc
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.05
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantConcurrency <= 0 {
		c.TenantConcurrency = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 128
	}
	if c.PlanStaleness <= 0 {
		c.PlanStaleness = 1.5
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	return c
}

// dsKey addresses a tenant's named dataset.
type dsKey struct {
	tenant string
	name   string
}

// Server is the sort service: an http.Handler wiring the job scheduler,
// the warm-engine pool, the plan cache and the metrics registry
// together. Create with New, serve with any http.Server, stop with
// Drain (graceful) then no further use.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	sched   *scheduler
	engines *enginePool
	plans   *planCache
	metrics *metrics

	// fingerprint computes the plan-cache dataset sketch; a field so
	// tests can force collisions to exercise the staleness guard.
	fingerprint func(keyType string, shards, n int, sample []uint64) uint64

	mu        sync.Mutex
	jobs      map[string]*job
	doneOrder []string // finished job ids, oldest first, for eviction
	seq       int
	datasets  map[dsKey]*storedDataset
}

// New builds a Server and starts its scheduler workers.
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg.withDefaults(),
		engines:     newEnginePool(),
		metrics:     newMetrics(),
		fingerprint: fingerprint,
		jobs:        make(map[string]*job),
		datasets:    make(map[dsKey]*storedDataset),
	}
	s.plans = newPlanCache(s.cfg.PlanCacheSize)
	s.sched = newScheduler(s.cfg.QueueDepth, s.cfg.TenantConcurrency, s.cfg.Concurrency, s.runJob)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/datasets/{name}/rank", s.handleRank)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// engineConfig is the one hssort.Config shape every pooled engine runs
// with; engines differ only by key type.
func (s *Server) engineConfig() hssort.Config {
	return hssort.Config{
		Procs:          s.cfg.Shards,
		Epsilon:        s.cfg.Epsilon,
		Transport:      s.cfg.Transport,
		Workers:        s.cfg.Workers,
		StreamExchange: true,
		PlanStaleness:  s.cfg.PlanStaleness,
	}
}

// Drain stops admission (healthz flips to 503, new submissions get
// 503), waits for every admitted job to finish, then tears down the
// engine pool. Returns ctx.Err() if ctx expires first — jobs then keep
// finishing in the background but engines are not torn down.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.beginDrain()
	done := make(chan struct{})
	go func() {
		s.sched.wait()
		close(done)
	}()
	select {
	case <-done:
		s.engines.closeAll()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with no deadline.
func (s *Server) Close() { _ = s.Drain(context.Background()) }

// jobDoc is the job document returned by the jobs endpoints.
type jobDoc struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
	KeyType string `json:"keyType"`
	N       int    `json:"n"`
	Status  string `json:"status"`
	// Error is the failure (or cancellation) cause, set for failed and
	// canceled jobs.
	Error string `json:"error,omitempty"`
	// PlanCache is the run's plan-cache verdict: "hit", "miss" or
	// "replanned". Empty until the job finishes (or when it never
	// reached a sort).
	PlanCache string `json:"planCache,omitempty"`
	// Stats is the sort's per-run statistics, set for done jobs.
	Stats *hssort.StatsSnapshot `json:"stats,omitempty"`
	// Result is the sorted output, set for done jobs.
	Result *jobResult `json:"result,omitempty"`
}

func (j *job) doc() jobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := jobDoc{
		ID:      j.id,
		Tenant:  j.tenant,
		Dataset: j.dataset,
		KeyType: j.data.keyType(),
		N:       j.data.n(),
		Status:  string(j.status),
	}
	if j.err != nil {
		d.Error = j.err.Error()
	}
	d.PlanCache = j.outcome.String()
	if j.status == statusDone {
		snap := j.stats.Snapshot()
		d.Stats = &snap
		d.Result = j.result
	}
	return d
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("body: %v", err))
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, errors.New("tenant is required"))
		return
	}
	if req.Dataset == "" {
		req.Dataset = "default"
	}
	data, err := decodePayload(&req, s.cfg.Shards)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.MaxKeys > 0 && data.n() > s.cfg.MaxKeys {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d keys exceeds the %d-key job limit", data.n(), s.cfg.MaxKeys))
		return
	}

	// The job context deliberately hangs off Background, not the
	// request: async jobs outlive their submission request.
	ctx := context.Background()
	var cancel context.CancelFunc
	if req.TimeoutMs > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j := &job{
		tenant:    req.Tenant,
		dataset:   req.Dataset,
		data:      data,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    statusQueued,
		submitted: time.Now(),
	}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("j-%08d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	if err := s.sched.submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		cancel()
		var quota *hssort.QuotaExceededError
		if errors.As(err, &quota) {
			s.metrics.rejected429(req.Tenant)
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}

	status := http.StatusAccepted
	if req.Wait {
		select {
		case <-j.done:
			status = http.StatusOK
		case <-r.Context().Done():
			// The submitter hung up; the job keeps running. Report
			// where it stands.
		}
	}
	writeJSON(w, status, j.doc())
}

// handleGetJob is GET /v1/jobs/{id}. The tenant query parameter must
// match the job's tenant; a foreign or unknown job is a uniform 404, so
// tenants cannot probe each other's job ids.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookupJob(r.PathValue("id"), r.URL.Query().Get("tenant"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.doc())
}

// handleCancelJob is DELETE /v1/jobs/{id}: cancels the job's context.
// A queued job fails before touching an engine; a running job aborts
// mid-phase on every rank. The engine survives for the next job.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.lookupJob(r.PathValue("id"), r.URL.Query().Get("tenant"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.doc())
}

func (s *Server) lookupJob(id, tenant string) (*job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok || j.tenant != tenant {
		return nil, &hssort.JobNotFoundError{ID: id}
	}
	return j, nil
}

// handleRank is GET /v1/datasets/{name}/rank?tenant=T&key=K: answers
// rank and percentile queries against the tenant's most recent sorted
// output for the named dataset.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant := r.URL.Query().Get("tenant")
	key := r.URL.Query().Get("key")
	if !r.URL.Query().Has("key") {
		writeError(w, http.StatusBadRequest, errors.New("key query parameter is required"))
		return
	}
	s.mu.Lock()
	sd := s.datasets[dsKey{tenant: tenant, name: name}]
	s.mu.Unlock()
	if sd == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no sorted dataset %q for tenant %q", name, tenant))
		return
	}
	rank, err := sd.rank(key)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := struct {
		Dataset    string  `json:"dataset"`
		KeyType    string  `json:"keyType"`
		Key        string  `json:"key"`
		Rank       int64   `json:"rank"`
		N          int64   `json:"n"`
		Percentile float64 `json:"percentile"`
	}{Dataset: name, KeyType: sd.keyType, Key: key, Rank: rank, N: sd.n}
	if sd.n > 0 {
		resp.Percentile = float64(rank) / float64(sd.n)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics is GET /metrics (Prometheus text format).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, running := s.sched.depth()
	g := gauges{
		queued:       queued,
		running:      running,
		enginesBuilt: s.engines.count(),
		planEntries:  s.plans.len(),
		draining:     s.sched.isDraining(),
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeTo(w, g)
}

// handleHealthz is GET /healthz: 200 "ok" while serving, 503
// "draining" once Drain began.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.sched.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// runJob executes one dequeued job on the engine pool. It is the
// scheduler's run callback.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	defer j.cancel()
	if err := j.ctx.Err(); err != nil {
		// Canceled or timed out while still queued: fail without
		// touching an engine.
		s.finishJob(j, nil, nil, hssort.Stats{}, planNone, err)
		return
	}
	j.mu.Lock()
	j.status = statusRunning
	j.started = time.Now()
	j.mu.Unlock()
	res, sd, stats, outcome, err := j.data.run(j.ctx, s, j.tenant)
	s.finishJob(j, res, sd, stats, outcome, err)
}

func (s *Server) finishJob(j *job, res *jobResult, sd *storedDataset, stats hssort.Stats, outcome planOutcome, err error) {
	status := statusDone
	switch {
	case errors.Is(err, context.Canceled):
		status = statusCanceled
	case err != nil:
		status = statusFailed
	}
	j.mu.Lock()
	j.status = status
	j.err = err
	j.result = res
	j.stats = stats
	j.outcome = outcome
	j.finished = time.Now()
	j.mu.Unlock()

	s.mu.Lock()
	if status == statusDone && sd != nil {
		s.datasets[dsKey{tenant: j.tenant, name: j.dataset}] = sd
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()

	s.metrics.jobFinished(j.tenant, string(status), stats, outcome)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
