package hssort

import (
	"slices"
	"strings"
	"testing"
	"time"

	"hssort/internal/dist"
)

// TestSortManyRanks exercises the runtime at a rank count well beyond
// the other tests (one goroutine per rank; mailbox matching must stay
// sub-quadratic in practice).
func TestSortManyRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank world")
	}
	const p, perRank = 256, 400
	shards := dist.Spec{Kind: dist.Gaussian}.Shards(perRank, p, 3)
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	outs, stats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: 5, Timeout: 5 * time.Minute}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, o := range outs {
		got = append(got, o...)
	}
	if !slices.Equal(got, want) {
		t.Fatal("256-rank sort incorrect")
	}
	if stats.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", stats.Imbalance)
	}
}

// TestSortTimeoutSurfacesCleanly: an absurdly short timeout must produce
// an error mentioning the abort, never a hang or a panic.
func TestSortTimeoutSurfacesCleanly(t *testing.T) {
	const p = 16
	shards := dist.Spec{Kind: dist.Uniform}.Shards(200000, p, 3)
	_, _, err := Sort(Config{Procs: p, Timeout: 1 * time.Nanosecond}, shards)
	if err == nil {
		t.Skip("sort beat the 1ns timeout (!)")
	}
	if !strings.Contains(err.Error(), "abort") && !strings.Contains(err.Error(), "timeout") {
		t.Errorf("timeout error does not mention the abort: %v", err)
	}
}

// TestOverPartitionFacade: per-rank sorted output, union is a
// permutation (rank order intentionally does not follow key order).
func TestOverPartitionFacade(t *testing.T) {
	const p, perRank = 8, 1500
	shards := dist.Spec{Kind: dist.Exponential}.Shards(perRank, p, 11)
	var want []int64
	for _, s := range shards {
		want = append(want, s...)
	}
	slices.Sort(want)
	outs, stats, err := Sort(Config{Procs: p, Algorithm: OverPartition, Seed: 3}, shards)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, o := range outs {
		if !slices.IsSorted(o) {
			t.Fatal("rank output not sorted")
		}
		got = append(got, o...)
	}
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatal("not a permutation")
	}
	if stats.Imbalance > 2 {
		t.Errorf("LPT imbalance %.3f", stats.Imbalance)
	}
}

// TestRepeatedSortsSameWorldSeedsDiffer: same configuration with
// different seeds must still sort correctly (no hidden seed coupling),
// and identical seeds must reproduce identical stats.
func TestSortDeterministicGivenSeed(t *testing.T) {
	const p, perRank = 6, 2000
	run := func(seed uint64) ([]int64, Stats) {
		shards := dist.Spec{Kind: dist.PowerSkew}.Shards(perRank, p, 9)
		outs, stats, err := Sort(Config{Procs: p, Epsilon: 0.1, Seed: seed}, shards)
		if err != nil {
			t.Fatal(err)
		}
		var flat []int64
		for _, o := range outs {
			flat = append(flat, o...)
		}
		return flat, stats
	}
	a1, s1 := run(7)
	a2, s2 := run(7)
	b, _ := run(8)
	if !slices.Equal(a1, a2) {
		t.Error("same seed produced different outputs")
	}
	if s1.Rounds != s2.Rounds || s1.TotalSample != s2.TotalSample {
		t.Errorf("same seed produced different protocol stats: %+v vs %+v", s1, s2)
	}
	if !slices.Equal(a1, b) {
		t.Error("different seeds changed the sorted output (it must be seed-independent)")
	}
}

// TestAllAlgorithmsUnderRace is a compact everything-at-once run meant
// to be exercised with -race in CI: one sort per algorithm, small data.
func TestAllAlgorithmsUnderRace(t *testing.T) {
	const p, perRank = 4, 300
	algs := []Algorithm{HSS, HSSOneRound, HSSTheoretical, SampleSortRegular,
		SampleSortRandom, HistogramSort, Bitonic, Radix, NodeHSS, OverPartition}
	for _, alg := range algs {
		shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, 13)
		cfg := Config{Procs: p, Algorithm: alg, Epsilon: 0.2, Seed: 3}
		if alg == NodeHSS {
			cfg.CoresPerNode = 2
		}
		if _, _, err := Sort(cfg, shards); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}
