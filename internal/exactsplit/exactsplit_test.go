package exactsplit

import (
	"cmp"
	"fmt"
	"slices"
	"testing"
	"testing/quick"
	"time"

	"hssort/internal/comm"
	"hssort/internal/dist"
)

func icmp(a, b int64) int { return cmp.Compare(a, b) }

// runSelect executes Select over a world built from shards and returns
// rank 0's answer plus the flattened global sorted data.
func runSelect(t *testing.T, shards [][]int64, targets []int64) ([]int64, []int64) {
	t.Helper()
	p := len(shards)
	var result []int64
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		keys, err := Select(c, local, targets, Options[int64]{Cmp: icmp})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			result = keys
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var global []int64
	for _, s := range shards {
		global = append(global, s...)
	}
	slices.Sort(global)
	return result, global
}

func TestSelectExactRanks(t *testing.T) {
	const p, perRank = 5, 2000
	shards := dist.Spec{Kind: dist.Uniform}.Shards(perRank, p, 3)
	targets := []int64{0, 1, 777, 5000, 9998, 9999}
	keys, global := runSelect(t, shards, targets)
	for i, tgt := range targets {
		if keys[i] != global[tgt] {
			t.Errorf("target %d: got key %d, want %d", tgt, keys[i], global[tgt])
		}
	}
}

func TestSelectWithDuplicates(t *testing.T) {
	const p, perRank = 4, 1000
	shards := make([][]int64, p)
	for r := range shards {
		shards[r] = make([]int64, perRank)
		for i := range shards[r] {
			shards[r][i] = int64(i % 7) // heavy duplication
		}
	}
	targets := []int64{0, 1999, 2000, 3999}
	keys, global := runSelect(t, shards, targets)
	for i, tgt := range targets {
		if keys[i] != global[tgt] {
			t.Errorf("target %d: got %d, want %d", tgt, keys[i], global[tgt])
		}
	}
}

func TestSelectSkewedShards(t *testing.T) {
	// Staircase: each rank holds a disjoint band, so windows vanish on
	// most ranks quickly — stresses the weighted-median fallbacks.
	const p, perRank = 6, 1500
	shards := dist.Spec{Kind: dist.Staircase}.Shards(perRank, p, 7)
	n := int64(p * perRank)
	targets := []int64{n / 6, n / 3, n / 2, 2 * n / 3, n - 1}
	keys, global := runSelect(t, shards, targets)
	for i, tgt := range targets {
		if keys[i] != global[tgt] {
			t.Errorf("target %d: got %d, want %d", tgt, keys[i], global[tgt])
		}
	}
}

func TestSelectAgreesAcrossRanks(t *testing.T) {
	const p = 4
	shards := dist.Spec{Kind: dist.Gaussian}.Shards(1000, p, 9)
	all := make([][]int64, p)
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		keys, err := Select(c, local, []int64{10, 2000, 3999}, Options[int64]{Cmp: icmp})
		all[c.Rank()] = keys
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if !slices.Equal(all[r], all[0]) {
			t.Fatalf("rank %d disagrees", r)
		}
	}
}

func TestSelectValidation(t *testing.T) {
	w := comm.NewWorld(2, comm.WithTimeout(10*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := []int64{int64(c.Rank())}
		if _, err := Select(c, local, []int64{5}, Options[int64]{Cmp: icmp}); err == nil {
			return fmt.Errorf("out-of-range target accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w2 := comm.NewWorld(1, comm.WithTimeout(10*time.Second))
	err = w2.Run(func(c *comm.Comm) error {
		if _, err := Select(c, []int64{1}, []int64{0}, Options[int64]{}); err == nil {
			return fmt.Errorf("missing Cmp accepted")
		}
		keys, err := Select(c, []int64{1}, nil, Options[int64]{Cmp: icmp})
		if err != nil || len(keys) != 0 {
			return fmt.Errorf("empty targets: %v %v", keys, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerfectSplittersBalance(t *testing.T) {
	const p, perRank = 4, 2500
	shards := dist.Spec{Kind: dist.Exponential}.Shards(perRank, p, 11)
	var splitters []int64
	w := comm.NewWorld(p, comm.WithTimeout(60*time.Second))
	err := w.Run(func(c *comm.Comm) error {
		local := slices.Clone(shards[c.Rank()])
		slices.Sort(local)
		sp, _, err := PerfectSplitters(c, local, p, Options[int64]{Cmp: icmp})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			splitters = sp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bucket sizes from exact splitters differ from N/p only by
	// duplicate mass at the boundaries (none here w.h.p. for
	// exponential draws over a huge range).
	var global []int64
	for _, s := range shards {
		global = append(global, s...)
	}
	slices.Sort(global)
	prev := 0
	for _, s := range splitters {
		idx, _ := slices.BinarySearch(global, s)
		size := idx - prev
		if size < perRank-2 || size > perRank+2 {
			t.Errorf("bucket size %d, want ~%d", size, perRank)
		}
		prev = idx
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(seed uint32, pRaw uint8) bool {
		pp := int(pRaw%4) + 1
		spec := dist.Spec{Kind: dist.Kind(seed % 6), Min: 0, Max: 1 << 16}
		shards := make([][]int64, pp)
		var global []int64
		for r := range shards {
			shards[r] = spec.Shard(int(seed%300)+10, r, pp, uint64(seed))
			global = append(global, shards[r]...)
		}
		slices.Sort(global)
		n := int64(len(global))
		targets := []int64{0, n / 3, n / 2, n - 1}
		var got []int64
		w := comm.NewWorld(pp, comm.WithTimeout(60*time.Second))
		err := w.Run(func(c *comm.Comm) error {
			local := slices.Clone(shards[c.Rank()])
			slices.Sort(local)
			keys, err := Select(c, local, targets, Options[int64]{Cmp: icmp})
			if c.Rank() == 0 {
				got = keys
			}
			return err
		})
		if err != nil {
			t.Log(err)
			return false
		}
		for i, tgt := range targets {
			if got[i] != global[tgt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
