package comm

import (
	"fmt"
	"unsafe"
)

// SizeOf returns the accounted wire size of one value of type T: the
// in-memory size of its top-level representation. For the fixed-width key
// and count types used throughout this repository it equals the serialized
// size; for pointer-bearing types it is a lower bound (documented
// limitation of the simulation).
func SizeOf[T any]() int64 {
	var zero T
	return int64(unsafe.Sizeof(zero))
}

// SliceBytes returns the accounted wire size of a slice of T.
func SliceBytes[T any](s []T) int64 {
	return int64(len(s)) * SizeOf[T]()
}

// SendValue sends a single value of type T to dst.
func SendValue[T any](e Endpoint, dst int, tag Tag, v T) error {
	RegisterWire[T]()
	return e.Send(dst, tag, v, SizeOf[T]())
}

// RecvValue receives a single value of type T from src (or AnySource).
// It fails if the matching message holds a different payload type,
// which indicates a tag-discipline bug in the caller.
func RecvValue[T any](e Endpoint, src int, tag Tag) (T, error) {
	RegisterWire[T]()
	m, err := e.Recv(src, tag)
	if err != nil {
		var zero T
		return zero, err
	}
	v, ok := m.Payload.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("comm: rank %d tag %d: payload type %T, want %T", e.Rank(), tag, m.Payload, zero)
	}
	return v, nil
}

// SendSlice sends a slice of T to dst. Ownership of the slice transfers to
// the receiver; the sender must not modify it afterwards.
func SendSlice[T any](e Endpoint, dst int, tag Tag, s []T) error {
	RegisterWire[[]T]()
	return e.Send(dst, tag, s, SliceBytes(s))
}

// RecvSlice receives a slice of T from src (or AnySource).
func RecvSlice[T any](e Endpoint, src int, tag Tag) ([]T, error) {
	RegisterWire[[]T]()
	m, err := e.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	if m.Payload == nil {
		return nil, nil
	}
	s, ok := m.Payload.([]T)
	if !ok {
		return nil, fmt.Errorf("comm: rank %d tag %d: payload type %T, want []%T", e.Rank(), tag, m.Payload, *new(T))
	}
	return s, nil
}

// RecvSliceFrom is RecvSlice but also reports the sender, for AnySource
// gather patterns.
func RecvSliceFrom[T any](e Endpoint, src int, tag Tag) ([]T, int, error) {
	RegisterWire[[]T]()
	m, err := e.Recv(src, tag)
	if err != nil {
		return nil, 0, err
	}
	if m.Payload == nil {
		return nil, m.Src, nil
	}
	s, ok := m.Payload.([]T)
	if !ok {
		return nil, m.Src, fmt.Errorf("comm: rank %d tag %d: payload type %T, want []%T", e.Rank(), tag, m.Payload, *new(T))
	}
	return s, m.Src, nil
}
