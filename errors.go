package hssort

import (
	"fmt"

	"hssort/internal/comm"
	"hssort/internal/spill"
)

// The failure-survival error taxonomy, re-exported from the transport
// layer so callers can branch on errors.As without importing internal
// packages. All three come back (wrapped) from Sort/Plan calls over the
// TCP transport.

// PeerCrashError reports that a peer rank died mid-run: its connection
// severed, its silence exceeded TCPConfig.PeerTimeout, or another rank
// reported the crash over the abort channel. Every surviving rank of
// the world observes the same PeerCrashError naming the same lost rank.
// The mesh heals when the rank respawns with TCPConfig.Rejoin — the
// same Sorter then completes the next Sort, deterministically
// re-executing the lost rank's shard.
type PeerCrashError = comm.PeerCrashError

// BootstrapError reports that an endpoint failed to construct or rejoin
// the TCP mesh (rendezvous, listener setup, peer dialing, or protocol
// handshake), before any sort ran.
type BootstrapError = comm.BootstrapError

// VersionMismatchError reports a bootstrap handshake between processes
// speaking different wire-protocol versions (docs/WIRE.md): a mixed
// deployment that must be rebuilt, not retried.
type VersionMismatchError = comm.VersionMismatchError

// SpillError reports an out-of-core sort's spill-plane failure: a run
// file that could not be created, written or read back, or one whose
// frames failed checksum or framing validation (docs/SPILL.md). Op
// names the operation, Path the run file, and Unwrap carries the cause
// — errors.Is(err, ErrSpillCorrupt) for damaged data, I/O errors pass
// through as-is. Sorts never return garbage keys from a damaged run
// file; they return one of these.
type SpillError = spill.Error

// ErrSpillCorrupt is the sentinel wrapped by a SpillError whose cause
// is damaged spill data (checksum mismatch, framing violation, varint
// decode failure) rather than an I/O error.
var ErrSpillCorrupt = spill.ErrCorrupt

// The serving-layer error taxonomy: typed admission and lookup failures
// raised by the hssortd scheduler (internal/server), declared here so
// callers embedding the daemon — and its own HTTP layer — can branch on
// errors.As without importing internal packages. The HTTP front end
// maps QuotaExceededError to 429 and JobNotFoundError to 404.

// QuotaExceededError reports that a job submission was refused by
// admission control: the daemon's bounded FIFO queue is full (or the
// submitting tenant has exhausted a per-tenant bound). The request was
// not enqueued; the client should back off and retry.
type QuotaExceededError struct {
	// Tenant is the submitting tenant.
	Tenant string
	// Queued is the number of jobs waiting when the submission was
	// refused, and Capacity the queue bound it ran into.
	Queued, Capacity int
}

func (e *QuotaExceededError) Error() string {
	return fmt.Sprintf("hssort: tenant %q refused by admission control: %d of %d queue slots in use", e.Tenant, e.Queued, e.Capacity)
}

// JobNotFoundError reports a job-status or result lookup for an ID the
// daemon does not hold: never submitted, submitted by another tenant,
// or already evicted from the finished-job window.
type JobNotFoundError struct {
	// ID is the job ID that failed to resolve.
	ID string
}

func (e *JobNotFoundError) Error() string {
	return fmt.Sprintf("hssort: no job %q", e.ID)
}
