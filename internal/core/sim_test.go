package core

import (
	"testing"
	"testing/quick"
)

func simOpt(buckets int, eps float64, sched Schedule) Options[int64] {
	return Options[int64]{Cmp: icmp, Buckets: buckets, Epsilon: eps, Schedule: sched, Seed: 1}
}

func TestSimulateFixedOversamplingBasic(t *testing.T) {
	res, err := SimulateSplitters(1<<20, simOpt(64, 0.05, FixedOversampling))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finalized {
		t.Error("not finalized")
	}
	if res.Imbalance > 1.05+1e-9 {
		t.Errorf("imbalance %.4f", res.Imbalance)
	}
	if res.Rounds < 2 || res.Rounds > 12 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	// Each round's sample should be ~5·B (dedup can shave a little).
	for j, s := range res.SamplePerRound {
		if s > 5*64*3 {
			t.Errorf("round %d sample %d far above 5B", j, s)
		}
	}
}

func TestSimulateCoverageShrinks(t *testing.T) {
	// Theorem 3.3.1/3.3.2: G_j decreases geometrically.
	res, err := SimulateSplitters(1<<22, simOpt(256, 0.02, FixedOversampling))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(res.CoveragePerRound); j++ {
		if res.CoveragePerRound[j] > res.CoveragePerRound[j-1] {
			t.Errorf("coverage grew at round %d: %v", j, res.CoveragePerRound)
		}
	}
	if last := res.CoveragePerRound[len(res.CoveragePerRound)-1]; last >= res.CoveragePerRound[0]/4 {
		t.Errorf("coverage barely shrank: %v", res.CoveragePerRound)
	}
}

func TestSimulateTable61Shape(t *testing.T) {
	// Table 6.1: p = 4K..32K, f = 5, eps = 0.02 → observed 4 rounds,
	// bound 8. We assert rounds ≤ 8 (the paper's bound) and ≥ 2, and
	// that the per-round sample stays ~5p.
	if testing.Short() {
		t.Skip("large-p simulation")
	}
	for _, p := range []int{4096, 8192} {
		res, err := SimulateSplitters(int64(p)*1000, simOpt(p, 0.02, FixedOversampling))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Finalized {
			t.Errorf("p=%d: not finalized", p)
		}
		if res.Rounds < 2 || res.Rounds > 8 {
			t.Errorf("p=%d: %d rounds, paper observes 4 with bound 8", p, res.Rounds)
		}
		if res.Imbalance > 1.02+1e-9 {
			t.Errorf("p=%d: imbalance %.4f", p, res.Imbalance)
		}
	}
}

func TestSimulateTheoreticalSchedule(t *testing.T) {
	// k-round schedule: finishes in at most k rounds (w.h.p. exactly k)
	// and achieves the target balance.
	for _, k := range []int{1, 2, 3} {
		opt := simOpt(128, 0.05, Theoretical)
		opt.Rounds = k
		res, err := SimulateSplitters(1<<21, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > k+1 {
			t.Errorf("k=%d: took %d rounds", k, res.Rounds)
		}
		if res.Imbalance > 1.05+1e-9 {
			t.Errorf("k=%d: imbalance %.4f", k, res.Imbalance)
		}
	}
}

func TestSimulateOneRoundScanning(t *testing.T) {
	res, err := SimulateSplitters(1<<20, simOpt(64, 0.1, OneRoundScanning))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("scanning took %d rounds", res.Rounds)
	}
	// Theorem 3.2.1: only the last bucket can exceed N/B, and it stays
	// under N(1+ε)/B w.h.p.
	if res.Imbalance > 1.1+1e-9 {
		t.Errorf("imbalance %.4f", res.Imbalance)
	}
}

func TestSimulateSampleSizesOrdering(t *testing.T) {
	// Fig 4.1's measured claim: total sample for 2 theoretical rounds <
	// 1 round; constant oversampling (auto-k) < 2 rounds, for large p.
	n := int64(1 << 24)
	buckets := 4096
	one := simOpt(buckets, 0.05, Theoretical)
	one.Rounds = 1
	two := simOpt(buckets, 0.05, Theoretical)
	two.Rounds = 2
	autoK := simOpt(buckets, 0.05, FixedOversampling)
	r1, err := SimulateSplitters(n, one)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SimulateSplitters(n, two)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := SimulateSplitters(n, autoK)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TotalSample >= r1.TotalSample {
		t.Errorf("2-round sample %d not below 1-round %d", r2.TotalSample, r1.TotalSample)
	}
	if rk.TotalSample >= r2.TotalSample {
		t.Errorf("constant-oversampling sample %d not below 2-round %d", rk.TotalSample, r2.TotalSample)
	}
}

func TestSimulateDegenerate(t *testing.T) {
	res, err := SimulateSplitters(0, simOpt(8, 0.05, FixedOversampling))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finalized || res.Rounds != 0 {
		t.Errorf("n=0: %+v", res)
	}
	res, err = SimulateSplitters(100, simOpt(1, 0.05, FixedOversampling))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finalized {
		t.Errorf("B=1: %+v", res)
	}
}

// TestSimulateProperty: across random scales, the protocol always
// finalizes within MaxRounds and achieves the requested balance.
func TestSimulateProperty(t *testing.T) {
	f := func(seed uint32, bRaw uint8, sched uint8) bool {
		buckets := int(bRaw%120) + 8
		n := int64(buckets) * int64(seed%1000+200)
		opt := simOpt(buckets, 0.1, Schedule(sched%3))
		opt.Seed = uint64(seed) + 1
		res, err := SimulateSplitters(n, opt)
		if err != nil {
			t.Log(err)
			return false
		}
		// On tiny inputs the w.h.p. guarantee can miss; allow fallback
		// but require termination (well under the default MaxRounds
		// ceiling of 4·bound+8) and sane imbalance.
		return res.Rounds <= 60 && res.Imbalance <= 2.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
