#!/usr/bin/env bash
# Multi-process transport smoke: launch 4 localhost worker processes via
# cmd/hssort's -launch convenience, sort a deterministic workload over
# real sockets, and assert the per-rank output digests are identical to
# the in-process sim oracle. This is the CI gate for the tcp backend's
# end-to-end correctness (wire codec, bootstrap, exchange, merge).
#
# Runs twice: once on int64 keys (fixed-size wire records) and once on
# variable-length byte-string keys (the hsswire/3 varlen codec and the
# prefix-code plane). A third pass is the failure-survival gate: one of
# four manually-launched workers kill -9s itself mid-exchange (a seeded
# -chaos crash), the survivors report the crash and wait out
# -rejoin-wait, the victim is respawned with -rejoin, and the healed
# fleet's digests still match the sim oracle.
#
# Usage: scripts/tcp_smoke.sh [keys-per-rank]
set -euo pipefail
cd "$(dirname "$0")/.."

N="${1:-50000}"
PROCS=4

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/hssort" ./cmd/hssort

# The launcher reserves the coordinator port before rank 0 rebinds it; a
# stray localhost process can lose that race, so retry once.
run_tcp() {
  "$tmp/hssort" -transport tcp -launch "local:$PROCS" "$@" \
    | sed -n 's/^\[rank [0-9]*\] \(digest .*\)/\1/p' | sort > "$tmp/tcp.digests"
}

check() {
  local label="$1"; shift
  "$tmp/hssort" -p "$PROCS" "$@" | grep '^digest' | sort > "$tmp/sim.digests"
  run_tcp "$@" || { echo "retrying after bootstrap race" >&2; run_tcp "$@"; }
  diff -u "$tmp/sim.digests" "$tmp/tcp.digests"
  echo "tcp == sim ($label): rank-identical output across $PROCS worker processes"
}

check "int64/powerskew, $N keys/rank" -n "$N" -dist powerskew -stream -eps 0.05 -seed 7 -digest
check "bytes/urllike, $((N / 5)) keys/rank" -n "$((N / 5))" -keys bytes -dist urllike -stream -eps 0.05 -seed 7 -digest

# Out-of-core pass: each worker sorts under a per-rank memory budget of
# a quarter of its shard (the dataset is 4x the budget), spilling
# compressed run files into a shared -spill-dir. The oracle is the
# fully in-memory sim sort — out-of-core output must be
# digest-identical to it — and the engines' Close must leave no
# orphaned run files behind.
ooc_pass() {
  local budget=$((N * 8 / 4))
  local flags=(-n "$N" -dist powerskew -stream -chunk 1024 -eps 0.05 -seed 7 -digest)
  "$tmp/hssort" -p "$PROCS" "${flags[@]}" | grep '^digest' | sort > "$tmp/sim.digests"
  mkdir -p "$tmp/spill"
  run_tcp "${flags[@]}" -mem-budget "$budget" -spill-dir "$tmp/spill" \
    || { echo "retrying after bootstrap race" >&2; run_tcp "${flags[@]}" -mem-budget "$budget" -spill-dir "$tmp/spill"; }
  diff -u "$tmp/sim.digests" "$tmp/tcp.digests"
  local leftover
  leftover=$(find "$tmp/spill" -type f | head)
  if [ -n "$leftover" ]; then
    echo "orphaned spill run files after the fleet closed:" >&2
    echo "$leftover" >&2
    return 1
  fi
  echo "tcp out-of-core (budget $budget B/rank, 4x data) == in-memory sim: rank-identical output, spill dir clean"
}
ooc_pass

# Failure-survival pass: kill one worker mid-sort, respawn it, and
# assert the healed fleet's output is still digest-identical to sim.
# The victim's -chaos crash is a real SIGKILL of its own process at its
# first exchange-phase send of the first of two sorts; the survivors'
# -rejoin-wait makes them retry that sort once the respawned victim
# rejoins the mesh.
kill_respawn() {
  local victim=2
  local coord="127.0.0.1:$(( (RANDOM % 20000) + 20000 ))"
  local flags=(-transport tcp -p "$PROCS" -n "$((N / 5))" -dist powerskew -stream
               -eps 0.05 -seed 7 -digest -repeat 2 -peer-timeout 5s -rejoin-wait 60s)
  local pids=() r
  rm -f "$tmp"/worker*.out
  for r in $(seq 0 $((PROCS - 1))); do
    if [ "$r" -eq "$victim" ]; then
      timeout 120 "$tmp/hssort" "${flags[@]}" -coordinator "$coord" -rank "$r" \
        -chaos "9:crash=$victim@exchange" > "$tmp/victim.first.out" 2>&1 &
    else
      timeout 120 "$tmp/hssort" "${flags[@]}" -coordinator "$coord" -rank "$r" \
        > "$tmp/worker$r.out" &
    fi
    pids[$r]=$!
  done
  if wait "${pids[$victim]}"; then
    echo "victim exited cleanly; the chaos crash never fired" >&2
    return 1
  fi
  echo "rank $victim killed itself mid-exchange; respawning it with -rejoin" >&2
  timeout 120 "$tmp/hssort" "${flags[@]}" -coordinator "$coord" -rank "$victim" \
    -rejoin > "$tmp/worker$victim.out" &
  pids[$victim]=$!
  for r in $(seq 0 $((PROCS - 1))); do
    wait "${pids[$r]}" || { echo "worker $r failed after the respawn" >&2; return 1; }
  done
  "$tmp/hssort" -p "$PROCS" -n "$((N / 5))" -dist powerskew -stream -eps 0.05 -seed 7 -digest \
    | grep '^digest' | sort > "$tmp/sim.digests"
  cat "$tmp"/worker*.out | grep '^digest' | sort > "$tmp/tcp.digests"
  diff -u "$tmp/sim.digests" "$tmp/tcp.digests"
  echo "tcp == sim after kill -9 + respawn + rejoin: rank-identical output across $PROCS worker processes"
}

# The ephemeral coordinator port is picked blindly; retry once if a
# stray localhost process owns it (same race the -launch passes retry).
kill_respawn || { echo "retrying the kill/respawn pass" >&2; kill_respawn; }
