// Package tagging implements the paper's duplicate-handling mechanism
// (§4.3): every key is implicitly tagged with the processor it resides on
// and its local index, imposing a strict total order on an input with
// arbitrary duplication. Splitter-based sorts then behave exactly as on
// distinct keys — load balance no longer degrades with duplicate counts —
// at the cost of a constant-factor growth of the histogram probes (the
// tags travel only with probes and splitters, never with the bulk data,
// because the tag of an input key is recomputable from its location).
package tagging
